//! # tempest
//!
//! A from-scratch Rust reproduction of *"Temporal blocking of finite-
//! difference stencil operators with sparse 'off-the-grid' sources"*
//! (Bisbas et al., IPDPS 2021).
//!
//! This facade crate re-exports the workspace crates:
//!
//! * [`grid`] — dense arrays, time buffers, domains, material models.
//! * [`par`] — thread-pool parallel loops (the OpenMP analogue).
//! * [`stencil`] — finite-difference coefficients and dense stencil kernels.
//! * [`sparse`] — off-the-grid sources/receivers and the paper's
//!   precomputation scheme (masks, IDs, decomposed wavelets).
//! * [`tiling`] — spatially blocked and wave-front temporally blocked
//!   loop schedules, legality checking and the auto-tuner.
//! * [`core`] — the three wave propagators (acoustic, TTI, elastic) and the
//!   high-level [`core::operator::Execution`] API.
//! * [`dsl`] — a mini Devito-like symbolic layer that lowers PDE definitions
//!   to executable stencil plans.
//! * [`survey`] — shot-level sharding over whole surveys: the async job
//!   queue (`submit`/`poll`/`cancel`), batch asset reuse, and checkpointed
//!   RTM. See `examples/survey_service.rs`.
//!
//! See `examples/quickstart.rs` for a five-minute tour.

pub use tempest_core as core;
pub use tempest_dsl as dsl;
pub use tempest_grid as grid;
pub use tempest_obs as obs;
pub use tempest_par as par;
pub use tempest_sparse as sparse;
pub use tempest_stencil as stencil;
pub use tempest_survey as survey;
pub use tempest_tiling as tiling;
