//! Property tests for shot sharding: execution is a *partition*.
//!
//! The survey engine's structural claim is that `0..n` shot indices are
//! executed exactly once each — no drops, no duplicates — for every worker
//! count, steal order, and batch grouping, down to the degenerate 1-shot
//! and empty-survey cases. Cases are drawn from a seeded [`Rng64`] stream
//! (hermetic builds, no proptest), so every failure is reproducible.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use tempest::core::config::EquationKind;
use tempest::core::SimConfig;
use tempest::grid::{Domain, Model, Rng64, Shape};
use tempest::par::Policy;
use tempest::sparse::SparsePoints;
use tempest::survey::{run_survey, run_survey_streaming, shard, Survey, SurveyOptions};

const CASES: usize = 48;

fn policies() -> Vec<Policy> {
    vec![
        Policy::Sequential,
        Policy::Parallel,
        Policy::Capped { threads: 1 },
        Policy::Capped { threads: 2 },
        Policy::Capped { threads: 4 },
        Policy::Auto { min_items: 2 },
    ]
}

/// Raw sharding primitive: every index visited exactly once for random
/// (n, batch, policy) draws, including n = 0 and n = 1.
#[test]
fn shard_is_a_partition() {
    let mut rng = Rng64::new(0x511A_4D53);
    let policies = policies();
    for case in 0..CASES {
        let n = match case {
            0 => 0,
            1 => 1,
            _ => rng.range_usize(0, 65),
        };
        let batch = rng.range_usize(0, n + 2); // 0 = single batch
        let policy = policies[rng.range_usize(0, policies.len())];
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        shard(policy, n, batch, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(
                h.load(Ordering::Relaxed),
                1,
                "case {case}: index {i} of n={n} batch={batch} policy={policy:?} \
                 not executed exactly once"
            );
        }
    }
}

fn survey_with(n_shots: usize) -> Survey {
    let domain = Domain::uniform(Shape::cube(12), 10.0);
    let model = Model::homogeneous(domain, 2000.0);
    let cfg = SimConfig::new(domain, 4, EquationKind::Acoustic, 2000.0, 30.0)
        .with_nt(4)
        .with_boundary(2, 0.3);
    let mut s =
        Survey::new(model, cfg).with_receivers(SparsePoints::receiver_line(&domain, 3, 0.2));
    s.add_shot_line(n_shots, 0.1);
    s
}

/// The full engine keeps the partition property: each shot streams exactly
/// one result, for every policy × batch grouping, including the 1-shot and
/// empty surveys.
#[test]
fn survey_execution_is_a_partition() {
    let mut rng = Rng64::new(0xA407_1710);
    let policies = policies();
    for case in 0..CASES / 2 {
        let n = match case {
            0 => 0,
            1 => 1,
            _ => rng.range_usize(0, 6),
        };
        let survey = survey_with(n);
        let opts = SurveyOptions {
            policy: policies[rng.range_usize(0, policies.len())],
            batch_size: rng.range_usize(0, n + 2),
            ..SurveyOptions::default()
        };
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        let out = run_survey_streaming(&survey, &opts, None, |r| {
            hits[r.index].fetch_add(1, Ordering::Relaxed);
        })
        .unwrap();
        assert_eq!(out.completed, n, "case {case}");
        assert!(!out.cancelled);
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 1, "case {case}: shot {i} of {n}");
        }
    }
}

/// Worker count, steal order, and batch grouping do not change *what* is
/// computed: gathers are byte-identical to the sequential single-batch run.
#[test]
fn survey_results_are_invariant_under_sharding() {
    let survey = survey_with(5);
    let reference = run_survey(
        &survey,
        &SurveyOptions {
            policy: Policy::Sequential,
            ..SurveyOptions::default()
        },
    )
    .unwrap();
    assert_eq!(reference.len(), 5);
    for policy in policies() {
        for batch_size in [0usize, 1, 2, 5, 7] {
            let opts = SurveyOptions {
                policy,
                batch_size,
                ..SurveyOptions::default()
            };
            let got = run_survey(&survey, &opts).unwrap();
            assert_eq!(got.len(), reference.len());
            for (r, g) in reference.iter().zip(&got) {
                assert_eq!(r.index, g.index);
                assert_eq!(
                    r.gather.as_ref().unwrap().as_slice(),
                    g.gather.as_ref().unwrap().as_slice(),
                    "shot {} differs under {policy:?} batch={batch_size}",
                    r.index
                );
            }
        }
    }
}

/// Streaming order may vary, but the *set* of streamed indices is always
/// the full shot set — checked via a sorted collection.
#[test]
fn streamed_index_set_is_complete() {
    let survey = survey_with(6);
    for policy in [Policy::Parallel, Policy::Capped { threads: 3 }] {
        let seen = Mutex::new(Vec::new());
        let opts = SurveyOptions {
            policy,
            batch_size: 4,
            ..SurveyOptions::default()
        };
        run_survey_streaming(&survey, &opts, None, |r| seen.lock().unwrap().push(r.index))
            .unwrap();
        let mut indices = seen.into_inner().unwrap();
        indices.sort_unstable();
        assert_eq!(indices, (0..6).collect::<Vec<_>>());
    }
}
