//! Cross-crate schedule-equivalence tests: the central correctness claim of
//! the reproduction. For every propagator and space order the paper
//! evaluates, wave-front temporal blocking with precomputed fused sparse
//! operators must reproduce the spatially blocked baseline — bitwise for
//! single-source problems (identical per-point arithmetic), within
//! accumulation-order tolerance for traces.

use tempest::core::config::EquationKind;
use tempest::core::operator::{KernelPath, Schedule, SparseMode};
use tempest::core::{Acoustic, Elastic, Execution, SimConfig, Tti, WaveSolver};
use tempest::grid::{Array2, Domain, ElasticModel, Model, Shape, TtiModel};
use tempest::sparse::SparsePoints;

const N: usize = 20;
const NT: usize = 12;

fn domain() -> Domain {
    Domain::uniform(Shape::cube(N), 10.0)
}

fn wf(tile: usize, tt: usize, block: usize) -> Execution {
    Execution {
        schedule: Schedule::Wavefront {
            tile_x: tile,
            tile_y: tile,
            tile_t: tt,
            block_x: block,
            block_y: block,
        },
        sparse: SparseMode::FusedCompressed,
        policy: tempest::par::Policy::Sequential,
        kernel: KernelPath::default(),
    }
}

fn trace_close(a: &Array2<f32>, b: &Array2<f32>, tol_rel: f32) {
    assert_eq!(a.dims(), b.dims());
    let scale = a
        .as_slice()
        .iter()
        .fold(0.0f32, |m, &v| m.max(v.abs()))
        .max(1e-30);
    for i in 0..a.len() {
        let d = (a.as_slice()[i] - b.as_slice()[i]).abs();
        assert!(
            d <= tol_rel * scale,
            "trace element {i}: {} vs {} (scale {scale})",
            a.as_slice()[i],
            b.as_slice()[i]
        );
    }
}

#[test]
fn acoustic_all_orders_bitwise() {
    for so in [4usize, 8, 12] {
        let d = domain();
        let model = Model::two_layer(d, 1600.0, 2800.0, 0.5);
        let cfg = SimConfig::new(d, so, EquationKind::Acoustic, 2800.0, 50.0)
            .with_nt(NT)
            .with_f0(25.0);
        let src = SparsePoints::single_center(&d, 0.37);
        let rec = SparsePoints::receiver_line(&d, 4, 0.2);
        let mut s = Acoustic::new(&model, cfg, src, Some(rec));

        s.run(&Execution::baseline().sequential());
        let f_base = s.final_field();
        let t_base = s.trace().unwrap();

        for (tile, tt, blk) in [(8, 4, 4), (12, 3, 6), (32, 6, 8)] {
            s.run(&wf(tile, tt, blk));
            let f = s.final_field();
            assert!(
                f_base.bit_equal(&f),
                "acoustic so{so} tile{tile} tt{tt}: max diff {}",
                f_base.max_abs_diff(&f)
            );
            trace_close(&t_base, &s.trace().unwrap(), 1e-4);
        }
    }
}

#[test]
fn tti_all_orders_bitwise() {
    for so in [4usize, 8, 12] {
        let d = Domain::uniform(Shape::cube(N), 20.0);
        let model = TtiModel::homogeneous(d, 2000.0, 0.2, 0.08, 0.4, 0.2);
        let cfg = SimConfig::new(d, so, EquationKind::Tti, model.vmax(), 40.0)
            .with_nt(NT)
            .with_f0(15.0);
        let src = SparsePoints::single_center(&d, 0.37);
        let mut s = Tti::new(&model, cfg, src, None);

        s.run(&Execution::baseline().sequential());
        let f_base = s.final_field();
        s.run(&wf(8, 4, 4));
        let f = s.final_field();
        assert!(
            f_base.bit_equal(&f),
            "tti so{so}: max diff {}",
            f_base.max_abs_diff(&f)
        );
    }
}

#[test]
fn elastic_all_orders_bitwise() {
    for so in [4usize, 8, 12] {
        let d = domain();
        let model = ElasticModel::homogeneous(d, 3000.0, 1400.0, 2300.0);
        let cfg = SimConfig::new(d, so, EquationKind::Elastic, 3000.0, 25.0)
            .with_nt(NT)
            .with_f0(25.0);
        let src = SparsePoints::single_center(&d, 0.37);
        let rec = SparsePoints::receiver_line(&d, 3, 0.25);
        let mut s = Elastic::new(&model, cfg, src, Some(rec));

        s.run(&Execution::baseline().sequential());
        let f_base = s.final_field();
        let t_base = s.trace().unwrap();
        s.run(&wf(8, 3, 4));
        let f = s.final_field();
        assert!(
            f_base.bit_equal(&f),
            "elastic so{so}: max diff {}",
            f_base.max_abs_diff(&f)
        );
        trace_close(&t_base, &s.trace().unwrap(), 1e-4);
    }
}

#[test]
fn many_sources_with_shared_footprints_agree() {
    // Dense sources share affected grid points; fused accumulation order
    // differs from classic per-source order → tolerance, not bitwise.
    let d = domain();
    let model = Model::random(d, 1600.0, 2600.0, 3);
    let cfg = SimConfig::new(d, 4, EquationKind::Acoustic, 2600.0, 40.0)
        .with_nt(10)
        .with_f0(25.0);
    let src = SparsePoints::dense_layout(&d, 27, 0.5);
    let mut s = Acoustic::new(&model, cfg, src, None);
    s.run(&Execution::baseline().sequential());
    let base = s.final_field();
    s.run(&wf(8, 4, 4));
    let f = s.final_field();
    let scale = base.max_abs().max(1e-30);
    assert!(
        base.max_abs_diff(&f) <= 1e-4 * scale,
        "rel diff {}",
        base.max_abs_diff(&f) / scale
    );
}

#[test]
fn spaceblocked_fused_matches_classic() {
    // The fused sparse path is also legal under plain spatial blocking —
    // an ablation the paper's scheme enables (sources become grid-aligned
    // regardless of schedule).
    let d = domain();
    let model = Model::homogeneous(d, 2000.0);
    let cfg = SimConfig::new(d, 4, EquationKind::Acoustic, 2000.0, 40.0)
        .with_nt(10)
        .with_f0(25.0);
    let src = SparsePoints::single_center(&d, 0.37);
    let mut s = Acoustic::new(&model, cfg, src, None);
    let mut classic = Execution::baseline().sequential();
    classic.sparse = SparseMode::Classic;
    s.run(&classic);
    let f_classic = s.final_field();
    let mut fused = Execution::baseline().sequential();
    fused.sparse = SparseMode::FusedCompressed;
    s.run(&fused);
    let f_fused = s.final_field();
    assert!(f_classic.bit_equal(&f_fused));
}

#[test]
fn tile_shape_never_changes_results() {
    // Property-style sweep over eccentric tile shapes, incl. tiles larger
    // than the grid and temporal tiles longer than nt.
    let d = domain();
    let model = Model::homogeneous(d, 2000.0);
    let cfg = SimConfig::new(d, 8, EquationKind::Acoustic, 2000.0, 40.0)
        .with_nt(9)
        .with_f0(25.0);
    let src = SparsePoints::single_center(&d, 0.37);
    let mut s = Acoustic::new(&model, cfg, src, None);
    s.run(&Execution::baseline().sequential());
    let base = s.final_field();
    for (tile_x, tile_y, tt, bx, by) in [
        (5usize, 7usize, 2usize, 3usize, 5usize),
        (64, 64, 32, 16, 16),
        (N, N, NT, N, N),
        (4, 32, 5, 4, 8),
    ] {
        let e = Execution {
            schedule: Schedule::Wavefront {
                tile_x,
                tile_y,
                tile_t: tt,
                block_x: bx,
                block_y: by,
            },
            sparse: SparseMode::FusedCompressed,
            policy: tempest::par::Policy::Sequential,
            kernel: KernelPath::default(),
        };
        s.run(&e);
        let f = s.final_field();
        assert!(
            base.bit_equal(&f),
            "tile ({tile_x},{tile_y},{tt},{bx},{by}) diverged: {}",
            base.max_abs_diff(&f)
        );
    }
}
