//! A numeric demonstration of the paper's Fig. 4b claim: applying sparse
//! operators *classically* (once per timestep, after "the" sweep) under a
//! temporally blocked schedule produces WRONG results, because different
//! spatial regions sit at different timesteps when the operator fires.
//!
//! We build a tiny 1-D-in-x diffusion-like stencil driven directly through
//! the schedule engine (bypassing the propagators' API guard, which refuses
//! this combination) and show:
//!
//! 1. classic injection + spatially blocked schedule  == reference;
//! 2. fused (precomputed-style) injection + wave-front schedule == reference;
//! 3. classic injection + wave-front schedule  != reference — the Fig. 4b
//!    data-dependency violation, observed as a real numeric divergence.

use tempest::grid::{Range3, Shape};
use tempest::par::Policy;
use tempest::tiling::spaceblock::{self, SpaceBlockSpec};
use tempest::tiling::wavefront::{self, WavefrontSpec};
use std::sync::Mutex;

const NX: usize = 32;
const NT: usize = 8;
const SRC_X: usize = 13; // grid-aligned source position
const R: usize = 1; // stencil radius

/// Two-level 1-D state: `state[lvl][x]`, halo of R on each side.
type State = Vec<Vec<f64>>;

fn new_state() -> State {
    vec![vec![0.0; NX + 2 * R]; 2]
}

/// One stencil update of column x at step t (reads t%2, writes (t+1)%2).
fn stencil_update(state: &mut State, t: usize, x: usize) {
    let (r, w) = (t % 2, (t + 1) % 2);
    let i = x + R;
    let v = 0.5 * state[r][i] + 0.25 * (state[r][i - 1] + state[r][i + 1]);
    state[w][i] = v;
}

/// Source amplitude at step t.
fn amp(t: usize) -> f64 {
    1.0 + t as f64
}

/// Inject into the *written* level of step t.
fn inject(state: &mut State, t: usize, x: usize) {
    let w = (t + 1) % 2;
    state[w][x + R] += amp(t);
}

/// Reference: plain time loop, full sweeps, classic injection (Listing 1).
fn reference() -> Vec<f64> {
    let mut st = new_state();
    for t in 0..NT {
        for x in 0..NX {
            stencil_update(&mut st, t, x);
        }
        inject(&mut st, t, SRC_X);
    }
    st[NT % 2][R..R + NX].to_vec()
}

#[test]
fn classic_under_space_blocking_is_correct() {
    // Fig. 4a: "sparse operators fit within space blocking".
    let st = Mutex::new(new_state());
    let shape = Shape::new(NX, 1, 1);
    spaceblock::execute(
        shape,
        NT,
        SpaceBlockSpec::new(5, 1),
        Policy::Sequential,
        |t, region: &Range3| {
            let mut s = st.lock().unwrap();
            for x in region.x0..region.x1 {
                stencil_update(&mut s, t, x);
            }
        },
        |t| inject(&mut st.lock().unwrap(), t, SRC_X),
    );
    let got = {
        let s = st.lock().unwrap();
        s[NT % 2][R..R + NX].to_vec()
    };
    assert_eq!(got, reference());
}

#[test]
fn fused_under_wavefront_is_correct() {
    // The paper's scheme: the (grid-aligned) source is applied *inside* the
    // blocked loop, at the region+timestep that owns it.
    let st = Mutex::new(new_state());
    let shape = Shape::new(NX, 1, 1);
    let spec = WavefrontSpec::new(8, 1, 4, R, 8, 1);
    wavefront::execute(shape, NT, &spec, Policy::Sequential, |t, region| {
        let mut s = st.lock().unwrap();
        for x in region.x0..region.x1 {
            stencil_update(&mut s, t, x);
            if x == SRC_X {
                inject(&mut s, t, SRC_X);
            }
        }
    });
    let got = {
        let s = st.lock().unwrap();
        s[NT % 2][R..R + NX].to_vec()
    };
    assert_eq!(got, reference());
}

#[test]
fn classic_under_wavefront_is_wrong() {
    // Fig. 4b: firing the classic injection "after each timestep's work"
    // under a wave-front schedule — here, after the last slab that carries
    // each virtual step — hits regions that are at *different* timesteps.
    let st = Mutex::new(new_state());
    let shape = Shape::new(NX, 1, 1);
    let spec = WavefrontSpec::new(8, 1, 4, R, 8, 1);
    // Count how many columns of each vt have completed; when a vt's sweep
    // completes, fire the classic injection (the natural-but-wrong porting
    // of Listing 1 onto the tiled loop).
    let done = Mutex::new(vec![0usize; NT]);
    wavefront::execute(shape, NT, &spec, Policy::Sequential, |t, region| {
        {
            let mut s = st.lock().unwrap();
            for x in region.x0..region.x1 {
                stencil_update(&mut s, t, x);
            }
        }
        let fire = {
            let mut d = done.lock().unwrap();
            d[t] += region.len();
            d[t] == NX
        };
        if fire {
            inject(&mut st.lock().unwrap(), t, SRC_X);
        }
    });
    let got = {
        let s = st.lock().unwrap();
        s[NT % 2][R..R + NX].to_vec()
    };
    let rf = reference();
    let max_diff = got
        .iter()
        .zip(&rf)
        .fold(0.0f64, |m, (a, b)| m.max((a - b).abs()));
    assert!(
        max_diff > 1e-6,
        "classic sparse ops under temporal blocking should corrupt the \
         result (Fig. 4b) — if this starts passing, the schedule has been \
         de-tiled somewhere"
    );
}
