//! End-to-end survey-scale RTM: the `tempest-survey` driver must be
//! bitwise-equal to the sum of per-shot images computed the way
//! `tests/rtm.rs` does it — hand-driven forward / adjoint / zero-lag
//! correlation on the raw `tempest-core` API — at shot-fleet thread caps
//! 1/2/4, with and without mid-survey ring checkpoint/restore.

use tempest::core::config::EquationKind;
use tempest::core::{Acoustic, Execution, SimConfig, WaveSolver};
use tempest::grid::{Array2, Array3, Domain, Model, Shape};
use tempest::par::Policy;
use tempest::sparse::wavelet::wavelet_matrix;
use tempest::sparse::SparsePoints;
use tempest::survey::{rtm_image, run_survey, RtmOptions, Survey, SurveyOptions};

const N: usize = 20;
const NT: usize = 30;
const EVERY: usize = 2;
const NSHOT: usize = 3;
const NREC: usize = 6;

struct Setup {
    domain: Domain,
    true_model: Model,
    smooth: Model,
    cfg: SimConfig,
    rec: SparsePoints,
    shots: Vec<[f32; 3]>,
}

fn setup() -> Setup {
    let domain = Domain::uniform(Shape::cube(N), 10.0);
    // Velocity contrast in the direct arrival keeps the residual alive
    // within the short window; the reflector adds structure.
    let true_model = Model::two_layer(domain, 1500.0, 2600.0, 0.45);
    let smooth = Model::homogeneous(domain, 1700.0);
    let cfg = SimConfig::new(domain, 4, EquationKind::Acoustic, 3000.0, 150.0)
        .with_f0(45.0)
        .with_nt(NT)
        .with_boundary(4, 0.3);
    let rec = SparsePoints::receiver_line(&domain, NREC, 0.08);
    let ext = domain.extent();
    let shots = (0..NSHOT)
        .map(|s| {
            [
                (s as f32 + 1.0) / (NSHOT as f32 + 1.0) * ext[0],
                0.5 * ext[1],
                0.08 * ext[2],
            ]
        })
        .collect();
    Setup {
        domain,
        true_model,
        smooth,
        cfg,
        rec,
        shots,
    }
}

fn surveys(s: &Setup) -> (Survey, Survey) {
    let mut true_sv =
        Survey::new(s.true_model.clone(), s.cfg.clone()).with_receivers(s.rec.clone());
    let mut smooth_sv = Survey::new(s.smooth.clone(), s.cfg.clone()).with_receivers(s.rec.clone());
    true_sv.add_shot_line(NSHOT, 0.08);
    smooth_sv.add_shot_line(NSHOT, 0.08);
    // The builder must reproduce the hand-placed geometry exactly.
    for (spec, pos) in true_sv.shots().iter().zip(&s.shots) {
        assert_eq!(&spec.position, pos, "shot-line geometry drifted");
    }
    (true_sv, smooth_sv)
}

/// The reference: per shot, the `tests/rtm.rs` recipe on raw core APIs —
/// observed gather on the true model, forward history + direct gather on
/// the smooth model, time-reversed residual re-injected at the receivers,
/// zero-lag correlation — summed over shots in index order.
fn reference_images_and_gathers(s: &Setup) -> (Array3<f32>, Vec<Array2<f32>>) {
    let exec = Execution::baseline().sequential();
    let mut image = Array3::<f32>::zeros(N, N, N);
    let mut observed_all = Vec::new();
    for pos in &s.shots {
        let src = SparsePoints::new(&s.domain, vec![*pos]);

        // Observed data: true model, same receivers.
        let mut obs_fwd = Acoustic::new(
            &s.true_model,
            s.cfg.clone(),
            src.clone(),
            Some(s.rec.clone()),
        );
        obs_fwd.run(&exec);
        let observed = obs_fwd.trace().unwrap();

        // Forward on the smooth model: history + direct gather.
        let mut fwd = Acoustic::new(&s.smooth, s.cfg.clone(), src, Some(s.rec.clone()));
        let s_snaps = fwd.run_recording(&exec, EVERY);
        let direct = fwd.trace().unwrap();

        // Time-reversed residual re-injected at the receiver positions.
        let mut reversed = Array2::<f32>::zeros(NT, NREC);
        for t in 0..NT {
            for r in 0..NREC {
                reversed.set(t, r, observed.get(NT - 1 - t, r) - direct.get(NT - 1 - t, r));
            }
        }
        let mut adj =
            Acoustic::new_with_wavelets(&s.smooth, s.cfg.clone(), s.rec.clone(), reversed, None);
        let r_snaps = adj.run_recording(&exec, EVERY);

        // Zero-lag imaging, ascending snapshot index, into this shot's own
        // partial image; the stack is then the sum of per-shot images in
        // shot order.
        let mut shot_image = Array3::<f32>::zeros(N, N, N);
        let pairs = s_snaps.len().min(r_snaps.len());
        for si in 0..pairs {
            let sf = &s_snaps[si];
            let rf = &r_snaps[pairs - 1 - si];
            for (o, (a, b)) in shot_image
                .as_mut_slice()
                .iter_mut()
                .zip(sf.as_slice().iter().zip(rf.as_slice()))
            {
                *o += a * b;
            }
        }
        for (o, v) in image.as_mut_slice().iter_mut().zip(shot_image.as_slice()) {
            *o += v;
        }
        observed_all.push(observed);
    }
    (image, observed_all)
}

#[test]
fn survey_rtm_matches_per_shot_reference_bitwise() {
    let s = setup();
    let (true_sv, smooth_sv) = surveys(&s);
    let (reference, ref_observed) = reference_images_and_gathers(&s);
    assert!(reference.max_abs() > 0.0, "reference image is empty");

    for threads in [1usize, 2, 4] {
        let policy = Policy::Capped { threads };
        // Observed data through the survey engine must equal the per-shot
        // reference gathers byte for byte.
        let observed: Vec<Array2<f32>> = run_survey(
            &true_sv,
            &SurveyOptions {
                policy,
                ..SurveyOptions::default()
            },
        )
        .unwrap()
        .into_iter()
        .map(|r| r.gather.unwrap())
        .collect();
        for (got, want) in observed.iter().zip(&ref_observed) {
            assert_eq!(got.as_slice(), want.as_slice(), "gather differs (cap {threads})");
        }

        // Dense-history survey RTM.
        let dense = rtm_image(
            &smooth_sv,
            &observed,
            &RtmOptions::new(EVERY).with_policy(policy),
        )
        .unwrap();
        assert_eq!(
            reference.as_slice(),
            dense.as_slice(),
            "dense survey image differs from per-shot reference (cap {threads})"
        );

        // Checkpointed forward storage: mid-survey ring checkpoint/restore
        // must re-materialise the identical history. A stride that does
        // not divide nt (30 % 8 != 0) exercises the ragged tail too.
        for stride in [8usize, 10] {
            let ckpt = rtm_image(
                &smooth_sv,
                &observed,
                &RtmOptions::new(EVERY)
                    .with_policy(policy)
                    .with_checkpoint_stride(stride),
            )
            .unwrap();
            assert_eq!(
                reference.as_slice(),
                ckpt.as_slice(),
                "checkpointed (stride {stride}) image differs (cap {threads})"
            );
        }
    }
}

/// The survey engine's custom-wavelet shots reproduce the shared-Ricker
/// path bitwise when handed the same samples — the RTM adjoint relies on
/// exactly this equivalence.
#[test]
fn custom_wavelet_shot_matches_shared_ricker() {
    let s = setup();
    let ricker = tempest::sparse::wavelet::ricker(s.cfg.f0, s.cfg.dt, s.cfg.nt);
    let pos = s.shots[0];

    let mut shared = Survey::new(s.smooth.clone(), s.cfg.clone()).with_receivers(s.rec.clone());
    shared.add_shot(tempest::survey::ShotSpec::at(pos));
    let mut custom = Survey::new(s.smooth.clone(), s.cfg.clone()).with_receivers(s.rec.clone());
    custom.add_shot(tempest::survey::ShotSpec::with_wavelet(pos, ricker.clone()));

    let a = run_survey(&shared, &SurveyOptions::default()).unwrap();
    let b = run_survey(&custom, &SurveyOptions::default()).unwrap();
    assert_eq!(
        a[0].gather.as_ref().unwrap().as_slice(),
        b[0].gather.as_ref().unwrap().as_slice()
    );

    // And the explicit-wavelet core constructor agrees with both.
    let src = SparsePoints::new(&s.domain, vec![pos]);
    let mut core = Acoustic::new_with_wavelets(
        &s.smooth,
        s.cfg.clone(),
        src,
        wavelet_matrix(&ricker, 1),
        Some(s.rec.clone()),
    );
    core.run(&Execution::baseline().sequential());
    assert_eq!(
        a[0].gather.as_ref().unwrap().as_slice(),
        core.trace().unwrap().as_slice()
    );
}
