//! Property-style tests over the core invariants: interpolation weights,
//! the precomputation scheme, schedule coverage and legality, and FD
//! coefficient exactness — randomised versions of the paper's structural
//! claims. Cases are drawn from a seeded [`Rng64`] stream (hermetic builds,
//! no proptest), so every failure is reproducible.

use tempest::grid::{Domain, Rng64, Shape};
use tempest::sparse::wavelet::wavelet_matrix_scaled;
use tempest::sparse::{trilinear, CompressedMask, SourcePrecompute, SparsePoints};
use tempest::stencil::central_coeffs;
use tempest::tiling::legality::{check_diagonal_independence, check_schedule, DepModel};
use tempest::tiling::wavefront::{diagonal_slabs, slabs, WavefrontSpec};

const CASES: usize = 64;

fn small_domain() -> Domain {
    Domain::uniform(Shape::cube(12), 10.0)
}

/// Trilinear weights are a partition of unity with all weights in
/// [0, 1], for any point inside the domain.
#[test]
fn interp_partition_of_unity() {
    let mut rng = Rng64::new(0xB1);
    for _ in 0..CASES {
        let (fx, fy, fz) = (rng.next_f32(), rng.next_f32(), rng.next_f32());
        let d = small_domain();
        let e = d.extent();
        let p = [fx * e[0], fy * e[1], fz * e[2]];
        let st = trilinear(&d, p);
        let sum: f32 = st.cells.iter().map(|&(_, w)| w).sum();
        assert!((sum - 1.0).abs() < 1e-5);
        for (c, w) in &st.cells {
            assert!((0.0..=1.0).contains(w));
            assert!(d.shape().contains(c[0], c[1], c[2]));
        }
    }
}

/// The interpolated position of the weights' centroid reproduces the
/// query point (trilinear reproduces linear functions).
#[test]
fn interp_reproduces_coordinates() {
    let mut rng = Rng64::new(0xB2);
    for _ in 0..CASES {
        let (fx, fy, fz) = (
            rng.range_f32(0.01, 0.99),
            rng.range_f32(0.01, 0.99),
            rng.range_f32(0.01, 0.99),
        );
        let d = small_domain();
        let e = d.extent();
        let p = [fx * e[0], fy * e[1], fz * e[2]];
        let st = trilinear(&d, p);
        for (axis, &pa) in p.iter().enumerate() {
            let val: f32 = st
                .cells
                .iter()
                .map(|&(c, w)| w * d.coord_of(c[0], c[1], c[2])[axis])
                .sum();
            assert!((val - pa).abs() < 1e-2, "axis {}: {} vs {}", axis, val, pa);
        }
    }
}

/// SM/SID consistency for random source sets: mask ⇔ id, ids dense and
/// ascending, every source footprint covered.
#[test]
fn precompute_mask_id_invariants() {
    let mut rng = Rng64::new(0xB3);
    for _ in 0..CASES {
        let seed = rng.next_u64() % 1000;
        let n = rng.range_usize(1, 12);
        let d = small_domain();
        let pts = SparsePoints::random(&d, n, seed);
        let w = wavelet_matrix_scaled(&[1.0, -0.5, 0.25], &vec![1.0; n]);
        let pre = SourcePrecompute::build(&d, &pts, &w);
        let mut next = 0i32;
        for (x, y, z) in d.shape().iter() {
            let m = pre.sm.get(x, y, z);
            let id = pre.sid.get(x, y, z);
            assert_eq!(m == 1, id >= 0);
            if id >= 0 {
                assert_eq!(id, next);
                next += 1;
            }
        }
        assert_eq!(next as usize, pre.npts());
        assert!(pre.npts() <= 8 * n);
        // Probe construction agrees with the analytic one.
        let probed = SourcePrecompute::build_probed(&d, &pts, &w);
        assert_eq!(&pre.points, &probed.points);
    }
}

/// The compressed mask is a lossless re-indexing of SID.
#[test]
fn compressed_mask_lossless() {
    let mut rng = Rng64::new(0xB4);
    for _ in 0..CASES {
        let seed = rng.next_u64() % 1000;
        let n = rng.range_usize(1, 12);
        let d = small_domain();
        let pts = SparsePoints::random(&d, n, seed);
        let w = wavelet_matrix_scaled(&[1.0], &vec![1.0; n]);
        let pre = SourcePrecompute::build(&d, &pts, &w);
        let comp = CompressedMask::build(&pre.sid);
        assert_eq!(comp.total(), pre.npts());
        let s = d.shape();
        for x in 0..s.nx {
            for y in 0..s.ny {
                let from_comp: Vec<(usize, usize)> = comp.entries(x, y).collect();
                let from_sid: Vec<(usize, usize)> = (0..s.nz)
                    .filter_map(|z| {
                        let id = pre.sid.get(x, y, z);
                        (id >= 0).then_some((z, id as usize))
                    })
                    .collect();
                assert_eq!(from_comp, from_sid);
            }
        }
    }
}

/// Wave-front schedules cover every (vt, x, y) exactly once, whatever
/// the tile geometry.
#[test]
fn wavefront_coverage() {
    let mut rng = Rng64::new(0xB5);
    for _ in 0..CASES {
        let nx = rng.range_usize(4, 24);
        let ny = rng.range_usize(4, 24);
        let tile_x = rng.range_usize(1, 16);
        let tile_y = rng.range_usize(1, 16);
        let tile_t = rng.range_usize(1, 6);
        let skew = rng.range_usize(0, 4);
        let nvt = rng.range_usize(1, 8);
        let shape = Shape::new(nx, ny, 2);
        let spec = WavefrontSpec::new(tile_x, tile_y, tile_t, skew, 4, 4);
        let mut counts = vec![0u32; nvt * nx * ny];
        for s in slabs(shape, nvt, &spec) {
            for x in s.range.x0..s.range.x1 {
                for y in s.range.y0..s.range.y1 {
                    counts[(s.vt * nx + x) * ny + y] += 1;
                }
            }
        }
        assert!(counts.iter().all(|&c| c == 1));
    }
}

/// Schedules with skew ≥ radius pass the legality checker for both
/// buffer depths (the paper's Fig. 7 angle condition).
#[test]
fn wavefront_legality() {
    let mut rng = Rng64::new(0xB6);
    for _ in 0..CASES {
        let radius = rng.range_usize(0, 4);
        let extra = rng.range_usize(0, 3);
        let tile = rng.range_usize(2, 12);
        let tile_t = rng.range_usize(1, 6);
        let levels = rng.range_usize(2, 4);
        let shape = Shape::new(18, 14, 2);
        let skew = radius + extra;
        let spec = WavefrontSpec::new(tile, tile, tile_t, skew, 4, 4);
        let sched = slabs(shape, 7, &spec);
        assert_eq!(
            check_schedule(shape, 7, DepModel { radius, levels }, sched),
            Ok(()),
            "radius {radius} skew {skew} tile {tile} tile_t {tile_t} levels {levels}"
        );
    }
}

/// Diagonal-parallel wave-front schedules: for any spec with skew ≥ radius,
/// (a) same-diagonal tiles have pairwise-disjoint dependency footprints
/// (the static independence checker passes), (b) the diagonal-major
/// serialisation covers every space-time point exactly once and replays
/// cleanly through the dependency checker.
#[test]
fn diagonal_wavefront_legality() {
    let mut rng = Rng64::new(0xB8);
    for _ in 0..CASES {
        let radius = rng.range_usize(0, 4);
        let skew = radius + rng.range_usize(0, 3);
        let tile = rng.range_usize(2, 12);
        let tile_t = rng.range_usize(1, 6);
        let levels = rng.range_usize(2, 4);
        let nvt = rng.range_usize(1, 8);
        let (nx, ny) = (rng.range_usize(6, 24), rng.range_usize(6, 24));
        let shape = Shape::new(nx, ny, 2);
        let spec = WavefrontSpec::new(tile, tile, tile_t, skew, 4, 4);
        let model = DepModel { radius, levels };
        let ctx = format!("radius {radius} skew {skew} tile {tile} tile_t {tile_t} levels {levels}");
        assert_eq!(
            check_diagonal_independence(shape, nvt, model, &spec),
            Ok(()),
            "independence: {ctx}"
        );
        let sched = diagonal_slabs(shape, nvt, &spec);
        let mut counts = vec![0u32; nvt * nx * ny];
        for s in &sched {
            for x in s.range.x0..s.range.x1 {
                for y in s.range.y0..s.range.y1 {
                    counts[(s.vt * nx + x) * ny + y] += 1;
                }
            }
        }
        assert!(counts.iter().all(|&c| c == 1), "coverage: {ctx}");
        assert_eq!(check_schedule(shape, nvt, model, sched), Ok(()), "replay: {ctx}");
    }
}

/// Central second-derivative weights: symmetric, zero-sum, correct
/// second moment — for every even order.
#[test]
fn fd_weight_invariants() {
    for half in 1usize..9 {
        let order = 2 * half;
        let w = central_coeffs(2, order);
        let r = order / 2;
        let sum: f64 = w.iter().sum();
        assert!(sum.abs() < 1e-9);
        for k in 1..=r {
            assert!((w[r + k] - w[r - k]).abs() < 1e-11);
        }
        // Second moment Σ w_k k² = 2 (that's what makes it a 2nd derivative).
        let m2: f64 = w
            .iter()
            .enumerate()
            .map(|(i, &wk)| {
                let k = i as f64 - r as f64;
                wk * k * k
            })
            .sum();
        assert!((m2 - 2.0).abs() < 1e-8, "order {}: m2 {}", order, m2);
    }
}

/// Decomposed injection (src_dcmp) conserves total injected amplitude:
/// Σ_id dcmp[t][id] = Σ_s src[t][s] (partition of unity summed over
/// footprints).
#[test]
fn decomposition_conserves_amplitude() {
    let mut rng = Rng64::new(0xB7);
    for _ in 0..CASES {
        let seed = rng.next_u64() % 500;
        let n = rng.range_usize(1, 10);
        let d = small_domain();
        let pts = SparsePoints::random(&d, n, seed);
        let amps: Vec<f32> = (0..n).map(|i| 1.0 + i as f32 * 0.5).collect();
        let w = wavelet_matrix_scaled(&[1.0, -2.0], &amps);
        let pre = SourcePrecompute::build(&d, &pts, &w);
        for t in 0..2 {
            let total_dcmp: f64 = (0..pre.npts())
                .map(|id| pre.src_dcmp.get(t, id) as f64)
                .sum();
            let total_src: f64 = (0..n).map(|s| w.get(t, s) as f64).sum();
            assert!(
                (total_dcmp - total_src).abs() < 1e-4 * total_src.abs().max(1.0),
                "t {}: {} vs {}",
                t,
                total_dcmp,
                total_src
            );
        }
    }
}
