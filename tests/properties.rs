//! Property-based tests (proptest) over the core invariants:
//! interpolation weights, the precomputation scheme, schedule coverage and
//! legality, and FD coefficient exactness — randomised versions of the
//! paper's structural claims.

use proptest::prelude::*;
use tempest::grid::{Domain, Shape};
use tempest::sparse::wavelet::wavelet_matrix_scaled;
use tempest::sparse::{trilinear, CompressedMask, SourcePrecompute, SparsePoints};
use tempest::stencil::central_coeffs;
use tempest::tiling::legality::{check_schedule, DepModel};
use tempest::tiling::wavefront::{slabs, WavefrontSpec};

fn small_domain() -> Domain {
    Domain::uniform(Shape::cube(12), 10.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Trilinear weights are a partition of unity with all weights in
    /// [0, 1], for any point inside the domain.
    #[test]
    fn interp_partition_of_unity(fx in 0.0f32..1.0, fy in 0.0f32..1.0, fz in 0.0f32..1.0) {
        let d = small_domain();
        let e = d.extent();
        let p = [fx * e[0], fy * e[1], fz * e[2]];
        let st = trilinear(&d, p);
        let sum: f32 = st.cells.iter().map(|&(_, w)| w).sum();
        prop_assert!((sum - 1.0).abs() < 1e-5);
        for (c, w) in &st.cells {
            prop_assert!((0.0..=1.0).contains(w));
            prop_assert!(d.shape().contains(c[0], c[1], c[2]));
        }
    }

    /// The interpolated position of the weights' centroid reproduces the
    /// query point (trilinear reproduces linear functions).
    #[test]
    fn interp_reproduces_coordinates(fx in 0.01f32..0.99, fy in 0.01f32..0.99, fz in 0.01f32..0.99) {
        let d = small_domain();
        let e = d.extent();
        let p = [fx * e[0], fy * e[1], fz * e[2]];
        let st = trilinear(&d, p);
        for (axis, &pa) in p.iter().enumerate() {
            let val: f32 = st
                .cells
                .iter()
                .map(|&(c, w)| w * d.coord_of(c[0], c[1], c[2])[axis])
                .sum();
            prop_assert!((val - pa).abs() < 1e-2, "axis {}: {} vs {}", axis, val, pa);
        }
    }

    /// SM/SID consistency for random source sets: mask ⇔ id, ids dense and
    /// ascending, every source footprint covered.
    #[test]
    fn precompute_mask_id_invariants(seed in 0u64..1000, n in 1usize..12) {
        let d = small_domain();
        let pts = SparsePoints::random(&d, n, seed);
        let w = wavelet_matrix_scaled(&[1.0, -0.5, 0.25], &vec![1.0; n]);
        let pre = SourcePrecompute::build(&d, &pts, &w);
        let mut next = 0i32;
        for (x, y, z) in d.shape().iter() {
            let m = pre.sm.get(x, y, z);
            let id = pre.sid.get(x, y, z);
            prop_assert_eq!(m == 1, id >= 0);
            if id >= 0 {
                prop_assert_eq!(id, next);
                next += 1;
            }
        }
        prop_assert_eq!(next as usize, pre.npts());
        prop_assert!(pre.npts() <= 8 * n);
        // Probe construction agrees with the analytic one.
        let probed = SourcePrecompute::build_probed(&d, &pts, &w);
        prop_assert_eq!(&pre.points, &probed.points);
    }

    /// The compressed mask is a lossless re-indexing of SID.
    #[test]
    fn compressed_mask_lossless(seed in 0u64..1000, n in 1usize..12) {
        let d = small_domain();
        let pts = SparsePoints::random(&d, n, seed);
        let w = wavelet_matrix_scaled(&[1.0], &vec![1.0; n]);
        let pre = SourcePrecompute::build(&d, &pts, &w);
        let comp = CompressedMask::build(&pre.sid);
        prop_assert_eq!(comp.total(), pre.npts());
        let s = d.shape();
        for x in 0..s.nx {
            for y in 0..s.ny {
                let from_comp: Vec<(usize, usize)> = comp.entries(x, y).collect();
                let from_sid: Vec<(usize, usize)> = (0..s.nz)
                    .filter_map(|z| {
                        let id = pre.sid.get(x, y, z);
                        (id >= 0).then_some((z, id as usize))
                    })
                    .collect();
                prop_assert_eq!(from_comp, from_sid);
            }
        }
    }

    /// Wave-front schedules cover every (vt, x, y) exactly once, whatever
    /// the tile geometry.
    #[test]
    fn wavefront_coverage(
        nx in 4usize..24,
        ny in 4usize..24,
        tile_x in 1usize..16,
        tile_y in 1usize..16,
        tile_t in 1usize..6,
        skew in 0usize..4,
        nvt in 1usize..8,
    ) {
        let shape = Shape::new(nx, ny, 2);
        let spec = WavefrontSpec::new(tile_x, tile_y, tile_t, skew, 4, 4);
        let mut counts = vec![0u32; nvt * nx * ny];
        for s in slabs(shape, nvt, &spec) {
            for x in s.range.x0..s.range.x1 {
                for y in s.range.y0..s.range.y1 {
                    counts[(s.vt * nx + x) * ny + y] += 1;
                }
            }
        }
        prop_assert!(counts.iter().all(|&c| c == 1));
    }

    /// Schedules with skew ≥ radius pass the legality checker for both
    /// buffer depths (the paper's Fig. 7 angle condition).
    #[test]
    fn wavefront_legality(
        radius in 0usize..4,
        extra in 0usize..3,
        tile in 2usize..12,
        tile_t in 1usize..6,
        levels in 2usize..4,
    ) {
        let shape = Shape::new(18, 14, 2);
        let skew = radius + extra;
        let spec = WavefrontSpec::new(tile, tile, tile_t, skew, 4, 4);
        let sched = slabs(shape, 7, &spec);
        prop_assert_eq!(
            check_schedule(shape, 7, DepModel { radius, levels }, sched),
            Ok(())
        );
    }

    /// Central second-derivative weights: symmetric, zero-sum, correct
    /// second moment — for every even order.
    #[test]
    fn fd_weight_invariants(half in 1usize..9) {
        let order = 2 * half;
        let w = central_coeffs(2, order);
        let r = order / 2;
        let sum: f64 = w.iter().sum();
        prop_assert!(sum.abs() < 1e-9);
        for k in 1..=r {
            prop_assert!((w[r + k] - w[r - k]).abs() < 1e-11);
        }
        // Second moment Σ w_k k² = 2 (that's what makes it a 2nd derivative).
        let m2: f64 = w
            .iter()
            .enumerate()
            .map(|(i, &wk)| {
                let k = i as f64 - r as f64;
                wk * k * k
            })
            .sum();
        prop_assert!((m2 - 2.0).abs() < 1e-8, "order {}: m2 {}", order, m2);
    }

    /// Decomposed injection (src_dcmp) conserves total injected amplitude:
    /// Σ_id dcmp[t][id] = Σ_s src[t][s] (partition of unity summed over
    /// footprints).
    #[test]
    fn decomposition_conserves_amplitude(seed in 0u64..500, n in 1usize..10) {
        let d = small_domain();
        let pts = SparsePoints::random(&d, n, seed);
        let amps: Vec<f32> = (0..n).map(|i| 1.0 + i as f32 * 0.5).collect();
        let w = wavelet_matrix_scaled(&[1.0, -2.0], &amps);
        let pre = SourcePrecompute::build(&d, &pts, &w);
        for t in 0..2 {
            let total_dcmp: f64 = (0..pre.npts())
                .map(|id| pre.src_dcmp.get(t, id) as f64)
                .sum();
            let total_src: f64 = (0..n).map(|s| w.get(t, s) as f64).sum();
            prop_assert!(
                (total_dcmp - total_src).abs() < 1e-4 * total_src.abs().max(1.0),
                "t {}: {} vs {}", t, total_dcmp, total_src
            );
        }
    }
}
