//! End-to-end reverse-time-migration tests — the paper's motivating workload
//! (§I.C) driven through the whole stack, split by pipeline stage so a
//! failure localises: forward modelling with off-grid receivers, adjoint
//! propagation with receivers re-injected as off-grid sources, and the
//! cross-correlation imaging condition. The expensive wavefield history is
//! computed once and shared across the stage tests; the checkpointed
//! restart path of `core/src/shared.rs` is covered separately.

use std::sync::OnceLock;

use tempest::core::config::EquationKind;
use tempest::core::{Acoustic, Execution, SimConfig, WaveSolver};
use tempest::grid::{Array2, Array3, Domain, Model, Shape};
use tempest::sparse::SparsePoints;

const N: usize = 36;
const EVERY: usize = 2;
const INTERFACE_FRAC: f32 = 0.5;

/// Everything the stage tests inspect, computed once.
struct RtmPipeline {
    nt: usize,
    /// Gather recorded in the true (two-layer) model.
    gather: Array2<f32>,
    /// Direct-wave gather in the smooth model (for muting).
    direct: Array2<f32>,
    /// Forward source-wavefield history in the smooth model.
    s_snaps: Vec<Array3<f32>>,
    /// Adjoint receiver-wavefield history.
    r_snaps: Vec<Array3<f32>>,
}

fn pipeline() -> &'static RtmPipeline {
    static PIPELINE: OnceLock<RtmPipeline> = OnceLock::new();
    PIPELINE.get_or_init(|| {
        let domain = Domain::uniform(Shape::cube(N), 10.0);
        let true_model = Model::two_layer(domain, 1500.0, 3500.0, INTERFACE_FRAC);
        let smooth_model = Model::homogeneous(domain, 1500.0);

        let cfg = SimConfig::new(domain, 4, EquationKind::Acoustic, 3500.0, 420.0)
            .with_f0(22.0)
            .with_boundary(6, 0.4);
        let nt = cfg.nt;

        let e = domain.extent();
        let shot = [0.5 * e[0] + 3.0, 0.5 * e[1] + 3.0, 0.08 * e[2]];
        let src = SparsePoints::new(&domain, vec![shot]);
        let rec = SparsePoints::receiver_line(&domain, 15, 0.08);

        // Forward pass in the true model: record the gather.
        let mut fwd = Acoustic::new(&true_model, cfg.clone(), src.clone(), Some(rec.clone()));
        fwd.run(&Execution::baseline().sequential());
        let gather = fwd.trace().unwrap();

        // Source history + direct-wave gather in the smooth model.
        let mut fwd_smooth = Acoustic::new(&smooth_model, cfg.clone(), src, Some(rec.clone()));
        let s_snaps = fwd_smooth.run_recording(&Execution::baseline().sequential(), EVERY);
        let direct = fwd_smooth.trace().unwrap();

        // Adjoint pass: receivers fire the muted, time-reversed gather.
        let mut reversed = Array2::<f32>::zeros(nt, rec.len());
        for t in 0..nt {
            for r in 0..rec.len() {
                reversed.set(t, r, gather.get(nt - 1 - t, r) - direct.get(nt - 1 - t, r));
            }
        }
        let mut bwd = Acoustic::new_with_wavelets(&smooth_model, cfg, rec, reversed, None);
        let r_snaps = bwd.run_recording(&Execution::baseline().sequential(), EVERY);

        RtmPipeline {
            nt,
            gather,
            direct,
            s_snaps,
            r_snaps,
        }
    })
}

/// First timestep at which any receiver exceeds `frac` of the gather's peak.
fn onset(g: &Array2<f32>, nt: usize, nrec: usize, frac: f32) -> Option<usize> {
    let peak = (0..nt)
        .flat_map(|t| (0..nrec).map(move |r| (t, r)))
        .map(|(t, r)| g.get(t, r).abs())
        .fold(0.0f32, f32::max);
    (0..nt).find(|&t| (0..nrec).any(|r| g.get(t, r).abs() > frac * peak))
}

#[test]
fn rtm_forward_gather_records_reflection() {
    let p = pipeline();
    let nrec = 15;
    // The true-model gather must contain energy beyond the direct wave: the
    // residual (gather − direct) is the reflection, and it must arrive
    // *after* the direct arrival.
    let mut residual = Array2::<f32>::zeros(p.nt, nrec);
    for t in 0..p.nt {
        for r in 0..nrec {
            residual.set(t, r, p.gather.get(t, r) - p.direct.get(t, r));
        }
    }
    let direct_onset = onset(&p.direct, p.nt, nrec, 0.01).expect("direct wave must register");
    let refl_onset = onset(&residual, p.nt, nrec, 0.01).expect("reflection must register");
    assert!(
        refl_onset > direct_onset,
        "reflection onset (t={refl_onset}) must trail the direct arrival (t={direct_onset})"
    );
    let res_energy: f64 = (0..p.nt)
        .flat_map(|t| (0..nrec).map(move |r| (t, r)))
        .map(|(t, r)| (residual.get(t, r) as f64).powi(2))
        .sum();
    assert!(res_energy > 0.0, "reflector must leave energy in the gather");
}

#[test]
fn rtm_adjoint_wavefield_propagates() {
    let p = pipeline();
    // Histories must pair up snapshot-for-snapshot for the imaging zip.
    assert_eq!(p.s_snaps.len(), p.r_snaps.len());
    assert!(p.s_snaps.len() > 10, "need a meaningful history");
    // The adjoint field is driven by the re-injected residual: by the end of
    // the backward run (early physical time) it must be alive and finite.
    let last = p.r_snaps.last().unwrap();
    assert!(last.max_abs() > 0.0, "adjoint wavefield died");
    assert!(
        last.as_slice().iter().all(|v| v.is_finite()),
        "adjoint wavefield diverged"
    );
}

#[test]
fn rtm_imaging_condition_focuses_at_reflector() {
    let p = pipeline();
    // Zero-lag cross-correlation of forward and time-reversed adjoint
    // histories.
    let mut image = Array3::<f32>::zeros(N, N, N);
    let pairs = p.s_snaps.len().min(p.r_snaps.len());
    for si in 0..pairs {
        let s = &p.s_snaps[si];
        let r = &p.r_snaps[pairs - 1 - si];
        for (i, v) in image.as_mut_slice().iter_mut().enumerate() {
            *v += s.as_slice()[i] * r.as_slice()[i];
        }
    }

    // Depth profile must peak at the reflector (below the shallow imprint).
    let mut profile = vec![0.0f64; N];
    for (_, _, z, v) in image.iter_indexed() {
        profile[z] += (v as f64).abs();
    }
    let z_interface = (INTERFACE_FRAC * N as f32) as usize;
    let peak_z = profile
        .iter()
        .enumerate()
        .filter(|(z, _)| *z >= N / 4)
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .unwrap()
        .0;
    assert!(
        peak_z.abs_diff(z_interface) <= 3,
        "image peak at z={peak_z}, reflector at z={z_interface}; profile {profile:?}"
    );
}

#[test]
fn rtm_checkpointed_restart_is_bitwise() {
    // The restart primitive behind checkpointed adjoint loops: running
    // [0, s), checkpointing, and running [s, nt) must equal the
    // uninterrupted run bit-for-bit — and restoring the checkpoint must
    // re-materialise the second half identically.
    let n = 24;
    let domain = Domain::uniform(Shape::cube(n), 10.0);
    let model = Model::two_layer(domain, 1500.0, 3000.0, 0.5);
    let cfg = SimConfig::new(domain, 4, EquationKind::Acoustic, 3000.0, 300.0)
        .with_f0(20.0)
        .with_boundary(4, 0.3);
    let nt = cfg.nt;
    assert!(nt >= 4, "config too short to split");
    let split = nt / 2;
    let src = SparsePoints::single_center(&domain, 0.3);
    let exec = Execution::baseline().sequential();

    // Uninterrupted reference.
    let mut full = Acoustic::new(&model, cfg.clone(), src.clone(), None);
    full.run(&exec);
    let reference = full.final_field();
    assert!(reference.max_abs() > 0.0);

    // Split run with a checkpoint at the seam.
    let mut part = Acoustic::new(&model, cfg, src, None);
    part.run_range(&exec, 0, split);
    let cp = part.checkpoint();
    part.run_range(&exec, split, nt);
    let split_field = part.final_field();
    assert_eq!(reference.as_slice(), split_field.as_slice());

    // Restart: restore the seam state and replay the second half.
    part.restore_checkpoint(&cp);
    // Guard against a vacuous test: the restored seam state must differ
    // from the final state before the replay brings it back.
    assert_ne!(reference.as_slice(), part.final_field().as_slice());
    part.run_range(&exec, split, nt);
    let replayed = part.final_field();
    assert_eq!(reference.as_slice(), replayed.as_slice());
}
