//! End-to-end reverse-time-migration test — the paper's motivating workload
//! (§I.C) driven through the whole stack: forward modelling with off-grid
//! receivers, adjoint propagation with receivers re-injected as off-grid
//! sources, and the cross-correlation imaging condition. The migrated image
//! must focus at the true reflector depth.

use tempest::core::config::EquationKind;
use tempest::core::{Acoustic, Execution, SimConfig, WaveSolver};
use tempest::grid::{Array2, Array3, Domain, Model, Shape};
use tempest::sparse::SparsePoints;

#[test]
fn rtm_image_focuses_at_reflector() {
    let n = 36;
    let every = 2;
    let domain = Domain::uniform(Shape::cube(n), 10.0);
    let interface_frac = 0.5;
    let true_model = Model::two_layer(domain, 1500.0, 3500.0, interface_frac);
    let smooth_model = Model::homogeneous(domain, 1500.0);

    let cfg = SimConfig::new(domain, 4, EquationKind::Acoustic, 3500.0, 420.0)
        .with_f0(22.0)
        .with_boundary(6, 0.4);
    let nt = cfg.nt;

    let e = domain.extent();
    let shot = [0.5 * e[0] + 3.0, 0.5 * e[1] + 3.0, 0.08 * e[2]];
    let src = SparsePoints::new(&domain, vec![shot]);
    let rec = SparsePoints::receiver_line(&domain, 15, 0.08);

    // Forward pass in the true model: record the gather.
    let mut fwd = Acoustic::new(&true_model, cfg.clone(), src.clone(), Some(rec.clone()));
    fwd.run(&Execution::baseline().sequential());
    let gather = fwd.trace().unwrap();

    // Source history + direct-wave gather in the smooth model.
    let mut fwd_smooth = Acoustic::new(&smooth_model, cfg.clone(), src, Some(rec.clone()));
    let s_snaps = fwd_smooth.run_recording(&Execution::baseline().sequential(), every);
    let direct = fwd_smooth.trace().unwrap();

    // Adjoint pass: receivers fire the muted, time-reversed gather.
    let mut reversed = Array2::<f32>::zeros(nt, rec.len());
    for t in 0..nt {
        for r in 0..rec.len() {
            reversed.set(t, r, gather.get(nt - 1 - t, r) - direct.get(nt - 1 - t, r));
        }
    }
    let mut bwd = Acoustic::new_with_wavelets(&smooth_model, cfg, rec, reversed, None);
    let r_snaps = bwd.run_recording(&Execution::baseline().sequential(), every);

    // Imaging condition.
    let mut image = Array3::<f32>::zeros(n, n, n);
    let pairs = s_snaps.len().min(r_snaps.len());
    assert!(pairs > 10, "need a meaningful history, got {pairs}");
    for si in 0..pairs {
        let s = &s_snaps[si];
        let r = &r_snaps[pairs - 1 - si];
        for (i, v) in image.as_mut_slice().iter_mut().enumerate() {
            *v += s.as_slice()[i] * r.as_slice()[i];
        }
    }

    // Depth profile must peak at the reflector (below the shallow imprint).
    let mut profile = vec![0.0f64; n];
    for (_, _, z, v) in image.iter_indexed() {
        profile[z] += (v as f64).abs();
    }
    let z_interface = (interface_frac * n as f32) as usize;
    let peak_z = profile
        .iter()
        .enumerate()
        .filter(|(z, _)| *z >= n / 4)
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .unwrap()
        .0;
    assert!(
        peak_z.abs_diff(z_interface) <= 3,
        "image peak at z={peak_z}, reflector at z={z_interface}; profile {profile:?}"
    );
}
