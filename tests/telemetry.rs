//! Exact-count oracles for the live telemetry layer (DESIGN.md §15).
//!
//! Telemetry must be *deterministic where it claims to be*: the heartbeat
//! count mirrors the accounting counters exactly (`ParTasks` +
//! `ShotStarted` + `ShotCompleted`, plus one admission beat per job run by
//! the service), the queue gauges are recomputed from queue state under its
//! lock (exact levels, not samples), and everything scraped from `/metrics`
//! must agree with an in-process snapshot — identically across worker caps.
//! The wall-clock side (heartbeat *age*, the stall watchdog) is validated
//! with seeded fault injection: a hang wedged between two shots must trip
//! the watchdog exactly once, and a clean run must never trip it.
//!
//! Compiled only with `--features obs`; counters and gauges are
//! process-global, so every test serialises on one mutex and resets the
//! registries. The CI `telemetry` job runs this suite at `TEMPEST_THREADS`
//! 1/2/4.

#![cfg(feature = "obs")]

use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

use tempest::core::config::EquationKind;
use tempest::core::SimConfig;
use tempest::grid::{Domain, Model, Shape};
use tempest::obs::metrics::{self, Gauge};
use tempest::obs::{self, serve, Counter};
use tempest::par::Policy;
use tempest::sparse::SparsePoints;
use tempest::survey::{
    run_survey, JobSpec, JobState, ServiceConfig, ShotSpec, Survey, SurveyOptions, SurveyService,
};

/// Global-counter tests cannot overlap: the registries are process-wide.
static LOCK: Mutex<()> = Mutex::new(());

fn guard(telemetry: bool) -> MutexGuard<'static, ()> {
    let g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    obs::set_enabled(true);
    obs::reset();
    obs::trace::set_enabled(true);
    obs::trace::reset();
    metrics::set_telemetry(telemetry);
    metrics::reset_metrics();
    g
}

fn survey_with(n_shots: usize) -> Survey {
    let domain = Domain::uniform(Shape::cube(12), 10.0);
    let model = Model::homogeneous(domain, 2000.0);
    let cfg = SimConfig::new(domain, 4, EquationKind::Acoustic, 2000.0, 30.0)
        .with_nt(4)
        .with_boundary(2, 0.3);
    let mut s =
        Survey::new(model, cfg).with_receivers(SparsePoints::receiver_line(&domain, 3, 0.2));
    s.add_shot_line(n_shots, 0.1);
    s
}

/// A survey whose single shot is out of the domain: fails deterministically.
fn failing_survey() -> Survey {
    let domain = Domain::uniform(Shape::cube(12), 10.0);
    let model = Model::homogeneous(domain, 2000.0);
    let cfg = SimConfig::new(domain, 4, EquationKind::Acoustic, 2000.0, 30.0)
        .with_nt(4)
        .with_boundary(2, 0.3);
    let mut s =
        Survey::new(model, cfg).with_receivers(SparsePoints::receiver_line(&domain, 3, 0.2));
    s.add_shot(ShotSpec::at([-50.0, 0.0, 0.0]));
    s
}

fn caps() -> [usize; 3] {
    [1, 2, 4]
}

/// The closed-form heartbeat oracle for work done so far: every parallel
/// batch item, plus the shot start/completion boundaries, plus one
/// admission beat per job the service ran.
fn heartbeat_oracle(jobs_run: u64) -> u64 {
    let p = obs::snapshot();
    p.counter(Counter::ParTasks)
        + p.counter(Counter::ShotStarted)
        + p.counter(Counter::ShotCompleted)
        + jobs_run
}

/// Engine-direct runs: heartbeats mirror the counters exactly, and the
/// whole tuple is identical at caps 1/2/4.
#[test]
fn engine_heartbeats_match_counter_oracle_at_every_cap() {
    const SHOTS: usize = 5;
    let survey = survey_with(SHOTS);
    let mut seen: Vec<u64> = Vec::new();
    for threads in caps() {
        let _g = guard(true);
        let opts = SurveyOptions {
            policy: Policy::Capped { threads },
            batch_size: 2,
            ..SurveyOptions::default()
        };
        run_survey(&survey, &opts).unwrap();
        let beats = metrics::heartbeats();
        assert!(beats > 0, "cap {threads}: no heartbeats recorded");
        assert_eq!(beats, heartbeat_oracle(0), "cap {threads}");
        assert!(metrics::heartbeat_age().is_some(), "cap {threads}");
        seen.push(beats);
    }
    assert!(
        seen.windows(2).all(|w| w[0] == w[1]),
        "heartbeat oracle drifted across caps: {seen:?}"
    );
}

/// The queue gauges are exact levels recomputed under the queue lock: a
/// paused service makes every transition deterministic.
#[test]
fn service_gauges_track_queue_states_exactly() {
    let _g = guard(true);
    let svc = SurveyService::paused();
    let a = svc.submit(JobSpec::new(Arc::new(survey_with(2))));
    let b = svc.submit(JobSpec::new(Arc::new(survey_with(1))));
    let c = svc.submit(JobSpec::new(Arc::new(failing_survey())));
    let d = svc.submit(JobSpec::new(Arc::new(survey_with(1))));
    assert_eq!(metrics::gauge(Gauge::QueueDepth), 4);
    assert_eq!(metrics::gauge(Gauge::RunningJobs), 0);

    assert!(svc.cancel(d), "queued job must accept cancellation");
    assert_eq!(metrics::gauge(Gauge::QueueDepth), 3);
    assert_eq!(metrics::gauge(Gauge::CancelledJobs), 1);

    assert_eq!(svc.drain(), 3);
    assert_eq!(metrics::gauge(Gauge::QueueDepth), 0);
    assert_eq!(metrics::gauge(Gauge::RunningJobs), 0);
    assert_eq!(metrics::gauge(Gauge::CompletedJobs), 2);
    assert_eq!(metrics::gauge(Gauge::FailedJobs), 1);
    assert_eq!(metrics::gauge(Gauge::CancelledJobs), 1);
    assert_eq!(metrics::gauge(Gauge::StalledJobs), 0);
    for (id, want) in [
        (a, JobState::Completed),
        (b, JobState::Completed),
        (c, JobState::Failed),
        (d, JobState::Cancelled),
    ] {
        assert_eq!(svc.poll(id).unwrap().state, want, "job {id}");
    }
}

/// Pull one unlabelled sample value out of a Prometheus exposition text.
fn sample_value(text: &str, name: &str) -> f64 {
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix(name) {
            if let Some(v) = rest.strip_prefix(' ') {
                return v.trim().parse().unwrap_or_else(|e| {
                    panic!("unparseable sample {name} {v:?}: {e}");
                });
            }
        }
    }
    panic!("sample {name} not found in exposition:\n{text}");
}

/// What `/metrics` serves must agree with the in-process snapshot, and the
/// deterministic counters scraped from it must be identical across caps.
#[test]
fn scraped_metrics_match_snapshot_oracles_across_caps() {
    const JOBS: u64 = 2;
    let mut seen: Vec<(u64, u64, u64)> = Vec::new();
    for threads in caps() {
        let _g = guard(true);
        let svc = SurveyService::start_with(ServiceConfig {
            endpoint_addr: Some("127.0.0.1:0".into()),
            ..ServiceConfig::default()
        });
        let addr = svc.telemetry_addr().expect("ephemeral endpoint must bind");
        let ids = [
            svc.submit(JobSpec::new(Arc::new(survey_with(3))).with_threads(threads)),
            svc.submit(JobSpec::new(Arc::new(survey_with(2))).with_threads(threads)),
        ];
        for id in ids {
            assert_eq!(svc.wait(id).unwrap().state, JobState::Completed);
        }

        let (code, text) = serve::http_get(addr, "/metrics").expect("scrape /metrics");
        assert_eq!(code, 200);
        serve::validate_exposition(&text).expect("valid exposition");

        let p = obs::snapshot();
        let started = sample_value(&text, "tempest_shot_started_total") as u64;
        let completed = sample_value(&text, "tempest_shot_completed_total") as u64;
        let par_tasks = sample_value(&text, "tempest_par_tasks_total") as u64;
        let beats = sample_value(&text, "tempest_heartbeats_total") as u64;
        assert_eq!(started, p.counter(Counter::ShotStarted), "cap {threads}");
        assert_eq!(completed, p.counter(Counter::ShotCompleted), "cap {threads}");
        assert_eq!(par_tasks, p.counter(Counter::ParTasks), "cap {threads}");
        assert_eq!(beats, metrics::heartbeats(), "cap {threads}");
        assert_eq!(beats, heartbeat_oracle(JOBS), "cap {threads}");
        assert_eq!(
            sample_value(&text, "tempest_completed_jobs") as u64,
            JOBS,
            "cap {threads}"
        );
        seen.push((started, completed, beats));
    }
    assert!(
        seen.windows(2).all(|w| w[0] == w[1]),
        "scraped oracle drifted across caps: {seen:?}"
    );
}

/// `/jobs` reflects terminal progress through the registered provider.
#[test]
fn jobs_endpoint_serves_progress_json() {
    let _g = guard(true);
    let svc = SurveyService::start_with(ServiceConfig {
        endpoint_addr: Some("127.0.0.1:0".into()),
        ..ServiceConfig::default()
    });
    let addr = svc.telemetry_addr().expect("ephemeral endpoint must bind");
    let id = svc.submit(JobSpec::new(Arc::new(survey_with(2))));
    assert_eq!(svc.wait(id).unwrap().state, JobState::Completed);

    let (code, body) = serve::http_get(addr, "/healthz").expect("scrape /healthz");
    assert_eq!((code, body.as_str()), (200, "ok\n"));

    let (code, body) = serve::http_get(addr, "/jobs").expect("scrape /jobs");
    assert_eq!(code, 200);
    let doc = obs::json::Value::parse(&body).expect("valid /jobs JSON");
    let jobs = doc.get("jobs").and_then(|v| v.as_arr()).expect("jobs array");
    assert_eq!(jobs.len(), 1);
    let j = &jobs[0];
    assert_eq!(j.get("state").and_then(|v| v.as_str()), Some("Completed"));
    assert_eq!(j.get("progress").and_then(|v| v.as_f64()), Some(1.0));
    assert_eq!(j.get("stalled").and_then(|v| v.as_bool()), Some(false));
    assert_eq!(
        doc.get("heartbeats").and_then(|v| v.as_u64()),
        Some(metrics::heartbeats())
    );
}

/// Seeded fault injection: a hang wedged between two shots goes silent
/// past `stall_after`, so the watchdog must flag the running job exactly
/// once — and clear the flag when the job completes anyway.
#[test]
fn watchdog_trips_exactly_once_on_injected_hang() {
    let _g = guard(true);
    let svc = SurveyService::start_with(ServiceConfig {
        stall_after: Duration::from_millis(250),
        watchdog_interval: Duration::from_millis(25),
        ..ServiceConfig::default()
    });
    let id = svc.submit(
        JobSpec::new(Arc::new(survey_with(3)))
            .with_threads(1)
            .with_opts(SurveyOptions {
                policy: Policy::Sequential,
                batch_size: 1,
                // Sleep 1.5 s before shot 1 starts solving — far past the
                // 250 ms stall threshold, with no heartbeat across the gap.
                inject_hang: Some((1, 1_500)),
                ..SurveyOptions::default()
            }),
    );

    let mut observed_stalled = false;
    let mut observed_gauge = 0i64;
    loop {
        let st = svc.poll(id).expect("job record");
        observed_stalled |= st.stalled;
        observed_gauge = observed_gauge.max(metrics::gauge(Gauge::StalledJobs));
        if st.state.is_terminal() {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }

    let st = svc.wait(id).unwrap();
    assert_eq!(st.state, JobState::Completed, "hang is a delay, not a failure");
    assert!(observed_stalled, "watchdog never flagged the hung job");
    assert_eq!(observed_gauge, 1, "StalledJobs gauge while hung");
    assert_eq!(st.stall_events, 1, "one hang = one stall episode");
    assert!(!st.stalled, "terminal jobs are not stalled");
    assert_eq!(metrics::gauge(Gauge::StalledJobs), 0, "gauge cleared at terminal");
}

/// A clean run never trips the watchdog, even at a tight threshold.
#[test]
fn clean_run_never_trips_watchdog() {
    let _g = guard(true);
    let svc = SurveyService::start_with(ServiceConfig {
        stall_after: Duration::from_millis(250),
        watchdog_interval: Duration::from_millis(25),
        ..ServiceConfig::default()
    });
    let ids = [
        svc.submit(JobSpec::new(Arc::new(survey_with(3)))),
        svc.submit(JobSpec::new(Arc::new(survey_with(2))).with_threads(1)),
    ];
    for id in ids {
        let st = svc.wait(id).unwrap();
        assert_eq!(st.state, JobState::Completed);
        assert_eq!(st.stall_events, 0, "job {id} flagged on a clean run");
        assert!(!st.stalled, "job {id}");
    }
    assert_eq!(metrics::gauge(Gauge::StalledJobs), 0);
}

/// With telemetry off the whole layer is inert: no heartbeats, no gauges,
/// no endpoint — even when the config asks for one.
#[test]
fn telemetry_off_records_nothing() {
    let _g = guard(false);
    let svc = SurveyService::start_with(ServiceConfig {
        endpoint_addr: Some("127.0.0.1:0".into()),
        ..ServiceConfig::default()
    });
    assert!(svc.telemetry_addr().is_none(), "endpoint without telemetry");
    let id = svc.submit(JobSpec::new(Arc::new(survey_with(2))));
    assert_eq!(svc.wait(id).unwrap().state, JobState::Completed);
    assert_eq!(metrics::heartbeats(), 0, "heartbeats without telemetry");
    assert!(metrics::heartbeat_age().is_none());
    for g in Gauge::ALL {
        assert_eq!(metrics::gauge(g), 0, "gauge {} without telemetry", g.name());
    }
}
