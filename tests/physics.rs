//! Physics sanity tests spanning crates: the simulated waves must behave
//! like waves — correct arrival times, geometric symmetry, absorbing
//! boundaries that absorb, CFL-stable evolution.

use tempest::core::config::{cfl_dt, EquationKind};
use tempest::core::{Acoustic, Execution, SimConfig, WaveSolver};
use tempest::grid::{Domain, Model, Shape};
use tempest::sparse::SparsePoints;

#[test]
fn acoustic_wavefront_arrival_time() {
    // Homogeneous medium, on-grid centre source: the wave must reach a
    // probe point at distance d after ≈ d/c (+ wavelet delay t0 = 1/f0).
    let n = 48;
    let c = 2000.0f32;
    let d = Domain::uniform(Shape::cube(n), 10.0);
    let model = Model::homogeneous(d, c);
    let f0 = 25.0f32;
    let cfg = SimConfig::new(d, 8, EquationKind::Acoustic, c, 120.0)
        .with_f0(f0)
        .with_boundary(0, 0.0);
    let dt = cfg.dt;
    let nt = cfg.nt;
    let center = d.center();
    let src = SparsePoints::new(&d, vec![center]);
    // Probe: receiver 150 m away along x.
    let probe = [center[0] + 150.0, center[1], center[2]];
    let rec = SparsePoints::new(&d, vec![probe]);
    let mut s = Acoustic::new(&model, cfg, src, Some(rec));
    s.run(&Execution::baseline().sequential());
    let tr = s.trace().unwrap();
    let peak = (0..nt).fold(0.0f32, |m, t| m.max(tr.get(t, 0).abs()));
    assert!(peak > 0.0);
    let first = (0..nt)
        .find(|&t| tr.get(t, 0).abs() > 0.05 * peak)
        .expect("wave must arrive");
    let arrival_s = first as f32 * dt;
    let expected_s = 150.0 / c + 1.0 / f0; // travel + wavelet delay
    let period = 1.0 / f0;
    assert!(
        (arrival_s - expected_s).abs() < 1.5 * period,
        "arrival {arrival_s:.4}s vs expected {expected_s:.4}s"
    );
}

#[test]
fn acoustic_spherical_symmetry_from_on_grid_source() {
    // An exactly on-grid centre source in a homogeneous isotropic medium:
    // the wavefield is symmetric under axis permutations and reflections.
    let n = 33; // odd: exact centre point
    let d = Domain::uniform(Shape::cube(n), 10.0);
    let model = Model::homogeneous(d, 2000.0);
    let cfg = SimConfig::new(d, 4, EquationKind::Acoustic, 2000.0, 50.0)
        .with_nt(20)
        .with_f0(25.0)
        .with_boundary(0, 0.0);
    let center = d.coord_of(16, 16, 16);
    let src = SparsePoints::new(&d, vec![center]);
    let mut s = Acoustic::new(&model, cfg, src, None);
    s.run(&Execution::baseline().sequential());
    let f = s.final_field();
    let c = 16usize;
    for off in [3usize, 7, 11] {
        let refv = f.get(c + off, c, c);
        for v in [
            f.get(c - off, c, c),
            f.get(c, c + off, c),
            f.get(c, c - off, c),
            f.get(c, c, c + off),
            f.get(c, c, c - off),
        ] {
            assert!(
                (v - refv).abs() <= 1e-5 * refv.abs().max(1e-20),
                "off {off}: {v} vs {refv}"
            );
        }
    }
}

#[test]
fn sponge_absorbs_boundary_reflections() {
    // Compare a probe near the boundary after the wave has hit it: with a
    // sponge, late-time amplitude must be much smaller than without.
    let n = 32;
    let c = 2000.0f32;
    let d = Domain::uniform(Shape::cube(n), 10.0);
    let model = Model::homogeneous(d, c);
    let run = |nbl: usize, coeff: f32| {
        let cfg = SimConfig::new(d, 4, EquationKind::Acoustic, c, 250.0)
            .with_f0(30.0)
            .with_boundary(nbl, coeff);
        let src = SparsePoints::single_center(&d, 0.0);
        let mut s = Acoustic::new(&model, cfg, src, None);
        s.run(&Execution::baseline().sequential());
        s.final_field().norm_l2()
    };
    let free = run(0, 0.0);
    let sponged = run(8, 0.5);
    assert!(
        sponged < 0.5 * free,
        "sponge must drain energy: {sponged} !< 0.5·{free}"
    );
}

#[test]
fn cfl_violation_goes_unstable_and_cfl_respects_it() {
    // Same problem, dt at the CFL bound (stable) vs 3× the bound
    // (explodes). This validates both the bound and the leap-frog kernel.
    let n = 24;
    let c = 3000.0f32;
    let d = Domain::uniform(Shape::cube(n), 10.0);
    let model = Model::homogeneous(d, c);
    let src = SparsePoints::single_center(&d, 0.3);

    let cfg_ok = SimConfig::new(d, 4, EquationKind::Acoustic, c, 60.0)
        .with_f0(30.0)
        .with_boundary(0, 0.0);
    let mut s = Acoustic::new(&model, cfg_ok.clone(), src, None);
    s.run(&Execution::baseline().sequential());
    let stable_max = s.final_field().max_abs();
    assert!(stable_max.is_finite() && stable_max < 1e3);

    let mut cfg_bad = cfg_ok;
    cfg_bad.dt = 3.0 * cfl_dt(EquationKind::Acoustic, 10.0, c);
    let nt = cfg_bad.nt;
    let src2 = SparsePoints::single_center(&d, 0.3);
    let mut s2 = Acoustic::new(&model, cfg_bad.with_nt(nt.min(60)), src2, None);
    s2.run(&Execution::baseline().sequential());
    let f = s2.final_field();
    let has_nan = f.as_slice().iter().any(|v| v.is_nan() || v.is_infinite());
    let unstable_max = f.max_abs();
    assert!(
        has_nan || unstable_max > 1e4,
        "3× CFL must blow up, got max {unstable_max} (nan: {has_nan})"
    );
}

#[test]
fn two_layer_reflection_exists() {
    // With a strong velocity contrast, energy reflects back into the top
    // layer: a surface receiver sees a secondary arrival after the direct
    // wave. Weak check: trace energy after the direct-wave window is
    // non-negligible with the interface present.
    let n = 48;
    let d = Domain::uniform(Shape::cube(n), 10.0);
    let f0 = 25.0f32;
    // Fixed vmax so both runs share dt/nt and traces are sample-comparable.
    let mk = |bottom: f32| {
        let model = Model::two_layer(d, 1500.0, bottom, 0.35);
        let cfg = SimConfig::new(d, 4, EquationKind::Acoustic, 4000.0, 400.0)
            .with_f0(f0)
            .with_boundary(6, 0.4);
        let e = d.extent();
        let src = SparsePoints::new(&d, vec![[0.5 * e[0], 0.5 * e[1], 0.12 * e[2]]]);
        let rec = SparsePoints::new(&d, vec![[0.5 * e[0] + 40.0, 0.5 * e[1], 0.12 * e[2]]]);
        let mut s = Acoustic::new(&model, cfg, src, Some(rec));
        s.run(&Execution::baseline().sequential());
        s.trace().unwrap()
    };
    let with_contrast = mk(4000.0);
    let uniform = mk(1500.0);
    let nt = uniform.dims()[0];
    let direct: f64 = (0..nt)
        .map(|t| (uniform.get(t, 0) as f64).powi(2))
        .sum();
    let reflected: f64 = (0..nt)
        .map(|t| ((with_contrast.get(t, 0) - uniform.get(t, 0)) as f64).powi(2))
        .sum();
    assert!(
        reflected > 0.005 * direct,
        "interface must reflect energy: reflected {reflected:.3e} vs direct {direct:.3e}"
    );
}
