//! Deterministic seeded stress test of the survey job queue.
//!
//! A paused [`SurveyService`] makes the whole protocol deterministic: N
//! jobs with seeded random surveys, priorities, thread caps, batch sizes,
//! and cancellations are submitted first, then [`drain`] executes the
//! survivors in strict (priority desc, id asc) order on the calling
//! thread. The invariants under test:
//!
//! * every job reaches **exactly one** terminal state
//!   (`terminal_transitions == 1`),
//! * cancelled jobs never run and never expose receiver traces,
//! * failed jobs carry an error payload and expose no traces,
//! * completed gathers are **byte-identical** across shot-fleet thread
//!   caps (`Capped {1, 2, 4}`) and to a direct sequential `run_survey` of
//!   the same survey.
//!
//! The CI `survey` job additionally re-runs this suite under different
//! `TEMPEST_THREADS` pool sizes; nothing here may depend on the cap.

use std::sync::Arc;

use tempest::core::config::EquationKind;
use tempest::core::SimConfig;
use tempest::grid::{Domain, Model, Rng64, Shape};
use tempest::par::Policy;
use tempest::sparse::SparsePoints;
use tempest::survey::{
    run_survey, JobSpec, JobState, ShotSpec, Survey, SurveyOptions, SurveyService,
};

const JOBS: usize = 120;
const SEED: u64 = 0x5EED_CAB5;

/// The pool of survey shapes jobs draw from. Index 3 contains an
/// out-of-domain shot and must fail deterministically.
fn survey_pool() -> Vec<Arc<Survey>> {
    let domain = Domain::uniform(Shape::cube(12), 10.0);
    let model = Model::homogeneous(domain, 2000.0);
    let cfg = SimConfig::new(domain, 4, EquationKind::Acoustic, 2000.0, 30.0)
        .with_nt(4)
        .with_boundary(2, 0.3);
    let rec = SparsePoints::receiver_line(&domain, 3, 0.2);
    let mut pool = Vec::new();
    for shots in 1..=3 {
        let mut s = Survey::new(model.clone(), cfg.clone()).with_receivers(rec.clone());
        s.add_shot_line(shots, 0.1);
        pool.push(Arc::new(s));
    }
    let mut bad = Survey::new(model, cfg).with_receivers(rec);
    bad.add_shot(ShotSpec::at([-50.0, 0.0, 0.0]));
    pool.push(Arc::new(bad));
    pool
}

/// One job's deterministic outcome: terminal state, error presence, and
/// the flattened gather bytes of a completed job.
#[derive(Debug, PartialEq)]
struct Outcome {
    state: JobState,
    has_error: bool,
    gathers: Option<Vec<Vec<f32>>>,
}

/// Run the seeded stress schedule with the given shot-fleet policy and
/// return per-job outcomes in submission order.
fn stress_run(fleet_policy: Policy) -> Vec<Outcome> {
    let pool = survey_pool();
    let svc = SurveyService::paused();
    let mut rng = Rng64::new(SEED);
    let mut ids = Vec::with_capacity(JOBS);
    let mut cancelled = Vec::with_capacity(JOBS);
    for _ in 0..JOBS {
        let survey = Arc::clone(&pool[rng.range_usize(0, pool.len())]);
        let shots = survey.len();
        let opts = SurveyOptions {
            policy: fleet_policy,
            batch_size: rng.range_usize(0, shots + 1),
            ..SurveyOptions::default()
        };
        let spec = JobSpec::new(survey)
            .with_opts(opts)
            .with_priority(rng.range_usize(0, 7) as i32 - 3)
            .with_threads([0, 1, 2][rng.range_usize(0, 3)]);
        let id = svc.submit(spec);
        // A quarter of the jobs are cancelled while still queued — the
        // deterministic cancellation path (same RNG stream every run).
        let cancel = rng.chance(0.25);
        if cancel {
            assert!(svc.cancel(id), "queued job must accept cancellation");
        }
        ids.push(id);
        cancelled.push(cancel);
    }
    let ran = svc.drain();
    let expected_live = cancelled.iter().filter(|&&c| !c).count();
    assert_eq!(ran, expected_live, "drain must run exactly the live jobs");

    ids.iter()
        .zip(&cancelled)
        .map(|(&id, &was_cancelled)| {
            let st = svc.poll(id).expect("job record");
            // Exactly one terminal state, exactly once.
            assert!(st.state.is_terminal(), "job {id} not terminal");
            assert_eq!(st.terminal_transitions, 1, "job {id} transitions");
            if was_cancelled {
                assert_eq!(st.state, JobState::Cancelled, "job {id}");
                assert_eq!(st.shots_done, 0, "cancelled job {id} ran shots");
            }
            // Cancelled and failed jobs never expose traces.
            let gathers = svc.take_gathers(id);
            match st.state {
                JobState::Completed => {
                    assert!(st.error.is_none());
                    assert_eq!(st.shots_done, st.shots_total);
                }
                JobState::Cancelled | JobState::Failed => {
                    assert!(gathers.is_none(), "job {id} leaked traces");
                    assert_eq!(
                        st.state == JobState::Failed,
                        st.error.is_some(),
                        "error payload iff failed (job {id})"
                    );
                }
                _ => unreachable!(),
            }
            Outcome {
                state: st.state,
                has_error: st.error.is_some(),
                gathers: gathers.map(|g| {
                    g.into_iter()
                        .map(|og| og.expect("receivers attached").as_slice().to_vec())
                        .collect()
                }),
            }
        })
        .collect()
}

/// The headline invariant: the full stress schedule is byte-identical
/// across shot-fleet thread caps 1/2/4 and the sequential policy.
#[test]
fn stress_schedule_is_deterministic_across_thread_caps() {
    let reference = stress_run(Policy::Sequential);
    assert_eq!(reference.len(), JOBS);
    // Sanity: the schedule exercises all three terminal states.
    assert!(reference.iter().any(|o| o.state == JobState::Completed));
    assert!(reference.iter().any(|o| o.state == JobState::Cancelled));
    assert!(reference.iter().any(|o| o.state == JobState::Failed));
    for threads in [1usize, 2, 4] {
        let got = stress_run(Policy::Capped { threads });
        assert_eq!(
            got, reference,
            "outcomes differ between Capped{{{threads}}} and sequential"
        );
    }
}

/// Completed stress gathers equal a direct sequential `run_survey` of the
/// same survey — the queue adds orchestration, never different physics.
#[test]
fn queue_gathers_match_direct_engine_runs() {
    let pool = survey_pool();
    let direct: Vec<Vec<Vec<f32>>> = pool[..3]
        .iter()
        .map(|s| {
            run_survey(
                s,
                &SurveyOptions {
                    policy: Policy::Sequential,
                    ..SurveyOptions::default()
                },
            )
            .unwrap()
            .into_iter()
            .map(|r| r.gather.unwrap().as_slice().to_vec())
            .collect()
        })
        .collect();

    let svc = SurveyService::paused();
    let ids: Vec<_> = pool[..3]
        .iter()
        .map(|s| svc.submit(JobSpec::new(Arc::clone(s))))
        .collect();
    svc.drain();
    for (i, &id) in ids.iter().enumerate() {
        let gathers: Vec<Vec<f32>> = svc
            .take_gathers(id)
            .expect("completed job")
            .into_iter()
            .map(|g| g.unwrap().as_slice().to_vec())
            .collect();
        assert_eq!(gathers, direct[i], "survey {i} gathers differ via queue");
    }
}

/// The live (threaded) service upholds exactly-once terminal accounting
/// even though its timing is nondeterministic.
#[test]
fn live_service_terminal_accounting() {
    let pool = survey_pool();
    let svc = SurveyService::start();
    let mut ids = Vec::new();
    for round in 0..6 {
        let id = svc.submit(
            JobSpec::new(Arc::clone(&pool[round % 3])).with_priority((round % 3) as i32),
        );
        if round % 3 == 2 {
            svc.cancel(id); // may land while queued or running — both legal
        }
        ids.push(id);
    }
    for id in ids {
        let st = svc.wait(id).expect("job record");
        assert!(st.state.is_terminal());
        assert_eq!(st.terminal_transitions, 1);
        if st.state != JobState::Completed {
            assert!(svc.take_gathers(id).is_none());
        }
    }
}
