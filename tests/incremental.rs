//! Incremental recomputation suite (DESIGN.md §16): dirty-cone
//! invalidation plus the per-tile result cache.
//!
//! The correctness bar is *bitwise equivalence*: an incremental rerun after
//! a delta (moved source, changed receivers) must reproduce the wavefield a
//! cold full rerun computes, bit for bit, while recomputing strictly fewer
//! tiles. Receiver traces are bitwise at sequential/cap-1 execution and
//! within accumulation-order tolerance at higher caps — exactly the
//! determinism contract the non-incremental schedules already satisfy.
//!
//! The cone pass itself is property-tested against a brute-force oracle
//! (transitive closure of halo-overlap successors from the seed tiles) over
//! wavefront, tile_t = 1 (spaceblocked) and diamond tile graphs.
//!
//! The CI `incremental` job re-runs this suite under `TEMPEST_THREADS` of
//! 1, 2 and 4; nothing here may depend on the pool size.

use std::sync::Arc;

use tempest::core::config::EquationKind;
use tempest::core::operator::{DiamondAxis, KernelPath, Schedule, SparseMode};
use tempest::core::{Acoustic, Execution, SimConfig, WaveSolver};
use tempest::grid::{Array2, Domain, Model, Shape};
use tempest::par::Policy;
use tempest::sparse::SparsePoints;
use tempest::survey::{JobSpec, JobState, Survey, SurveyOptions, SurveyService};
use tempest::tiling::incremental::{
    dirty_cone, dirty_cone_oracle, DirtyRect, TileCache, TilePlan,
};
use tempest::tiling::{DiamondSpec, WavefrontSpec};

const N: usize = 32;
const NT: usize = 6;

fn domain() -> Domain {
    Domain::uniform(Shape::cube(N), 10.0)
}

/// The standard problem: two-layer model, one off-grid source near the
/// centre (nudged sub-cell by `frac`), a 4-receiver line.
fn problem(frac: f32) -> Acoustic {
    problem_with_receivers(frac, 4)
}

fn problem_with_receivers(frac: f32, receivers: usize) -> Acoustic {
    let d = domain();
    let model = Model::two_layer(d, 1600.0, 2800.0, 0.5);
    let cfg = SimConfig::new(d, 4, EquationKind::Acoustic, 2800.0, 50.0)
        .with_nt(NT)
        .with_f0(25.0);
    let src = SparsePoints::single_center(&d, frac);
    let rec = (receivers > 0).then(|| SparsePoints::receiver_line(&d, receivers, 0.2));
    Acoustic::new(&model, cfg, src, rec)
}

/// Every schedule the incremental path supports, with tile shapes small
/// enough that a sub-cell source nudge leaves part of the graph clean.
fn schedules() -> Vec<(&'static str, Schedule)> {
    vec![
        (
            "spaceblocked",
            Schedule::SpaceBlocked {
                block_x: 8,
                block_y: 8,
            },
        ),
        (
            "wavefront-dataflow",
            Schedule::WavefrontDataflow {
                tile_x: 8,
                tile_y: 8,
                tile_t: 3,
                block_x: 4,
                block_y: 4,
            },
        ),
        (
            "diamond",
            Schedule::Diamond {
                width: 24,
                tile_t: 3,
                tile_c: 8,
                axis: DiamondAxis::X,
                block_x: 4,
                block_y: 4,
            },
        ),
    ]
}

fn exec(schedule: Schedule, policy: Policy) -> Execution {
    Execution {
        schedule,
        sparse: SparseMode::FusedCompressed,
        policy,
        kernel: KernelPath::default(),
    }
}

fn trace_bitwise(a: &Array2<f32>, b: &Array2<f32>, what: &str) {
    assert_eq!(a.dims(), b.dims(), "{what}: trace dims differ");
    for i in 0..a.len() {
        assert_eq!(
            a.as_slice()[i].to_bits(),
            b.as_slice()[i].to_bits(),
            "{what}: trace element {i}: {} vs {}",
            a.as_slice()[i],
            b.as_slice()[i]
        );
    }
}

fn trace_close(a: &Array2<f32>, b: &Array2<f32>, tol_rel: f32, what: &str) {
    assert_eq!(a.dims(), b.dims(), "{what}: trace dims differ");
    let scale = a
        .as_slice()
        .iter()
        .fold(0.0f32, |m, &v| m.max(v.abs()))
        .max(1e-30);
    for i in 0..a.len() {
        let d = (a.as_slice()[i] - b.as_slice()[i]).abs();
        assert!(
            d <= tol_rel * scale,
            "{what}: trace element {i}: {} vs {} (scale {scale})",
            a.as_slice()[i],
            b.as_slice()[i]
        );
    }
}

// ---------------------------------------------------------------------------
// Cone-oracle property tests
// ---------------------------------------------------------------------------

/// Cheap deterministic LCG so the rect sample is reproducible (the CI
/// `incremental` job runs this at several thread caps; the sample must not
/// vary).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> usize {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (self.0 >> 33) as usize
    }
}

/// `dirty_cone` must equal the brute-force transitive closure over every
/// plan family — wavefront parallelograms, the degenerate tile_t = 1
/// (spaceblocked) plan, and the diamond (MWD) graph — for corner-touching,
/// full-domain and random deltas alike.
#[test]
fn dirty_cone_matches_oracle_across_plans() {
    let shape = Shape::new(23, 17, 4);
    let plans = vec![
        (
            "wavefront",
            TilePlan::wavefront(shape, 11, &WavefrontSpec::new(8, 8, 4, 2, 4, 4), 2),
        ),
        ("tile_t1", TilePlan::spaceblocked(shape, 5, 8, 8, 2)),
        (
            "diamond",
            TilePlan::diamond(
                shape,
                12,
                &DiamondSpec::new(3, 2, 8, 2, 4, 4, DiamondAxis::X),
                2,
            ),
        ),
    ];
    let mut rng = Lcg(0x1CEB00DA);
    for (label, plan) in &plans {
        assert!(!plan.is_empty(), "{label}: empty plan");
        let mut cases: Vec<Vec<DirtyRect>> = vec![
            // Boundary tiles: corner cells at both extremes.
            vec![DirtyRect { x0: 0, x1: 1, y0: 0, y1: 1 }],
            vec![DirtyRect {
                x0: shape.nx - 1,
                x1: shape.nx,
                y0: shape.ny - 1,
                y1: shape.ny,
            }],
            // Full-domain delta: everything must go dirty.
            vec![DirtyRect {
                x0: 0,
                x1: shape.nx,
                y0: 0,
                y1: shape.ny,
            }],
        ];
        for _ in 0..12 {
            let n = 1 + rng.next() % 3;
            cases.push(
                (0..n)
                    .map(|_| {
                        let x0 = rng.next() % shape.nx;
                        let y0 = rng.next() % shape.ny;
                        DirtyRect {
                            x0,
                            x1: x0 + 1 + rng.next() % (shape.nx - x0),
                            y0,
                            y1: y0 + 1 + rng.next() % (shape.ny - y0),
                        }
                    })
                    .collect(),
            );
        }
        for rects in &cases {
            assert_eq!(
                dirty_cone(plan, rects),
                dirty_cone_oracle(plan, rects),
                "{label}: cone disagrees with oracle for {rects:?}"
            );
        }
    }
}

/// The full-domain delta dirties every tile; the empty delta dirties none.
#[test]
fn cone_extremes() {
    let shape = Shape::new(23, 17, 4);
    let plan = TilePlan::spaceblocked(shape, 5, 8, 8, 2);
    let all = dirty_cone(
        &plan,
        &[DirtyRect {
            x0: 0,
            x1: shape.nx,
            y0: 0,
            y1: shape.ny,
        }],
    );
    assert!(all.iter().all(|&d| d));
    let none = dirty_cone(&plan, &[]);
    assert!(none.iter().all(|&d| !d));
}

// ---------------------------------------------------------------------------
// Incremental rerun ≡ cold rerun, per schedule × thread cap
// ---------------------------------------------------------------------------

/// The acceptance criterion: after a single moved source, the warm
/// incremental rerun is bitwise-identical to a cold full rerun on every
/// supported schedule at caps 1/2/4 — while recomputing strictly fewer
/// tiles, with `reused + recomputed == total`.
#[test]
fn warm_rerun_is_bitwise_and_reuses_tiles() {
    for (label, schedule) in schedules() {
        for cap in [1usize, 2, 4] {
            let what = format!("{label} cap{cap}");
            let ex = exec(schedule, Policy::Capped { threads: cap });
            let cache = TileCache::with_capacity_mb(256);

            // Cold run populates the cache.
            let mut a = problem(0.37);
            let cold = a.run_incremental(&ex, &cache, 0);
            assert!(cold.cold, "{what}: first run must be cold");
            assert_eq!(cold.reused, 0, "{what}");
            assert_eq!(cold.recomputed, cold.total_tiles, "{what}");
            assert!(cold.total_tiles > 0, "{what}: no tiles enumerated");

            // Warm rerun with the source nudged sub-cell.
            let mut b = problem(0.61);
            let warm = b.run_incremental(&ex, &cache, 0);
            assert!(!warm.cold, "{what}: rerun must see the prior session");
            assert_eq!(warm.total_tiles, cold.total_tiles, "{what}");
            assert_eq!(
                warm.reused + warm.recomputed,
                warm.total_tiles,
                "{what}: every tile is either reused or recomputed"
            );
            assert!(warm.reused > 0, "{what}: nudged source must leave clean tiles");
            assert!(
                warm.recomputed < warm.total_tiles,
                "{what}: nudge must not dirty everything"
            );
            assert!(warm.recomputed > 0, "{what}: nudge must dirty its cone");

            // Reference: a cold full rerun of the nudged problem.
            let mut c = problem(0.61);
            c.run(&ex);
            assert!(
                b.final_field().bit_equal(&c.final_field()),
                "{what}: incremental field differs from cold rerun (max diff {})",
                b.final_field().max_abs_diff(&c.final_field())
            );
            let (tb, tc) = (b.trace().unwrap(), c.trace().unwrap());
            if cap == 1 {
                trace_bitwise(&tb, &tc, &what);
            } else {
                trace_close(&tb, &tc, 1e-4, &what);
            }
        }
    }
}

/// Sequential policy is the cap-1 determinism anchor: traces bitwise too.
#[test]
fn warm_rerun_sequential_traces_are_bitwise() {
    for (label, schedule) in schedules() {
        let ex = exec(schedule, Policy::Sequential);
        let cache = TileCache::with_capacity_mb(256);
        problem(0.37).run_incremental(&ex, &cache, 0);
        let mut b = problem(0.61);
        let warm = b.run_incremental(&ex, &cache, 0);
        assert!(warm.reused > 0, "{label}");
        let mut c = problem(0.61);
        c.run(&ex);
        assert!(b.final_field().bit_equal(&c.final_field()), "{label}");
        trace_bitwise(&b.trace().unwrap(), &c.trace().unwrap(), label);
    }
}

/// A receiver-only delta (here: the receiver line replaced by a shorter
/// one) has no stencil footprint, so the cone is empty: nothing recomputes,
/// every tile restores, and the replayed gather against the *new* receiver
/// set matches a cold run bitwise.
#[test]
fn receiver_only_delta_recomputes_nothing() {
    for (label, schedule) in schedules() {
        let ex = exec(schedule, Policy::Sequential);
        let cache = TileCache::with_capacity_mb(256);
        problem_with_receivers(0.37, 4).run_incremental(&ex, &cache, 0);

        let mut b = problem_with_receivers(0.37, 2);
        let warm = b.run_incremental(&ex, &cache, 0);
        assert!(!warm.cold, "{label}");
        assert_eq!(warm.recomputed, 0, "{label}: receiver delta dirtied stencil tiles");
        assert_eq!(warm.reused, warm.total_tiles, "{label}");

        let mut c = problem_with_receivers(0.37, 2);
        c.run(&ex);
        assert!(b.final_field().bit_equal(&c.final_field()), "{label}");
        trace_bitwise(&b.trace().unwrap(), &c.trace().unwrap(), label);
    }
}

/// An unchanged resubmission reuses every tile.
#[test]
fn identical_rerun_reuses_everything() {
    let ex = exec(schedules()[0].1, Policy::Sequential);
    let cache = TileCache::with_capacity_mb(256);
    problem(0.37).run_incremental(&ex, &cache, 0);
    let mut b = problem(0.37);
    let warm = b.run_incremental(&ex, &cache, 0);
    assert!(!warm.cold);
    assert_eq!(warm.recomputed, 0);
    assert_eq!(warm.reused, warm.total_tiles);
    let mut c = problem(0.37);
    c.run(&ex);
    assert!(b.final_field().bit_equal(&c.final_field()));
    trace_bitwise(&b.trace().unwrap(), &c.trace().unwrap(), "identical rerun");
}

/// `TEMPEST_CACHE_MB=0` (a zero-capacity cache) must behave exactly like
/// the pre-cache code path: `run_incremental` falls back to the plain
/// executor and the wavefield + trace are bitwise-identical to `run`.
#[test]
fn disabled_cache_is_bitwise_identical_to_plain_run() {
    for (label, schedule) in schedules() {
        let ex = exec(schedule, Policy::Sequential);
        let cache = TileCache::with_capacity_mb(0);
        assert!(!cache.enabled());
        let mut a = problem(0.37);
        let rep = a.run_incremental(&ex, &cache, 0);
        assert!(rep.cold, "{label}");
        assert_eq!(rep.total_tiles, 0, "{label}: fallback enumerates no tiles");
        assert_eq!(rep.reused, 0, "{label}");
        assert_eq!(rep.recomputed, 0, "{label}");

        let mut b = problem(0.37);
        b.run(&ex);
        assert!(a.final_field().bit_equal(&b.final_field()), "{label}");
        trace_bitwise(&a.trace().unwrap(), &b.trace().unwrap(), label);
    }
}

// ---------------------------------------------------------------------------
// Service-level reuse across jobs
// ---------------------------------------------------------------------------

/// A paused [`SurveyService`] keeps one tile cache across jobs: submitting
/// the same fused-sparse survey twice serves the second job's tiles from
/// cache, and both jobs' gathers are byte-identical.
#[test]
fn service_reuses_tiles_across_jobs() {
    let svc = SurveyService::paused();
    let Some(cache) = svc.tile_cache().cloned() else {
        // TEMPEST_CACHE_MB=0 in the environment disables the service cache;
        // the disabled path is covered above.
        return;
    };

    let d = Domain::uniform(Shape::cube(16), 10.0);
    let model = Model::homogeneous(d, 2000.0);
    let cfg = SimConfig::new(d, 4, EquationKind::Acoustic, 2000.0, 30.0)
        .with_nt(4)
        .with_boundary(2, 0.3);
    let mut s = Survey::new(model, cfg).with_receivers(SparsePoints::receiver_line(&d, 3, 0.2));
    s.add_shot_line(2, 0.1);
    let survey = Arc::new(s);

    let opts = SurveyOptions {
        exec: exec(
            Schedule::SpaceBlocked {
                block_x: 8,
                block_y: 8,
            },
            Policy::Sequential,
        ),
        ..Default::default()
    };

    let first = svc.submit(JobSpec::new(Arc::clone(&survey)).with_opts(opts.clone()));
    assert_eq!(svc.drain(), 1);
    let after_cold = cache.stats();
    assert!(after_cold.entries > 0, "cold job must populate the cache");

    let second = svc.submit(JobSpec::new(survey).with_opts(opts));
    assert_eq!(svc.drain(), 1);
    let after_warm = cache.stats();
    assert!(
        after_warm.hits > after_cold.hits,
        "resubmitted job must reuse tiles ({} vs {})",
        after_warm.hits,
        after_cold.hits
    );

    assert_eq!(svc.poll(first).unwrap().state, JobState::Completed);
    assert_eq!(svc.poll(second).unwrap().state, JobState::Completed);
    let ga = svc.take_gathers(first).unwrap();
    let gb = svc.take_gathers(second).unwrap();
    assert_eq!(ga.len(), gb.len());
    for (x, y) in ga.iter().zip(&gb) {
        let (x, y) = (x.as_ref().unwrap(), y.as_ref().unwrap());
        trace_bitwise(x, y, "cross-job gather");
    }
}

// ---------------------------------------------------------------------------
// Counter mirror (obs feature only)
// ---------------------------------------------------------------------------

#[cfg(feature = "obs")]
mod counters {
    use super::*;
    use std::sync::{Mutex, MutexGuard};
    use tempest::obs::{self, Counter};

    /// Global-counter tests cannot overlap: the registry is process-wide.
    static LOCK: Mutex<()> = Mutex::new(());

    fn guard() -> MutexGuard<'static, ()> {
        let g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        obs::set_enabled(true);
        obs::reset();
        g
    }

    /// Exact-count oracle: `TilesReused + TilesRecomputed` equals the
    /// tiles the plan enumerated, and each mirrors the report.
    #[test]
    fn reuse_counters_are_exact() {
        let _g = guard();
        for (label, schedule) in schedules() {
            let ex = exec(schedule, Policy::Sequential);
            let cache = TileCache::with_capacity_mb(256);
            problem(0.37).run_incremental(&ex, &cache, 0);
            obs::reset();
            let mut b = problem(0.61);
            let warm = b.run_incremental(&ex, &cache, 0);
            let p = obs::snapshot();
            assert_eq!(p.counter(Counter::TilesReused), warm.reused as u64, "{label}");
            assert_eq!(
                p.counter(Counter::TilesRecomputed),
                warm.recomputed as u64,
                "{label}"
            );
            assert_eq!(
                p.counter(Counter::TilesReused) + p.counter(Counter::TilesRecomputed),
                warm.total_tiles as u64,
                "{label}: counter sum must equal the enumerated tile count"
            );
        }
    }

    /// The disabled-cache fallback records none of the new counters.
    #[test]
    fn disabled_cache_records_no_new_counters() {
        let _g = guard();
        let ex = exec(schedules()[0].1, Policy::Sequential);
        let cache = TileCache::with_capacity_mb(0);
        let mut a = problem(0.37);
        a.run_incremental(&ex, &cache, 0);
        let p = obs::snapshot();
        assert_eq!(p.counter(Counter::TilesReused), 0);
        assert_eq!(p.counter(Counter::TilesRecomputed), 0);
        assert_eq!(p.counter(Counter::CacheEvictions), 0);
    }
}
