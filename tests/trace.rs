//! Integration tests for event-level tile tracing (`tempest-obs::trace`).
//!
//! The acceptance case from DESIGN.md §11: a traced acoustic 64³×8 run under
//! `Schedule::WavefrontDiagonal` must produce one `tile` span per executed
//! space-time tile with correct `(diagonal, tx, ty)` arguments, drop nothing
//! at the default ring capacity, and export Chrome trace-event JSON that
//! parses back. The trace gate is independent of the profiling gate, and a
//! build without `--features obs` (or with the runtime switch off) must
//! record nothing.
//!
//! Rings are process-global, so every recording test serialises on a mutex
//! and resets both telemetry layers before running.

use std::sync::{Mutex, MutexGuard};

use tempest::core::config::EquationKind;
use tempest::core::{Acoustic, Execution, SimConfig, WaveSolver};
use tempest::grid::{Domain, Model, Shape};
use tempest::obs;
#[cfg(feature = "obs")]
use tempest::obs::trace::SpanKind;
use tempest::sparse::SparsePoints;

#[cfg(feature = "obs")]
const N: usize = 64;
#[cfg(feature = "obs")]
const NT: usize = 8;

static LOCK: Mutex<()> = Mutex::new(());

fn guard() -> MutexGuard<'static, ()> {
    let g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    obs::set_enabled(true);
    obs::reset();
    obs::trace::set_enabled(true);
    obs::trace::reset();
    g
}

/// The acceptance workload: acoustic, 64³ grid, 8 timesteps, SO 4.
#[cfg(feature = "obs")]
fn acoustic64() -> Acoustic {
    let d = Domain::uniform(Shape::cube(N), 10.0);
    let model = Model::two_layer(d, 1600.0, 2800.0, 0.5);
    let cfg = SimConfig::new(d, 4, EquationKind::Acoustic, 2800.0, 50.0)
        .with_nt(NT)
        .with_f0(25.0);
    let src = SparsePoints::single_center(&d, 0.37);
    let rec = SparsePoints::receiver_line(&d, 4, 0.2);
    Acoustic::new(&model, cfg, src, Some(rec))
}

/// Events of one thread must be properly nested: sorted by start (ties by
/// longest-first), every span either contains or is disjoint from its
/// predecessor on the stack. Span guards are scoped values, so anything else
/// means timestamps or ring order are corrupt.
#[cfg(feature = "obs")]
fn assert_well_nested(trace: &obs::trace::Trace) {
    for &(tid, ref label) in &trace.threads {
        let mut evs: Vec<_> = trace.events.iter().filter(|e| e.tid == tid).collect();
        evs.sort_by_key(|e| (e.t0_ns, std::cmp::Reverse(e.end_ns())));
        let mut stack: Vec<u64> = Vec::new(); // open span end times
        for e in evs {
            while let Some(&end) = stack.last() {
                if end <= e.t0_ns {
                    stack.pop();
                } else {
                    break;
                }
            }
            if let Some(&end) = stack.last() {
                assert!(
                    e.end_ns() <= end,
                    "thread {tid} ({label}): span {:?} [{}, {}) straddles an \
                     enclosing span ending at {end}",
                    e.kind,
                    e.t0_ns,
                    e.end_ns()
                );
            }
            stack.push(e.end_ns());
        }
    }
}

#[cfg(feature = "obs")]
#[test]
fn traced_diagonal_run_covers_every_tile_and_roundtrips() {
    let _g = guard();
    let mut s = acoustic64();
    let exec = Execution::wavefront_diagonal_default();
    let (stats, profile, trace, meta) = s.run_traced(&exec);
    assert_eq!(stats.nt, NT);
    assert!(!profile.is_empty(), "profiling gate is on");
    assert!(!trace.is_empty(), "tracing gate is on");

    // Zero drops at the default ring capacity (DESIGN.md §11 sizing claim).
    assert_eq!(trace.dropped, 0, "64³×8 must fit the default ring");
    assert_eq!(trace.capacity, obs::trace::DEFAULT_CAPACITY);

    // One tile span per space-time tile of the schedule, each carrying its
    // (diagonal, tx, ty, t0, t1) coordinates. Acoustic is single-phase with
    // dependency radius space_order/2 = 2.
    let spec = exec.wavefront_spec(2, 1);
    let mut expected = Vec::new();
    tempest::tiling::wavefront::for_each_tile(Shape::cube(N), NT, &spec, |t| expected.push(*t));
    assert!(expected.len() > 1, "the case must actually tile");
    assert_eq!(trace.count(SpanKind::Tile), expected.len());
    for t in &expected {
        let found = trace.events_of(SpanKind::Tile).any(|e| {
            e.args.diagonal == t.diagonal() as i32
                && e.args.tx == t.xt as i32
                && e.args.ty == t.yt as i32
                && e.args.t0 == t.t0 as i32
                && e.args.t1 == t.t1 as i32
        });
        assert!(found, "no tile span for {t:?}");
    }
    for e in trace.events_of(SpanKind::Tile) {
        assert_eq!(e.args.diagonal, e.args.tx + e.args.ty, "diagonal is xt+yt");
    }
    // The coordinator records one span per anti-diagonal per time tile, and
    // the propagator phases show up under the tiles.
    let ndiag = spec.tiles_x(N) + spec.tiles_y(N) - 1;
    let time_tiles = NT.div_ceil(spec.tile_t);
    assert_eq!(trace.count(SpanKind::Diagonal), ndiag * time_tiles);
    assert!(trace.count(SpanKind::Stencil) > 0, "stencil phases traced");
    assert!(trace.count(SpanKind::Sparse) > 0, "sparse phases traced");
    assert_well_nested(&trace);

    // Export → parse back. The stem uses sanitized labels: separator runs
    // collapse to single underscores.
    let dir = std::env::temp_dir().join("tempest-trace-int-roundtrip");
    let path = trace.write_chrome_json_in(&dir, &meta).unwrap();
    assert_eq!(
        path.file_name().unwrap().to_str().unwrap(),
        "acoustic-so4__wavefront-diag_64x64_t8_8x8.trace.json"
    );
    let body = std::fs::read_to_string(&path).unwrap();
    let _ = std::fs::remove_file(&path);
    let v = obs::json::Value::parse(&body).expect("exported trace must be valid JSON");
    let evs = v.get("traceEvents").unwrap().as_arr().unwrap();
    // One complete ("X") event per recorded span plus one thread-name
    // metadata ("M") record per thread.
    let spans: Vec<_> = evs
        .iter()
        .filter(|e| e.get("ph").unwrap().as_str() == Some("X"))
        .collect();
    let names: Vec<_> = evs
        .iter()
        .filter(|e| e.get("ph").unwrap().as_str() == Some("M"))
        .collect();
    assert_eq!(spans.len(), trace.events.len());
    assert_eq!(names.len(), trace.threads.len());
    // Every span's tid maps to a named thread, so Perfetto groups per-thread
    // tracks; tile spans round-trip their args.
    let tids: Vec<i64> = names
        .iter()
        .map(|e| e.get("tid").unwrap().as_i64().unwrap())
        .collect();
    let mut tiles_in_json = 0;
    for e in &spans {
        assert!(tids.contains(&e.get("tid").unwrap().as_i64().unwrap()));
        if e.get("name").unwrap().as_str() == Some("tile") {
            tiles_in_json += 1;
            let args = e.get("args").unwrap();
            let d = args.get("diagonal").unwrap().as_i64().unwrap();
            let tx = args.get("tx").unwrap().as_i64().unwrap();
            let ty = args.get("ty").unwrap().as_i64().unwrap();
            assert_eq!(d, tx + ty);
        }
    }
    assert_eq!(tiles_in_json, expected.len());
    assert_eq!(v.get("otherData").unwrap().get("dropped").unwrap().as_u64(), Some(0));
    obs::trace::set_enabled(false);
}

#[cfg(feature = "obs")]
#[test]
fn traced_dataflow_run_covers_every_tile_with_zero_drops() {
    // Satellite acceptance: the dependency-driven executor must trace one
    // tile span per (non-empty) space-time tile with correct coordinates and
    // lose nothing at the default ring capacity, even though tiles complete
    // in a work-stealing order.
    let _g = guard();
    let mut s = acoustic64();
    let exec = Execution::wavefront_dataflow_default();
    let (stats, profile, trace, _) = s.run_traced(&exec);
    assert_eq!(stats.nt, NT);
    assert!(!profile.is_empty(), "profiling gate is on");
    assert_eq!(trace.dropped, 0, "dataflow 64³×8 must fit the default ring");
    assert_eq!(trace.capacity, obs::trace::DEFAULT_CAPACITY);

    let spec = exec.wavefront_spec(2, 1);
    let mut expected = Vec::new();
    tempest::tiling::wavefront::for_each_tile(Shape::cube(N), NT, &spec, |t| expected.push(*t));
    assert!(expected.len() > 1, "the case must actually tile");
    assert_eq!(trace.count(SpanKind::Tile), expected.len());
    for t in &expected {
        let found = trace.events_of(SpanKind::Tile).any(|e| {
            e.args.tx == t.xt as i32
                && e.args.ty == t.yt as i32
                && e.args.t0 == t.t0 as i32
                && e.args.t1 == t.t1 as i32
        });
        assert!(found, "no tile span for {t:?}");
    }
    // One whole-sweep dataflow span instead of per-diagonal coordinator
    // spans: the single join per sweep is visible in the trace shape.
    assert_eq!(trace.count(SpanKind::Dataflow), 1);
    assert_eq!(trace.count(SpanKind::Diagonal), 0, "no diagonal barriers ran");
    assert!(trace.count(SpanKind::Stencil) > 0, "stencil phases traced");
    assert_well_nested(&trace);
    obs::trace::set_enabled(false);
}

#[cfg(feature = "obs")]
#[test]
fn traced_diamond_run_covers_every_tile_with_zero_drops() {
    // Satellite acceptance: the diamond schedule must trace one tile span
    // per (non-empty) diamond tile with correct (row, k, ct, t0, t1)
    // coordinates and lose nothing at the default ring capacity.
    let _g = guard();
    let mut s = acoustic64();
    let exec = Execution::diamond_default();
    let (stats, profile, trace, _) = s.run_traced(&exec);
    assert_eq!(stats.nt, NT);
    assert!(!profile.is_empty(), "profiling gate is on");
    assert_eq!(trace.dropped, 0, "diamond 64³×8 must fit the default ring");
    assert_eq!(trace.capacity, obs::trace::DEFAULT_CAPACITY);

    let spec = exec.diamond_spec(2, 1);
    let mut expected = Vec::new();
    tempest::tiling::diamond::for_each_diamond_tile(Shape::cube(N), NT, &spec, |t| {
        expected.push(*t)
    });
    assert!(expected.len() > 1, "the case must actually tile");
    assert_eq!(trace.count(SpanKind::Tile), expected.len());
    for t in &expected {
        let found = trace.events_of(SpanKind::Tile).any(|e| {
            e.args.diagonal == t.row as i32
                && e.args.tx == t.k as i32
                && e.args.ty == t.ct as i32
                && e.args.t0 == t.t0 as i32
                && e.args.t1 == t.t1 as i32
        });
        assert!(found, "no tile span for {t:?}");
    }
    // One whole-sweep diamond span; no other executor's coordinator spans.
    assert_eq!(trace.count(SpanKind::Diamond), 1);
    assert_eq!(trace.count(SpanKind::Dataflow), 0, "no dataflow sweep ran");
    assert_eq!(trace.count(SpanKind::Diagonal), 0, "no diagonal barriers ran");
    assert_eq!(trace.count(SpanKind::Slab), 0, "no slab coordinator ran");
    assert!(trace.count(SpanKind::Stencil) > 0, "stencil phases traced");
    assert_well_nested(&trace);
    obs::trace::set_enabled(false);
}

#[cfg(feature = "obs")]
#[test]
fn slab_and_sweep_schedules_record_their_own_spans() {
    let _g = guard();
    let mut s = acoustic64();

    let (_, _, trace, _) = s.run_traced(&Execution::wavefront_default());
    let spec = Execution::wavefront_default().wavefront_spec(2, 1);
    let expected_slabs = tempest::tiling::wavefront::slabs(Shape::cube(N), NT, &spec).len();
    assert_eq!(trace.count(SpanKind::Slab), expected_slabs);
    assert_eq!(trace.count(SpanKind::Tile), 0, "no diagonal executor ran");
    // Slab args carry the owning tile's coordinates and single vt.
    for e in trace.events_of(SpanKind::Slab) {
        assert_eq!(e.args.diagonal, e.args.tx + e.args.ty);
        assert!(e.args.vt >= 0 && e.args.vt < NT as i32);
    }
    assert_well_nested(&trace);

    let (_, _, trace, _) = s.run_traced(&Execution::baseline());
    assert_eq!(trace.count(SpanKind::Sweep), NT, "one sweep span per timestep");
    assert_eq!(trace.count(SpanKind::Slab), 0);
    assert_eq!(trace.count(SpanKind::Tile), 0);
    obs::trace::set_enabled(false);
}

#[cfg(feature = "obs")]
#[test]
fn analysis_matches_trace_and_renders() {
    let _g = guard();
    let mut s = acoustic64();
    let (_, _, trace, _) = s.run_traced(&Execution::wavefront_diagonal_default());
    let a = obs::analysis::TraceAnalysis::from_trace(&trace);
    let spec = Execution::wavefront_diagonal_default().wavefront_spec(2, 1);
    let ndiag = spec.tiles_x(N) + spec.tiles_y(N) - 1;
    assert_eq!(a.diagonals.len(), ndiag * NT.div_ceil(spec.tile_t));
    let tiles: usize = a.diagonals.iter().map(|d| d.tiles).sum();
    assert_eq!(tiles, trace.count(SpanKind::Tile));
    assert!(a.worst_imbalance >= 1.0 && a.worst_imbalance.is_finite());
    assert!(a.critical_path_ns > 0 && a.critical_path_ns <= a.total_tile_ns);
    let rendered = a.render();
    assert!(rendered.contains("diagonal"), "render names the table: {rendered}");
    obs::trace::set_enabled(false);
}

/// With the feature compiled in but the runtime trace gate off, runs record
/// counters (profiling gate is separate) but no events.
#[cfg(feature = "obs")]
#[test]
fn trace_gate_off_records_counters_but_no_events() {
    let _g = guard();
    obs::trace::set_enabled(false);
    let mut s = acoustic64();
    let (_, profile, trace, _) = s.run_traced(&Execution::wavefront_diagonal_default());
    assert!(!profile.is_empty(), "profiling gate unaffected by trace gate");
    assert!(trace.is_empty(), "trace gate off must record no events");
    assert_eq!(trace.dropped, 0);
}

/// DESIGN.md §9's overhead bound, extended to tracing: with the runtime
/// trace gate off, the instrumented hot loops must cost no more than with
/// event capture on (generous 3×+20ms noise bound — CI boxes jitter; the
/// true no-feature comparison is documented in DESIGN.md, not measurable in
/// one binary).
#[cfg(feature = "obs")]
#[test]
fn trace_disabled_costs_no_more_than_enabled() {
    use std::time::{Duration, Instant};
    let _g = guard();
    let d = Domain::uniform(Shape::cube(32), 10.0);
    let model = Model::homogeneous(d, 2000.0);
    let cfg = SimConfig::new(d, 4, EquationKind::Acoustic, 2000.0, 50.0)
        .with_nt(8)
        .with_f0(25.0);
    let src = SparsePoints::single_center(&d, 0.4);
    let mut s = Acoustic::new(&model, cfg, src, None);
    let exec = Execution::wavefront_diagonal_default().sequential();
    s.run(&exec); // warm-up
    let mut median = |on: bool| {
        obs::trace::set_enabled(on);
        obs::trace::reset();
        let mut times: Vec<Duration> = (0..3)
            .map(|_| {
                let t0 = Instant::now();
                s.run(&exec);
                t0.elapsed()
            })
            .collect();
        times.sort();
        times[1]
    };
    let enabled = median(true);
    let disabled = median(false);
    assert!(
        disabled <= enabled * 3 + Duration::from_millis(20),
        "trace-disabled run slower than enabled: {disabled:?} vs {enabled:?}"
    );
}

/// Without the `obs` feature the whole trace layer is compiled out: even
/// with the runtime switch forced on, a run yields an empty trace.
#[cfg(not(feature = "obs"))]
#[test]
fn no_feature_build_records_nothing() {
    let _g = guard();
    obs::trace::set_enabled(true);
    assert!(!obs::trace::enabled(), "no-feature build cannot enable tracing");
    let d = Domain::uniform(Shape::cube(16), 10.0);
    let model = Model::homogeneous(d, 2000.0);
    let cfg = SimConfig::new(d, 4, EquationKind::Acoustic, 2000.0, 50.0)
        .with_nt(4)
        .with_f0(25.0);
    let src = SparsePoints::single_center(&d, 0.4);
    let mut s = Acoustic::new(&model, cfg, src, None);
    let (_, profile, trace, _) = s.run_traced(&Execution::wavefront_diagonal_default());
    assert!(profile.is_empty());
    assert!(trace.is_empty());
    assert_eq!(trace.dropped, 0);
}
