//! Exact-count observability oracles for the survey engine.
//!
//! The shot-level counters have closed-form oracles, and — like the tile
//! counters in `tests/observability.rs` — they must be identical across
//! worker caps:
//!
//! * `ShotStarted == ShotCompleted == number of shots` on a clean run,
//! * a failing shot counts started-but-not-completed, and later batches
//!   never start,
//! * a pre-cancelled run starts nothing,
//! * `BatchAutotune` counts once per run that tuned, zero otherwise,
//! * one `SpanKind::Shot` span per executed shot, carrying its index.
//!
//! Compiled only with `--features obs`; counters are process-global, so
//! every test serialises on one mutex and resets the registry. The CI
//! `survey` job runs this suite at `TEMPEST_THREADS` 1/2/4.

#![cfg(feature = "obs")]

use std::sync::{Mutex, MutexGuard};

use tempest::core::config::EquationKind;
use tempest::core::SimConfig;
use tempest::grid::{Domain, Model, Shape};
use tempest::obs::trace::SpanKind;
use tempest::obs::{self, Counter};
use tempest::par::Policy;
use tempest::sparse::SparsePoints;
use tempest::survey::{
    run_survey, run_survey_streaming, CancelFlag, ShotSpec, Survey, SurveyOptions,
};

/// Global-counter tests cannot overlap: the registry is process-wide.
static LOCK: Mutex<()> = Mutex::new(());

fn guard() -> MutexGuard<'static, ()> {
    let g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    obs::set_enabled(true);
    obs::reset();
    obs::trace::set_enabled(true);
    obs::trace::reset();
    g
}

fn survey_with(n_shots: usize) -> Survey {
    let domain = Domain::uniform(Shape::cube(12), 10.0);
    let model = Model::homogeneous(domain, 2000.0);
    let cfg = SimConfig::new(domain, 4, EquationKind::Acoustic, 2000.0, 30.0)
        .with_nt(4)
        .with_boundary(2, 0.3);
    let mut s =
        Survey::new(model, cfg).with_receivers(SparsePoints::receiver_line(&domain, 3, 0.2));
    s.add_shot_line(n_shots, 0.1);
    s
}

fn shot_counters() -> (u64, u64, u64) {
    let p = obs::snapshot();
    (
        p.counter(Counter::ShotStarted),
        p.counter(Counter::ShotCompleted),
        p.counter(Counter::BatchAutotune),
    )
}

fn caps() -> [Policy; 3] {
    [
        Policy::Capped { threads: 1 },
        Policy::Capped { threads: 2 },
        Policy::Capped { threads: 4 },
    ]
}

/// Clean run: started == completed == shots, no autotune, one Shot span
/// per shot with the shot index riding in `vt` — identical at caps 1/2/4.
#[test]
fn clean_run_counts_every_shot_once_at_every_cap() {
    const SHOTS: usize = 5;
    let survey = survey_with(SHOTS);
    let mut seen: Vec<(u64, u64, u64, usize)> = Vec::new();
    for policy in caps() {
        let _g = guard();
        let opts = SurveyOptions {
            policy,
            batch_size: 2,
            ..SurveyOptions::default()
        };
        run_survey(&survey, &opts).unwrap();
        let (started, completed, tuned) = shot_counters();
        let trace = obs::trace::snapshot();
        assert_eq!(started, SHOTS as u64, "{policy:?}");
        assert_eq!(completed, SHOTS as u64, "{policy:?}");
        assert_eq!(tuned, 0, "{policy:?}: no autotune requested");
        assert_eq!(trace.count(SpanKind::Shot), SHOTS, "{policy:?}");
        let mut indices: Vec<i32> = trace
            .events
            .iter()
            .filter(|e| e.kind == SpanKind::Shot)
            .map(|e| e.args.vt)
            .collect();
        indices.sort_unstable();
        assert_eq!(indices, (0..SHOTS as i32).collect::<Vec<_>>(), "{policy:?}");
        seen.push((started, completed, tuned, trace.count(SpanKind::Shot)));
    }
    assert!(
        seen.windows(2).all(|w| w[0] == w[1]),
        "oracle drifted across caps: {seen:?}"
    );
}

/// A failing shot is started-but-not-completed; shots in its batch still
/// run, later batches never start. Deterministic at every cap.
#[test]
fn failed_shot_accounting_is_deterministic() {
    let mut survey = survey_with(3);
    // Shot index 3 fails; with batch_size 2 the batches are [0,1], [2,3]
    // (the failing one), and [4] which must never start.
    survey.add_shot(ShotSpec::at([-50.0, 0.0, 0.0]));
    survey.add_shot_line(1, 0.3);
    assert_eq!(survey.len(), 5);
    for policy in caps() {
        let _g = guard();
        let opts = SurveyOptions {
            policy,
            batch_size: 2,
            ..SurveyOptions::default()
        };
        let err = run_survey(&survey, &opts).unwrap_err();
        assert_eq!(err.shot, 3);
        let (started, completed, _) = shot_counters();
        assert_eq!(started, 4, "{policy:?}: batches [0,1] and [2,3] start");
        assert_eq!(completed, 3, "{policy:?}: all but the failing shot finish");
        assert_eq!(obs::trace::snapshot().count(SpanKind::Shot), 4, "{policy:?}");
    }
}

/// A run cancelled before it starts counts nothing at any cap.
#[test]
fn pre_cancelled_run_counts_nothing() {
    let survey = survey_with(4);
    for policy in caps() {
        let _g = guard();
        let flag = CancelFlag::new();
        flag.cancel();
        let opts = SurveyOptions {
            policy,
            ..SurveyOptions::default()
        };
        let out = run_survey_streaming(&survey, &opts, Some(&flag), |_| {}).unwrap();
        assert!(out.cancelled);
        assert_eq!(shot_counters(), (0, 0, 0), "{policy:?}");
        assert_eq!(obs::trace::snapshot().count(SpanKind::Shot), 0, "{policy:?}");
    }
}

/// Autotuning counts exactly once per tuned run — not per shot, not per
/// batch (later batches reuse the result) — at every cap.
#[test]
fn batch_autotune_counts_once_per_tuned_run() {
    const SHOTS: usize = 4;
    let survey = survey_with(SHOTS);
    for policy in caps() {
        let _g = guard();
        let opts = SurveyOptions {
            policy,
            batch_size: 1, // four batches; tuning must still count once
            tune: true,
            ..SurveyOptions::default()
        };
        run_survey(&survey, &opts).unwrap();
        let (started, completed, tuned) = shot_counters();
        assert_eq!(tuned, 1, "{policy:?}");
        assert_eq!(started, SHOTS as u64, "{policy:?}: probes are not shots");
        assert_eq!(completed, SHOTS as u64, "{policy:?}");
    }
}
