//! Exact-count oracle tests for the observability layer (`tempest-obs`).
//!
//! Every counter the propagators record has a closed-form oracle: a dense
//! stencil sweep touches `interior_points × virtual_steps` points, fused
//! injection fires once per masked point per timestep, and a gather
//! contributes once per `(receiver, footprint-nonzero)` pair per timestep.
//! These identities must hold for every `Schedule` × propagator combination
//! and be bitwise-identical across thread caps — any drift means a schedule
//! is double-visiting or skipping work.
//!
//! Compiled only with `--features obs`; the counters are global, so every
//! test serialises on one mutex and resets the registry before running.

#![cfg(feature = "obs")]

use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};

use tempest::core::config::EquationKind;
use tempest::core::operator::{DiamondAxis, KernelPath, Schedule, SparseMode};
use tempest::core::sources::{ReceiverBundle, SourceBundle};
use tempest::core::{Acoustic, Elastic, Execution, SimConfig, Tti, WaveSolver};
use tempest::grid::{Domain, ElasticModel, Model, Rng64, Shape, TtiModel};
use tempest::obs::{self, Counter, Phase};
use tempest::par::{for_each, Policy, Progress};
use tempest::sparse::SparsePoints;

const N: usize = 16;
const NT: usize = 6;

/// Global-counter tests cannot overlap: the registry is process-wide.
static LOCK: Mutex<()> = Mutex::new(());

fn guard() -> MutexGuard<'static, ()> {
    let g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    obs::set_enabled(true);
    obs::reset();
    g
}

fn domain() -> Domain {
    Domain::uniform(Shape::cube(N), 10.0)
}

/// The schedule × sparse-mode grid every oracle runs over.
fn schedules() -> Vec<(&'static str, Schedule, SparseMode)> {
    vec![
        (
            "spaceblocked+fused",
            Schedule::SpaceBlocked {
                block_x: 4,
                block_y: 4,
            },
            SparseMode::Fused,
        ),
        (
            "spaceblocked+compressed",
            Schedule::SpaceBlocked {
                block_x: 8,
                block_y: 8,
            },
            SparseMode::FusedCompressed,
        ),
        (
            "wavefront",
            Schedule::Wavefront {
                tile_x: 8,
                tile_y: 8,
                tile_t: 3,
                block_x: 4,
                block_y: 4,
            },
            SparseMode::FusedCompressed,
        ),
        (
            "wavefront-diag",
            Schedule::WavefrontDiagonal {
                tile_x: 8,
                tile_y: 8,
                tile_t: 3,
                block_x: 4,
                block_y: 4,
            },
            SparseMode::FusedCompressed,
        ),
        (
            "wavefront-dataflow",
            Schedule::WavefrontDataflow {
                tile_x: 8,
                tile_y: 8,
                tile_t: 3,
                block_x: 4,
                block_y: 4,
            },
            SparseMode::FusedCompressed,
        ),
        (
            "diamond",
            // Width 24 at tile_t 3: slope 4 single-phase (acoustic/TTI,
            // radius 2) and slope 2 two-phase (elastic so4, radius 2).
            Schedule::Diamond {
                width: 24,
                tile_t: 3,
                tile_c: 8,
                axis: DiamondAxis::X,
                block_x: 4,
                block_y: 4,
            },
            SparseMode::FusedCompressed,
        ),
    ]
}

const POLICIES: [Policy; 3] = [
    Policy::Capped { threads: 1 },
    Policy::Capped { threads: 2 },
    Policy::Capped { threads: 4 },
];

/// Closed-form expected counts for one propagator configuration.
struct Oracle {
    stencil: u64,
    injections: u64,
    gathers: u64,
}

fn total_contributions(rec: &ReceiverBundle) -> u64 {
    (0..rec.pre.npts())
        .map(|id| rec.pre.contributions(id).len() as u64)
        .sum()
}

fn fused_oracle(stencil: u64, src: &SourceBundle, rec: Option<&ReceiverBundle>, nt: u64) -> Oracle {
    Oracle {
        stencil,
        injections: src.pre.npts() as u64 * nt,
        gathers: rec.map(total_contributions).unwrap_or(0) * nt,
    }
}

/// Run one schedule under every thread cap and check the oracle plus
/// cross-policy determinism of every counter except `ParPublications`
/// (batch publication depends on how many workers actually wake).
fn check_schedule<F: FnMut(&Execution)>(
    mut run: F,
    schedule: Schedule,
    sparse: SparseMode,
    label: &str,
    oracle: &Oracle,
) {
    let mut per_policy: Vec<Vec<u64>> = Vec::new();
    for policy in POLICIES {
        let exec = Execution {
            schedule,
            sparse,
            policy,
            kernel: KernelPath::default(),
        };
        obs::reset();
        run(&exec);
        let p = obs::snapshot();
        assert_eq!(
            p.counter(Counter::StencilUpdates),
            oracle.stencil,
            "{label} {policy:?}: stencil updates"
        );
        assert_eq!(
            p.counter(Counter::SourceInjections),
            oracle.injections,
            "{label} {policy:?}: source injections"
        );
        assert_eq!(
            p.counter(Counter::ReceiverGathers),
            oracle.gathers,
            "{label} {policy:?}: receiver gathers"
        );
        // The schedule must exercise its own executor (and only its own).
        match schedule {
            Schedule::SpaceBlocked { .. } => {
                assert!(p.counter(Counter::SpaceSweeps) > 0, "{label}: no sweeps");
                assert_eq!(p.counter(Counter::WavefrontSlabs), 0, "{label}");
                assert_eq!(p.counter(Counter::WavefrontDiagonals), 0, "{label}");
            }
            Schedule::Wavefront { .. } => {
                assert!(p.counter(Counter::WavefrontSlabs) > 0, "{label}: no slabs");
                assert_eq!(p.counter(Counter::WavefrontDiagonals), 0, "{label}");
            }
            Schedule::WavefrontDiagonal { .. } => {
                assert!(
                    p.counter(Counter::WavefrontDiagonals) > 0,
                    "{label}: no diagonals"
                );
                assert!(
                    p.counter(Counter::WavefrontTiles) > 0,
                    "{label}: no tiles"
                );
            }
            Schedule::WavefrontDataflow { .. } => {
                // The dataflow executor runs tiles without slabs phases or
                // per-diagonal barriers — only the tile counter moves.
                assert!(
                    p.counter(Counter::WavefrontTiles) > 0,
                    "{label}: no tiles"
                );
                assert_eq!(p.counter(Counter::WavefrontDiagonals), 0, "{label}");
                assert_eq!(p.counter(Counter::WavefrontSlabs), 0, "{label}");
                assert!(
                    p.counter(Counter::DataflowReady) > 0,
                    "{label}: every tile must pass through the ready state"
                );
            }
            Schedule::Diamond { .. } => {
                // Diamond tiles run on the dataflow substrate: tile and
                // ready counters move, no sweeps/slabs/diagonals.
                assert!(
                    p.counter(Counter::WavefrontTiles) > 0,
                    "{label}: no tiles"
                );
                assert!(
                    p.counter(Counter::DataflowReady) > 0,
                    "{label}: every diamond tile must pass through the ready state"
                );
                assert_eq!(p.counter(Counter::SpaceSweeps), 0, "{label}");
                assert_eq!(p.counter(Counter::WavefrontSlabs), 0, "{label}");
                assert_eq!(p.counter(Counter::WavefrontDiagonals), 0, "{label}");
            }
        }
        let mut counts: Vec<u64> = Counter::ALL.iter().map(|&c| p.counter(c)).collect();
        counts[Counter::ParPublications as usize] = 0;
        // Steal counts are timing-dependent (a worker only steals when its
        // own deque is dry); zero them before the cross-policy comparison.
        counts[Counter::DataflowSteals as usize] = 0;
        per_policy.push(counts);
    }
    for w in per_policy.windows(2) {
        assert_eq!(
            w[0], w[1],
            "{label}: counters must be identical across thread caps"
        );
    }
}

#[test]
fn acoustic_counts_match_oracle_for_all_schedules() {
    let _g = guard();
    let d = domain();
    let model = Model::two_layer(d, 1600.0, 2800.0, 0.5);
    let cfg = SimConfig::new(d, 4, EquationKind::Acoustic, 2800.0, 50.0)
        .with_nt(NT)
        .with_f0(25.0);
    let src = SparsePoints::single_center(&d, 0.37);
    let rec = SparsePoints::receiver_line(&d, 4, 0.2);
    let mut s = Acoustic::new(&model, cfg, src, Some(rec));
    let oracle = fused_oracle(
        (N * N * N * NT) as u64,
        s.sources(),
        s.receivers(),
        NT as u64,
    );
    for (label, schedule, sparse) in schedules() {
        check_schedule(|e| { s.run(e); }, schedule, sparse, label, &oracle);
    }
}

#[test]
fn tti_counts_match_oracle_for_all_schedules() {
    let _g = guard();
    let d = Domain::uniform(Shape::cube(N), 20.0);
    let model = TtiModel::homogeneous(d, 2000.0, 0.2, 0.08, 0.4, 0.2);
    let cfg = SimConfig::new(d, 4, EquationKind::Tti, model.vmax(), 40.0)
        .with_nt(NT)
        .with_f0(15.0);
    let src = SparsePoints::single_center(&d, 0.37);
    let rec = SparsePoints::receiver_line(&d, 3, 0.25);
    let mut s = Tti::new(&model, cfg, src, Some(rec));
    // The coupled p/q pair counts as one update per point per step.
    let oracle = fused_oracle(
        (N * N * N * NT) as u64,
        s.sources(),
        s.receivers(),
        NT as u64,
    );
    for (label, schedule, sparse) in schedules() {
        check_schedule(|e| { s.run(e); }, schedule, sparse, label, &oracle);
    }
}

#[test]
fn elastic_counts_match_oracle_for_all_schedules() {
    let _g = guard();
    let d = domain();
    let model = ElasticModel::homogeneous(d, 3000.0, 1400.0, 2300.0);
    let cfg = SimConfig::new(d, 4, EquationKind::Elastic, 3000.0, 25.0)
        .with_nt(NT)
        .with_f0(25.0);
    let src = SparsePoints::single_center(&d, 0.37);
    let rec = SparsePoints::receiver_line(&d, 3, 0.25);
    let mut s = Elastic::new(&model, cfg, src, Some(rec));
    // Two phases (velocity, stress) per timestep, each a full sweep;
    // injection fires once per masked point per timestep (stress phase),
    // gathers once per contribution per timestep (velocity phase).
    let oracle = fused_oracle(
        (N * N * N * 2 * NT) as u64,
        s.sources(),
        s.receivers(),
        NT as u64,
    );
    for (label, schedule, sparse) in schedules() {
        check_schedule(|e| { s.run(e); }, schedule, sparse, label, &oracle);
    }
}

#[test]
fn classic_counts_once_per_footprint_nonzero() {
    let _g = guard();
    let d = domain();
    let model = Model::homogeneous(d, 2000.0);
    let cfg = SimConfig::new(d, 4, EquationKind::Acoustic, 2000.0, 50.0)
        .with_nt(NT)
        .with_f0(25.0);
    let src = SparsePoints::new(&d, vec![[43.0, 57.0, 61.0], [88.5, 71.0, 99.0]]);
    let rec = SparsePoints::receiver_line(&d, 5, 0.2);
    let mut s = Acoustic::new(&model, cfg, src, Some(rec));
    // Classic (Listing 1) injects per footprint nonzero of each source —
    // overlapping footprints count once per source, unlike the fused path's
    // deduplicated mask.
    let inj: u64 = s
        .sources()
        .stencils
        .iter()
        .map(|st| st.nonzero().count() as u64)
        .sum();
    let gat: u64 = s
        .receivers()
        .unwrap()
        .stencils
        .iter()
        .map(|st| st.nonzero().count() as u64)
        .sum();
    let oracle = Oracle {
        stencil: (N * N * N * NT) as u64,
        injections: inj * NT as u64,
        gathers: gat * NT as u64,
    };
    check_schedule(
        |e| { s.run(e); },
        Schedule::SpaceBlocked {
            block_x: 8,
            block_y: 8,
        },
        SparseMode::Classic,
        "spaceblocked+classic",
        &oracle,
    );
}

#[test]
fn on_grid_points_give_literal_count_identity() {
    let _g = guard();
    let d = domain();
    // Points exactly on grid nodes (h = 10) have Kronecker footprints: one
    // affected point each, so the headline identities become literal:
    // injections == nsrc × nt and gathers == nrec × nt.
    let src = SparsePoints::new(&d, vec![[40.0, 50.0, 60.0], [80.0, 80.0, 80.0]]);
    let rec_pts: Vec<[f32; 3]> = (2..7).map(|i| [10.0 * i as f32, 70.0, 30.0]).collect();
    let nrec = rec_pts.len() as u64;
    let rec = SparsePoints::new(&d, rec_pts);
    let model = Model::homogeneous(d, 2000.0);
    let cfg = SimConfig::new(d, 4, EquationKind::Acoustic, 2000.0, 50.0)
        .with_nt(NT)
        .with_f0(25.0);
    let mut s = Acoustic::new(&model, cfg, src, Some(rec));
    assert_eq!(s.sources().pre.npts(), 2, "on-grid source mask must be Kronecker");
    assert_eq!(
        total_contributions(s.receivers().unwrap()),
        nrec,
        "on-grid receivers must contribute exactly once each"
    );
    let oracle = Oracle {
        stencil: (N * N * N * NT) as u64,
        injections: 2 * NT as u64,
        gathers: nrec * NT as u64,
    };
    for (label, schedule, sparse) in schedules() {
        check_schedule(|e| { s.run(e); }, schedule, sparse, label, &oracle);
    }
}

#[test]
fn par_stress_seeded_irregular_batches_lose_nothing() {
    let _g = guard();
    let mut rng = Rng64::new(0x0b5e_4bab_5eed_0001);
    let progress = Progress::new();
    let mut total = 0u64;
    // 10k barriers with irregular (including empty) batch sizes across every
    // policy: the Progress counter and the per-worker ParTasks shards must
    // both account for every single item.
    for _ in 0..10_000 {
        let n = rng.range_usize(0, 33);
        let items: Vec<u64> = (0..n as u64).collect();
        let policy = match rng.range_usize(0, 4) {
            0 => Policy::Sequential,
            1 => Policy::Parallel,
            2 => Policy::Auto { min_items: 8 },
            _ => Policy::Capped {
                threads: 1 + rng.range_usize(0, 4),
            },
        };
        for_each(policy, &items, |v| {
            progress.add(1);
            std::hint::black_box(v);
        });
        total += n as u64;
    }
    assert_eq!(progress.get() as u64, total, "Progress lost updates");
    let p = obs::snapshot();
    assert_eq!(
        p.counter(Counter::ParTasks),
        total,
        "aggregated ParTasks must equal the number of dispatched items"
    );
    let shard_sum: u64 = p.threads.iter().map(|t| t.counter(Counter::ParTasks)).sum();
    assert_eq!(shard_sum, total, "per-worker shard counts must sum to total");
}

#[test]
fn runtime_disabled_records_nothing() {
    let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    obs::set_enabled(false);
    obs::reset();
    let d = domain();
    let model = Model::homogeneous(d, 2000.0);
    let cfg = SimConfig::new(d, 4, EquationKind::Acoustic, 2000.0, 50.0)
        .with_nt(4)
        .with_f0(25.0);
    let src = SparsePoints::single_center(&d, 0.4);
    let mut s = Acoustic::new(&model, cfg, src, None);
    s.run(&Execution::wavefront_default().sequential());
    let p = obs::snapshot();
    assert!(
        Counter::ALL.iter().all(|&c| p.counter(c) == 0),
        "runtime-disabled profiling must record no counts"
    );
    assert!(
        Phase::ALL.iter().all(|&ph| p.timer_ns(ph) == 0),
        "runtime-disabled profiling must record no time"
    );
}

#[test]
fn disabled_profiling_costs_no_more_than_enabled() {
    // The real zero-overhead claim (no-`obs`-feature build vs instrumented
    // build) cannot be measured inside one binary; DESIGN.md §9 documents
    // that comparison. What *can* be locked down here: with the feature
    // compiled in but the runtime switch off, the instrumented hot loops
    // must not be slower than with it on (generous noise bound — CI boxes
    // jitter).
    let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let d = Domain::uniform(Shape::cube(32), 10.0);
    let model = Model::homogeneous(d, 2000.0);
    let cfg = SimConfig::new(d, 4, EquationKind::Acoustic, 2000.0, 50.0)
        .with_nt(8)
        .with_f0(25.0);
    let src = SparsePoints::single_center(&d, 0.4);
    let mut s = Acoustic::new(&model, cfg, src, None);
    let exec = Execution {
        schedule: Schedule::SpaceBlocked {
            block_x: 8,
            block_y: 8,
        },
        sparse: SparseMode::FusedCompressed,
        policy: Policy::Sequential,
        kernel: KernelPath::default(),
    };
    s.run(&exec); // warm-up
    let median = |on: bool, s: &mut Acoustic| {
        obs::set_enabled(on);
        obs::reset();
        let mut times: Vec<Duration> = (0..3)
            .map(|_| {
                let t0 = Instant::now();
                s.run(&exec);
                t0.elapsed()
            })
            .collect();
        times.sort();
        times[1]
    };
    let disabled = median(false, &mut s);
    let enabled = median(true, &mut s);
    assert!(
        disabled <= enabled * 3 + Duration::from_millis(20),
        "runtime-disabled profiling slower than enabled: {disabled:?} vs {enabled:?}"
    );
}
