//! Scalar-vs-pencil kernel-path equivalence: the correctness contract of the
//! pencil-vectorized kernel layer (`tempest_stencil::simd`).
//!
//! The pencil kernels hoist bounds checks and process whole `z`-rows in
//! fixed-width lanes, but they replay the scalar per-point accumulation
//! order term-for-term — so every propagator, under every schedule and at
//! every supported space order, must produce **bitwise identical** final
//! wavefields (`Array3::bit_equal`, i.e. `f32::to_bits` equality) whichever
//! kernel path is selected.

use tempest::core::config::EquationKind;
use tempest::core::operator::{Schedule, SparseMode};
use tempest::core::{Acoustic, Elastic, Execution, SimConfig, Tti, WaveSolver};
use tempest::grid::{Array3, Domain, ElasticModel, Model, Shape, TtiModel};
use tempest::sparse::SparsePoints;

const N: usize = 20;
const NT: usize = 10;

fn domain() -> Domain {
    Domain::uniform(Shape::cube(N), 10.0)
}

/// One execution per schedule family, sequential, fused-compressed sparse.
fn schedules() -> Vec<(&'static str, Execution)> {
    let sb = Execution::baseline().sequential();
    let mut wf = Execution::wavefront_default().sequential();
    wf.schedule = Schedule::Wavefront {
        tile_x: 8,
        tile_y: 8,
        tile_t: 3,
        block_x: 4,
        block_y: 4,
    };
    wf.sparse = SparseMode::FusedCompressed;
    let mut dg = Execution::wavefront_diagonal_default().sequential();
    dg.schedule = Schedule::WavefrontDiagonal {
        tile_x: 8,
        tile_y: 8,
        tile_t: 3,
        block_x: 4,
        block_y: 4,
    };
    vec![("spaceblocked", sb), ("wavefront", wf), ("diagonal", dg)]
}

fn assert_bitwise(label: &str, scalar: &Array3<f32>, pencil: &Array3<f32>) {
    assert!(scalar.max_abs() > 0.0, "{label}: field must be excited");
    assert!(
        scalar.bit_equal(pencil),
        "{label}: pencil path must be bitwise identical to scalar, max diff {}",
        scalar.max_abs_diff(pencil)
    );
}

/// Run `solver` under `exec` with each kernel path and return both fields.
fn both_paths(solver: &mut dyn WaveSolver, exec: &Execution) -> (Array3<f32>, Array3<f32>) {
    let scalar_exec = (*exec).scalar_kernels();
    let pencil_exec = (*exec).pencil_kernels();
    solver.run(&scalar_exec);
    let s = solver.final_field();
    solver.run(&pencil_exec);
    let p = solver.final_field();
    (s, p)
}

#[test]
fn acoustic_scalar_vs_pencil_bitwise_all_orders_all_schedules() {
    for so in [4usize, 8, 12] {
        let d = domain();
        let model = Model::two_layer(d, 1600.0, 2800.0, 0.5);
        let cfg = SimConfig::new(d, so, EquationKind::Acoustic, 2800.0, 50.0)
            .with_nt(NT)
            .with_f0(12.0)
            .with_boundary(4, 0.3);
        let src = SparsePoints::single_center(&d, 0.4);
        let rec = SparsePoints::receiver_line(&d, 4, 0.25);
        let mut a = Acoustic::new(&model, cfg, src, Some(rec));
        for (name, exec) in schedules() {
            let (s, p) = both_paths(&mut a, &exec);
            assert_bitwise(&format!("acoustic so={so} {name}"), &s, &p);
        }
    }
}

#[test]
fn tti_scalar_vs_pencil_bitwise_all_orders_all_schedules() {
    for so in [4usize, 8, 12] {
        let d = domain();
        let model = TtiModel::homogeneous(d, 2000.0, 0.2, 0.1, 0.35, 0.3);
        let cfg = SimConfig::new(d, so, EquationKind::Tti, model.vmax(), 80.0)
            .with_nt(NT)
            .with_f0(15.0)
            .with_boundary(4, 0.3);
        let src = SparsePoints::single_center(&d, 0.4);
        let mut t = Tti::new(&model, cfg, src, None);
        for (name, exec) in schedules() {
            let (s, p) = both_paths(&mut t, &exec);
            assert_bitwise(&format!("tti so={so} {name}"), &s, &p);
        }
    }
}

#[test]
fn elastic_scalar_vs_pencil_bitwise_all_orders_all_schedules() {
    for so in [4usize, 8, 12] {
        let d = domain();
        let model = ElasticModel::homogeneous(d, 3000.0, 1400.0, 2200.0);
        let cfg = SimConfig::new(d, so, EquationKind::Elastic, 3000.0, 40.0)
            .with_nt(NT)
            .with_f0(25.0)
            .with_boundary(4, 0.3);
        let src = SparsePoints::single_center(&d, 0.4);
        let rec = SparsePoints::receiver_line(&d, 4, 0.25);
        let mut e = Elastic::new(&model, cfg, src, Some(rec));
        for (name, exec) in schedules() {
            let (s, p) = both_paths(&mut e, &exec);
            assert_bitwise(&format!("elastic so={so} {name}"), &s, &p);
        }
    }
}

#[test]
fn parallel_pencil_matches_sequential_scalar_bitwise() {
    // The strongest cross-cutting claim: parallel diagonal-wavefront
    // execution on the pencil path reproduces the sequential space-blocked
    // scalar baseline bit-for-bit.
    let d = domain();
    let model = Model::two_layer(d, 1600.0, 2800.0, 0.5);
    let cfg = SimConfig::new(d, 8, EquationKind::Acoustic, 2800.0, 50.0)
        .with_nt(NT)
        .with_f0(12.0)
        .with_boundary(4, 0.3);
    let src = SparsePoints::single_center(&d, 0.4);
    let mut a = Acoustic::new(&model, cfg, src, None);

    a.run(&Execution::baseline().sequential().scalar_kernels());
    let base = a.final_field();

    let mut exec = Execution::wavefront_diagonal_default().pencil_kernels();
    exec.schedule = Schedule::WavefrontDiagonal {
        tile_x: 8,
        tile_y: 8,
        tile_t: 3,
        block_x: 4,
        block_y: 4,
    };
    exec.policy = tempest::par::Policy::Parallel;
    a.run(&exec);
    let par = a.final_field();
    assert_bitwise("acoustic parallel diagonal pencil vs scalar baseline", &base, &par);
}

#[test]
fn traces_identical_across_kernel_paths() {
    // Receiver traces gather from the updated pencils, so they inherit the
    // bitwise contract too (same schedule, same sparse mode on both runs).
    let d = domain();
    let model = Model::two_layer(d, 1600.0, 2800.0, 0.5);
    let cfg = SimConfig::new(d, 8, EquationKind::Acoustic, 2800.0, 50.0)
        .with_nt(NT)
        .with_f0(12.0)
        .with_boundary(4, 0.3);
    let src = SparsePoints::single_center(&d, 0.4);
    let rec = SparsePoints::receiver_line(&d, 4, 0.25);
    let mut a = Acoustic::new(&model, cfg, src, Some(rec));

    a.run(&Execution::baseline().sequential().scalar_kernels());
    let ts = a.trace().unwrap();
    a.run(&Execution::baseline().sequential().pencil_kernels());
    let tp = a.trace().unwrap();
    assert_eq!(ts.dims(), tp.dims());
    for i in 0..ts.len() {
        assert_eq!(
            ts.as_slice()[i].to_bits(),
            tp.as_slice()[i].to_bits(),
            "trace element {i} differs between kernel paths"
        );
    }
}
