//! Cross-validation of the symbolic pipeline against the hand-optimised
//! propagators: the DSL-defined, interpreter-executed acoustic operator must
//! reproduce `tempest_core::Acoustic` — the same relationship Devito's
//! generated code has to the paper's manually transformed WTB kernels.

use tempest::core::config::EquationKind;
use tempest::core::{Acoustic, Execution, SimConfig, WaveSolver};
use tempest::dsl::operator::InjectScale;
use tempest::dsl::{solve, Context, DslOperator};
use tempest::grid::{Array3, Domain, Model, Shape};
use tempest::sparse::{ricker, SparsePoints};

fn run_pair(n: usize, so: usize, nt: usize, off_grid: f32) -> (f32, f32) {
    let domain = Domain::uniform(Shape::cube(n), 10.0);
    let c = 2000.0f32;
    let cfg = SimConfig::new(domain, so, EquationKind::Acoustic, c, 100.0)
        .with_nt(nt)
        .with_f0(30.0)
        .with_boundary(0, 0.0);
    let dt = cfg.dt;

    // DSL path.
    let mut ctx = Context::new(domain);
    ctx.set_dt(dt as f64);
    let u = ctx.time_function("u", 2, so);
    let m = ctx.parameter("m");
    let eq = m.x() * u.dt2() - u.laplace();
    let update = solve(&ctx, &eq, u).unwrap();
    let m_id = m.id();
    let mut op = DslOperator::new(ctx, vec![update], nt);
    op.set_parameter(
        m_id,
        Array3::full(n, n, n, 1.0 / (c * c)),
    );
    let src = SparsePoints::single_center(&domain, off_grid);
    let wl = ricker(30.0, dt, nt);
    op.add_injection(u, &src, &wl, InjectScale::ConstOverParam(dt * dt, m_id));
    op.run();
    let dsl_field = op.final_field(u.id());

    // Optimised path.
    let model = Model::homogeneous(domain, c);
    let mut fast = Acoustic::new(&model, cfg, src, None);
    fast.run(&Execution::baseline().sequential());
    let fast_field = fast.final_field();

    (
        dsl_field.max_abs_diff(&fast_field),
        fast_field.max_abs(),
    )
}

#[test]
fn dsl_matches_core_so4() {
    let (diff, scale) = run_pair(14, 4, 12, 0.37);
    assert!(scale > 0.0);
    assert!(diff <= 1e-3 * scale, "rel diff {}", diff / scale);
}

#[test]
fn dsl_matches_core_so8() {
    let (diff, scale) = run_pair(16, 8, 10, 0.37);
    assert!(diff <= 1e-3 * scale, "rel diff {}", diff / scale);
}

#[test]
fn dsl_matches_core_on_grid_source() {
    let (diff, scale) = run_pair(14, 4, 12, 0.0);
    assert!(diff <= 1e-3 * scale, "rel diff {}", diff / scale);
}

#[test]
fn dsl_elastic_matches_core() {
    // The velocity–stress system written symbolically with staggered
    // derivative nodes, executed by the interpreter, must match the
    // optimised two-phase elastic propagator.
    use tempest::core::Elastic;
    use tempest::dsl::Update;
    use tempest::grid::ElasticModel;

    let n = 12;
    let so = 4;
    let nt = 8;
    let domain = Domain::uniform(Shape::cube(n), 10.0);
    let (vp, vs, rho) = (3000.0f32, 1400.0f32, 2200.0f32);
    let cfg = SimConfig::new(domain, so, EquationKind::Elastic, vp, 20.0)
        .with_nt(nt)
        .with_f0(30.0)
        .with_boundary(0, 0.0);
    let dt = cfg.dt;

    // --- DSL definition --------------------------------------------------
    let mut ctx = Context::new(domain);
    ctx.set_dt(dt as f64);
    let vx = ctx.time_function("vx", 1, so);
    let vy = ctx.time_function("vy", 1, so);
    let vz = ctx.time_function("vz", 1, so);
    let txx = ctx.time_function("txx", 1, so);
    let tyy = ctx.time_function("tyy", 1, so);
    let tzz = ctx.time_function("tzz", 1, so);
    let txy = ctx.time_function("txy", 1, so);
    let txz = ctx.time_function("txz", 1, so);
    let tyz = ctx.time_function("tyz", 1, so);
    let lam = ctx.parameter("lam");
    let mu = ctx.parameter("mu");
    let buoy = ctx.parameter("b");
    let dte = tempest::dsl::Expr::c(dt as f64);

    let upd_vx = Update::explicit(
        vx.id(),
        vx.x()
            + dte.clone()
                * buoy.x()
                * (txx.dxs_fwd(0) + txy.dxs_bwd(1) + txz.dxs_bwd(2)),
    );
    let upd_vy = Update::explicit(
        vy.id(),
        vy.x()
            + dte.clone()
                * buoy.x()
                * (txy.dxs_bwd(0) + tyy.dxs_fwd(1) + tyz.dxs_bwd(2)),
    );
    let upd_vz = Update::explicit(
        vz.id(),
        vz.x()
            + dte.clone()
                * buoy.x()
                * (txz.dxs_bwd(0) + tyz.dxs_bwd(1) + tzz.dxs_fwd(2)),
    );
    // Strain rates from the *fresh* velocities (t_off = 1).
    let exx = vx.dxs_bwd_at(0, 1);
    let eyy = vy.dxs_bwd_at(1, 1);
    let ezz = vz.dxs_bwd_at(2, 1);
    let div = exx.clone() + eyy.clone() + ezz.clone();
    let upd_txx = Update::explicit(
        txx.id(),
        txx.x() + dte.clone() * (lam.x() * div.clone() + 2.0 * (mu.x() * exx)),
    );
    let upd_tyy = Update::explicit(
        tyy.id(),
        tyy.x() + dte.clone() * (lam.x() * div.clone() + 2.0 * (mu.x() * eyy)),
    );
    let upd_tzz = Update::explicit(
        tzz.id(),
        tzz.x() + dte.clone() * (lam.x() * div + 2.0 * (mu.x() * ezz)),
    );
    let upd_txy = Update::explicit(
        txy.id(),
        txy.x() + dte.clone() * (mu.x() * (vx.dxs_fwd_at(1, 1) + vy.dxs_fwd_at(0, 1))),
    );
    let upd_txz = Update::explicit(
        txz.id(),
        txz.x() + dte.clone() * (mu.x() * (vx.dxs_fwd_at(2, 1) + vz.dxs_fwd_at(0, 1))),
    );
    let upd_tyz = Update::explicit(
        tyz.id(),
        tyz.x() + dte * (mu.x() * (vy.dxs_fwd_at(2, 1) + vz.dxs_fwd_at(1, 1))),
    );

    let (lam_id, mu_id, b_id) = (lam.id(), mu.id(), buoy.id());
    let mut op = DslOperator::new(
        ctx,
        vec![
            upd_vx, upd_vy, upd_vz, upd_txx, upd_tyy, upd_tzz, upd_txy, upd_txz, upd_tyz,
        ],
        nt,
    );
    let mu_v = rho * vs * vs;
    let lam_v = rho * vp * vp - 2.0 * mu_v;
    op.set_parameter(lam_id, Array3::full(n, n, n, lam_v));
    op.set_parameter(mu_id, Array3::full(n, n, n, mu_v));
    op.set_parameter(b_id, Array3::full(n, n, n, 1.0 / rho));

    let src = SparsePoints::single_center(&domain, 0.37);
    let wl = ricker(30.0, dt, nt);
    for f in [txx, tyy, tzz] {
        op.add_injection(f, &src, &wl, InjectScale::Const(dt));
    }
    op.run();
    let dsl_vz = op.final_field(vz.id());

    // --- optimised propagator --------------------------------------------
    let model = ElasticModel::homogeneous(domain, vp, vs, rho);
    let mut fast = Elastic::new(&model, cfg, src, None);
    fast.run(&Execution::baseline().sequential());
    let fast_vz = fast.final_field();

    let scale = fast_vz.max_abs().max(1e-30);
    let diff = dsl_vz.max_abs_diff(&fast_vz);
    assert!(scale > 0.0, "wavefield must be excited");
    assert!(
        diff <= 1e-3 * scale,
        "DSL elastic vs core: rel diff {}",
        diff / scale
    );

    // Automated temporal blocking of the 9-field staggered system, derived
    // entirely from the symbolic spec (each of the 9 updates becomes its own
    // virtual step — the Fig. 8b multi-grid skew, fully automatic): must be
    // bitwise identical to the DSL's classic schedule.
    op.run_wavefront(5, 5, 3);
    let wf_vz = op.final_field(vz.id());
    assert!(
        dsl_vz.bit_equal(&wf_vz),
        "automated WTB on DSL elastic: max diff {}",
        dsl_vz.max_abs_diff(&wf_vz)
    );
}

#[test]
fn dsl_traces_match_core() {
    let n = 14;
    let so = 4;
    let nt = 12;
    let domain = Domain::uniform(Shape::cube(n), 10.0);
    let c = 2000.0f32;
    let cfg = SimConfig::new(domain, so, EquationKind::Acoustic, c, 100.0)
        .with_nt(nt)
        .with_f0(30.0)
        .with_boundary(0, 0.0);
    let dt = cfg.dt;

    let mut ctx = Context::new(domain);
    ctx.set_dt(dt as f64);
    let u = ctx.time_function("u", 2, so);
    let m = ctx.parameter("m");
    let update = solve(&ctx, &(m.x() * u.dt2() - u.laplace()), u).unwrap();
    let m_id = m.id();
    let mut op = DslOperator::new(ctx, vec![update], nt);
    op.set_parameter(m_id, Array3::full(n, n, n, 1.0 / (c * c)));
    let src = SparsePoints::single_center(&domain, 0.37);
    let rec = SparsePoints::receiver_line(&domain, 4, 0.25);
    let wl = ricker(30.0, dt, nt);
    op.add_injection(u, &src, &wl, InjectScale::ConstOverParam(dt * dt, m_id));
    let idx = op.add_interpolation(u, &rec);
    op.run();
    let dsl_trace = op.trace(idx).clone();

    let model = Model::homogeneous(domain, c);
    let mut fast = Acoustic::new(&model, cfg, src, Some(rec));
    fast.run(&Execution::baseline().sequential());
    let fast_trace = fast.trace().unwrap();

    let scale = fast_trace
        .as_slice()
        .iter()
        .fold(0.0f32, |m, &v| m.max(v.abs()))
        .max(1e-30);
    for i in 0..dsl_trace.len() {
        let d = (dsl_trace.as_slice()[i] - fast_trace.as_slice()[i]).abs();
        assert!(d <= 1e-3 * scale, "trace idx {i}: rel {}", d / scale);
    }
}
