//! Backend-equivalence oracle for the multi-backend kernel layer
//! (`tempest_stencil::backend`): every kernel backend available on the
//! host — portable pencil kernels, AVX2 intrinsics — must produce final
//! wavefields **bitwise identical** (`f32::to_bits` equality) to the
//! per-point `Scalar` reference, for every propagator, at radii 2 and 4,
//! under both a spatially blocked and a dataflow temporal-blocking
//! schedule. This is the contract that lets the runtime dispatcher swap
//! backends per host without changing results.
//!
//! Also unit-tests the dispatcher itself through its pure `choose` entry
//! point (the env-reading `default_backend` is a OnceLock over the same
//! logic, kept out of tests to avoid cross-test env races).

use tempest::core::config::EquationKind;
use tempest::core::operator::{KernelPath, Schedule, SparseMode};
use tempest::core::{Acoustic, Elastic, Execution, SimConfig, Tti, WaveSolver};
use tempest::grid::{Array3, Domain, ElasticModel, Model, Shape, TtiModel};
use tempest::sparse::SparsePoints;
use tempest::stencil::backend::{choose, detect_best};
use tempest::stencil::Backend;

const N: usize = 20;
const NT: usize = 10;

fn domain() -> Domain {
    Domain::uniform(Shape::cube(N), 10.0)
}

/// The two schedule families the oracle sweeps: the spatially blocked
/// baseline and a barrier-free dataflow temporal-blocking schedule.
fn schedules() -> Vec<(&'static str, Execution)> {
    let sb = Execution::baseline().sequential();
    let mut df = Execution::wavefront_dataflow_default().sequential();
    df.schedule = Schedule::WavefrontDataflow {
        tile_x: 8,
        tile_y: 8,
        tile_t: 3,
        block_x: 4,
        block_y: 4,
    };
    df.sparse = SparseMode::FusedCompressed;
    vec![("spaceblocked", sb), ("dataflow", df)]
}

/// Every non-scalar backend runnable on this host, as a `KernelPath`.
fn vector_backends() -> Vec<Backend> {
    Backend::ALL
        .into_iter()
        .filter(|b| *b != Backend::Scalar && b.available())
        .collect()
}

fn assert_bitwise(label: &str, scalar: &Array3<f32>, other: &Array3<f32>) {
    assert!(scalar.max_abs() > 0.0, "{label}: field must be excited");
    assert!(
        scalar.bit_equal(other),
        "{label}: backend must be bitwise identical to scalar, max diff {}",
        scalar.max_abs_diff(other)
    );
}

/// Run `solver` under every backend and compare each against scalar.
fn check_all_backends(label: &str, solver: &mut dyn WaveSolver, exec: &Execution) {
    solver.run(&exec.with_kernel(KernelPath::Scalar));
    let reference = solver.final_field();
    for b in vector_backends() {
        solver.run(&exec.with_kernel(KernelPath::from(b)));
        let field = solver.final_field();
        assert_bitwise(&format!("{label} backend={}", b.name()), &reference, &field);
    }
}

#[test]
fn acoustic_backends_bitwise_vs_scalar() {
    for so in [4usize, 8] {
        let d = domain();
        let model = Model::two_layer(d, 1600.0, 2800.0, 0.5);
        let cfg = SimConfig::new(d, so, EquationKind::Acoustic, 2800.0, 50.0)
            .with_nt(NT)
            .with_f0(12.0)
            .with_boundary(4, 0.3);
        let src = SparsePoints::single_center(&d, 0.4);
        let rec = SparsePoints::receiver_line(&d, 4, 0.25);
        let mut a = Acoustic::new(&model, cfg, src, Some(rec));
        for (name, exec) in schedules() {
            check_all_backends(&format!("acoustic so={so} {name}"), &mut a, &exec);
        }
    }
}

#[test]
fn tti_backends_bitwise_vs_scalar() {
    for so in [4usize, 8] {
        let d = domain();
        let model = TtiModel::homogeneous(d, 2000.0, 0.2, 0.1, 0.35, 0.3);
        let cfg = SimConfig::new(d, so, EquationKind::Tti, model.vmax(), 80.0)
            .with_nt(NT)
            .with_f0(15.0)
            .with_boundary(4, 0.3);
        let src = SparsePoints::single_center(&d, 0.4);
        let mut t = Tti::new(&model, cfg, src, None);
        for (name, exec) in schedules() {
            check_all_backends(&format!("tti so={so} {name}"), &mut t, &exec);
        }
    }
}

#[test]
fn elastic_backends_bitwise_vs_scalar() {
    for so in [4usize, 8] {
        let d = domain();
        let model = ElasticModel::homogeneous(d, 2500.0, 1400.0, 2200.0);
        let cfg = SimConfig::new(d, so, EquationKind::Elastic, 2500.0, 60.0)
            .with_nt(NT)
            .with_f0(12.0)
            .with_boundary(4, 0.3);
        let src = SparsePoints::single_center(&d, 0.4);
        let rec = SparsePoints::receiver_line(&d, 4, 0.25);
        let mut e = Elastic::new(&model, cfg, src, Some(rec));
        for (name, exec) in schedules() {
            check_all_backends(&format!("elastic so={so} {name}"), &mut e, &exec);
        }
    }
}

#[test]
fn dispatcher_honours_requests_and_falls_back() {
    // Explicit names are honoured whenever the backend can run here.
    assert_eq!(choose(Some("scalar")), Backend::Scalar);
    assert_eq!(choose(Some("portable")), Backend::Portable);
    assert_eq!(choose(Some("pencil")), Backend::Portable);
    if Backend::Avx2.available() {
        assert_eq!(choose(Some("avx2")), Backend::Avx2);
    } else {
        // Unavailable request falls back to the detected best, not a crash.
        assert_eq!(choose(Some("avx2")), detect_best());
    }
    // Auto, empty and unknown all resolve to the detected best.
    for req in [None, Some("auto"), Some(""), Some("no-such-backend")] {
        assert_eq!(choose(req), detect_best());
    }
    // The detected best is always runnable and never the scalar reference.
    assert!(detect_best().available());
    assert_ne!(detect_best(), Backend::Scalar);
}

#[test]
fn kernel_path_resolution_matches_dispatcher() {
    assert_eq!(KernelPath::Auto.resolve(), choose(None));
    assert_eq!(KernelPath::Scalar.resolve(), Backend::Scalar);
    assert_eq!(KernelPath::Portable.resolve(), Backend::Portable);
    // The compat alias points at the portable backend.
    assert_eq!(KernelPath::Pencil, KernelPath::Portable);
    if Backend::Avx2.available() {
        assert_eq!(KernelPath::Avx2.resolve(), Backend::Avx2);
    } else {
        assert_eq!(KernelPath::Avx2.resolve(), detect_best());
    }
}
