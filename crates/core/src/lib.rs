//! # tempest-core
//!
//! The paper's contribution assembled: three finite-difference wave
//! propagators — isotropic acoustic (§III-A), anisotropic acoustic TTI
//! (§III-B) and isotropic elastic (§III-C) — that run under either the
//! spatially blocked baseline schedule (classic per-timestep off-grid
//! sparse operators, Listing 1) or **wave-front temporal blocking** with the
//! precomputed, grid-aligned, loop-fused sparse operators of §II
//! (Listings 4–5).
//!
//! Entry points:
//!
//! * [`config::SimConfig`] — problem setup (grid, space order, CFL-stable
//!   timestep, absorbing layers), mirroring the paper's §IV.B test cases.
//! * [`acoustic::Acoustic`], [`tti::Tti`], [`elastic::Elastic`] — the
//!   propagators.
//! * [`operator::Execution`] — which schedule to run; every propagator
//!   implements [`operator::WaveSolver`] and returns
//!   [`operator::RunStats`] (throughput in GPoints/s, the paper's Fig. 9
//!   metric).
//!
//! Correctness invariant (enforced by tests at every space order): the
//! wave-front temporally blocked execution produces the same wavefields as
//! the spatially blocked baseline — bitwise for single-source problems,
//! within accumulation-order tolerance otherwise.

pub mod acoustic;
pub mod config;
pub mod elastic;
pub mod io;
pub mod operator;
pub mod shared;
pub mod sources;
pub mod trace;
pub mod tti;

pub use acoustic::{Acoustic, IncrementalReport, ShotAssets};
pub use config::SimConfig;
pub use elastic::Elastic;
pub use operator::{DiamondAxis, Execution, KernelPath, RunStats, WaveSolver};
pub use tti::Tti;
