//! Simulation configuration (paper §IV.B test-case setup).
//!
//! "We benchmark velocity models of 512³ grid points, with a grid spacing of
//! 10 for isotropic and elastic and 20 for TTI. Wave propagation is modeled
//! in single precision for 512 ms … The time-stepping interval is selected
//! regarding the Courant-Friedrichs-Lewy (CFL) condition."

use tempest_grid::{Domain, Shape};

/// Which wave equation a configuration drives (affects the CFL constant).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EquationKind {
    /// Isotropic acoustic, 2nd order in time (§III-A).
    Acoustic,
    /// Anisotropic acoustic TTI, 2nd order in time (§III-B).
    Tti,
    /// Isotropic elastic velocity–stress, 1st order in time (§III-C).
    Elastic,
}

/// CFL stability factor for 3-D explicit schemes of the given kind.
///
/// The bound is `dt ≤ C · h_min / v_max`; the constants are the standard
/// conservative choices for high-order FD (Devito uses comparable values).
pub fn cfl_factor(kind: EquationKind) -> f32 {
    match kind {
        EquationKind::Acoustic => 0.38,
        // The TTI coupled system needs extra margin for strong anisotropy.
        EquationKind::Tti => 0.30,
        // Staggered leap-frog: 6/(7·√3) ≈ 0.49 classic Virieux bound,
        // tightened for high space order.
        EquationKind::Elastic => 0.42,
    }
}

/// CFL-stable timestep (seconds).
pub fn cfl_dt(kind: EquationKind, min_spacing: f32, vmax: f32) -> f32 {
    assert!(min_spacing > 0.0 && vmax > 0.0);
    cfl_factor(kind) * min_spacing / vmax
}

/// A complete simulation setup.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// The physical grid.
    pub domain: Domain,
    /// FD space order (the paper studies 4, 8, 12).
    pub space_order: usize,
    /// Wave equation kind.
    pub kind: EquationKind,
    /// Timestep (s), CFL-conditioned.
    pub dt: f32,
    /// Number of timesteps.
    pub nt: usize,
    /// Source wavelet peak frequency (Hz).
    pub f0: f32,
    /// Absorbing boundary layer width (grid points).
    pub nbl: usize,
    /// Dimensionless per-step sponge strength η at the outer face; the
    /// update damps by `(1 − η)/(1 + η)` per step at the boundary.
    pub damp_coeff: f32,
}

impl SimConfig {
    /// Build a configuration following the paper's recipe: CFL-stable `dt`
    /// from `vmax`, step count covering `t_end_ms` milliseconds.
    pub fn new(
        domain: Domain,
        space_order: usize,
        kind: EquationKind,
        vmax: f32,
        t_end_ms: f32,
    ) -> Self {
        assert!(
            space_order >= 2 && space_order.is_multiple_of(2),
            "space order must be even ≥ 2"
        );
        assert!(t_end_ms > 0.0);
        let dt = cfl_dt(kind, domain.min_spacing(), vmax);
        let nt = (t_end_ms / 1000.0 / dt).ceil() as usize;
        SimConfig {
            domain,
            space_order,
            kind,
            dt,
            nt: nt.max(2),
            f0: 10.0,
            nbl: 10,
            damp_coeff: 0.3,
        }
    }

    /// Stencil radius (half the space order).
    pub fn radius(&self) -> usize {
        self.space_order / 2
    }

    /// Grid shape.
    pub fn shape(&self) -> Shape {
        self.domain.shape()
    }

    /// Override the source peak frequency.
    pub fn with_f0(mut self, f0: f32) -> Self {
        assert!(f0 > 0.0);
        self.f0 = f0;
        self
    }

    /// Override the absorbing layer (0 disables damping).
    pub fn with_boundary(mut self, nbl: usize, damp_coeff: f32) -> Self {
        self.nbl = nbl;
        self.damp_coeff = damp_coeff;
        self
    }

    /// Override the step count (benchmarks use short runs).
    pub fn with_nt(mut self, nt: usize) -> Self {
        assert!(nt >= 2);
        self.nt = nt;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dom(n: usize, h: f32) -> Domain {
        Domain::uniform(Shape::cube(n), h)
    }

    #[test]
    fn cfl_dt_scales() {
        let dt1 = cfl_dt(EquationKind::Acoustic, 10.0, 2000.0);
        let dt2 = cfl_dt(EquationKind::Acoustic, 20.0, 2000.0);
        let dt3 = cfl_dt(EquationKind::Acoustic, 10.0, 4000.0);
        assert!((dt2 / dt1 - 2.0).abs() < 1e-6);
        assert!((dt3 / dt1 - 0.5).abs() < 1e-6);
    }

    #[test]
    fn paper_like_step_counts() {
        // §IV.B: 512 ms, h = 10, ~water-like velocities give a few hundred
        // steps for acoustic — our constants land in the same regime.
        let cfg = SimConfig::new(dom(64, 10.0), 4, EquationKind::Acoustic, 1700.0, 512.0);
        assert!(
            (150..400).contains(&cfg.nt),
            "acoustic nt {} should be a few hundred",
            cfg.nt
        );
        let cfg_e = SimConfig::new(dom(64, 10.0), 4, EquationKind::Elastic, 3000.0, 512.0);
        assert!(cfg_e.nt > cfg.nt, "elastic needs more steps (faster vp)");
    }

    #[test]
    fn tti_is_most_conservative() {
        assert!(cfl_factor(EquationKind::Tti) < cfl_factor(EquationKind::Acoustic));
    }

    #[test]
    fn builders_apply() {
        let cfg = SimConfig::new(dom(32, 10.0), 8, EquationKind::Acoustic, 2000.0, 100.0)
            .with_f0(15.0)
            .with_boundary(6, 0.2)
            .with_nt(12);
        assert_eq!(cfg.f0, 15.0);
        assert_eq!(cfg.nbl, 6);
        assert_eq!(cfg.damp_coeff, 0.2);
        assert_eq!(cfg.nt, 12);
        assert_eq!(cfg.radius(), 4);
    }

    #[test]
    #[should_panic(expected = "even")]
    fn rejects_odd_order() {
        let _ = SimConfig::new(dom(16, 10.0), 5, EquationKind::Acoustic, 2000.0, 10.0);
    }
}
