//! The high-level execution API: which schedule, which sparse-operator
//! path, how parallel — and the throughput statistics of a run (the
//! GPoints/s metric of the paper's Fig. 9).

use std::time::Duration;

use tempest_grid::{Array2, Array3, Shape};
use tempest_obs as obs;
use tempest_par::Policy;
use tempest_stencil::Backend;
use tempest_tiling::{DiamondSpec, SpaceBlockSpec, WavefrontSpec};

pub use tempest_tiling::DiamondAxis;

/// How the off-grid sparse operators execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SparseMode {
    /// Per-timestep non-affine loops after the dense sweep (Listing 1).
    /// Only legal under [`Schedule::SpaceBlocked`] — under temporal blocking
    /// it would inject/measure at wrong space-time coordinates (Fig. 4b).
    Classic,
    /// Precomputed, grid-aligned, fused into the loop nest; the `z2` loop
    /// scans the full pencil against the binary mask (Listing 4).
    Fused,
    /// Fused with the compressed `nnz_mask` / `Sp_SID` iteration space
    /// (Listing 5) — the paper's recommended configuration.
    FusedCompressed,
}

/// Which dense-kernel backend computes the stencil updates.
///
/// All backends are bitwise-identical by construction (asserted by the
/// kernel-equivalence and kernel-backends test suites): each one replicates
/// the scalar per-point accumulation order exactly — no reassociation, no
/// FMA contraction — so the selector changes throughput, never a single
/// output bit. Override precedence when a run starts: an explicit variant
/// here (the `--kernel` flag) beats the `TEMPEST_KERNEL` environment
/// variable, which beats CPU-feature detection; see
/// `tempest_stencil::backend` for the dispatcher.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelPath {
    /// Runtime dispatch (the default): `TEMPEST_KERNEL` if set and
    /// runnable, else the best detected backend (AVX2 where available,
    /// portable otherwise).
    #[default]
    Auto,
    /// Per-point kernels (`tempest_stencil::kernels`): one bounds-checked
    /// call per grid point, vectorisation left to the compiler.
    Scalar,
    /// Whole-row pencil kernels (`tempest_stencil::simd`): per-offset slice
    /// windows hoist every bounds check out of the inner loop, which LLVM
    /// vectorises to 8-wide lanes on any target.
    Portable,
    /// Explicit AVX2 intrinsics (`tempest_stencil::avx2`): unaligned
    /// 256-bit loads, unfused multiply-add. Falls back to the detected best
    /// backend on hosts without AVX2.
    Avx2,
}

impl KernelPath {
    /// Compatibility alias for the pre-backend name of the portable pencil
    /// path. Matches in patterns (structural equality), so existing
    /// `KernelPath::Pencil` call sites keep compiling.
    #[allow(non_upper_case_globals)]
    pub const Pencil: KernelPath = KernelPath::Portable;

    /// Resolve this selection to a concrete runnable backend, applying the
    /// documented precedence. `Auto` consults the process-wide dispatcher
    /// (`TEMPEST_KERNEL`, then CPU detection); a concrete variant is
    /// honoured when the host can run it and falls back to the detected
    /// best otherwise (never panics, never selects an unrunnable backend).
    pub fn resolve(self) -> Backend {
        match self {
            KernelPath::Auto => tempest_stencil::backend::default_backend(),
            KernelPath::Scalar => Backend::Scalar,
            KernelPath::Portable => Backend::Portable,
            KernelPath::Avx2 => {
                if Backend::Avx2.available() {
                    Backend::Avx2
                } else {
                    tempest_stencil::backend::detect_best()
                }
            }
        }
    }

    /// Parse a `--kernel` / `TEMPEST_KERNEL`-style name. Accepts the
    /// backend names (`scalar`, `portable`, `avx2`), the `pencil` alias,
    /// and `auto`; rejects anything else.
    pub fn parse(name: &str) -> Option<KernelPath> {
        let s = name.trim();
        if s.eq_ignore_ascii_case("auto") {
            return Some(KernelPath::Auto);
        }
        Backend::parse(s).map(KernelPath::from)
    }

    /// Stable lowercase label (`auto`, `scalar`, `portable`, `avx2`).
    pub fn label(self) -> &'static str {
        match self {
            KernelPath::Auto => "auto",
            KernelPath::Scalar => "scalar",
            KernelPath::Portable => "portable",
            KernelPath::Avx2 => "avx2",
        }
    }
}

impl From<Backend> for KernelPath {
    fn from(b: Backend) -> Self {
        match b {
            Backend::Scalar => KernelPath::Scalar,
            Backend::Portable => KernelPath::Portable,
            Backend::Avx2 => KernelPath::Avx2,
        }
    }
}

/// Record which backend serves a starting run: exactly one
/// `Counter::Backend*` bump per `run`/`run_recording`/`run_range` entry
/// (no-op without the `obs` feature). The propagators call this after
/// resolving `Execution::kernel`, so `Auto` runs record the backend they
/// actually dispatched to — the "which backend am I running?" signal.
pub(crate) fn record_backend_run(b: Backend) {
    obs::add(
        match b {
            Backend::Scalar => obs::Counter::BackendScalar,
            Backend::Portable => obs::Counter::BackendPortable,
            Backend::Avx2 => obs::Counter::BackendAvx2,
        },
        1,
    );
}

/// Which loop schedule traverses the space-time domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Schedule {
    /// Per-timestep spatial blocking (the baseline of Fig. 9).
    SpaceBlocked {
        /// Block extent along x.
        block_x: usize,
        /// Block extent along y.
        block_y: usize,
    },
    /// Wave-front temporal blocking (§II.B). `tile_t` is in *timesteps*
    /// (multi-phase propagators convert to virtual steps internally); the
    /// skew is chosen by the propagator from its dependency radius.
    Wavefront {
        /// Spatial tile extent along x (Table I `tile_x`).
        tile_x: usize,
        /// Spatial tile extent along y (Table I `tile_y`).
        tile_y: usize,
        /// Temporal tile height in timesteps.
        tile_t: usize,
        /// Intra-slab block extent along x (Table I `block_x`).
        block_x: usize,
        /// Intra-slab block extent along y (Table I `block_y`).
        block_y: usize,
    },
    /// Wave-front temporal blocking with diagonal-parallel tile execution:
    /// same parameters and identical (bitwise) results as [`Wavefront`],
    /// but tiles on one anti-diagonal of a time tile run concurrently as
    /// whole space-time tiles, with one barrier per diagonal instead of one
    /// per slab. Coarser parallel grain, ~`tile_t×` fewer synchronisation
    /// points; legality for `skew ≥ radius` is certified by
    /// `tempest_tiling::legality::check_diagonal_independence`.
    WavefrontDiagonal {
        /// Spatial tile extent along x (Table I `tile_x`).
        tile_x: usize,
        /// Spatial tile extent along y (Table I `tile_y`).
        tile_y: usize,
        /// Temporal tile height in timesteps.
        tile_t: usize,
        /// Intra-slab block extent along x (Table I `block_x`).
        block_x: usize,
        /// Intra-slab block extent along y (Table I `block_y`).
        block_y: usize,
    },
    /// Wave-front temporal blocking with dependency-driven (dataflow) tile
    /// execution: same parameters and identical (bitwise) results as
    /// [`Wavefront`]/[`WavefrontDiagonal`], but each space-time tile carries
    /// an atomic counter of its true predecessors and workers steal
    /// freshly-ready tiles from per-worker deques — no barriers at all
    /// inside a sweep, just one join at its end. Soundness of the
    /// predecessor sets is certified by
    /// `tempest_tiling::legality::check_dataflow_dependencies`.
    WavefrontDataflow {
        /// Spatial tile extent along x (Table I `tile_x`).
        tile_x: usize,
        /// Spatial tile extent along y (Table I `tile_y`).
        tile_y: usize,
        /// Temporal tile height in timesteps.
        tile_t: usize,
        /// Intra-slab block extent along x (Table I `block_x`).
        block_x: usize,
        /// Intra-slab block extent along y (Table I `block_y`).
        block_y: usize,
    },
    /// Diamond (multicore wavefront diamond, Malas et al. arXiv:1410.3060)
    /// temporal blocking: time × one chosen space `axis` tile into diamonds
    /// of base `width`, and a skewed wave-front of `tile_c`-wide windows
    /// advances along the other horizontal axis. Tiles run on the dataflow
    /// executor's dependency-counted substrate; results are bitwise
    /// identical to the wavefront family. Legality requires
    /// `width ≥ 2·radius·tile_t·phases` (diamond slope at least the stencil
    /// radius per virtual step), certified by
    /// `tempest_tiling::legality::check_diamond_dependencies`.
    Diamond {
        /// Diamond base width along the diamond axis (must be a multiple of
        /// `2·tile_t·phases`).
        width: usize,
        /// Temporal tile height in timesteps.
        tile_t: usize,
        /// Cross-axis window extent.
        tile_c: usize,
        /// Which horizontal axis the diamonds tile.
        axis: DiamondAxis,
        /// Intra-slab block extent along x.
        block_x: usize,
        /// Intra-slab block extent along y.
        block_y: usize,
    },
}

impl Schedule {
    /// Temporal reuse factor for the streaming-traffic roofline model: the
    /// number of timesteps a temporal tile keeps wavefields cache-resident
    /// (`tile_t`), or 1 for the per-timestep baseline. Feeds
    /// `KernelCost::bytes_streaming_temporal` when placing a schedule on
    /// the roofline (paper Fig. 11).
    pub fn temporal_reuse(&self) -> usize {
        match *self {
            Schedule::SpaceBlocked { .. } => 1,
            Schedule::Wavefront { tile_t, .. }
            | Schedule::WavefrontDiagonal { tile_t, .. }
            | Schedule::WavefrontDataflow { tile_t, .. }
            | Schedule::Diamond { tile_t, .. } => tile_t.max(1),
        }
    }
}

/// A complete execution configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Execution {
    /// The loop schedule.
    pub schedule: Schedule,
    /// The sparse-operator path.
    pub sparse: SparseMode,
    /// Thread policy for independent blocks.
    pub policy: Policy,
    /// The dense-kernel backend selection (resolved to a concrete backend
    /// when the run starts; `Auto` = runtime dispatch).
    pub kernel: KernelPath,
}

impl Execution {
    /// The paper's baseline: spatially blocked, vectorised, classic sparse
    /// operators between timesteps.
    pub fn baseline() -> Self {
        Execution {
            schedule: Schedule::SpaceBlocked {
                block_x: 8,
                block_y: 8,
            },
            sparse: SparseMode::Classic,
            policy: Policy::default(),
            kernel: KernelPath::default(),
        }
    }

    /// Wave-front temporal blocking with the paper's most common tuned
    /// shape (Table I: tile 64×64, block 8×8) and a moderate temporal
    /// height.
    pub fn wavefront_default() -> Self {
        Execution {
            schedule: Schedule::Wavefront {
                tile_x: 64,
                tile_y: 64,
                tile_t: 8,
                block_x: 8,
                block_y: 8,
            },
            sparse: SparseMode::FusedCompressed,
            policy: Policy::default(),
            kernel: KernelPath::default(),
        }
    }

    /// Like [`wavefront_default`](Self::wavefront_default) but with the
    /// diagonal-parallel tile executor.
    pub fn wavefront_diagonal_default() -> Self {
        Execution {
            schedule: Schedule::WavefrontDiagonal {
                tile_x: 64,
                tile_y: 64,
                tile_t: 8,
                block_x: 8,
                block_y: 8,
            },
            sparse: SparseMode::FusedCompressed,
            policy: Policy::default(),
            kernel: KernelPath::default(),
        }
    }

    /// Like [`wavefront_default`](Self::wavefront_default) but with the
    /// dependency-driven (dataflow) tile executor.
    pub fn wavefront_dataflow_default() -> Self {
        Execution {
            schedule: Schedule::WavefrontDataflow {
                tile_x: 64,
                tile_y: 64,
                tile_t: 8,
                block_x: 8,
                block_y: 8,
            },
            sparse: SparseMode::FusedCompressed,
            policy: Policy::default(),
            kernel: KernelPath::default(),
        }
    }

    /// Diamond temporal blocking with a shape matching the wavefront
    /// defaults: width 64 (slope 4 at `tile_t` 8), cross windows 64 wide,
    /// diamonds along x, 8×8 intra-slab blocks.
    pub fn diamond_default() -> Self {
        Execution {
            schedule: Schedule::Diamond {
                width: 64,
                tile_t: 8,
                tile_c: 64,
                axis: DiamondAxis::X,
                block_x: 8,
                block_y: 8,
            },
            sparse: SparseMode::FusedCompressed,
            policy: Policy::default(),
            kernel: KernelPath::default(),
        }
    }

    /// Force sequential execution (reproducible timings on shared machines).
    pub fn sequential(mut self) -> Self {
        self.policy = Policy::Sequential;
        self
    }

    /// Select the scalar per-point kernels (the reference path, kept for
    /// ablation and equivalence testing).
    pub fn scalar_kernels(mut self) -> Self {
        self.kernel = KernelPath::Scalar;
        self
    }

    /// Select the portable autovectorized pencil kernels (compatibility
    /// name; `Pencil` is an alias for [`KernelPath::Portable`]).
    pub fn pencil_kernels(mut self) -> Self {
        self.kernel = KernelPath::Pencil;
        self
    }

    /// Select an explicit kernel backend (or `Auto` for runtime dispatch).
    pub fn with_kernel(mut self, kernel: KernelPath) -> Self {
        self.kernel = kernel;
        self
    }

    /// Convert to the tiling crate's spec given a per-virtual-step skew and
    /// phase count. Panics if the schedule is not one of the wavefront
    /// variants (all of which share the same tile geometry).
    pub fn wavefront_spec(&self, skew: usize, phases: usize) -> WavefrontSpec {
        match self.schedule {
            Schedule::Wavefront {
                tile_x,
                tile_y,
                tile_t,
                block_x,
                block_y,
            }
            | Schedule::WavefrontDiagonal {
                tile_x,
                tile_y,
                tile_t,
                block_x,
                block_y,
            }
            | Schedule::WavefrontDataflow {
                tile_x,
                tile_y,
                tile_t,
                block_x,
                block_y,
            } => WavefrontSpec::new(
                tile_x,
                tile_y,
                (tile_t * phases).max(1),
                skew,
                block_x,
                block_y,
            ),
            _ => panic!("not a wavefront schedule"),
        }
    }

    /// Convert to the tiling crate's diamond spec given the stencil radius
    /// and phase count. The diamond slope is `width / (2·tile_t·phases)`;
    /// legality (slope ≥ radius per virtual step) requires
    /// `width ≥ 2·radius·tile_t·phases`. Panics if the schedule is not
    /// `Diamond` or the width violates that bound.
    pub fn diamond_spec(&self, radius: usize, phases: usize) -> DiamondSpec {
        match self.schedule {
            Schedule::Diamond {
                width,
                tile_t,
                tile_c,
                axis,
                block_x,
                block_y,
            } => {
                let tv = (tile_t * phases).max(1);
                assert!(
                    width % (2 * tv) == 0 && width / (2 * tv) >= radius.max(1),
                    "diamond width {width} is illegal for radius {radius} at tile_t {tile_t} \
                     × {phases} phase(s): the width must be a multiple of 2·tile_t·phases \
                     = {} with slope width/(2·tile_t·phases) ≥ radius, i.e. width ≥ {}",
                    2 * tv,
                    2 * radius.max(1) * tv,
                );
                DiamondSpec::new(tv, width / (2 * tv), tile_c, radius, block_x, block_y, axis)
            }
            _ => panic!("not a diamond schedule"),
        }
    }

    /// Convert to the tiling crate's space-block spec. Panics if the
    /// schedule is not `SpaceBlocked`.
    pub fn spaceblock_spec(&self) -> SpaceBlockSpec {
        match self.schedule {
            Schedule::SpaceBlocked { block_x, block_y } => SpaceBlockSpec::new(block_x, block_y),
            _ => panic!("not a space-blocked schedule"),
        }
    }

    /// Short human label of the schedule, used in profile reports.
    pub fn schedule_label(&self) -> String {
        match self.schedule {
            Schedule::SpaceBlocked { block_x, block_y } => {
                format!("spaceblocked {block_x}x{block_y}")
            }
            Schedule::Wavefront {
                tile_x,
                tile_y,
                tile_t,
                block_x,
                block_y,
            } => format!("wavefront {tile_x}x{tile_y} t{tile_t} / {block_x}x{block_y}"),
            Schedule::WavefrontDiagonal {
                tile_x,
                tile_y,
                tile_t,
                block_x,
                block_y,
            } => format!("wavefront-diag {tile_x}x{tile_y} t{tile_t} / {block_x}x{block_y}"),
            Schedule::WavefrontDataflow {
                tile_x,
                tile_y,
                tile_t,
                block_x,
                block_y,
            } => format!("wavefront-dflow {tile_x}x{tile_y} t{tile_t} / {block_x}x{block_y}"),
            Schedule::Diamond {
                width,
                tile_t,
                tile_c,
                axis,
                block_x,
                block_y,
            } => format!(
                "diamond-{} w{width} t{tile_t} c{tile_c} / {block_x}x{block_y}",
                axis.name()
            ),
        }
    }

    /// Whether this execution's schedule can run on the incremental tile
    /// plan ([`Acoustic::run_incremental`](crate::Acoustic::run_incremental)):
    /// the schedule must map exactly onto a tile dependency graph — the
    /// dataflow wavefront and diamond graphs, or the space-blocked schedule's
    /// `tile_t = 1` wavefront degeneration. The barrier-synchronised
    /// wavefront executors have no per-tile node identity to cache against.
    pub fn supports_incremental(&self) -> bool {
        matches!(
            self.schedule,
            Schedule::SpaceBlocked { .. }
                | Schedule::WavefrontDataflow { .. }
                | Schedule::Diamond { .. }
        )
    }

    /// Check schedule/sparse compatibility; panics on the Fig. 4b hazard.
    pub fn validate(&self) {
        if matches!(
            self.schedule,
            Schedule::Wavefront { .. }
                | Schedule::WavefrontDiagonal { .. }
                | Schedule::WavefrontDataflow { .. }
                | Schedule::Diamond { .. }
        ) && self.sparse == SparseMode::Classic
        {
            panic!(
                "classic (per-timestep) sparse operators are illegal under wave-front \
                 temporal blocking: source injection would precede/miss stencil updates \
                 of blocks at different timesteps (paper Fig. 4b). Use SparseMode::Fused \
                 or SparseMode::FusedCompressed (the precomputation scheme of §II.A)."
            );
        }
    }
}

/// Timing and throughput of one run.
#[derive(Debug, Clone, Copy)]
pub struct RunStats {
    /// Wall-clock time of the time loop (excludes setup/precompute).
    pub elapsed: Duration,
    /// Timesteps executed.
    pub nt: usize,
    /// Grid points per timestep.
    pub grid_points: usize,
    /// Throughput in giga point-updates per second (Fig. 9's metric).
    pub gpoints_per_s: f64,
}

impl RunStats {
    /// Compute throughput from a measured run.
    pub fn new(elapsed: Duration, nt: usize, shape: Shape) -> Self {
        let updates = (nt as f64) * (shape.len() as f64);
        let secs = elapsed.as_secs_f64().max(1e-12);
        RunStats {
            elapsed,
            nt,
            grid_points: shape.len(),
            gpoints_per_s: updates / secs / 1e9,
        }
    }

    /// Achieved GFLOP/s given a per-point-update FLOP count.
    pub fn gflops(&self, flops_per_point: f64) -> f64 {
        self.gpoints_per_s * flops_per_point
    }
}

/// Common interface of the three wave propagators.
pub trait WaveSolver {
    /// Propagator name ("acoustic", "tti", "elastic").
    fn name(&self) -> &'static str;

    /// Grid shape.
    fn shape(&self) -> Shape;

    /// Number of timesteps.
    fn num_timesteps(&self) -> usize;

    /// Space order of the discretisation.
    fn space_order(&self) -> usize;

    /// Run the full simulation (resets state first) and return throughput.
    fn run(&mut self, exec: &Execution) -> RunStats;

    /// Run with telemetry: resets the observability counters, runs, and
    /// returns the aggregated [`obs::Profile`] alongside the stats plus a
    /// [`obs::RunMeta`] ready for rendering/serialisation. With the `obs`
    /// feature off (or `TEMPEST_PROFILE` unset) the profile is empty and the
    /// run costs the same as [`run`](Self::run).
    fn run_profiled(&mut self, exec: &Execution) -> (RunStats, obs::Profile, obs::RunMeta) {
        let (stats, profile, _trace, meta) = self.run_traced(exec);
        (stats, profile, meta)
    }

    /// Like [`run_profiled`](Self::run_profiled), additionally returning the
    /// event-level [`obs::trace::Trace`] of the run (empty unless the `obs`
    /// feature is compiled in *and* tracing is on via `TEMPEST_TRACE` /
    /// `obs::trace::set_enabled`). Both telemetry layers are reset before
    /// the run, so the returned profile/trace cover exactly this run.
    #[allow(clippy::type_complexity)]
    fn run_traced(
        &mut self,
        exec: &Execution,
    ) -> (RunStats, obs::Profile, obs::trace::Trace, obs::RunMeta) {
        obs::reset();
        obs::trace::reset();
        let stats = self.run(exec);
        let profile = obs::snapshot();
        let trace = obs::trace::snapshot();
        let meta = obs::RunMeta::new(
            &format!("{}-so{}", self.name(), self.space_order()),
            &exec.schedule_label(),
            stats.nt,
            stats.grid_points as u64,
            stats.elapsed.as_secs_f64(),
        );
        (stats, profile, trace, meta)
    }

    /// Snapshot of the representative final wavefield (pressure for
    /// acoustic/TTI, vz for elastic) — the object equivalence tests compare.
    fn final_field(&mut self) -> Array3<f32>;

    /// Receiver data recorded by the last run, if receivers were attached.
    fn trace(&self) -> Option<Array2<f32>>;

    /// FLOPs per point-update (roofline model input).
    fn flops_per_point(&self) -> f64;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_is_spaceblocked_classic() {
        let e = Execution::baseline();
        assert!(matches!(e.schedule, Schedule::SpaceBlocked { .. }));
        assert_eq!(e.sparse, SparseMode::Classic);
        e.validate();
    }

    #[test]
    fn wavefront_default_is_fused_compressed() {
        let e = Execution::wavefront_default();
        assert_eq!(e.sparse, SparseMode::FusedCompressed);
        e.validate();
        let spec = e.wavefront_spec(2, 1);
        assert_eq!(spec.skew, 2);
        assert_eq!(spec.tile_t, 8);
        // Two-phase propagators double the virtual tile height.
        assert_eq!(e.wavefront_spec(2, 2).tile_t, 16);
    }

    #[test]
    #[should_panic(expected = "Fig. 4b")]
    fn classic_under_wavefront_is_rejected() {
        let mut e = Execution::wavefront_default();
        e.sparse = SparseMode::Classic;
        e.validate();
    }

    #[test]
    fn wavefront_diagonal_shares_tile_geometry() {
        let e = Execution::wavefront_diagonal_default();
        e.validate();
        assert_eq!(e.sparse, SparseMode::FusedCompressed);
        let spec = e.wavefront_spec(2, 1);
        assert_eq!(spec, Execution::wavefront_default().wavefront_spec(2, 1));
        assert_eq!(e.wavefront_spec(4, 2).tile_t, 16);
    }

    #[test]
    #[should_panic(expected = "Fig. 4b")]
    fn classic_under_wavefront_diagonal_is_rejected() {
        let mut e = Execution::wavefront_diagonal_default();
        e.sparse = SparseMode::Classic;
        e.validate();
    }

    #[test]
    fn wavefront_dataflow_shares_tile_geometry() {
        let e = Execution::wavefront_dataflow_default();
        e.validate();
        assert_eq!(e.sparse, SparseMode::FusedCompressed);
        let spec = e.wavefront_spec(2, 1);
        assert_eq!(spec, Execution::wavefront_default().wavefront_spec(2, 1));
        assert_eq!(e.wavefront_spec(4, 2).tile_t, 16);
        assert_eq!(e.schedule_label(), "wavefront-dflow 64x64 t8 / 8x8");
    }

    #[test]
    #[should_panic(expected = "Fig. 4b")]
    fn classic_under_wavefront_dataflow_is_rejected() {
        let mut e = Execution::wavefront_dataflow_default();
        e.sparse = SparseMode::Classic;
        e.validate();
    }

    #[test]
    fn diamond_default_spec_conversion() {
        let e = Execution::diamond_default();
        e.validate();
        assert_eq!(e.sparse, SparseMode::FusedCompressed);
        assert_eq!(e.schedule_label(), "diamond-x w64 t8 c64 / 8x8");
        // Single-phase: slope = 64 / (2·8) = 4, legal up to radius 4.
        let spec = e.diamond_spec(2, 1);
        assert_eq!(spec.tile_t, 8);
        assert_eq!(spec.slope, 4);
        assert_eq!(spec.cross_skew, 2);
        assert_eq!(spec.width(), 64);
        // Two-phase: virtual tile height 16, slope 2.
        let spec2 = e.diamond_spec(2, 2);
        assert_eq!(spec2.tile_t, 16);
        assert_eq!(spec2.slope, 2);
    }

    #[test]
    #[should_panic(expected = "width ≥ 64")]
    fn diamond_spec_rejects_shallow_slope() {
        // radius 8 needs width ≥ 2·8·4·1 = 64, but width is 32.
        let e = Execution {
            schedule: Schedule::Diamond {
                width: 32,
                tile_t: 4,
                tile_c: 16,
                axis: DiamondAxis::X,
                block_x: 8,
                block_y: 8,
            },
            ..Execution::diamond_default()
        };
        let _ = e.diamond_spec(8, 1);
    }

    #[test]
    #[should_panic(expected = "multiple of 2·tile_t·phases")]
    fn diamond_spec_rejects_indivisible_width() {
        // 48 is not a multiple of 2·8·2 = 32.
        let e = Execution {
            schedule: Schedule::Diamond {
                width: 48,
                tile_t: 8,
                tile_c: 16,
                axis: DiamondAxis::Y,
                block_x: 8,
                block_y: 8,
            },
            ..Execution::diamond_default()
        };
        let _ = e.diamond_spec(1, 2);
    }

    #[test]
    #[should_panic(expected = "Fig. 4b")]
    fn classic_under_diamond_is_rejected() {
        let mut e = Execution::diamond_default();
        e.sparse = SparseMode::Classic;
        e.validate();
    }

    #[test]
    #[should_panic(expected = "not a diamond")]
    fn diamond_spec_conversion_checks_kind() {
        let _ = Execution::wavefront_default().diamond_spec(2, 1);
    }

    #[test]
    fn stats_throughput() {
        let s = RunStats::new(Duration::from_secs(2), 100, Shape::cube(100));
        // 100 steps × 1e6 points / 2 s = 5e7 pts/s = 0.05 GPts/s
        assert!((s.gpoints_per_s - 0.05).abs() < 1e-9);
        assert!((s.gflops(40.0) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn sequential_override() {
        let e = Execution::baseline().sequential();
        assert_eq!(e.policy, Policy::Sequential);
    }

    #[test]
    #[should_panic(expected = "not a wavefront")]
    fn spec_conversion_checks_kind() {
        let _ = Execution::baseline().wavefront_spec(1, 1);
    }
}
