//! Isotropic elastic wave propagator (paper §III-C).
//!
//! First-order velocity–stress formulation on a staggered grid (Virieux):
//!
//! ```text
//! ρ·∂v/∂t = ∇·τ
//! ∂τ/∂t   = λ·tr(∇v)·I + μ·(∇v + ∇vᵀ)
//! ```
//!
//! Nine coupled wavefields (3 particle velocities + 6 stress components) —
//! "this equation … increases the data movement drastically (one or two
//! versus nine state parameters)". Each timestep has **two phases**: the
//! velocity update reads the previous stresses, then the stress update reads
//! the *freshly computed* velocities. Under wave-front temporal blocking
//! each phase becomes its own virtual step, which shifts the wave-front
//! angle exactly as the paper's Fig. 8b prescribes for multi-grid stencils
//! with intra-timestep dependencies.
//!
//! Being first order in time, only two levels per field are kept — the paper
//! uses elastic to "demonstrate that the benefits of time-blocking … are not
//! limited to a single pattern along the time dimension".

use std::time::Instant;

use crate::config::SimConfig;
use crate::operator::{Execution, KernelPath, RunStats, Schedule, SparseMode, WaveSolver};
use crate::shared::LevelRing;
use crate::sources::{ReceiverBundle, SourceBundle};
use crate::trace::TraceBuffer;
use tempest_obs as obs;
use tempest_grid::{Array2, Array3, DampingMask, ElasticModel, Range3, Shape};
use tempest_sparse::SparsePoints;
use tempest_stencil::kernels::{staggered_diff_bwd_r, staggered_diff_fwd_r, staggered_weights};
use tempest_stencil::simd::LANE;
use tempest_stencil::Backend;
use tempest_stencil::metrics::elastic_cost;
use tempest_tiling::{diamond, spaceblock, wavefront};

/// The isotropic elastic velocity–stress propagator.
pub struct Elastic {
    cfg: SimConfig,
    vx: LevelRing,
    vy: LevelRing,
    vz: LevelRing,
    txx: LevelRing,
    tyy: LevelRing,
    tzz: LevelRing,
    txy: LevelRing,
    txz: LevelRing,
    tyz: LevelRing,
    /// `dt·λ` per point.
    lam_dt: Array3<f32>,
    /// `dt·μ` per point.
    mu_dt: Array3<f32>,
    /// `2·dt·μ` per point.
    mu2_dt: Array3<f32>,
    /// `dt/ρ` (buoyancy) per point.
    dtb: Array3<f32>,
    /// Sponge multiplier `(1 − η)` per point.
    fd: Array3<f32>,
    swx: Vec<f32>,
    swy: Vec<f32>,
    swz: Vec<f32>,
    radius: usize,
    src: SourceBundle,
    rec: Option<ReceiverBundle>,
    trace: Option<TraceBuffer>,
}

impl Elastic {
    /// Build a propagator over `model`. Sources are explosive (injected into
    /// the normal stresses); receivers record `vz`.
    pub fn new(
        model: &ElasticModel,
        cfg: SimConfig,
        sources: SparsePoints,
        receivers: Option<SparsePoints>,
    ) -> Self {
        assert_eq!(model.shape(), cfg.shape(), "model/config shape mismatch");
        let shape = cfg.shape();
        let radius = cfg.radius();
        let h = cfg.domain.spacing();
        let swx = staggered_weights(cfg.space_order, h[0]);
        let swy = staggered_weights(cfg.space_order, h[1]);
        let swz = staggered_weights(cfg.space_order, h[2]);

        let damp = DampingMask::sponge(shape, cfg.nbl, cfg.damp_coeff);
        let dt = cfg.dt;
        let n = shape.len();
        let mut lam_dt = Array3::from_shape(shape);
        let mut mu_dt = Array3::from_shape(shape);
        let mut mu2_dt = Array3::from_shape(shape);
        let mut dtb = Array3::from_shape(shape);
        let mut fd = Array3::from_shape(shape);
        for i in 0..n {
            lam_dt.as_mut_slice()[i] = dt * model.lam.as_slice()[i];
            let mu = dt * model.mu.as_slice()[i];
            mu_dt.as_mut_slice()[i] = mu;
            mu2_dt.as_mut_slice()[i] = 2.0 * mu;
            dtb.as_mut_slice()[i] = dt * model.buoyancy.as_slice()[i];
            fd.as_mut_slice()[i] = 1.0 - damp.damp.as_slice()[i];
        }

        let src = SourceBundle::with_ricker(&cfg.domain, sources, cfg.f0, cfg.dt, cfg.nt);
        let rec = receivers.map(|r| ReceiverBundle::new(&cfg.domain, r));
        let trace = rec
            .as_ref()
            .map(|r| TraceBuffer::new(cfg.nt, r.num_receivers()));
        let ring = || LevelRing::new_lane_aligned(shape, radius, 2, LANE);
        Elastic {
            vx: ring(),
            vy: ring(),
            vz: ring(),
            txx: ring(),
            tyy: ring(),
            tzz: ring(),
            txy: ring(),
            txz: ring(),
            tyz: ring(),
            cfg,
            lam_dt,
            mu_dt,
            mu2_dt,
            dtb,
            fd,
            swx,
            swy,
            swz,
            radius,
            src,
            rec,
            trace,
        }
    }

    /// The simulation configuration.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// The source bundle (inspection / exact-count oracles).
    pub fn sources(&self) -> &SourceBundle {
        &self.src
    }

    /// The receiver bundle, when receivers were attached.
    pub fn receivers(&self) -> Option<&ReceiverBundle> {
        self.rec.as_ref()
    }

    fn reset(&mut self) {
        for r in [
            &mut self.vx,
            &mut self.vy,
            &mut self.vz,
            &mut self.txx,
            &mut self.tyy,
            &mut self.tzz,
            &mut self.txy,
            &mut self.txz,
            &mut self.tyz,
        ] {
            r.clear();
        }
        if let Some(t) = self.trace.as_mut() {
            t.clear();
        }
    }

    /// Compute virtual step `vt` for `region`. Even `vt` = velocity phase of
    /// timestep `vt/2`; odd = stress phase.
    fn step_region(&self, vt: usize, region: &Range3, mode: SparseMode, kernel: KernelPath) {
        let _sp = obs::trace::span(obs::trace::SpanKind::Stencil, obs::trace::SpanArgs::step(vt));
        let t = vt >> 1;
        match (kernel.resolve(), self.radius, vt & 1) {
            (Backend::Scalar, 2, 0) => self.vel_phase::<2>(t, region, mode),
            (Backend::Scalar, 2, 1) => self.stress_phase::<2>(t, region, mode),
            (Backend::Scalar, 4, 0) => self.vel_phase::<4>(t, region, mode),
            (Backend::Scalar, 4, 1) => self.stress_phase::<4>(t, region, mode),
            (Backend::Scalar, 6, 0) => self.vel_phase::<6>(t, region, mode),
            (Backend::Scalar, 6, 1) => self.stress_phase::<6>(t, region, mode),
            (b, 2, 0) => self.vel_phase_pencil::<2>(t, region, mode, b),
            (b, 2, 1) => self.stress_phase_pencil::<2>(t, region, mode, b),
            (b, 4, 0) => self.vel_phase_pencil::<4>(t, region, mode, b),
            (b, 4, 1) => self.stress_phase_pencil::<4>(t, region, mode, b),
            (b, 6, 0) => self.vel_phase_pencil::<6>(t, region, mode, b),
            (b, 6, 1) => self.stress_phase_pencil::<6>(t, region, mode, b),
            _ => panic!(
                "elastic propagator supports space orders 4, 8, 12 (got {})",
                self.cfg.space_order
            ),
        }
    }

    /// Velocity update: `v[t+1] = (v[t] + dt/ρ · ∇·τ[t]) · (1−η)`.
    fn vel_phase<const R: usize>(&self, t: usize, region: &Range3, mode: SparseMode) {
        let sw = obs::start(obs::Phase::Stencil);
        // Each phase (velocity, stress) is its own virtual step and counts
        // one update per grid point.
        obs::add(obs::Counter::StencilUpdates, region.len() as u64);
        let mut gathers = 0u64;
        // SAFETY: schedule contract (see Acoustic::step_r); velocity levels
        // t+1 are written per disjoint region, all reads are level-t fields.
        let txx = unsafe { self.txx.level(t) };
        let tyy = unsafe { self.tyy.level(t) };
        let tzz = unsafe { self.tzz.level(t) };
        let txy = unsafe { self.txy.level(t) };
        let txz = unsafe { self.txz.level(t) };
        let tyz = unsafe { self.tyz.level(t) };
        let vx0 = unsafe { self.vx.level(t) };
        let vy0 = unsafe { self.vy.level(t) };
        let vz0 = unsafe { self.vz.level(t) };
        let (sx, sy) = (self.vx.sx(), self.vx.sy());
        let swx: [f32; R] = self.swx[..].try_into().expect("radius mismatch");
        let swy: [f32; R] = self.swy[..].try_into().expect("radius mismatch");
        let swz: [f32; R] = self.swz[..].try_into().expect("radius mismatch");
        for x in region.x0..region.x1 {
            for y in region.y0..region.y1 {
                let vxn = unsafe { self.vx.pencil_mut(t + 1, x, y) };
                let vyn = unsafe { self.vy.pencil_mut(t + 1, x, y) };
                let vzn = unsafe { self.vz.pencil_mut(t + 1, x, y) };
                let base = self.vx.idx(x, y, 0);
                let dtb = self.dtb.pencil(x, y);
                let fd = self.fd.pencil(x, y);
                for z in region.z0..region.z1 {
                    let i = base + z;
                    // vx lives at (i+½, j, k).
                    let dvx = staggered_diff_fwd_r::<R>(txx, i, sx, &swx)
                        + staggered_diff_bwd_r::<R>(txy, i, sy, &swy)
                        + staggered_diff_bwd_r::<R>(txz, i, 1, &swz);
                    vxn[z] = (vx0[i] + dtb[z] * dvx) * fd[z];
                    // vy lives at (i, j+½, k).
                    let dvy = staggered_diff_bwd_r::<R>(txy, i, sx, &swx)
                        + staggered_diff_fwd_r::<R>(tyy, i, sy, &swy)
                        + staggered_diff_bwd_r::<R>(tyz, i, 1, &swz);
                    vyn[z] = (vy0[i] + dtb[z] * dvy) * fd[z];
                    // vz lives at (i, j, k+½).
                    let dvz = staggered_diff_bwd_r::<R>(txz, i, sx, &swx)
                        + staggered_diff_bwd_r::<R>(tyz, i, sy, &swy)
                        + staggered_diff_fwd_r::<R>(tzz, i, 1, &swz);
                    vzn[z] = (vz0[i] + dtb[z] * dvz) * fd[z];
                }
                // Fused receiver gather of vz (the mirror of Listing 4).
                if mode != SparseMode::Classic {
                    if let (Some(rec), Some(trace)) = (self.rec.as_ref(), self.trace.as_ref()) {
                        let sparse_sw = obs::start(obs::Phase::Sparse);
                        for (z, id) in rec.comp.entries(x, y) {
                            if z >= region.z0 && z < region.z1 {
                                let v = vzn[z];
                                let contribs = rec.pre.contributions(id);
                                gathers += contribs.len() as u64;
                                for &(r, w) in contribs {
                                    trace.add(t, r as usize, w * v);
                                }
                            }
                        }
                        sparse_sw.stop();
                    }
                }
            }
        }
        obs::add(obs::Counter::ReceiverGathers, gathers);
        sw.stop();
    }

    /// Stress update: `τ[t+1] = (τ[t] + dt·(λ tr(ε̇) I + 2μ ε̇)) · (1−η)`,
    /// strain rates from the *fresh* `v[t+1]` (the previous virtual step).
    fn stress_phase<const R: usize>(&self, t: usize, region: &Range3, mode: SparseMode) {
        let sw = obs::start(obs::Phase::Stencil);
        obs::add(obs::Counter::StencilUpdates, region.len() as u64);
        let mut injections = 0u64;
        let vx1 = unsafe { self.vx.level(t + 1) };
        let vy1 = unsafe { self.vy.level(t + 1) };
        let vz1 = unsafe { self.vz.level(t + 1) };
        let txx0 = unsafe { self.txx.level(t) };
        let tyy0 = unsafe { self.tyy.level(t) };
        let tzz0 = unsafe { self.tzz.level(t) };
        let txy0 = unsafe { self.txy.level(t) };
        let txz0 = unsafe { self.txz.level(t) };
        let tyz0 = unsafe { self.tyz.level(t) };
        let (sx, sy) = (self.vx.sx(), self.vx.sy());
        let swx: [f32; R] = self.swx[..].try_into().expect("radius mismatch");
        let swy: [f32; R] = self.swy[..].try_into().expect("radius mismatch");
        let swz: [f32; R] = self.swz[..].try_into().expect("radius mismatch");
        for x in region.x0..region.x1 {
            for y in region.y0..region.y1 {
                let txxn = unsafe { self.txx.pencil_mut(t + 1, x, y) };
                let tyyn = unsafe { self.tyy.pencil_mut(t + 1, x, y) };
                let tzzn = unsafe { self.tzz.pencil_mut(t + 1, x, y) };
                let txyn = unsafe { self.txy.pencil_mut(t + 1, x, y) };
                let txzn = unsafe { self.txz.pencil_mut(t + 1, x, y) };
                let tyzn = unsafe { self.tyz.pencil_mut(t + 1, x, y) };
                let base = self.vx.idx(x, y, 0);
                let lam = self.lam_dt.pencil(x, y);
                let mu = self.mu_dt.pencil(x, y);
                let mu2 = self.mu2_dt.pencil(x, y);
                let fd = self.fd.pencil(x, y);
                for z in region.z0..region.z1 {
                    let i = base + z;
                    // Normal stresses live at (i, j, k).
                    let exx = staggered_diff_bwd_r::<R>(vx1, i, sx, &swx);
                    let eyy = staggered_diff_bwd_r::<R>(vy1, i, sy, &swy);
                    let ezz = staggered_diff_bwd_r::<R>(vz1, i, 1, &swz);
                    let ldiv = lam[z] * (exx + eyy + ezz);
                    txxn[z] = (txx0[i] + ldiv + mu2[z] * exx) * fd[z];
                    tyyn[z] = (tyy0[i] + ldiv + mu2[z] * eyy) * fd[z];
                    tzzn[z] = (tzz0[i] + ldiv + mu2[z] * ezz) * fd[z];
                    // Shear stresses at the edge-staggered positions.
                    let exy = staggered_diff_fwd_r::<R>(vx1, i, sy, &swy)
                        + staggered_diff_fwd_r::<R>(vy1, i, sx, &swx);
                    txyn[z] = (txy0[i] + mu[z] * exy) * fd[z];
                    let exz = staggered_diff_fwd_r::<R>(vx1, i, 1, &swz)
                        + staggered_diff_fwd_r::<R>(vz1, i, sx, &swx);
                    txzn[z] = (txz0[i] + mu[z] * exz) * fd[z];
                    let eyz = staggered_diff_fwd_r::<R>(vy1, i, 1, &swz)
                        + staggered_diff_fwd_r::<R>(vz1, i, sy, &swy);
                    tyzn[z] = (tyz0[i] + mu[z] * eyz) * fd[z];
                }
                // Fused explosive source into the normal stresses.
                match mode {
                    SparseMode::Classic => {}
                    SparseMode::Fused => {
                        let sparse_sw = obs::start(obs::Phase::Sparse);
                        let dcmp = self.src.pre.dcmp_row(t);
                        let sm = self.src.pre.sm_pencil(x, y);
                        let sid = self.src.pre.sid_pencil(x, y);
                        for z in region.z0..region.z1 {
                            if sm[z] != 0 {
                                let v = self.cfg.dt * dcmp[sid[z] as usize];
                                txxn[z] += v;
                                tyyn[z] += v;
                                tzzn[z] += v;
                                // One injection per masked point, not per
                                // stress component.
                                injections += 1;
                            }
                        }
                        sparse_sw.stop();
                    }
                    SparseMode::FusedCompressed => {
                        let sparse_sw = obs::start(obs::Phase::Sparse);
                        let dcmp = self.src.pre.dcmp_row(t);
                        for (z, id) in self.src.comp.entries(x, y) {
                            if z >= region.z0 && z < region.z1 {
                                let v = self.cfg.dt * dcmp[id];
                                txxn[z] += v;
                                tyyn[z] += v;
                                tzzn[z] += v;
                                injections += 1;
                            }
                        }
                        sparse_sw.stop();
                    }
                }
            }
        }
        obs::add(obs::Counter::SourceInjections, injections);
        sw.stop();
    }

    /// Pencil-kernel twin of [`vel_phase`](Self::vel_phase): three staggered
    /// derivative rows per velocity component, combined with the exact scalar
    /// accumulation order so the fields stay bitwise equal.
    fn vel_phase_pencil<const R: usize>(
        &self,
        t: usize,
        region: &Range3,
        mode: SparseMode,
        backend: Backend,
    ) {
        let sw = obs::start(obs::Phase::Stencil);
        obs::add(obs::Counter::StencilUpdates, region.len() as u64);
        obs::add(
            obs::Counter::PencilRows,
            ((region.x1 - region.x0) * (region.y1 - region.y0)) as u64,
        );
        let mut gathers = 0u64;
        // SAFETY: see `vel_phase` — identical schedule contract.
        let txx = unsafe { self.txx.level(t) };
        let tyy = unsafe { self.tyy.level(t) };
        let tzz = unsafe { self.tzz.level(t) };
        let txy = unsafe { self.txy.level(t) };
        let txz = unsafe { self.txz.level(t) };
        let tyz = unsafe { self.tyz.level(t) };
        let vx0 = unsafe { self.vx.level(t) };
        let vy0 = unsafe { self.vy.level(t) };
        let vz0 = unsafe { self.vz.level(t) };
        let (sx, sy) = (self.vx.sx(), self.vx.sy());
        let swx: [f32; R] = self.swx[..].try_into().expect("radius mismatch");
        let swy: [f32; R] = self.swy[..].try_into().expect("radius mismatch");
        let swz: [f32; R] = self.swz[..].try_into().expect("radius mismatch");
        let n = region.z1 - region.z0;
        let mut d = vec![0.0f32; 3 * n];
        let (da, r) = d.split_at_mut(n);
        let (db, dc) = r.split_at_mut(n);
        for x in region.x0..region.x1 {
            for y in region.y0..region.y1 {
                let vxn = unsafe { self.vx.pencil_mut(t + 1, x, y) };
                let vyn = unsafe { self.vy.pencil_mut(t + 1, x, y) };
                let vzn = unsafe { self.vz.pencil_mut(t + 1, x, y) };
                let i0 = self.vx.idx(x, y, region.z0);
                let dtb = self.dtb.pencil(x, y);
                let fd = self.fd.pencil(x, y);
                // vx lives at (i+½, j, k).
                backend.staggered_fwd_row_r::<R>(txx, i0, sx, &swx, da);
                backend.staggered_bwd_row_r::<R>(txy, i0, sy, &swy, db);
                backend.staggered_bwd_row_r::<R>(txz, i0, 1, &swz, dc);
                for j in 0..n {
                    let (z, i) = (region.z0 + j, i0 + j);
                    let dvx = da[j] + db[j] + dc[j];
                    vxn[z] = (vx0[i] + dtb[z] * dvx) * fd[z];
                }
                // vy lives at (i, j+½, k).
                backend.staggered_bwd_row_r::<R>(txy, i0, sx, &swx, da);
                backend.staggered_fwd_row_r::<R>(tyy, i0, sy, &swy, db);
                backend.staggered_bwd_row_r::<R>(tyz, i0, 1, &swz, dc);
                for j in 0..n {
                    let (z, i) = (region.z0 + j, i0 + j);
                    let dvy = da[j] + db[j] + dc[j];
                    vyn[z] = (vy0[i] + dtb[z] * dvy) * fd[z];
                }
                // vz lives at (i, j, k+½).
                backend.staggered_bwd_row_r::<R>(txz, i0, sx, &swx, da);
                backend.staggered_bwd_row_r::<R>(tyz, i0, sy, &swy, db);
                backend.staggered_fwd_row_r::<R>(tzz, i0, 1, &swz, dc);
                for j in 0..n {
                    let (z, i) = (region.z0 + j, i0 + j);
                    let dvz = da[j] + db[j] + dc[j];
                    vzn[z] = (vz0[i] + dtb[z] * dvz) * fd[z];
                }
                // Fused receiver gather of vz (the mirror of Listing 4).
                if mode != SparseMode::Classic {
                    if let (Some(rec), Some(trace)) = (self.rec.as_ref(), self.trace.as_ref()) {
                        let sparse_sw = obs::start(obs::Phase::Sparse);
                        for (z, id) in rec.comp.entries(x, y) {
                            if z >= region.z0 && z < region.z1 {
                                let v = vzn[z];
                                let contribs = rec.pre.contributions(id);
                                gathers += contribs.len() as u64;
                                for &(r, w) in contribs {
                                    trace.add(t, r as usize, w * v);
                                }
                            }
                        }
                        sparse_sw.stop();
                    }
                }
            }
        }
        obs::add(obs::Counter::ReceiverGathers, gathers);
        sw.stop();
    }

    /// Pencil-kernel twin of [`stress_phase`](Self::stress_phase).
    fn stress_phase_pencil<const R: usize>(
        &self,
        t: usize,
        region: &Range3,
        mode: SparseMode,
        backend: Backend,
    ) {
        let sw = obs::start(obs::Phase::Stencil);
        obs::add(obs::Counter::StencilUpdates, region.len() as u64);
        obs::add(
            obs::Counter::PencilRows,
            ((region.x1 - region.x0) * (region.y1 - region.y0)) as u64,
        );
        let mut injections = 0u64;
        let vx1 = unsafe { self.vx.level(t + 1) };
        let vy1 = unsafe { self.vy.level(t + 1) };
        let vz1 = unsafe { self.vz.level(t + 1) };
        let txx0 = unsafe { self.txx.level(t) };
        let tyy0 = unsafe { self.tyy.level(t) };
        let tzz0 = unsafe { self.tzz.level(t) };
        let txy0 = unsafe { self.txy.level(t) };
        let txz0 = unsafe { self.txz.level(t) };
        let tyz0 = unsafe { self.tyz.level(t) };
        let (sx, sy) = (self.vx.sx(), self.vx.sy());
        let swx: [f32; R] = self.swx[..].try_into().expect("radius mismatch");
        let swy: [f32; R] = self.swy[..].try_into().expect("radius mismatch");
        let swz: [f32; R] = self.swz[..].try_into().expect("radius mismatch");
        let n = region.z1 - region.z0;
        let mut d = vec![0.0f32; 3 * n];
        let (da, r) = d.split_at_mut(n);
        let (db, dc) = r.split_at_mut(n);
        for x in region.x0..region.x1 {
            for y in region.y0..region.y1 {
                let txxn = unsafe { self.txx.pencil_mut(t + 1, x, y) };
                let tyyn = unsafe { self.tyy.pencil_mut(t + 1, x, y) };
                let tzzn = unsafe { self.tzz.pencil_mut(t + 1, x, y) };
                let txyn = unsafe { self.txy.pencil_mut(t + 1, x, y) };
                let txzn = unsafe { self.txz.pencil_mut(t + 1, x, y) };
                let tyzn = unsafe { self.tyz.pencil_mut(t + 1, x, y) };
                let i0 = self.vx.idx(x, y, region.z0);
                let lam = self.lam_dt.pencil(x, y);
                let mu = self.mu_dt.pencil(x, y);
                let mu2 = self.mu2_dt.pencil(x, y);
                let fd = self.fd.pencil(x, y);
                // Normal stresses live at (i, j, k).
                backend.staggered_bwd_row_r::<R>(vx1, i0, sx, &swx, da);
                backend.staggered_bwd_row_r::<R>(vy1, i0, sy, &swy, db);
                backend.staggered_bwd_row_r::<R>(vz1, i0, 1, &swz, dc);
                for j in 0..n {
                    let (z, i) = (region.z0 + j, i0 + j);
                    let (exx, eyy, ezz) = (da[j], db[j], dc[j]);
                    let ldiv = lam[z] * (exx + eyy + ezz);
                    txxn[z] = (txx0[i] + ldiv + mu2[z] * exx) * fd[z];
                    tyyn[z] = (tyy0[i] + ldiv + mu2[z] * eyy) * fd[z];
                    tzzn[z] = (tzz0[i] + ldiv + mu2[z] * ezz) * fd[z];
                }
                // Shear stresses at the edge-staggered positions.
                backend.staggered_fwd_row_r::<R>(vx1, i0, sy, &swy, da);
                backend.staggered_fwd_row_r::<R>(vy1, i0, sx, &swx, db);
                for j in 0..n {
                    let (z, i) = (region.z0 + j, i0 + j);
                    txyn[z] = (txy0[i] + mu[z] * (da[j] + db[j])) * fd[z];
                }
                backend.staggered_fwd_row_r::<R>(vx1, i0, 1, &swz, da);
                backend.staggered_fwd_row_r::<R>(vz1, i0, sx, &swx, db);
                for j in 0..n {
                    let (z, i) = (region.z0 + j, i0 + j);
                    txzn[z] = (txz0[i] + mu[z] * (da[j] + db[j])) * fd[z];
                }
                backend.staggered_fwd_row_r::<R>(vy1, i0, 1, &swz, da);
                backend.staggered_fwd_row_r::<R>(vz1, i0, sy, &swy, db);
                for j in 0..n {
                    let (z, i) = (region.z0 + j, i0 + j);
                    tyzn[z] = (tyz0[i] + mu[z] * (da[j] + db[j])) * fd[z];
                }
                // Fused explosive source into the normal stresses.
                match mode {
                    SparseMode::Classic => {}
                    SparseMode::Fused => {
                        let sparse_sw = obs::start(obs::Phase::Sparse);
                        let dcmp = self.src.pre.dcmp_row(t);
                        let sm = self.src.pre.sm_pencil(x, y);
                        let sid = self.src.pre.sid_pencil(x, y);
                        for z in region.z0..region.z1 {
                            if sm[z] != 0 {
                                let v = self.cfg.dt * dcmp[sid[z] as usize];
                                txxn[z] += v;
                                tyyn[z] += v;
                                tzzn[z] += v;
                                injections += 1;
                            }
                        }
                        sparse_sw.stop();
                    }
                    SparseMode::FusedCompressed => {
                        let sparse_sw = obs::start(obs::Phase::Sparse);
                        let dcmp = self.src.pre.dcmp_row(t);
                        for (z, id) in self.src.comp.entries(x, y) {
                            if z >= region.z0 && z < region.z1 {
                                let v = self.cfg.dt * dcmp[id];
                                txxn[z] += v;
                                tyyn[z] += v;
                                tzzn[z] += v;
                                injections += 1;
                            }
                        }
                        sparse_sw.stop();
                    }
                }
            }
        }
        obs::add(obs::Counter::SourceInjections, injections);
        sw.stop();
    }

    /// Classic per-timestep sparse operators (space-blocked baseline only).
    fn classic_after_step(&self, t: usize) {
        let sw = obs::start(obs::Phase::Sparse);
        let _sp = obs::trace::span(obs::trace::SpanKind::Sparse, obs::trace::SpanArgs::step(t));
        let mut injections = 0u64;
        let mut gathers = 0u64;
        for (st, &a) in self.src.stencils.iter().zip(self.src.amps_at(t)) {
            for (c, w) in st.nonzero() {
                let v = self.cfg.dt * (w * a);
                // SAFETY: single-threaded between sweeps.
                unsafe {
                    self.txx.pencil_mut(t + 1, c[0], c[1])[c[2]] += v;
                    self.tyy.pencil_mut(t + 1, c[0], c[1])[c[2]] += v;
                    self.tzz.pencil_mut(t + 1, c[0], c[1])[c[2]] += v;
                }
                injections += 1;
            }
        }
        if let (Some(rec), Some(trace)) = (self.rec.as_ref(), self.trace.as_ref()) {
            let vz = unsafe { self.vz.level(t + 1) };
            for (r, st) in rec.stencils.iter().enumerate() {
                let mut acc = 0.0f32;
                for (c, w) in st.nonzero() {
                    acc += w * vz[self.vz.idx(c[0], c[1], c[2])];
                    gathers += 1;
                }
                trace.add(t, r, acc);
            }
        }
        obs::add(obs::Counter::SourceInjections, injections);
        obs::add(obs::Counter::ReceiverGathers, gathers);
        sw.stop();
    }
}

impl WaveSolver for Elastic {
    fn name(&self) -> &'static str {
        "elastic"
    }

    fn shape(&self) -> Shape {
        self.cfg.shape()
    }

    fn num_timesteps(&self) -> usize {
        self.cfg.nt
    }

    fn space_order(&self) -> usize {
        self.cfg.space_order
    }

    fn run(&mut self, exec: &Execution) -> RunStats {
        exec.validate();
        crate::operator::record_backend_run(exec.kernel.resolve());
        self.reset();
        let shape = self.shape();
        let nt = self.cfg.nt;
        let nvt = 2 * nt;
        let started = Instant::now();
        let this: &Elastic = self;
        match exec.schedule {
            Schedule::SpaceBlocked { .. } => {
                let spec = exec.spaceblock_spec();
                let classic = exec.sparse == SparseMode::Classic;
                spaceblock::execute(
                    shape,
                    nvt,
                    spec,
                    exec.policy,
                    |vt, region| this.step_region(vt, region, exec.sparse, exec.kernel),
                    |vt| {
                        // The classic sparse ops run once per *timestep*,
                        // after its stress phase.
                        if classic && vt & 1 == 1 {
                            this.classic_after_step(vt >> 1);
                        }
                    },
                );
            }
            Schedule::Wavefront { .. } => {
                // Two virtual steps per timestep: the spec conversion
                // doubles the temporal tile height (Fig. 8b).
                let spec = exec.wavefront_spec(self.radius, 2);
                wavefront::execute(shape, nvt, &spec, exec.policy, |vt, region| {
                    this.step_region(vt, region, exec.sparse, exec.kernel)
                });
            }
            Schedule::WavefrontDiagonal { .. } => {
                let spec = exec.wavefront_spec(self.radius, 2);
                wavefront::execute_diagonal(shape, nvt, &spec, exec.policy, |vt, region| {
                    this.step_region(vt, region, exec.sparse, exec.kernel)
                });
            }
            Schedule::WavefrontDataflow { .. } => {
                let spec = exec.wavefront_spec(self.radius, 2);
                wavefront::execute_dataflow(shape, nvt, &spec, self.radius, exec.policy, |vt, region| {
                    this.step_region(vt, region, exec.sparse, exec.kernel)
                });
            }
            Schedule::Diamond { .. } => {
                let spec = exec.diamond_spec(self.radius, 2);
                diamond::execute_diamond(shape, nvt, &spec, self.radius, exec.policy, |vt, region| {
                    this.step_region(vt, region, exec.sparse, exec.kernel)
                });
            }
        }
        RunStats::new(started.elapsed(), nt, shape)
    }

    fn final_field(&mut self) -> Array3<f32> {
        let t = self.cfg.nt;
        self.vz.interior_copy(t)
    }

    fn trace(&self) -> Option<Array2<f32>> {
        self.trace.as_ref().map(|t| t.to_array())
    }

    fn flops_per_point(&self) -> f64 {
        elastic_cost(self.cfg.space_order).flops
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EquationKind;
    use tempest_grid::Domain;

    fn setup(so: usize, nt: usize) -> Elastic {
        let domain = Domain::uniform(Shape::cube(20), 10.0);
        let model = ElasticModel::homogeneous(domain, 3000.0, 1400.0, 2200.0);
        let cfg = SimConfig::new(domain, so, EquationKind::Elastic, 3000.0, 40.0)
            .with_nt(nt)
            .with_f0(25.0)
            .with_boundary(4, 0.3);
        let src = SparsePoints::single_center(&domain, 0.4);
        let rec = SparsePoints::receiver_line(&domain, 4, 0.25);
        Elastic::new(&model, cfg, src, Some(rec))
    }

    #[test]
    fn propagates_and_stable() {
        let mut e = setup(4, 30);
        e.run(&Execution::baseline());
        let f = e.final_field();
        assert!(f.max_abs() > 0.0, "vz must be excited");
        assert!(f.max_abs().is_finite() && f.max_abs() < 1e6);
        let tr = e.trace().unwrap();
        assert!(tr.as_slice().iter().any(|&v| v != 0.0));
    }

    #[test]
    fn wavefront_matches_baseline_bitwise() {
        for so in [4usize, 8] {
            let mut e = setup(so, 12);
            e.run(&Execution::baseline().sequential());
            let base = e.final_field();
            let mut exec = Execution::wavefront_default().sequential();
            exec.schedule = Schedule::Wavefront {
                tile_x: 8,
                tile_y: 8,
                tile_t: 3,
                block_x: 4,
                block_y: 4,
            };
            e.run(&exec);
            let wf = e.final_field();
            assert!(
                base.bit_equal(&wf),
                "so={so}: elastic WTB must be bitwise identical, max diff {}",
                base.max_abs_diff(&wf)
            );
        }
    }

    #[test]
    fn diagonal_matches_baseline_bitwise() {
        // The staggered scheme runs two virtual steps per timestep; the
        // diagonal executor must keep the velocity/stress interleaving (and
        // the fused source work on odd vt) intact in every tile.
        for so in [4usize, 8] {
            let mut e = setup(so, 12);
            e.run(&Execution::baseline().sequential());
            let base = e.final_field();
            let mut exec = Execution::wavefront_diagonal_default().sequential();
            exec.schedule = Schedule::WavefrontDiagonal {
                tile_x: 8,
                tile_y: 8,
                tile_t: 3,
                block_x: 4,
                block_y: 4,
            };
            e.run(&exec);
            let dg = e.final_field();
            assert!(
                base.bit_equal(&dg),
                "so={so}: elastic diagonal WTB must be bitwise identical, max diff {}",
                base.max_abs_diff(&dg)
            );
            exec.policy = tempest_par::Policy::Parallel;
            e.run(&exec);
            let par = e.final_field();
            assert!(base.bit_equal(&par), "so={so}: parallel diagonal differs");
        }
    }

    #[test]
    fn dataflow_matches_diagonal_bitwise_across_policies() {
        // Two virtual steps per timestep (velocity then stress): the tile
        // dependency graph must keep the phase interleaving intact even
        // though the stress phase reads same-timestep velocities.
        use tempest_par::Policy;
        for so in [4usize, 8] {
            let mut e = setup(so, 12);
            let mut dg = Execution::wavefront_diagonal_default().sequential();
            dg.schedule = Schedule::WavefrontDiagonal {
                tile_x: 8,
                tile_y: 8,
                tile_t: 3,
                block_x: 4,
                block_y: 4,
            };
            e.run(&dg);
            let want = e.final_field();
            for pol in [
                Policy::Sequential,
                Policy::Parallel,
                Policy::Capped { threads: 1 },
                Policy::Capped { threads: 2 },
                Policy::Capped { threads: 4 },
            ] {
                let mut df = dg;
                df.schedule = Schedule::WavefrontDataflow {
                    tile_x: 8,
                    tile_y: 8,
                    tile_t: 3,
                    block_x: 4,
                    block_y: 4,
                };
                df.policy = pol;
                e.run(&df);
                let got = e.final_field();
                assert!(
                    want.bit_equal(&got),
                    "so={so} policy={pol:?}: elastic dataflow must match diagonal, max diff {}",
                    want.max_abs_diff(&got)
                );
            }
        }
    }

    #[test]
    fn diamond_matches_dataflow_bitwise_across_policies() {
        // Two virtual steps per timestep: the diamond spec conversion
        // doubles the virtual tile height, so the slope bound is against
        // 2·radius·tile_t·phases. Width 12·radius gives slope = radius.
        use crate::operator::DiamondAxis;
        use tempest_par::Policy;
        for so in [4usize, 8] {
            let radius = so / 2;
            let mut e = setup(so, 12);
            let mut df = Execution::wavefront_dataflow_default().sequential();
            df.schedule = Schedule::WavefrontDataflow {
                tile_x: 8,
                tile_y: 8,
                tile_t: 3,
                block_x: 4,
                block_y: 4,
            };
            e.run(&df);
            let want = e.final_field();
            for pol in [
                Policy::Sequential,
                Policy::Parallel,
                Policy::Capped { threads: 1 },
                Policy::Capped { threads: 2 },
                Policy::Capped { threads: 4 },
            ] {
                let mut dm = df;
                dm.schedule = Schedule::Diamond {
                    width: 12 * radius,
                    tile_t: 3,
                    tile_c: 8,
                    axis: DiamondAxis::X,
                    block_x: 4,
                    block_y: 4,
                };
                dm.policy = pol;
                e.run(&dm);
                let got = e.final_field();
                assert!(
                    want.bit_equal(&got),
                    "so={so} policy={pol:?}: elastic diamond must match dataflow, max diff {}",
                    want.max_abs_diff(&got)
                );
            }
        }
    }

    #[test]
    fn diamond_fused_sparse_modes_agree_bitwise() {
        use crate::operator::DiamondAxis;
        let mut e = setup(4, 10);
        let mut e1 = Execution::diamond_default();
        e1.schedule = Schedule::Diamond {
            width: 24,
            tile_t: 3,
            tile_c: 8,
            axis: DiamondAxis::Y,
            block_x: 8,
            block_y: 8,
        };
        e1.policy = tempest_par::Policy::Parallel;
        let mut e2 = e1;
        e1.sparse = SparseMode::Fused;
        e2.sparse = SparseMode::FusedCompressed;
        e.run(&e1);
        let f1 = e.final_field();
        e.run(&e2);
        let f2 = e.final_field();
        assert!(f1.bit_equal(&f2), "Listing 4 vs 5 under elastic diamond");
    }

    #[test]
    fn dataflow_fused_sparse_modes_agree_bitwise() {
        let mut e = setup(4, 10);
        let mut e1 = Execution::wavefront_dataflow_default();
        e1.schedule = Schedule::WavefrontDataflow {
            tile_x: 8,
            tile_y: 8,
            tile_t: 3,
            block_x: 8,
            block_y: 8,
        };
        e1.policy = tempest_par::Policy::Parallel;
        let mut e2 = e1;
        e1.sparse = SparseMode::Fused;
        e2.sparse = SparseMode::FusedCompressed;
        e.run(&e1);
        let f1 = e.final_field();
        e.run(&e2);
        let f2 = e.final_field();
        assert!(f1.bit_equal(&f2), "Listing 4 vs 5 under elastic dataflow");
    }

    #[test]
    fn all_stress_components_respond() {
        let mut e = setup(4, 16);
        e.run(&Execution::baseline().sequential());
        let t = e.cfg.nt;
        for (name, ring) in [
            ("txx", &mut e.txx),
            ("tyy", &mut e.tyy),
            ("tzz", &mut e.tzz),
            ("txy", &mut e.txy),
            ("txz", &mut e.txz),
            ("tyz", &mut e.tyz),
        ] {
            assert!(
                ring.interior_max_abs(t) > 0.0,
                "{name} must carry energy after an explosive source"
            );
        }
    }

    #[test]
    fn traces_agree_between_schedules() {
        let mut e = setup(4, 14);
        e.run(&Execution::baseline().sequential());
        let tb = e.trace().unwrap();
        let mut exec = Execution::wavefront_default().sequential();
        exec.schedule = Schedule::Wavefront {
            tile_x: 10,
            tile_y: 10,
            tile_t: 4,
            block_x: 5,
            block_y: 5,
        };
        e.run(&exec);
        let tw = e.trace().unwrap();
        let scale = tb
            .as_slice()
            .iter()
            .fold(0.0f32, |s, &v| s.max(v.abs()))
            .max(1e-20);
        for i in 0..tb.len() {
            let d = (tb.as_slice()[i] - tw.as_slice()[i]).abs();
            assert!(d <= 1e-4 * scale, "idx {i}");
        }
    }

    #[test]
    fn shear_free_fluid_keeps_shear_stresses_small() {
        // With μ = 0 (vs = 0) the medium is a fluid: no shear stresses
        // develop from a pressure source.
        let domain = Domain::uniform(Shape::cube(16), 10.0);
        let model = ElasticModel::homogeneous(domain, 1500.0, 0.0, 1000.0);
        let cfg = SimConfig::new(domain, 4, EquationKind::Elastic, 1500.0, 40.0)
            .with_nt(12)
            .with_boundary(0, 0.0);
        let src = SparsePoints::single_center(&domain, 0.4);
        let mut e = Elastic::new(&model, cfg, src, None);
        e.run(&Execution::baseline().sequential());
        let t = e.cfg.nt;
        assert_eq!(e.txy.interior_max_abs(t), 0.0);
        assert_eq!(e.txz.interior_max_abs(t), 0.0);
        assert_eq!(e.tyz.interior_max_abs(t), 0.0);
        assert!(e.tzz.interior_max_abs(t) > 0.0);
    }

    #[test]
    fn fused_compressed_matches_fused() {
        let mut e = setup(4, 10);
        let mut e1 = Execution::wavefront_default().sequential();
        e1.schedule = Schedule::Wavefront {
            tile_x: 8,
            tile_y: 8,
            tile_t: 3,
            block_x: 8,
            block_y: 8,
        };
        let mut e2 = e1;
        e1.sparse = SparseMode::Fused;
        e2.sparse = SparseMode::FusedCompressed;
        e.run(&e1);
        let f1 = e.final_field();
        e.run(&e2);
        let f2 = e.final_field();
        assert!(f1.bit_equal(&f2));
    }
}
