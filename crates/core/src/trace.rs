//! Receiver trace storage with lock-free accumulation.
//!
//! The fused receiver gather (mirror of Listing 4) accumulates
//! `rec[t][r] += w · u[t][p]` from inside block updates; blocks of one slab
//! run in parallel and a receiver's 8-point footprint can straddle a block
//! boundary, so accumulation uses an atomic CAS add. Contention is
//! negligible — footprints are 8 points per receiver per timestep.

use std::sync::atomic::{AtomicU32, Ordering};
use tempest_grid::Array2;

/// A `(nt × num_receivers)` matrix of measured data with atomic accumulate.
pub struct TraceBuffer {
    data: Vec<AtomicU32>,
    nt: usize,
    nrec: usize,
}

impl TraceBuffer {
    /// Allocate a zeroed trace.
    pub fn new(nt: usize, nrec: usize) -> Self {
        assert!(nt > 0 && nrec > 0, "trace extents must be non-zero");
        TraceBuffer {
            data: (0..nt * nrec).map(|_| AtomicU32::new(0f32.to_bits())).collect(),
            nt,
            nrec,
        }
    }

    /// Number of timesteps.
    pub fn nt(&self) -> usize {
        self.nt
    }

    /// Number of receivers.
    pub fn num_receivers(&self) -> usize {
        self.nrec
    }

    /// Atomically add `v` to `rec[t][r]`.
    #[inline]
    pub fn add(&self, t: usize, r: usize, v: f32) {
        debug_assert!(t < self.nt && r < self.nrec);
        let cell = &self.data[t * self.nrec + r];
        let mut cur = cell.load(Ordering::Relaxed);
        loop {
            let new = (f32::from_bits(cur) + v).to_bits();
            match cell.compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Read `rec[t][r]`.
    #[inline]
    pub fn get(&self, t: usize, r: usize) -> f32 {
        f32::from_bits(self.data[t * self.nrec + r].load(Ordering::Relaxed))
    }

    /// Zero the whole trace.
    pub fn clear(&mut self) {
        for c in &mut self.data {
            *c.get_mut() = 0f32.to_bits();
        }
    }

    /// Snapshot into a plain array.
    pub fn to_array(&self) -> Array2<f32> {
        let mut out = Array2::zeros(self.nt, self.nrec);
        for t in 0..self.nt {
            for r in 0..self.nrec {
                out.set(t, r, self.get(t, r));
            }
        }
        out
    }

    /// Maximum |value| over the whole trace.
    pub fn max_abs(&self) -> f32 {
        let mut m = 0.0f32;
        for t in 0..self.nt {
            for r in 0..self.nrec {
                m = m.max(self.get(t, r).abs());
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn add_and_get() {
        let tb = TraceBuffer::new(4, 3);
        tb.add(1, 2, 0.5);
        tb.add(1, 2, 0.25);
        assert_eq!(tb.get(1, 2), 0.75);
        assert_eq!(tb.get(0, 0), 0.0);
    }

    #[test]
    fn concurrent_accumulation_is_exact_for_representable_values() {
        let tb = Arc::new(TraceBuffer::new(1, 1));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let tb = Arc::clone(&tb);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        tb.add(0, 0, 1.0);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(tb.get(0, 0), 4000.0);
    }

    #[test]
    fn clear_and_snapshot() {
        let mut tb = TraceBuffer::new(2, 2);
        tb.add(0, 0, 1.0);
        tb.add(1, 1, -2.0);
        assert_eq!(tb.max_abs(), 2.0);
        let a = tb.to_array();
        assert_eq!(a.get(0, 0), 1.0);
        assert_eq!(a.get(1, 1), -2.0);
        tb.clear();
        assert_eq!(tb.max_abs(), 0.0);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn rejects_empty() {
        let _ = TraceBuffer::new(0, 1);
    }
}
