//! Source / receiver bundles: everything a propagator needs for both the
//! classic (Listing 1) and the precomputed-fused (Listings 4–5) sparse-
//! operator paths, built once per simulation.

use tempest_grid::{Array2, Domain};
use tempest_sparse::interp::trilinear_all;
use tempest_sparse::wavelet::wavelet_matrix;
use tempest_sparse::{
    ricker, CompressedMask, InterpStencil, ReceiverPrecompute, SourcePrecompute, SparsePoints,
};

/// A set of sources with their wavelets, in both representations.
#[derive(Clone)]
pub struct SourceBundle {
    /// Off-grid source positions.
    pub points: SparsePoints,
    /// Wavelet matrix `src[t][s]`.
    pub wavelets: Array2<f32>,
    /// Trilinear footprints (classic injection path).
    pub stencils: Vec<InterpStencil>,
    /// The paper's precomputed grid-aligned structures (`SM`, `SID`,
    /// `src_dcmp`).
    pub pre: SourcePrecompute,
    /// Compressed per-pencil index (`nnz_mask` / `Sp_SID`).
    pub comp: CompressedMask,
}

impl SourceBundle {
    /// Build from explicit wavelets.
    pub fn new(domain: &Domain, points: SparsePoints, wavelets: Array2<f32>) -> Self {
        assert_eq!(wavelets.dims()[1], points.len());
        let stencils = trilinear_all(domain, &points);
        let pre = SourcePrecompute::build(domain, &points, &wavelets);
        let comp = CompressedMask::build(&pre.sid);
        SourceBundle {
            points,
            wavelets,
            stencils,
            pre,
            comp,
        }
    }

    /// Build with every source firing the same Ricker wavelet (the paper's
    /// configuration).
    pub fn with_ricker(domain: &Domain, points: SparsePoints, f0: f32, dt: f32, nt: usize) -> Self {
        let w = ricker(f0, dt, nt);
        let m = wavelet_matrix(&w, points.len());
        Self::new(domain, points, m)
    }

    /// Amplitudes of all sources at timestep `t` (classic path).
    #[inline]
    pub fn amps_at(&self, t: usize) -> &[f32] {
        self.wavelets.row(t)
    }

    /// Number of sources.
    pub fn num_sources(&self) -> usize {
        self.points.len()
    }
}

/// A set of receivers in both representations.
#[derive(Clone)]
pub struct ReceiverBundle {
    /// Off-grid receiver positions.
    pub points: SparsePoints,
    /// Trilinear footprints (classic interpolation path).
    pub stencils: Vec<InterpStencil>,
    /// Grid-aligned gather structures (`RM`, `RID`, CSR contributions).
    pub pre: ReceiverPrecompute,
    /// Compressed per-pencil index.
    pub comp: CompressedMask,
}

impl ReceiverBundle {
    /// Build the gather structures for a receiver set.
    pub fn new(domain: &Domain, points: SparsePoints) -> Self {
        let stencils = trilinear_all(domain, &points);
        let pre = ReceiverPrecompute::build(domain, &points);
        let comp = pre.compressed();
        ReceiverBundle {
            points,
            stencils,
            pre,
            comp,
        }
    }

    /// Number of receivers.
    pub fn num_receivers(&self) -> usize {
        self.points.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempest_grid::Shape;

    fn dom() -> Domain {
        Domain::uniform(Shape::cube(17), 10.0)
    }

    #[test]
    fn source_bundle_consistent() {
        let d = dom();
        let pts = SparsePoints::plane_layout(&d, 4, 0.3, 0.4);
        let b = SourceBundle::with_ricker(&d, pts, 12.0, 0.001, 32);
        assert_eq!(b.num_sources(), 4);
        assert_eq!(b.wavelets.dims(), [32, 4]);
        assert_eq!(b.stencils.len(), 4);
        assert_eq!(b.comp.total(), b.pre.npts());
        assert_eq!(b.amps_at(0).len(), 4);
    }

    #[test]
    fn receiver_bundle_consistent() {
        let d = dom();
        let pts = SparsePoints::receiver_line(&d, 7, 0.1);
        let b = ReceiverBundle::new(&d, pts);
        assert_eq!(b.num_receivers(), 7);
        assert_eq!(b.comp.total(), b.pre.npts());
    }

    #[test]
    #[should_panic]
    fn source_bundle_checks_wavelet_shape() {
        let d = dom();
        let pts = SparsePoints::single_center(&d, 0.5);
        let w = Array2::<f32>::zeros(8, 3); // 3 columns but 1 source
        let _ = SourceBundle::new(&d, pts, w);
    }
}
