//! Shared wavefield storage for parallel block updates.
//!
//! A stencil sweep updates disjoint `(x, y)` blocks of one time level in
//! parallel while *reading* other time levels. Rust's `&mut` aliasing rules
//! cannot express "disjoint interior writes plus shared reads of different
//! ring slots" through safe references, so [`LevelRing`] owns the raw
//! volumes and hands out raw-slice views under a documented safety
//! contract. The schedule engine (`tempest-tiling`) guarantees the contract:
//! its legality is machine-checked (`tempest_tiling::legality`) and the
//! propagators are additionally validated bit-for-bit against purely
//! sequential references.

use std::cell::UnsafeCell;
use tempest_grid::{Array3, Shape};

/// A circular ring of padded f32 volumes over the time dimension, with
/// unchecked shared mutation.
///
/// # Safety contract
///
/// For any two concurrently executing region updates at the same virtual
/// step, callers must guarantee:
/// * writes go only to the level slot of the step being computed, and only
///   to the caller's own disjoint `(x, y)` region;
/// * reads target *other* ring slots (older time levels), or the writer's
///   own region.
///
/// These are exactly the guarantees a legal schedule provides.
pub struct LevelRing {
    levels: Vec<UnsafeCell<Box<[f32]>>>,
    shape: Shape,
    halo: usize,
    pdims: [usize; 3],
    /// Left padding of the `z` axis: `halo` for plain rings, rounded up to a
    /// lane multiple for lane-aligned rings (see [`new_lane_aligned`](Self::new_lane_aligned)).
    z0: usize,
}

// SAFETY: all mutation goes through raw pointers under the documented
// disjointness contract; the container itself is freely shareable.
unsafe impl Sync for LevelRing {}
unsafe impl Send for LevelRing {}

impl LevelRing {
    /// Allocate `num_levels` zeroed volumes of `shape` interior plus a halo
    /// of `halo` points on every side.
    pub fn new(shape: Shape, halo: usize, num_levels: usize) -> Self {
        let pnz = shape.nz + 2 * halo;
        Self::alloc(shape, halo, num_levels, halo, pnz)
    }

    /// Like [`new`](Self::new), but with the `z` axis padded so every
    /// interior pencil base (`idx(x, y, 0)`) is a multiple of `lane`:
    /// the left `z` padding is `halo` rounded up to a lane multiple, and the
    /// physical row length is itself a lane multiple. Strides change, values
    /// and visible layout semantics do not — the interior and halo reads of
    /// every stencil stay in bounds exactly as for a plain ring.
    pub fn new_lane_aligned(shape: Shape, halo: usize, num_levels: usize, lane: usize) -> Self {
        assert!(lane > 0, "lane width must be non-zero");
        let z0 = halo.next_multiple_of(lane);
        let pnz = (z0 + shape.nz + halo).next_multiple_of(lane);
        Self::alloc(shape, halo, num_levels, z0, pnz)
    }

    fn alloc(shape: Shape, halo: usize, num_levels: usize, z0: usize, pnz: usize) -> Self {
        assert!(num_levels >= 2, "a time ring needs at least two levels");
        debug_assert!(z0 >= halo && pnz >= z0 + shape.nz + halo);
        let p = shape.padded(halo);
        let pdims = [p.nx, p.ny, pnz];
        let n = pdims[0] * pdims[1] * pdims[2];
        LevelRing {
            levels: (0..num_levels)
                .map(|_| UnsafeCell::new(vec![0.0f32; n].into_boxed_slice()))
                .collect(),
            shape,
            halo,
            pdims,
            z0,
        }
    }

    /// Interior shape.
    #[inline]
    pub fn shape(&self) -> Shape {
        self.shape
    }

    /// Halo width.
    #[inline]
    pub fn halo(&self) -> usize {
        self.halo
    }

    /// Number of ring slots.
    #[inline]
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// Ring slot of logical step `t`.
    #[inline]
    pub fn slot(&self, t: usize) -> usize {
        t % self.levels.len()
    }

    /// Raw stride of the padded x axis.
    #[inline]
    pub fn sx(&self) -> usize {
        self.pdims[1] * self.pdims[2]
    }

    /// Raw stride of the padded y axis.
    #[inline]
    pub fn sy(&self) -> usize {
        self.pdims[2]
    }

    /// Raw linear index of interior point `(x, y, z)`.
    #[inline]
    pub fn idx(&self, x: usize, y: usize, z: usize) -> usize {
        ((x + self.halo) * self.pdims[1] + (y + self.halo)) * self.pdims[2] + (z + self.z0)
    }

    /// Shared view of the level holding step `t`.
    ///
    /// # Safety
    /// No concurrent write to this slot may overlap the read (see the type-
    /// level contract).
    #[inline]
    pub unsafe fn level(&self, t: usize) -> &[f32] {
        &*self.levels[self.slot(t)].get()
    }

    /// Mutable view of the interior z pencil `(x, y, 0..nz)` of step `t`.
    ///
    /// # Safety
    /// The caller must hold exclusive logical ownership of this `(x, y)`
    /// pencil at this step (disjoint-region contract).
    #[inline]
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn pencil_mut(&self, t: usize, x: usize, y: usize) -> &mut [f32] {
        let base = self.idx(x, y, 0);
        let ptr = (*self.levels[self.slot(t)].get()).as_mut_ptr();
        std::slice::from_raw_parts_mut(ptr.add(base), self.shape.nz)
    }

    /// Copy the interior of step `t` into an unpadded array (tests,
    /// snapshots). Takes `&mut self`: requires quiescence.
    pub fn interior_copy(&mut self, t: usize) -> Array3<f32> {
        let mut out = Array3::from_shape(self.shape);
        // SAFETY: &mut self means no concurrent access.
        let lvl = unsafe { self.level(t) };
        for x in 0..self.shape.nx {
            for y in 0..self.shape.ny {
                let base = self.idx(x, y, 0);
                out.pencil_mut(x, y)
                    .copy_from_slice(&lvl[base..base + self.shape.nz]);
            }
        }
        out
    }

    /// Zero every level (run-to-run reset).
    pub fn clear(&mut self) {
        for l in &mut self.levels {
            l.get_mut().fill(0.0);
        }
    }

    /// Interior max |value| of step `t` (requires quiescence).
    pub fn interior_max_abs(&mut self, t: usize) -> f32 {
        self.interior_copy(t).max_abs()
    }

    /// Snapshot every ring level (padded, bitwise) while quiescent.
    ///
    /// Together with the logical step at which it was taken, the checkpoint
    /// is everything the leap-frog recursion needs: [`restore`](Self::restore)
    /// followed by re-running the remaining steps reproduces an uninterrupted
    /// run bit-for-bit (the restart path of checkpointed RTM, where forward
    /// state is re-materialised instead of stored per step).
    pub fn checkpoint(&mut self) -> RingCheckpoint {
        RingCheckpoint {
            levels: self.levels.iter_mut().map(|l| l.get_mut().clone()).collect(),
        }
    }

    /// Restore a [`checkpoint`](Self::checkpoint) taken on a ring of the
    /// same geometry. Panics on level-count or volume-size mismatch.
    pub fn restore(&mut self, cp: &RingCheckpoint) {
        assert_eq!(
            cp.levels.len(),
            self.levels.len(),
            "checkpoint level count mismatch"
        );
        for (dst, src) in self.levels.iter_mut().zip(&cp.levels) {
            let dst = dst.get_mut();
            assert_eq!(dst.len(), src.len(), "checkpoint volume size mismatch");
            dst.copy_from_slice(src);
        }
    }
}

/// A bitwise snapshot of every level of a [`LevelRing`], taken between
/// sweeps. Opaque: only meaningful to [`LevelRing::restore`] on a ring of
/// identical geometry.
#[derive(Clone)]
pub struct RingCheckpoint {
    levels: Vec<Box<[f32]>>,
}

impl RingCheckpoint {
    /// Total f32 payload (all levels), for storage accounting.
    pub fn num_values(&self) -> usize {
        self.levels.iter().map(|l| l.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexing_matches_padded_layout() {
        let r = LevelRing::new(Shape::new(4, 5, 6), 2, 3);
        // padded dims 8x9x10
        assert_eq!(r.sx(), 9 * 10);
        assert_eq!(r.sy(), 10);
        assert_eq!(r.idx(0, 0, 0), (2 * 9 + 2) * 10 + 2);
        assert_eq!(r.slot(5), 2);
    }

    #[test]
    fn lane_aligned_ring_has_aligned_pencil_bases() {
        for (shape, halo, lane) in [
            (Shape::new(4, 5, 6), 2, 8),
            (Shape::new(7, 3, 13), 4, 8),
            (Shape::cube(8), 6, 8),
            (Shape::cube(5), 3, 4),
        ] {
            let r = LevelRing::new_lane_aligned(shape, halo, 2, lane);
            assert_eq!(r.sy() % lane, 0, "row length must be a lane multiple");
            for x in 0..shape.nx {
                for y in 0..shape.ny {
                    assert_eq!(r.idx(x, y, 0) % lane, 0, "pencil ({x},{y}) unaligned");
                }
            }
        }
    }

    #[test]
    fn lane_aligned_ring_matches_plain_ring_values() {
        let shape = Shape::new(4, 4, 11);
        let mut a = LevelRing::new(shape, 2, 2);
        let mut b = LevelRing::new_lane_aligned(shape, 2, 2, 8);
        for (x, y, z) in shape.iter() {
            let v = (x * 100 + y * 10 + z) as f32 * 0.5;
            unsafe {
                a.pencil_mut(1, x, y)[z] = v;
                b.pencil_mut(1, x, y)[z] = v;
            }
        }
        assert!(a.interior_copy(1).bit_equal(&b.interior_copy(1)));
        // Halo reads around the interior are zero in both layouts.
        let (ia, ib) = (a.idx(0, 0, 0), b.idx(0, 0, 0));
        unsafe {
            assert_eq!(a.level(1)[ia - 2], 0.0);
            assert_eq!(b.level(1)[ib - 2], 0.0);
            assert_eq!(a.level(1)[ia - 2 * a.sy()], 0.0);
            assert_eq!(b.level(1)[ib - 2 * b.sy()], 0.0);
        }
    }

    #[test]
    fn pencil_write_read_roundtrip() {
        let mut r = LevelRing::new(Shape::cube(4), 1, 2);
        unsafe {
            let p = r.pencil_mut(1, 2, 3);
            p[0] = 5.0;
            p[3] = -2.0;
        }
        let c = r.interior_copy(1);
        assert_eq!(c.get(2, 3, 0), 5.0);
        assert_eq!(c.get(2, 3, 3), -2.0);
        // other level untouched
        assert_eq!(r.interior_max_abs(0), 0.0);
    }

    #[test]
    fn halo_reads_are_zero() {
        let r = LevelRing::new(Shape::cube(4), 2, 2);
        let lvl = unsafe { r.level(0) };
        // A read r points beyond the interior stays in the allocation and is 0.
        let i = r.idx(3, 3, 3);
        assert_eq!(lvl[i + 2], 0.0);
        assert_eq!(lvl[i + 2 * r.sx()], 0.0);
    }

    #[test]
    fn clear_resets_all_levels() {
        let mut r = LevelRing::new(Shape::cube(3), 1, 3);
        for t in 0..3 {
            unsafe {
                r.pencil_mut(t, 0, 0)[0] = 1.0;
            }
        }
        r.clear();
        for t in 0..3 {
            assert_eq!(r.interior_max_abs(t), 0.0);
        }
    }

    #[test]
    fn parallel_disjoint_pencil_writes() {
        use std::sync::Arc;
        let r = Arc::new(LevelRing::new(Shape::cube(8), 1, 2));
        let handles: Vec<_> = (0..4)
            .map(|tid| {
                let r = Arc::clone(&r);
                std::thread::spawn(move || {
                    for x in (tid * 2)..(tid * 2 + 2) {
                        for y in 0..8 {
                            // SAFETY: threads own disjoint x slices.
                            let p = unsafe { r.pencil_mut(1, x, y) };
                            for (z, v) in p.iter_mut().enumerate() {
                                *v = (x * 100 + y * 10 + z) as f32;
                            }
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let mut r = Arc::try_unwrap(r).ok().unwrap();
        let c = r.interior_copy(1);
        for (x, y, z) in Shape::cube(8).iter() {
            assert_eq!(c.get(x, y, z), (x * 100 + y * 10 + z) as f32);
        }
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn rejects_single_level() {
        let _ = LevelRing::new(Shape::cube(2), 0, 1);
    }

    #[test]
    fn checkpoint_restore_roundtrip() {
        let mut r = LevelRing::new(Shape::cube(4), 2, 3);
        for t in 0..3 {
            unsafe {
                r.pencil_mut(t, 1, 2)[3] = (t + 1) as f32 * 0.5;
            }
        }
        let cp = r.checkpoint();
        assert_eq!(cp.num_values(), 3 * 8 * 8 * 8);
        // Scribble over every level, then restore.
        for t in 0..3 {
            unsafe {
                r.pencil_mut(t, 1, 2)[3] = -9.0;
                r.pencil_mut(t, 0, 0)[0] = 7.0;
            }
        }
        r.restore(&cp);
        for t in 0..3 {
            let c = r.interior_copy(t);
            assert_eq!(c.get(1, 2, 3), (t + 1) as f32 * 0.5);
            assert_eq!(c.get(0, 0, 0), 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "level count mismatch")]
    fn restore_rejects_wrong_geometry() {
        let mut a = LevelRing::new(Shape::cube(4), 1, 2);
        let mut b = LevelRing::new(Shape::cube(4), 1, 3);
        let cp = b.checkpoint();
        a.restore(&cp);
    }
}
