//! Isotropic acoustic wave propagator (paper §III-A).
//!
//! Discretises `m·∂²u/∂t² + η·∂u/∂t − Δu = δ(x_s)·q(t)` (squared slowness
//! `m = 1/c²`, sponge damping `η`) with a 2nd-order leap-frog in time and an
//! even-order star Laplacian in space (Fig. 2):
//!
//! `u⁺ = c1·u − c2·u⁻ + c3·(Δu + injected source)` with precomputed
//! per-point coefficients `c1 = 2/(1+η)`, `c2 = (1−η)/(1+η)`,
//! `c3 = dt²/(m·(1+η))`.
//!
//! The same region-update kernel serves every schedule; the sparse source /
//! receiver work is either skipped (classic path, applied between timesteps)
//! or fused per pencil (Listings 4–5).

use std::collections::hash_map::DefaultHasher;
use std::hash::Hasher;
use std::sync::Arc;
use std::time::Instant;

use crate::config::SimConfig;
use crate::operator::{Execution, KernelPath, RunStats, Schedule, SparseMode, WaveSolver};
use crate::shared::{LevelRing, RingCheckpoint};
use crate::sources::{ReceiverBundle, SourceBundle};
use crate::trace::TraceBuffer;
use tempest_obs as obs;
use tempest_grid::{Array2, Array3, DampingMask, Model, Range3, Shape};
use tempest_sparse::SparsePoints;
use tempest_stencil::kernels::{laplacian_at, laplacian_at_r, AxisWeights};
use tempest_stencil::metrics::acoustic_cost;
use tempest_stencil::simd::LANE;
use tempest_stencil::Backend;
use tempest_tiling::incremental::{
    dirty_cone, execute_incremental, DirtyRect, SlabPayload, SourceSig, TileCache, TilePayload,
    TilePlan,
};
use tempest_tiling::{diamond, spaceblock, wavefront, Slab};

/// The isotropic acoustic propagator.
pub struct Acoustic {
    cfg: SimConfig,
    ring: LevelRing,
    c1: Array3<f32>,
    c2: Array3<f32>,
    c3: Array3<f32>,
    wx: Vec<f32>,
    wy: Vec<f32>,
    wz: Vec<f32>,
    center: f32,
    radius: usize,
    src: SourceBundle,
    rec: Option<ReceiverBundle>,
    trace: Option<TraceBuffer>,
}

/// Everything an acoustic shot solve needs that does *not* depend on the
/// source position: leap-frog coefficient volumes (damping + model), FD
/// axis weights, the receiver gather precomputation, and the shared Ricker
/// wavelet samples. Built once per `(model, config, receiver-set)` and
/// reused across every shot of a survey batch — the batch-level reuse rule
/// of the survey engine (DESIGN.md §14). `Clone` is cheap relative to
/// rebuilding: it copies volumes but re-runs no interpolation precompute.
#[derive(Clone)]
pub struct ShotAssets {
    cfg: SimConfig,
    c1: Array3<f32>,
    c2: Array3<f32>,
    c3: Array3<f32>,
    wx: Vec<f32>,
    wy: Vec<f32>,
    wz: Vec<f32>,
    center: f32,
    radius: usize,
    rec: Option<ReceiverBundle>,
    /// Ricker samples at `cfg.f0` — one column of the per-shot wavelet
    /// matrix, shared so shots do not re-evaluate the transcendentals.
    ricker: Vec<f32>,
}

impl ShotAssets {
    /// Precompute the shot-independent assets for `model` under `cfg`, with
    /// an optional shared receiver set.
    pub fn new(model: &Model, cfg: SimConfig, receivers: Option<SparsePoints>) -> Self {
        assert_eq!(model.shape(), cfg.shape(), "model/config shape mismatch");
        let shape = cfg.shape();
        let radius = cfg.radius();
        let h = cfg.domain.spacing();
        let awx = AxisWeights::second_derivative(cfg.space_order, h[0]);
        let awy = AxisWeights::second_derivative(cfg.space_order, h[1]);
        let awz = AxisWeights::second_derivative(cfg.space_order, h[2]);
        let center = awx.center + awy.center + awz.center;

        let damp = DampingMask::sponge(shape, cfg.nbl, cfg.damp_coeff);
        let dt2 = cfg.dt * cfg.dt;
        let mut c1 = Array3::from_shape(shape);
        let mut c2 = Array3::from_shape(shape);
        let mut c3 = Array3::from_shape(shape);
        for i in 0..c1.len() {
            let eta = damp.damp.as_slice()[i];
            let m = model.m.as_slice()[i];
            let inv = 1.0 / (1.0 + eta);
            c1.as_mut_slice()[i] = 2.0 * inv;
            c2.as_mut_slice()[i] = (1.0 - eta) * inv;
            c3.as_mut_slice()[i] = dt2 / m * inv;
        }

        let rec = receivers.map(|r| ReceiverBundle::new(&cfg.domain, r));
        let ricker = tempest_sparse::ricker(cfg.f0, cfg.dt, cfg.nt);
        ShotAssets {
            cfg,
            c1,
            c2,
            c3,
            wx: awx.side,
            wy: awy.side,
            wz: awz.side,
            center,
            radius,
            rec,
            ricker,
        }
    }

    /// The simulation configuration the assets were built for.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// The shared receiver bundle, when receivers were attached.
    pub fn receivers(&self) -> Option<&ReceiverBundle> {
        self.rec.as_ref()
    }
}

impl Acoustic {
    /// Build a propagator over `model` with the given sources and optional
    /// receivers. Wavelets are Ricker at `cfg.f0`.
    pub fn new(
        model: &Model,
        cfg: SimConfig,
        sources: SparsePoints,
        receivers: Option<SparsePoints>,
    ) -> Self {
        Self::from_assets(&ShotAssets::new(model, cfg, receivers), sources)
    }

    /// Build a propagator from precomputed [`ShotAssets`], paying only the
    /// per-shot cost (source precompute + a fresh wavefield ring). Wavelets
    /// are the assets' shared Ricker — bitwise-identical to
    /// [`new`](Self::new) on the same inputs.
    pub fn from_assets(assets: &ShotAssets, sources: SparsePoints) -> Self {
        let wavelets =
            tempest_sparse::wavelet::wavelet_matrix(&assets.ricker, sources.len());
        Self::from_assets_with_wavelets(assets, sources, wavelets)
    }

    /// Build from precomputed [`ShotAssets`] with explicit per-source
    /// wavelets (`wavelets[t][s]`, `cfg.nt` rows) — the adjoint/RTM shape
    /// of [`new_with_wavelets`](Self::new_with_wavelets).
    pub fn from_assets_with_wavelets(
        assets: &ShotAssets,
        sources: SparsePoints,
        wavelets: Array2<f32>,
    ) -> Self {
        assert_eq!(wavelets.dims()[0], assets.cfg.nt, "one wavelet row per timestep");
        let cfg = assets.cfg.clone();
        let src = SourceBundle::new(&cfg.domain, sources, wavelets);
        let rec = assets.rec.clone();
        let trace = rec
            .as_ref()
            .map(|r| TraceBuffer::new(cfg.nt, r.num_receivers()));
        Acoustic {
            ring: LevelRing::new_lane_aligned(cfg.shape(), assets.radius, 3, LANE),
            cfg,
            c1: assets.c1.clone(),
            c2: assets.c2.clone(),
            c3: assets.c3.clone(),
            wx: assets.wx.clone(),
            wy: assets.wy.clone(),
            wz: assets.wz.clone(),
            center: assets.center,
            radius: assets.radius,
            src,
            rec,
            trace,
        }
    }

    /// Build a propagator whose sources fire explicit per-source wavelets
    /// (`wavelets[t][s]`, `cfg.nt` rows) instead of a shared Ricker — used
    /// by adjoint/RTM passes that re-inject recorded receiver data.
    pub fn new_with_wavelets(
        model: &Model,
        cfg: SimConfig,
        sources: SparsePoints,
        wavelets: tempest_grid::Array2<f32>,
        receivers: Option<SparsePoints>,
    ) -> Self {
        assert_eq!(wavelets.dims()[0], cfg.nt, "one wavelet row per timestep");
        let mut s = Self::new(model, cfg, sources, receivers);
        s.src = SourceBundle::new(&s.cfg.domain, s.src.points.clone(), wavelets);
        s
    }

    /// The simulation configuration.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// The source bundle (inspection / corner-case experiments).
    pub fn sources(&self) -> &SourceBundle {
        &self.src
    }

    /// The receiver bundle, when receivers were attached.
    pub fn receivers(&self) -> Option<&ReceiverBundle> {
        self.rec.as_ref()
    }

    fn reset(&mut self) {
        self.ring.clear();
        if let Some(t) = self.trace.as_mut() {
            t.clear();
        }
    }

    /// Compute timestep `k` (writing level `k + 2`) for `region`. The
    /// `KernelPath` is resolved to a concrete backend here (a cached
    /// lookup), so every schedule picks up the same dispatch decision.
    fn step_region(&self, k: usize, region: &Range3, mode: SparseMode, kernel: KernelPath) {
        let _sp = obs::trace::span(obs::trace::SpanKind::Stencil, obs::trace::SpanArgs::step(k));
        match kernel.resolve() {
            Backend::Scalar => match self.radius {
                1 => self.step_r::<1>(k, region, mode),
                2 => self.step_r::<2>(k, region, mode),
                3 => self.step_r::<3>(k, region, mode),
                4 => self.step_r::<4>(k, region, mode),
                6 => self.step_r::<6>(k, region, mode),
                8 => self.step_r::<8>(k, region, mode),
                _ => self.step_dyn(k, region, mode),
            },
            backend => match self.radius {
                1 => self.step_pencil_r::<1>(k, region, mode, backend),
                2 => self.step_pencil_r::<2>(k, region, mode, backend),
                3 => self.step_pencil_r::<3>(k, region, mode, backend),
                4 => self.step_pencil_r::<4>(k, region, mode, backend),
                6 => self.step_pencil_r::<6>(k, region, mode, backend),
                8 => self.step_pencil_r::<8>(k, region, mode, backend),
                _ => self.step_pencil_dyn(k, region, mode, backend),
            },
        }
    }

    /// Row-kernel twin of [`step_r`](Self::step_r): one whole-row Laplacian
    /// call per `z`-row through the selected vector `backend`, then a
    /// slice-zipped leap-frog combine. Bitwise-identical to the scalar path
    /// (same per-point accumulation order; sub-lane remainders fall back to
    /// the scalar kernel inside every backend).
    fn step_pencil_r<const R: usize>(
        &self,
        k: usize,
        region: &Range3,
        mode: SparseMode,
        backend: Backend,
    ) {
        let sw = obs::start(obs::Phase::Stencil);
        obs::add(obs::Counter::StencilUpdates, region.len() as u64);
        obs::add(
            obs::Counter::PencilRows,
            ((region.x1 - region.x0) * (region.y1 - region.y0)) as u64,
        );
        // SAFETY: as in step_r — disjoint region writes, settled reads.
        let u0 = unsafe { self.ring.level(k + 1) };
        let um = unsafe { self.ring.level(k) };
        let (sx, sy) = (self.ring.sx(), self.ring.sy());
        let wx: [f32; R] = self.wx[..].try_into().expect("radius mismatch");
        let wy: [f32; R] = self.wy[..].try_into().expect("radius mismatch");
        let wz: [f32; R] = self.wz[..].try_into().expect("radius mismatch");
        let n = region.z1 - region.z0;
        let mut lap = vec![0.0f32; n];
        for x in region.x0..region.x1 {
            for y in region.y0..region.y1 {
                let un = unsafe { self.ring.pencil_mut(k + 2, x, y) };
                let i0 = self.ring.idx(x, y, region.z0);
                let c1r = self.c1.pencil(x, y);
                let c2r = self.c2.pencil(x, y);
                let c3r = self.c3.pencil(x, y);
                backend.laplacian_row_r::<R>(u0, i0, sx, sy, self.center, &wx, &wy, &wz, &mut lap);
                let out = &mut un[region.z0..region.z1];
                let u0w = &u0[i0..i0 + n];
                let umw = &um[i0..i0 + n];
                let c1w = &c1r[region.z0..region.z1];
                let c2w = &c2r[region.z0..region.z1];
                let c3w = &c3r[region.z0..region.z1];
                for j in 0..n {
                    out[j] = c1w[j] * u0w[j] - c2w[j] * umw[j] + c3w[j] * lap[j];
                }
                self.fused_sparse(k, x, y, region, un, c3r, mode);
            }
        }
        sw.stop();
    }

    /// Pencil twin of [`step_dyn`](Self::step_dyn) (dynamic radius).
    fn step_pencil_dyn(&self, k: usize, region: &Range3, mode: SparseMode, backend: Backend) {
        let sw = obs::start(obs::Phase::Stencil);
        obs::add(obs::Counter::StencilUpdates, region.len() as u64);
        obs::add(
            obs::Counter::PencilRows,
            ((region.x1 - region.x0) * (region.y1 - region.y0)) as u64,
        );
        let u0 = unsafe { self.ring.level(k + 1) };
        let um = unsafe { self.ring.level(k) };
        let (sx, sy) = (self.ring.sx(), self.ring.sy());
        let n = region.z1 - region.z0;
        let mut lap = vec![0.0f32; n];
        for x in region.x0..region.x1 {
            for y in region.y0..region.y1 {
                let un = unsafe { self.ring.pencil_mut(k + 2, x, y) };
                let i0 = self.ring.idx(x, y, region.z0);
                let c1r = self.c1.pencil(x, y);
                let c2r = self.c2.pencil(x, y);
                let c3r = self.c3.pencil(x, y);
                backend.laplacian_row(
                    u0, i0, sx, sy, self.center, &self.wx, &self.wy, &self.wz, &mut lap,
                );
                let out = &mut un[region.z0..region.z1];
                let u0w = &u0[i0..i0 + n];
                let umw = &um[i0..i0 + n];
                let c1w = &c1r[region.z0..region.z1];
                let c2w = &c2r[region.z0..region.z1];
                let c3w = &c3r[region.z0..region.z1];
                for j in 0..n {
                    out[j] = c1w[j] * u0w[j] - c2w[j] * umw[j] + c3w[j] * lap[j];
                }
                self.fused_sparse(k, x, y, region, un, c3r, mode);
            }
        }
        sw.stop();
    }

    fn step_r<const R: usize>(&self, k: usize, region: &Range3, mode: SparseMode) {
        let sw = obs::start(obs::Phase::Stencil);
        obs::add(obs::Counter::StencilUpdates, region.len() as u64);
        // SAFETY: the schedule guarantees level k+2 writes are disjoint per
        // region and levels k, k+1 hold fully computed values (legality is
        // machine-checked in tempest-tiling and cross-validated bitwise).
        let u0 = unsafe { self.ring.level(k + 1) };
        let um = unsafe { self.ring.level(k) };
        let (sx, sy) = (self.ring.sx(), self.ring.sy());
        let wx: [f32; R] = self.wx[..].try_into().expect("radius mismatch");
        let wy: [f32; R] = self.wy[..].try_into().expect("radius mismatch");
        let wz: [f32; R] = self.wz[..].try_into().expect("radius mismatch");
        for x in region.x0..region.x1 {
            for y in region.y0..region.y1 {
                let un = unsafe { self.ring.pencil_mut(k + 2, x, y) };
                let base = self.ring.idx(x, y, 0);
                let c1r = self.c1.pencil(x, y);
                let c2r = self.c2.pencil(x, y);
                let c3r = self.c3.pencil(x, y);
                for z in region.z0..region.z1 {
                    let i = base + z;
                    let lap = laplacian_at_r::<R>(u0, i, sx, sy, self.center, &wx, &wy, &wz);
                    un[z] = c1r[z] * u0[i] - c2r[z] * um[i] + c3r[z] * lap;
                }
                self.fused_sparse(k, x, y, region, un, c3r, mode);
            }
        }
        sw.stop();
    }

    /// Fallback for space orders without a monomorphised kernel.
    fn step_dyn(&self, k: usize, region: &Range3, mode: SparseMode) {
        let sw = obs::start(obs::Phase::Stencil);
        obs::add(obs::Counter::StencilUpdates, region.len() as u64);
        let u0 = unsafe { self.ring.level(k + 1) };
        let um = unsafe { self.ring.level(k) };
        let (sx, sy) = (self.ring.sx(), self.ring.sy());
        for x in region.x0..region.x1 {
            for y in region.y0..region.y1 {
                let un = unsafe { self.ring.pencil_mut(k + 2, x, y) };
                let base = self.ring.idx(x, y, 0);
                let c1r = self.c1.pencil(x, y);
                let c2r = self.c2.pencil(x, y);
                let c3r = self.c3.pencil(x, y);
                for z in region.z0..region.z1 {
                    let i = base + z;
                    let lap =
                        laplacian_at(u0, i, sx, sy, self.center, &self.wx, &self.wy, &self.wz);
                    un[z] = c1r[z] * u0[i] - c2r[z] * um[i] + c3r[z] * lap;
                }
                self.fused_sparse(k, x, y, region, un, c3r, mode);
            }
        }
        sw.stop();
    }

    /// Fused source injection (Listings 4–5) and receiver gather for one
    /// pencil of a freshly computed region.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    fn fused_sparse(
        &self,
        k: usize,
        x: usize,
        y: usize,
        region: &Range3,
        un: &mut [f32],
        c3r: &[f32],
        mode: SparseMode,
    ) {
        if mode == SparseMode::Classic {
            return;
        }
        let sw = obs::start(obs::Phase::Sparse);
        let mut sp = obs::trace::span(obs::trace::SpanKind::Sparse, obs::trace::SpanArgs::step(k));
        let mut injections = 0u64;
        let mut gathers = 0u64;
        match mode {
            SparseMode::Classic => return,
            SparseMode::Fused => {
                // Listing 4: scan the full z2 range against the binary mask.
                let dcmp = self.src.pre.dcmp_row(k);
                let sm = self.src.pre.sm_pencil(x, y);
                let sid = self.src.pre.sid_pencil(x, y);
                for z in region.z0..region.z1 {
                    if sm[z] != 0 {
                        un[z] += c3r[z] * dcmp[sid[z] as usize];
                        injections += 1;
                    }
                }
            }
            SparseMode::FusedCompressed => {
                // Listing 5: only the nnz entries of this pencil.
                let dcmp = self.src.pre.dcmp_row(k);
                for (z, id) in self.src.comp.entries(x, y) {
                    if z >= region.z0 && z < region.z1 {
                        un[z] += c3r[z] * dcmp[id];
                        injections += 1;
                    }
                }
            }
        }
        // Fused receiver gather (mirror of the source path).
        if let (Some(rec), Some(trace)) = (self.rec.as_ref(), self.trace.as_ref()) {
            match mode {
                SparseMode::Fused => {
                    let rm = rec.pre.rm_pencil(x, y);
                    let rid = rec.pre.rid_pencil(x, y);
                    for z in region.z0..region.z1 {
                        if rm[z] != 0 {
                            let v = un[z];
                            let contribs = rec.pre.contributions(rid[z] as usize);
                            gathers += contribs.len() as u64;
                            for &(r, w) in contribs {
                                trace.add(k, r as usize, w * v);
                            }
                        }
                    }
                }
                SparseMode::FusedCompressed => {
                    for (z, id) in rec.comp.entries(x, y) {
                        if z >= region.z0 && z < region.z1 {
                            let v = un[z];
                            let contribs = rec.pre.contributions(id);
                            gathers += contribs.len() as u64;
                            for &(r, w) in contribs {
                                trace.add(k, r as usize, w * v);
                            }
                        }
                    }
                }
                SparseMode::Classic => unreachable!(),
            }
        }
        if injections + gathers == 0 {
            // Most pencils have no sparse work; recording them would swamp
            // the trace ring with empty spans.
            sp.cancel();
        }
        obs::add(obs::Counter::SourceInjections, injections);
        obs::add(obs::Counter::ReceiverGathers, gathers);
        sw.stop();
    }

    /// Run the simulation while recording interior wavefield snapshots
    /// every `every` timesteps (snapshot `s` holds the field after step
    /// `s·every`). This is the forward pass of reverse-time migration
    /// (RTM, ref. \[52\] in the paper): the stored history is cross-correlated
    /// with a backward-propagated receiver wavefield.
    ///
    /// Runs under the spatially blocked schedule (snapshots need globally
    /// consistent time levels, which temporal blocking does not expose
    /// between tiles).
    pub fn run_recording(&mut self, exec: &Execution, every: usize) -> Vec<Array3<f32>> {
        assert!(every >= 1);
        assert!(
            matches!(exec.schedule, Schedule::SpaceBlocked { .. }),
            "snapshot recording requires the spatially blocked schedule"
        );
        exec.validate();
        crate::operator::record_backend_run(exec.kernel.resolve());
        self.reset();
        let shape = self.shape();
        let nt = self.cfg.nt;
        let spec = exec.spaceblock_spec();
        let blocks = spec.blocks(shape);
        let classic = exec.sparse == SparseMode::Classic;
        let mut snaps = Vec::with_capacity(nt / every + 1);
        for k in 0..nt {
            let this: &Acoustic = self;
            tempest_par::for_each(exec.policy, &blocks, |b| {
                this.step_region(k, b, exec.sparse, exec.kernel)
            });
            if classic {
                this.classic_after_step(k);
            }
            if (k + 1).is_multiple_of(every) {
                snaps.push(self.snapshot_level(k + 2));
            }
        }
        snaps
    }

    /// Advance timesteps `[k0, k1)` under the spatially blocked schedule.
    /// `k0 == 0` resets state first; `k0 > 0` continues from wherever a
    /// previous `run_range` left the ring, so a full run decomposes exactly:
    /// `run_range(0, s)` + `run_range(s, nt)` is bit-for-bit `run_range(0, nt)`.
    ///
    /// Together with [`checkpoint`](Self::checkpoint) /
    /// [`restore_checkpoint`](Self::restore_checkpoint) this is the
    /// checkpointed-restart primitive of RTM-style adjoint loops: snapshot
    /// the ring at step `s`, and later re-materialise `[s, nt)` instead of
    /// storing every intermediate wavefield.
    pub fn run_range(&mut self, exec: &Execution, k0: usize, k1: usize) {
        assert!(k0 <= k1 && k1 <= self.cfg.nt, "step range out of bounds");
        assert!(
            matches!(exec.schedule, Schedule::SpaceBlocked { .. }),
            "checkpointed stepping requires the spatially blocked schedule"
        );
        exec.validate();
        if k0 == 0 {
            crate::operator::record_backend_run(exec.kernel.resolve());
            self.reset();
        }
        let spec = exec.spaceblock_spec();
        let blocks = spec.blocks(self.shape());
        let classic = exec.sparse == SparseMode::Classic;
        for k in k0..k1 {
            let this: &Acoustic = self;
            tempest_par::for_each(exec.policy, &blocks, |b| {
                this.step_region(k, b, exec.sparse, exec.kernel)
            });
            if classic {
                this.classic_after_step(k);
            }
        }
    }

    /// Bitwise checkpoint of the wavefield ring, taken while quiescent
    /// (between [`run_range`](Self::run_range) segments). Covers the ring
    /// only: receiver traces keep accumulating, so a restore-and-replay of
    /// recorded steps would add their trace contributions twice.
    pub fn checkpoint(&mut self) -> RingCheckpoint {
        self.ring.checkpoint()
    }

    /// Restore a [`checkpoint`](Self::checkpoint) taken on this propagator —
    /// or on any propagator of identical ring geometry (same shape, radius
    /// and alignment), which is how checkpointed RTM re-materialises forward
    /// state on a receiver-free twin without double-accumulating traces.
    pub fn restore_checkpoint(&mut self, cp: &RingCheckpoint) {
        self.ring.restore(cp);
    }

    /// Interior copy of the wavefield after timestep `k` (ring level
    /// `k + 2`), taken while quiescent between [`run_range`](Self::run_range)
    /// segments. Bitwise-identical to the snapshot
    /// [`run_recording`](Self::run_recording) would have stored at the same
    /// step, so segment-wise stepping can reproduce a recorded history
    /// exactly.
    pub fn field_after(&mut self, k: usize) -> Array3<f32> {
        self.ring.interior_copy(k + 2)
    }

    /// Interior copy of a time level while quiescent (between sweeps).
    fn snapshot_level(&self, t: usize) -> Array3<f32> {
        // SAFETY: called between sweeps on the coordinating thread; no
        // concurrent mutation of any ring level.
        let lvl = unsafe { self.ring.level(t) };
        let shape = self.shape();
        let mut out = Array3::from_shape(shape);
        for x in 0..shape.nx {
            for y in 0..shape.ny {
                let base = self.ring.idx(x, y, 0);
                out.pencil_mut(x, y)
                    .copy_from_slice(&lvl[base..base + shape.nz]);
            }
        }
        out
    }

    /// Classic per-timestep sparse operators (Listing 1), run between dense
    /// sweeps of the space-blocked schedule.
    fn classic_after_step(&self, k: usize) {
        let sw = obs::start(obs::Phase::Sparse);
        let _sp = obs::trace::span(obs::trace::SpanKind::Sparse, obs::trace::SpanArgs::step(k));
        let mut injections = 0u64;
        let mut gathers = 0u64;
        // Source injection into the freshly computed level k+2.
        for (st, &a) in self.src.stencils.iter().zip(self.src.amps_at(k)) {
            for (c, w) in st.nonzero() {
                // SAFETY: runs on one thread between sweeps.
                let un = unsafe { self.ring.pencil_mut(k + 2, c[0], c[1]) };
                // Group (w·a) first: bitwise-identical to the fused path,
                // which multiplies c3 by the precomputed w·a product.
                un[c[2]] += self.c3.get(c[0], c[1], c[2]) * (w * a);
                injections += 1;
            }
        }
        // Receiver interpolation from level k+2.
        if let (Some(rec), Some(trace)) = (self.rec.as_ref(), self.trace.as_ref()) {
            let u = unsafe { self.ring.level(k + 2) };
            for (r, st) in rec.stencils.iter().enumerate() {
                let mut acc = 0.0f32;
                for (c, w) in st.nonzero() {
                    acc += w * u[self.ring.idx(c[0], c[1], c[2])];
                    gathers += 1;
                }
                trace.add(k, r, acc);
            }
        }
        obs::add(obs::Counter::SourceInjections, injections);
        obs::add(obs::Counter::ReceiverGathers, gathers);
        sw.stop();
    }

    // -- incremental recomputation ------------------------------------------

    /// Per-source change signatures: a digest of everything that shapes the
    /// source's injections (position, interpolation stencil, wavelet column)
    /// plus the xy bounding box of its footprint, in source-index order.
    fn source_sigs(&self) -> Vec<SourceSig> {
        let coords = self.src.points.coords();
        (0..self.src.points.len())
            .map(|s| {
                let mut h = DefaultHasher::new();
                for &c in &coords[s] {
                    h.write_u32(c.to_bits());
                }
                let (mut x0, mut x1, mut y0, mut y1) = (usize::MAX, 0usize, usize::MAX, 0usize);
                for (c, w) in self.src.stencils[s].nonzero() {
                    h.write_usize(c[0]);
                    h.write_usize(c[1]);
                    h.write_usize(c[2]);
                    h.write_u32(w.to_bits());
                    x0 = x0.min(c[0]);
                    x1 = x1.max(c[0] + 1);
                    y0 = y0.min(c[1]);
                    y1 = y1.max(c[1] + 1);
                }
                for t in 0..self.cfg.nt {
                    h.write_u32(self.src.wavelets.get(t, s).to_bits());
                }
                if x0 == usize::MAX {
                    (x0, x1, y0, y1) = (0, 0, 0, 0);
                }
                SourceSig {
                    digest: h.finish(),
                    rect: DirtyRect { x0, x1, y0, y1 },
                }
            })
            .collect()
    }

    /// Digest of the receiver layout (positions + interpolation stencils).
    /// Tracked separately from the session key: receivers are read-only
    /// gathers, so a changed receiver set dirties zero stencil tiles —
    /// restored tiles replay their gathers against the *current* bundle.
    fn receiver_digest(&self) -> u64 {
        let mut h = DefaultHasher::new();
        if let Some(rec) = self.rec.as_ref() {
            h.write_u8(1);
            for c in rec.points.coords() {
                for &v in c {
                    h.write_u32(v.to_bits());
                }
            }
            for st in &rec.stencils {
                for (c, w) in st.nonzero() {
                    h.write_usize(c[0]);
                    h.write_usize(c[1]);
                    h.write_usize(c[2]);
                    h.write_u32(w.to_bits());
                }
            }
        }
        h.finish()
    }

    /// Session key: everything that (besides the sparse layout tracked by
    /// the per-run delta) determines the wavefield bit-for-bit — the
    /// coefficient volumes (model + damping + dt²), FD weights, schedule
    /// geometry and sparse path, plus the caller's shot identity. The kernel
    /// backend is deliberately *excluded*: every backend is bitwise-identical
    /// (PR 8's oracle), so cached tiles stay valid across a backend switch.
    fn session_key(&self, plan_geometry: u64, sparse: SparseMode, shot_key: u64) -> u64 {
        let mut h = DefaultHasher::new();
        let shape = self.shape();
        h.write_usize(shape.nx);
        h.write_usize(shape.ny);
        h.write_usize(shape.nz);
        h.write_usize(self.cfg.space_order);
        h.write_usize(self.cfg.nt);
        h.write_u32(self.cfg.dt.to_bits());
        h.write_u32(self.cfg.f0.to_bits());
        for arr in [&self.c1, &self.c2, &self.c3] {
            for &v in arr.as_slice() {
                h.write_u32(v.to_bits());
            }
        }
        for ws in [&self.wx, &self.wy, &self.wz] {
            for &v in ws.iter() {
                h.write_u32(v.to_bits());
            }
        }
        h.write_u32(self.center.to_bits());
        h.write_usize(self.radius);
        h.write_u8(sparse as u8);
        h.write_u64(plan_geometry);
        h.write_u64(shot_key);
        h.finish()
    }

    /// Per-node content masks: for each plan node, a digest (in source-index
    /// order) of the sources whose footprint intersects the node's slabs.
    /// Folded into the cache key so a stale payload can never satisfy a
    /// lookup after its local sources changed.
    fn node_masks(plan: &TilePlan, sigs: &[SourceSig]) -> Vec<u64> {
        plan.slabs
            .iter()
            .map(|slabs| {
                let mut h = DefaultHasher::new();
                for (i, sig) in sigs.iter().enumerate() {
                    if slabs.iter().any(|s| sig.rect.overlaps(&s.range)) {
                        h.write_usize(i);
                        h.write_u64(sig.digest);
                    }
                }
                h.finish()
            })
            .collect()
    }

    /// Snapshot the output a tile node just wrote: for each slab, the
    /// `(x, y)` pencils of ring level `vt + 2` over the slab range.
    ///
    /// SAFETY: called from the node's own dataflow task after its step
    /// calls, before its successors are released — it reads exactly the
    /// cells this node wrote, which no other in-flight tile may touch.
    fn capture_tile(&self, slabs: &[Slab]) -> TilePayload {
        let payload = slabs
            .iter()
            .map(|slab| {
                let r = slab.range;
                let nz = r.z1 - r.z0;
                let lvl = unsafe { self.ring.level(slab.vt + 2) };
                let mut data = Vec::with_capacity(r.len());
                for x in r.x0..r.x1 {
                    for y in r.y0..r.y1 {
                        let base = self.ring.idx(x, y, r.z0);
                        data.extend_from_slice(&lvl[base..base + nz]);
                    }
                }
                SlabPayload { slab: *slab, data }
            })
            .collect();
        TilePayload { slabs: payload }
    }

    /// Restore a cached tile output in place of recomputing it: write the
    /// payload pencils back to the ring (bit-for-bit what the step calls
    /// would have produced), then replay the node's receiver gathers against
    /// the current receiver bundle in the exact compute order (slabs in
    /// ascending `vt`, blocks in `split_xy` order, x then y), reading the
    /// gathered values from the payload. Counts `ReceiverGathers` like the
    /// fused path; stencil/injection counters stay untouched — no such work
    /// happens.
    fn restore_tile(
        &self,
        payload: &TilePayload,
        block_x: usize,
        block_y: usize,
        mode: SparseMode,
    ) {
        for sp in &payload.slabs {
            let r = sp.slab.range;
            let nz = r.z1 - r.z0;
            let mut off = 0;
            for x in r.x0..r.x1 {
                for y in r.y0..r.y1 {
                    // SAFETY: this node's task owns these cells at this
                    // level, exactly as the step calls it replaces would.
                    let un = unsafe { self.ring.pencil_mut(sp.slab.vt + 2, x, y) };
                    un[r.z0..r.z1].copy_from_slice(&sp.data[off..off + nz]);
                    off += nz;
                }
            }
        }
        let (Some(rec), Some(trace)) = (self.rec.as_ref(), self.trace.as_ref()) else {
            return;
        };
        let mut gathers = 0u64;
        for sp in &payload.slabs {
            let k = sp.slab.vt;
            let r = sp.slab.range;
            for b in r.split_xy(block_x, block_y) {
                for x in b.x0..b.x1 {
                    for y in b.y0..b.y1 {
                        match mode {
                            SparseMode::Fused => {
                                let rm = rec.pre.rm_pencil(x, y);
                                let rid = rec.pre.rid_pencil(x, y);
                                for z in b.z0..b.z1 {
                                    if rm[z] != 0 {
                                        let v = sp.pencil(x, y)[z - r.z0];
                                        let contribs = rec.pre.contributions(rid[z] as usize);
                                        gathers += contribs.len() as u64;
                                        for &(rr, w) in contribs {
                                            trace.add(k, rr as usize, w * v);
                                        }
                                    }
                                }
                            }
                            SparseMode::FusedCompressed => {
                                for (z, id) in rec.comp.entries(x, y) {
                                    if z >= b.z0 && z < b.z1 {
                                        let v = sp.pencil(x, y)[z - r.z0];
                                        let contribs = rec.pre.contributions(id);
                                        gathers += contribs.len() as u64;
                                        for &(rr, w) in contribs {
                                            trace.add(k, rr as usize, w * v);
                                        }
                                    }
                                }
                            }
                            SparseMode::Classic => unreachable!("mapped away by run_incremental"),
                        }
                    }
                }
            }
        }
        obs::add(obs::Counter::ReceiverGathers, gathers);
    }

    /// Run the simulation incrementally against `cache`: diff the sparse
    /// layout against the cache's last completed run of the same session,
    /// mark the delta's causal cone over the tile graph, restore every clean
    /// cached tile bit-for-bit and recompute only the rest. The result —
    /// wavefield *and* (per-thread-cap) traces — is bitwise-identical to a
    /// cold full run; only the work differs.
    ///
    /// `shot_key` distinguishes otherwise-identical solves sharing one cache
    /// (e.g. the survey engine passes the shot index). `SparseMode::Classic`
    /// is mapped to `FusedCompressed` (bitwise-identical wavefield; classic
    /// per-timestep operators have no per-tile identity to cache). With the
    /// cache disabled (`TEMPEST_CACHE_MB=0`) this falls back to the plain
    /// [`run`](WaveSolver::run) path, bit-for-bit pre-cache behaviour.
    pub fn run_incremental(
        &mut self,
        exec: &Execution,
        cache: &TileCache,
        shot_key: u64,
    ) -> IncrementalReport {
        let mut ex = *exec;
        if ex.sparse == SparseMode::Classic {
            ex.sparse = SparseMode::FusedCompressed;
        }
        assert!(
            ex.supports_incremental(),
            "schedule `{}` has no tile plan; incremental recomputation needs \
             SpaceBlocked, WavefrontDataflow or Diamond",
            ex.schedule_label()
        );
        ex.validate();
        if !cache.enabled() {
            let stats = self.run(exec);
            return IncrementalReport {
                stats,
                total_tiles: 0,
                reused: 0,
                recomputed: 0,
                cold: true,
            };
        }
        let shape = self.shape();
        let nt = self.cfg.nt;
        let plan = match ex.schedule {
            Schedule::SpaceBlocked { block_x, block_y } => {
                TilePlan::spaceblocked(shape, nt, block_x, block_y, self.radius)
            }
            Schedule::WavefrontDataflow { .. } => {
                TilePlan::wavefront(shape, nt, &ex.wavefront_spec(self.radius, 1), self.radius)
            }
            Schedule::Diamond { .. } => {
                TilePlan::diamond(shape, nt, &ex.diamond_spec(self.radius, 1), self.radius)
            }
            _ => unreachable!("supports_incremental checked above"),
        };
        let sigs = self.source_sigs();
        let rec_digest = self.receiver_digest();
        let session = self.session_key(plan.geometry, ex.sparse, shot_key);
        let masks = Self::node_masks(&plan, &sigs);
        let delta = cache.begin_run(session, &sigs, rec_digest);
        let cold = delta.is_none();
        let dirty = match &delta {
            Some(d) => dirty_cone(&plan, &d.rects),
            None => vec![true; plan.len()],
        };
        let mut restores: Vec<Option<Arc<TilePayload>>> = Vec::with_capacity(plan.len());
        let mut restore_ok = Vec::with_capacity(plan.len());
        for (i, (&d, &mask)) in dirty.iter().zip(&masks).enumerate() {
            let p = if d {
                None
            } else {
                cache.lookup(session, i as u32, mask)
            };
            restore_ok.push(p.is_some());
            restores.push(p);
        }
        crate::operator::record_backend_run(ex.kernel.resolve());
        self.reset();
        let started = Instant::now();
        let this: &Acoustic = self;
        let outcome = execute_incremental(
            &plan,
            ex.policy,
            &restore_ok,
            |vt, region| this.step_region(vt, region, ex.sparse, ex.kernel),
            |i| {
                let p = restores[i].as_deref().expect("restore without payload");
                this.restore_tile(p, plan.block_x, plan.block_y, ex.sparse);
            },
            |i| {
                let p = this.capture_tile(&plan.slabs[i]);
                cache.insert(session, i as u32, masks[i], p);
            },
        );
        let stats = RunStats::new(started.elapsed(), nt, shape);
        cache.finish_run(session, sigs, rec_digest);
        IncrementalReport {
            stats,
            total_tiles: outcome.total,
            reused: outcome.reused,
            recomputed: outcome.recomputed,
            cold,
        }
    }
}

/// What one [`Acoustic::run_incremental`] solve did: timing plus the exact
/// reuse tally (`reused + recomputed == total_tiles` whenever the cache was
/// enabled — the counts mirror the `TilesReused` / `TilesRecomputed`
/// counters but are recorded unconditionally, so tests can assert them
/// without the obs feature).
#[derive(Debug, Clone, Copy)]
pub struct IncrementalReport {
    /// Timing/throughput of the run.
    pub stats: RunStats,
    /// Tile nodes the plan enumerated (0 on the disabled-cache fallback).
    pub total_tiles: usize,
    /// Nodes restored from cache.
    pub reused: usize,
    /// Nodes recomputed.
    pub recomputed: usize,
    /// True when no completed prior run was available (or the cache is
    /// disabled) and everything ran from scratch.
    pub cold: bool,
}

impl IncrementalReport {
    /// Fraction of tiles served from cache, in `[0, 1]`.
    pub fn reuse_rate(&self) -> f64 {
        if self.total_tiles == 0 {
            0.0
        } else {
            self.reused as f64 / self.total_tiles as f64
        }
    }
}

impl WaveSolver for Acoustic {
    fn name(&self) -> &'static str {
        "acoustic"
    }

    fn shape(&self) -> Shape {
        self.cfg.shape()
    }

    fn num_timesteps(&self) -> usize {
        self.cfg.nt
    }

    fn space_order(&self) -> usize {
        self.cfg.space_order
    }

    fn run(&mut self, exec: &Execution) -> RunStats {
        exec.validate();
        crate::operator::record_backend_run(exec.kernel.resolve());
        self.reset();
        let shape = self.shape();
        let nt = self.cfg.nt;
        let started = Instant::now();
        let this: &Acoustic = self;
        match exec.schedule {
            Schedule::SpaceBlocked { .. } => {
                let spec = exec.spaceblock_spec();
                let classic = exec.sparse == SparseMode::Classic;
                spaceblock::execute(
                    shape,
                    nt,
                    spec,
                    exec.policy,
                    |k, region| this.step_region(k, region, exec.sparse, exec.kernel),
                    |k| {
                        if classic {
                            this.classic_after_step(k);
                        }
                    },
                );
            }
            Schedule::Wavefront { .. } => {
                let spec = exec.wavefront_spec(self.radius, 1);
                wavefront::execute(shape, nt, &spec, exec.policy, |vt, region| {
                    this.step_region(vt, region, exec.sparse, exec.kernel)
                });
            }
            Schedule::WavefrontDiagonal { .. } => {
                let spec = exec.wavefront_spec(self.radius, 1);
                wavefront::execute_diagonal(shape, nt, &spec, exec.policy, |vt, region| {
                    this.step_region(vt, region, exec.sparse, exec.kernel)
                });
            }
            Schedule::WavefrontDataflow { .. } => {
                let spec = exec.wavefront_spec(self.radius, 1);
                wavefront::execute_dataflow(shape, nt, &spec, self.radius, exec.policy, |vt, region| {
                    this.step_region(vt, region, exec.sparse, exec.kernel)
                });
            }
            Schedule::Diamond { .. } => {
                let spec = exec.diamond_spec(self.radius, 1);
                diamond::execute_diamond(shape, nt, &spec, self.radius, exec.policy, |vt, region| {
                    this.step_region(vt, region, exec.sparse, exec.kernel)
                });
            }
        }
        RunStats::new(started.elapsed(), nt, shape)
    }

    fn final_field(&mut self) -> Array3<f32> {
        let t = self.cfg.nt + 1;
        self.ring.interior_copy(t)
    }

    fn trace(&self) -> Option<Array2<f32>> {
        self.trace.as_ref().map(|t| t.to_array())
    }

    fn flops_per_point(&self) -> f64 {
        acoustic_cost(self.cfg.space_order).flops
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EquationKind;
    use tempest_grid::Domain;

    fn small_setup(so: usize, nt: usize) -> Acoustic {
        let domain = Domain::uniform(Shape::cube(24), 10.0);
        let model = Model::homogeneous(domain, 2000.0);
        let cfg = SimConfig::new(domain, so, EquationKind::Acoustic, 2000.0, 100.0)
            .with_nt(nt)
            .with_f0(25.0)
            .with_boundary(4, 0.3);
        let src = SparsePoints::single_center(&domain, 0.4);
        let rec = SparsePoints::receiver_line(&domain, 5, 0.25);
        Acoustic::new(&model, cfg, src, Some(rec))
    }

    #[test]
    fn wave_propagates_and_stays_stable() {
        let mut a = small_setup(4, 30);
        a.run(&Execution::baseline());
        let f = a.final_field();
        let m = f.max_abs();
        assert!(m > 0.0, "wavefield must be excited");
        assert!(m.is_finite() && m < 1e6, "CFL-stable run must stay bounded");
        // The trace records a non-trivial signal.
        let tr = a.trace().unwrap();
        let tmax = tr.as_slice().iter().fold(0.0f32, |s, &v| s.max(v.abs()));
        assert!(tmax > 0.0);
    }

    #[test]
    fn wavefront_matches_baseline_bitwise_single_source() {
        for so in [4usize, 8] {
            let mut a = small_setup(so, 16);
            a.run(&Execution::baseline().sequential());
            let base = a.final_field();

            let mut exec = Execution::wavefront_default().sequential();
            exec.schedule = Schedule::Wavefront {
                tile_x: 8,
                tile_y: 8,
                tile_t: 4,
                block_x: 4,
                block_y: 4,
            };
            a.run(&exec);
            let wf = a.final_field();
            assert!(
                base.bit_equal(&wf),
                "so={so}: WTB must be bitwise identical, max diff {}",
                base.max_abs_diff(&wf)
            );
        }
    }

    #[test]
    fn diagonal_matches_baseline_bitwise() {
        for so in [4usize, 8] {
            let mut a = small_setup(so, 16);
            a.run(&Execution::baseline().sequential());
            let base = a.final_field();

            let mut exec = Execution::wavefront_diagonal_default().sequential();
            exec.schedule = Schedule::WavefrontDiagonal {
                tile_x: 8,
                tile_y: 8,
                tile_t: 4,
                block_x: 4,
                block_y: 4,
            };
            a.run(&exec);
            let dg = a.final_field();
            assert!(
                base.bit_equal(&dg),
                "so={so}: diagonal WTB must be bitwise identical, max diff {}",
                base.max_abs_diff(&dg)
            );
        }
    }

    #[test]
    fn diagonal_parallel_matches_sequential_bitwise() {
        let mut a = small_setup(4, 12);
        let mut exec = Execution::wavefront_diagonal_default().sequential();
        exec.schedule = Schedule::WavefrontDiagonal {
            tile_x: 8,
            tile_y: 8,
            tile_t: 4,
            block_x: 4,
            block_y: 4,
        };
        a.run(&exec);
        let seq = a.final_field();
        exec.policy = tempest_par::Policy::Parallel;
        a.run(&exec);
        let par = a.final_field();
        assert!(
            seq.bit_equal(&par),
            "concurrent diagonal tiles must not change the wavefield, max diff {}",
            seq.max_abs_diff(&par)
        );
    }

    #[test]
    fn dataflow_matches_diagonal_bitwise_across_policies() {
        // Tentpole acceptance: the dependency-driven executor must reproduce
        // the diagonal-barrier executor bit-for-bit under every policy,
        // including capped worker counts that force stealing imbalance.
        use tempest_par::Policy;
        for so in [4usize, 8] {
            let mut a = small_setup(so, 16);
            let mut dg = Execution::wavefront_diagonal_default().sequential();
            dg.schedule = Schedule::WavefrontDiagonal {
                tile_x: 8,
                tile_y: 8,
                tile_t: 4,
                block_x: 4,
                block_y: 4,
            };
            a.run(&dg);
            let want = a.final_field();
            for pol in [
                Policy::Sequential,
                Policy::Parallel,
                Policy::Capped { threads: 1 },
                Policy::Capped { threads: 2 },
                Policy::Capped { threads: 4 },
            ] {
                let mut df = dg;
                df.schedule = Schedule::WavefrontDataflow {
                    tile_x: 8,
                    tile_y: 8,
                    tile_t: 4,
                    block_x: 4,
                    block_y: 4,
                };
                df.policy = pol;
                a.run(&df);
                let got = a.final_field();
                assert!(
                    want.bit_equal(&got),
                    "so={so} policy={pol:?}: dataflow must match diagonal bitwise, max diff {}",
                    want.max_abs_diff(&got)
                );
            }
        }
    }

    #[test]
    fn dataflow_fused_sparse_modes_agree_bitwise() {
        // Fused source/receiver work must land on the correct vt regardless
        // of the order in which workers claim ready tiles.
        let mut a = small_setup(4, 12);
        let mut e1 = Execution::wavefront_dataflow_default();
        e1.schedule = Schedule::WavefrontDataflow {
            tile_x: 8,
            tile_y: 8,
            tile_t: 4,
            block_x: 8,
            block_y: 8,
        };
        e1.policy = tempest_par::Policy::Parallel;
        let mut e2 = e1;
        e1.sparse = SparseMode::Fused;
        e2.sparse = SparseMode::FusedCompressed;
        a.run(&e1);
        let f1 = a.final_field();
        a.run(&e2);
        let f2 = a.final_field();
        assert!(f1.bit_equal(&f2), "Listing 4 vs 5 under dataflow executor");
    }

    #[test]
    fn dataflow_tile_t_one_degrades_to_spaceblocked_bitwise() {
        // tile_t = 1: the dependency graph links consecutive timesteps only,
        // so the schedule must reduce to per-timestep spatial blocking.
        let mut a = small_setup(4, 10);
        let mut sb = Execution::baseline().sequential();
        sb.schedule = Schedule::SpaceBlocked {
            block_x: 4,
            block_y: 4,
        };
        sb.sparse = SparseMode::Fused;
        a.run(&sb);
        let base = a.final_field();
        let mut df = Execution::wavefront_dataflow_default();
        df.schedule = Schedule::WavefrontDataflow {
            tile_x: 8,
            tile_y: 8,
            tile_t: 1,
            block_x: 4,
            block_y: 4,
        };
        df.sparse = SparseMode::Fused;
        df.policy = tempest_par::Policy::Capped { threads: 2 };
        a.run(&df);
        let f = a.final_field();
        assert!(
            base.bit_equal(&f),
            "tile_t=1 dataflow must equal space blocking, max diff {}",
            base.max_abs_diff(&f)
        );
    }

    #[test]
    fn diamond_matches_dataflow_bitwise_across_policies() {
        // Tentpole acceptance: the diamond schedule must reproduce the
        // dataflow executor bit-for-bit under every policy. Width 24 at
        // tile_t 3 gives slope 4, legal for both space orders (radii 2, 4).
        use crate::operator::DiamondAxis;
        use tempest_par::Policy;
        for so in [4usize, 8] {
            let mut a = small_setup(so, 16);
            let mut df = Execution::wavefront_dataflow_default().sequential();
            df.schedule = Schedule::WavefrontDataflow {
                tile_x: 8,
                tile_y: 8,
                tile_t: 4,
                block_x: 4,
                block_y: 4,
            };
            a.run(&df);
            let want = a.final_field();
            for axis in [DiamondAxis::X, DiamondAxis::Y] {
                for pol in [
                    Policy::Sequential,
                    Policy::Parallel,
                    Policy::Capped { threads: 1 },
                    Policy::Capped { threads: 2 },
                    Policy::Capped { threads: 4 },
                ] {
                    let mut dm = df;
                    dm.schedule = Schedule::Diamond {
                        width: 24,
                        tile_t: 3,
                        tile_c: 8,
                        axis,
                        block_x: 4,
                        block_y: 4,
                    };
                    dm.policy = pol;
                    a.run(&dm);
                    let got = a.final_field();
                    assert!(
                        want.bit_equal(&got),
                        "so={so} axis={axis:?} policy={pol:?}: diamond must match \
                         dataflow bitwise, max diff {}",
                        want.max_abs_diff(&got)
                    );
                }
            }
        }
    }

    #[test]
    fn diamond_fused_sparse_modes_agree_bitwise() {
        // Fused source/receiver work clipped to diamond extents must land on
        // the correct vt regardless of tile claim order.
        use crate::operator::DiamondAxis;
        let mut a = small_setup(4, 12);
        let mut e1 = Execution::diamond_default();
        e1.schedule = Schedule::Diamond {
            width: 24,
            tile_t: 3,
            tile_c: 8,
            axis: DiamondAxis::X,
            block_x: 8,
            block_y: 8,
        };
        e1.policy = tempest_par::Policy::Parallel;
        let mut e2 = e1;
        e1.sparse = SparseMode::Fused;
        e2.sparse = SparseMode::FusedCompressed;
        a.run(&e1);
        let f1 = a.final_field();
        a.run(&e2);
        let f2 = a.final_field();
        assert!(f1.bit_equal(&f2), "Listing 4 vs 5 under diamond executor");
    }

    #[test]
    fn diamond_tile_t_one_degrades_to_spaceblocked_bitwise() {
        // tile_t = 1: diamonds flatten to width-wide strips linked across
        // consecutive timesteps — per-timestep spatial blocking.
        use crate::operator::DiamondAxis;
        let mut a = small_setup(4, 10);
        let mut sb = Execution::baseline().sequential();
        sb.schedule = Schedule::SpaceBlocked {
            block_x: 4,
            block_y: 4,
        };
        sb.sparse = SparseMode::Fused;
        a.run(&sb);
        let base = a.final_field();
        let mut dm = Execution::diamond_default();
        dm.schedule = Schedule::Diamond {
            width: 8,
            tile_t: 1,
            tile_c: 8,
            axis: DiamondAxis::Y,
            block_x: 4,
            block_y: 4,
        };
        dm.sparse = SparseMode::Fused;
        dm.policy = tempest_par::Policy::Capped { threads: 2 };
        a.run(&dm);
        let f = a.final_field();
        assert!(
            base.bit_equal(&f),
            "tile_t=1 diamond must equal space blocking, max diff {}",
            base.max_abs_diff(&f)
        );
    }

    #[test]
    #[should_panic(expected = "Fig. 4b")]
    fn classic_sparse_under_diamond_panics() {
        let mut a = small_setup(4, 8);
        let mut e = Execution::diamond_default();
        e.sparse = SparseMode::Classic;
        a.run(&e);
    }

    #[test]
    fn diagonal_fused_sparse_modes_agree_bitwise() {
        // Fused source/receiver work must land on the correct vt regardless
        // of which tile of a diagonal reaches a pencil.
        let mut a = small_setup(4, 12);
        let mut e1 = Execution::wavefront_diagonal_default().sequential();
        e1.schedule = Schedule::WavefrontDiagonal {
            tile_x: 8,
            tile_y: 8,
            tile_t: 4,
            block_x: 8,
            block_y: 8,
        };
        e1.policy = tempest_par::Policy::Parallel;
        let mut e2 = e1;
        e1.sparse = SparseMode::Fused;
        e2.sparse = SparseMode::FusedCompressed;
        a.run(&e1);
        let f1 = a.final_field();
        a.run(&e2);
        let f2 = a.final_field();
        assert!(f1.bit_equal(&f2), "Listing 4 vs 5 under diagonal executor");
    }

    #[test]
    fn diagonal_tile_t_one_degrades_to_spaceblocked_bitwise() {
        // tile_t = 1: every diagonal pass is one slab per tile at a single
        // vt — the schedule is per-timestep spatial blocking.
        let mut a = small_setup(4, 10);
        let mut sb = Execution::baseline().sequential();
        sb.schedule = Schedule::SpaceBlocked {
            block_x: 4,
            block_y: 4,
        };
        sb.sparse = SparseMode::Fused;
        a.run(&sb);
        let base = a.final_field();
        let mut dg = Execution::wavefront_diagonal_default().sequential();
        dg.schedule = Schedule::WavefrontDiagonal {
            tile_x: 8,
            tile_y: 8,
            tile_t: 1,
            block_x: 4,
            block_y: 4,
        };
        dg.sparse = SparseMode::Fused;
        a.run(&dg);
        let f = a.final_field();
        assert!(
            base.bit_equal(&f),
            "tile_t=1 diagonal must equal space blocking, max diff {}",
            base.max_abs_diff(&f)
        );
    }

    #[test]
    fn skewed_only_spec_under_diagonal_degrades_to_spaceblocked_bitwise() {
        // One spatial tile covering the whole skewed domain (skewed_only):
        // every slab is a full-grid sweep, so the diagonal executor must
        // reproduce the spatially blocked result exactly.
        let n = 24;
        let (tile_t, so) = (4usize, 4usize);
        let skew = so / 2;
        let mut a = small_setup(so, 12);
        let mut sb = Execution::baseline().sequential();
        sb.schedule = Schedule::SpaceBlocked {
            block_x: 8,
            block_y: 8,
        };
        sb.sparse = SparseMode::Fused;
        a.run(&sb);
        let base = a.final_field();
        let spec = tempest_tiling::WavefrontSpec::skewed_only(
            Shape::cube(n),
            tile_t,
            skew,
            8,
            8,
        );
        let mut dg = Execution::wavefront_diagonal_default().sequential();
        dg.schedule = Schedule::WavefrontDiagonal {
            tile_x: spec.tile_x,
            tile_y: spec.tile_y,
            tile_t,
            block_x: 8,
            block_y: 8,
        };
        dg.sparse = SparseMode::Fused;
        a.run(&dg);
        let f = a.final_field();
        assert!(
            base.bit_equal(&f),
            "skewed-only diagonal must equal space blocking, max diff {}",
            base.max_abs_diff(&f)
        );
    }

    #[test]
    fn fused_uncompressed_matches_compressed_bitwise() {
        let mut a = small_setup(4, 12);
        let mut e1 = Execution::wavefront_default().sequential();
        e1.schedule = Schedule::Wavefront {
            tile_x: 8,
            tile_y: 8,
            tile_t: 4,
            block_x: 8,
            block_y: 8,
        };
        let mut e2 = e1;
        e1.sparse = SparseMode::Fused;
        e2.sparse = SparseMode::FusedCompressed;
        a.run(&e1);
        let f1 = a.final_field();
        let t1 = a.trace().unwrap();
        a.run(&e2);
        let f2 = a.final_field();
        let t2 = a.trace().unwrap();
        assert!(f1.bit_equal(&f2), "Listing 4 vs Listing 5 must agree");
        for t in 0..t1.dims()[0] {
            for r in 0..t1.dims()[1] {
                assert_eq!(t1.get(t, r).to_bits(), t2.get(t, r).to_bits());
            }
        }
    }

    #[test]
    fn traces_agree_between_schedules() {
        let mut a = small_setup(4, 20);
        a.run(&Execution::baseline().sequential());
        let t_base = a.trace().unwrap();
        let mut exec = Execution::wavefront_default().sequential();
        exec.schedule = Schedule::Wavefront {
            tile_x: 12,
            tile_y: 12,
            tile_t: 5,
            block_x: 6,
            block_y: 6,
        };
        a.run(&exec);
        let t_wf = a.trace().unwrap();
        // Diagonal executor, parallel: trace accumulation order may differ
        // (atomic adds), so compare with the same tolerance.
        exec.schedule = Schedule::WavefrontDiagonal {
            tile_x: 12,
            tile_y: 12,
            tile_t: 5,
            block_x: 6,
            block_y: 6,
        };
        exec.policy = tempest_par::Policy::Parallel;
        a.run(&exec);
        let t_dg = a.trace().unwrap();
        let scale = t_base
            .as_slice()
            .iter()
            .fold(0.0f32, |s, &v| s.max(v.abs()))
            .max(1e-20);
        for t in 0..t_base.dims()[0] {
            for r in 0..t_base.dims()[1] {
                let d = (t_base.get(t, r) - t_wf.get(t, r)).abs();
                assert!(
                    d <= 1e-4 * scale,
                    "trace[{t}][{r}]: {} vs {}",
                    t_base.get(t, r),
                    t_wf.get(t, r)
                );
                let d = (t_base.get(t, r) - t_dg.get(t, r)).abs();
                assert!(
                    d <= 1e-4 * scale,
                    "diag trace[{t}][{r}]: {} vs {}",
                    t_base.get(t, r),
                    t_dg.get(t, r)
                );
            }
        }
    }

    #[test]
    fn multi_source_agreement_within_tolerance() {
        let domain = Domain::uniform(Shape::cube(20), 10.0);
        let model = Model::two_layer(domain, 1800.0, 2500.0, 0.5);
        let cfg = SimConfig::new(domain, 4, EquationKind::Acoustic, 2500.0, 60.0)
            .with_nt(14)
            .with_f0(25.0);
        // Sources dense enough to share affected grid points.
        let src = SparsePoints::dense_layout(&domain, 8, 0.5);
        let mut a = Acoustic::new(&model, cfg, src, None);
        a.run(&Execution::baseline().sequential());
        let base = a.final_field();
        let mut exec = Execution::wavefront_default().sequential();
        exec.schedule = Schedule::Wavefront {
            tile_x: 8,
            tile_y: 8,
            tile_t: 4,
            block_x: 8,
            block_y: 8,
        };
        a.run(&exec);
        let wf = a.final_field();
        let diff = base.max_abs_diff(&wf);
        let scale = base.max_abs().max(1e-20);
        assert!(diff <= 1e-4 * scale, "rel diff {}", diff / scale);

        // Diagonal execution with the same tile geometry is bitwise equal
        // to slab-ordered wave-front execution even with sources dense
        // enough that neighbouring tiles share affected pencils.
        exec.sparse = SparseMode::FusedCompressed;
        a.run(&exec);
        let wf = a.final_field();
        exec.schedule = Schedule::WavefrontDiagonal {
            tile_x: 8,
            tile_y: 8,
            tile_t: 4,
            block_x: 8,
            block_y: 8,
        };
        exec.policy = tempest_par::Policy::Parallel;
        a.run(&exec);
        let dg = a.final_field();
        assert!(
            wf.bit_equal(&dg),
            "diagonal multi-source must be bitwise, max diff {}",
            wf.max_abs_diff(&dg)
        );
    }

    #[test]
    fn damping_reduces_boundary_energy() {
        let domain = Domain::uniform(Shape::cube(20), 10.0);
        let model = Model::homogeneous(domain, 2000.0);
        let mk = |damp: f32| {
            let cfg = SimConfig::new(domain, 4, EquationKind::Acoustic, 2000.0, 100.0)
                .with_nt(60)
                .with_f0(30.0)
                .with_boundary(if damp > 0.0 { 6 } else { 0 }, damp);
            Acoustic::new(
                &model,
                cfg,
                SparsePoints::single_center(&domain, 0.3),
                None,
            )
        };
        let mut free = mk(0.0);
        free.run(&Execution::baseline().sequential());
        let e_free = free.final_field().norm_l2();
        let mut damped = mk(0.5);
        damped.run(&Execution::baseline().sequential());
        let e_damped = damped.final_field().norm_l2();
        assert!(
            e_damped < e_free,
            "sponge must absorb energy: {e_damped} !< {e_free}"
        );
    }

    #[test]
    fn repeated_runs_are_reproducible() {
        let mut a = small_setup(4, 10);
        let e = Execution::baseline().sequential();
        a.run(&e);
        let f1 = a.final_field();
        a.run(&e);
        let f2 = a.final_field();
        assert!(f1.bit_equal(&f2), "run() must reset state");
    }

    #[test]
    fn run_recording_snapshots_are_consistent() {
        let mut a = small_setup(4, 12);
        let snaps = a.run_recording(&Execution::baseline().sequential(), 3);
        assert_eq!(snaps.len(), 4, "12 steps / every 3");
        // Last snapshot is the final field.
        let final_field = a.final_field();
        assert!(snaps[3].bit_equal(&final_field));
        // Snapshots differ over time (the wave moves).
        assert!(snaps[0].max_abs_diff(&snaps[3]) > 0.0);
        // And a plain run reproduces the same final state.
        a.run(&Execution::baseline().sequential());
        assert!(a.final_field().bit_equal(&final_field));
    }

    #[test]
    fn custom_wavelets_equal_ricker_when_identical() {
        let domain = Domain::uniform(Shape::cube(16), 10.0);
        let model = Model::homogeneous(domain, 2000.0);
        let cfg = SimConfig::new(domain, 4, EquationKind::Acoustic, 2000.0, 40.0)
            .with_nt(10)
            .with_f0(25.0);
        let src = SparsePoints::single_center(&domain, 0.4);
        let mut a = Acoustic::new(&model, cfg.clone(), src.clone(), None);
        a.run(&Execution::baseline().sequential());
        let fa = a.final_field();
        // Same wavelet supplied explicitly.
        let wl = tempest_sparse::ricker(25.0, cfg.dt, 10);
        let wm = tempest_sparse::wavelet::wavelet_matrix(&wl, 1);
        let mut b = Acoustic::new_with_wavelets(&model, cfg, src, wm, None);
        b.run(&Execution::baseline().sequential());
        assert!(fa.bit_equal(&b.final_field()));
    }

    #[test]
    #[should_panic(expected = "Fig. 4b")]
    fn classic_sparse_under_wavefront_panics() {
        let mut a = small_setup(4, 8);
        let mut e = Execution::wavefront_default();
        e.sparse = SparseMode::Classic;
        a.run(&e);
    }

    #[test]
    fn wavefront_parallel_matches_sequential() {
        let mut a = small_setup(4, 12);
        let mut exec = Execution::wavefront_default().sequential();
        exec.schedule = Schedule::Wavefront {
            tile_x: 8,
            tile_y: 8,
            tile_t: 4,
            block_x: 4,
            block_y: 4,
        };
        a.run(&exec);
        let seq = a.final_field();
        exec.policy = tempest_par::Policy::Parallel;
        a.run(&exec);
        let par = a.final_field();
        assert!(seq.bit_equal(&par), "block parallelism must not change results");
    }
}
