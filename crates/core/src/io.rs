//! Lightweight result export: shot gathers and wavefield slices as CSV,
//! so harness and example outputs can be plotted externally.

use std::io::Write as _;
use std::path::Path;

use tempest_grid::{Array2, Array3};

/// Write a trace matrix (`nt × receivers`) as CSV with a time column.
///
/// Columns: `t_s, r0, r1, …` — one row per timestep.
pub fn write_trace_csv(path: &Path, trace: &Array2<f32>, dt: f32) -> std::io::Result<()> {
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    let [nt, nr] = trace.dims();
    write!(f, "t_s")?;
    for r in 0..nr {
        write!(f, ",r{r}")?;
    }
    writeln!(f)?;
    for t in 0..nt {
        write!(f, "{}", t as f32 * dt)?;
        for r in 0..nr {
            write!(f, ",{}", trace.get(t, r))?;
        }
        writeln!(f)?;
    }
    Ok(())
}

/// Write one z-slice of a wavefield as CSV (`nx` rows × `ny` columns).
pub fn write_slice_csv(path: &Path, field: &Array3<f32>, z: usize) -> std::io::Result<()> {
    let [nx, ny, nz] = field.dims();
    assert!(z < nz, "z slice out of range");
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    for x in 0..nx {
        let row: Vec<String> = (0..ny).map(|y| field.get(x, y, z).to_string()).collect();
        writeln!(f, "{}", row.join(","))?;
    }
    Ok(())
}

/// Parse a trace CSV produced by [`write_trace_csv`] (round-trip tests and
/// external tooling).
pub fn read_trace_csv(path: &Path) -> std::io::Result<(Array2<f32>, f32)> {
    let text = std::fs::read_to_string(path)?;
    let mut lines = text.lines();
    let header = lines.next().ok_or(std::io::ErrorKind::InvalidData)?;
    let nr = header.split(',').count() - 1;
    let rows: Vec<Vec<f32>> = lines
        .map(|l| {
            l.split(',')
                .map(|v| v.parse::<f32>().unwrap_or(f32::NAN))
                .collect()
        })
        .collect();
    let nt = rows.len();
    assert!(nt >= 2 && nr >= 1, "degenerate trace file");
    let dt = rows[1][0] - rows[0][0];
    let mut out = Array2::zeros(nt, nr);
    for (t, row) in rows.iter().enumerate() {
        for r in 0..nr {
            out.set(t, r, row[r + 1]);
        }
    }
    Ok((out, dt))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_csv_roundtrip() {
        let mut tr = Array2::<f32>::zeros(4, 3);
        for t in 0..4 {
            for r in 0..3 {
                tr.set(t, r, (t * 10 + r) as f32 * 0.5 - 1.0);
            }
        }
        let dir = std::env::temp_dir();
        let path = dir.join("tempest_trace_roundtrip.csv");
        write_trace_csv(&path, &tr, 0.002).unwrap();
        let (back, dt) = read_trace_csv(&path).unwrap();
        assert!((dt - 0.002).abs() < 1e-6);
        assert_eq!(back.dims(), [4, 3]);
        for t in 0..4 {
            for r in 0..3 {
                assert_eq!(back.get(t, r), tr.get(t, r));
            }
        }
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn slice_csv_shape() {
        let mut f3 = Array3::<f32>::zeros(3, 4, 2);
        f3.set(1, 2, 1, 7.5);
        let path = std::env::temp_dir().join("tempest_slice.csv");
        write_slice_csv(&path, &f3, 1).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0].split(',').count(), 4);
        assert!(lines[1].split(',').nth(2).unwrap().starts_with("7.5"));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn slice_bounds_checked() {
        let f3 = Array3::<f32>::zeros(2, 2, 2);
        let _ = write_slice_csv(&std::env::temp_dir().join("x.csv"), &f3, 5);
    }
}
