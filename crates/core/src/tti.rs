//! Anisotropic acoustic (TTI) wave propagator (paper §III-B).
//!
//! The pseudo-acoustic tilted transversely isotropic system is a coupled
//! pair of scalar PDEs in `(p, q)` with a *rotated* anisotropic Laplacian:
//! with the rotated vertical derivative
//! `D_z̄ = sinθcosφ·∂x + sinθsinφ·∂y + cosθ·∂z` (Eq. 2 gives the conjugate
//! horizontal operator) and `G_z̄z̄ = D_z̄ᵀD_z̄`, `G_h = Δ − G_z̄z̄`:
//!
//! ```text
//! m·p_tt + η·p_t = (1 + 2ε)·G_h p + √(1+2δ)·G_z̄z̄ q + src
//! m·q_tt + η·q_t = √(1+2δ)·G_h p +            G_z̄z̄ q + src
//! ```
//!
//! Expanding `G_z̄z̄` with spatially varying angles yields, per point and per
//! field, three straight second derivatives plus three *mixed* derivatives
//! whose footprint is the `(2r)²` outer product of first-derivative stencils
//! — this is why the TTI kernel "increases the operation count drastically"
//! and sits far right of the acoustic kernel on the roofline (Fig. 11).
//! The six rotation coefficients are precomputed into parameter volumes, so
//! the hot loop is trigonometry-free.

use std::time::Instant;

use crate::config::SimConfig;
use crate::operator::{Execution, KernelPath, RunStats, Schedule, SparseMode, WaveSolver};
use crate::shared::LevelRing;
use crate::sources::{ReceiverBundle, SourceBundle};
use crate::trace::TraceBuffer;
use tempest_obs as obs;
use tempest_grid::{Array2, Array3, DampingMask, Range3, Shape, TtiModel};
use tempest_sparse::SparsePoints;
use tempest_stencil::kernels::{
    cross_diff_r, first_derivative_weights, second_diff_axis_r, AxisWeights,
};
use tempest_stencil::metrics::tti_cost;
use tempest_stencil::simd::LANE;
use tempest_stencil::Backend;
use tempest_tiling::{diamond, spaceblock, wavefront};

/// The TTI pseudo-acoustic propagator.
pub struct Tti {
    cfg: SimConfig,
    p: LevelRing,
    q: LevelRing,
    c1: Array3<f32>,
    c2: Array3<f32>,
    c3: Array3<f32>,
    /// `1 + 2ε` per point.
    eps2: Array3<f32>,
    /// `√(1 + 2δ)` per point.
    delta_bar: Array3<f32>,
    /// Rotation coefficients of `G_z̄z̄`: a², b², c², 2ab, 2ac, 2bc with
    /// `(a, b, c) = (sinθcosφ, sinθsinφ, cosθ)`.
    gz: [Array3<f32>; 6],
    // Second-derivative axis weights (straight terms).
    wxx: AxisWeights,
    wyy: AxisWeights,
    wzz: AxisWeights,
    // First-derivative antisymmetric weights (cross terms).
    w1x: Vec<f32>,
    w1y: Vec<f32>,
    w1z: Vec<f32>,
    radius: usize,
    src: SourceBundle,
    rec: Option<ReceiverBundle>,
    trace: Option<TraceBuffer>,
}

impl Tti {
    /// Build a propagator over `model` with the given sources and optional
    /// receivers (receivers record `p`).
    pub fn new(
        model: &TtiModel,
        cfg: SimConfig,
        sources: SparsePoints,
        receivers: Option<SparsePoints>,
    ) -> Self {
        assert_eq!(model.shape(), cfg.shape(), "model/config shape mismatch");
        let shape = cfg.shape();
        let radius = cfg.radius();
        let h = cfg.domain.spacing();
        let wxx = AxisWeights::second_derivative(cfg.space_order, h[0]);
        let wyy = AxisWeights::second_derivative(cfg.space_order, h[1]);
        let wzz = AxisWeights::second_derivative(cfg.space_order, h[2]);
        let w1x = first_derivative_weights(cfg.space_order, h[0]);
        let w1y = first_derivative_weights(cfg.space_order, h[1]);
        let w1z = first_derivative_weights(cfg.space_order, h[2]);

        let damp = DampingMask::sponge(shape, cfg.nbl, cfg.damp_coeff);
        let dt2 = cfg.dt * cfg.dt;
        let n = shape.len();
        let mut c1 = Array3::from_shape(shape);
        let mut c2 = Array3::from_shape(shape);
        let mut c3 = Array3::from_shape(shape);
        let mut eps2 = Array3::from_shape(shape);
        let mut delta_bar = Array3::from_shape(shape);
        let mut gz: [Array3<f32>; 6] = std::array::from_fn(|_| Array3::from_shape(shape));
        for i in 0..n {
            let eta = damp.damp.as_slice()[i];
            let m = model.m.as_slice()[i];
            let inv = 1.0 / (1.0 + eta);
            c1.as_mut_slice()[i] = 2.0 * inv;
            c2.as_mut_slice()[i] = (1.0 - eta) * inv;
            c3.as_mut_slice()[i] = dt2 / m * inv;
            eps2.as_mut_slice()[i] = 1.0 + 2.0 * model.epsilon.as_slice()[i];
            delta_bar.as_mut_slice()[i] = (1.0 + 2.0 * model.delta.as_slice()[i]).sqrt();
            let th = model.theta.as_slice()[i];
            let ph = model.phi.as_slice()[i];
            let (st, ct) = th.sin_cos();
            let (sp, cp) = ph.sin_cos();
            let (a, b, c) = (st * cp, st * sp, ct);
            gz[0].as_mut_slice()[i] = a * a;
            gz[1].as_mut_slice()[i] = b * b;
            gz[2].as_mut_slice()[i] = c * c;
            gz[3].as_mut_slice()[i] = 2.0 * a * b;
            gz[4].as_mut_slice()[i] = 2.0 * a * c;
            gz[5].as_mut_slice()[i] = 2.0 * b * c;
        }

        let src = SourceBundle::with_ricker(&cfg.domain, sources, cfg.f0, cfg.dt, cfg.nt);
        let rec = receivers.map(|r| ReceiverBundle::new(&cfg.domain, r));
        let trace = rec
            .as_ref()
            .map(|r| TraceBuffer::new(cfg.nt, r.num_receivers()));
        Tti {
            p: LevelRing::new_lane_aligned(shape, radius, 3, LANE),
            q: LevelRing::new_lane_aligned(shape, radius, 3, LANE),
            cfg,
            c1,
            c2,
            c3,
            eps2,
            delta_bar,
            gz,
            wxx,
            wyy,
            wzz,
            w1x,
            w1y,
            w1z,
            radius,
            src,
            rec,
            trace,
        }
    }

    /// The simulation configuration.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// The source bundle (inspection / exact-count oracles).
    pub fn sources(&self) -> &SourceBundle {
        &self.src
    }

    /// The receiver bundle, when receivers were attached.
    pub fn receivers(&self) -> Option<&ReceiverBundle> {
        self.rec.as_ref()
    }

    fn reset(&mut self) {
        self.p.clear();
        self.q.clear();
        if let Some(t) = self.trace.as_mut() {
            t.clear();
        }
    }

    fn step_region(&self, k: usize, region: &Range3, mode: SparseMode, kernel: KernelPath) {
        let _sp = obs::trace::span(obs::trace::SpanKind::Stencil, obs::trace::SpanArgs::step(k));
        match (kernel.resolve(), self.radius) {
            (Backend::Scalar, 2) => self.step_r::<2>(k, region, mode),
            (Backend::Scalar, 4) => self.step_r::<4>(k, region, mode),
            (Backend::Scalar, 6) => self.step_r::<6>(k, region, mode),
            (backend, 2) => self.step_pencil_r::<2>(k, region, mode, backend),
            (backend, 4) => self.step_pencil_r::<4>(k, region, mode, backend),
            (backend, 6) => self.step_pencil_r::<6>(k, region, mode, backend),
            _ => panic!(
                "TTI propagator supports space orders 4, 8, 12 (radius {}, got order {})",
                self.radius, self.cfg.space_order
            ),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn step_r<const R: usize>(&self, k: usize, region: &Range3, mode: SparseMode) {
        let sw = obs::start(obs::Phase::Stencil);
        // One update per grid point: the coupled p/q pair counts once.
        obs::add(obs::Counter::StencilUpdates, region.len() as u64);
        // SAFETY: see `Acoustic::step_r` — identical schedule contract, two
        // fields updated together from their own older levels.
        let p0 = unsafe { self.p.level(k + 1) };
        let pm = unsafe { self.p.level(k) };
        let q0 = unsafe { self.q.level(k + 1) };
        let qm = unsafe { self.q.level(k) };
        let (sx, sy) = (self.p.sx(), self.p.sy());
        let w1x: [f32; R] = self.w1x[..].try_into().expect("radius mismatch");
        let w1y: [f32; R] = self.w1y[..].try_into().expect("radius mismatch");
        let w1z: [f32; R] = self.w1z[..].try_into().expect("radius mismatch");
        // Fixed-size side weights so the straight-derivative loops unroll.
        let wxx: [f32; R] = self.wxx.side[..].try_into().expect("radius mismatch");
        let wyy: [f32; R] = self.wyy.side[..].try_into().expect("radius mismatch");
        let wzz: [f32; R] = self.wzz.side[..].try_into().expect("radius mismatch");
        let (cxx, cyy, czz) = (self.wxx.center, self.wyy.center, self.wzz.center);
        for x in region.x0..region.x1 {
            for y in region.y0..region.y1 {
                let pn = unsafe { self.p.pencil_mut(k + 2, x, y) };
                let qn = unsafe { self.q.pencil_mut(k + 2, x, y) };
                let base = self.p.idx(x, y, 0);
                let c1r = self.c1.pencil(x, y);
                let c2r = self.c2.pencil(x, y);
                let c3r = self.c3.pencil(x, y);
                let er = self.eps2.pencil(x, y);
                let dr = self.delta_bar.pencil(x, y);
                let g0 = self.gz[0].pencil(x, y);
                let g1 = self.gz[1].pencil(x, y);
                let g2 = self.gz[2].pencil(x, y);
                let g3 = self.gz[3].pencil(x, y);
                let g4 = self.gz[4].pencil(x, y);
                let g5 = self.gz[5].pencil(x, y);
                for z in region.z0..region.z1 {
                    let i = base + z;
                    // Straight second derivatives of p (give Δp and feed Gz̄z̄).
                    let pxx = second_diff_axis_r::<R>(p0, i, sx, cxx, &wxx);
                    let pyy = second_diff_axis_r::<R>(p0, i, sy, cyy, &wyy);
                    let pzz = second_diff_axis_r::<R>(p0, i, 1, czz, &wzz);
                    // Mixed derivatives of p.
                    let pxy = cross_diff_r::<R>(p0, i, sx, sy, &w1x, &w1y);
                    let pxz = cross_diff_r::<R>(p0, i, sx, 1, &w1x, &w1z);
                    let pyz = cross_diff_r::<R>(p0, i, sy, 1, &w1y, &w1z);
                    // Same for q.
                    let qxx = second_diff_axis_r::<R>(q0, i, sx, cxx, &wxx);
                    let qyy = second_diff_axis_r::<R>(q0, i, sy, cyy, &wyy);
                    let qzz = second_diff_axis_r::<R>(q0, i, 1, czz, &wzz);
                    let qxy = cross_diff_r::<R>(q0, i, sx, sy, &w1x, &w1y);
                    let qxz = cross_diff_r::<R>(q0, i, sx, 1, &w1x, &w1z);
                    let qyz = cross_diff_r::<R>(q0, i, sy, 1, &w1y, &w1z);

                    let gzz_p = g0[z] * pxx
                        + g1[z] * pyy
                        + g2[z] * pzz
                        + g3[z] * pxy
                        + g4[z] * pxz
                        + g5[z] * pyz;
                    let gzz_q = g0[z] * qxx
                        + g1[z] * qyy
                        + g2[z] * qzz
                        + g3[z] * qxy
                        + g4[z] * qxz
                        + g5[z] * qyz;
                    let gh_p = (pxx + pyy + pzz) - gzz_p;

                    let rhs_p = er[z] * gh_p + dr[z] * gzz_q;
                    let rhs_q = dr[z] * gh_p + gzz_q;
                    pn[z] = c1r[z] * p0[i] - c2r[z] * pm[i] + c3r[z] * rhs_p;
                    qn[z] = c1r[z] * q0[i] - c2r[z] * qm[i] + c3r[z] * rhs_q;
                }
                self.fused_sparse(k, x, y, region, pn, qn, c3r, mode);
            }
        }
        sw.stop();
    }

    /// Pencil-kernel twin of [`step_r`](Self::step_r): the twelve derivative
    /// volumes per point (six per field) become twelve whole-row kernel
    /// calls per `z`-row, followed by one combine loop that replays the
    /// scalar accumulation chain term-for-term — results stay bitwise equal.
    #[allow(clippy::too_many_arguments)]
    fn step_pencil_r<const R: usize>(
        &self,
        k: usize,
        region: &Range3,
        mode: SparseMode,
        backend: Backend,
    ) {
        let sw = obs::start(obs::Phase::Stencil);
        obs::add(obs::Counter::StencilUpdates, region.len() as u64);
        obs::add(
            obs::Counter::PencilRows,
            ((region.x1 - region.x0) * (region.y1 - region.y0)) as u64,
        );
        // SAFETY: see `step_r` — identical schedule contract.
        let p0 = unsafe { self.p.level(k + 1) };
        let pm = unsafe { self.p.level(k) };
        let q0 = unsafe { self.q.level(k + 1) };
        let qm = unsafe { self.q.level(k) };
        let (sx, sy) = (self.p.sx(), self.p.sy());
        let w1x: [f32; R] = self.w1x[..].try_into().expect("radius mismatch");
        let w1y: [f32; R] = self.w1y[..].try_into().expect("radius mismatch");
        let w1z: [f32; R] = self.w1z[..].try_into().expect("radius mismatch");
        let wxx: [f32; R] = self.wxx.side[..].try_into().expect("radius mismatch");
        let wyy: [f32; R] = self.wyy.side[..].try_into().expect("radius mismatch");
        let wzz: [f32; R] = self.wzz.side[..].try_into().expect("radius mismatch");
        let (cxx, cyy, czz) = (self.wxx.center, self.wyy.center, self.wzz.center);
        let n = region.z1 - region.z0;
        // Twelve derivative rows, reused across every pencil in the region.
        let mut d = vec![0.0f32; 12 * n];
        let (dp, dq) = d.split_at_mut(6 * n);
        let (pxx, r) = dp.split_at_mut(n);
        let (pyy, r) = r.split_at_mut(n);
        let (pzz, r) = r.split_at_mut(n);
        let (pxy, r) = r.split_at_mut(n);
        let (pxz, pyz) = r.split_at_mut(n);
        let (qxx, r) = dq.split_at_mut(n);
        let (qyy, r) = r.split_at_mut(n);
        let (qzz, r) = r.split_at_mut(n);
        let (qxy, r) = r.split_at_mut(n);
        let (qxz, qyz) = r.split_at_mut(n);
        for x in region.x0..region.x1 {
            for y in region.y0..region.y1 {
                let pn = unsafe { self.p.pencil_mut(k + 2, x, y) };
                let qn = unsafe { self.q.pencil_mut(k + 2, x, y) };
                let i0 = self.p.idx(x, y, region.z0);
                let c1r = self.c1.pencil(x, y);
                let c2r = self.c2.pencil(x, y);
                let c3r = self.c3.pencil(x, y);
                let er = self.eps2.pencil(x, y);
                let dr = self.delta_bar.pencil(x, y);
                let g0 = self.gz[0].pencil(x, y);
                let g1 = self.gz[1].pencil(x, y);
                let g2 = self.gz[2].pencil(x, y);
                let g3 = self.gz[3].pencil(x, y);
                let g4 = self.gz[4].pencil(x, y);
                let g5 = self.gz[5].pencil(x, y);
                backend.second_diff_row_r::<R>(p0, i0, sx, cxx, &wxx, pxx);
                backend.second_diff_row_r::<R>(p0, i0, sy, cyy, &wyy, pyy);
                backend.second_diff_row_r::<R>(p0, i0, 1, czz, &wzz, pzz);
                backend.cross_diff_row_r::<R>(p0, i0, sx, sy, &w1x, &w1y, pxy);
                backend.cross_diff_row_r::<R>(p0, i0, sx, 1, &w1x, &w1z, pxz);
                backend.cross_diff_row_r::<R>(p0, i0, sy, 1, &w1y, &w1z, pyz);
                backend.second_diff_row_r::<R>(q0, i0, sx, cxx, &wxx, qxx);
                backend.second_diff_row_r::<R>(q0, i0, sy, cyy, &wyy, qyy);
                backend.second_diff_row_r::<R>(q0, i0, 1, czz, &wzz, qzz);
                backend.cross_diff_row_r::<R>(q0, i0, sx, sy, &w1x, &w1y, qxy);
                backend.cross_diff_row_r::<R>(q0, i0, sx, 1, &w1x, &w1z, qxz);
                backend.cross_diff_row_r::<R>(q0, i0, sy, 1, &w1y, &w1z, qyz);
                for j in 0..n {
                    let z = region.z0 + j;
                    let i = i0 + j;
                    let gzz_p = g0[z] * pxx[j]
                        + g1[z] * pyy[j]
                        + g2[z] * pzz[j]
                        + g3[z] * pxy[j]
                        + g4[z] * pxz[j]
                        + g5[z] * pyz[j];
                    let gzz_q = g0[z] * qxx[j]
                        + g1[z] * qyy[j]
                        + g2[z] * qzz[j]
                        + g3[z] * qxy[j]
                        + g4[z] * qxz[j]
                        + g5[z] * qyz[j];
                    let gh_p = (pxx[j] + pyy[j] + pzz[j]) - gzz_p;
                    let rhs_p = er[z] * gh_p + dr[z] * gzz_q;
                    let rhs_q = dr[z] * gh_p + gzz_q;
                    pn[z] = c1r[z] * p0[i] - c2r[z] * pm[i] + c3r[z] * rhs_p;
                    qn[z] = c1r[z] * q0[i] - c2r[z] * qm[i] + c3r[z] * rhs_q;
                }
                self.fused_sparse(k, x, y, region, pn, qn, c3r, mode);
            }
        }
        sw.stop();
    }

    /// Fused source injection (into both fields, as Devito's TTI operator
    /// does) and receiver gather of `p`.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    fn fused_sparse(
        &self,
        k: usize,
        x: usize,
        y: usize,
        region: &Range3,
        pn: &mut [f32],
        qn: &mut [f32],
        c3r: &[f32],
        mode: SparseMode,
    ) {
        if mode == SparseMode::Classic {
            return;
        }
        let sw = obs::start(obs::Phase::Sparse);
        let mut sp = obs::trace::span(obs::trace::SpanKind::Sparse, obs::trace::SpanArgs::step(k));
        let mut injections = 0u64;
        let mut gathers = 0u64;
        match mode {
            SparseMode::Classic => return,
            SparseMode::Fused => {
                let dcmp = self.src.pre.dcmp_row(k);
                let sm = self.src.pre.sm_pencil(x, y);
                let sid = self.src.pre.sid_pencil(x, y);
                for z in region.z0..region.z1 {
                    if sm[z] != 0 {
                        let v = c3r[z] * dcmp[sid[z] as usize];
                        pn[z] += v;
                        qn[z] += v;
                        // The coupled p/q pair receives one injection.
                        injections += 1;
                    }
                }
            }
            SparseMode::FusedCompressed => {
                let dcmp = self.src.pre.dcmp_row(k);
                for (z, id) in self.src.comp.entries(x, y) {
                    if z >= region.z0 && z < region.z1 {
                        let v = c3r[z] * dcmp[id];
                        pn[z] += v;
                        qn[z] += v;
                        injections += 1;
                    }
                }
            }
        }
        if let (Some(rec), Some(trace)) = (self.rec.as_ref(), self.trace.as_ref()) {
            for (z, id) in rec.comp.entries(x, y) {
                if z >= region.z0 && z < region.z1 {
                    let v = pn[z];
                    let contribs = rec.pre.contributions(id);
                    gathers += contribs.len() as u64;
                    for &(r, w) in contribs {
                        trace.add(k, r as usize, w * v);
                    }
                }
            }
        }
        if injections + gathers == 0 {
            sp.cancel();
        }
        obs::add(obs::Counter::SourceInjections, injections);
        obs::add(obs::Counter::ReceiverGathers, gathers);
        sw.stop();
    }

    /// Classic per-timestep sparse operators (space-blocked baseline only).
    fn classic_after_step(&self, k: usize) {
        let sw = obs::start(obs::Phase::Sparse);
        let _sp = obs::trace::span(obs::trace::SpanKind::Sparse, obs::trace::SpanArgs::step(k));
        let mut injections = 0u64;
        let mut gathers = 0u64;
        for (st, &a) in self.src.stencils.iter().zip(self.src.amps_at(k)) {
            for (c, w) in st.nonzero() {
                let v = self.c3.get(c[0], c[1], c[2]) * (w * a);
                // SAFETY: single-threaded between sweeps.
                unsafe {
                    self.p.pencil_mut(k + 2, c[0], c[1])[c[2]] += v;
                    self.q.pencil_mut(k + 2, c[0], c[1])[c[2]] += v;
                }
                injections += 1;
            }
        }
        if let (Some(rec), Some(trace)) = (self.rec.as_ref(), self.trace.as_ref()) {
            let p = unsafe { self.p.level(k + 2) };
            for (r, st) in rec.stencils.iter().enumerate() {
                let mut acc = 0.0f32;
                for (c, w) in st.nonzero() {
                    acc += w * p[self.p.idx(c[0], c[1], c[2])];
                    gathers += 1;
                }
                trace.add(k, r, acc);
            }
        }
        obs::add(obs::Counter::SourceInjections, injections);
        obs::add(obs::Counter::ReceiverGathers, gathers);
        sw.stop();
    }
}

impl WaveSolver for Tti {
    fn name(&self) -> &'static str {
        "tti"
    }

    fn shape(&self) -> Shape {
        self.cfg.shape()
    }

    fn num_timesteps(&self) -> usize {
        self.cfg.nt
    }

    fn space_order(&self) -> usize {
        self.cfg.space_order
    }

    fn run(&mut self, exec: &Execution) -> RunStats {
        exec.validate();
        crate::operator::record_backend_run(exec.kernel.resolve());
        self.reset();
        let shape = self.shape();
        let nt = self.cfg.nt;
        let started = Instant::now();
        let this: &Tti = self;
        match exec.schedule {
            Schedule::SpaceBlocked { .. } => {
                let spec = exec.spaceblock_spec();
                let classic = exec.sparse == SparseMode::Classic;
                spaceblock::execute(
                    shape,
                    nt,
                    spec,
                    exec.policy,
                    |k, region| this.step_region(k, region, exec.sparse, exec.kernel),
                    |k| {
                        if classic {
                            this.classic_after_step(k);
                        }
                    },
                );
            }
            Schedule::Wavefront { .. } => {
                let spec = exec.wavefront_spec(self.radius, 1);
                wavefront::execute(shape, nt, &spec, exec.policy, |vt, region| {
                    this.step_region(vt, region, exec.sparse, exec.kernel)
                });
            }
            Schedule::WavefrontDiagonal { .. } => {
                let spec = exec.wavefront_spec(self.radius, 1);
                wavefront::execute_diagonal(shape, nt, &spec, exec.policy, |vt, region| {
                    this.step_region(vt, region, exec.sparse, exec.kernel)
                });
            }
            Schedule::WavefrontDataflow { .. } => {
                let spec = exec.wavefront_spec(self.radius, 1);
                wavefront::execute_dataflow(shape, nt, &spec, self.radius, exec.policy, |vt, region| {
                    this.step_region(vt, region, exec.sparse, exec.kernel)
                });
            }
            Schedule::Diamond { .. } => {
                let spec = exec.diamond_spec(self.radius, 1);
                diamond::execute_diamond(shape, nt, &spec, self.radius, exec.policy, |vt, region| {
                    this.step_region(vt, region, exec.sparse, exec.kernel)
                });
            }
        }
        RunStats::new(started.elapsed(), nt, shape)
    }

    fn final_field(&mut self) -> Array3<f32> {
        let t = self.cfg.nt + 1;
        self.p.interior_copy(t)
    }

    fn trace(&self) -> Option<Array2<f32>> {
        self.trace.as_ref().map(|t| t.to_array())
    }

    fn flops_per_point(&self) -> f64 {
        tti_cost(self.cfg.space_order).flops
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EquationKind;
    use tempest_grid::Domain;

    fn setup(theta: f32, so: usize, nt: usize) -> Tti {
        let domain = Domain::uniform(Shape::cube(20), 20.0);
        let model = TtiModel::homogeneous(domain, 2000.0, 0.2, 0.1, theta, 0.3);
        let cfg = SimConfig::new(domain, so, EquationKind::Tti, model.vmax(), 80.0)
            .with_nt(nt)
            .with_f0(15.0)
            .with_boundary(4, 0.3);
        let src = SparsePoints::single_center(&domain, 0.4);
        let rec = SparsePoints::receiver_line(&domain, 4, 0.2);
        Tti::new(&model, cfg, src, Some(rec))
    }

    #[test]
    fn propagates_and_stable() {
        let mut t = setup(0.35, 4, 25);
        t.run(&Execution::baseline());
        let f = t.final_field();
        assert!(f.max_abs() > 0.0);
        assert!(f.max_abs().is_finite() && f.max_abs() < 1e6);
    }

    #[test]
    fn zero_angles_zero_anisotropy_reduces_to_acoustic_coupling() {
        // With ε = δ = θ = φ = 0: Gz̄z̄ = ∂zz, Gh = ∂xx + ∂yy, δ̄ = 1 and the
        // p equation becomes the isotropic acoustic one when p ≡ q. Check
        // p stays equal to q (both get the same source and updates).
        let domain = Domain::uniform(Shape::cube(16), 20.0);
        let model = TtiModel::homogeneous(domain, 2000.0, 0.0, 0.0, 0.0, 0.0);
        let cfg = SimConfig::new(domain, 4, EquationKind::Tti, 2000.0, 50.0)
            .with_nt(12)
            .with_boundary(0, 0.0);
        let src = SparsePoints::single_center(&domain, 0.4);
        let mut t = Tti::new(&model, cfg, src, None);
        t.run(&Execution::baseline().sequential());
        let p = t.final_field();
        let q = t.q.interior_copy(t.cfg.nt + 1);
        assert!(
            p.max_abs_diff(&q) <= 1e-6 * p.max_abs().max(1e-20),
            "p and q must evolve identically in the degenerate case"
        );
        assert!(p.max_abs() > 0.0);
    }

    #[test]
    fn wavefront_matches_baseline_bitwise() {
        for so in [4usize, 8] {
            let mut t = setup(0.35, so, 12);
            t.run(&Execution::baseline().sequential());
            let base = t.final_field();
            let mut exec = Execution::wavefront_default().sequential();
            exec.schedule = Schedule::Wavefront {
                tile_x: 8,
                tile_y: 8,
                tile_t: 3,
                block_x: 4,
                block_y: 4,
            };
            t.run(&exec);
            let wf = t.final_field();
            assert!(
                base.bit_equal(&wf),
                "so={so}: TTI WTB must be bitwise identical, max diff {}",
                base.max_abs_diff(&wf)
            );
        }
    }

    #[test]
    fn diagonal_matches_baseline_bitwise() {
        for so in [4usize, 8] {
            let mut t = setup(0.35, so, 12);
            t.run(&Execution::baseline().sequential());
            let base = t.final_field();
            let mut exec = Execution::wavefront_diagonal_default().sequential();
            exec.schedule = Schedule::WavefrontDiagonal {
                tile_x: 8,
                tile_y: 8,
                tile_t: 3,
                block_x: 4,
                block_y: 4,
            };
            t.run(&exec);
            let dg = t.final_field();
            assert!(
                base.bit_equal(&dg),
                "so={so}: TTI diagonal WTB must be bitwise identical, max diff {}",
                base.max_abs_diff(&dg)
            );
            exec.policy = tempest_par::Policy::Parallel;
            t.run(&exec);
            let par = t.final_field();
            assert!(base.bit_equal(&par), "so={so}: parallel diagonal differs");
        }
    }

    #[test]
    fn dataflow_matches_diagonal_bitwise_across_policies() {
        use tempest_par::Policy;
        for so in [4usize, 8] {
            let mut t = setup(0.35, so, 12);
            let mut dg = Execution::wavefront_diagonal_default().sequential();
            dg.schedule = Schedule::WavefrontDiagonal {
                tile_x: 8,
                tile_y: 8,
                tile_t: 3,
                block_x: 4,
                block_y: 4,
            };
            t.run(&dg);
            let want = t.final_field();
            for pol in [
                Policy::Sequential,
                Policy::Parallel,
                Policy::Capped { threads: 1 },
                Policy::Capped { threads: 2 },
                Policy::Capped { threads: 4 },
            ] {
                let mut df = dg;
                df.schedule = Schedule::WavefrontDataflow {
                    tile_x: 8,
                    tile_y: 8,
                    tile_t: 3,
                    block_x: 4,
                    block_y: 4,
                };
                df.policy = pol;
                t.run(&df);
                let got = t.final_field();
                assert!(
                    want.bit_equal(&got),
                    "so={so} policy={pol:?}: TTI dataflow must match diagonal, max diff {}",
                    want.max_abs_diff(&got)
                );
            }
        }
    }

    #[test]
    fn diamond_matches_dataflow_bitwise_across_policies() {
        use crate::operator::DiamondAxis;
        use tempest_par::Policy;
        for so in [4usize, 8] {
            let mut t = setup(0.35, so, 12);
            let mut df = Execution::wavefront_dataflow_default().sequential();
            df.schedule = Schedule::WavefrontDataflow {
                tile_x: 8,
                tile_y: 8,
                tile_t: 3,
                block_x: 4,
                block_y: 4,
            };
            t.run(&df);
            let want = t.final_field();
            for pol in [
                Policy::Sequential,
                Policy::Parallel,
                Policy::Capped { threads: 1 },
                Policy::Capped { threads: 2 },
                Policy::Capped { threads: 4 },
            ] {
                let mut dm = df;
                dm.schedule = Schedule::Diamond {
                    width: 24,
                    tile_t: 3,
                    tile_c: 8,
                    axis: DiamondAxis::X,
                    block_x: 4,
                    block_y: 4,
                };
                dm.policy = pol;
                t.run(&dm);
                let got = t.final_field();
                assert!(
                    want.bit_equal(&got),
                    "so={so} policy={pol:?}: TTI diamond must match dataflow, max diff {}",
                    want.max_abs_diff(&got)
                );
            }
        }
    }

    #[test]
    fn diamond_fused_sparse_modes_agree_bitwise() {
        use crate::operator::DiamondAxis;
        let mut t = setup(0.35, 4, 12);
        let mut e1 = Execution::diamond_default();
        e1.schedule = Schedule::Diamond {
            width: 24,
            tile_t: 3,
            tile_c: 8,
            axis: DiamondAxis::Y,
            block_x: 4,
            block_y: 4,
        };
        e1.policy = tempest_par::Policy::Parallel;
        let mut e2 = e1;
        e1.sparse = SparseMode::Fused;
        e2.sparse = SparseMode::FusedCompressed;
        t.run(&e1);
        let f1 = t.final_field();
        t.run(&e2);
        let f2 = t.final_field();
        assert!(f1.bit_equal(&f2), "Listing 4 vs 5 under TTI diamond");
    }

    #[test]
    fn dataflow_fused_sparse_modes_agree_bitwise() {
        let mut t = setup(0.35, 4, 12);
        let mut e1 = Execution::wavefront_dataflow_default();
        e1.schedule = Schedule::WavefrontDataflow {
            tile_x: 8,
            tile_y: 8,
            tile_t: 3,
            block_x: 4,
            block_y: 4,
        };
        e1.policy = tempest_par::Policy::Parallel;
        let mut e2 = e1;
        e1.sparse = SparseMode::Fused;
        e2.sparse = SparseMode::FusedCompressed;
        t.run(&e1);
        let f1 = t.final_field();
        t.run(&e2);
        let f2 = t.final_field();
        assert!(f1.bit_equal(&f2), "Listing 4 vs 5 under TTI dataflow");
    }

    #[test]
    fn traces_agree_between_schedules() {
        let mut t = setup(0.35, 4, 15);
        t.run(&Execution::baseline().sequential());
        let tb = t.trace().unwrap();
        let mut exec = Execution::wavefront_default().sequential();
        exec.schedule = Schedule::Wavefront {
            tile_x: 10,
            tile_y: 10,
            tile_t: 4,
            block_x: 5,
            block_y: 5,
        };
        t.run(&exec);
        let tw = t.trace().unwrap();
        let scale = tb
            .as_slice()
            .iter()
            .fold(0.0f32, |s, &v| s.max(v.abs()))
            .max(1e-20);
        for i in 0..tb.len() {
            let d = (tb.as_slice()[i] - tw.as_slice()[i]).abs();
            assert!(d <= 1e-4 * scale);
        }
    }

    #[test]
    fn anisotropy_changes_the_wavefield() {
        let mut iso = setup(0.0, 4, 15);
        let mut tilted = setup(0.5, 4, 15);
        iso.run(&Execution::baseline().sequential());
        tilted.run(&Execution::baseline().sequential());
        let a = iso.final_field();
        let b = tilted.final_field();
        assert!(
            a.max_abs_diff(&b) > 1e-8,
            "tilt angle must affect propagation"
        );
    }

    #[test]
    fn tilted_symmetry_axis_breaks_xy_symmetry() {
        // With φ=0 and θ≠0 the symmetry axis tilts in the x-z plane, so the
        // wavefield loses x↔y symmetry that the isotropic case would keep.
        let domain = Domain::uniform(Shape::cube(17), 20.0);
        let model = TtiModel::homogeneous(domain, 2000.0, 0.25, 0.05, 0.6, 0.0);
        let cfg = SimConfig::new(domain, 4, EquationKind::Tti, model.vmax(), 60.0)
            .with_nt(14)
            .with_boundary(0, 0.0);
        // exact on-grid centre source keeps the comparison clean
        let src = SparsePoints::new(&domain, vec![[160.0, 160.0, 160.0]]);
        let mut t = Tti::new(&model, cfg, src, None);
        t.run(&Execution::baseline().sequential());
        let f = t.final_field();
        let c = 8usize;
        let off = 5usize;
        let vx = f.get(c + off, c, c);
        let vy = f.get(c, c + off, c);
        assert!(
            (vx - vy).abs() > 1e-10 * f.max_abs().max(1e-20),
            "tilt in x-z must distinguish x from y: {vx} vs {vy}"
        );
    }
}
