//! The survey description and the sharded execution engine.
//!
//! A [`Survey`] is the unit the paper's production workload is made of: one
//! velocity model, one receiver set, many shots. [`run_survey`] executes all
//! shots exactly once, sharded across the `tempest-par` fleet, with the
//! shot-independent precomputation ([`tempest_core::ShotAssets`]) built once
//! and shared:
//!
//! * coefficient volumes (damping + model), FD axis weights,
//! * the receiver-gather precompute (grid-aligned positions + weights),
//! * the shared Ricker wavelet samples.
//!
//! Per-shot cost is then only the source-bundle precompute and a fresh
//! wavefield ring. The thread split between shot-level and tile-level
//! parallelism is explicit: each shot solve runs under
//! [`tempest_par::with_thread_budget`]`(shot_threads, …)`, so the default
//! `shot_threads = 1` pins every solve to its worker thread and makes
//! gathers bitwise-deterministic across `TEMPEST_THREADS` caps.

use std::collections::hash_map::DefaultHasher;
use std::hash::Hasher;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use tempest_core::operator::{Schedule, SparseMode};
use tempest_core::{Acoustic, Execution, ShotAssets, SimConfig, WaveSolver};
use tempest_grid::{Array2, Model};
use tempest_obs as obs;
use tempest_par::{with_thread_budget, Policy};
use tempest_sparse::SparsePoints;
use tempest_tiling::TileCache;

use crate::shard::{shard_range, CancelFlag};

/// One shot of a survey: a physical source position plus an optional
/// per-shot wavelet (`None` uses the survey's shared Ricker at `cfg.f0`).
#[derive(Debug, Clone, PartialEq)]
pub struct ShotSpec {
    /// Off-the-grid physical source position (metres).
    pub position: [f32; 3],
    /// Per-timestep source samples; must have exactly `cfg.nt` entries.
    pub wavelet: Option<Vec<f32>>,
}

impl ShotSpec {
    /// A shot firing the survey's shared Ricker wavelet.
    pub fn at(position: [f32; 3]) -> Self {
        ShotSpec {
            position,
            wavelet: None,
        }
    }

    /// A shot firing an explicit per-timestep wavelet.
    pub fn with_wavelet(position: [f32; 3], wavelet: Vec<f32>) -> Self {
        ShotSpec {
            position,
            wavelet: Some(wavelet),
        }
    }
}

/// A seismic survey: one shared velocity model and receiver set, many
/// shots. All shots share the model, so the engine precomputes
/// [`ShotAssets`] once per run and batches autotuning.
#[derive(Debug, Clone)]
pub struct Survey {
    model: Model,
    cfg: SimConfig,
    receivers: Option<SparsePoints>,
    shots: Vec<ShotSpec>,
}

impl Survey {
    /// A survey with no receivers and no shots yet.
    pub fn new(model: Model, cfg: SimConfig) -> Self {
        assert_eq!(
            model.shape(),
            cfg.shape(),
            "model and config must share a grid"
        );
        Survey {
            model,
            cfg,
            receivers: None,
            shots: Vec::new(),
        }
    }

    /// Attach the common receiver set (each shot records into its own
    /// gather at these positions).
    pub fn with_receivers(mut self, receivers: SparsePoints) -> Self {
        self.receivers = Some(receivers);
        self
    }

    /// Append one shot.
    pub fn add_shot(&mut self, shot: ShotSpec) -> &mut Self {
        self.shots.push(shot);
        self
    }

    /// Append `n` shots on a horizontal line along x at depth fraction
    /// `z_frac`, evenly spread and avoiding the domain faces — the
    /// survey-geometry counterpart of `SparsePoints::receiver_line`.
    pub fn add_shot_line(&mut self, n: usize, z_frac: f32) -> &mut Self {
        let ext = self.cfg.domain.extent();
        let origin = self.cfg.domain.origin();
        for s in 0..n {
            let fx = (s as f32 + 1.0) / (n as f32 + 1.0);
            self.shots.push(ShotSpec::at([
                origin[0] + fx * ext[0],
                origin[1] + 0.5 * ext[1],
                origin[2] + z_frac * ext[2],
            ]));
        }
        self
    }

    /// The shared velocity model.
    pub fn model(&self) -> &Model {
        &self.model
    }

    /// The shared simulation configuration.
    pub fn cfg(&self) -> &SimConfig {
        &self.cfg
    }

    /// The common receiver set, if any.
    pub fn receivers(&self) -> Option<&SparsePoints> {
        self.receivers.as_ref()
    }

    /// The shot list.
    pub fn shots(&self) -> &[ShotSpec] {
        &self.shots
    }

    /// Number of shots.
    pub fn len(&self) -> usize {
        self.shots.len()
    }

    /// Whether the survey has no shots.
    pub fn is_empty(&self) -> bool {
        self.shots.is_empty()
    }
}

/// How a survey executes.
#[derive(Debug, Clone)]
pub struct SurveyOptions {
    /// Per-shot execution (schedule, sparse path, tile policy, kernels).
    pub exec: Execution,
    /// Shot-level fleet policy (how shots shard across workers).
    pub policy: Policy,
    /// Thread budget granted to each shot solve
    /// ([`tempest_par::with_thread_budget`]). `1` (the default) keeps every
    /// solve on its worker's own thread: receiver gathers are then
    /// bitwise-identical across thread caps. Larger budgets re-enable tile
    /// parallelism inside a shot.
    pub shot_threads: usize,
    /// Shots per batch (`0` = one batch). Batches run in order with a join
    /// between them; errors and cancellation stop at batch boundaries.
    pub batch_size: usize,
    /// Autotune the space-block shape once per run on a short probe solve,
    /// reusing the result for every shot and batch (counted by
    /// `Counter::BatchAutotune`). Only applies to
    /// [`Schedule::SpaceBlocked`]; the tuned shape never changes wavefield
    /// results (block decomposition is bitwise-invariant), but under a
    /// fused sparse path it may permute receiver-gather accumulation order.
    pub tune: bool,
    /// Fault injection for watchdog validation: `Some((shot, ms))` sleeps
    /// `ms` milliseconds after shot `shot` is started but before it makes
    /// any progress — a silent stall the telemetry heartbeat cannot see.
    /// The shot then solves normally, so the run still completes. `None`
    /// (the default) injects nothing.
    pub inject_hang: Option<(usize, u64)>,
    /// Shared per-tile result cache for incremental recomputation. When set
    /// (and enabled), shots running a fused sparse path under a
    /// tile-plannable schedule solve via
    /// [`Acoustic::run_incremental`] keyed by their shot index, so a
    /// resubmitted survey with a nudged source reuses every tile outside the
    /// change's causal cone; the autotuner also memoises its probe result
    /// here. `None` (the default) keeps the exact pre-cache execution path.
    /// Classic-sparse shots never take the incremental path — their
    /// per-timestep sparse operators have no per-tile identity.
    pub cache: Option<Arc<TileCache>>,
}

impl Default for SurveyOptions {
    fn default() -> Self {
        SurveyOptions {
            exec: Execution::baseline(),
            policy: Policy::default(),
            shot_threads: 1,
            batch_size: 0,
            tune: false,
            inject_hang: None,
            cache: None,
        }
    }
}

/// One completed shot: its index and (if the survey has receivers) the
/// recorded gather `[nt × num_receivers]`.
#[derive(Debug, Clone)]
pub struct ShotResult {
    /// Shot index within the survey.
    pub index: usize,
    /// The receiver gather, `None` when the survey has no receivers.
    pub gather: Option<Array2<f32>>,
}

/// A failed shot: the lowest-indexed shot that errored and why.
#[derive(Debug, Clone, PartialEq)]
pub struct ShotError {
    /// Shot index within the survey.
    pub shot: usize,
    /// Human-readable failure reason (validation message or panic payload).
    pub message: String,
}

impl std::fmt::Display for ShotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "shot {}: {}", self.shot, self.message)
    }
}

/// How a streaming survey run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SurveyOutcome {
    /// Shots that ran to completion (and were streamed to the sink).
    pub completed: usize,
    /// Whether cancellation was observed; remaining shots were skipped.
    pub cancelled: bool,
}

/// Run every shot of `survey` exactly once and return results ordered by
/// shot index. Fails with the lowest-indexed [`ShotError`] if any shot is
/// invalid or panics (remaining batches are skipped).
pub fn run_survey(survey: &Survey, opts: &SurveyOptions) -> Result<Vec<ShotResult>, ShotError> {
    let slots: Mutex<Vec<Option<ShotResult>>> =
        Mutex::new((0..survey.len()).map(|_| None).collect());
    run_survey_streaming(survey, opts, None, |r| {
        let slot = r.index;
        slots.lock().unwrap()[slot] = Some(r);
    })?;
    Ok(slots.into_inner().unwrap().into_iter().flatten().collect())
}

/// Like [`run_survey`], but streams each [`ShotResult`] to `on_shot` as it
/// completes (from worker threads, in completion order) instead of holding
/// all gathers until the end, and honours cooperative cancellation: the
/// `cancel` flag is checked at shot start and between batches, so a
/// cancelled run skips every shot not yet started and reports
/// [`SurveyOutcome::cancelled`].
pub fn run_survey_streaming<F>(
    survey: &Survey,
    opts: &SurveyOptions,
    cancel: Option<&CancelFlag>,
    on_shot: F,
) -> Result<SurveyOutcome, ShotError>
where
    F: Fn(ShotResult) + Sync,
{
    let n = survey.len();
    let was_cancelled = || cancel.is_some_and(CancelFlag::is_cancelled);
    if n == 0 {
        return Ok(SurveyOutcome {
            completed: 0,
            cancelled: was_cancelled(),
        });
    }
    let assets = ShotAssets::new(
        survey.model(),
        survey.cfg().clone(),
        survey.receivers().cloned(),
    );
    let exec = tuned_exec(survey, opts);
    exec.validate();

    let completed = AtomicUsize::new(0);
    let errors: Mutex<Vec<ShotError>> = Mutex::new(Vec::new());
    let shots = survey.shots();
    let batch = if opts.batch_size == 0 {
        n
    } else {
        opts.batch_size
    };
    let mut start = 0;
    while start < n {
        if was_cancelled() || !errors.lock().unwrap().is_empty() {
            break;
        }
        let end = (start + batch).min(n);
        shard_range(opts.policy, start..end, |i| {
            if was_cancelled() {
                return;
            }
            obs::add(obs::Counter::ShotStarted, 1);
            obs::metrics::heartbeat(1);
            let _sp = obs::trace::span(obs::trace::SpanKind::Shot, obs::trace::SpanArgs::shot(i));
            if let Some((hang_shot, ms)) = opts.inject_hang {
                if i == hang_shot {
                    // Deliberately no heartbeat across this gap: the sleep
                    // is indistinguishable from a hung solve.
                    std::thread::sleep(std::time::Duration::from_millis(ms));
                }
            }
            let solved = catch_unwind(AssertUnwindSafe(|| {
                with_thread_budget(opts.shot_threads, || {
                    solve_one(&assets, &shots[i], &exec, opts.cache.as_deref(), i as u64)
                })
            }));
            match solved {
                Ok(Ok(gather)) => {
                    obs::add(obs::Counter::ShotCompleted, 1);
                    obs::metrics::heartbeat(1);
                    completed.fetch_add(1, Ordering::Relaxed);
                    on_shot(ShotResult { index: i, gather });
                }
                Ok(Err(message)) => errors.lock().unwrap().push(ShotError { shot: i, message }),
                Err(payload) => errors.lock().unwrap().push(ShotError {
                    shot: i,
                    message: panic_message(payload),
                }),
            }
        });
        start = end;
    }

    let mut errs = errors.into_inner().unwrap();
    errs.sort_by_key(|e| e.shot);
    if let Some(first) = errs.into_iter().next() {
        return Err(first);
    }
    Ok(SurveyOutcome {
        completed: completed.into_inner(),
        cancelled: was_cancelled(),
    })
}

/// Validate a shot against the survey configuration. Deterministic — the
/// same shot fails the same way under every policy and thread cap.
pub(crate) fn validate_shot(cfg: &SimConfig, spec: &ShotSpec) -> Result<(), String> {
    if !spec.position.iter().all(|v| v.is_finite()) || !cfg.domain.contains_point(spec.position) {
        return Err(format!(
            "shot position {:?} is outside the model domain",
            spec.position
        ));
    }
    if let Some(w) = &spec.wavelet {
        if w.len() != cfg.nt {
            return Err(format!(
                "custom wavelet has {} samples, expected nt = {}",
                w.len(),
                cfg.nt
            ));
        }
    }
    Ok(())
}

/// Build a propagator for one shot from shared assets.
pub(crate) fn build_solver(assets: &ShotAssets, spec: &ShotSpec) -> Result<Acoustic, String> {
    validate_shot(assets.config(), spec)?;
    let sources = SparsePoints::new(&assets.config().domain, vec![spec.position]);
    Ok(match &spec.wavelet {
        None => Acoustic::from_assets(assets, sources),
        Some(w) => Acoustic::from_assets_with_wavelets(
            assets,
            sources,
            tempest_sparse::wavelet::wavelet_matrix(w, 1),
        ),
    })
}

fn solve_one(
    assets: &ShotAssets,
    spec: &ShotSpec,
    exec: &Execution,
    cache: Option<&TileCache>,
    shot_key: u64,
) -> Result<Option<Array2<f32>>, String> {
    let mut solver = build_solver(assets, spec)?;
    match cache {
        // The incremental path only serves fused sparse runs on schedules
        // with a tile plan; everything else (notably the default classic
        // baseline) keeps the exact pre-cache execution path.
        Some(c)
            if c.enabled()
                && exec.supports_incremental()
                && exec.sparse != SparseMode::Classic =>
        {
            let _ = solver.run_incremental(exec, c, shot_key);
        }
        _ => {
            let _ = solver.run(exec);
        }
    }
    Ok(solver.trace())
}

/// Memo key for the autotune probe: the probe's timing verdict depends on
/// the grid, the discretisation and the per-shot thread budget, not on shot
/// positions, so one tuned shape serves every resubmission of the survey.
fn tune_key(survey: &Survey, opts: &SurveyOptions) -> u64 {
    let shape = survey.cfg().shape();
    let mut h = DefaultHasher::new();
    h.write_usize(shape.nx);
    h.write_usize(shape.ny);
    h.write_usize(shape.nz);
    h.write_usize(survey.cfg().space_order);
    h.write_usize(opts.shot_threads);
    h.finish()
}

/// Resolve the execution for this run, autotuning the space-block shape on
/// a short probe solve when requested. The tuned result is shared by every
/// shot and batch of the run — `Counter::BatchAutotune` counts once.
fn tuned_exec(survey: &Survey, opts: &SurveyOptions) -> Execution {
    let mut exec = opts.exec;
    if !opts.tune || survey.is_empty() {
        return exec;
    }
    let Schedule::SpaceBlocked { .. } = exec.schedule else {
        return exec;
    };
    let probe_shot = &survey.shots()[0];
    let cfg = survey.cfg();
    if validate_shot(cfg, &ShotSpec::at(probe_shot.position)).is_err() {
        return exec; // the per-shot error path will report it
    }
    // Cache-aware candidate skip: a prior run of the same grid already paid
    // for the probe sweep — reuse its verdict (and record no new
    // `BatchAutotune` pass, since none ran).
    let key = tune_key(survey, opts);
    if let Some((block_x, block_y)) = opts.cache.as_deref().and_then(|c| c.tune_lookup(key)) {
        exec.schedule = Schedule::SpaceBlocked { block_x, block_y };
        return exec;
    }
    let probe_cfg = cfg.clone().with_nt(cfg.nt.clamp(2, 6));
    let probe_assets = ShotAssets::new(survey.model(), probe_cfg, None);
    let shape = cfg.shape();
    let mut best = (f64::INFINITY, exec.schedule);
    for cand in tempest_tiling::spaceblock_candidates(shape.nx, shape.ny) {
        let trial = Execution {
            schedule: Schedule::SpaceBlocked {
                block_x: cand.block_x,
                block_y: cand.block_y,
            },
            ..exec
        };
        let mut probe = Acoustic::from_assets(
            &probe_assets,
            SparsePoints::new(&probe_assets.config().domain, vec![probe_shot.position]),
        );
        let stats = with_thread_budget(opts.shot_threads, || probe.run(&trial));
        let secs = stats.elapsed.as_secs_f64();
        if secs < best.0 {
            best = (secs, trial.schedule);
        }
    }
    obs::add(obs::Counter::BatchAutotune, 1);
    exec.schedule = best.1;
    if let (Some(cache), Schedule::SpaceBlocked { block_x, block_y }) =
        (opts.cache.as_deref(), exec.schedule)
    {
        cache.tune_store(key, (block_x, block_y));
    }
    exec
}

/// Render a panic payload as an error message (best effort).
pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "shot solve panicked".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempest_core::config::EquationKind;
    use tempest_grid::{Domain, Shape};

    fn small_survey(n_shots: usize) -> Survey {
        let domain = Domain::uniform(Shape::cube(16), 10.0);
        let model = Model::homogeneous(domain, 2000.0);
        let cfg = SimConfig::new(domain, 4, EquationKind::Acoustic, 2000.0, 40.0)
            .with_nt(6)
            .with_boundary(3, 0.3);
        let mut s = Survey::new(model, cfg).with_receivers(SparsePoints::receiver_line(
            &domain, 5, 0.2,
        ));
        s.add_shot_line(n_shots, 0.1);
        s
    }

    #[test]
    fn survey_builder_places_shots_in_domain() {
        let s = small_survey(4);
        assert_eq!(s.len(), 4);
        for shot in s.shots() {
            assert!(s.cfg().domain.contains_point(shot.position));
            assert!(validate_shot(s.cfg(), shot).is_ok());
        }
    }

    #[test]
    fn run_survey_returns_ordered_gathers() {
        let s = small_survey(3);
        let results = run_survey(&s, &SurveyOptions::default()).unwrap();
        assert_eq!(results.len(), 3);
        for (i, r) in results.iter().enumerate() {
            assert_eq!(r.index, i);
            let g = r.gather.as_ref().expect("receivers attached");
            assert_eq!(g.dims(), [s.cfg().nt, 5]);
            assert!(g.as_slice().iter().any(|&v| v != 0.0), "gather is silent");
        }
    }

    #[test]
    fn invalid_shot_yields_lowest_indexed_error() {
        let mut s = small_survey(2);
        s.add_shot(ShotSpec::at([1e9, 0.0, 0.0]));
        s.add_shot(ShotSpec::with_wavelet([50.0, 50.0, 50.0], vec![0.0; 3]));
        let err = run_survey(&s, &SurveyOptions::default()).unwrap_err();
        assert_eq!(err.shot, 2, "lowest failing index wins: {err}");
        assert!(err.message.contains("outside"), "{err}");
    }

    #[test]
    fn empty_survey_completes_with_no_shots() {
        let s = small_survey(0);
        assert!(s.is_empty());
        let out = run_survey_streaming(&s, &SurveyOptions::default(), None, |_| {
            panic!("no shots should stream")
        })
        .unwrap();
        assert_eq!(
            out,
            SurveyOutcome {
                completed: 0,
                cancelled: false
            }
        );
    }

    #[test]
    fn pre_cancelled_run_skips_every_shot() {
        let s = small_survey(4);
        let flag = CancelFlag::new();
        flag.cancel();
        let out = run_survey_streaming(&s, &SurveyOptions::default(), Some(&flag), |_| {
            panic!("cancelled run must not stream results")
        })
        .unwrap();
        assert_eq!(
            out,
            SurveyOutcome {
                completed: 0,
                cancelled: true
            }
        );
    }

    #[test]
    fn tuned_run_matches_untuned_fields() {
        // Tuning only changes the block shape; gathers under the classic
        // sparse path are recorded receiver-by-receiver per timestep, so
        // they stay bitwise-identical to the untuned run.
        let s = small_survey(2);
        let plain = run_survey(&s, &SurveyOptions::default()).unwrap();
        let tuned = run_survey(
            &s,
            &SurveyOptions {
                tune: true,
                ..SurveyOptions::default()
            },
        )
        .unwrap();
        for (a, b) in plain.iter().zip(&tuned) {
            assert_eq!(
                a.gather.as_ref().unwrap().as_slice(),
                b.gather.as_ref().unwrap().as_slice()
            );
        }
    }
}
