//! Shot sharding: the partition primitive that distributes shot indices
//! across the `tempest-par` fleet, one level above tile parallelism.
//!
//! The engine's correctness obligation at this level is exactly-once
//! execution: every shot index in `0..n` is visited once, regardless of the
//! thread policy, steal order, or batch grouping. [`shard`] reduces that to
//! `tempest_par::for_each_index`, whose single-publication board already
//! guarantees each index is claimed by exactly one worker; batching only
//! changes how many indices one publication covers, never membership.

use std::ops::Range;
use std::sync::atomic::{AtomicBool, Ordering};

use tempest_par::Policy;

/// Cooperative cancellation token shared between a submitter and a running
/// survey. Setting it is a request, not preemption: the engine observes the
/// flag at shot boundaries (a shot that already started runs to completion)
/// and between batches.
#[derive(Debug, Default)]
pub struct CancelFlag(AtomicBool);

impl CancelFlag {
    /// A fresh, un-cancelled flag.
    pub fn new() -> Self {
        Self::default()
    }

    /// Request cancellation. Idempotent.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// Has cancellation been requested?
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

/// Run `f(i)` exactly once for every `i` in `0..n`, sharded across the
/// fleet under `policy` in batches of `batch_size` shots (`0` = one batch).
/// Batches run in order with a join between them; shots inside a batch run
/// in any order the policy permits.
pub fn shard<F>(policy: Policy, n: usize, batch_size: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    let batch = if batch_size == 0 { n.max(1) } else { batch_size };
    let mut start = 0;
    while start < n {
        let end = (start + batch).min(n);
        shard_range(policy, start..end, &f);
        start = end;
    }
}

/// One batch of [`shard`]: run `f(i)` exactly once for every `i` in
/// `range`, joining before return.
pub(crate) fn shard_range<F>(policy: Policy, range: Range<usize>, f: F)
where
    F: Fn(usize) + Sync,
{
    let base = range.start;
    tempest_par::for_each_index(policy, range.len(), |j| f(base + j));
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn cancel_flag_latches() {
        let flag = CancelFlag::new();
        assert!(!flag.is_cancelled());
        flag.cancel();
        flag.cancel();
        assert!(flag.is_cancelled());
    }

    #[test]
    fn shard_visits_each_index_once() {
        for &(n, batch) in &[(0usize, 0usize), (1, 0), (7, 3), (64, 0), (64, 5), (64, 64)] {
            let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
            shard(Policy::Parallel, n, batch, |i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(
                hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                "n={n} batch={batch}: some index not visited exactly once"
            );
        }
    }

    #[test]
    fn batches_are_ordered() {
        // With a sequential policy the visit order is fully deterministic:
        // ascending within each batch, batches in order.
        let order = std::sync::Mutex::new(Vec::new());
        shard(Policy::Sequential, 10, 4, |i| order.lock().unwrap().push(i));
        assert_eq!(*order.lock().unwrap(), (0..10).collect::<Vec<_>>());
    }
}
