//! # tempest-survey
//!
//! Shot-level sharding above tile-level parallelism: the paper's production
//! workload is not one solve but a *survey* — thousands of independent
//! shots, each a full forward (or forward + adjoint) propagation with
//! sparse off-the-grid sources (§I, §IV). This crate turns the single-shot
//! operator stack into that service:
//!
//! * [`Survey`] — a shared velocity model + per-shot source position /
//!   wavelet + a common receiver set.
//! * [`run_survey`] — shards shots across the `tempest-par` fleet one level
//!   up from tiles. Each shot solve runs under a scoped
//!   [`tempest_par::with_thread_budget`], so the fleet split is explicit:
//!   `shot_threads = 1` keeps every solve on its worker's own thread
//!   (bitwise-deterministic across thread caps), larger budgets re-enable
//!   tile parallelism inside a shot without flooding the shared board.
//! * Batch reuse — shots sharing a model reuse one
//!   [`tempest_core::ShotAssets`] precomputation (coefficient volumes,
//!   receiver gather structures, the Ricker samples) and optionally
//!   autotune the space-block shape once per batch
//!   ([`SurveyOptions::tune`], counted by `Counter::BatchAutotune`).
//! * [`queue`] — an async job-queue front (`submit` / `poll` / `cancel`,
//!   priorities, per-job thread caps, terminal states with error payloads),
//!   so the engine behaves like a service, not a script. With live
//!   telemetry on ([`tempest_obs::metrics`]), a started service keeps the
//!   global gauges in sync, exports `/metrics`+`/jobs` over HTTP, derives
//!   per-job progress/ETA from completed virtual steps, and runs a stall
//!   watchdog over the tile-completion heartbeat ([`ServiceConfig`]).
//! * Incremental reruns — the service keeps one
//!   [`tempest_tiling::TileCache`] (sized by `TEMPEST_CACHE_MB`) across
//!   jobs and lends it to every submission, so resubmitting a survey with
//!   a nudged source recomputes only the dirty causal cone of the change
//!   (DESIGN.md §16) while clean tiles restore bit-for-bit from cache.
//! * [`rtm`] — checkpointed reverse-time migration end-to-end on the
//!   existing `LevelRing::checkpoint`/`restore` + `Acoustic::run_range`
//!   machinery: the forward pass stores sparse ring checkpoints instead of
//!   every snapshot, and imaging re-materialises forward state on a
//!   receiver-free twin.
//!
//! Instrumentation: `Counter::ShotStarted` / `Counter::ShotCompleted` /
//! `Counter::BatchAutotune` and `SpanKind::Shot` spans, all deterministic
//! across thread caps (DESIGN.md §14).

pub mod engine;
pub mod queue;
pub mod rtm;
pub mod shard;

pub use engine::{
    run_survey, run_survey_streaming, ShotError, ShotResult, ShotSpec, Survey, SurveyOptions,
    SurveyOutcome,
};
pub use queue::{JobId, JobSpec, JobState, JobStatus, ServiceConfig, SurveyService};
pub use rtm::{rtm_image, RtmOptions};
pub use shard::{shard, CancelFlag};
pub use tempest_tiling::TileCache;
