//! Survey-scale reverse-time migration on the checkpointed-restart
//! primitives of `tempest-core`.
//!
//! Per shot, the driver follows the classic zero-lag imaging recipe (the
//! reference path of `tests/rtm.rs`):
//!
//! 1. **Forward** on the smooth model *with* receivers → the direct
//!    (modelled) gather, plus the forward wavefield history sampled every
//!    [`RtmOptions::every`] steps.
//! 2. **Adjoint**: the time-reversed residual (observed − direct) is
//!    re-injected at the receiver positions as per-source wavelets, and the
//!    adjoint history is sampled on the same stride.
//! 3. **Imaging**: `image += s[si] · r[pairs−1−si]`, summed over snapshot
//!    pairs in ascending `si`.
//!
//! With [`RtmOptions::checkpoint_stride`] set, step 1 stores only sparse
//! [`RingCheckpoint`]s (one per stride, three wavefield levels each)
//! instead of the full `nt/every` snapshot history, and step 3
//! re-materialises each forward segment on a *receiver-free twin* of the
//! forward propagator via `restore_checkpoint` + `run_range` +
//! `field_after`, correlating on the fly. The twin must be receiver-free
//! because ring checkpoints cover the wavefield only: replaying a segment
//! on the original solver would re-record (and double-count) its receiver
//! traces. Both paths are bitwise-identical — `run_range` decomposes
//! exactly and `field_after` reproduces what `run_recording` stores.
//!
//! Shots shard across the fleet like [`run_survey`](crate::run_survey)
//! (same counters and `SpanKind::Shot` spans); partial images are summed
//! in ascending shot order so the f32 reduction is deterministic.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;

use tempest_core::operator::Schedule;
use tempest_core::shared::RingCheckpoint;
use tempest_core::{Acoustic, Execution, ShotAssets, WaveSolver};
use tempest_grid::{Array2, Array3};
use tempest_obs as obs;
use tempest_par::{with_thread_budget, Policy};
use tempest_sparse::SparsePoints;

use crate::engine::{build_solver, panic_message, ShotError, ShotSpec, Survey};
use crate::shard::shard_range;

/// How an RTM survey executes.
#[derive(Debug, Clone)]
pub struct RtmOptions {
    /// Wavefield sampling stride (timesteps per snapshot pair).
    pub every: usize,
    /// Forward-pass checkpoint stride in timesteps; must be a positive
    /// multiple of `every`. `0` disables checkpointing (the forward history
    /// is stored densely, `nt/every` volumes per shot in flight).
    pub checkpoint_stride: usize,
    /// Per-shot execution. The checkpointed path steps through
    /// `run_range`, which requires [`Schedule::SpaceBlocked`].
    pub exec: Execution,
    /// Shot-level fleet policy.
    pub policy: Policy,
    /// Thread budget per shot solve; `1` keeps imaging bitwise
    /// deterministic across thread caps.
    pub shot_threads: usize,
}

impl RtmOptions {
    /// Sequential space-blocked defaults with the given snapshot stride.
    pub fn new(every: usize) -> Self {
        assert!(every >= 1, "snapshot stride must be positive");
        RtmOptions {
            every,
            checkpoint_stride: 0,
            exec: Execution::baseline().sequential(),
            policy: Policy::default(),
            shot_threads: 1,
        }
    }

    /// Enable checkpointed forward storage with the given stride.
    pub fn with_checkpoint_stride(mut self, stride: usize) -> Self {
        assert!(
            stride > 0 && stride.is_multiple_of(self.every),
            "checkpoint stride must be a positive multiple of `every`"
        );
        self.checkpoint_stride = stride;
        self
    }

    /// Override the shot-level fleet policy.
    pub fn with_policy(mut self, policy: Policy) -> Self {
        self.policy = policy;
        self
    }
}

/// Migrate a survey: cross-correlate forward and adjoint wavefields of
/// every shot against the `observed` gathers (one `[nt × num_receivers]`
/// gather per shot, e.g. from [`run_survey`](crate::run_survey) on the
/// true model) and return the stacked image. `survey` carries the *smooth*
/// (migration) model and must have receivers.
pub fn rtm_image(
    survey: &Survey,
    observed: &[Array2<f32>],
    opts: &RtmOptions,
) -> Result<Array3<f32>, ShotError> {
    let n = survey.len();
    assert_eq!(observed.len(), n, "one observed gather per shot");
    let receivers = survey
        .receivers()
        .expect("RTM needs a receiver set on the survey")
        .clone();
    if opts.checkpoint_stride > 0 {
        assert!(
            matches!(opts.exec.schedule, Schedule::SpaceBlocked { .. }),
            "checkpointed RTM steps through run_range, which requires the \
             spatially blocked schedule"
        );
    }
    opts.exec.validate();

    let shape = survey.cfg().shape();
    let mut image = Array3::<f32>::zeros(shape.nx, shape.ny, shape.nz);
    if n == 0 {
        return Ok(image);
    }
    // Shot-independent precompute, shared across the fleet: one set of
    // coefficient volumes with the receiver bundle (forward pass) and one
    // without (adjoint + recompute twin).
    let fwd_assets = ShotAssets::new(survey.model(), survey.cfg().clone(), Some(receivers.clone()));
    let norec_assets = ShotAssets::new(survey.model(), survey.cfg().clone(), None);

    let partials: Mutex<Vec<Option<Array3<f32>>>> = Mutex::new((0..n).map(|_| None).collect());
    let errors: Mutex<Vec<ShotError>> = Mutex::new(Vec::new());
    let shots = survey.shots();
    shard_range(opts.policy, 0..n, |i| {
        obs::add(obs::Counter::ShotStarted, 1);
        let _sp = obs::trace::span(obs::trace::SpanKind::Shot, obs::trace::SpanArgs::shot(i));
        let solved = catch_unwind(AssertUnwindSafe(|| {
            with_thread_budget(opts.shot_threads, || {
                image_one_shot(&fwd_assets, &norec_assets, &receivers, &shots[i], &observed[i], opts)
            })
        }));
        match solved {
            Ok(Ok(partial)) => {
                obs::add(obs::Counter::ShotCompleted, 1);
                partials.lock().unwrap()[i] = Some(partial);
            }
            Ok(Err(message)) => errors.lock().unwrap().push(ShotError { shot: i, message }),
            Err(payload) => errors.lock().unwrap().push(ShotError {
                shot: i,
                message: panic_message(payload),
            }),
        }
    });

    let mut errs = errors.into_inner().unwrap();
    errs.sort_by_key(|e| e.shot);
    if let Some(first) = errs.into_iter().next() {
        return Err(first);
    }
    // Stack in ascending shot order: a deterministic f32 reduction.
    for partial in partials.into_inner().unwrap().into_iter().flatten() {
        for (o, v) in image.as_mut_slice().iter_mut().zip(partial.as_slice()) {
            *o += v;
        }
    }
    Ok(image)
}

/// Forward + adjoint + imaging for one shot; returns its partial image.
fn image_one_shot(
    fwd_assets: &ShotAssets,
    norec_assets: &ShotAssets,
    receivers: &SparsePoints,
    shot: &ShotSpec,
    observed: &Array2<f32>,
    opts: &RtmOptions,
) -> Result<Array3<f32>, String> {
    let cfg = fwd_assets.config();
    let nt = cfg.nt;
    let every = opts.every;
    let nrec = receivers.len();
    if observed.dims() != [nt, nrec] {
        return Err(format!(
            "observed gather is {:?}, expected [{nt}, {nrec}]",
            observed.dims()
        ));
    }
    let exec = &opts.exec;

    // 1. Forward on the smooth model, recording the direct gather. With
    //    checkpointing, store one ring checkpoint per stride instead of the
    //    dense snapshot history.
    let mut fwd = build_solver(fwd_assets, shot)?;
    let mut s_snaps: Vec<Array3<f32>> = Vec::new();
    let mut checkpoints: Vec<(usize, RingCheckpoint)> = Vec::new();
    let stride = opts.checkpoint_stride;
    if stride == 0 {
        s_snaps = fwd.run_recording(exec, every);
    } else {
        fwd.run_range(exec, 0, 0); // reset only: entering-step-0 state
        let mut k = 0;
        while k < nt {
            if k.is_multiple_of(stride) {
                checkpoints.push((k, fwd.checkpoint()));
            }
            let k1 = (k + every).min(nt);
            fwd.run_range(exec, k, k1);
            k = k1;
        }
    }
    let direct = fwd.trace().expect("forward solver has receivers");
    drop(fwd);

    // 2. Adjoint: re-inject the time-reversed residual at the receiver
    //    positions. No receivers on the adjoint propagator.
    let mut reversed = Array2::<f32>::zeros(nt, nrec);
    for t in 0..nt {
        for r in 0..nrec {
            let res = observed.get(nt - 1 - t, r) - direct.get(nt - 1 - t, r);
            reversed.set(t, r, res);
        }
    }
    let mut adj = Acoustic::from_assets_with_wavelets(norec_assets, receivers.clone(), reversed);
    let r_snaps = adj.run_recording(exec, every);
    drop(adj);

    // 3. Zero-lag imaging over snapshot pairs, ascending si.
    let s_count = if stride == 0 { s_snaps.len() } else { nt / every };
    let pairs = s_count.min(r_snaps.len());
    let shape = cfg.shape();
    let mut image = Array3::<f32>::zeros(shape.nx, shape.ny, shape.nz);
    let mut correlate = |si: usize, s: &Array3<f32>| {
        let r = &r_snaps[pairs - 1 - si];
        for (o, (a, b)) in image
            .as_mut_slice()
            .iter_mut()
            .zip(s.as_slice().iter().zip(r.as_slice()))
        {
            *o += a * b;
        }
    };
    if stride == 0 {
        for (si, s) in s_snaps.iter().enumerate().take(pairs) {
            correlate(si, s);
        }
    } else {
        // Re-materialise the forward history segment by segment on a
        // receiver-free twin (same source, same wavelet, no gathers).
        let mut twin = build_solver(norec_assets, shot)?;
        for (ck, cp) in &checkpoints {
            if *ck >= pairs * every {
                break;
            }
            twin.restore_checkpoint(cp);
            let seg_end = (ck + stride).min(nt);
            let mut k = *ck;
            while k < seg_end {
                let k1 = (k + every).min(nt);
                twin.run_range(exec, k, k1);
                if k1.is_multiple_of(every) {
                    let si = k1 / every - 1;
                    if si < pairs {
                        correlate(si, &twin.field_after(k1 - 1));
                    }
                }
                k = k1;
            }
        }
    }
    Ok(image)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{run_survey, SurveyOptions};
    use tempest_core::config::EquationKind;
    use tempest_core::SimConfig;
    use tempest_grid::{Domain, Model, Shape};

    fn surveys() -> (Survey, Survey) {
        let n = 16;
        let domain = Domain::uniform(Shape::cube(n), 10.0);
        // Different direct-arrival velocities guarantee a non-zero residual
        // within the short window, on top of the reflector.
        let true_model = Model::two_layer(domain, 1500.0, 2500.0, 0.4);
        let smooth = Model::homogeneous(domain, 1800.0);
        let cfg = SimConfig::new(domain, 4, EquationKind::Acoustic, 3000.0, 150.0)
            .with_f0(45.0)
            .with_nt(40)
            .with_boundary(3, 0.3);
        let rec = SparsePoints::receiver_line(&domain, 5, 0.1);
        let mut t = Survey::new(true_model, cfg.clone()).with_receivers(rec.clone());
        t.add_shot_line(2, 0.08);
        let mut s = Survey::new(smooth, cfg).with_receivers(rec);
        s.add_shot_line(2, 0.08);
        (t, s)
    }

    #[test]
    fn checkpointed_image_is_bitwise_equal_to_dense() {
        let (true_sv, smooth_sv) = surveys();
        let observed: Vec<Array2<f32>> = run_survey(&true_sv, &SurveyOptions::default())
            .unwrap()
            .into_iter()
            .map(|r| r.gather.unwrap())
            .collect();
        let dense = rtm_image(&smooth_sv, &observed, &RtmOptions::new(2)).unwrap();
        assert!(dense.max_abs() > 0.0, "image is empty");
        let ckpt = rtm_image(
            &smooth_sv,
            &observed,
            &RtmOptions::new(2).with_checkpoint_stride(4),
        )
        .unwrap();
        assert_eq!(dense.as_slice(), ckpt.as_slice());
        // A stride that does not divide nt exercises the ragged tail.
        let ragged = rtm_image(
            &smooth_sv,
            &observed,
            &RtmOptions::new(2).with_checkpoint_stride(12),
        )
        .unwrap();
        assert_eq!(dense.as_slice(), ragged.as_slice());
    }

    #[test]
    fn empty_survey_images_to_zero() {
        let (_, mut smooth_sv) = surveys();
        smooth_sv = Survey::new(smooth_sv.model().clone(), smooth_sv.cfg().clone())
            .with_receivers(smooth_sv.receivers().unwrap().clone());
        let img = rtm_image(&smooth_sv, &[], &RtmOptions::new(2)).unwrap();
        assert_eq!(img.max_abs(), 0.0);
    }

    #[test]
    fn gather_shape_mismatch_is_reported() {
        let (_, smooth_sv) = surveys();
        let bad = vec![Array2::<f32>::zeros(3, 2), Array2::<f32>::zeros(3, 2)];
        let err = rtm_image(&smooth_sv, &bad, &RtmOptions::new(2)).unwrap_err();
        assert_eq!(err.shot, 0);
        assert!(err.message.contains("expected"), "{err}");
    }
}
