//! The async job-queue front of the survey engine: `submit` / `poll` /
//! `cancel` with priorities, per-job thread caps, and terminal states
//! carrying error payloads.
//!
//! ## Protocol (DESIGN.md §14)
//!
//! A job moves `Queued → Running → {Completed, Cancelled, Failed}` and
//! reaches **exactly one** terminal state, exactly once — enforced by an
//! assertion on every transition and observable through
//! [`JobStatus::terminal_transitions`]. Cancellation is cooperative:
//! cancelling a `Queued` job retires it immediately; cancelling a `Running`
//! job raises its [`CancelFlag`], which the engine observes at shot
//! boundaries. A cancelled or failed job never exposes receiver traces —
//! any gathers streamed before the flag was observed are purged at the
//! terminal transition.
//!
//! Scheduling is strict priority (higher first), FIFO within a priority
//! (lower id first), one job at a time — each job is itself a fleet, so
//! running two concurrently would just split the same workers. A service
//! built with [`SurveyService::start`] processes jobs on a background
//! scheduler thread; one built with [`SurveyService::paused`] holds every
//! submission until [`drain`](SurveyService::drain) runs them on the
//! calling thread — submissions and cancellations against a paused service
//! are therefore fully deterministic, which is what the seeded stress suite
//! leans on.
//!
//! ## Live telemetry (DESIGN.md §15)
//!
//! When live telemetry is on (`TEMPEST_TELEMETRY` or
//! `obs::metrics::set_telemetry(true)`, `obs` feature compiled in), the
//! queue keeps the global [`tempest_obs::metrics`] gauges in sync with its
//! state on every transition, registers a `/jobs` snapshot provider, and —
//! per [`ServiceConfig`] — runs a **stall watchdog**: a running job whose
//! tile-completion heartbeat stays silent past
//! [`ServiceConfig::stall_after`] is flagged [`JobStatus::stalled`] (and
//! counted in `tempest_stalled_jobs`) until the heartbeat resumes or the
//! job terminates. The watchdog never kills work — a stall flag is a
//! diagnosis, not a verdict; each distinct silence episode increments
//! [`JobStatus::stall_events`]. With telemetry off (or the `obs` feature
//! compiled out) none of this spawns: no sampler, no endpoint, no
//! watchdog thread.

use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use tempest_grid::Array2;
use tempest_obs as obs;
use tempest_obs::metrics::{Gauge, JobSnapshot};
use tempest_par::with_thread_budget;
use tempest_tiling::TileCache;

use crate::engine::{panic_message, run_survey_streaming, Survey, SurveyOptions};
use crate::shard::CancelFlag;

/// Monotonically increasing job handle, unique per service.
pub type JobId = u64;

/// Lifecycle of a job. `Completed`, `Cancelled` and `Failed` are terminal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Submitted, waiting to be scheduled.
    Queued,
    /// Executing on the fleet.
    Running,
    /// All shots ran; gathers are available via
    /// [`SurveyService::take_gathers`].
    Completed,
    /// Cancelled before or during execution; no traces are exposed.
    Cancelled,
    /// A shot failed or panicked; see [`JobStatus::error`]. No traces are
    /// exposed.
    Failed,
}

impl JobState {
    /// Whether this state is terminal.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobState::Completed | JobState::Cancelled | JobState::Failed
        )
    }
}

/// A survey submission.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// The survey to run (shared, so submissions are cheap).
    pub survey: Arc<Survey>,
    /// Engine options for this job.
    pub opts: SurveyOptions,
    /// Higher runs first; ties break FIFO by submission order.
    pub priority: i32,
    /// Per-job thread cap: the whole job (shot fleet *and* per-shot tile
    /// parallelism) runs under `with_thread_budget(threads)`. `0` = no cap.
    pub threads: usize,
}

impl JobSpec {
    /// A default-priority, uncapped job with default engine options.
    pub fn new(survey: Arc<Survey>) -> Self {
        JobSpec {
            survey,
            opts: SurveyOptions::default(),
            priority: 0,
            threads: 0,
        }
    }

    /// Set the scheduling priority.
    pub fn with_priority(mut self, priority: i32) -> Self {
        self.priority = priority;
        self
    }

    /// Cap the job's thread budget.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Replace the engine options.
    pub fn with_opts(mut self, opts: SurveyOptions) -> Self {
        self.opts = opts;
        self
    }
}

/// Configuration for a live service: watchdog thresholds and whether to
/// expose the telemetry endpoint. All of it is inert unless the `obs`
/// feature is compiled in *and* telemetry is on at runtime.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Flag a running job as stalled when its heartbeat has been silent
    /// this long.
    pub stall_after: Duration,
    /// How often the watchdog re-checks the heartbeat.
    pub watchdog_interval: Duration,
    /// Run the stall watchdog thread (requires telemetry: the heartbeat it
    /// reads is only recorded when telemetry is on).
    pub watchdog: bool,
    /// Start the HTTP telemetry endpoint
    /// ([`tempest_obs::serve::TelemetryServer::start_from_env`]) and
    /// register the `/jobs` snapshot provider.
    pub telemetry: bool,
    /// Explicit endpoint bind address (`host:port`; port 0 = ephemeral).
    /// `None` takes the address from `TEMPEST_TELEMETRY`, falling back to
    /// [`tempest_obs::serve::DEFAULT_ADDR`].
    pub endpoint_addr: Option<String>,
    /// Keep a service-wide [`TileCache`] (sized by `TEMPEST_CACHE_MB`) and
    /// lend it to every job whose [`SurveyOptions::cache`] is unset, so a
    /// resubmitted survey with a nudged source reuses the previous job's
    /// tile outputs. `false` — or `TEMPEST_CACHE_MB=0` — restores the exact
    /// pre-cache execution path.
    pub cache: bool,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            stall_after: Duration::from_secs(5),
            watchdog_interval: Duration::from_millis(250),
            watchdog: true,
            telemetry: true,
            endpoint_addr: None,
            cache: true,
        }
    }
}

/// A point-in-time view of a job.
#[derive(Debug, Clone)]
pub struct JobStatus {
    /// The job handle.
    pub id: JobId,
    /// Current lifecycle state.
    pub state: JobState,
    /// Scheduling priority.
    pub priority: i32,
    /// Shots in the job's survey.
    pub shots_total: usize,
    /// Shots completed so far (streams up while `Running`).
    pub shots_done: usize,
    /// Failure reason, set iff the state is [`JobState::Failed`].
    pub error: Option<String>,
    /// How many times the job entered a terminal state. The queue's
    /// exactly-once invariant says this is `1` for every finished job —
    /// the stress suite asserts it.
    pub terminal_transitions: u32,
    /// Fraction of the job's virtual timesteps completed, in `[0, 1]`
    /// (shots are the completion unit; every shot covers `cfg.nt` steps).
    pub progress: f64,
    /// Estimated seconds to completion, extrapolated from elapsed time and
    /// progress. `None` until a running job completes its first shot, and
    /// for every non-running state.
    pub eta_s: Option<f64>,
    /// True while the stall watchdog considers this job's heartbeat
    /// silent. Always false when the watchdog is not running.
    pub stalled: bool,
    /// Distinct silence episodes the watchdog flagged on this job. Kept
    /// across the terminal transition — a job that stalled once and then
    /// completed reports `1` forever.
    pub stall_events: u32,
}

struct Job {
    survey: Arc<Survey>,
    opts: SurveyOptions,
    priority: i32,
    threads: usize,
    state: JobState,
    cancel: Arc<CancelFlag>,
    gathers: Vec<Option<Array2<f32>>>,
    shots_done: usize,
    error: Option<String>,
    terminal_transitions: u32,
    /// When the job entered `Running` (ETA extrapolation origin).
    started_at: Option<Instant>,
    /// Watchdog flag: heartbeat currently silent past the threshold.
    stalled: bool,
    /// Distinct silence episodes flagged by the watchdog.
    stall_events: u32,
}

impl Job {
    fn progress(&self) -> f64 {
        let total = self.survey.len();
        if self.state == JobState::Completed || total == 0 {
            // An empty survey completes having done everything it had.
            f64::from(u8::from(self.state == JobState::Completed))
        } else {
            self.shots_done as f64 / total as f64
        }
    }

    /// ETA by linear extrapolation: `elapsed × (1 − p) / p`. Only
    /// meaningful mid-run, so `None` for every non-running state and for a
    /// running job that has not completed a shot yet.
    fn eta_s(&self) -> Option<f64> {
        if self.state != JobState::Running {
            return None;
        }
        let p = self.progress();
        if p <= 0.0 {
            return None;
        }
        let elapsed = self.started_at?.elapsed().as_secs_f64();
        Some((elapsed * (1.0 - p) / p).max(0.0))
    }

    fn status(&self, id: JobId) -> JobStatus {
        JobStatus {
            id,
            state: self.state,
            priority: self.priority,
            shots_total: self.survey.len(),
            shots_done: self.shots_done,
            error: self.error.clone(),
            terminal_transitions: self.terminal_transitions,
            progress: self.progress(),
            eta_s: self.eta_s(),
            stalled: self.stalled,
            stall_events: self.stall_events,
        }
    }

    fn snapshot(&self, id: JobId) -> JobSnapshot {
        let nt = self.survey.cfg().nt as u64;
        JobSnapshot {
            id,
            state: format!("{:?}", self.state),
            priority: self.priority,
            shots_done: self.shots_done,
            shots_total: self.survey.len(),
            vsteps_done: self.shots_done as u64 * nt,
            vsteps_total: self.survey.len() as u64 * nt,
            progress: self.progress(),
            eta_s: self.eta_s(),
            stalled: self.stalled,
            stall_events: self.stall_events,
        }
    }

    /// The single place a job may become terminal. Panics if it already is
    /// — the exactly-once invariant. Non-`Completed` terminals purge any
    /// gathers streamed before cancellation/failure was observed.
    fn set_terminal(&mut self, state: JobState, error: Option<String>) {
        assert!(state.is_terminal());
        assert!(
            !self.state.is_terminal(),
            "job reached a second terminal state: {:?} after {:?}",
            state,
            self.state
        );
        self.terminal_transitions += 1;
        if state != JobState::Completed {
            self.gathers.clear();
            self.shots_done = 0;
        }
        self.state = state;
        self.error = error;
        // A terminal job is by definition not stalled; the episode count
        // stays as the historical record.
        self.stalled = false;
    }
}

struct ServiceState {
    next_id: JobId,
    jobs: BTreeMap<JobId, Job>,
    pending: Vec<JobId>,
    shutdown: bool,
}

/// Recompute every queue-owned gauge from this service's state. Absolute
/// levels (not deltas), so the gauges self-heal and always describe the
/// most recently active service when several coexist (tests). A no-op when
/// telemetry is off — [`obs::metrics::gauge_set`] is runtime-gated.
fn refresh_gauges(st: &ServiceState) {
    if !obs::metrics::telemetry_enabled() {
        return;
    }
    let mut running = 0i64;
    let (mut completed, mut failed, mut cancelled, mut stalled) = (0i64, 0i64, 0i64, 0i64);
    for job in st.jobs.values() {
        match job.state {
            JobState::Running => running += 1,
            JobState::Completed => completed += 1,
            JobState::Failed => failed += 1,
            JobState::Cancelled => cancelled += 1,
            JobState::Queued => {}
        }
        if job.stalled {
            stalled += 1;
        }
    }
    obs::metrics::gauge_set(Gauge::QueueDepth, st.pending.len() as i64);
    obs::metrics::gauge_set(Gauge::RunningJobs, running);
    obs::metrics::gauge_set(Gauge::CompletedJobs, completed);
    obs::metrics::gauge_set(Gauge::FailedJobs, failed);
    obs::metrics::gauge_set(Gauge::CancelledJobs, cancelled);
    obs::metrics::gauge_set(Gauge::StalledJobs, stalled);
}

struct Inner {
    state: Mutex<ServiceState>,
    /// Wakes the scheduler on submit / shutdown.
    work_cv: Condvar,
    /// Wakes [`SurveyService::wait`]ers on terminal transitions.
    done_cv: Condvar,
    /// Service-wide tile cache lent to jobs that don't bring their own
    /// ([`ServiceConfig::cache`]). `None` when disabled by config or env.
    cache: Option<Arc<TileCache>>,
}

/// The survey job queue. See the module docs for the protocol.
pub struct SurveyService {
    inner: Arc<Inner>,
    scheduler: Option<JoinHandle<()>>,
    watchdog: Option<JoinHandle<()>>,
    /// Keeps the `/metrics`+`/jobs` endpoint alive for the service's
    /// lifetime; dropping the service stops it.
    telemetry: Option<obs::serve::TelemetryServer>,
    /// Whether this service registered the global `/jobs` provider (and
    /// must deregister it on drop).
    registered_provider: bool,
}

impl SurveyService {
    fn new_inner(cache: Option<Arc<TileCache>>) -> Arc<Inner> {
        Arc::new(Inner {
            state: Mutex::new(ServiceState {
                next_id: 0,
                jobs: BTreeMap::new(),
                pending: Vec::new(),
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            cache,
        })
    }

    /// The env-sized service cache, or `None` when `TEMPEST_CACHE_MB=0`
    /// disables it (an always-miss cache would add bookkeeping for nothing).
    fn env_cache() -> Option<Arc<TileCache>> {
        let cache = TileCache::from_env();
        cache.enabled().then(|| Arc::new(cache))
    }

    /// A paused service: submissions queue up until [`drain`](Self::drain)
    /// runs them synchronously. Deterministic by construction. No watchdog
    /// or endpoint — the telemetry gauges still track its transitions when
    /// telemetry is on, and the service tile cache is kept (drained reruns
    /// reuse tiles just like live ones).
    pub fn paused() -> Self {
        SurveyService {
            inner: Self::new_inner(Self::env_cache()),
            scheduler: None,
            watchdog: None,
            telemetry: None,
            registered_provider: false,
        }
    }

    /// A live service with the default [`ServiceConfig`]: a background
    /// scheduler thread picks jobs by (priority desc, id asc) and runs
    /// them one at a time; with telemetry on, the watchdog and endpoint
    /// come up too.
    pub fn start() -> Self {
        Self::start_with(ServiceConfig::default())
    }

    /// A live service with explicit watchdog/telemetry configuration.
    pub fn start_with(cfg: ServiceConfig) -> Self {
        let inner = Self::new_inner(if cfg.cache { Self::env_cache() } else { None });
        let worker = Arc::clone(&inner);
        let scheduler = std::thread::Builder::new()
            .name("tempest-survey-scheduler".into())
            .spawn(move || scheduler_loop(worker))
            .expect("spawn survey scheduler");

        // Everything below is live telemetry — none of it exists when the
        // runtime gate is off (which is always the case without the `obs`
        // feature), so a telemetry-off service is exactly the old one.
        let telemetry_on = obs::metrics::telemetry_enabled();
        let mut registered_provider = false;
        let mut telemetry = None;
        if telemetry_on && cfg.telemetry {
            let weak = Arc::downgrade(&inner);
            obs::metrics::set_jobs_provider(move || match weak.upgrade() {
                Some(inner) => {
                    let st = inner.state.lock().unwrap_or_else(|e| e.into_inner());
                    st.jobs.iter().map(|(&id, j)| j.snapshot(id)).collect()
                }
                None => Vec::new(),
            });
            registered_provider = true;
            telemetry = match &cfg.endpoint_addr {
                Some(addr) => obs::serve::TelemetryServer::start(&obs::serve::ServeConfig {
                    addr: addr.clone(),
                    ..Default::default()
                })
                .map_err(|e| eprintln!("tempest-survey: telemetry bind failed on {addr}: {e}"))
                .ok(),
                None => obs::serve::TelemetryServer::start_from_env(),
            };
        }
        let watchdog = (telemetry_on && cfg.watchdog).then(|| {
            let w = Arc::clone(&inner);
            let (stall_after, interval) = (cfg.stall_after, cfg.watchdog_interval);
            std::thread::Builder::new()
                .name("tempest-survey-watchdog".into())
                .spawn(move || watchdog_loop(w, stall_after, interval))
                .expect("spawn survey watchdog")
        });

        SurveyService {
            inner,
            scheduler: Some(scheduler),
            watchdog,
            telemetry,
            registered_provider,
        }
    }

    /// The bound address of this service's telemetry endpoint, if one is
    /// running (`TEMPEST_TELEMETRY` set and the bind succeeded).
    pub fn telemetry_addr(&self) -> Option<std::net::SocketAddr> {
        self.telemetry.as_ref().map(|t| t.local_addr())
    }

    /// The service-wide tile cache lent to jobs, if one is active
    /// ([`ServiceConfig::cache`] on and `TEMPEST_CACHE_MB` nonzero).
    /// Exposes hit/eviction statistics for monitoring and tests.
    pub fn tile_cache(&self) -> Option<&Arc<TileCache>> {
        self.inner.cache.as_ref()
    }

    /// Submit a job; returns immediately with its handle.
    pub fn submit(&self, spec: JobSpec) -> JobId {
        let mut st = self.inner.state.lock().unwrap();
        let id = st.next_id;
        st.next_id += 1;
        let shots = spec.survey.len();
        st.jobs.insert(
            id,
            Job {
                survey: spec.survey,
                opts: spec.opts,
                priority: spec.priority,
                threads: spec.threads,
                state: JobState::Queued,
                cancel: Arc::new(CancelFlag::new()),
                gathers: (0..shots).map(|_| None).collect(),
                shots_done: 0,
                error: None,
                terminal_transitions: 0,
                started_at: None,
                stalled: false,
                stall_events: 0,
            },
        );
        st.pending.push(id);
        refresh_gauges(&st);
        drop(st);
        self.inner.work_cv.notify_one();
        id
    }

    /// Current status of a job, or `None` for an unknown id.
    pub fn poll(&self, id: JobId) -> Option<JobStatus> {
        let st = self.inner.state.lock().unwrap();
        st.jobs.get(&id).map(|j| j.status(id))
    }

    /// Request cancellation. Returns `true` if the job existed and was not
    /// yet terminal: a `Queued` job retires to `Cancelled` immediately, a
    /// `Running` job stops at its next shot boundary (its terminal state is
    /// set by the executor). Cancelling a terminal or unknown job is a
    /// no-op returning `false`.
    pub fn cancel(&self, id: JobId) -> bool {
        let mut st = self.inner.state.lock().unwrap();
        let Some(job) = st.jobs.get_mut(&id) else {
            return false;
        };
        if job.state.is_terminal() {
            return false;
        }
        job.cancel.cancel();
        if job.state == JobState::Queued {
            job.set_terminal(JobState::Cancelled, None);
            st.pending.retain(|&p| p != id);
            refresh_gauges(&st);
            drop(st);
            self.inner.done_cv.notify_all();
        }
        true
    }

    /// Block until the job is terminal and return its final status, or
    /// `None` for an unknown id. On a paused service only jobs already
    /// retired (e.g. cancelled while queued) return without a prior
    /// [`drain`](Self::drain).
    pub fn wait(&self, id: JobId) -> Option<JobStatus> {
        let mut st = self.inner.state.lock().unwrap();
        loop {
            let job = st.jobs.get(&id)?;
            if job.state.is_terminal() {
                return Some(job.status(id));
            }
            st = self.inner.done_cv.wait(st).unwrap();
        }
    }

    /// Run queued jobs on the calling thread until the queue is empty, in
    /// (priority desc, id asc) order; returns how many jobs it executed.
    /// This is the deterministic execution path of a paused service (and a
    /// way to lend the caller's thread to a live one).
    pub fn drain(&self) -> usize {
        let mut ran = 0;
        loop {
            let picked = {
                let mut st = self.inner.state.lock().unwrap();
                pick(&mut st)
            };
            let Some(id) = picked else {
                return ran;
            };
            run_job(&self.inner, id);
            ran += 1;
        }
    }

    /// Take the gathers of a `Completed` job (one slot per shot, `None`
    /// where the survey had no receivers). Returns `None` for unknown,
    /// unfinished, cancelled, or failed jobs, and for a second take —
    /// cancelled jobs never expose traces.
    pub fn take_gathers(&self, id: JobId) -> Option<Vec<Option<Array2<f32>>>> {
        let mut st = self.inner.state.lock().unwrap();
        let job = st.jobs.get_mut(&id)?;
        if job.state != JobState::Completed || job.gathers.is_empty() {
            return None;
        }
        Some(std::mem::take(&mut job.gathers))
    }

    /// All job ids ever submitted, ascending.
    pub fn job_ids(&self) -> Vec<JobId> {
        self.inner.state.lock().unwrap().jobs.keys().copied().collect()
    }
}

impl Drop for SurveyService {
    fn drop(&mut self) {
        {
            let mut st = self.inner.state.lock().unwrap();
            st.shutdown = true;
        }
        self.inner.work_cv.notify_all();
        // The watchdog parks on done_cv; wake it so shutdown is prompt.
        self.inner.done_cv.notify_all();
        if let Some(h) = self.scheduler.take() {
            let _ = h.join();
        }
        if let Some(h) = self.watchdog.take() {
            let _ = h.join();
        }
        if self.registered_provider {
            obs::metrics::clear_jobs_provider();
        }
        // `self.telemetry` drops here, stopping the endpoint threads.
    }
}

/// Highest priority first, FIFO (lowest id) within a priority.
fn pick(st: &mut ServiceState) -> Option<JobId> {
    let (slot, _) = st
        .pending
        .iter()
        .enumerate()
        .min_by_key(|&(_, &id)| (std::cmp::Reverse(st.jobs[&id].priority), id))?;
    Some(st.pending.remove(slot))
}

fn scheduler_loop(inner: Arc<Inner>) {
    loop {
        let id = {
            let mut st = inner.state.lock().unwrap();
            loop {
                if st.shutdown {
                    return;
                }
                if let Some(id) = pick(&mut st) {
                    break id;
                }
                st = inner.work_cv.wait(st).unwrap();
            }
        };
        run_job(&inner, id);
    }
}

/// Execute one picked job to its terminal state.
fn run_job(inner: &Arc<Inner>, id: JobId) {
    let (survey, opts, threads, cancel) = {
        let mut st = inner.state.lock().unwrap();
        let Some(job) = st.jobs.get_mut(&id) else {
            return;
        };
        // A concurrent cancel() may have retired the job between pick()
        // and here; the state check keeps the terminal transition unique.
        if job.state != JobState::Queued {
            return;
        }
        if job.cancel.is_cancelled() {
            job.set_terminal(JobState::Cancelled, None);
            refresh_gauges(&st);
            drop(st);
            inner.done_cv.notify_all();
            return;
        }
        job.state = JobState::Running;
        job.started_at = Some(Instant::now());
        let mut opts = job.opts.clone();
        if opts.cache.is_none() {
            // Lend the service cache so consecutive jobs over the same
            // geometry reuse each other's tiles; a job-supplied cache wins.
            opts.cache = inner.cache.clone();
        }
        let picked = (
            Arc::clone(&job.survey),
            opts,
            job.threads,
            Arc::clone(&job.cancel),
        );
        refresh_gauges(&st);
        picked
    };
    // Seed the liveness clock at job admission: the watchdog must measure
    // silence from "this job began", not from whatever ran before it.
    obs::metrics::heartbeat(1);

    // Stream each gather into the job record as the shot lands, so pollers
    // see `shots_done` rise while the job runs.
    let sink_inner = Arc::clone(inner);
    let sink = move |r: crate::engine::ShotResult| {
        let mut st = sink_inner.state.lock().unwrap();
        if let Some(job) = st.jobs.get_mut(&id) {
            job.gathers[r.index] = r.gather;
            job.shots_done += 1;
        }
    };
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let run = || run_survey_streaming(&survey, &opts, Some(&cancel), &sink);
        if threads > 0 {
            with_thread_budget(threads, run)
        } else {
            run()
        }
    }));

    let mut st = inner.state.lock().unwrap();
    let job = st.jobs.get_mut(&id).expect("running job record");
    match outcome {
        Err(payload) => job.set_terminal(JobState::Failed, Some(panic_message(payload))),
        Ok(Err(e)) => job.set_terminal(JobState::Failed, Some(e.to_string())),
        Ok(Ok(out)) if out.cancelled => job.set_terminal(JobState::Cancelled, None),
        Ok(Ok(_)) => job.set_terminal(JobState::Completed, None),
    }
    refresh_gauges(&st);
    drop(st);
    inner.done_cv.notify_all();
}

/// The stall watchdog: every `interval`, compare the running job's
/// heartbeat age against `stall_after` and flip its `stalled` flag on the
/// silence edges. Flagging is level-triggered per episode — a job stays
/// flagged while silent and is counted once per episode in
/// `stall_events`, however many watchdog ticks the silence spans.
fn watchdog_loop(inner: Arc<Inner>, stall_after: Duration, interval: Duration) {
    let mut st = inner.state.lock().unwrap_or_else(|e| e.into_inner());
    loop {
        if st.shutdown {
            return;
        }
        let age = obs::metrics::heartbeat_age();
        let silent = matches!(age, Some(a) if a > stall_after);
        let mut changed = false;
        for job in st.jobs.values_mut() {
            if job.state != JobState::Running {
                continue;
            }
            if silent && !job.stalled {
                job.stalled = true;
                job.stall_events += 1;
                changed = true;
            } else if !silent && job.stalled {
                job.stalled = false;
                changed = true;
            }
        }
        if changed {
            refresh_gauges(&st);
        }
        let (guard, _) = inner
            .done_cv
            .wait_timeout(st, interval)
            .unwrap_or_else(|e| e.into_inner());
        st = guard;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ShotSpec;
    use tempest_core::config::EquationKind;
    use tempest_core::SimConfig;
    use tempest_grid::{Domain, Model, Shape};
    use tempest_sparse::SparsePoints;

    fn tiny_survey(n_shots: usize) -> Arc<Survey> {
        let domain = Domain::uniform(Shape::cube(12), 10.0);
        let model = Model::homogeneous(domain, 2000.0);
        let cfg = SimConfig::new(domain, 4, EquationKind::Acoustic, 2000.0, 30.0)
            .with_nt(4)
            .with_boundary(2, 0.3);
        let mut s = Survey::new(model, cfg)
            .with_receivers(SparsePoints::receiver_line(&domain, 3, 0.2));
        s.add_shot_line(n_shots, 0.1);
        Arc::new(s)
    }

    #[test]
    fn paused_service_completes_on_drain() {
        let svc = SurveyService::paused();
        let id = svc.submit(JobSpec::new(tiny_survey(2)));
        assert_eq!(svc.poll(id).unwrap().state, JobState::Queued);
        assert_eq!(svc.drain(), 1);
        let st = svc.poll(id).unwrap();
        assert_eq!(st.state, JobState::Completed);
        assert_eq!(st.shots_done, 2);
        assert_eq!(st.terminal_transitions, 1);
        let gathers = svc.take_gathers(id).unwrap();
        assert_eq!(gathers.len(), 2);
        assert!(gathers.iter().all(|g| g.is_some()));
        // Second take yields nothing.
        assert!(svc.take_gathers(id).is_none());
    }

    #[test]
    fn priority_beats_fifo_and_ties_break_by_id() {
        let svc = SurveyService::paused();
        let a = svc.submit(JobSpec::new(tiny_survey(1)).with_priority(0));
        let b = svc.submit(JobSpec::new(tiny_survey(1)).with_priority(5));
        let c = svc.submit(JobSpec::new(tiny_survey(1)).with_priority(5));
        let order = Mutex::new(Vec::new());
        {
            let mut st = svc.inner.state.lock().unwrap();
            let mut o = order.lock().unwrap();
            while let Some(id) = pick(&mut st) {
                o.push(id);
                // put it back as if executed
                st.jobs.get_mut(&id).unwrap().set_terminal(JobState::Cancelled, None);
            }
        }
        assert_eq!(*order.lock().unwrap(), vec![b, c, a]);
    }

    #[test]
    fn cancel_queued_job_never_runs_or_exposes_traces() {
        let svc = SurveyService::paused();
        let id = svc.submit(JobSpec::new(tiny_survey(3)));
        assert!(svc.cancel(id));
        assert!(!svc.cancel(id), "second cancel is a no-op");
        assert_eq!(svc.drain(), 0, "cancelled job must not be picked");
        let st = svc.poll(id).unwrap();
        assert_eq!(st.state, JobState::Cancelled);
        assert_eq!(st.terminal_transitions, 1);
        assert_eq!(st.shots_done, 0);
        assert!(svc.take_gathers(id).is_none());
    }

    #[test]
    fn failed_job_carries_error_payload() {
        let svc = SurveyService::paused();
        let domain = Domain::uniform(Shape::cube(12), 10.0);
        let model = Model::homogeneous(domain, 2000.0);
        let cfg = SimConfig::new(domain, 4, EquationKind::Acoustic, 2000.0, 30.0)
            .with_nt(4)
            .with_boundary(2, 0.3);
        let mut s = Survey::new(model, cfg);
        s.add_shot(ShotSpec::at([-5.0, 0.0, 0.0]));
        let id = svc.submit(JobSpec::new(Arc::new(s)));
        svc.drain();
        let st = svc.poll(id).unwrap();
        assert_eq!(st.state, JobState::Failed);
        let err = st.error.expect("failure payload");
        assert!(err.contains("outside"), "unexpected payload: {err}");
        assert!(svc.take_gathers(id).is_none());
    }

    #[test]
    fn live_service_processes_submissions() {
        let svc = SurveyService::start();
        let lo = svc.submit(JobSpec::new(tiny_survey(1)).with_priority(-1));
        let hi = svc.submit(JobSpec::new(tiny_survey(2)).with_priority(9).with_threads(2));
        let hi_st = svc.wait(hi).unwrap();
        let lo_st = svc.wait(lo).unwrap();
        assert_eq!(hi_st.state, JobState::Completed);
        assert_eq!(lo_st.state, JobState::Completed);
        assert_eq!(hi_st.shots_done, 2);
        assert_eq!(svc.take_gathers(lo).unwrap().len(), 1);
    }

    #[test]
    fn unknown_ids_are_refused() {
        let svc = SurveyService::paused();
        assert!(svc.poll(42).is_none());
        assert!(!svc.cancel(42));
        assert!(svc.take_gathers(42).is_none());
    }
}
