//! Benchmarks of the schedule engine itself: slab generation cost,
//! legality-checker cost, a small end-to-end comparison of the spatially
//! blocked vs wave-front (slab-ordered and diagonal-parallel) schedules on
//! a cache-resident problem, and a thread-scaling sweep of the two
//! wave-front executors (the large-grid comparison lives in the `figure9`
//! harness).

use std::hint::black_box;
use tempest_bench::microbench::{self, Config};
use tempest_bench::setup;
use tempest_bench::sweep::{exec_spaceblocked, exec_wavefront};
use tempest_core::WaveSolver;
use tempest_grid::Shape;
use tempest_par::Policy;
use tempest_tiling::legality::{check_diagonal_independence, check_schedule, DepModel};
use tempest_tiling::wavefront::{slabs, WavefrontSpec};
use tempest_tiling::Candidate;

fn bench_slab_generation(cfg: Config) {
    let shape = Shape::new(512, 512, 512);
    for tile in [32usize, 128] {
        let spec = WavefrontSpec::new(tile, tile, 8, 2, 8, 8);
        microbench::run(&format!("slab_generation/{tile}"), cfg, || {
            let mut n = 0usize;
            tempest_tiling::wavefront::for_each_slab(shape, 64, &spec, |s| {
                n += usize::from(!s.range.is_empty());
            });
            black_box(n);
        });
    }
}

fn bench_legality_checker(cfg: Config) {
    let shape = Shape::new(64, 64, 4);
    let spec = WavefrontSpec::new(16, 16, 8, 2, 8, 8);
    let sched = slabs(shape, 32, &spec);
    microbench::run("legality_check_64x64x32", cfg, || {
        check_schedule(
            shape,
            32,
            DepModel {
                radius: 2,
                levels: 3,
            },
            black_box(sched.iter().copied()),
        )
        .unwrap();
    });
}

fn bench_diagonal_checker(cfg: Config) {
    let shape = Shape::new(64, 64, 4);
    let spec = WavefrontSpec::new(16, 16, 8, 2, 8, 8);
    microbench::run("diagonal_independence_check_64x64x32", cfg, || {
        check_diagonal_independence(
            shape,
            32,
            DepModel {
                radius: 2,
                levels: 3,
            },
            black_box(&spec),
        )
        .unwrap();
    });
}

fn bench_schedules_end_to_end(cfg: Config) {
    {
        let mut s = setup::acoustic(64, 4, 8, 0);
        let e = exec_spaceblocked(8, 8);
        microbench::run("acoustic_64cube_8steps/spaceblocked", cfg, || {
            black_box(s.run(&e).elapsed);
        });
    }
    let cand = Candidate {
        tile_x: 32,
        tile_y: 32,
        tile_t: 4,
        block_x: 8,
        block_y: 8,
        diagonal: false,
    };
    for c in [cand, cand.with_diagonal()] {
        let label = if c.diagonal {
            "acoustic_64cube_8steps/wavefront_diagonal"
        } else {
            "acoustic_64cube_8steps/wavefront"
        };
        let mut s = setup::acoustic(64, 4, 8, 0);
        let e = exec_wavefront(&c);
        microbench::run(label, cfg, || {
            black_box(s.run(&e).elapsed);
        });
    }
}

/// Thread-scaling sweep of the two wave-front executors: the diagonal
/// executor's advantage is parallel grain, so it is only visible with more
/// than one worker. Capped at the machine's available threads
/// (`TEMPEST_THREADS` respected via `tempest_par::available_threads`).
fn bench_thread_scaling(cfg: Config) {
    let avail = tempest_par::available_threads();
    let cand = Candidate {
        tile_x: 16,
        tile_y: 16,
        tile_t: 4,
        block_x: 8,
        block_y: 8,
        diagonal: false,
    };
    for threads in [1usize, 2, 4, 8] {
        if threads > avail {
            println!(
                "thread_scaling: skipping {threads} threads (only {avail} available)"
            );
            continue;
        }
        for c in [cand, cand.with_diagonal()] {
            let mode = if c.diagonal { "diagonal" } else { "slab" };
            let mut s = setup::acoustic(64, 4, 8, 0);
            let mut e = exec_wavefront(&c);
            e.policy = Policy::Capped { threads };
            microbench::run(
                &format!("thread_scaling/{mode}/t{threads}"),
                cfg,
                || {
                    black_box(s.run(&e).elapsed);
                },
            );
        }
    }
}

/// `--profile`: one instrumented run per schedule, rendered as a per-phase
/// table and written to `target/profile/*.json`.
fn profile_section() {
    tempest_obs::set_enabled(true);
    let cand = Candidate {
        tile_x: 32,
        tile_y: 32,
        tile_t: 4,
        block_x: 8,
        block_y: 8,
        diagonal: false,
    };
    let execs = [
        exec_spaceblocked(8, 8),
        exec_wavefront(&cand),
        exec_wavefront(&cand.with_diagonal()),
    ];
    for e in execs {
        let mut s = setup::acoustic(64, 4, 8, 0);
        let (_, profile, meta) = s.run_profiled(&e);
        if profile.is_empty() {
            println!("profile: no samples for {} — build with --features obs", meta.schedule);
            continue;
        }
        println!("{}", profile.render(&meta));
        match profile.write_json(&meta) {
            Ok(p) => println!("profile: wrote {}", p.display()),
            Err(err) => eprintln!("profile: could not write JSON: {err}"),
        }
    }
}

fn main() {
    let cfg = Config::coarse();
    bench_slab_generation(cfg);
    bench_legality_checker(cfg);
    bench_diagonal_checker(cfg);
    bench_schedules_end_to_end(cfg);
    bench_thread_scaling(cfg);
    if std::env::args().any(|a| a == "--profile") {
        profile_section();
    }
}
