//! Benchmarks of the schedule engine itself: slab generation cost,
//! legality-checker cost, a small end-to-end comparison of the spatially
//! blocked vs wave-front (slab-ordered, diagonal-parallel and dataflow)
//! schedules on a cache-resident problem, a thread-scaling sweep of the
//! wave-front executors, and two head-to-heads recorded into
//! `results/BENCH_<host>.json`: diagonal-vs-dataflow (barrier discipline)
//! and diamond-vs-dataflow (tiling geometry on the same barrier-free
//! substrate). The large-grid comparison lives in the `figure9` harness.

use std::hint::black_box;
use tempest_bench::microbench::{self, Config};
use tempest_bench::perf_report::{host_name, BenchEntry, BenchReport};
use tempest_bench::setup;
use tempest_bench::sweep::{exec_spaceblocked, exec_wavefront};
use tempest_core::WaveSolver;
use tempest_grid::Shape;
use tempest_par::Policy;
use tempest_tiling::legality::{check_diagonal_independence, check_schedule, DepModel};
use tempest_tiling::wavefront::{slabs, WavefrontSpec};
use tempest_tiling::{Candidate, DiamondAxis};

fn bench_slab_generation(cfg: Config) {
    let shape = Shape::new(512, 512, 512);
    for tile in [32usize, 128] {
        let spec = WavefrontSpec::new(tile, tile, 8, 2, 8, 8);
        microbench::run(&format!("slab_generation/{tile}"), cfg, || {
            let mut n = 0usize;
            tempest_tiling::wavefront::for_each_slab(shape, 64, &spec, |s| {
                n += usize::from(!s.range.is_empty());
            });
            black_box(n);
        });
    }
}

fn bench_legality_checker(cfg: Config) {
    let shape = Shape::new(64, 64, 4);
    let spec = WavefrontSpec::new(16, 16, 8, 2, 8, 8);
    let sched = slabs(shape, 32, &spec);
    microbench::run("legality_check_64x64x32", cfg, || {
        check_schedule(
            shape,
            32,
            DepModel {
                radius: 2,
                levels: 3,
            },
            black_box(sched.iter().copied()),
        )
        .unwrap();
    });
}

fn bench_diagonal_checker(cfg: Config) {
    let shape = Shape::new(64, 64, 4);
    let spec = WavefrontSpec::new(16, 16, 8, 2, 8, 8);
    microbench::run("diagonal_independence_check_64x64x32", cfg, || {
        check_diagonal_independence(
            shape,
            32,
            DepModel {
                radius: 2,
                levels: 3,
            },
            black_box(&spec),
        )
        .unwrap();
    });
}

fn bench_schedules_end_to_end(cfg: Config) {
    {
        let mut s = setup::acoustic(64, 4, 8, 0);
        let e = exec_spaceblocked(8, 8);
        microbench::run("acoustic_64cube_8steps/spaceblocked", cfg, || {
            black_box(s.run(&e).elapsed);
        });
    }
    let cand = Candidate {
        tile_x: 32,
        tile_y: 32,
        tile_t: 4,
        block_x: 8,
        block_y: 8,
        diagonal: false,
        dataflow: false,
        diamond: None,
        kernel: None,
    };
    for c in [cand, cand.with_diagonal(), cand.with_dataflow()] {
        let label = if c.dataflow {
            "acoustic_64cube_8steps/wavefront_dataflow"
        } else if c.diagonal {
            "acoustic_64cube_8steps/wavefront_diagonal"
        } else {
            "acoustic_64cube_8steps/wavefront"
        };
        let mut s = setup::acoustic(64, 4, 8, 0);
        let e = exec_wavefront(&c);
        microbench::run(label, cfg, || {
            black_box(s.run(&e).elapsed);
        });
    }
}

/// Thread-scaling sweep of the wave-front executors: the diagonal and
/// dataflow executors' advantage is parallel grain, so it is only visible
/// with more than one worker. Capped at the machine's available threads
/// (`TEMPEST_THREADS` respected via `tempest_par::available_threads`).
fn bench_thread_scaling(cfg: Config) {
    let avail = tempest_par::available_threads();
    let cand = Candidate {
        tile_x: 16,
        tile_y: 16,
        tile_t: 4,
        block_x: 8,
        block_y: 8,
        diagonal: false,
        dataflow: false,
        diamond: None,
        kernel: None,
    };
    for threads in [1usize, 2, 4, 8] {
        if threads > avail {
            println!(
                "thread_scaling: skipping {threads} threads (only {avail} available)"
            );
            continue;
        }
        for c in [cand, cand.with_diagonal(), cand.with_dataflow()] {
            let mode = if c.dataflow {
                "dataflow"
            } else if c.diagonal {
                "diagonal"
            } else {
                "slab"
            };
            let mut s = setup::acoustic(64, 4, 8, 0);
            let mut e = exec_wavefront(&c);
            e.policy = Policy::Capped { threads };
            microbench::run(
                &format!("thread_scaling/{mode}/t{threads}"),
                cfg,
                || {
                    black_box(s.run(&e).elapsed);
                },
            );
        }
    }
}

/// Barrier-discipline head-to-head (ISSUE 5 acceptance): at each temporal
/// tile height the diagonal and dataflow executors run the same tile
/// geometry, so median wall time isolates the scheduling overhead and the
/// profiled barrier-wait share isolates the synchronisation cost. Both the
/// medians and the shares are recorded into `results/BENCH_<host>.json`
/// (merged by entry key, so a `tempest-report` matrix in the same file
/// survives). Run with `TEMPEST_THREADS=4 --features obs` for the
/// reference comparison.
fn bench_dataflow_vs_diagonal(cfg: Config) {
    let threads = tempest_par::available_threads();
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    if threads > cores {
        println!(
            "dataflow_vs_diagonal: CAVEAT — {threads} threads on {cores} hardware core(s); \
             any work actually shared makes the other participants wait out the thief's \
             timeslice, which inflates the measured waits of whichever executor shares more \
             (the dataflow one). Medians are the decisive column here; compare shares on a \
             machine with ≥{threads} cores."
        );
    }
    // ~90 ms per run: give the medians a longer budget than the coarse
    // default's 600 ms or they are medians of five.
    let cfg = Config {
        measure: std::time::Duration::from_millis(2000),
        max_iters: 30,
        ..cfg
    };
    let mut entries: Vec<BenchEntry> = Vec::new();
    for tile_t in [2usize, 4] {
        // 16×16 tiles on the 64² footprint give 16 tiles per time row — a
        // wide enough graph that the scheduling discipline, not the tile
        // count, is what differs between the two executors.
        let cand = Candidate {
            tile_x: 16,
            tile_y: 16,
            tile_t,
            block_x: 8,
            block_y: 8,
            diagonal: false,
            dataflow: false,
            diamond: None,
            kernel: None,
        };
        let mut row = Vec::new();
        for c in [cand.with_diagonal(), cand.with_dataflow()] {
            let mode = if c.dataflow { "dataflow" } else { "diagonal" };
            // 32 steps: long enough (tens of milliseconds) that the OS
            // actually interleaves the worker threads — an 8-step run fits
            // in one timeslice and measures no synchronisation at all.
            let mut s = setup::acoustic(64, 4, 32, 0);
            let mut e = exec_wavefront(&c);
            // Full parallel dispatch: `Policy::Auto`'s min-items gate would
            // run the diagonal executor's small per-diagonal batches
            // sequentially and hide the barrier cost being measured.
            e.policy = Policy::Parallel;
            let sample = microbench::run(
                &format!("dataflow_vs_diagonal/t{tile_t}/{mode}"),
                cfg,
                || {
                    black_box(s.run(&e).elapsed);
                },
            );
            // Median barrier-wait share over five instrumented runs (one
            // run is hostage to scheduler luck); profiling stays off during
            // the timed iterations above.
            tempest_obs::set_enabled(true);
            let mut shares = Vec::new();
            let mut last = None;
            for _ in 0..5 {
                let (stats, profile, meta) = s.run_profiled(&e);
                shares.push(profile.barrier_wait_share());
                last = Some((stats, meta));
            }
            tempest_obs::set_enabled(false);
            shares.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let share = shares[shares.len() / 2];
            let (stats, meta) = last.unwrap();
            let total_gpoints = stats.gpoints_per_s * stats.elapsed.as_secs_f64();
            entries.push(BenchEntry {
                model: meta.name.clone(),
                schedule: tempest_obs::sanitize_label(&meta.schedule),
                kernel: "pencil".into(),
                gpts_per_s: total_gpoints / sample.median.as_secs_f64(),
                elapsed_s: sample.median.as_secs_f64(),
                barrier_wait_share: share,
                worst_imbalance: 1.0,
                critical_path_ms: 0.0,
                dropped_events: 0,
                ai: 0.0,
                roof_pct: 0.0,
                reuse_pct: 0.0,
            });
            row.push((mode, sample.median, share));
        }
        let (_, diag_med, diag_share) = row[0];
        let (_, dflow_med, dflow_share) = row[1];
        println!(
            "dataflow_vs_diagonal/t{tile_t}: barrier-wait diagonal {:.2}% vs dataflow {:.2}% ({}), \
             median {:?} vs {:?} ({})",
            100.0 * diag_share,
            100.0 * dflow_share,
            if profile_compiled_in() {
                if dflow_share < diag_share { "lower ✓" } else { "NOT lower ✗" }
            } else {
                "build with --features obs to measure"
            },
            diag_med,
            dflow_med,
            if dflow_med <= diag_med { "no slower ✓" } else { "slower ✗" },
        );
    }

    record_entries(threads, entries, "dataflow_vs_diagonal");
}

/// Merge head-to-head entries into the host's bench report so the
/// comparison is on record next to the tempest-report matrix. `cargo bench`
/// runs with the package as CWD, so resolve `results/` against the
/// workspace root.
fn record_entries(threads: usize, entries: Vec<BenchEntry>, label: &str) {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/bench has a workspace root two levels up")
        .to_path_buf();
    let dir = root.join("results");
    let path = dir.join(format!("BENCH_{}.json", host_name()));
    let mut report = BenchReport::read(&path).unwrap_or(BenchReport {
        host: host_name(),
        threads,
        size: 64,
        nt: 8,
        ..Default::default()
    });
    for e in entries {
        report.entries.retain(|old| old.key() != e.key());
        report.entries.push(e);
    }
    match report.write(&dir) {
        Ok(p) => println!("{label}: recorded in {}", p.display()),
        Err(e) => eprintln!("{label}: could not write report: {e}"),
    }
}

/// Diamond-vs-dataflow head-to-head: at each temporal tile height both
/// schedules run barrier-free on the dependency-counted substrate with the
/// same 16-wide tiles, so the median wall time isolates the tiling
/// geometry — diamonds trade the dataflow schedule's 2D spatial tiling for
/// full-height time tiles with no redundant halo recompute and a wider
/// ready frontier along the cross axis. Recorded into
/// `results/BENCH_<host>.json` next to the other head-to-head.
fn bench_diamond_vs_dataflow(cfg: Config) {
    let threads = tempest_par::available_threads();
    let cfg = Config {
        measure: std::time::Duration::from_millis(2000),
        max_iters: 30,
        ..cfg
    };
    let mut entries: Vec<BenchEntry> = Vec::new();
    for tile_t in [2usize, 4] {
        // Width 16 at radius 2 (so4): slope 4 at tile_t 2, slope 2 at
        // tile_t 4 — both legal, same footprint as the dataflow tiles.
        let cand = Candidate {
            tile_x: 16,
            tile_y: 16,
            tile_t,
            block_x: 8,
            block_y: 8,
            ..Candidate::default()
        };
        let mut row = Vec::new();
        for c in [cand.with_dataflow(), cand.with_diamond(DiamondAxis::X)] {
            let mode = if c.diamond.is_some() { "diamond" } else { "dataflow" };
            let mut s = setup::acoustic(64, 4, 32, 0);
            let mut e = exec_wavefront(&c);
            e.policy = Policy::Parallel;
            let sample = microbench::run(
                &format!("diamond_vs_dataflow/t{tile_t}/{mode}"),
                cfg,
                || {
                    black_box(s.run(&e).elapsed);
                },
            );
            tempest_obs::set_enabled(true);
            let mut shares = Vec::new();
            let mut last = None;
            for _ in 0..5 {
                let (stats, profile, meta) = s.run_profiled(&e);
                shares.push(profile.barrier_wait_share());
                last = Some((stats, meta));
            }
            tempest_obs::set_enabled(false);
            shares.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let share = shares[shares.len() / 2];
            let (stats, meta) = last.unwrap();
            let total_gpoints = stats.gpoints_per_s * stats.elapsed.as_secs_f64();
            entries.push(BenchEntry {
                model: meta.name.clone(),
                schedule: tempest_obs::sanitize_label(&meta.schedule),
                kernel: "pencil".into(),
                gpts_per_s: total_gpoints / sample.median.as_secs_f64(),
                elapsed_s: sample.median.as_secs_f64(),
                barrier_wait_share: share,
                worst_imbalance: 1.0,
                critical_path_ms: 0.0,
                dropped_events: 0,
                ai: 0.0,
                roof_pct: 0.0,
                reuse_pct: 0.0,
            });
            row.push((mode, sample.median, share));
        }
        let (_, dflow_med, dflow_share) = row[0];
        let (_, dmnd_med, dmnd_share) = row[1];
        println!(
            "diamond_vs_dataflow/t{tile_t}: median dataflow {:?} vs diamond {:?} ({}), \
             barrier-wait {:.2}% vs {:.2}%",
            dflow_med,
            dmnd_med,
            if dmnd_med <= dflow_med { "diamond no slower ✓" } else { "diamond slower" },
            100.0 * dflow_share,
            100.0 * dmnd_share,
        );
    }
    record_entries(threads, entries, "diamond_vs_dataflow");
}

/// Whether the profiling substrate is compiled in (barrier shares are
/// always 0.0 otherwise).
fn profile_compiled_in() -> bool {
    tempest_obs::set_enabled(true);
    let on = tempest_obs::enabled();
    tempest_obs::set_enabled(false);
    on
}

/// `--profile`: one instrumented run per schedule, rendered as a per-phase
/// table and written to `target/profile/*.json`.
fn profile_section() {
    tempest_obs::set_enabled(true);
    let cand = Candidate {
        tile_x: 32,
        tile_y: 32,
        tile_t: 4,
        block_x: 8,
        block_y: 8,
        diagonal: false,
        dataflow: false,
        diamond: None,
        kernel: None,
    };
    let execs = [
        exec_spaceblocked(8, 8),
        exec_wavefront(&cand),
        exec_wavefront(&cand.with_diagonal()),
        exec_wavefront(&cand.with_dataflow()),
    ];
    for e in execs {
        let mut s = setup::acoustic(64, 4, 8, 0);
        let (_, profile, meta) = s.run_profiled(&e);
        if profile.is_empty() {
            println!("profile: no samples for {} — build with --features obs", meta.schedule);
            continue;
        }
        println!("{}", profile.render(&meta));
        match profile.write_json(&meta) {
            Ok(p) => println!("profile: wrote {}", p.display()),
            Err(err) => eprintln!("profile: could not write JSON: {err}"),
        }
    }
}

fn main() {
    let cfg = Config::coarse();
    bench_slab_generation(cfg);
    bench_legality_checker(cfg);
    bench_diagonal_checker(cfg);
    bench_schedules_end_to_end(cfg);
    bench_thread_scaling(cfg);
    bench_dataflow_vs_diagonal(cfg);
    bench_diamond_vs_dataflow(cfg);
    if std::env::args().any(|a| a == "--profile") {
        profile_section();
    }
}
