//! Criterion benchmarks of the schedule engine itself: slab generation
//! cost, legality-checker cost, and a small end-to-end comparison of the
//! spatially blocked vs wave-front schedule on a cache-resident problem
//! (the large-grid comparison lives in the `figure9` harness).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tempest_bench::setup;
use tempest_core::WaveSolver;
use tempest_bench::sweep::{exec_spaceblocked, exec_wavefront};
use tempest_grid::Shape;
use tempest_tiling::legality::{check_schedule, DepModel};
use tempest_tiling::wavefront::{slabs, WavefrontSpec};
use tempest_tiling::Candidate;

fn bench_slab_generation(c: &mut Criterion) {
    let shape = Shape::new(512, 512, 512);
    let mut g = c.benchmark_group("slab_generation");
    for tile in [32usize, 128] {
        let spec = WavefrontSpec::new(tile, tile, 8, 2, 8, 8);
        g.bench_with_input(BenchmarkId::from_parameter(tile), &tile, |b, _| {
            b.iter(|| {
                let mut n = 0usize;
                tempest_tiling::wavefront::for_each_slab(shape, 64, &spec, |s| {
                    n += usize::from(!s.range.is_empty());
                });
                black_box(n)
            })
        });
    }
    g.finish();
}

fn bench_legality_checker(c: &mut Criterion) {
    let shape = Shape::new(64, 64, 4);
    let spec = WavefrontSpec::new(16, 16, 8, 2, 8, 8);
    let sched = slabs(shape, 32, &spec);
    c.bench_function("legality_check_64x64x32", |b| {
        b.iter(|| {
            check_schedule(
                shape,
                32,
                DepModel {
                    radius: 2,
                    levels: 3,
                },
                black_box(sched.iter().copied()),
            )
            .unwrap()
        })
    });
}

fn bench_schedules_end_to_end(c: &mut Criterion) {
    let mut g = c.benchmark_group("acoustic_64cube_8steps");
    g.sample_size(10);
    g.bench_function("spaceblocked", |b| {
        let mut s = setup::acoustic(64, 4, 8, 0);
        let e = exec_spaceblocked(8, 8);
        b.iter(|| black_box(s.run(&e).elapsed))
    });
    g.bench_function("wavefront", |b| {
        let mut s = setup::acoustic(64, 4, 8, 0);
        let cand = Candidate {
            tile_x: 32,
            tile_y: 32,
            tile_t: 4,
            block_x: 8,
            block_y: 8,
        };
        let e = exec_wavefront(&cand);
        b.iter(|| black_box(s.run(&e).elapsed))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15).warm_up_time(std::time::Duration::from_millis(500)).measurement_time(std::time::Duration::from_secs(2));
    targets = bench_slab_generation, bench_legality_checker, bench_schedules_end_to_end
}
criterion_main!(benches);
