//! Benchmarks of the three wave propagators' per-step cost at a
//! cache-resident size — the relative ordering (acoustic fastest per point,
//! TTI most compute, elastic most data) is the §III characterisation the
//! larger harness runs build on.

use std::hint::black_box;
use tempest_bench::microbench::{self, Config};
use tempest_bench::setup;
use tempest_bench::sweep::exec_spaceblocked;
use tempest_core::WaveSolver;

const N: usize = 48;
const NT: usize = 4;

fn main() {
    let cfg = Config::coarse();
    let e = exec_spaceblocked(8, 8);
    let elems = (N * N * N * NT) as u64;
    for so in [4usize, 8] {
        let mut s = setup::acoustic(N, so, NT, 0);
        microbench::run_elems(&format!("propagator_step/acoustic/{so}"), cfg, elems, || {
            black_box(s.run(&e).elapsed);
        });
        let mut s = setup::tti(N, so, NT, 0);
        microbench::run_elems(&format!("propagator_step/tti/{so}"), cfg, elems, || {
            black_box(s.run(&e).elapsed);
        });
        let mut s = setup::elastic(N, so, NT, 0);
        microbench::run_elems(&format!("propagator_step/elastic/{so}"), cfg, elems, || {
            black_box(s.run(&e).elapsed);
        });
    }
}
