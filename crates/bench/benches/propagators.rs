//! Criterion benchmarks of the three wave propagators' per-step cost at a
//! cache-resident size — the relative ordering (acoustic fastest per point,
//! TTI most compute, elastic most data) is the §III characterisation the
//! larger harness runs build on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use tempest_bench::setup;
use tempest_core::WaveSolver;
use tempest_bench::sweep::exec_spaceblocked;

const N: usize = 48;
const NT: usize = 4;

fn bench_models(c: &mut Criterion) {
    let mut g = c.benchmark_group("propagator_step");
    g.throughput(Throughput::Elements((N * N * N * NT) as u64));
    let e = exec_spaceblocked(8, 8);
    for so in [4usize, 8] {
        g.bench_with_input(BenchmarkId::new("acoustic", so), &so, |b, &so| {
            let mut s = setup::acoustic(N, so, NT, 0);
            b.iter(|| black_box(s.run(&e).elapsed))
        });
        g.bench_with_input(BenchmarkId::new("tti", so), &so, |b, &so| {
            let mut s = setup::tti(N, so, NT, 0);
            b.iter(|| black_box(s.run(&e).elapsed))
        });
        g.bench_with_input(BenchmarkId::new("elastic", so), &so, |b, &so| {
            let mut s = setup::elastic(N, so, NT, 0);
            b.iter(|| black_box(s.run(&e).elapsed))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).warm_up_time(std::time::Duration::from_millis(500)).measurement_time(std::time::Duration::from_secs(2));
    targets = bench_models
}
criterion_main!(benches);
