//! Benchmarks of the three wave propagators' per-step cost at a
//! cache-resident size — the relative ordering (acoustic fastest per point,
//! TTI most compute, elastic most data) is the §III characterisation the
//! larger harness runs build on.

use std::hint::black_box;
use tempest_bench::microbench::{self, Config};
use tempest_bench::setup;
use tempest_bench::sweep::exec_spaceblocked;
use tempest_core::WaveSolver;

const N: usize = 48;
const NT: usize = 4;

/// `--profile`: one instrumented spatially blocked run per propagator,
/// rendered as a per-phase table and written to `target/profile/*.json`.
fn profile_section() {
    tempest_obs::set_enabled(true);
    let e = exec_spaceblocked(8, 8);
    let mut profiled: Vec<(tempest_obs::Profile, tempest_obs::RunMeta)> = Vec::new();
    {
        let mut s = setup::acoustic(N, 8, NT, 0);
        let (_, p, m) = s.run_profiled(&e);
        profiled.push((p, m));
    }
    {
        let mut s = setup::tti(N, 8, NT, 0);
        let (_, p, m) = s.run_profiled(&e);
        profiled.push((p, m));
    }
    {
        let mut s = setup::elastic(N, 8, NT, 0);
        let (_, p, m) = s.run_profiled(&e);
        profiled.push((p, m));
    }
    for (profile, meta) in profiled {
        if profile.is_empty() {
            println!("profile: no samples for {} — build with --features obs", meta.name);
            continue;
        }
        println!("{}", profile.render(&meta));
        match profile.write_json(&meta) {
            Ok(p) => println!("profile: wrote {}", p.display()),
            Err(err) => eprintln!("profile: could not write JSON: {err}"),
        }
    }
}

fn main() {
    let cfg = Config::coarse();
    let e = exec_spaceblocked(8, 8);
    let elems = (N * N * N * NT) as u64;
    for so in [4usize, 8] {
        let mut s = setup::acoustic(N, so, NT, 0);
        microbench::run_elems(&format!("propagator_step/acoustic/{so}"), cfg, elems, || {
            black_box(s.run(&e).elapsed);
        });
        let mut s = setup::tti(N, so, NT, 0);
        microbench::run_elems(&format!("propagator_step/tti/{so}"), cfg, elems, || {
            black_box(s.run(&e).elapsed);
        });
        let mut s = setup::elastic(N, so, NT, 0);
        microbench::run_elems(&format!("propagator_step/elastic/{so}"), cfg, elems, || {
            black_box(s.run(&e).elapsed);
        });
    }
    if std::env::args().any(|a| a == "--profile") {
        profile_section();
    }
}
