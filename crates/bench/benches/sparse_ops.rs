//! Micro-benchmarks of the off-grid sparse-operator paths:
//! classic per-timestep injection (Listing 1), the one-off precomputation
//! cost (§II.A — the "negligible overhead" claim), and the per-step fused
//! apply in its uncompressed (Listing 4) and compressed (Listing 5) forms.

use std::hint::black_box;
use tempest_bench::microbench::{self, Config};
use tempest_grid::{Domain, Field, Shape};
use tempest_sparse::wavelet::wavelet_matrix;
use tempest_sparse::{inject, ricker, CompressedMask, SourcePrecompute, SparsePoints};

const N: usize = 96;
const NT: usize = 32;

fn domain() -> Domain {
    Domain::uniform(Shape::cube(N), 10.0)
}

fn bench_classic_injection(cfg: Config) {
    let d = domain();
    for nsrc in [1usize, 64, 1024] {
        let pts = SparsePoints::dense_layout(&d, nsrc, 0.37);
        let stencils = tempest_sparse::interp::trilinear_all(&d, &pts);
        let amps = vec![0.5f32; nsrc];
        let mut f = Field::zeros(d.shape(), 2);
        microbench::run(&format!("classic_inject/{nsrc}"), cfg, || {
            inject(black_box(&mut f), &stencils, &amps, |_, _, _| 1.0);
        });
    }
}

fn bench_precompute_build(cfg: Config) {
    let d = domain();
    for nsrc in [1usize, 64, 1024] {
        let pts = SparsePoints::dense_layout(&d, nsrc, 0.37);
        let w = wavelet_matrix(&ricker(10.0, 0.001, NT), nsrc);
        microbench::run(&format!("precompute_build/{nsrc}"), cfg, || {
            let pre = SourcePrecompute::build(black_box(&d), &pts, &w);
            let comp = CompressedMask::build(&pre.sid);
            black_box((pre.npts(), comp.total()));
        });
    }
}

fn bench_fused_apply(cfg: Config) {
    let d = domain();
    let pts = SparsePoints::plane_layout(&d, 64, 0.5, 0.37);
    let w = wavelet_matrix(&ricker(10.0, 0.001, NT), 64);
    let pre = SourcePrecompute::build(&d, &pts, &w);
    let comp = CompressedMask::build(&pre.sid);
    let mut f = Field::zeros(d.shape(), 2);

    // Listing 4: full z scan against the binary mask.
    microbench::run("fused_apply_per_sweep/uncompressed_mask_scan", cfg, || {
        let dcmp = pre.dcmp_row(3);
        for x in 0..N {
            for y in 0..N {
                let sm = pre.sm_pencil(x, y);
                let sid = pre.sid_pencil(x, y);
                for z in 0..N {
                    if sm[z] != 0 {
                        f.add(x, y, z, dcmp[sid[z] as usize]);
                    }
                }
            }
        }
        black_box(&f);
    });

    // Listing 5: compressed nnz entries only.
    microbench::run("fused_apply_per_sweep/compressed_nnz", cfg, || {
        let dcmp = pre.dcmp_row(3);
        for x in 0..N {
            for y in 0..N {
                for (z, id) in comp.entries(x, y) {
                    f.add(x, y, z, dcmp[id]);
                }
            }
        }
        black_box(&f);
    });
}

fn main() {
    let cfg = Config::default();
    bench_classic_injection(cfg);
    bench_precompute_build(Config::coarse());
    bench_fused_apply(cfg);
}
