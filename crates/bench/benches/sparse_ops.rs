//! Criterion micro-benchmarks of the off-grid sparse-operator paths:
//! classic per-timestep injection (Listing 1), the one-off precomputation
//! cost (§II.A — the "negligible overhead" claim), and the per-step fused
//! apply in its uncompressed (Listing 4) and compressed (Listing 5) forms.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tempest_grid::{Domain, Field, Shape};
use tempest_sparse::wavelet::wavelet_matrix;
use tempest_sparse::{inject, ricker, CompressedMask, SourcePrecompute, SparsePoints};

const N: usize = 96;
const NT: usize = 32;

fn domain() -> Domain {
    Domain::uniform(Shape::cube(N), 10.0)
}

fn bench_classic_injection(c: &mut Criterion) {
    let d = domain();
    let mut g = c.benchmark_group("classic_inject");
    for nsrc in [1usize, 64, 1024] {
        let pts = SparsePoints::dense_layout(&d, nsrc, 0.37);
        let stencils = tempest_sparse::interp::trilinear_all(&d, &pts);
        let amps = vec![0.5f32; nsrc];
        let mut f = Field::zeros(d.shape(), 2);
        g.bench_with_input(BenchmarkId::from_parameter(nsrc), &nsrc, |b, _| {
            b.iter(|| {
                inject(black_box(&mut f), &stencils, &amps, |_, _, _| 1.0);
            })
        });
    }
    g.finish();
}

fn bench_precompute_build(c: &mut Criterion) {
    let d = domain();
    let mut g = c.benchmark_group("precompute_build");
    g.sample_size(10);
    for nsrc in [1usize, 64, 1024] {
        let pts = SparsePoints::dense_layout(&d, nsrc, 0.37);
        let w = wavelet_matrix(&ricker(10.0, 0.001, NT), nsrc);
        g.bench_with_input(BenchmarkId::from_parameter(nsrc), &nsrc, |b, _| {
            b.iter(|| {
                let pre = SourcePrecompute::build(black_box(&d), &pts, &w);
                let comp = CompressedMask::build(&pre.sid);
                black_box((pre.npts(), comp.total()))
            })
        });
    }
    g.finish();
}

fn bench_fused_apply(c: &mut Criterion) {
    let d = domain();
    let pts = SparsePoints::plane_layout(&d, 64, 0.5, 0.37);
    let w = wavelet_matrix(&ricker(10.0, 0.001, NT), 64);
    let pre = SourcePrecompute::build(&d, &pts, &w);
    let comp = CompressedMask::build(&pre.sid);
    let mut f = Field::zeros(d.shape(), 2);
    let mut g = c.benchmark_group("fused_apply_per_sweep");

    // Listing 4: full z2 scan against the binary mask.
    g.bench_function("uncompressed_mask_scan", |b| {
        b.iter(|| {
            let dcmp = pre.dcmp_row(3);
            for x in 0..N {
                for y in 0..N {
                    let sm = pre.sm_pencil(x, y);
                    let sid = pre.sid_pencil(x, y);
                    for z in 0..N {
                        if sm[z] != 0 {
                            f.add(x, y, z, dcmp[sid[z] as usize]);
                        }
                    }
                }
            }
            black_box(&f);
        })
    });

    // Listing 5: compressed nnz entries only.
    g.bench_function("compressed_nnz", |b| {
        b.iter(|| {
            let dcmp = pre.dcmp_row(3);
            for x in 0..N {
                for y in 0..N {
                    for (z, id) in comp.entries(x, y) {
                        f.add(x, y, z, dcmp[id]);
                    }
                }
            }
            black_box(&f);
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).warm_up_time(std::time::Duration::from_millis(500)).measurement_time(std::time::Duration::from_secs(2));
    targets = bench_classic_injection, bench_precompute_build, bench_fused_apply
}
criterion_main!(benches);
