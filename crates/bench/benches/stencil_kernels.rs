//! Micro-benchmarks of the dense FD kernels at the paper's space orders
//! 4, 8 and 12, sweeping the **full interior** of an `N³` volume (every
//! pencil, not just one centre row — a single row overstates cache locality
//! and understates the y/x-stride traffic that dominates real sweeps).
//!
//! Each kernel is measured twice over identical iteration spaces: the
//! per-point scalar reference (`kernels::*`) and the whole-row pencil path
//! (`simd::*_pencil*`). The two produce bitwise-identical results (see
//! `tempest_stencil::simd` and `tests/kernel_equivalence.rs`), so the ratio
//! is a pure code-generation ablation: hoisted bounds checks, fixed-width
//! lanes, and slice windows vs per-point indexing.

use std::hint::black_box;
use tempest_bench::microbench::{self, Config, Sample};
use tempest_stencil::kernels::{
    cross_diff_r, first_derivative_weights, laplacian_at_r, staggered_diff_fwd_r,
    staggered_weights, AxisWeights,
};
use tempest_stencil::simd::{cross_diff_pencil_r, laplacian_pencil_r, staggered_pencil_fwd_r};

const N: usize = 64;

fn grid() -> (Vec<f32>, usize, usize) {
    let mut u = vec![0.0f32; N * N * N];
    for (i, v) in u.iter_mut().enumerate() {
        *v = ((i * 2_654_435_761) % 1000) as f32 * 1e-3 - 0.5;
    }
    (u, N * N, N)
}

/// Interior extent, elements covered, and a scratch row for pencil calls.
fn interior<const R: usize>() -> (usize, usize, u64, Vec<f32>) {
    let (lo, hi) = (R, N - R);
    let n = hi - lo;
    (lo, hi, (n * n * n) as u64, vec![0.0f32; n])
}

fn report_speedup(name: &str, so: usize, scalar: &Sample, pencil: &Sample) {
    let sp = scalar.median.as_secs_f64() / pencil.median.as_secs_f64().max(1e-12);
    println!("  {name}/so{so}: pencil speedup {sp:.2}x over scalar");
}

fn bench_laplacian<const R: usize>(cfg: Config, so: usize, u: &[f32], sx: usize, sy: usize) {
    let w = AxisWeights::second_derivative(so, 10.0);
    let side: [f32; R] = w.side_array();
    let center = 3.0 * w.center;
    let (lo, hi, elems, mut out) = interior::<R>();
    let scalar = microbench::run_elems(&format!("laplacian_scalar/so{so}"), cfg, elems, || {
        let mut acc = 0.0f32;
        for x in lo..hi {
            for y in lo..hi {
                let base = (x * N + y) * N;
                for z in lo..hi {
                    acc += laplacian_at_r::<R>(
                        black_box(u),
                        base + z,
                        sx,
                        sy,
                        center,
                        &side,
                        &side,
                        &side,
                    );
                }
            }
        }
        black_box(acc);
    });
    let pencil = microbench::run_elems(&format!("laplacian_pencil/so{so}"), cfg, elems, || {
        for x in lo..hi {
            for y in lo..hi {
                let i0 = (x * N + y) * N + lo;
                laplacian_pencil_r::<R>(
                    black_box(u),
                    i0,
                    sx,
                    sy,
                    center,
                    &side,
                    &side,
                    &side,
                    &mut out,
                );
                black_box(&out);
            }
        }
    });
    report_speedup("laplacian", so, &scalar, &pencil);
}

fn bench_cross<const R: usize>(cfg: Config, so: usize, u: &[f32], sx: usize, sy: usize) {
    let w = first_derivative_weights(so, 10.0);
    let w: [f32; R] = w[..].try_into().expect("radius mismatch");
    let (lo, hi, elems, mut out) = interior::<R>();
    let scalar = microbench::run_elems(&format!("cross_diff_scalar/so{so}"), cfg, elems, || {
        let mut acc = 0.0f32;
        for x in lo..hi {
            for y in lo..hi {
                let base = (x * N + y) * N;
                for z in lo..hi {
                    acc += cross_diff_r::<R>(black_box(u), base + z, sx, sy, &w, &w);
                }
            }
        }
        black_box(acc);
    });
    let pencil = microbench::run_elems(&format!("cross_diff_pencil/so{so}"), cfg, elems, || {
        for x in lo..hi {
            for y in lo..hi {
                let i0 = (x * N + y) * N + lo;
                cross_diff_pencil_r::<R>(black_box(u), i0, sx, sy, &w, &w, &mut out);
                black_box(&out);
            }
        }
    });
    report_speedup("cross_diff", so, &scalar, &pencil);
}

fn bench_staggered<const R: usize>(cfg: Config, so: usize, u: &[f32]) {
    let w = staggered_weights(so, 10.0);
    let w: [f32; R] = w[..].try_into().expect("radius mismatch");
    let (lo, hi, elems, mut out) = interior::<R>();
    let scalar = microbench::run_elems(&format!("staggered_scalar/so{so}"), cfg, elems, || {
        let mut acc = 0.0f32;
        for x in lo..hi {
            for y in lo..hi {
                let base = (x * N + y) * N;
                for z in lo..hi {
                    acc += staggered_diff_fwd_r::<R>(black_box(u), base + z, 1, &w);
                }
            }
        }
        black_box(acc);
    });
    let pencil = microbench::run_elems(&format!("staggered_pencil/so{so}"), cfg, elems, || {
        for x in lo..hi {
            for y in lo..hi {
                let i0 = (x * N + y) * N + lo;
                staggered_pencil_fwd_r::<R>(black_box(u), i0, 1, &w, &mut out);
                black_box(&out);
            }
        }
    });
    report_speedup("staggered", so, &scalar, &pencil);
}

fn bench_order<const R: usize>(cfg: Config, so: usize, u: &[f32], sx: usize, sy: usize) {
    bench_laplacian::<R>(cfg, so, u, sx, sy);
    bench_cross::<R>(cfg, so, u, sx, sy);
    bench_staggered::<R>(cfg, so, u);
}

fn main() {
    let cfg = Config::default();
    let (u, sx, sy) = grid();
    println!("stencil_kernels: full-interior sweep of a {N}^3 volume, scalar vs pencil");
    bench_order::<2>(cfg, 4, &u, sx, sy);
    bench_order::<4>(cfg, 8, &u, sx, sy);
    bench_order::<6>(cfg, 12, &u, sx, sy);
}
