//! Micro-benchmarks of the dense FD kernels: the per-pencil
//! Laplacian / first-derivative / staggered / cross-derivative building
//! blocks at the paper's space orders 4, 8, 12. These quantify the
//! operation-count growth with space order that shrinks temporal-blocking
//! gains (paper §I.B: "temporal blocking gains decrease when space-order
//! increases").

use std::hint::black_box;
use tempest_bench::microbench::{self, Config};
use tempest_stencil::kernels::{
    cross_diff, first_derivative_weights, laplacian_at, staggered_diff_fwd, staggered_weights,
    AxisWeights,
};

const N: usize = 64;

fn grid() -> (Vec<f32>, usize, usize) {
    let mut u = vec![0.0f32; N * N * N];
    for (i, v) in u.iter_mut().enumerate() {
        *v = ((i * 2_654_435_761) % 1000) as f32 * 1e-3 - 0.5;
    }
    (u, N * N, N)
}

fn bench_laplacian(cfg: Config) {
    let (u, sx, sy) = grid();
    for so in [4usize, 8, 12] {
        let w = AxisWeights::second_derivative(so, 10.0);
        let r = so / 2;
        let (z0, z1) = (r, N - r);
        microbench::run_elems(
            &format!("laplacian_pencil/{so}"),
            cfg,
            (z1 - z0) as u64,
            || {
                let mut acc = 0.0f32;
                let base = (N / 2 * N + N / 2) * N;
                for z in z0..z1 {
                    acc += laplacian_at(
                        black_box(&u),
                        base + z,
                        sx,
                        sy,
                        3.0 * w.center,
                        &w.side,
                        &w.side,
                        &w.side,
                    );
                }
                black_box(acc);
            },
        );
    }
}

fn bench_first_diff_cross(cfg: Config) {
    let (u, sx, sy) = grid();
    for so in [4usize, 8, 12] {
        let w = first_derivative_weights(so, 10.0);
        let r = so / 2;
        microbench::run_elems(
            &format!("cross_diff_pencil/{so}"),
            cfg,
            (N - 2 * r) as u64,
            || {
                let mut acc = 0.0f32;
                let base = (N / 2 * N + N / 2) * N;
                for z in r..N - r {
                    acc += cross_diff(black_box(&u), base + z, sx, sy, &w, &w);
                }
                black_box(acc);
            },
        );
    }
}

fn bench_staggered(cfg: Config) {
    let (u, _sx, _sy) = grid();
    for so in [4usize, 8, 12] {
        let w = staggered_weights(so, 10.0);
        let r = so / 2;
        microbench::run_elems(
            &format!("staggered_diff_pencil/{so}"),
            cfg,
            (N - 2 * r) as u64,
            || {
                let mut acc = 0.0f32;
                let base = (N / 2 * N + N / 2) * N;
                for z in r..N - r {
                    acc += staggered_diff_fwd(black_box(&u), base + z, 1, &w);
                }
                black_box(acc);
            },
        );
    }
}

fn main() {
    let cfg = Config::default();
    bench_laplacian(cfg);
    bench_first_diff_cross(cfg);
    bench_staggered(cfg);
}
