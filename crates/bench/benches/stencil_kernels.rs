//! Micro-benchmarks of the dense FD kernels at the paper's space orders
//! 4, 8 and 12, sweeping the **full interior** of an `N³` volume (every
//! pencil, not just one centre row — a single row overstates cache locality
//! and understates the y/x-stride traffic that dominates real sweeps).
//!
//! Each kernel shape is measured once per *kernel backend* available on
//! this host — the per-point `Scalar` reference, the autovectorizer-shaped
//! `Portable` pencil path, and the explicit-intrinsics `Avx2` path — over
//! identical iteration spaces through the same `Backend` row API the
//! propagators use. All backends produce bitwise-identical results (see
//! `tests/kernel_backends.rs`), so the ratios are pure code-generation
//! ablations: hoisted bounds checks and lane structure (scalar → portable),
//! then explicit unaligned 256-bit loads (portable → avx2).
//!
//! Per-backend rows are merged into `results/BENCH_<host>.json` (keyed
//! `microbench-so{so}/{kernel shape}/{backend}`) so the comparison is on
//! record next to the tempest-report matrix.

use std::hint::black_box;
use tempest_bench::microbench::{self, Config, Sample};
use tempest_bench::perf_report::{host_name, BenchEntry, BenchReport};
use tempest_stencil::kernels::{first_derivative_weights, staggered_weights, AxisWeights};
use tempest_stencil::Backend;

const N: usize = 64;

fn grid() -> (Vec<f32>, usize, usize) {
    let mut u = vec![0.0f32; N * N * N];
    for (i, v) in u.iter_mut().enumerate() {
        *v = ((i * 2_654_435_761) % 1000) as f32 * 1e-3 - 0.5;
    }
    (u, N * N, N)
}

/// Interior extent, elements covered, and a scratch row for row calls.
fn interior<const R: usize>() -> (usize, usize, u64, Vec<f32>) {
    let (lo, hi) = (R, N - R);
    let n = hi - lo;
    (lo, hi, (n * n * n) as u64, vec![0.0f32; n])
}

fn backends() -> Vec<Backend> {
    Backend::ALL.into_iter().filter(|b| b.available()).collect()
}

/// One BENCH-report row per measured (shape, order, backend) cell.
fn entry(shape: &str, so: usize, backend: Backend, elems: u64, s: &Sample) -> BenchEntry {
    let secs = s.median.as_secs_f64().max(1e-12);
    BenchEntry {
        model: format!("microbench-so{so}"),
        schedule: shape.to_string(),
        kernel: backend.name().to_string(),
        gpts_per_s: elems as f64 / secs / 1e9,
        elapsed_s: secs,
        barrier_wait_share: 0.0,
        worst_imbalance: 1.0,
        critical_path_ms: 0.0,
        dropped_events: 0,
        ai: 0.0,
        roof_pct: 0.0,
        reuse_pct: 0.0,
    }
}

fn report_speedups(name: &str, so: usize, rows: &[(Backend, Sample)]) {
    let scalar = rows
        .iter()
        .find(|(b, _)| *b == Backend::Scalar)
        .map(|(_, s)| s.median.as_secs_f64())
        .unwrap_or(0.0);
    for (b, s) in rows {
        if *b == Backend::Scalar {
            continue;
        }
        let sp = scalar / s.median.as_secs_f64().max(1e-12);
        println!("  {name}/so{so}: {} speedup {sp:.2}x over scalar", b.name());
    }
}

fn bench_laplacian<const R: usize>(
    cfg: Config,
    so: usize,
    u: &[f32],
    sx: usize,
    sy: usize,
    out_rows: &mut Vec<BenchEntry>,
) {
    let w = AxisWeights::second_derivative(so, 10.0);
    let side: [f32; R] = w.side_array();
    let center = 3.0 * w.center;
    let (lo, hi, elems, mut out) = interior::<R>();
    let mut rows = Vec::new();
    for b in backends() {
        let s = microbench::run_elems(&format!("laplacian_{}/so{so}", b.name()), cfg, elems, || {
            for x in lo..hi {
                for y in lo..hi {
                    let i0 = (x * N + y) * N + lo;
                    b.laplacian_row_r::<R>(
                        black_box(u),
                        i0,
                        sx,
                        sy,
                        center,
                        &side,
                        &side,
                        &side,
                        &mut out,
                    );
                    black_box(&out);
                }
            }
        });
        out_rows.push(entry("laplacian", so, b, elems, &s));
        rows.push((b, s));
    }
    report_speedups("laplacian", so, &rows);
}

fn bench_cross<const R: usize>(
    cfg: Config,
    so: usize,
    u: &[f32],
    sx: usize,
    sy: usize,
    out_rows: &mut Vec<BenchEntry>,
) {
    let w = first_derivative_weights(so, 10.0);
    let w: [f32; R] = w[..].try_into().expect("radius mismatch");
    let (lo, hi, elems, mut out) = interior::<R>();
    let mut rows = Vec::new();
    for b in backends() {
        let s = microbench::run_elems(&format!("cross_diff_{}/so{so}", b.name()), cfg, elems, || {
            for x in lo..hi {
                for y in lo..hi {
                    let i0 = (x * N + y) * N + lo;
                    b.cross_diff_row_r::<R>(black_box(u), i0, sx, sy, &w, &w, &mut out);
                    black_box(&out);
                }
            }
        });
        out_rows.push(entry("cross_diff", so, b, elems, &s));
        rows.push((b, s));
    }
    report_speedups("cross_diff", so, &rows);
}

fn bench_staggered<const R: usize>(cfg: Config, so: usize, u: &[f32], out_rows: &mut Vec<BenchEntry>) {
    let w = staggered_weights(so, 10.0);
    let w: [f32; R] = w[..].try_into().expect("radius mismatch");
    let (lo, hi, elems, mut out) = interior::<R>();
    let mut rows = Vec::new();
    for b in backends() {
        let s = microbench::run_elems(&format!("staggered_{}/so{so}", b.name()), cfg, elems, || {
            for x in lo..hi {
                for y in lo..hi {
                    let i0 = (x * N + y) * N + lo;
                    b.staggered_fwd_row_r::<R>(black_box(u), i0, 1, &w, &mut out);
                    black_box(&out);
                }
            }
        });
        out_rows.push(entry("staggered", so, b, elems, &s));
        rows.push((b, s));
    }
    report_speedups("staggered", so, &rows);
}

fn bench_order<const R: usize>(
    cfg: Config,
    so: usize,
    u: &[f32],
    sx: usize,
    sy: usize,
    out_rows: &mut Vec<BenchEntry>,
) {
    bench_laplacian::<R>(cfg, so, u, sx, sy, out_rows);
    bench_cross::<R>(cfg, so, u, sx, sy, out_rows);
    bench_staggered::<R>(cfg, so, u, out_rows);
}

/// Merge the per-backend rows into the host's bench report (same pattern as
/// the schedule head-to-heads in `benches/schedules.rs`). `cargo bench`
/// runs with the package as CWD, so resolve `results/` against the
/// workspace root.
fn record_entries(entries: Vec<BenchEntry>) {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/bench has a workspace root two levels up")
        .to_path_buf();
    let dir = root.join("results");
    let path = dir.join(format!("BENCH_{}.json", host_name()));
    let mut report = BenchReport::read(&path).unwrap_or(BenchReport {
        host: host_name(),
        threads: tempest_par::available_threads(),
        size: 64,
        nt: 8,
        ..Default::default()
    });
    for e in entries {
        report.entries.retain(|old| old.key() != e.key());
        report.entries.push(e);
    }
    match report.write(&dir) {
        Ok(p) => println!("stencil_kernels: recorded in {}", p.display()),
        Err(e) => eprintln!("stencil_kernels: could not write report: {e}"),
    }
}

fn main() {
    let cfg = Config::default();
    let (u, sx, sy) = grid();
    let names: Vec<&str> = backends().iter().map(|b| b.name()).collect();
    println!("stencil_kernels: full-interior sweep of a {N}^3 volume, backends: {names:?}");
    if !Backend::Avx2.available() {
        println!("  note: AVX2 unavailable on this host — avx2 rows omitted");
    }
    let mut rows = Vec::new();
    bench_order::<2>(cfg, 4, &u, sx, sy, &mut rows);
    bench_order::<4>(cfg, 8, &u, sx, sy, &mut rows);
    bench_order::<6>(cfg, 12, &u, sx, sy, &mut rows);
    record_entries(rows);
}
