//! Machine-readable benchmark reports and the perf-regression gate.
//!
//! [`BenchReport`] folds throughput, profile shares, and trace-derived load
//! metrics for a model × schedule × kernel matrix into one JSON document
//! (`BENCH_<host>.json`). A committed `results/baseline.json` (same format)
//! gives `tempest-report --check-baseline` something to diff against:
//! entries whose GPts/s fall more than a threshold below the baseline are
//! regressions and make the binary exit nonzero — the repo's first perf
//! gate (ROADMAP: "fast as the hardware allows" needs a guardrail, not just
//! a number).

use std::path::{Path, PathBuf};

use tempest_core::{Execution, WaveSolver};
use tempest_obs as obs;
use tempest_obs::analysis::TraceAnalysis;
use tempest_obs::json::Value;

/// One measured cell of the model × schedule × kernel matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchEntry {
    /// Solver + space order, e.g. `acoustic-so4`.
    pub model: String,
    /// Sanitized schedule label, e.g. `wavefront-diag_64x64_t8_8x8`.
    pub schedule: String,
    /// Resolved row-kernel backend: `scalar`, `portable`, or `avx2`.
    pub kernel: String,
    pub gpts_per_s: f64,
    pub elapsed_s: f64,
    /// Barrier-wait share of all timed work (0 when profiling was off).
    pub barrier_wait_share: f64,
    /// Worst per-diagonal max/mean tile span (1.0 when tracing was off or
    /// the schedule has no diagonal tiles).
    pub worst_imbalance: f64,
    /// Trace-derived critical-path estimate, milliseconds.
    pub critical_path_ms: f64,
    /// Trace events dropped by ring overflow during the kept run.
    pub dropped_events: u64,
    /// Operational intensity (FLOP/byte) under the schedule's streaming
    /// traffic model (0 when the roofline pass was skipped — absent from
    /// reports written before the roofline column existed).
    pub ai: f64,
    /// Share of the attainable roofline ceiling reached (0 when skipped).
    pub roof_pct: f64,
    /// Percentage of tile nodes restored from the incremental cache instead
    /// of recomputed (DESIGN.md §16). Only the `incremental` pseudo-row
    /// populates this; 0 everywhere else and in pre-cache reports.
    pub reuse_pct: f64,
}

impl BenchEntry {
    /// Stable lookup key for baseline comparison.
    pub fn key(&self) -> String {
        format!("{}/{}/{}", self.model, self.schedule, self.kernel)
    }
}

/// A full report: measurement context plus the entry matrix.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct BenchReport {
    pub host: String,
    pub threads: usize,
    /// Grid edge length the matrix ran at.
    pub size: usize,
    pub nt: usize,
    /// Short git revision the report was measured at (empty when unknown —
    /// reports written before metadata stamping carry no revision).
    pub git_sha: String,
    /// Resolved `KernelPath::Auto` backend on the measuring host.
    pub kernel_backend: String,
    /// `TEMPEST_THREADS` as set for the run (empty when unset).
    pub tempest_threads: String,
    pub entries: Vec<BenchEntry>,
}

/// One detected regression.
#[derive(Clone, Debug)]
pub struct Regression {
    pub key: String,
    pub baseline_gpts: f64,
    pub current_gpts: f64,
    /// `current / baseline` (< 1 means slower).
    pub ratio: f64,
}

/// Clamp to a finite value so the hand-rolled JSON never emits NaN/inf.
fn fin(x: f64) -> f64 {
    if x.is_finite() {
        x
    } else {
        0.0
    }
}

impl BenchReport {
    /// Measure one solver under one execution, best of `repeats`, and fold
    /// the run's profile + trace into a [`BenchEntry`]. Telemetry is only
    /// populated when the `obs` feature is on and profiling/tracing are
    /// enabled — the throughput column works regardless.
    pub fn measure_entry(
        solver: &mut dyn WaveSolver,
        exec: &Execution,
        repeats: usize,
        kernel_label: &str,
    ) -> (BenchEntry, obs::trace::Trace, obs::RunMeta) {
        assert!(repeats >= 1);
        let mut best: Option<(_, _, _, _)> = None;
        for _ in 0..repeats {
            let r = solver.run_traced(exec);
            if best.as_ref().map(|b: &(tempest_core::RunStats, _, _, _)| r.0.elapsed < b.0.elapsed).unwrap_or(true) {
                best = Some(r);
            }
        }
        let (stats, profile, trace, meta) = best.unwrap();
        let analysis = TraceAnalysis::from_trace(&trace);
        let entry = BenchEntry {
            model: meta.name.clone(),
            schedule: obs::sanitize_label(&meta.schedule),
            kernel: kernel_label.to_string(),
            gpts_per_s: stats.gpoints_per_s,
            elapsed_s: stats.elapsed.as_secs_f64(),
            barrier_wait_share: profile.barrier_wait_share(),
            worst_imbalance: analysis.worst_imbalance,
            critical_path_ms: analysis.critical_path_ns as f64 / 1e6,
            dropped_events: trace.dropped,
            ai: 0.0,
            roof_pct: 0.0,
            reuse_pct: 0.0,
        };
        (entry, trace, meta)
    }

    /// Measure the incremental-recomputation path (DESIGN.md §16) as one
    /// pseudo-row: a cold acoustic solve populates a fresh
    /// [`tempest_tiling::TileCache`], then the identical problem with its
    /// single source nudged sub-cell reruns through
    /// [`tempest_core::Acoustic::run_incremental`]. The row's throughput is
    /// the *warm rerun* — the interactive-rework latency the cache exists to
    /// cut — and `reuse_pct` records how much of the tile graph it restored
    /// instead of recomputing. Returns the entry plus the cold-run GPts/s
    /// for context. The schedule label is the fixed pseudo-name
    /// `incremental`, so (like the `survey` row) it never collides with a
    /// baseline entry measured before the row existed.
    pub fn measure_incremental_entry(
        size: usize,
        so: usize,
        nt: usize,
        exec: &Execution,
        kernel_label: &str,
    ) -> (BenchEntry, f64) {
        use tempest_grid::{Domain, Shape};
        use tempest_sparse::SparsePoints;

        let domain = Domain::uniform(Shape::cube(size), 10.0);
        // Generously sized private cache: the row measures reuse, not
        // eviction pressure (TEMPEST_CACHE_MB stays in charge elsewhere).
        let cache = tempest_tiling::TileCache::with_capacity_mb(256);
        let run = |frac: f32| {
            let src = SparsePoints::single_center(&domain, frac);
            let mut solver = crate::setup::acoustic_with_sources(size, so, nt, src);
            solver.run_incremental(exec, &cache, 0)
        };
        let cold = run(0.37);
        let warm = run(0.63);
        let entry = BenchEntry {
            model: format!("acoustic-so{so}"),
            schedule: "incremental".to_string(),
            kernel: kernel_label.to_string(),
            gpts_per_s: warm.stats.gpoints_per_s,
            elapsed_s: warm.stats.elapsed.as_secs_f64(),
            barrier_wait_share: 0.0,
            worst_imbalance: 1.0,
            critical_path_ms: 0.0,
            dropped_events: 0,
            ai: 0.0,
            roof_pct: 0.0,
            reuse_pct: 100.0 * warm.reuse_rate(),
        };
        (entry, cold.stats.gpoints_per_s)
    }

    /// Measure a whole multi-shot survey (shot-level sharding over the
    /// worker fleet, batch asset reuse — DESIGN.md §14) as one matrix row,
    /// best of `repeats`. Throughput counts every shot's full time loop over
    /// the nominal grid — the same point-update definition as
    /// [`tempest_core::RunStats`] — so the row is comparable to the
    /// single-shot schedule rows. The schedule label encodes the shot count
    /// so baselines keyed on it stay stable.
    pub fn measure_survey_entry(
        survey: &tempest_survey::Survey,
        opts: &tempest_survey::SurveyOptions,
        repeats: usize,
        kernel_label: &str,
    ) -> (BenchEntry, obs::trace::Trace) {
        assert!(repeats >= 1);
        let cfg = survey.cfg();
        let updates = (survey.len() * cfg.nt * cfg.shape().len()) as f64;
        let mut best: Option<(std::time::Duration, obs::Profile, obs::trace::Trace)> = None;
        for _ in 0..repeats {
            obs::reset();
            obs::trace::reset();
            let started = std::time::Instant::now();
            tempest_survey::run_survey(survey, opts).expect("survey benchmark run failed");
            let elapsed = started.elapsed();
            if best.as_ref().map(|(e, _, _)| elapsed < *e).unwrap_or(true) {
                best = Some((elapsed, obs::snapshot(), obs::trace::snapshot()));
            }
        }
        let (elapsed, profile, trace) = best.unwrap();
        let analysis = TraceAnalysis::from_trace(&trace);
        let secs = elapsed.as_secs_f64().max(1e-12);
        let entry = BenchEntry {
            model: format!("acoustic-so{}", cfg.space_order),
            schedule: obs::sanitize_label(&format!("survey_{}shot", survey.len())),
            kernel: kernel_label.to_string(),
            gpts_per_s: updates / secs / 1e9,
            elapsed_s: secs,
            barrier_wait_share: profile.barrier_wait_share(),
            worst_imbalance: analysis.worst_imbalance,
            critical_path_ms: analysis.critical_path_ns as f64 / 1e6,
            dropped_events: trace.dropped,
            ai: 0.0,
            roof_pct: 0.0,
            reuse_pct: 0.0,
        };
        (entry, trace)
    }

    /// Serialise (schema in DESIGN.md §11).
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"host\": \"{}\",", obs::sanitize_label(&self.host));
        let _ = writeln!(s, "  \"threads\": {},", self.threads);
        let _ = writeln!(s, "  \"size\": {},", self.size);
        let _ = writeln!(s, "  \"nt\": {},", self.nt);
        let _ = writeln!(s, "  \"git_sha\": \"{}\",", obs::sanitize_label(&self.git_sha));
        let _ = writeln!(
            s,
            "  \"kernel_backend\": \"{}\",",
            obs::sanitize_label(&self.kernel_backend)
        );
        let _ = writeln!(
            s,
            "  \"tempest_threads\": \"{}\",",
            obs::sanitize_label(&self.tempest_threads)
        );
        s.push_str("  \"entries\": [\n");
        for (i, e) in self.entries.iter().enumerate() {
            let _ = write!(
                s,
                "    {{\"model\": \"{}\", \"schedule\": \"{}\", \"kernel\": \"{}\", \
                 \"gpts_per_s\": {:.6}, \"elapsed_s\": {:.9}, \
                 \"barrier_wait_share\": {:.6}, \"worst_imbalance\": {:.4}, \
                 \"critical_path_ms\": {:.6}, \"dropped_events\": {}, \
                 \"ai\": {:.6}, \"roof_pct\": {:.6}, \"reuse_pct\": {:.6}}}",
                obs::sanitize_label(&e.model),
                obs::sanitize_label(&e.schedule),
                obs::sanitize_label(&e.kernel),
                fin(e.gpts_per_s),
                fin(e.elapsed_s),
                fin(e.barrier_wait_share),
                fin(e.worst_imbalance),
                fin(e.critical_path_ms),
                e.dropped_events,
                fin(e.ai),
                fin(e.roof_pct),
                fin(e.reuse_pct),
            );
            s.push_str(if i + 1 < self.entries.len() { ",\n" } else { "\n" });
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Parse a report previously written by [`to_json`].
    pub fn from_json(doc: &str) -> Result<BenchReport, String> {
        let v = Value::parse(doc)?;
        let num = |o: &Value, k: &str| {
            o.get(k)
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("missing numeric field {k:?}"))
        };
        let uint = |o: &Value, k: &str| {
            o.get(k)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("missing integer field {k:?}"))
        };
        let text = |o: &Value, k: &str| {
            o.get(k)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing string field {k:?}"))
        };
        let mut entries = Vec::new();
        for e in v
            .get("entries")
            .and_then(Value::as_arr)
            .ok_or("missing entries array")?
        {
            entries.push(BenchEntry {
                model: text(e, "model")?,
                schedule: text(e, "schedule")?,
                kernel: text(e, "kernel")?,
                gpts_per_s: num(e, "gpts_per_s")?,
                elapsed_s: num(e, "elapsed_s")?,
                barrier_wait_share: num(e, "barrier_wait_share")?,
                worst_imbalance: num(e, "worst_imbalance")?,
                critical_path_ms: num(e, "critical_path_ms")?,
                dropped_events: uint(e, "dropped_events")?,
                // Optional: absent from reports predating the roofline
                // column, so a committed baseline stays readable.
                ai: e.get("ai").and_then(Value::as_f64).unwrap_or(0.0),
                roof_pct: e.get("roof_pct").and_then(Value::as_f64).unwrap_or(0.0),
                reuse_pct: e.get("reuse_pct").and_then(Value::as_f64).unwrap_or(0.0),
            });
        }
        let opt_text = |k: &str| {
            v.get(k)
                .and_then(Value::as_str)
                .map(str::to_string)
                .unwrap_or_default()
        };
        Ok(BenchReport {
            host: text(&v, "host")?,
            threads: uint(&v, "threads")? as usize,
            size: uint(&v, "size")? as usize,
            nt: uint(&v, "nt")? as usize,
            // Optional metadata stamps (absent from pre-stamping reports).
            git_sha: opt_text("git_sha"),
            kernel_backend: opt_text("kernel_backend"),
            tempest_threads: opt_text("tempest_threads"),
            entries,
        })
    }

    /// Load a report from a file.
    pub fn read(path: &Path) -> Result<BenchReport, String> {
        let doc = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        Self::from_json(&doc)
    }

    /// Write `BENCH_<host>.json` into `dir` (created if needed).
    pub fn write(&self, dir: &Path) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("BENCH_{}.json", obs::sanitize_label(&self.host)));
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }

    /// Entry lookup by key.
    pub fn find(&self, key: &str) -> Option<&BenchEntry> {
        self.entries.iter().find(|e| e.key() == key)
    }
}

/// Compare `current` against `baseline`: every baseline entry present in
/// `current` whose throughput fell below `(1 − threshold) ×` baseline is a
/// regression. Returns `Err` when the two reports measured different
/// problems (size/nt mismatch) — throughput is not comparable then, and the
/// caller should skip the gate rather than fail it.
pub fn check_regressions(
    current: &BenchReport,
    baseline: &BenchReport,
    threshold: f64,
) -> Result<Vec<Regression>, String> {
    if current.size != baseline.size || current.nt != baseline.nt {
        return Err(format!(
            "baseline measured {}³×{} but current run is {}³×{}; not comparable",
            baseline.size, baseline.nt, current.size, current.nt
        ));
    }
    let mut out = Vec::new();
    for base in &baseline.entries {
        if base.gpts_per_s <= 0.0 {
            continue;
        }
        if let Some(cur) = current.find(&base.key()) {
            let ratio = cur.gpts_per_s / base.gpts_per_s;
            if ratio < 1.0 - threshold {
                out.push(Regression {
                    key: base.key(),
                    baseline_gpts: base.gpts_per_s,
                    current_gpts: cur.gpts_per_s,
                    ratio,
                });
            }
        }
    }
    out.sort_by(|a, b| a.ratio.partial_cmp(&b.ratio).unwrap_or(std::cmp::Ordering::Equal));
    Ok(out)
}

/// Best-effort short git revision for report stamping: `git rev-parse`
/// in the current directory, then the `GITHUB_SHA` env (truncated), then
/// `"unknown"` — a report should never fail to write because the source
/// tree is not a checkout.
pub fn git_sha() -> String {
    if let Ok(out) = std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
    {
        if out.status.success() {
            let sha = String::from_utf8_lossy(&out.stdout).trim().to_string();
            if !sha.is_empty() {
                return obs::sanitize_label(&sha);
            }
        }
    }
    if let Ok(sha) = std::env::var("GITHUB_SHA") {
        if !sha.is_empty() {
            return obs::sanitize_label(&sha[..sha.len().min(12)]);
        }
    }
    "unknown".to_string()
}

/// Best-effort host identifier for the report filename: `HOSTNAME` env,
/// then the kernel hostname, then a fixed fallback.
pub fn host_name() -> String {
    if let Ok(h) = std::env::var("HOSTNAME") {
        if !h.is_empty() {
            return obs::sanitize_label(&h);
        }
    }
    if let Ok(h) = std::fs::read_to_string("/proc/sys/kernel/hostname") {
        let h = h.trim();
        if !h.is_empty() {
            return obs::sanitize_label(h);
        }
    }
    "unknown-host".to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(model: &str, gpts: f64) -> BenchEntry {
        BenchEntry {
            model: model.into(),
            schedule: "wavefront-diag_64x64_t8_8x8".into(),
            kernel: "pencil".into(),
            gpts_per_s: gpts,
            elapsed_s: 0.01,
            barrier_wait_share: 0.05,
            worst_imbalance: 1.2,
            critical_path_ms: 3.5,
            dropped_events: 0,
            ai: 1.4,
            roof_pct: 0.35,
            reuse_pct: 0.0,
        }
    }

    fn report(entries: Vec<BenchEntry>) -> BenchReport {
        BenchReport {
            host: "test-host".into(),
            threads: 4,
            size: 64,
            nt: 8,
            git_sha: "abc1234".into(),
            kernel_backend: "portable".into(),
            tempest_threads: "4".into(),
            entries,
        }
    }

    #[test]
    fn json_roundtrip() {
        let r = report(vec![entry("acoustic-so4", 0.5), entry("tti-so4", 0.1)]);
        let parsed = BenchReport::from_json(&r.to_json()).unwrap();
        assert_eq!(parsed, r);
    }

    #[test]
    fn parses_reports_without_metadata_or_roofline_fields() {
        // A baseline committed before the metadata/roofline stamps existed
        // must stay readable (the perf gate reads old files).
        let old = r#"{
  "host": "old-host",
  "threads": 2,
  "size": 32,
  "nt": 4,
  "entries": [
    {"model": "acoustic-so4", "schedule": "spaceblocked_8x8", "kernel": "pencil",
     "gpts_per_s": 0.5, "elapsed_s": 0.01, "barrier_wait_share": 0.0,
     "worst_imbalance": 1.0, "critical_path_ms": 1.0, "dropped_events": 0}
  ]
}"#;
        let parsed = BenchReport::from_json(old).unwrap();
        assert_eq!(parsed.git_sha, "");
        assert_eq!(parsed.kernel_backend, "");
        assert_eq!(parsed.tempest_threads, "");
        assert_eq!(parsed.entries[0].ai, 0.0);
        assert_eq!(parsed.entries[0].roof_pct, 0.0);
        assert_eq!(parsed.entries[0].reuse_pct, 0.0);
    }

    #[test]
    fn git_sha_is_label_safe() {
        let s = git_sha();
        assert!(!s.is_empty());
        assert!(s.chars().all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_'));
    }

    #[test]
    fn json_guards_nonfinite_values() {
        let mut bad = entry("acoustic-so4", f64::NAN);
        bad.worst_imbalance = f64::INFINITY;
        let js = report(vec![bad]).to_json();
        assert!(!js.contains("NaN") && !js.contains("inf"), "bad JSON: {js}");
        let parsed = BenchReport::from_json(&js).unwrap();
        assert_eq!(parsed.entries[0].gpts_per_s, 0.0);
        assert_eq!(parsed.entries[0].worst_imbalance, 0.0);
    }

    #[test]
    fn detects_synthetic_regression() {
        let baseline = report(vec![entry("acoustic-so4", 1.0), entry("tti-so4", 0.2)]);
        let mut current = baseline.clone();
        current.entries[0].gpts_per_s = 0.5; // 50% slower
        current.entries[1].gpts_per_s = 0.19; // 5% slower — within threshold
        let regs = check_regressions(&current, &baseline, 0.15).unwrap();
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].key, "acoustic-so4/wavefront-diag_64x64_t8_8x8/pencil");
        assert!((regs[0].ratio - 0.5).abs() < 1e-12);
    }

    #[test]
    fn improvement_and_missing_entries_pass() {
        let baseline = report(vec![entry("acoustic-so4", 1.0), entry("elastic-so4", 0.3)]);
        let current = report(vec![entry("acoustic-so4", 1.4)]);
        // elastic missing from current: skipped, not a failure
        assert!(check_regressions(&current, &baseline, 0.15).unwrap().is_empty());
    }

    #[test]
    fn mismatched_problem_size_is_not_comparable() {
        let baseline = report(vec![entry("acoustic-so4", 1.0)]);
        let mut current = baseline.clone();
        current.size = 128;
        assert!(check_regressions(&current, &baseline, 0.15).is_err());
    }

    #[test]
    fn write_emits_bench_file(){
        let r = report(vec![entry("acoustic-so4", 0.5)]);
        let dir = std::env::temp_dir().join("tempest-bench-report-test");
        let path = r.write(&dir).unwrap();
        assert_eq!(path.file_name().unwrap().to_str().unwrap(), "BENCH_test-host.json");
        assert!(BenchReport::read(&path).is_ok());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn host_name_is_filename_safe() {
        let h = host_name();
        assert!(!h.is_empty());
        assert!(h.chars().all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_'));
    }

    #[test]
    fn measure_survey_entry_produces_throughput() {
        let s = crate::setup::survey(16, 4, 4, 2, 3);
        let (e, _trace) = BenchReport::measure_survey_entry(
            &s,
            &tempest_survey::SurveyOptions::default(),
            1,
            "pencil",
        );
        assert_eq!(e.model, "acoustic-so4");
        assert_eq!(e.schedule, "survey_2shot");
        assert_eq!(e.key(), "acoustic-so4/survey_2shot/pencil");
        assert!(e.gpts_per_s > 0.0);
        assert!(e.elapsed_s > 0.0);
    }

    #[test]
    fn measure_incremental_entry_reports_reuse() {
        // SpaceBlocked → a tile_t=1 plan of 8×8 blocks, fine-grained enough
        // that a sub-cell source nudge leaves tiles outside its cone clean
        // even on this small grid.
        let exec = Execution::baseline();
        let (e, cold_gpts) = BenchReport::measure_incremental_entry(32, 4, 4, &exec, "pencil");
        assert_eq!(e.model, "acoustic-so4");
        assert_eq!(e.schedule, "incremental");
        assert_eq!(e.key(), "acoustic-so4/incremental/pencil");
        assert!(e.gpts_per_s > 0.0);
        assert!(cold_gpts > 0.0);
        // A sub-cell source nudge must leave most of the tile graph clean.
        assert!(
            e.reuse_pct > 0.0 && e.reuse_pct < 100.0,
            "unexpected reuse: {}",
            e.reuse_pct
        );
    }

    #[test]
    fn measure_entry_produces_throughput() {
        let mut s = crate::setup::acoustic(16, 4, 4, 3);
        let (e, _trace, meta) =
            BenchReport::measure_entry(&mut s, &Execution::baseline().sequential(), 1, "pencil");
        assert_eq!(e.model, "acoustic-so4");
        assert_eq!(e.schedule, "spaceblocked_8x8");
        assert!(e.gpts_per_s > 0.0);
        assert!(meta.elapsed_s > 0.0);
    }
}
