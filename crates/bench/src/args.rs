//! Minimal CLI argument handling shared by the harness binaries (keeps the
//! workspace free of an argument-parsing dependency).

use tempest_core::operator::KernelPath;

/// Common harness options.
#[derive(Debug, Clone)]
pub struct HarnessArgs {
    /// Grid edge length (cube grids).
    pub size: usize,
    /// Timesteps per measured run.
    pub nt: usize,
    /// Quick smoke-test mode.
    pub fast: bool,
    /// Space orders to sweep.
    pub space_orders: Vec<usize>,
    /// Models to run (subset of "acoustic", "tti", "elastic").
    pub models: Vec<String>,
    /// Emit per-phase profiles (rendered table + JSON under
    /// `target/profile/`). Needs the `obs` feature to record anything.
    pub profile: bool,
    /// Capture event-level traces (Chrome trace JSON under
    /// `results/trace/`). Needs the `obs` feature to record anything.
    pub trace: bool,
    /// Dense-kernel backend: auto-detected best, scalar reference loops,
    /// portable pencil kernels or explicit AVX2 intrinsics.
    pub kernel: KernelPath,
}

impl HarnessArgs {
    /// Parse from `std::env::args` with the given defaults.
    pub fn parse(default_size: usize, default_nt: usize) -> Self {
        let argv: Vec<String> = std::env::args().collect();
        Self::parse_from(&argv, default_size, default_nt)
    }

    /// Parse from an explicit argv (testable).
    pub fn parse_from(argv: &[String], default_size: usize, default_nt: usize) -> Self {
        let mut a = HarnessArgs {
            size: default_size,
            nt: default_nt,
            fast: false,
            space_orders: vec![4, 8, 12],
            models: vec!["acoustic".into(), "tti".into(), "elastic".into()],
            profile: false,
            trace: false,
            kernel: KernelPath::default(),
        };
        let mut i = 1;
        while i < argv.len() {
            match argv[i].as_str() {
                "--size" => {
                    i += 1;
                    a.size = argv
                        .get(i)
                        .and_then(|v| v.parse().ok())
                        .expect("--size needs an integer");
                }
                "--nt" => {
                    i += 1;
                    a.nt = argv
                        .get(i)
                        .and_then(|v| v.parse().ok())
                        .expect("--nt needs an integer");
                }
                "--so" => {
                    i += 1;
                    a.space_orders = argv
                        .get(i)
                        .expect("--so needs a comma-separated list")
                        .split(',')
                        .map(|s| s.parse().expect("space order must be an integer"))
                        .collect();
                }
                "--model" => {
                    i += 1;
                    a.models = argv
                        .get(i)
                        .expect("--model needs a comma-separated list")
                        .split(',')
                        .map(String::from)
                        .collect();
                }
                "--fast" => {
                    a.fast = true;
                }
                "--profile" => {
                    a.profile = true;
                    tempest_obs::set_enabled(true);
                }
                "--trace" => {
                    a.trace = true;
                    tempest_obs::trace::set_enabled(true);
                }
                "--kernel" => {
                    i += 1;
                    a.kernel = argv
                        .get(i)
                        .and_then(|v| KernelPath::parse(v))
                        .unwrap_or_else(|| {
                            panic!(
                                "--kernel needs 'auto', 'scalar', 'portable'/'pencil' or 'avx2', \
                                 got {:?}",
                                argv.get(i)
                            )
                        });
                }
                "--help" | "-h" => {
                    eprintln!(
                        "options: --size N (grid edge) --nt N (timesteps) \
                         --so 4,8,12 (space orders) \
                         --model acoustic,tti,elastic --fast (smoke test) \
                         --profile (per-phase profile table + JSON) \
                         --trace (event traces, Chrome JSON under results/trace/) \
                         --kernel auto|scalar|portable|avx2 (row-kernel backend, default auto \
                         = best available; 'pencil' is accepted as an alias for portable)"
                    );
                    std::process::exit(0);
                }
                other => panic!("unknown argument {other}; try --help"),
            }
            i += 1;
        }
        if a.fast {
            a.size = a.size.min(96);
            a.nt = a.nt.min(12);
        }
        a
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(args: &[&str]) -> Vec<String> {
        std::iter::once("prog")
            .chain(args.iter().copied())
            .map(String::from)
            .collect()
    }

    #[test]
    fn defaults() {
        let a = HarnessArgs::parse_from(&sv(&[]), 256, 32);
        assert_eq!(a.size, 256);
        assert_eq!(a.nt, 32);
        assert!(!a.fast);
        assert_eq!(a.space_orders, vec![4, 8, 12]);
    }

    #[test]
    fn overrides() {
        let a = HarnessArgs::parse_from(&sv(&["--size", "512", "--nt", "64", "--so", "4,8"]), 256, 32);
        assert_eq!(a.size, 512);
        assert_eq!(a.nt, 64);
        assert_eq!(a.space_orders, vec![4, 8]);
    }

    #[test]
    fn profile_flag() {
        let a = HarnessArgs::parse_from(&sv(&["--profile"]), 64, 8);
        assert!(a.profile);
        assert!(!HarnessArgs::parse_from(&sv(&[]), 64, 8).profile);
    }

    #[test]
    fn trace_flag() {
        let a = HarnessArgs::parse_from(&sv(&["--trace"]), 64, 8);
        assert!(a.trace);
        assert!(!a.profile);
        assert!(!HarnessArgs::parse_from(&sv(&[]), 64, 8).trace);
        // parsing --trace must not leave tracing on for other tests
        tempest_obs::trace::set_enabled(false);
    }

    #[test]
    fn kernel_flag() {
        assert_eq!(
            HarnessArgs::parse_from(&sv(&["--kernel", "scalar"]), 64, 8).kernel,
            KernelPath::Scalar
        );
        // "pencil" stays accepted as a compatibility alias for portable.
        assert_eq!(
            HarnessArgs::parse_from(&sv(&["--kernel", "pencil"]), 64, 8).kernel,
            KernelPath::Portable
        );
        assert_eq!(
            HarnessArgs::parse_from(&sv(&["--kernel", "avx2"]), 64, 8).kernel,
            KernelPath::Avx2
        );
        assert_eq!(
            HarnessArgs::parse_from(&sv(&["--kernel", "auto"]), 64, 8).kernel,
            KernelPath::Auto
        );
        assert_eq!(HarnessArgs::parse_from(&sv(&[]), 64, 8).kernel, KernelPath::Auto);
    }

    #[test]
    #[should_panic(expected = "--kernel needs")]
    fn kernel_flag_rejects_unknown() {
        let _ = HarnessArgs::parse_from(&sv(&["--kernel", "avx"]), 64, 8);
    }

    #[test]
    fn fast_caps() {
        let a = HarnessArgs::parse_from(&sv(&["--fast"]), 256, 32);
        assert!(a.size <= 96);
        assert!(a.nt <= 12);
    }

    #[test]
    #[should_panic(expected = "unknown argument")]
    fn unknown_flag() {
        let _ = HarnessArgs::parse_from(&sv(&["--bogus"]), 256, 32);
    }
}
