//! # tempest-bench
//!
//! Benchmark harnesses regenerating the paper's evaluation (§IV):
//!
//! | target | reproduces | run with |
//! |---|---|---|
//! | `table1` | Table I — optimal tile/block shapes after auto-tuning WTB | `cargo run -p tempest-bench --release --bin table1` |
//! | `figure9` | Fig. 9 — WTB speedup over spatial blocking, 3 models × SO {4,8,12} | `cargo run -p tempest-bench --release --bin figure9` |
//! | `figure10` | Fig. 10 — speedup vs number of sources (plane / dense layouts) | `cargo run -p tempest-bench --release --bin figure10` |
//! | `figure11` | Fig. 11 — cache-aware roofline for the acoustic kernel | `cargo run -p tempest-bench --release --bin figure11` |
//!
//! All binaries accept `--size N` (grid edge, default 256 — the paper used
//! 512³; pass `--size 512` for paper scale), `--nt N` (timesteps), and
//! `--fast` (small smoke-test configuration). Micro-benches live under
//! `benches/` on the in-repo [`microbench`] harness.

pub mod args;
pub mod microbench;
pub mod sweep;
pub mod perf_report;
pub mod report;
pub mod roofline;
pub mod setup;
