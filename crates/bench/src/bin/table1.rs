//! Reproduces paper Table I: optimal `(tile_x, tile_y, block_x, block_y)`
//! shapes after auto-tuning wave-front temporal blocking, for each
//! propagator × space order.
//!
//! ```text
//! cargo run -p tempest-bench --release --bin table1 -- [--size 256] [--nt 16] [--so 4,8,12] [--fast]
//! ```
//!
//! The paper reports two CPU columns (Broadwell, Skylake); this harness has
//! one machine, so it prints one column plus the measured time of the best
//! and worst candidates — the tuning *spread* that justifies auto-tuning
//! (§IV.C: "we swept over the whole parameter space").

use tempest_bench::args::HarnessArgs;
use tempest_bench::report::Table;
use tempest_bench::{setup, sweep};
use tempest_tiling::TuneResult;

fn main() {
    let args = HarnessArgs::parse(256, 16);
    println!(
        "table1: grid {}^3, tuning nt {}, threads {}",
        args.size,
        args.nt,
        tempest_par::available_threads()
    );
    let mut table = Table::new(
        "Table I — optimal tile-block shapes after tuning WTB",
        &[
            "problem",
            "tile_x,tile_y,block_x,block_y",
            "tile_t",
            "best (s)",
            "worst (s)",
            "spread",
        ],
    );
    // The acoustic kernel is cheap enough for the exhaustive sweep; the
    // compute-heavy TTI and data-heavy elastic kernels get the reduced grid
    // unless --fast is off *and* the grid is small.
    let full = sweep::candidates_for(args.size, args.size, args.nt, args.fast);
    let quick = sweep::candidates_for(args.size, args.size, args.nt, true);
    for &so in &args.space_orders {
        for model in ["acoustic", "elastic", "tti"] {
            let tuned: TuneResult = match model {
                "acoustic" => {
                    let mut s = setup::acoustic(args.size, so, args.nt, 0);
                    sweep::tune_wavefront(&mut s, &full)
                }
                "elastic" => {
                    let mut s = setup::elastic(args.size, so, args.nt, 0);
                    sweep::tune_wavefront(&mut s, &quick)
                }
                _ => {
                    let mut s = setup::tti(args.size, so, args.nt, 0);
                    sweep::tune_wavefront(&mut s, &quick)
                }
            };
            let worst = tuned
                .all
                .iter()
                .map(|(_, t)| *t)
                .max()
                .unwrap_or(tuned.best_time);
            let label = match model {
                "acoustic" => format!("Acoustic O(2,{so})"),
                "elastic" => format!("Elastic O(1,{so})"),
                _ => format!("TTI O(2,{so})"),
            };
            println!(
                "  {label}: best {} ({:.3}s), worst {:.3}s",
                tuned.best,
                tuned.best_time.as_secs_f64(),
                worst.as_secs_f64()
            );
            table.row(&[
                label,
                format!(
                    "{}, {}, {}, {}",
                    tuned.best.tile_x, tuned.best.tile_y, tuned.best.block_x, tuned.best.block_y
                ),
                tuned.best.tile_t.to_string(),
                format!("{:.3}", tuned.best_time.as_secs_f64()),
                format!("{:.3}", worst.as_secs_f64()),
                format!(
                    "{:.2}x",
                    worst.as_secs_f64() / tuned.best_time.as_secs_f64()
                ),
            ]);
        }
    }
    table.print();
}
