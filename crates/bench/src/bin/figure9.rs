//! Reproduces paper Fig. 9: throughput (GPoints/s) speedup of wave-front
//! temporal blocking over tuned spatially blocked code, for the three wave
//! propagators at space orders 4, 8 and 12.
//!
//! ```text
//! cargo run -p tempest-bench --release --bin figure9 -- [--size 256] [--nt 32] [--so 4,8,12] [--fast]
//! ```
//!
//! Expected shape (paper §IV.D): all models speed up at SO 4 — acoustic the
//! most (paper: ~1.6×), TTI next (~1.44×), elastic least (~1.2–1.3×);
//! gains shrink at SO 8 (≥1.1×) and mostly vanish at SO 12.

use tempest_bench::args::HarnessArgs;
use tempest_bench::report::{f3, speedup, Table};
use tempest_bench::{setup, sweep};

fn main() {
    let args = HarnessArgs::parse(256, 32);
    let nt_tune = 8.min(args.nt);
    println!(
        "figure9: grid {0}^3, nt {1} (tune nt {nt_tune}), threads {2}",
        args.size,
        args.nt,
        tempest_par::available_threads()
    );

    let mut table = Table::new(
        "Figure 9 — WTB speedup over tuned spatial blocking",
        &[
            "model", "so", "base blk", "base GPts/s", "wtb tile", "wtb GPts/s", "speedup",
        ],
    );

    for &so in &args.space_orders {
        for model in ["acoustic", "tti", "elastic"] {
            if !args.models.iter().any(|m| m == model) {
                continue;
            }
            bench_one(model, so, &args, nt_tune, &mut table);
        }
    }
    table.print();
}

fn bench_one(model: &str, so: usize, args: &HarnessArgs, nt_tune: usize, table: &mut Table) {
    // Tuning solvers are short runs; measurement solvers use the full nt.
    // Quick tuning sweep: the exhaustive Table-I sweep lives in `table1`.
    let cands = sweep::candidates_for(args.size, args.size, nt_tune, true);
    let repeats = if args.fast { 1 } else { 2 };
    let (base, wtb, base_blk, best) = match model {
        "acoustic" => {
            let mut tuner = setup::acoustic(args.size, so, nt_tune, 0);
            let base_blk = sweep::tune_baseline(&mut tuner);
            let tuned = sweep::tune_wavefront(&mut tuner, &cands);
            let mut s = setup::acoustic(args.size, so, args.nt, 8);
            let eb = sweep::with_kernel(sweep::exec_spaceblocked(base_blk.0, base_blk.1), args.kernel);
            let base = sweep::measure(&mut s, &eb, repeats);
            let ew = sweep::with_kernel(sweep::exec_wavefront(&tuned.best), args.kernel);
            let wtb = sweep::measure(&mut s, &ew, repeats);
            (base, wtb, base_blk, tuned.best)
        }
        "tti" => {
            let mut tuner = setup::tti(args.size, so, nt_tune, 0);
            let base_blk = sweep::tune_baseline(&mut tuner);
            let tuned = sweep::tune_wavefront(&mut tuner, &cands);
            let mut s = setup::tti(args.size, so, args.nt, 8);
            let eb = sweep::with_kernel(sweep::exec_spaceblocked(base_blk.0, base_blk.1), args.kernel);
            let base = sweep::measure(&mut s, &eb, repeats);
            let ew = sweep::with_kernel(sweep::exec_wavefront(&tuned.best), args.kernel);
            let wtb = sweep::measure(&mut s, &ew, repeats);
            (base, wtb, base_blk, tuned.best)
        }
        _ => {
            let mut tuner = setup::elastic(args.size, so, nt_tune, 0);
            let base_blk = sweep::tune_baseline(&mut tuner);
            let tuned = sweep::tune_wavefront(&mut tuner, &cands);
            let mut s = setup::elastic(args.size, so, args.nt, 8);
            let eb = sweep::with_kernel(sweep::exec_spaceblocked(base_blk.0, base_blk.1), args.kernel);
            let base = sweep::measure(&mut s, &eb, repeats);
            let ew = sweep::with_kernel(sweep::exec_wavefront(&tuned.best), args.kernel);
            let wtb = sweep::measure(&mut s, &ew, repeats);
            (base, wtb, base_blk, tuned.best)
        }
    };
    let sp = wtb.gpoints_per_s / base.gpoints_per_s;
    println!(
        "  {model} so{so}: base {:.3} GPts/s (blk {}x{}), wtb {:.3} GPts/s ({}), speedup {:.2}x",
        base.gpoints_per_s, base_blk.0, base_blk.1, wtb.gpoints_per_s, best, sp
    );
    table.row(&[
        model.to_string(),
        so.to_string(),
        format!("{}x{}", base_blk.0, base_blk.1),
        f3(base.gpoints_per_s),
        format!("{best}"),
        f3(wtb.gpoints_per_s),
        speedup(sp),
    ]);
}
