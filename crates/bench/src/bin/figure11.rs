//! Reproduces paper Fig. 11: a cache-aware roofline for the isotropic
//! acoustic kernel at space orders 4, 8, 12, with spatially blocked
//! (paper: red markers) and temporally blocked (yellow) executions.
//!
//! ```text
//! cargo run -p tempest-bench --release --bin figure11 -- [--size 256] [--nt 16] [--fast]
//! ```
//!
//! Machine ceilings are measured in-process (peak FMA throughput and STREAM
//! triad bandwidth) instead of with Intel Advisor; kernel arithmetic
//! intensities come from the analytic traffic model in
//! `tempest_stencil::metrics`. The claim to reproduce: temporal blocking
//! raises the *effective* AI by reusing cached levels across `tile_t`
//! timesteps, moving the kernel off the bandwidth ceiling ("breaking the
//! ceiling of the L3 cache").

use tempest_bench::args::HarnessArgs;
use tempest_bench::report::{f3, Table};
use tempest_bench::roofline::{measure_bandwidth_gbs, measure_peak_gflops, MachineRoof};
use tempest_bench::{setup, sweep};
use tempest_stencil::metrics::acoustic_cost;

fn main() {
    let args = HarnessArgs::parse(256, 16);
    println!("figure11: measuring machine ceilings…");
    let roof = MachineRoof {
        peak_gflops: measure_peak_gflops(if args.fast { 2_000_000 } else { 20_000_000 }),
        bandwidth_gbs: measure_bandwidth_gbs(1 << 26, if args.fast { 2 } else { 6 }),
    };
    println!(
        "  peak {:.2} GFLOP/s, bandwidth {:.2} GB/s, ridge AI {:.2} flop/byte",
        roof.peak_gflops,
        roof.bandwidth_gbs,
        roof.ridge_ai()
    );

    let mut table = Table::new(
        "Figure 11 — cache-aware roofline, isotropic acoustic (ceilings above)",
        &[
            "kernel", "schedule", "AI flop/B", "GFLOP/s", "roof GFLOP/s", "% of roof",
        ],
    );
    let cands = sweep::candidates_for(args.size, args.size, args.nt, true);
    for &so in &args.space_orders {
        let cost = acoustic_cost(so);
        let mut s = setup::acoustic(args.size, so, args.nt, 0);
        let base_blk = sweep::tune_baseline(&mut s);
        let tuned = sweep::tune_wavefront(&mut s, &cands);
        let base = sweep::measure(&mut s, &sweep::exec_spaceblocked(base_blk.0, base_blk.1), 1);
        let wtb = sweep::measure(&mut s, &sweep::exec_wavefront(&tuned.best), 1);

        // Spatially blocked: streaming traffic each sweep.
        let ai_base = cost.ai_streaming();
        let g_base = base.gflops(cost.flops);
        // Temporally blocked: compulsory traffic amortised over the tile
        // height (the effective-AI model of the cache-aware roofline).
        let ai_wtb = cost.flops / cost.bytes_streaming_temporal(tuned.best.tile_t);
        let g_wtb = wtb.gflops(cost.flops);
        for (label, ai, g) in [
            ("spatial", ai_base, g_base),
            ("wtb", ai_wtb, g_wtb),
        ] {
            let attainable = roof.attainable(ai);
            println!(
                "  so{so} {label}: AI {ai:.2}, {g:.2} GFLOP/s ({:.0}% of {attainable:.2})",
                100.0 * g / attainable
            );
            table.row(&[
                format!("acoustic so{so}"),
                label.to_string(),
                f3(ai),
                f3(g),
                f3(attainable),
                format!("{:.0}%", 100.0 * g / attainable),
            ]);
        }
    }
    table.print();
    println!(
        "roofline ceilings: mem(AI) = {:.2}·AI GFLOP/s, compute = {:.2} GFLOP/s",
        roof.bandwidth_gbs, roof.peak_gflops
    );
}
