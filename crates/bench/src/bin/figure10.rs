//! Reproduces paper Fig. 10: WTB speedup for the isotropic acoustic
//! operator (space order 4) over an increasing number of sources, in two
//! layouts — sparsely located on an x-y plane slice, and densely/uniformly
//! distributed over the whole 3-D grid (§IV.E corner cases).
//!
//! ```text
//! cargo run -p tempest-bench --release --bin figure10 -- [--size 256] [--nt 16] [--fast]
//! ```
//!
//! Expected shape: the speedup is insensitive to the source count for the
//! plane layout, and erodes (but survives) for very dense volumetric
//! layouts where the compressed iteration space stops being sparse
//! (paper: ~1.4× instead of ~1.55×).

use tempest_bench::args::HarnessArgs;
use tempest_bench::report::{f3, speedup, Table};
use tempest_bench::{setup, sweep};
use tempest_grid::{Domain, Shape};
use tempest_sparse::SparsePoints;
use tempest_tiling::Candidate;

fn main() {
    let args = HarnessArgs::parse(256, 16);
    let so = 4;
    println!(
        "figure10: acoustic so{so}, grid {}^3, nt {}, threads {}",
        args.size,
        args.nt,
        tempest_par::available_threads()
    );
    let counts: Vec<usize> = if args.fast {
        vec![1, 16, 128]
    } else {
        vec![1, 4, 16, 64, 256, 1024, 4096]
    };

    // Tune once on the single-source problem; reuse the shapes across the
    // sweep (the paper tunes per problem class, not per source count).
    let cands = sweep::candidates_for(args.size, args.size, args.nt, true);
    let mut tuner = setup::acoustic(args.size, so, args.nt, 0);
    let best: Candidate = sweep::tune_wavefront(&mut tuner, &cands).best;
    let base_blk = sweep::tune_baseline(&mut tuner);
    drop(tuner);
    println!("  tuned: wtb {best}, baseline block {}x{}", base_blk.0, base_blk.1);

    let mut table = Table::new(
        "Figure 10 — acoustic SO4 speedup vs number of sources",
        &[
            "layout", "sources", "affected pts", "base GPts/s", "wtb GPts/s", "speedup",
        ],
    );
    let domain = Domain::uniform(Shape::cube(args.size), 10.0);
    for layout in ["plane", "dense"] {
        for &n in &counts {
            let pts = match layout {
                "plane" => SparsePoints::plane_layout(&domain, n, 0.5, 0.37),
                _ => SparsePoints::dense_layout(&domain, n, 0.37),
            };
            let mut s = setup::acoustic_with_sources(args.size, so, args.nt, pts);
            let npts = s.sources().pre.npts();
            let base = sweep::measure(&mut s, &sweep::exec_spaceblocked(base_blk.0, base_blk.1), 1);
            let wtb = sweep::measure(&mut s, &sweep::exec_wavefront(&best), 1);
            let sp = wtb.gpoints_per_s / base.gpoints_per_s;
            println!(
                "  {layout} n={n}: {npts} affected, base {:.3}, wtb {:.3}, speedup {:.2}x",
                base.gpoints_per_s, wtb.gpoints_per_s, sp
            );
            table.row(&[
                layout.to_string(),
                n.to_string(),
                npts.to_string(),
                f3(base.gpoints_per_s),
                f3(wtb.gpoints_per_s),
                speedup(sp),
            ]);
        }
    }
    table.print();
}
