//! Perf-regression reporting pipeline: measure the model × schedule ×
//! kernel matrix, fold profile + trace telemetry into `BENCH_<host>.json`,
//! and optionally gate against a committed baseline.
//!
//! ```text
//! cargo run -p tempest-bench --release --features obs --bin tempest-report -- \
//!     [--size 64] [--nt 8] [--so 4] [--fast] [--model acoustic,tti,elastic] \
//!     [--schedules wavefront-diag,wavefront-dataflow,diamond] [--list-schedules] \
//!     [--kernel auto|scalar|portable|avx2|both] [--list-kernels] \
//!     [--repeats 2] [--out results] [--trace] \
//!     [--baseline results/baseline.json] [--check-baseline] [--write-baseline] \
//!     [--threshold 0.15]
//! ```
//!
//! `--check-baseline` exits nonzero when any matrix entry's throughput falls
//! more than `--threshold` (default 15%) below the committed baseline. A
//! missing baseline or one measured at a different problem size skips the
//! gate (soft pass) — regenerate with `--write-baseline` after intentional
//! performance changes.

use std::path::PathBuf;

use tempest_bench::perf_report::{check_regressions, git_sha, host_name, BenchReport};
use tempest_bench::report::{f3, Table};
use tempest_bench::roofline::{measure_bandwidth_gbs, measure_peak_gflops};
use tempest_bench::{setup, sweep};
use tempest_core::operator::KernelPath;
use tempest_core::{Execution, WaveSolver};
use tempest_obs as obs;
use tempest_obs::analysis::Roofline;
use tempest_stencil::metrics::{acoustic_cost, elastic_cost, tti_cost, KernelCost};
use tempest_stencil::Backend;
use tempest_survey::SurveyOptions;

struct ReportArgs {
    size: usize,
    nt: usize,
    so: usize,
    models: Vec<String>,
    schedules: Option<Vec<String>>,
    kernels: Vec<KernelPath>,
    repeats: usize,
    fast: bool,
    out: PathBuf,
    trace: bool,
    baseline: PathBuf,
    check_baseline: bool,
    write_baseline: bool,
    threshold: f64,
}

fn parse_args() -> ReportArgs {
    let argv: Vec<String> = std::env::args().collect();
    let mut a = ReportArgs {
        size: 64,
        nt: 8,
        so: 4,
        models: vec!["acoustic".into(), "tti".into(), "elastic".into()],
        schedules: None,
        kernels: vec![KernelPath::Auto],
        repeats: 2,
        fast: false,
        out: PathBuf::from("results"),
        trace: false,
        baseline: PathBuf::from("results").join("baseline.json"),
        check_baseline: false,
        write_baseline: false,
        threshold: 0.15,
    };
    let mut i = 1;
    while i < argv.len() {
        match argv[i].as_str() {
            "--size" => {
                i += 1;
                a.size = argv.get(i).and_then(|v| v.parse().ok()).expect("--size needs an integer");
            }
            "--nt" => {
                i += 1;
                a.nt = argv.get(i).and_then(|v| v.parse().ok()).expect("--nt needs an integer");
            }
            "--so" => {
                i += 1;
                a.so = argv.get(i).and_then(|v| v.parse().ok()).expect("--so needs an integer");
            }
            "--fast" => {
                a.size = a.size.min(32);
                a.repeats = 1;
                a.fast = true;
            }
            "--model" => {
                i += 1;
                a.models = argv
                    .get(i)
                    .expect("--model needs a comma-separated list")
                    .split(',')
                    .map(String::from)
                    .collect();
            }
            "--schedules" => {
                i += 1;
                a.schedules = Some(
                    argv.get(i)
                        .expect("--schedules needs a comma-separated list")
                        .split(',')
                        .map(String::from)
                        .collect(),
                );
            }
            "--kernel" => {
                i += 1;
                let spec = argv.get(i).map(String::as_str).unwrap_or("");
                a.kernels = parse_kernels(spec);
            }
            "--list-kernels" => {
                list_kernels();
                std::process::exit(0);
            }
            "--repeats" => {
                i += 1;
                a.repeats = argv
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .expect("--repeats needs a positive integer");
            }
            "--out" => {
                i += 1;
                a.out = PathBuf::from(argv.get(i).expect("--out needs a directory"));
            }
            "--trace" => a.trace = true,
            "--list-schedules" => {
                for (label, exec) in schedules(None) {
                    println!("{label:20} {}", exec.schedule_label());
                }
                println!("{SURVEY_SCHEDULE:20} multi-shot survey engine (shot-level sharding)");
                println!(
                    "{INCREMENTAL_SCHEDULE:20} nudged-source warm rerun through the tile cache"
                );
                std::process::exit(0);
            }
            "--baseline" => {
                i += 1;
                a.baseline = PathBuf::from(argv.get(i).expect("--baseline needs a path"));
            }
            "--check-baseline" => a.check_baseline = true,
            "--write-baseline" => a.write_baseline = true,
            "--threshold" => {
                i += 1;
                a.threshold = argv
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .filter(|&t: &f64| t > 0.0 && t < 1.0)
                    .expect("--threshold needs a fraction in (0, 1)");
            }
            "--help" | "-h" => {
                eprintln!(
                    "options: --size N --nt N --so N --fast \
                     --model acoustic,tti,elastic \
                     --schedules spaceblocked,wavefront,wavefront-diag,wavefront-dataflow,diamond,survey,incremental \
                     --list-schedules \
                     --kernel auto|scalar|portable|avx2|both --list-kernels \
                     --repeats N --out DIR --trace \
                     --baseline PATH --check-baseline --write-baseline --threshold F"
                );
                std::process::exit(0);
            }
            other => panic!("unknown argument {other}; try --help"),
        }
        i += 1;
    }
    a
}

/// Matrix rows are keyed by the *resolved* backend name, never "auto" — the
/// committed baseline stays meaningful across hosts that resolve differently.
fn kernel_label(k: KernelPath) -> &'static str {
    k.resolve().name()
}

/// Parse `--kernel`: one name per `KernelPath::parse` (`auto`, `scalar`,
/// `pencil`/`portable`, `avx2`), a comma list of those, or the sweep words
/// `both`/`all` (= every backend *available* on this host, so a CI loop can
/// pass the same flag everywhere). Unknown names exit 2, matching the
/// `--schedules` contract.
fn parse_kernels(spec: &str) -> Vec<KernelPath> {
    if spec.eq_ignore_ascii_case("both") || spec.eq_ignore_ascii_case("all") {
        return Backend::ALL
            .into_iter()
            .filter(|b| b.available())
            .map(KernelPath::from)
            .collect();
    }
    let mut out = Vec::new();
    for name in spec.split(',').map(str::trim).filter(|s| !s.is_empty()) {
        match KernelPath::parse(name) {
            Some(k) => out.push(k),
            None => {
                eprintln!("unknown kernel {name:?}; see --list-kernels");
                std::process::exit(2);
            }
        }
    }
    if out.is_empty() {
        eprintln!("--kernel needs a name (auto, scalar, portable, avx2, both); see --list-kernels");
        std::process::exit(2);
    }
    out
}

/// `--list-kernels`: every backend the dispatcher knows, with its lane
/// width, gating CPU feature and availability on *this* host.
fn list_kernels() {
    println!("{:10} {:>5}  {:12} available", "kernel", "lanes", "cpu feature");
    for b in Backend::ALL {
        let caps = b.caps();
        println!(
            "{:10} {:>5}  {:12} {}",
            caps.name,
            caps.lanes,
            caps.cpu_feature.unwrap_or("-"),
            if b.available() { "yes" } else { "no" }
        );
    }
    println!(
        "auto       resolves to the best available backend (currently: {})",
        tempest_stencil::backend::detect_best()
    );
    println!("pencil     alias for portable");
}

/// The survey pseudo-schedule: not an [`Execution`] but a whole multi-shot
/// run through `tempest-survey`, reported as one extra matrix row.
const SURVEY_SCHEDULE: &str = "survey";

/// The incremental pseudo-schedule: a cold acoustic solve followed by a
/// nudged-source warm rerun through the tile cache (DESIGN.md §16),
/// reported as one extra matrix row whose throughput is the warm rerun.
const INCREMENTAL_SCHEDULE: &str = "incremental";

/// The measured schedules: tuned-shape defaults rather than a tuning sweep —
/// the gate wants stable, comparable configurations, not the fastest ones.
fn schedules(filter: Option<&[String]>) -> Vec<(&'static str, Execution)> {
    let all = vec![
        ("spaceblocked", Execution::baseline()),
        ("wavefront", Execution::wavefront_default()),
        ("wavefront-diag", Execution::wavefront_diagonal_default()),
        ("wavefront-dataflow", Execution::wavefront_dataflow_default()),
        ("diamond", Execution::diamond_default()),
    ];
    match filter {
        None => all,
        Some(names) => {
            for n in names {
                if n != SURVEY_SCHEDULE
                    && n != INCREMENTAL_SCHEDULE
                    && !all.iter().any(|(label, _)| label == n)
                {
                    eprintln!(
                        "unknown schedule {n:?} (want one of {:?}, {SURVEY_SCHEDULE:?} or \
                         {INCREMENTAL_SCHEDULE:?}; see --list-schedules)",
                        all.iter().map(|(l, _)| *l).collect::<Vec<_>>()
                    );
                    std::process::exit(2);
                }
            }
            all.into_iter()
                .filter(|(label, _)| names.iter().any(|n| n == label))
                .collect()
        }
    }
}

/// Whether the `--schedules` filter keeps the survey row (kept by default).
fn wants_survey(filter: Option<&[String]>) -> bool {
    filter.map(|names| names.iter().any(|n| n == SURVEY_SCHEDULE)).unwrap_or(true)
}

/// Whether the `--schedules` filter keeps the incremental row (kept by
/// default).
fn wants_incremental(filter: Option<&[String]>) -> bool {
    filter.map(|names| names.iter().any(|n| n == INCREMENTAL_SCHEDULE)).unwrap_or(true)
}

/// Analytic per-point cost of a model at space order `so` — the roofline's
/// operational-intensity input (paper Fig. 11).
fn model_cost(model: &str, so: usize) -> KernelCost {
    match model {
        "acoustic" => acoustic_cost(so),
        "tti" => tti_cost(so),
        "elastic" => elastic_cost(so),
        other => panic!("unknown model {other:?} (want acoustic, tti or elastic)"),
    }
}

/// Characterise the machine ceilings with the in-process microbenchmarks.
/// Cheap enough to always run (a few hundred ms); `--fast` shrinks it.
fn measure_roof(fast: bool) -> Roofline {
    let (iters, len, reps) = if fast {
        (500_000, 1 << 20, 2)
    } else {
        (2_000_000, 1 << 22, 4)
    };
    Roofline::new(measure_peak_gflops(iters), measure_bandwidth_gbs(len, reps))
}

fn build_solver(model: &str, size: usize, so: usize, nt: usize) -> Box<dyn WaveSolver> {
    match model {
        "acoustic" => Box::new(setup::acoustic(size, so, nt, 8)),
        "tti" => Box::new(setup::tti(size, so, nt, 8)),
        "elastic" => Box::new(setup::elastic(size, so, nt, 8)),
        other => panic!("unknown model {other:?} (want acoustic, tti or elastic)"),
    }
}

fn main() {
    let args = parse_args();
    // The report is only useful with telemetry on; enabling is harmless
    // (and a no-op) when the obs feature is compiled out.
    obs::set_enabled(true);
    obs::trace::set_enabled(true);

    println!(
        "tempest-report: grid {}^3, nt {}, so {}, threads {}, repeats {}",
        args.size,
        args.nt,
        args.so,
        tempest_par::available_threads(),
        args.repeats
    );
    if !obs::enabled() {
        println!("note: built without the `obs` feature — telemetry columns will be zero");
    }

    // Characterise the machine once; every matrix row lands on this roof.
    let mut roof = measure_roof(args.fast);
    println!(
        "machine roof: peak {:.1} GFLOP/s, bandwidth {:.1} GB/s (ridge AI {:.2})",
        roof.peak_gflops,
        roof.bandwidth_gbs,
        roof.ridge_ai()
    );

    let mut table = Table::new(
        "tempest-report — throughput and load-balance matrix",
        &[
            "model", "schedule", "kernel", "GPts/s", "barrier%", "imbalance", "critpath ms",
            "drops", "AI", "roof%", "reuse%",
        ],
    );
    let mut report = BenchReport {
        host: host_name(),
        threads: tempest_par::available_threads(),
        size: args.size,
        nt: args.nt,
        git_sha: git_sha(),
        kernel_backend: kernel_label(KernelPath::Auto).to_string(),
        tempest_threads: std::env::var("TEMPEST_THREADS").unwrap_or_default(),
        entries: Vec::new(),
    };

    for model in &args.models {
        let mut solver = build_solver(model, args.size, args.so, args.nt);
        for (sched_name, exec) in schedules(args.schedules.as_deref()) {
            for &kernel in &args.kernels {
                let exec = sweep::with_kernel(exec, kernel);
                let (mut entry, trace, meta) = BenchReport::measure_entry(
                    solver.as_mut(),
                    &exec,
                    args.repeats,
                    kernel_label(kernel),
                );
                // Place the row on the roofline: operational intensity under
                // the schedule's streaming model (temporal tiles divide the
                // compulsory traffic by the reuse height, paper Fig. 11).
                let cost = model_cost(model, args.so);
                let tt = exec.schedule.temporal_reuse();
                entry.ai = cost.flops / cost.bytes_streaming_temporal(tt);
                roof.push(
                    &format!("{}/{} t{tt}", entry.model, sched_name),
                    entry.ai,
                    entry.gpts_per_s,
                    cost.flops,
                );
                entry.roof_pct = roof.roof_share(roof.entries.last().unwrap());
                println!(
                    "  {model} {sched_name} {}: {:.3} GPts/s (barrier {:.1}%, imbalance {:.2}, {} trace events)",
                    kernel_label(kernel),
                    entry.gpts_per_s,
                    100.0 * entry.barrier_wait_share,
                    entry.worst_imbalance,
                    trace.events.len(),
                );
                if args.trace && !trace.is_empty() {
                    match trace.write_chrome_json(&meta) {
                        Ok(p) => println!("    trace → {}", p.display()),
                        Err(e) => eprintln!("    trace export failed: {e}"),
                    }
                }
                table.row(&[
                    entry.model.clone(),
                    entry.schedule.clone(),
                    entry.kernel.clone(),
                    f3(entry.gpts_per_s),
                    format!("{:.1}", 100.0 * entry.barrier_wait_share),
                    format!("{:.2}", entry.worst_imbalance),
                    format!("{:.3}", entry.critical_path_ms),
                    entry.dropped_events.to_string(),
                    format!("{:.2}", entry.ai),
                    format!("{:.1}", 100.0 * entry.roof_pct),
                    format!("{:.1}", entry.reuse_pct),
                ]);
                report.entries.push(entry);
            }
        }
    }

    // The survey row: the same acoustic problem, but a 4-shot line driven
    // through the `tempest-survey` engine — shot-level sharding above the
    // tile-level fleet, batch asset reuse (DESIGN.md §14). Single-shot rows
    // measure one time loop; this one measures survey orchestration.
    if wants_survey(args.schedules.as_deref()) {
        const SURVEY_SHOTS: usize = 4;
        let survey = setup::survey(args.size, args.so, args.nt, SURVEY_SHOTS, 8);
        let opts = SurveyOptions::default();
        let survey_kernel = kernel_label(KernelPath::Auto);
        let (mut entry, trace) =
            BenchReport::measure_survey_entry(&survey, &opts, args.repeats, survey_kernel);
        // The survey engine runs each shot under its own (non-temporal)
        // execution, so the row sits at the streaming AI with reuse 1.
        let cost = model_cost("acoustic", args.so);
        entry.ai = cost.ai_streaming();
        roof.push(
            &format!("{}/{SURVEY_SCHEDULE} t1", entry.model),
            entry.ai,
            entry.gpts_per_s,
            cost.flops,
        );
        entry.roof_pct = roof.roof_share(roof.entries.last().unwrap());
        println!(
            "  acoustic {SURVEY_SCHEDULE} ({SURVEY_SHOTS} shots) {survey_kernel}: {:.3} GPts/s \
             (barrier {:.1}%, {} trace events)",
            entry.gpts_per_s,
            100.0 * entry.barrier_wait_share,
            trace.events.len(),
        );
        table.row(&[
            entry.model.clone(),
            entry.schedule.clone(),
            entry.kernel.clone(),
            f3(entry.gpts_per_s),
            format!("{:.1}", 100.0 * entry.barrier_wait_share),
            format!("{:.2}", entry.worst_imbalance),
            format!("{:.3}", entry.critical_path_ms),
            entry.dropped_events.to_string(),
            format!("{:.2}", entry.ai),
            format!("{:.1}", 100.0 * entry.roof_pct),
            format!("{:.1}", entry.reuse_pct),
        ]);
        report.entries.push(entry);
    }

    // The incremental row: a cold solve populates the tile cache, then the
    // same problem with its source nudged sub-cell reruns incrementally
    // (DESIGN.md §16). SpaceBlocked gives the finest-grained tile plan
    // (tile_t=1, 8×8 blocks), so reuse reflects the dirty cone, not tile
    // granularity. Like the survey row, it never trips an old baseline —
    // the pseudo-schedule key is absent from reports that predate it.
    if wants_incremental(args.schedules.as_deref()) {
        let exec = sweep::with_kernel(Execution::baseline(), KernelPath::Auto);
        let inc_kernel = kernel_label(KernelPath::Auto);
        let (mut entry, cold_gpts) = BenchReport::measure_incremental_entry(
            args.size,
            args.so,
            args.nt,
            &exec,
            inc_kernel,
        );
        let cost = model_cost("acoustic", args.so);
        entry.ai = cost.ai_streaming();
        roof.push(
            &format!("{}/{INCREMENTAL_SCHEDULE} t1", entry.model),
            entry.ai,
            entry.gpts_per_s,
            cost.flops,
        );
        entry.roof_pct = roof.roof_share(roof.entries.last().unwrap());
        println!(
            "  acoustic {INCREMENTAL_SCHEDULE} {inc_kernel}: cold {:.3} → warm {:.3} GPts/s \
             ({:.1}% tiles reused)",
            cold_gpts, entry.gpts_per_s, entry.reuse_pct,
        );
        table.row(&[
            entry.model.clone(),
            entry.schedule.clone(),
            entry.kernel.clone(),
            f3(entry.gpts_per_s),
            format!("{:.1}", 100.0 * entry.barrier_wait_share),
            format!("{:.2}", entry.worst_imbalance),
            format!("{:.3}", entry.critical_path_ms),
            entry.dropped_events.to_string(),
            format!("{:.2}", entry.ai),
            format!("{:.1}", 100.0 * entry.roof_pct),
            format!("{:.1}", entry.reuse_pct),
        ]);
        report.entries.push(entry);
    }
    table.print();
    print!("{}", roof.render());

    match report.write(&args.out) {
        Ok(p) => println!("report → {}", p.display()),
        Err(e) => {
            eprintln!("cannot write report: {e}");
            std::process::exit(2);
        }
    }

    if args.write_baseline {
        if let Some(dir) = args.baseline.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        match std::fs::write(&args.baseline, report.to_json()) {
            Ok(()) => println!("baseline → {}", args.baseline.display()),
            Err(e) => {
                eprintln!("cannot write baseline: {e}");
                std::process::exit(2);
            }
        }
    }

    if args.check_baseline {
        let baseline = match BenchReport::read(&args.baseline) {
            Ok(b) => b,
            Err(e) => {
                println!("perf gate skipped: {e}");
                return;
            }
        };
        match check_regressions(&report, &baseline, args.threshold) {
            Err(why) => println!("perf gate skipped: {why}"),
            Ok(regs) if regs.is_empty() => {
                println!(
                    "perf gate passed: no entry more than {:.0}% below baseline ({})",
                    100.0 * args.threshold,
                    args.baseline.display()
                );
            }
            Ok(regs) => {
                eprintln!("perf gate FAILED — {} regression(s):", regs.len());
                for r in &regs {
                    eprintln!(
                        "  {}: {:.3} → {:.3} GPts/s ({:.0}% of baseline)",
                        r.key,
                        r.baseline_gpts,
                        r.current_gpts,
                        100.0 * r.ratio
                    );
                }
                std::process::exit(1);
            }
        }
    }
}
