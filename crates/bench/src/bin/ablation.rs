//! Ablation studies of the design choices DESIGN.md calls out:
//!
//! 1. **Listing 4 vs Listing 5** — fused source injection with the full-z
//!    mask scan vs the compressed `nnz_mask`/`Sp_SID` iteration space, as a
//!    function of source count (the compression is §II.A-5's point).
//! 2. **Temporal tile height** — sweep `tile_t` from 1 (≈ spatial blocking)
//!    upward: cache reuse grows with the tile height until the skewed
//!    working set falls out of cache.
//!
//! ```text
//! cargo run -p tempest-bench --release --bin ablation -- [--size 256] [--nt 16] [--fast]
//! ```

use tempest_bench::args::HarnessArgs;
use tempest_bench::report::{f3, Table};
use tempest_bench::{setup, sweep};
use tempest_core::operator::SparseMode;
use tempest_grid::{Domain, Shape};
use tempest_sparse::SparsePoints;
use tempest_tiling::Candidate;

fn main() {
    let args = HarnessArgs::parse(256, 16);
    println!(
        "ablation: grid {}^3, nt {}, acoustic so4",
        args.size, args.nt
    );
    listing4_vs_listing5(&args);
    tile_height_sweep(&args);
    skewing_vs_tiling(&args);
    scalar_vs_pencil(&args);
}

/// Ablation D — the kernel-backend axis: scalar reference loops vs every
/// vector backend available on this host (portable pencil kernels, AVX2
/// intrinsics), per model and schedule. All backends are bitwise identical
/// in output (see `tests/kernel_backends.rs`); this quantifies what each
/// step of explicitness buys over the per-point reference.
fn scalar_vs_pencil(args: &HarnessArgs) {
    use tempest_core::operator::KernelPath;
    use tempest_stencil::Backend;
    let mut table = Table::new(
        "Ablation D — kernel backends vs scalar reference",
        &["model", "schedule", "kernel", "GPts/s", "vs scalar"],
    );
    let so = 8usize;
    let wtb = Candidate {
        tile_x: 16,
        tile_y: 16,
        tile_t: 8.min(args.nt),
        block_x: 8,
        block_y: 8,
        diagonal: false,
        dataflow: false,
        diamond: None,
        kernel: None,
    };
    let backends: Vec<Backend> = Backend::ALL.into_iter().filter(|b| b.available()).collect();
    let mut run = |model: &str, s: &mut dyn tempest_core::WaveSolver| {
        for (sched, exec) in [
            ("spaceblocked", sweep::exec_spaceblocked(8, 8)),
            ("wavefront", sweep::exec_wavefront(&wtb)),
        ] {
            let mut scalar_gpts = 0.0f64;
            for &b in &backends {
                let st = sweep::measure_dyn(s, &sweep::with_kernel(exec, KernelPath::from(b)), 1);
                if b == Backend::Scalar {
                    scalar_gpts = st.gpoints_per_s;
                }
                println!(
                    "  {model} so{so} {sched} {}: {:.3} GPts/s",
                    b.name(),
                    st.gpoints_per_s
                );
                table.row(&[
                    model.to_string(),
                    sched.to_string(),
                    b.name().to_string(),
                    f3(st.gpoints_per_s),
                    format!("{:.2}x", st.gpoints_per_s / scalar_gpts),
                ]);
            }
        }
    };
    if args.models.iter().any(|m| m == "acoustic") {
        run("acoustic", &mut setup::acoustic(args.size, so, args.nt, 0));
    }
    if args.models.iter().any(|m| m == "tti") {
        run("tti", &mut setup::tti(args.size, so, args.nt, 0));
    }
    if args.models.iter().any(|m| m == "elastic") {
        run("elastic", &mut setup::elastic(args.size, so, args.nt, 0));
    }
    if !Backend::Avx2.available() {
        table.row(&[
            "(caveat)".into(),
            "-".into(),
            "avx2".into(),
            "n/a".into(),
            "host lacks AVX2; rows omitted".into(),
        ]);
        println!("  note: AVX2 unavailable on this host — avx2 rows omitted");
    }
    table.print();
}

/// Ablation C — pure time-skewing (one whole-grid tile, only the wave-front
/// angle reorders iterations) vs proper space-time tiling. Skewing alone
/// gives no spatial cache reuse across timesteps on large grids.
fn skewing_vs_tiling(args: &HarnessArgs) {
    let mut table = Table::new(
        "Ablation C — pure skewing vs tiled wave-front (acoustic so4)",
        &["schedule", "GPts/s"],
    );
    let mut s = setup::acoustic(args.size, 4, args.nt, 0);
    let tt = 8.min(args.nt);
    // Pure skewing: a single spatial tile covering the skewed domain.
    let skew_only = Candidate {
        tile_x: args.size + (tt - 1) * 2,
        tile_y: args.size + (tt - 1) * 2,
        tile_t: tt,
        block_x: 8,
        block_y: 8,
        diagonal: false,
        dataflow: false,
        diamond: None,
        kernel: None,
    };
    let tiled = Candidate {
        tile_x: 16,
        tile_y: 16,
        tile_t: tt,
        block_x: 8,
        block_y: 8,
        diagonal: false,
        dataflow: false,
        diamond: None,
        kernel: None,
    };
    for (label, c) in [("pure skewing", skew_only), ("tiled wavefront", tiled)] {
        let st = sweep::measure(&mut s, &sweep::exec_wavefront(&c), 1);
        println!("  {label}: {:.3} GPts/s", st.gpoints_per_s);
        table.row(&[label.to_string(), f3(st.gpoints_per_s)]);
    }
    table.print();
}

fn listing4_vs_listing5(args: &HarnessArgs) {
    let mut table = Table::new(
        "Ablation A — fused source loop: Listing 4 (mask scan) vs Listing 5 (compressed)",
        &["sources", "affected", "fused GPts/s", "compressed GPts/s", "compressed/fused"],
    );
    let domain = Domain::uniform(Shape::cube(args.size), 10.0);
    let best = Candidate {
        tile_x: 16,
        tile_y: 16,
        tile_t: 8.min(args.nt),
        block_x: 8,
        block_y: 8,
        diagonal: false,
        dataflow: false,
        diamond: None,
        kernel: None,
    };
    let counts = if args.fast {
        vec![1usize, 64]
    } else {
        vec![1usize, 64, 1024, 8192]
    };
    for n in counts {
        let pts = SparsePoints::dense_layout(&domain, n, 0.37);
        let mut s = setup::acoustic_with_sources(args.size, 4, args.nt, pts);
        let affected = s.sources().pre.npts();
        let mut e_fused = sweep::exec_wavefront(&best);
        e_fused.sparse = SparseMode::Fused;
        let full = sweep::measure(&mut s, &e_fused, 1);
        let mut e_comp = e_fused;
        e_comp.sparse = SparseMode::FusedCompressed;
        let comp = sweep::measure(&mut s, &e_comp, 1);
        println!(
            "  n={n}: affected {affected}, fused {:.3}, compressed {:.3}",
            full.gpoints_per_s, comp.gpoints_per_s
        );
        table.row(&[
            n.to_string(),
            affected.to_string(),
            f3(full.gpoints_per_s),
            f3(comp.gpoints_per_s),
            format!("{:.2}x", comp.gpoints_per_s / full.gpoints_per_s),
        ]);
    }
    table.print();
}

fn tile_height_sweep(args: &HarnessArgs) {
    let mut table = Table::new(
        "Ablation B — temporal tile height (tile 16x16, block 8x8)",
        &["tile_t", "GPts/s", "vs tile_t=1"],
    );
    let mut s = setup::acoustic(args.size, 4, args.nt, 0);
    let mut baseline = 0.0f64;
    for tt in [1usize, 2, 4, 8, 16] {
        if tt > args.nt {
            break;
        }
        let c = Candidate {
            tile_x: 16,
            tile_y: 16,
            tile_t: tt,
            block_x: 8,
            block_y: 8,
            diagonal: false,
            dataflow: false,
            diamond: None,
            kernel: None,
        };
        let st = sweep::measure(&mut s, &sweep::exec_wavefront(&c), 1);
        if tt == 1 {
            baseline = st.gpoints_per_s;
        }
        println!("  tile_t {tt}: {:.3} GPts/s", st.gpoints_per_s);
        table.row(&[
            tt.to_string(),
            f3(st.gpoints_per_s),
            format!("{:.2}x", st.gpoints_per_s / baseline),
        ]);
    }
    table.print();
}
