//! Standard benchmark problem builders (paper §IV.B test cases, scaled).
//!
//! The paper benchmarks 512³ grids (spacing 10 m for isotropic/elastic,
//! 20 m for TTI), one off-grid source, zero initial conditions and absorbing
//! layers. These builders reproduce that setup at any cube size; velocity
//! models are layered + seeded-random perturbed so the compiler cannot
//! specialise away parameter loads.

use tempest_core::config::EquationKind;
use tempest_core::{Acoustic, Elastic, SimConfig, Tti};
use tempest_grid::{Domain, ElasticModel, Model, Shape, TtiModel};
use tempest_sparse::SparsePoints;
use tempest_survey::Survey;

/// Propagation time that yields roughly `nt` steps for the acoustic case at
/// paper-like velocities — builders then pin `nt` exactly.
const VMAX: f32 = 3000.0;

/// Build the isotropic acoustic benchmark problem.
pub fn acoustic(size: usize, so: usize, nt: usize, receivers: usize) -> Acoustic {
    let domain = Domain::uniform(Shape::cube(size), 10.0);
    let model = Model::random(domain, 1500.0, VMAX, 0xACu64);
    let cfg = SimConfig::new(domain, so, EquationKind::Acoustic, VMAX, 512.0).with_nt(nt);
    let src = SparsePoints::single_center(&domain, 0.37);
    let rec = (receivers > 0).then(|| SparsePoints::receiver_line(&domain, receivers, 0.2));
    Acoustic::new(&model, cfg, src, rec)
}

/// Build the acoustic problem with an explicit source layout (Fig. 10
/// corner cases).
pub fn acoustic_with_sources(size: usize, so: usize, nt: usize, sources: SparsePoints) -> Acoustic {
    let domain = Domain::uniform(Shape::cube(size), 10.0);
    let model = Model::random(domain, 1500.0, VMAX, 0xACu64);
    let cfg = SimConfig::new(domain, so, EquationKind::Acoustic, VMAX, 512.0).with_nt(nt);
    Acoustic::new(&model, cfg, sources, None)
}

/// Build the TTI benchmark problem (20 m spacing, as in the paper).
pub fn tti(size: usize, so: usize, nt: usize, receivers: usize) -> Tti {
    let domain = Domain::uniform(Shape::cube(size), 20.0);
    let model = TtiModel::random(domain, 1500.0, VMAX, 0x77u64);
    let cfg = SimConfig::new(domain, so, EquationKind::Tti, model.vmax(), 512.0).with_nt(nt);
    let src = SparsePoints::single_center(&domain, 0.37);
    let rec = (receivers > 0).then(|| SparsePoints::receiver_line(&domain, receivers, 0.2));
    Tti::new(&model, cfg, src, rec)
}

/// Build the isotropic elastic benchmark problem.
pub fn elastic(size: usize, so: usize, nt: usize, receivers: usize) -> Elastic {
    let domain = Domain::uniform(Shape::cube(size), 10.0);
    let model = ElasticModel::random(domain, 2000.0, VMAX, 0xE1u64);
    let cfg = SimConfig::new(domain, so, EquationKind::Elastic, VMAX, 512.0).with_nt(nt);
    let src = SparsePoints::single_center(&domain, 0.37);
    let rec = (receivers > 0).then(|| SparsePoints::receiver_line(&domain, receivers, 0.2));
    Elastic::new(&model, cfg, src, rec)
}

/// Build the multi-shot survey benchmark problem: the acoustic setup with a
/// shot line across the top of the domain instead of the single centre
/// source, driven through the `tempest-survey` engine (DESIGN.md §14).
pub fn survey(size: usize, so: usize, nt: usize, shots: usize, receivers: usize) -> Survey {
    let domain = Domain::uniform(Shape::cube(size), 10.0);
    let model = Model::random(domain, 1500.0, VMAX, 0xACu64);
    let cfg = SimConfig::new(domain, so, EquationKind::Acoustic, VMAX, 512.0).with_nt(nt);
    let mut s = Survey::new(model, cfg);
    if receivers > 0 {
        s = s.with_receivers(SparsePoints::receiver_line(&domain, receivers, 0.2));
    }
    s.add_shot_line(shots, 0.37);
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempest_core::{Execution, WaveSolver};

    #[test]
    fn builders_produce_runnable_problems() {
        let mut a = acoustic(16, 4, 4, 3);
        let s = a.run(&Execution::baseline().sequential());
        assert_eq!(s.nt, 4);
        assert!(a.final_field().max_abs() > 0.0);

        let mut t = tti(16, 4, 4, 0);
        t.run(&Execution::baseline().sequential());
        assert!(t.final_field().max_abs() > 0.0);

        let mut e = elastic(16, 4, 4, 3);
        e.run(&Execution::baseline().sequential());
        assert!(e.final_field().max_abs() > 0.0);
    }

    #[test]
    fn survey_builder_is_runnable() {
        let s = survey(16, 4, 4, 2, 3);
        assert_eq!(s.len(), 2);
        let out =
            tempest_survey::run_survey(&s, &tempest_survey::SurveyOptions::default()).unwrap();
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|r| r.gather.is_some()));
    }

    #[test]
    fn source_layouts_plumb_through() {
        let domain = Domain::uniform(Shape::cube(16), 10.0);
        let srcs = SparsePoints::plane_layout(&domain, 4, 0.3, 0.4);
        let mut a = acoustic_with_sources(16, 4, 4, srcs);
        assert_eq!(a.sources().num_sources(), 4);
        a.run(&Execution::baseline().sequential());
        assert!(a.final_field().max_abs() > 0.0);
    }
}
