//! Plain-text table rendering for the figure/table harnesses.
//!
//! The harness binaries print the same rows/series the paper's tables and
//! figures report; `Table` keeps the formatting uniform and emits an
//! optional CSV block for plotting.

/// A simple aligned text table.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header count).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render as an aligned text block.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("\n== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r, &widths));
            out.push('\n');
        }
        out
    }

    /// Render as CSV (headers + rows).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&r.join(","));
            out.push('\n');
        }
        out
    }

    /// Print the aligned table and, afterwards, a CSV block for plotting.
    pub fn print(&self) {
        print!("{}", self.render());
        println!("\n-- csv --\n{}", self.to_csv());
    }
}

/// Format a float with 3 significant decimals.
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// Format a speedup as `1.23x`.
pub fn speedup(v: f64) -> String {
    format!("{v:.2}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", &["a", "bbbb"]);
        t.row(&["1".into(), "2".into()]);
        t.row(&["333".into(), "4".into()]);
        let r = t.render();
        assert!(r.contains("== demo =="));
        assert!(r.contains("  1     2"));
        assert!(r.contains("333     4"));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn csv_roundtrip() {
        let mut t = Table::new("x", &["h1", "h2"]);
        t.row(&["a".into(), "b".into()]);
        assert_eq!(t.to_csv(), "h1,h2\na,b\n");
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f3(1.23456), "1.235");
        assert_eq!(speedup(1.6012), "1.60x");
    }

    #[test]
    #[should_panic(expected = "column count")]
    fn row_checks_arity() {
        let mut t = Table::new("x", &["a"]);
        t.row(&["1".into(), "2".into()]);
    }
}
