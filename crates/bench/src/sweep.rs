//! Shared tune-and-measure logic for the harness binaries (§IV.C).
//!
//! The paper compares auto-tuned WTB against Devito's "aggressively tuned"
//! spatially blocked code, so both sides get a tuning sweep here: the
//! baseline over block shapes, WTB over the Table-I candidate grid.

use std::time::Duration;

use tempest_core::{Execution, RunStats, WaveSolver};
use tempest_core::operator::{KernelPath, Schedule, SparseMode};
use tempest_obs as obs;
use tempest_par::Policy;
use tempest_tiling::{autotune, autotune_measured, Candidate, MeasuredResult, Measurement, TuneResult};

/// Execution for a WTB candidate (slab-ordered, diagonal-parallel,
/// dependency-driven dataflow, or diamond, per the candidate's
/// `diagonal`/`dataflow`/`diamond` flags). Diamond candidates reuse
/// `tile_x` as the diamond base width and `tile_y` as the cross-axis
/// window extent.
pub fn exec_wavefront(c: &Candidate) -> Execution {
    let schedule = if let Some(axis) = c.diamond {
        Schedule::Diamond {
            width: c.tile_x,
            tile_t: c.tile_t,
            tile_c: c.tile_y,
            axis,
            block_x: c.block_x,
            block_y: c.block_y,
        }
    } else if c.dataflow {
        Schedule::WavefrontDataflow {
            tile_x: c.tile_x,
            tile_y: c.tile_y,
            tile_t: c.tile_t,
            block_x: c.block_x,
            block_y: c.block_y,
        }
    } else if c.diagonal {
        Schedule::WavefrontDiagonal {
            tile_x: c.tile_x,
            tile_y: c.tile_y,
            tile_t: c.tile_t,
            block_x: c.block_x,
            block_y: c.block_y,
        }
    } else {
        Schedule::Wavefront {
            tile_x: c.tile_x,
            tile_y: c.tile_y,
            tile_t: c.tile_t,
            block_x: c.block_x,
            block_y: c.block_y,
        }
    };
    Execution {
        schedule,
        sparse: SparseMode::FusedCompressed,
        policy: Policy::default(),
        kernel: c.kernel.map(KernelPath::from).unwrap_or_default(),
    }
}

/// Execution for a spatially blocked baseline.
pub fn exec_spaceblocked(block_x: usize, block_y: usize) -> Execution {
    Execution {
        schedule: Schedule::SpaceBlocked { block_x, block_y },
        sparse: SparseMode::Classic,
        policy: Policy::default(),
        kernel: KernelPath::default(),
    }
}

/// Apply a `--kernel` selection to an execution (harness plumbing).
pub fn with_kernel(mut e: Execution, kernel: KernelPath) -> Execution {
    e.kernel = kernel;
    e
}

/// Best-of-`repeats` measurement of one execution.
pub fn measure<S: WaveSolver>(s: &mut S, exec: &Execution, repeats: usize) -> RunStats {
    measure_dyn(s, exec, repeats)
}

/// [`measure`] over a trait object (lets harness code loop over models).
pub fn measure_dyn(s: &mut dyn WaveSolver, exec: &Execution, repeats: usize) -> RunStats {
    assert!(repeats >= 1);
    let mut best: Option<RunStats> = None;
    for _ in 0..repeats {
        let st = s.run(exec);
        if best.map(|b| st.elapsed < b.elapsed).unwrap_or(true) {
            best = Some(st);
        }
    }
    best.unwrap()
}

/// Best-of-`repeats` instrumented measurement: the fastest run's stats
/// together with its profile and report metadata. The profile is empty
/// unless the `obs` feature is compiled in and profiling is enabled.
pub fn measure_profiled<S: WaveSolver>(
    s: &mut S,
    exec: &Execution,
    repeats: usize,
) -> (RunStats, obs::Profile, obs::RunMeta) {
    assert!(repeats >= 1);
    let mut best: Option<(RunStats, obs::Profile, obs::RunMeta)> = None;
    for _ in 0..repeats {
        let r = s.run_profiled(exec);
        if best.as_ref().map(|b| r.0.elapsed < b.0.elapsed).unwrap_or(true) {
            best = Some(r);
        }
    }
    best.unwrap()
}

/// Like [`tune_wavefront`], but rank with measured telemetry: candidates
/// within `tie_margin` of the fastest are separated by barrier-wait share
/// (slab-ordered vs diagonal-parallel shapes often tie on time on short
/// tuning runs; the synchronisation profile is the more stable signal).
/// Without profiling compiled in/enabled this degrades to time-only
/// ranking.
pub fn tune_wavefront_measured<S: WaveSolver>(
    s: &mut S,
    cands: &[Candidate],
    tie_margin: f64,
) -> MeasuredResult {
    autotune_measured(
        cands,
        |c| {
            let e = exec_wavefront(c);
            let (s1, p1, _) = s.run_profiled(&e);
            let (s2, p2, _) = s.run_profiled(&e);
            let (t, p) = if s1.elapsed <= s2.elapsed {
                (s1.elapsed, p1)
            } else {
                (s2.elapsed, p2)
            };
            Measurement {
                time: t,
                barrier_share: if p.is_empty() {
                    None
                } else {
                    Some(p.barrier_wait_share())
                },
            }
        },
        tie_margin,
    )
}

/// Tune the baseline block shape over the standard candidates.
pub fn tune_baseline<S: WaveSolver>(s: &mut S) -> (usize, usize) {
    let mut best = (8usize, 8usize);
    let mut best_t = Duration::MAX;
    for b in [4usize, 8, 16, 32] {
        let e = exec_spaceblocked(b, b);
        let t = s.run(&e).elapsed.min(s.run(&e).elapsed);
        if t < best_t {
            best_t = t;
            best = (b, b);
        }
    }
    best
}

/// Tune WTB over `cands` using the given (short-`nt`) solver. Each
/// candidate is timed twice and keeps its best time — shared-machine noise
/// otherwise dominates short tuning runs.
pub fn tune_wavefront<S: WaveSolver>(s: &mut S, cands: &[Candidate]) -> TuneResult {
    autotune(cands, |c| {
        let e = exec_wavefront(c);
        let a = s.run(&e).elapsed;
        let b = s.run(&e).elapsed;
        a.min(b)
    })
}

/// WTB candidate grid for a tuning solver with `nt_tune` timesteps: every
/// temporal height must fit the run.
pub fn candidates_for(nx: usize, ny: usize, nt_tune: usize, quick: bool) -> Vec<Candidate> {
    let tile_ts: Vec<usize> = [4usize, 8, 16]
        .iter()
        .copied()
        .filter(|&t| t <= nt_tune)
        .collect();
    let tile_ts = if tile_ts.is_empty() { vec![2] } else { tile_ts };
    if quick {
        tempest_tiling::autotune::quick_candidates(nx, ny, &tile_ts)
    } else {
        tempest_tiling::autotune::default_candidates(nx, ny, &tile_ts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup;

    #[test]
    fn tune_and_measure_roundtrip() {
        let mut tuner = setup::acoustic(16, 4, 8, 0);
        let cands = candidates_for(16, 16, 8, true);
        assert!(!cands.is_empty());
        let res = tune_wavefront(&mut tuner, &cands);
        assert!(res.best_time > Duration::ZERO);
        let (bx, by) = tune_baseline(&mut tuner);
        assert!(bx >= 4 && by >= 4);
        let st = measure(&mut tuner, &exec_spaceblocked(bx, by), 2);
        assert!(st.gpoints_per_s > 0.0);
    }

    #[test]
    fn dataflow_candidate_maps_to_dataflow_schedule() {
        let base = Candidate {
            tile_x: 16,
            tile_y: 16,
            tile_t: 4,
            block_x: 8,
            block_y: 8,
            ..Candidate::default()
        };
        let c = base.with_dataflow();
        assert!(matches!(
            exec_wavefront(&c).schedule,
            Schedule::WavefrontDataflow { tile_x: 16, tile_y: 16, tile_t: 4, .. }
        ));
        let d = base.with_diagonal();
        assert!(matches!(
            exec_wavefront(&d).schedule,
            Schedule::WavefrontDiagonal { .. }
        ));
    }

    #[test]
    fn diamond_candidate_maps_to_diamond_schedule() {
        use tempest_tiling::DiamondAxis;
        let base = Candidate {
            tile_x: 16,
            tile_y: 8,
            tile_t: 4,
            block_x: 8,
            block_y: 8,
            ..Candidate::default()
        };
        let c = base.with_diamond(DiamondAxis::Y);
        assert!(matches!(
            exec_wavefront(&c).schedule,
            Schedule::Diamond {
                width: 16,
                tile_t: 4,
                tile_c: 8,
                axis: DiamondAxis::Y,
                ..
            }
        ));
        // The diamond flag wins over diagonal/dataflow leftovers.
        assert!(matches!(
            exec_wavefront(&base).schedule,
            Schedule::Wavefront { .. }
        ));
    }

    #[test]
    fn measured_tuning_roundtrip() {
        let mut tuner = setup::acoustic(16, 4, 8, 0);
        let cands = candidates_for(16, 16, 8, true);
        let res = tune_wavefront_measured(&mut tuner, &cands, 0.25);
        assert!(res.best_measurement.time > Duration::ZERO);
        assert_eq!(res.all.len(), cands.len());
        let (st, _profile, meta) = measure_profiled(&mut tuner, &exec_spaceblocked(8, 8), 2);
        assert!(st.gpoints_per_s > 0.0);
        assert!(meta.elapsed_s > 0.0);
        assert_eq!(meta.nt, 8);
    }
}
