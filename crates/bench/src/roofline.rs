//! In-process machine characterisation for the roofline reproduction
//! (paper Fig. 11).
//!
//! The paper uses Intel Advisor's cache-aware roofline; we reproduce the
//! *model* with two in-process microbenchmarks — peak FLOP/s (an
//! FMA-saturating register kernel) and sustained memory bandwidth (a STREAM
//! triad over arrays far larger than LLC) — and the analytic per-kernel
//! arithmetic intensities from `tempest_stencil::metrics`.

use std::time::Instant;

/// Measured machine ceilings.
#[derive(Debug, Clone, Copy)]
pub struct MachineRoof {
    /// Peak single-precision compute (GFLOP/s, single core).
    pub peak_gflops: f64,
    /// Sustained DRAM bandwidth (GB/s, single core).
    pub bandwidth_gbs: f64,
}

impl MachineRoof {
    /// Attainable GFLOP/s at a given arithmetic intensity (flop/byte).
    pub fn attainable(&self, ai: f64) -> f64 {
        (ai * self.bandwidth_gbs).min(self.peak_gflops)
    }

    /// The ridge point: AI at which the kernel stops being memory-bound.
    pub fn ridge_ai(&self) -> f64 {
        self.peak_gflops / self.bandwidth_gbs
    }
}

/// Measure peak single-precision FLOP/s with an unrolled multiply–add
/// kernel over enough independent accumulators to fill the SIMD units.
///
/// Deliberately `v * m + a`, not `f32::mul_add`: the stencil kernels
/// forgo FMA contraction for bitwise backend equality, and on targets
/// without `+fma` `mul_add` falls back to a libm call that measures
/// call overhead, not the machine.
pub fn measure_peak_gflops(iters: u64) -> f64 {
    const LANES: usize = 32;
    let mut acc = [0f32; LANES];
    for (i, v) in acc.iter_mut().enumerate() {
        *v = 1.0 + i as f32 * 0.01;
    }
    let m = 1.000_000_1f32;
    let a = 1e-9f32;
    let start = Instant::now();
    for _ in 0..iters {
        for v in acc.iter_mut() {
            *v = *v * m + a;
        }
    }
    let secs = start.elapsed().as_secs_f64();
    // Keep the result alive.
    let sum: f32 = acc.iter().sum();
    std::hint::black_box(sum);
    // LANES lanes × 2 flops per multiply–add.
    (iters as f64) * (2 * LANES) as f64 / secs / 1e9
}

/// Measure sustained bandwidth with a STREAM-style triad
/// `a[i] = b[i] + s·c[i]` over arrays of `len` f32 (choose `len` ≫ LLC).
pub fn measure_bandwidth_gbs(len: usize, reps: usize) -> f64 {
    let b = vec![1.0f32; len];
    let c = vec![2.0f32; len];
    let mut a = vec![0.0f32; len];
    let s = 1.5f32;
    let start = Instant::now();
    for _ in 0..reps {
        for i in 0..len {
            a[i] = b[i] + s * c[i];
        }
        std::hint::black_box(&a);
    }
    let secs = start.elapsed().as_secs_f64();
    // 2 reads + 1 write (+1 write-allocate read) × 4 bytes.
    let bytes = (reps as f64) * (len as f64) * 4.0 * 4.0;
    bytes / secs / 1e9
}

/// One kernel's position on the roofline.
#[derive(Debug, Clone)]
pub struct RooflinePoint {
    /// Label, e.g. `acoustic so4 wtb`.
    pub label: String,
    /// Arithmetic intensity (flop/byte).
    pub ai: f64,
    /// Achieved GFLOP/s.
    pub gflops: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_measurement_is_positive_and_sane() {
        let g = measure_peak_gflops(200_000);
        assert!(g > 0.05 && g < 1000.0, "peak {g} GFLOP/s");
    }

    #[test]
    fn bandwidth_measurement_is_positive_and_sane() {
        let bw = measure_bandwidth_gbs(1 << 20, 3);
        assert!(bw > 0.05 && bw < 2000.0, "bw {bw} GB/s");
    }

    #[test]
    fn roof_model() {
        let roof = MachineRoof {
            peak_gflops: 100.0,
            bandwidth_gbs: 10.0,
        };
        assert_eq!(roof.ridge_ai(), 10.0);
        assert_eq!(roof.attainable(1.0), 10.0); // memory bound
        assert_eq!(roof.attainable(100.0), 100.0); // compute bound
    }
}
