//! A small self-contained micro-benchmark harness (the workspace builds
//! hermetically, so no criterion). Auto-calibrates the iteration count,
//! reports best / median / mean per-iteration time and optional
//! per-element throughput. Not statistically fancy — best-of-many on a
//! quiet machine is what the paper's harness runs use anyway.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Measurement of one benchmark case.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Benchmark label (`group/case` by convention).
    pub label: String,
    /// Timed iterations.
    pub iters: usize,
    /// Fastest single iteration.
    pub best: Duration,
    /// Median iteration.
    pub median: Duration,
    /// Mean iteration.
    pub mean: Duration,
    /// Optional element count per iteration for throughput reporting.
    pub elements: Option<u64>,
}

impl Sample {
    /// Elements per second at the median time.
    pub fn elements_per_s(&self) -> Option<f64> {
        self.elements
            .map(|e| e as f64 / self.median.as_secs_f64().max(1e-12))
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

impl std::fmt::Display for Sample {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:<44} median {:>10}  best {:>10}  mean {:>10}  ({} iters)",
            self.label,
            fmt_duration(self.median),
            fmt_duration(self.best),
            fmt_duration(self.mean),
            self.iters
        )?;
        if let Some(eps) = self.elements_per_s() {
            write!(f, "  {:.2} Melem/s", eps / 1e6)?;
        }
        Ok(())
    }
}

/// Harness configuration.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Warm-up budget before measuring.
    pub warmup: Duration,
    /// Total measurement budget.
    pub measure: Duration,
    /// Upper bound on timed iterations.
    pub max_iters: usize,
    /// Lower bound on timed iterations.
    pub min_iters: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            warmup: Duration::from_millis(200),
            measure: Duration::from_millis(800),
            max_iters: 200,
            min_iters: 5,
        }
    }
}

impl Config {
    /// A faster profile for heavyweight end-to-end cases.
    pub fn coarse() -> Self {
        Config {
            warmup: Duration::from_millis(100),
            measure: Duration::from_millis(600),
            max_iters: 20,
            min_iters: 3,
        }
    }
}

/// Run one benchmark case: calibrate, measure, print, return the sample.
pub fn run<F: FnMut()>(label: &str, cfg: Config, mut f: F) -> Sample {
    run_with_elements(label, cfg, None, &mut f)
}

/// Like [`run`], additionally reporting `elements`/iteration throughput.
pub fn run_elems<F: FnMut()>(label: &str, cfg: Config, elements: u64, mut f: F) -> Sample {
    run_with_elements(label, cfg, Some(elements), &mut f)
}

fn run_with_elements(
    label: &str,
    cfg: Config,
    elements: Option<u64>,
    f: &mut dyn FnMut(),
) -> Sample {
    // Warm-up and single-iteration estimate.
    let started = Instant::now();
    let mut probe_iters = 0usize;
    while started.elapsed() < cfg.warmup || probe_iters == 0 {
        f();
        probe_iters += 1;
        if probe_iters >= cfg.max_iters && started.elapsed() >= cfg.warmup {
            break;
        }
    }
    let per_iter = started.elapsed() / probe_iters as u32;
    let iters = (cfg.measure.as_nanos() / per_iter.as_nanos().max(1)) as usize;
    let iters = iters.clamp(cfg.min_iters, cfg.max_iters);

    let mut times = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t0 = Instant::now();
        f();
        times.push(t0.elapsed());
    }
    times.sort();
    let best = times[0];
    let median = times[times.len() / 2];
    let mean = times.iter().sum::<Duration>() / times.len() as u32;
    let s = Sample {
        label: label.to_string(),
        iters,
        best,
        median,
        mean,
        elements,
    };
    println!("{s}");
    black_box(&s);
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something() {
        let cfg = Config {
            warmup: Duration::from_millis(1),
            measure: Duration::from_millis(5),
            max_iters: 50,
            min_iters: 3,
        };
        let mut n = 0u64;
        let s = run("test/spin", cfg, || {
            for i in 0..1000u64 {
                n = n.wrapping_add(black_box(i));
            }
        });
        assert!(s.iters >= 3);
        assert!(s.best <= s.median && s.median <= *[s.mean, s.median].iter().max().unwrap());
        assert!(s.best > Duration::ZERO);
    }

    #[test]
    fn throughput_reported() {
        let cfg = Config {
            warmup: Duration::from_millis(1),
            measure: Duration::from_millis(2),
            max_iters: 10,
            min_iters: 3,
        };
        let s = run_elems("test/tp", cfg, 1000, || {
            black_box((0..100).sum::<u64>());
        });
        assert!(s.elements_per_s().unwrap() > 0.0);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(500)), "500 ns");
        assert_eq!(fmt_duration(Duration::from_micros(50)), "50.00 µs");
        assert_eq!(fmt_duration(Duration::from_millis(50)), "50.00 ms");
        assert_eq!(fmt_duration(Duration::from_secs(50)), "50.00 s");
    }
}
