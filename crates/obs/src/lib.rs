//! Runtime-telemetry subsystem: per-thread sharded counters and monotonic
//! phase timers with a single aggregation point.
//!
//! Two gates keep the hot path clean:
//!
//! 1. **Compile-time** — without the `enabled` cargo feature every recording
//!    entry point ([`add`], [`start`], …) is an `#[inline(always)]` empty
//!    function, so instrumented call sites (and the arithmetic feeding them)
//!    are dead-code-eliminated.
//! 2. **Run-time** — with the feature compiled in, recording is still off
//!    unless `TEMPEST_PROFILE` is set (or [`set_enabled`] was called); the
//!    check is one `Once` fast-path plus a relaxed bool load per call site.
//!
//! Recording is wait-free per thread: each thread owns an `Arc<Shard>` of
//! relaxed `AtomicU64`s (registered once in a global list), so there is no
//! cross-thread contention on the hot path. [`snapshot`] is the single
//! aggregation point — it walks the registry and folds all shards into a
//! [`Profile`], which renders a human table ([`Profile::render`]) and JSON
//! ([`Profile::write_json`] → `target/profile/*.json`).

use std::fmt::Write as _;
use std::path::PathBuf;

pub mod analysis;
pub mod json;
pub mod metrics;
pub mod serve;
pub mod trace;

// ---------------------------------------------------------------------------
// Counter / Phase taxonomies
// ---------------------------------------------------------------------------

/// Monotonic event counters. Semantics (see DESIGN.md §9):
///
/// * `StencilUpdates` — grid points given a new value by a stencil sweep,
///   counted once per point per virtual timestep (TTI counts its coupled
///   p/q pair as one update; elastic counts each of its two phases).
/// * `SourceInjections` — point-sparse additions into the wavefield: one per
///   masked grid point per timestep in the fused paths, one per stencil
///   nonzero in the classic scatter path.
/// * `ReceiverGathers` — wavefield-sample contributions accumulated into the
///   trace buffer: one per (receiver, footprint-nonzero) pair per timestep.
/// * `ParTasks` — batch items executed by `tempest_par::run_batch`, counted
///   on the thread that ran them (the caller participates).
/// * `ParPublications` — jobs published to the board for workers to claim.
/// * `WavefrontSlabs` / `WavefrontTiles` / `WavefrontDiagonals` — wavefront
///   executor scheduling units.
/// * `DataflowReady` — tiles pushed onto a ready deque by the dataflow
///   executor (initial roots plus every dependency-counter zero
///   transition); equals the number of executed tiles, so it is
///   deterministic across thread policies.
/// * `DataflowSteals` — tiles a dataflow participant claimed from another
///   participant's deque. Depends on runtime timing, so it is *not*
///   deterministic across runs or thread caps.
/// * `SpaceSweeps` — per-virtual-timestep sweeps of the space-blocked
///   executor.
/// * `PencilRows` — contiguous z-rows computed by the row-granularity
///   vector backends (portable pencil or AVX2); zero when a run uses the
///   scalar per-point path.
///   Deterministic for a given schedule and grid, independent of the thread
///   policy.
/// * `ShotStarted` / `ShotCompleted` — shot solves begun / finished by the
///   survey engine (`tempest-survey`). A shot that panics is started but
///   never completed; a cancelled job's unrun shots count as neither. Both
///   are deterministic across thread caps for a given survey.
/// * `BatchAutotune` — batch-level autotune passes run by the survey engine:
///   one per shot batch that tuned a schedule (subsequent batches sharing
///   the model reuse the result and do not count).
/// * `BackendScalar` / `BackendPortable` / `BackendAvx2` — which dense
///   kernel backend served a run: the propagators bump exactly one of these
///   by 1 per `run`/`run_recording`/`run_range` call, after resolving the
///   `KernelPath` (so an `Auto` run records the backend it actually
///   dispatched to). Deterministic for a given host + `TEMPEST_KERNEL` /
///   `--kernel` selection.
/// * `TilesReused` / `TilesRecomputed` — incremental-executor outcomes: a
///   tile node either restored its cached output or recomputed it; the two
///   always sum to the number of tiles the plan enumerates (the exact-count
///   oracle of `tests/incremental.rs`). `TilesReused` is deterministic for a
///   given cache state; a cold run records zero.
/// * `CacheEvictions` — `TileCache` entries dropped to hold the
///   `TEMPEST_CACHE_MB` budget (LRU order). Depends on insertion order, so
///   not deterministic across thread caps.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(usize)]
pub enum Counter {
    StencilUpdates = 0,
    SourceInjections,
    ReceiverGathers,
    ParTasks,
    ParPublications,
    WavefrontSlabs,
    WavefrontTiles,
    WavefrontDiagonals,
    DataflowReady,
    DataflowSteals,
    SpaceSweeps,
    PencilRows,
    ShotStarted,
    ShotCompleted,
    BatchAutotune,
    BackendScalar,
    BackendPortable,
    BackendAvx2,
    TilesReused,
    TilesRecomputed,
    CacheEvictions,
}

impl Counter {
    pub const COUNT: usize = 21;
    pub const ALL: [Counter; Self::COUNT] = [
        Counter::StencilUpdates,
        Counter::SourceInjections,
        Counter::ReceiverGathers,
        Counter::ParTasks,
        Counter::ParPublications,
        Counter::WavefrontSlabs,
        Counter::WavefrontTiles,
        Counter::WavefrontDiagonals,
        Counter::DataflowReady,
        Counter::DataflowSteals,
        Counter::SpaceSweeps,
        Counter::PencilRows,
        Counter::ShotStarted,
        Counter::ShotCompleted,
        Counter::BatchAutotune,
        Counter::BackendScalar,
        Counter::BackendPortable,
        Counter::BackendAvx2,
        Counter::TilesReused,
        Counter::TilesRecomputed,
        Counter::CacheEvictions,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Counter::StencilUpdates => "stencil_updates",
            Counter::SourceInjections => "source_injections",
            Counter::ReceiverGathers => "receiver_gathers",
            Counter::ParTasks => "par_tasks",
            Counter::ParPublications => "par_publications",
            Counter::WavefrontSlabs => "wavefront_slabs",
            Counter::WavefrontTiles => "wavefront_tiles",
            Counter::WavefrontDiagonals => "wavefront_diagonals",
            Counter::DataflowReady => "dataflow_ready",
            Counter::DataflowSteals => "dataflow_steals",
            Counter::SpaceSweeps => "space_sweeps",
            Counter::PencilRows => "pencil_rows",
            Counter::ShotStarted => "shot_started",
            Counter::ShotCompleted => "shot_completed",
            Counter::BatchAutotune => "batch_autotune",
            Counter::BackendScalar => "backend_scalar",
            Counter::BackendPortable => "backend_portable",
            Counter::BackendAvx2 => "backend_avx2",
            Counter::TilesReused => "tiles_reused",
            Counter::TilesRecomputed => "tiles_recomputed",
            Counter::CacheEvictions => "cache_evictions",
        }
    }
}

/// Wall-clock phases timed by [`start`]. `Stencil` spans a whole region
/// update including its fused sparse work; `Sparse` nests inside it (the
/// dense-only share is `Stencil − Sparse`). `BarrierWait` is the time a
/// `run_batch` caller spends waiting for workers after exhausting the batch,
/// plus the time any `run_dataflow` participant spends idle with no ready
/// tile to claim. `Slab`/`Diagonal`/`Sweep` are executor scheduling units;
/// `Dataflow` is the caller-side span of one whole dependency-driven sweep
/// (the analogue of the sum of a run's `Diagonal` phases), and `Diamond` the
/// same for one diamond-schedule sweep.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(usize)]
pub enum Phase {
    Stencil = 0,
    Sparse,
    BarrierWait,
    Slab,
    Diagonal,
    Dataflow,
    Diamond,
    Sweep,
}

impl Phase {
    pub const COUNT: usize = 8;
    pub const ALL: [Phase; Self::COUNT] = [
        Phase::Stencil,
        Phase::Sparse,
        Phase::BarrierWait,
        Phase::Slab,
        Phase::Diagonal,
        Phase::Dataflow,
        Phase::Diamond,
        Phase::Sweep,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Phase::Stencil => "stencil",
            Phase::Sparse => "sparse",
            Phase::BarrierWait => "barrier_wait",
            Phase::Slab => "slab",
            Phase::Diagonal => "diagonal",
            Phase::Dataflow => "dataflow",
            Phase::Diamond => "diamond",
            Phase::Sweep => "sweep",
        }
    }
}

// ---------------------------------------------------------------------------
// Recording API — real implementation (feature = "enabled")
// ---------------------------------------------------------------------------

#[cfg(feature = "enabled")]
mod imp {
    use super::{Counter, Phase, Profile, ThreadProfile};
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::{Arc, Mutex, Once, OnceLock};
    use std::time::Instant;

    struct Shard {
        label: String,
        counters: [AtomicU64; Counter::COUNT],
        timers_ns: [AtomicU64; Phase::COUNT],
    }

    static ENABLED: AtomicBool = AtomicBool::new(false);
    static ENV_INIT: Once = Once::new();
    static REGISTRY: OnceLock<Mutex<Vec<Arc<Shard>>>> = OnceLock::new();

    thread_local! {
        static SHARD: Arc<Shard> = register_shard();
    }

    fn registry() -> &'static Mutex<Vec<Arc<Shard>>> {
        REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
    }

    fn register_shard() -> Arc<Shard> {
        let cur = std::thread::current();
        let label = cur
            .name()
            .map(str::to_string)
            .unwrap_or_else(|| format!("{:?}", cur.id()));
        let shard = Arc::new(Shard {
            label,
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            timers_ns: std::array::from_fn(|_| AtomicU64::new(0)),
        });
        registry()
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(Arc::clone(&shard));
        shard
    }

    /// Is recording on? First call resolves `TEMPEST_PROFILE` (any value
    /// other than empty or `0` enables); after that it is one relaxed load.
    #[inline]
    pub fn enabled() -> bool {
        ENV_INIT.call_once(|| {
            let on = std::env::var("TEMPEST_PROFILE")
                .map(|v| !v.is_empty() && v != "0")
                .unwrap_or(false);
            if on {
                ENABLED.store(true, Ordering::Relaxed);
            }
        });
        ENABLED.load(Ordering::Relaxed)
    }

    /// Programmatic override of the `TEMPEST_PROFILE` gate.
    pub fn set_enabled(on: bool) {
        let _ = enabled(); // settle the env init so it cannot overwrite us
        ENABLED.store(on, Ordering::Relaxed);
    }

    /// Add `n` to counter `c` on this thread's shard.
    #[inline]
    pub fn add(c: Counter, n: u64) {
        if !enabled() {
            return;
        }
        SHARD.with(|s| s.counters[c as usize].fetch_add(n, Ordering::Relaxed));
    }

    /// Start timing `p`; the elapsed nanoseconds land on this thread's shard
    /// when the returned guard is dropped (or [`Stopwatch::stop`] is called).
    #[inline]
    pub fn start(p: Phase) -> Stopwatch {
        if !enabled() {
            return Stopwatch(None);
        }
        Stopwatch(Some((p, Instant::now())))
    }

    pub struct Stopwatch(Option<(Phase, Instant)>);

    impl Stopwatch {
        /// Explicit stop; equivalent to dropping the guard.
        #[inline]
        pub fn stop(self) {}
    }

    impl Drop for Stopwatch {
        #[inline]
        fn drop(&mut self) {
            if let Some((p, t0)) = self.0.take() {
                let ns = t0.elapsed().as_nanos() as u64;
                SHARD.with(|s| s.timers_ns[p as usize].fetch_add(ns, Ordering::Relaxed));
            }
        }
    }

    /// Zero every registered shard (the registry itself is kept: live
    /// threads hold `Arc`s to their shards).
    pub fn reset() {
        let reg = registry().lock().unwrap_or_else(|e| e.into_inner());
        for shard in reg.iter() {
            for c in &shard.counters {
                c.store(0, Ordering::Relaxed);
            }
            for t in &shard.timers_ns {
                t.store(0, Ordering::Relaxed);
            }
        }
    }

    /// The single aggregation point: fold every shard into a [`Profile`].
    /// Shards that recorded nothing are skipped.
    pub fn snapshot() -> Profile {
        let reg = registry().lock().unwrap_or_else(|e| e.into_inner());
        let mut threads = Vec::new();
        for shard in reg.iter() {
            let counters: [u64; Counter::COUNT] =
                std::array::from_fn(|i| shard.counters[i].load(Ordering::Relaxed));
            let timers_ns: [u64; Phase::COUNT] =
                std::array::from_fn(|i| shard.timers_ns[i].load(Ordering::Relaxed));
            if counters.iter().all(|&v| v == 0) && timers_ns.iter().all(|&v| v == 0) {
                continue;
            }
            threads.push(ThreadProfile {
                label: shard.label.clone(),
                counters,
                timers_ns,
            });
        }
        threads.sort_by(|a, b| a.label.cmp(&b.label));
        Profile { threads }
    }
}

// ---------------------------------------------------------------------------
// Recording API — no-op implementation (feature off)
// ---------------------------------------------------------------------------

#[cfg(not(feature = "enabled"))]
mod imp {
    use super::{Counter, Phase, Profile};

    #[inline(always)]
    pub fn enabled() -> bool {
        false
    }

    #[inline(always)]
    pub fn set_enabled(_on: bool) {}

    #[inline(always)]
    pub fn add(_c: Counter, _n: u64) {}

    pub struct Stopwatch;

    impl Stopwatch {
        #[inline(always)]
        pub fn stop(self) {}
    }

    #[inline(always)]
    pub fn start(_p: Phase) -> Stopwatch {
        Stopwatch
    }

    #[inline(always)]
    pub fn reset() {}

    #[inline(always)]
    pub fn snapshot() -> Profile {
        Profile::default()
    }
}

pub use imp::{add, enabled, reset, set_enabled, snapshot, start, Stopwatch};

// ---------------------------------------------------------------------------
// Aggregated profile (always compiled — bench/examples name these types)
// ---------------------------------------------------------------------------

/// One thread's aggregated counters and timers.
#[derive(Clone, Debug, Default)]
pub struct ThreadProfile {
    pub label: String,
    pub counters: [u64; Counter::COUNT],
    pub timers_ns: [u64; Phase::COUNT],
}

impl ThreadProfile {
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters[c as usize]
    }

    pub fn timer_ns(&self, p: Phase) -> u64 {
        self.timers_ns[p as usize]
    }

    /// Barrier-wait time as a share of this thread's total timed work.
    pub fn barrier_wait_share(&self) -> f64 {
        let total: u64 = self.timers_ns.iter().sum();
        if total == 0 {
            0.0
        } else {
            self.timer_ns(Phase::BarrierWait) as f64 / total as f64
        }
    }
}

/// Run metadata attached to a rendered/serialised profile.
#[derive(Clone, Debug, Default)]
pub struct RunMeta {
    /// Report name; also the JSON file stem under `target/profile/`.
    pub name: String,
    /// Human label of the schedule that ran (e.g. `wavefront 32x32x4/8x8`).
    pub schedule: String,
    pub nt: usize,
    pub grid_points: u64,
    pub elapsed_s: f64,
}

impl RunMeta {
    pub fn new(name: &str, schedule: &str, nt: usize, grid_points: u64, elapsed_s: f64) -> Self {
        RunMeta {
            name: name.to_string(),
            schedule: schedule.to_string(),
            nt,
            grid_points,
            elapsed_s,
        }
    }

    /// Giga grid-point updates per second over the whole run. Guarded so a
    /// zero/negative/non-finite elapsed time yields 0.0, never NaN or inf —
    /// this value flows straight into serialised reports.
    pub fn gpts_per_s(&self) -> f64 {
        if !self.elapsed_s.is_finite() || self.elapsed_s <= 0.0 {
            0.0
        } else {
            fin(self.grid_points as f64 * self.nt as f64 / self.elapsed_s / 1e9)
        }
    }
}

/// Aggregated view of every shard, produced by [`snapshot`].
#[derive(Clone, Debug, Default)]
pub struct Profile {
    pub threads: Vec<ThreadProfile>,
}

impl Profile {
    /// Sum of counter `c` across all threads.
    pub fn counter(&self, c: Counter) -> u64 {
        self.threads.iter().map(|t| t.counter(c)).sum()
    }

    /// Sum of timer `p` across all threads, in nanoseconds.
    pub fn timer_ns(&self, p: Phase) -> u64 {
        self.threads.iter().map(|t| t.timer_ns(p)).sum()
    }

    /// Barrier-wait time as a share of all timed work, across all threads.
    /// This is the tie-breaker signal the autotuner consumes.
    pub fn barrier_wait_share(&self) -> f64 {
        let total: u64 = Phase::ALL.iter().map(|&p| self.timer_ns(p)).sum();
        if total == 0 {
            0.0
        } else {
            self.timer_ns(Phase::BarrierWait) as f64 / total as f64
        }
    }

    pub fn is_empty(&self) -> bool {
        self.threads.is_empty()
    }

    /// Human-readable per-phase table.
    pub fn render(&self, meta: &RunMeta) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "── tempest profile: {} ──", meta.name);
        let _ = writeln!(
            out,
            "schedule {} · nt {} · grid {} pts · {:.3} ms · {:.3} GPts/s",
            meta.schedule,
            meta.nt,
            meta.grid_points,
            meta.elapsed_s * 1e3,
            meta.gpts_per_s()
        );

        let _ = writeln!(out, "counters:");
        for c in Counter::ALL {
            let v = self.counter(c);
            if v != 0 {
                let _ = writeln!(out, "  {:<20} {:>14}", c.name(), v);
            }
        }

        let timed: u64 = Phase::ALL.iter().map(|&p| self.timer_ns(p)).sum();
        let _ = writeln!(out, "phase times (thread-summed):");
        for p in Phase::ALL {
            let ns = self.timer_ns(p);
            if ns == 0 {
                continue;
            }
            let pct = if timed == 0 {
                0.0
            } else {
                100.0 * ns as f64 / timed as f64
            };
            let _ = writeln!(out, "  {:<14} {:>10.3} ms  {:>5.1}%", p.name(), ns as f64 / 1e6, pct);
        }
        // `Sparse` nests inside `Stencil`; report the dense-only remainder.
        let dense = self
            .timer_ns(Phase::Stencil)
            .saturating_sub(self.timer_ns(Phase::Sparse));
        if dense != 0 && self.timer_ns(Phase::Sparse) != 0 {
            let _ = writeln!(out, "  {:<14} {:>10.3} ms  (stencil − sparse)", "dense-only", dense as f64 / 1e6);
        }

        let _ = writeln!(out, "per-thread:");
        let _ = writeln!(
            out,
            "  {:<22} {:>10} {:>14} {:>8}",
            "thread", "tasks", "barrier-wait", "share"
        );
        for t in &self.threads {
            let _ = writeln!(
                out,
                "  {:<22} {:>10} {:>11.3} ms {:>7.1}%",
                t.label,
                t.counter(Counter::ParTasks),
                t.timer_ns(Phase::BarrierWait) as f64 / 1e6,
                100.0 * t.barrier_wait_share()
            );
        }
        out
    }

    /// JSON document (hand-rolled; schema in DESIGN.md §9).
    pub fn to_json(&self, meta: &RunMeta) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"name\": \"{}\",", escape(&meta.name));
        let _ = writeln!(s, "  \"schedule\": \"{}\",", escape(&meta.schedule));
        let _ = writeln!(s, "  \"nt\": {},", meta.nt);
        let _ = writeln!(s, "  \"grid_points\": {},", meta.grid_points);
        let _ = writeln!(s, "  \"elapsed_s\": {:.9},", fin(meta.elapsed_s));
        let _ = writeln!(s, "  \"gpts_per_s\": {:.6},", fin(meta.gpts_per_s()));
        let _ = writeln!(s, "  \"barrier_wait_share\": {:.6},", fin(self.barrier_wait_share()));

        s.push_str("  \"counters\": {");
        for (i, c) in Counter::ALL.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            let _ = write!(s, "\"{}\": {}", c.name(), self.counter(*c));
        }
        s.push_str("},\n");

        s.push_str("  \"timers_ns\": {");
        for (i, p) in Phase::ALL.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            let _ = write!(s, "\"{}\": {}", p.name(), self.timer_ns(*p));
        }
        s.push_str("},\n");

        s.push_str("  \"threads\": [\n");
        for (ti, t) in self.threads.iter().enumerate() {
            s.push_str("    {");
            let _ = write!(s, "\"label\": \"{}\", ", escape(&t.label));
            s.push_str("\"counters\": {");
            for (i, c) in Counter::ALL.iter().enumerate() {
                if i > 0 {
                    s.push_str(", ");
                }
                let _ = write!(s, "\"{}\": {}", c.name(), t.counter(*c));
            }
            s.push_str("}, \"timers_ns\": {");
            for (i, p) in Phase::ALL.iter().enumerate() {
                if i > 0 {
                    s.push_str(", ");
                }
                let _ = write!(s, "\"{}\": {}", p.name(), t.timer_ns(*p));
            }
            s.push_str("}}");
            if ti + 1 < self.threads.len() {
                s.push(',');
            }
            s.push('\n');
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Write the JSON report to `target/profile/{name}__{schedule}.json`
    /// (honouring `CARGO_TARGET_DIR`), creating directories as needed. The
    /// schedule is part of the stem so profiles of different schedules on
    /// the same solver do not overwrite each other; both labels are passed
    /// through [`sanitize_label`], so separator runs collapse to one `_`.
    /// Returns the path.
    pub fn write_json(&self, meta: &RunMeta) -> std::io::Result<PathBuf> {
        let target = std::env::var("CARGO_TARGET_DIR").unwrap_or_else(|_| "target".to_string());
        let dir = PathBuf::from(target).join("profile");
        std::fs::create_dir_all(&dir)?;
        let stem = if meta.schedule.is_empty() {
            sanitize_label(&meta.name)
        } else {
            format!("{}__{}", sanitize_label(&meta.name), sanitize_label(&meta.schedule))
        };
        let path = dir.join(format!("{stem}.json"));
        std::fs::write(&path, self.to_json(meta))?;
        Ok(path)
    }
}

/// Turn a free-form label (solver name, schedule description) into a
/// filename-safe stem: ASCII alphanumerics and `-` pass through, every run
/// of anything else collapses to a single `_`, with no leading/trailing
/// separator. `"wavefront-diag 32x32 t4 / 8x8"` becomes
/// `"wavefront-diag_32x32_t4_8x8"` — one canonical separator, so writers
/// joining name and schedule with `__` produce unambiguous stems.
pub fn sanitize_label(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    let mut pending_sep = false;
    for c in raw.chars() {
        if c.is_ascii_alphanumeric() || c == '-' {
            if pending_sep && !out.is_empty() {
                out.push('_');
            }
            pending_sep = false;
            out.push(c);
        } else {
            pending_sep = true;
        }
    }
    if out.is_empty() {
        "unnamed".to_string()
    } else {
        out
    }
}

/// Clamp a float to a finite value for serialisation: NaN and ±inf become
/// 0.0 so hand-rolled JSON writers can never emit tokens a parser rejects.
pub(crate) fn fin(x: f64) -> f64 {
    if x.is_finite() {
        x
    } else {
        0.0
    }
}

/// Minimal JSON string escaping for labels/names.
pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_profile() -> (Profile, RunMeta) {
        let mut a = ThreadProfile {
            label: "main".into(),
            ..Default::default()
        };
        a.counters[Counter::StencilUpdates as usize] = 1000;
        a.counters[Counter::ParTasks as usize] = 10;
        a.timers_ns[Phase::Stencil as usize] = 8_000_000;
        a.timers_ns[Phase::Sparse as usize] = 1_000_000;
        a.timers_ns[Phase::BarrierWait as usize] = 1_000_000;
        let mut b = ThreadProfile {
            label: "tempest-par-0".into(),
            ..Default::default()
        };
        b.counters[Counter::ParTasks as usize] = 6;
        b.timers_ns[Phase::BarrierWait as usize] = 2_000_000;
        let profile = Profile { threads: vec![a, b] };
        let meta = RunMeta::new("unit-test", "wavefront 32x32x4", 8, 64 * 64 * 64, 0.005);
        (profile, meta)
    }

    #[test]
    fn aggregation_sums_across_threads() {
        let (p, _) = sample_profile();
        assert_eq!(p.counter(Counter::ParTasks), 16);
        assert_eq!(p.counter(Counter::StencilUpdates), 1000);
        assert_eq!(p.timer_ns(Phase::BarrierWait), 3_000_000);
        // barrier 3ms of 12ms total timed work
        assert!((p.barrier_wait_share() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn per_thread_barrier_share() {
        let (p, _) = sample_profile();
        // worker thread spent all its timed ns waiting
        assert!((p.threads[1].barrier_wait_share() - 1.0).abs() < 1e-12);
        assert!((p.threads[0].barrier_wait_share() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn meta_gpts() {
        let meta = RunMeta::new("x", "s", 10, 1_000_000, 0.01);
        assert!((meta.gpts_per_s() - 1.0).abs() < 1e-12);
        assert_eq!(RunMeta::new("x", "s", 10, 1_000_000, 0.0).gpts_per_s(), 0.0);
    }

    #[test]
    fn render_mentions_phases_and_threads() {
        let (p, meta) = sample_profile();
        let table = p.render(&meta);
        assert!(table.contains("unit-test"));
        assert!(table.contains("stencil_updates"));
        assert!(table.contains("barrier_wait"));
        assert!(table.contains("tempest-par-0"));
        assert!(table.contains("GPts/s"));
    }

    #[test]
    fn json_is_well_formed_enough() {
        let (p, meta) = sample_profile();
        let js = p.to_json(&meta);
        // structural sanity: balanced braces/brackets, expected keys
        assert_eq!(js.matches('{').count(), js.matches('}').count());
        assert_eq!(js.matches('[').count(), js.matches(']').count());
        for key in [
            "\"name\"",
            "\"schedule\"",
            "\"gpts_per_s\"",
            "\"barrier_wait_share\"",
            "\"counters\"",
            "\"timers_ns\"",
            "\"threads\"",
            "\"stencil_updates\"",
            "\"barrier_wait\"",
        ] {
            assert!(js.contains(key), "missing {key} in {js}");
        }
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("plain"), "plain");
    }

    #[test]
    fn sanitize_collapses_separator_runs() {
        assert_eq!(
            sanitize_label("wavefront-diag 32x32 t4 / 8x8"),
            "wavefront-diag_32x32_t4_8x8"
        );
        assert_eq!(sanitize_label("spaceblocked 8x8"), "spaceblocked_8x8");
        assert_eq!(sanitize_label("  lead/trail  "), "lead_trail");
        assert_eq!(sanitize_label("a__b"), "a_b");
        assert_eq!(sanitize_label("///"), "unnamed");
        assert_eq!(sanitize_label("acoustic-so4"), "acoustic-so4");
    }

    #[test]
    fn gpts_never_nan_or_inf() {
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let m = RunMeta::new("x", "s", 10, 1_000_000, bad);
            assert_eq!(m.gpts_per_s(), 0.0, "elapsed_s = {bad}");
        }
    }

    #[test]
    fn json_has_no_nonfinite_tokens_for_degenerate_meta() {
        let p = Profile::default();
        for bad in [0.0, f64::NAN, f64::INFINITY] {
            let meta = RunMeta::new("x", "s", 0, 0, bad);
            let js = p.to_json(&meta);
            assert!(!js.contains("NaN") && !js.contains("inf"), "bad JSON: {js}");
            assert!(json::Value::parse(&js).is_ok(), "unparseable: {js}");
        }
    }

    #[cfg(not(feature = "enabled"))]
    #[test]
    fn disabled_build_is_inert() {
        assert!(!enabled());
        set_enabled(true);
        assert!(!enabled());
        add(Counter::StencilUpdates, 5);
        start(Phase::Stencil).stop();
        let p = snapshot();
        assert!(p.is_empty());
        assert_eq!(p.counter(Counter::StencilUpdates), 0);
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn enabled_build_records_and_resets() {
        set_enabled(true);
        reset();
        add(Counter::StencilUpdates, 5);
        add(Counter::StencilUpdates, 7);
        let sw = start(Phase::Stencil);
        std::thread::sleep(std::time::Duration::from_millis(2));
        sw.stop();
        let h = std::thread::Builder::new()
            .name("obs-test-worker".into())
            .spawn(|| add(Counter::ParTasks, 3))
            .unwrap();
        h.join().unwrap();
        let p = snapshot();
        assert_eq!(p.counter(Counter::StencilUpdates), 12);
        assert_eq!(p.counter(Counter::ParTasks), 3);
        assert!(p.timer_ns(Phase::Stencil) >= 1_000_000);
        assert!(p.threads.iter().any(|t| t.label == "obs-test-worker"));

        // runtime gate: disabled → nothing recorded
        set_enabled(false);
        reset();
        add(Counter::StencilUpdates, 99);
        start(Phase::Stencil).stop();
        assert_eq!(snapshot().counter(Counter::StencilUpdates), 0);
        set_enabled(true);
    }
}
