//! Minimal JSON reader and writer (no external dependencies).
//!
//! The workspace writes most of its reports with hand-rolled serialisation;
//! this module is the matching *reader* so tests can parse exported
//! profile/trace documents back and `tempest-report` can fold them into the
//! benchmark trajectory. It is a strict-enough recursive-descent parser for
//! the JSON this repo emits (and ordinary JSON in general); it is not a
//! validating standards suite. [`Value::render`] is the inverse: documents
//! built as a [`Value`] tree (the `/jobs` telemetry endpoint) serialise
//! through it, and `render ∘ parse` is the identity on parsed trees.

/// A parsed JSON value. Object keys keep insertion order.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Parse a complete JSON document (trailing whitespace allowed).
    pub fn parse(s: &str) -> Result<Value, String> {
        let mut p = Parser {
            b: s.as_bytes(),
            i: 0,
        };
        p.ws();
        let v = p.value()?;
        p.ws();
        if p.i != p.b.len() {
            return Err(format!("trailing garbage at byte {}", p.i));
        }
        Ok(v)
    }

    /// Member lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Non-negative integer value (numbers only; must round-trip exactly).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            // `u64::MAX as f64` rounds up to 2^64, which is out of range,
            // hence the strict bound.
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n < u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// Signed integer value.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Num(n) if n.fract() == 0.0 && *n >= i64::MIN as f64 && *n <= i64::MAX as f64 => {
                Some(*n as i64)
            }
            _ => None,
        }
    }

    /// String value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array items.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Object members.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// Boolean value.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Serialise back to compact JSON text. Non-finite numbers are clamped
    /// to 0 (JSON has no NaN/inf tokens), matching the crate's hand-rolled
    /// writers, so rendered output always reparses.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(n) => {
                let n = crate::fin(*n);
                // `{}` on f64 prints the shortest decimal that reparses to
                // the same value (integers print without a fraction).
                let _ = std::fmt::Write::write_fmt(out, format_args!("{n}"));
            }
            Value::Str(s) => {
                out.push('"');
                out.push_str(&crate::escape(s));
                out.push('"');
            }
            Value::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    v.render_into(out);
                }
                out.push(']');
            }
            Value::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    out.push('"');
                    out.push_str(&crate::escape(k));
                    out.push_str("\": ");
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn ws(&mut self) {
        while self.i < self.b.len() && matches!(self.b[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                c as char,
                self.i,
                self.peek().map(|b| b as char)
            ))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.lit("true", Value::Bool(true)),
            Some(b'f') => self.lit("false", Value::Bool(false)),
            Some(b'n') => self.lit("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.i
            )),
        }
    }

    fn lit(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.i))
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut m = Vec::new();
        self.ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Value::Obj(m));
        }
        loop {
            self.ws();
            let k = self.string()?;
            self.ws();
            self.expect(b':')?;
            self.ws();
            let v = self.value()?;
            m.push((k, v));
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Value::Obj(m));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.i,
                        other.map(|b| b as char)
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut v = Vec::new();
        self.ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Value::Arr(v));
        }
        loop {
            self.ws();
            v.push(self.value()?);
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Value::Arr(v));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.i,
                        other.map(|b| b as char)
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.i + 4 >= self.b.len() {
                                return Err("truncated \\u escape".into());
                            }
                            let hex = std::str::from_utf8(&self.b[self.i + 1..self.i + 5])
                                .map_err(|_| "bad \\u escape")?;
                            let cp =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                            self.i += 4;
                        }
                        other => {
                            return Err(format!("bad escape {:?}", other.map(|b| b as char)))
                        }
                    }
                    self.i += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so the
                    // bytes are valid UTF-8 by construction).
                    let rest = std::str::from_utf8(&self.b[self.i..]).unwrap();
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.i += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-') {
                self.i += 1;
            } else {
                break;
            }
        }
        let s = std::str::from_utf8(&self.b[start..self.i]).unwrap();
        s.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("bad number {s:?} at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars() {
        assert_eq!(Value::parse("null").unwrap(), Value::Null);
        assert_eq!(Value::parse("true").unwrap(), Value::Bool(true));
        assert_eq!(Value::parse(" -1.5e2 ").unwrap(), Value::Num(-150.0));
        assert_eq!(
            Value::parse("\"a\\nb\\u0041\"").unwrap(),
            Value::Str("a\nbA".into())
        );
    }

    #[test]
    fn nested_document() {
        let v = Value::parse(
            r#"{"name": "x", "n": 3, "arr": [1, 2, {"k": false}], "obj": {"s": "µ"}}"#,
        )
        .unwrap();
        assert_eq!(v.get("name").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("n").unwrap().as_u64(), Some(3));
        let arr = v.get("arr").unwrap().as_arr().unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[2].get("k").unwrap().as_bool(), Some(false));
        assert_eq!(v.get("obj").unwrap().get("s").unwrap().as_str(), Some("µ"));
    }

    #[test]
    fn integer_bounds() {
        assert_eq!(Value::parse("18446744073709551615").unwrap().as_u64(), None); // not exact in f64
        assert_eq!(Value::parse("4096").unwrap().as_u64(), Some(4096));
        assert_eq!(Value::parse("-7").unwrap().as_i64(), Some(-7));
        assert_eq!(Value::parse("1.5").unwrap().as_u64(), None);
    }

    #[test]
    fn rejects_garbage() {
        assert!(Value::parse("{").is_err());
        assert!(Value::parse("[1,]").is_err());
        assert!(Value::parse("{} x").is_err());
        assert!(Value::parse("\"unterminated").is_err());
    }

    #[test]
    fn render_roundtrips_through_parse() {
        let doc = Value::Obj(vec![
            ("name".into(), Value::Str("a\"b\\c\nd".into())),
            ("n".into(), Value::Num(3.0)),
            ("frac".into(), Value::Num(0.25)),
            ("neg".into(), Value::Num(-1.5e-3)),
            ("flag".into(), Value::Bool(true)),
            ("gap".into(), Value::Null),
            (
                "arr".into(),
                Value::Arr(vec![Value::Num(1.0), Value::Str("µ".into()), Value::Obj(vec![])]),
            ),
        ]);
        let text = doc.render();
        assert_eq!(Value::parse(&text).unwrap(), doc);
        // Display is the same serialisation.
        assert_eq!(format!("{doc}"), text);
        // Integers print without a fraction; key order is preserved.
        assert!(text.contains("\"n\": 3,"));
        assert!(text.starts_with("{\"name\""));
    }

    #[test]
    fn render_clamps_nonfinite_numbers() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let v = Value::Arr(vec![Value::Num(bad)]);
            assert_eq!(v.render(), "[0]");
            assert!(Value::parse(&v.render()).is_ok());
        }
    }

    #[test]
    fn roundtrips_profile_shaped_json() {
        let doc = r#"{
  "name": "acoustic-so4",
  "schedule": "wavefront 32x32 t4 / 8x8",
  "counters": {"stencil_updates": 2097152, "par_tasks": 640},
  "threads": [
    {"label": "main", "timers_ns": {"stencil": 123456789}}
  ]
}"#;
        let v = Value::parse(doc).unwrap();
        assert_eq!(
            v.get("counters")
                .unwrap()
                .get("stencil_updates")
                .unwrap()
                .as_u64(),
            Some(2097152)
        );
        assert_eq!(
            v.get("threads").unwrap().as_arr().unwrap()[0]
                .get("label")
                .unwrap()
                .as_str(),
            Some("main")
        );
    }
}
