//! Derived trace analysis: per-diagonal load balance, barrier-wait
//! distribution, and a critical-path estimate.
//!
//! The wavefront win lives or dies on load balance across same-diagonal
//! tiles (Malas et al.; PAPERS.md): a diagonal only finishes when its
//! slowest tile does, so the schedule's wall-clock floor is the sum over
//! diagonals of the *max* tile span, while perfect balance would cost the
//! sum of *means*. This module folds a [`Trace`] into exactly those numbers
//! so examples and `tempest-report` can print/serialise them next to the
//! aggregate phase table.

use std::fmt::Write as _;

use crate::trace::{SpanKind, Trace};

/// Load statistics for one (time-tile, anti-diagonal) group of tile spans.
#[derive(Clone, Debug)]
pub struct DiagonalLoad {
    /// First virtual timestep of the time-tile the diagonal belongs to.
    pub t0: i32,
    /// Anti-diagonal index `tx + ty`.
    pub diagonal: i32,
    /// Tiles executed on this diagonal.
    pub tiles: usize,
    pub mean_ns: f64,
    pub max_ns: u64,
}

impl DiagonalLoad {
    /// Max/mean tile span: 1.0 is perfect balance; large values mean one
    /// straggler tile gates the whole diagonal.
    pub fn imbalance(&self) -> f64 {
        if self.mean_ns > 0.0 {
            self.max_ns as f64 / self.mean_ns
        } else {
            0.0
        }
    }
}

/// Histogram of barrier-wait span durations in decade buckets.
#[derive(Clone, Debug, Default)]
pub struct BarrierHistogram {
    /// `(bucket upper bound in ns, count)`; the last bucket is unbounded.
    pub buckets: Vec<(u64, usize)>,
    pub count: usize,
    pub total_ns: u64,
    pub max_ns: u64,
}

impl BarrierHistogram {
    const BOUNDS: [u64; 5] = [1_000, 10_000, 100_000, 1_000_000, 10_000_000];

    fn from_durations(durs: &[u64]) -> Self {
        let mut buckets: Vec<(u64, usize)> = Self::BOUNDS.iter().map(|&b| (b, 0)).collect();
        buckets.push((u64::MAX, 0));
        let mut total = 0u64;
        let mut max = 0u64;
        for &d in durs {
            total += d;
            max = max.max(d);
            let slot = buckets
                .iter()
                .position(|&(bound, _)| d < bound)
                .unwrap_or(buckets.len() - 1);
            buckets[slot].1 += 1;
        }
        BarrierHistogram {
            buckets,
            count: durs.len(),
            total_ns: total,
            max_ns: max,
        }
    }
}

/// Everything derived from one [`Trace`].
#[derive(Clone, Debug, Default)]
pub struct TraceAnalysis {
    /// Per-(time-tile, diagonal) load groups, in execution order.
    pub diagonals: Vec<DiagonalLoad>,
    /// Worst max/mean across groups with ≥ 2 tiles (1.0 if none).
    pub worst_imbalance: f64,
    /// Mean of the per-group imbalances over groups with ≥ 2 tiles.
    pub mean_imbalance: f64,
    /// Lower bound on schedule wall-clock with unlimited threads: the sum
    /// over diagonal groups of the slowest tile. For traces without tile
    /// spans (slab-ordered / space-blocked runs) this degrades to the sum
    /// of slab/sweep spans, which are sequential scheduling units.
    pub critical_path_ns: u64,
    /// Total tile work (sum of all tile spans) — the perfectly-parallel
    /// floor for comparison against the critical path.
    pub total_tile_ns: u64,
    pub barrier: BarrierHistogram,
    /// Spans dropped by ring overflow (copied from the trace).
    pub dropped: u64,
}

impl TraceAnalysis {
    pub fn from_trace(trace: &Trace) -> Self {
        // Group tile spans by (time-tile start, diagonal).
        let mut groups: Vec<(i32, i32, Vec<u64>)> = Vec::new();
        for ev in trace.events_of(SpanKind::Tile) {
            let key = (ev.args.t0, ev.args.diagonal);
            match groups.iter_mut().find(|(t0, d, _)| (*t0, *d) == key) {
                Some((_, _, durs)) => durs.push(ev.dur_ns),
                None => groups.push((key.0, key.1, vec![ev.dur_ns])),
            }
        }
        groups.sort_by_key(|&(t0, d, _)| (t0, d));

        let mut diagonals = Vec::with_capacity(groups.len());
        let mut critical = 0u64;
        let mut total = 0u64;
        for (t0, d, durs) in &groups {
            let sum: u64 = durs.iter().sum();
            let max = durs.iter().copied().max().unwrap_or(0);
            critical += max;
            total += sum;
            diagonals.push(DiagonalLoad {
                t0: *t0,
                diagonal: *d,
                tiles: durs.len(),
                mean_ns: sum as f64 / durs.len() as f64,
                max_ns: max,
            });
        }

        if diagonals.is_empty() {
            // No tile spans: slab-ordered and space-blocked schedules run
            // their scheduling units sequentially, so the critical path is
            // just their summed duration.
            critical = trace
                .events_of(SpanKind::Slab)
                .chain(trace.events_of(SpanKind::Sweep))
                .map(|e| e.dur_ns)
                .sum();
        }

        let imbs: Vec<f64> = diagonals
            .iter()
            .filter(|g| g.tiles >= 2)
            .map(DiagonalLoad::imbalance)
            .collect();
        let worst = imbs.iter().copied().fold(1.0f64, f64::max);
        let mean = if imbs.is_empty() {
            1.0
        } else {
            imbs.iter().sum::<f64>() / imbs.len() as f64
        };

        let bw_durs: Vec<u64> = trace
            .events_of(SpanKind::BarrierWait)
            .map(|e| e.dur_ns)
            .collect();

        TraceAnalysis {
            diagonals,
            worst_imbalance: worst,
            mean_imbalance: mean,
            critical_path_ns: critical,
            total_tile_ns: total,
            barrier: BarrierHistogram::from_durations(&bw_durs),
            dropped: trace.dropped,
        }
    }

    /// Human-readable summary table, shaped to sit next to
    /// `Profile::render`'s per-phase table. Prints at most `max_rows`
    /// diagonal groups (worst imbalance first) to stay readable on long
    /// runs.
    pub fn render(&self) -> String {
        const MAX_ROWS: usize = 12;
        let mut out = String::new();
        let _ = writeln!(out, "── diagonal load balance (from trace) ──");
        if self.diagonals.is_empty() {
            let _ = writeln!(
                out,
                "no tile spans (slab-ordered/space-blocked schedule); \
                 critical path {:.3} ms",
                self.critical_path_ns as f64 / 1e6
            );
        } else {
            let _ = writeln!(
                out,
                "  {:>5} {:>5} {:>6} {:>11} {:>11} {:>9}",
                "t0", "diag", "tiles", "mean(µs)", "max(µs)", "max/mean"
            );
            let mut rows: Vec<&DiagonalLoad> = self.diagonals.iter().collect();
            rows.sort_by(|a, b| {
                b.imbalance()
                    .partial_cmp(&a.imbalance())
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            for g in rows.iter().take(MAX_ROWS) {
                let _ = writeln!(
                    out,
                    "  {:>5} {:>5} {:>6} {:>11.1} {:>11.1} {:>9.2}",
                    g.t0,
                    g.diagonal,
                    g.tiles,
                    g.mean_ns / 1e3,
                    g.max_ns as f64 / 1e3,
                    g.imbalance()
                );
            }
            if rows.len() > MAX_ROWS {
                let _ = writeln!(out, "  … {} more diagonal groups", rows.len() - MAX_ROWS);
            }
            let _ = writeln!(
                out,
                "imbalance: worst {:.2}, mean {:.2} · critical path {:.3} ms \
                 (total tile work {:.3} ms)",
                self.worst_imbalance,
                self.mean_imbalance,
                self.critical_path_ns as f64 / 1e6,
                self.total_tile_ns as f64 / 1e6
            );
        }
        if self.barrier.count > 0 {
            let labels = ["<1µs", "<10µs", "<100µs", "<1ms", "<10ms", "≥10ms"];
            let hist: Vec<String> = self
                .barrier
                .buckets
                .iter()
                .zip(labels)
                .filter(|((_, n), _)| *n > 0)
                .map(|((_, n), l)| format!("{l}: {n}"))
                .collect();
            let _ = writeln!(
                out,
                "barrier waits: {} spans, total {:.3} ms, max {:.3} ms  [{}]",
                self.barrier.count,
                self.barrier.total_ns as f64 / 1e6,
                self.barrier.max_ns as f64 / 1e6,
                hist.join(", ")
            );
        }
        if self.dropped > 0 {
            let _ = writeln!(
                out,
                "warning: {} spans dropped (ring full) — analysis is a lower bound",
                self.dropped
            );
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Roofline estimator
// ---------------------------------------------------------------------------

/// One measured kernel × schedule placed on the roofline.
#[derive(Clone, Debug)]
pub struct RooflineEntry {
    /// Row label, e.g. `acoustic-so4/wavefront t8`.
    pub label: String,
    /// Operational intensity (FLOP/byte) under the schedule's traffic
    /// model — for temporal blocking, streaming bytes divided by the
    /// time-tile reuse factor.
    pub ai: f64,
    /// Achieved GFLOP/s: measured GPts/s × analytic FLOPs per point-update.
    pub achieved_gflops: f64,
}

impl RooflineEntry {
    /// Build from a throughput measurement and the kernel's per-point cost.
    pub fn from_measurement(label: &str, ai: f64, gpts_per_s: f64, flops_per_point: f64) -> Self {
        RooflineEntry {
            label: label.to_string(),
            ai,
            achieved_gflops: gpts_per_s * flops_per_point,
        }
    }
}

/// The machine ceilings plus measured points: the paper's Fig. 11 as a
/// table instead of a plot. Ceilings come from whatever characterisation
/// the caller ran (`tempest-bench` ships in-process microbenchmarks); this
/// type only combines numbers, so `tempest-obs` stays dependency-free.
#[derive(Clone, Debug, Default)]
pub struct Roofline {
    /// Peak compute ceiling (GFLOP/s).
    pub peak_gflops: f64,
    /// Sustained memory bandwidth ceiling (GB/s).
    pub bandwidth_gbs: f64,
    /// Measured points, in insertion order.
    pub entries: Vec<RooflineEntry>,
}

impl Roofline {
    pub fn new(peak_gflops: f64, bandwidth_gbs: f64) -> Self {
        Roofline {
            peak_gflops,
            bandwidth_gbs,
            entries: Vec::new(),
        }
    }

    /// Attainable GFLOP/s at operational intensity `ai`:
    /// `min(ai × bandwidth, peak)`.
    pub fn attainable(&self, ai: f64) -> f64 {
        (ai * self.bandwidth_gbs).min(self.peak_gflops)
    }

    /// The ridge point: the AI at which a kernel stops being memory-bound.
    pub fn ridge_ai(&self) -> f64 {
        if self.bandwidth_gbs > 0.0 {
            self.peak_gflops / self.bandwidth_gbs
        } else {
            0.0
        }
    }

    /// Fraction of the attainable ceiling an entry reaches (0 when the
    /// ceiling is degenerate).
    pub fn roof_share(&self, e: &RooflineEntry) -> f64 {
        let roof = self.attainable(e.ai);
        if roof > 0.0 {
            e.achieved_gflops / roof
        } else {
            0.0
        }
    }

    /// Add one measured point (see [`RooflineEntry::from_measurement`]).
    pub fn push(&mut self, label: &str, ai: f64, gpts_per_s: f64, flops_per_point: f64) {
        self.entries.push(RooflineEntry::from_measurement(
            label,
            ai,
            gpts_per_s,
            flops_per_point,
        ));
    }

    /// Rendered table: each entry's AI, its bound regime, attainable and
    /// achieved GFLOP/s, and the share of the roof reached.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "── roofline (peak {:.1} GFLOP/s, bw {:.1} GB/s, ridge AI {:.2}) ──",
            self.peak_gflops,
            self.bandwidth_gbs,
            self.ridge_ai()
        );
        let _ = writeln!(
            out,
            "  {:<40} {:>8} {:>8} {:>10} {:>10} {:>6}",
            "kernel/schedule", "AI", "bound", "roof GF/s", "achv GF/s", "roof%"
        );
        for e in &self.entries {
            let bound = if e.ai < self.ridge_ai() { "mem" } else { "comp" };
            let _ = writeln!(
                out,
                "  {:<40} {:>8.3} {:>8} {:>10.2} {:>10.2} {:>5.1}%",
                e.label,
                e.ai,
                bound,
                self.attainable(e.ai),
                e.achieved_gflops,
                100.0 * self.roof_share(e)
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{SpanArgs, SpanKind, TraceEvent};

    fn tile(tid: u32, d: usize, tx: usize, ty: usize, t0: usize, start: u64, dur: u64) -> TraceEvent {
        TraceEvent {
            tid,
            kind: SpanKind::Tile,
            t0_ns: start,
            dur_ns: dur,
            args: SpanArgs::tile(d, tx, ty, t0, t0 + 4),
        }
    }

    fn bw(tid: u32, start: u64, dur: u64) -> TraceEvent {
        TraceEvent {
            tid,
            kind: SpanKind::BarrierWait,
            t0_ns: start,
            dur_ns: dur,
            args: SpanArgs::none(),
        }
    }

    fn synthetic() -> Trace {
        Trace {
            events: vec![
                // time-tile 0: diagonal 0 (one tile), diagonal 1 (two tiles,
                // imbalanced 3:1)
                tile(0, 0, 0, 0, 0, 0, 1_000),
                tile(0, 1, 1, 0, 0, 1_000, 3_000),
                tile(1, 1, 0, 1, 0, 1_000, 1_000),
                // time-tile 4: diagonal 0, balanced pair
                tile(0, 0, 0, 0, 4, 5_000, 2_000),
                tile(1, 0, 1, 0, 4, 5_000, 2_000),
                bw(1, 4_000, 500),
                bw(1, 7_000, 150_000),
            ],
            threads: vec![(0, "main".into()), (1, "w0".into())],
            dropped: 3,
            capacity: 1024,
        }
    }

    #[test]
    fn groups_by_time_tile_and_diagonal() {
        let a = TraceAnalysis::from_trace(&synthetic());
        assert_eq!(a.diagonals.len(), 3);
        let g = &a.diagonals[1]; // (t0=0, diag=1)
        assert_eq!((g.t0, g.diagonal, g.tiles), (0, 1, 2));
        assert!((g.mean_ns - 2_000.0).abs() < 1e-9);
        assert_eq!(g.max_ns, 3_000);
        assert!((g.imbalance() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn imbalance_and_critical_path() {
        let a = TraceAnalysis::from_trace(&synthetic());
        // groups with >= 2 tiles: (0,1) at 1.5 and (4,0) at 1.0
        assert!((a.worst_imbalance - 1.5).abs() < 1e-9);
        assert!((a.mean_imbalance - 1.25).abs() < 1e-9);
        // critical path = 1000 + 3000 + 2000 (max per group)
        assert_eq!(a.critical_path_ns, 6_000);
        assert_eq!(a.total_tile_ns, 9_000);
        assert_eq!(a.dropped, 3);
    }

    #[test]
    fn barrier_histogram_buckets_by_decade() {
        let a = TraceAnalysis::from_trace(&synthetic());
        assert_eq!(a.barrier.count, 2);
        assert_eq!(a.barrier.total_ns, 150_500);
        assert_eq!(a.barrier.max_ns, 150_000);
        // 500ns → <1µs bucket; 150µs → <1ms bucket
        assert_eq!(a.barrier.buckets[0].1, 1);
        assert_eq!(a.barrier.buckets[3].1, 1);
    }

    #[test]
    fn empty_and_tile_free_traces() {
        let a = TraceAnalysis::from_trace(&Trace::default());
        assert!(a.diagonals.is_empty());
        assert_eq!(a.critical_path_ns, 0);
        assert_eq!(a.worst_imbalance, 1.0);

        // sweep-only trace: critical path = summed sweeps
        let t = Trace {
            events: vec![
                TraceEvent {
                    tid: 0,
                    kind: SpanKind::Sweep,
                    t0_ns: 0,
                    dur_ns: 4_000,
                    args: SpanArgs::step(0),
                },
                TraceEvent {
                    tid: 0,
                    kind: SpanKind::Sweep,
                    t0_ns: 4_000,
                    dur_ns: 5_000,
                    args: SpanArgs::step(1),
                },
            ],
            threads: vec![(0, "main".into())],
            dropped: 0,
            capacity: 1024,
        };
        assert_eq!(TraceAnalysis::from_trace(&t).critical_path_ns, 9_000);
    }

    #[test]
    fn roofline_model_and_shares() {
        let mut r = Roofline::new(100.0, 10.0);
        assert_eq!(r.ridge_ai(), 10.0);
        assert_eq!(r.attainable(1.0), 10.0); // memory-bound regime
        assert_eq!(r.attainable(50.0), 100.0); // compute-bound regime
        // 0.5 GPts/s at 10 flop/point = 5 GFLOP/s against a 10 GF/s roof.
        r.push("acoustic/wavefront t8", 1.0, 0.5, 10.0);
        assert!((r.entries[0].achieved_gflops - 5.0).abs() < 1e-12);
        assert!((r.roof_share(&r.entries[0]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn roofline_render_marks_bound_regimes() {
        let mut r = Roofline::new(100.0, 10.0);
        r.push("mem-bound", 1.0, 0.1, 10.0);
        r.push("comp-bound", 50.0, 1.0, 60.0);
        let s = r.render();
        assert!(s.contains("ridge AI 10.00"));
        assert!(s.contains("mem"));
        assert!(s.contains("comp"));
        assert!(s.contains("roof%"));
    }

    #[test]
    fn roofline_degenerate_ceilings_are_safe() {
        let r = Roofline::default();
        assert_eq!(r.ridge_ai(), 0.0);
        let e = RooflineEntry::from_measurement("x", 1.0, 1.0, 1.0);
        assert_eq!(r.roof_share(&e), 0.0);
    }

    #[test]
    fn render_mentions_the_essentials() {
        let a = TraceAnalysis::from_trace(&synthetic());
        let s = a.render();
        assert!(s.contains("diagonal load balance"));
        assert!(s.contains("max/mean"));
        assert!(s.contains("critical path"));
        assert!(s.contains("barrier waits"));
        assert!(s.contains("dropped"));
    }
}
