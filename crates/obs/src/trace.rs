//! Event-level span tracing: who ran which tile, when, on which thread.
//!
//! The aggregate counters in the crate root say *how much* work a run did;
//! this module records *when* each unit ran so diagonal load imbalance,
//! barrier convoys, and wavefront pipeline fill/drain become visible. The
//! design mirrors the counter layer (DESIGN.md §9 / §11):
//!
//! 1. **Compile-time gate** — without the `enabled` feature, [`span`] is an
//!    `#[inline(always)]` no-op returning a zero-sized guard, so call sites
//!    vanish from release builds.
//! 2. **Run-time gate** — with the feature, recording stays off unless
//!    `TEMPEST_TRACE` is set (or [`set_enabled`] was called). The gate is
//!    independent of the profiling gate: counters can run without paying for
//!    event capture.
//!
//! Each thread owns a bounded event buffer (default [`DEFAULT_CAPACITY`]
//! events, override with `TEMPEST_TRACE_CAP` or [`set_capacity`]). On
//! overflow the newest event is dropped and a relaxed atomic drop counter is
//! bumped — earlier events are never overwritten, so a truncated trace is
//! still a faithful prefix. [`snapshot`] folds every thread's buffer into a
//! [`Trace`], which exports Chrome trace-event JSON loadable in Perfetto
//! (<https://ui.perfetto.dev>) or `chrome://tracing`.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use crate::{escape, sanitize_label, RunMeta};

/// Default per-thread event capacity (events, not bytes). Sized so the
/// repo's standard example runs (128³ wavefront with per-region stencil
/// spans) fit with headroom; a 64³×8 tiled run uses a few thousand.
pub const DEFAULT_CAPACITY: usize = 262_144;

// ---------------------------------------------------------------------------
// Event vocabulary (always compiled)
// ---------------------------------------------------------------------------

/// What a span measures. `Tile` is one space-time tile of the
/// diagonal-parallel or dataflow executor; `Slab` one (vt, tile) slab of the
/// slab-ordered executor; `Sweep` one virtual timestep of the space-blocked
/// path; `Diagonal` the coordinator-side span of one anti-diagonal batch;
/// `Dataflow` the coordinator-side span of one whole dependency-driven
/// sweep; `Diamond` the same for one diamond-schedule sweep;
/// `Stencil`/`Sparse` the propagator phases; `BarrierWait` the
/// `run_batch` caller's wait for workers or a dataflow participant's idle
/// wait for a ready tile; `Shot` one whole shot solve of the survey engine
/// (the shot index rides in `vt`); `CacheRestore` one tile node whose output
/// the incremental executor restored from the `TileCache` instead of
/// recomputing.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(u8)]
pub enum SpanKind {
    Tile = 0,
    Slab,
    Sweep,
    Diagonal,
    Dataflow,
    Diamond,
    Stencil,
    Sparse,
    BarrierWait,
    Shot,
    CacheRestore,
}

impl SpanKind {
    pub const COUNT: usize = 11;
    pub const ALL: [SpanKind; Self::COUNT] = [
        SpanKind::Tile,
        SpanKind::Slab,
        SpanKind::Sweep,
        SpanKind::Diagonal,
        SpanKind::Dataflow,
        SpanKind::Diamond,
        SpanKind::Stencil,
        SpanKind::Sparse,
        SpanKind::BarrierWait,
        SpanKind::Shot,
        SpanKind::CacheRestore,
    ];

    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Tile => "tile",
            SpanKind::Slab => "slab",
            SpanKind::Sweep => "sweep",
            SpanKind::Diagonal => "diagonal",
            SpanKind::Dataflow => "dataflow",
            SpanKind::Diamond => "diamond",
            SpanKind::Stencil => "stencil",
            SpanKind::Sparse => "sparse",
            SpanKind::BarrierWait => "barrier_wait",
            SpanKind::Shot => "shot",
            SpanKind::CacheRestore => "cache_restore",
        }
    }
}

/// Structured span arguments; `-1` encodes "not applicable" and is omitted
/// from the exported JSON. Kept `Copy` and fixed-size so recording never
/// allocates.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SpanArgs {
    /// Anti-diagonal index `tx + ty` (tile/diagonal spans).
    pub diagonal: i32,
    /// Tile index along x.
    pub tx: i32,
    /// Tile index along y.
    pub ty: i32,
    /// First virtual timestep covered (inclusive).
    pub t0: i32,
    /// Last virtual timestep covered (exclusive).
    pub t1: i32,
    /// Single virtual timestep (slab/sweep/stencil/sparse spans).
    pub vt: i32,
}

impl Default for SpanArgs {
    fn default() -> Self {
        SpanArgs {
            diagonal: -1,
            tx: -1,
            ty: -1,
            t0: -1,
            t1: -1,
            vt: -1,
        }
    }
}

impl SpanArgs {
    /// No arguments (barrier waits).
    pub fn none() -> Self {
        Self::default()
    }

    /// One space-time tile of the diagonal-parallel executor.
    pub fn tile(diagonal: usize, tx: usize, ty: usize, t0: usize, t1: usize) -> Self {
        SpanArgs {
            diagonal: diagonal as i32,
            tx: tx as i32,
            ty: ty as i32,
            t0: t0 as i32,
            t1: t1 as i32,
            vt: -1,
        }
    }

    /// One slab of the slab-ordered executor: tile coordinates plus the
    /// single virtual timestep the slab advances.
    pub fn slab(diagonal: usize, tx: usize, ty: usize, vt: usize) -> Self {
        SpanArgs {
            diagonal: diagonal as i32,
            tx: tx as i32,
            ty: ty as i32,
            t0: -1,
            t1: -1,
            vt: vt as i32,
        }
    }

    /// A per-virtual-timestep span (space-blocked sweep, stencil region
    /// update, sparse phase).
    pub fn step(vt: usize) -> Self {
        SpanArgs {
            vt: vt as i32,
            ..Self::default()
        }
    }

    /// One shot solve of the survey engine; the shot index rides in `vt`.
    pub fn shot(index: usize) -> Self {
        Self::step(index)
    }

    /// The coordinator-side span of one anti-diagonal batch.
    pub fn diag(diagonal: usize, t0: usize, t1: usize) -> Self {
        SpanArgs {
            diagonal: diagonal as i32,
            t0: t0 as i32,
            t1: t1 as i32,
            ..Self::default()
        }
    }
}

/// One recorded span: 40 bytes, `Copy`, no heap.
#[derive(Clone, Copy, Debug)]
pub struct TraceEvent {
    /// Registration-order thread id (stable within a process run).
    pub tid: u32,
    pub kind: SpanKind,
    /// Start, nanoseconds since the process trace epoch.
    pub t0_ns: u64,
    pub dur_ns: u64,
    pub args: SpanArgs,
}

impl TraceEvent {
    /// End of the span, nanoseconds since the trace epoch.
    pub fn end_ns(&self) -> u64 {
        self.t0_ns + self.dur_ns
    }
}

// ---------------------------------------------------------------------------
// Recording — real implementation (feature = "enabled")
// ---------------------------------------------------------------------------

#[cfg(feature = "enabled")]
mod imp {
    use super::{SpanArgs, SpanKind, Trace, TraceEvent, DEFAULT_CAPACITY};
    use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
    use std::sync::{Arc, Mutex, Once, OnceLock};
    use std::time::Instant;

    struct Ring {
        tid: u32,
        label: String,
        // Only the owning thread pushes; snapshot/reset lock briefly from
        // the aggregating thread, so this mutex is uncontended on the hot
        // path.
        events: Mutex<Vec<TraceEvent>>,
        dropped: AtomicU64,
    }

    static ENABLED: AtomicBool = AtomicBool::new(false);
    static ENV_INIT: Once = Once::new();
    /// 0 = "resolve from TEMPEST_TRACE_CAP on first use".
    static CAPACITY: AtomicUsize = AtomicUsize::new(0);
    static NEXT_TID: AtomicU32 = AtomicU32::new(0);
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    static REGISTRY: OnceLock<Mutex<Vec<Arc<Ring>>>> = OnceLock::new();

    thread_local! {
        static RING: Arc<Ring> = register_ring();
    }

    fn registry() -> &'static Mutex<Vec<Arc<Ring>>> {
        REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
    }

    fn register_ring() -> Arc<Ring> {
        let cur = std::thread::current();
        let label = cur
            .name()
            .map(str::to_string)
            .unwrap_or_else(|| format!("{:?}", cur.id()));
        let ring = Arc::new(Ring {
            tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
            label,
            events: Mutex::new(Vec::new()),
            dropped: AtomicU64::new(0),
        });
        registry()
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(Arc::clone(&ring));
        ring
    }

    fn epoch() -> Instant {
        *EPOCH.get_or_init(Instant::now)
    }

    /// Is event capture on? First call resolves `TEMPEST_TRACE` (any value
    /// other than empty or `0` enables); after that it is one relaxed load.
    #[inline]
    pub fn enabled() -> bool {
        ENV_INIT.call_once(|| {
            let on = std::env::var("TEMPEST_TRACE")
                .map(|v| !v.is_empty() && v != "0")
                .unwrap_or(false);
            if on {
                ENABLED.store(true, Ordering::Relaxed);
            }
        });
        ENABLED.load(Ordering::Relaxed)
    }

    /// Programmatic override of the `TEMPEST_TRACE` gate.
    pub fn set_enabled(on: bool) {
        let _ = enabled(); // settle env init so it cannot overwrite us
        ENABLED.store(on, Ordering::Relaxed);
    }

    /// Per-thread event capacity currently in effect. First use resolves
    /// `TEMPEST_TRACE_CAP`, falling back to [`DEFAULT_CAPACITY`].
    pub fn capacity() -> usize {
        let cap = CAPACITY.load(Ordering::Relaxed);
        if cap != 0 {
            return cap;
        }
        let resolved = std::env::var("TEMPEST_TRACE_CAP")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or(DEFAULT_CAPACITY);
        CAPACITY.store(resolved, Ordering::Relaxed);
        resolved
    }

    /// Override the per-thread capacity (applies to subsequent recording on
    /// every thread; existing events are kept). Mainly for tests.
    pub fn set_capacity(cap: usize) {
        CAPACITY.store(cap.max(1), Ordering::Relaxed);
    }

    /// Open a span. The event is recorded on this thread's ring when the
    /// guard drops (or [`Span::stop`] runs), unless cancelled.
    #[inline]
    pub fn span(kind: SpanKind, args: SpanArgs) -> Span {
        if !enabled() {
            return Span(None);
        }
        let t0 = epoch().elapsed().as_nanos() as u64;
        Span(Some((kind, args, t0)))
    }

    pub struct Span(Option<(SpanKind, SpanArgs, u64)>);

    impl Span {
        /// Explicit stop; equivalent to dropping the guard.
        #[inline]
        pub fn stop(self) {}

        /// Discard the span without recording it (e.g. a sparse phase that
        /// turned out to have no work — keeps trace volume proportional to
        /// actual events).
        #[inline]
        pub fn cancel(&mut self) {
            self.0 = None;
        }
    }

    impl Drop for Span {
        #[inline]
        fn drop(&mut self) {
            if let Some((kind, args, t0)) = self.0.take() {
                let now = epoch().elapsed().as_nanos() as u64;
                let ev = TraceEvent {
                    tid: 0, // filled per-ring below
                    kind,
                    t0_ns: t0,
                    dur_ns: now.saturating_sub(t0),
                    args,
                };
                let cap = capacity();
                RING.with(|r| {
                    let mut evs = r.events.lock().unwrap_or_else(|e| e.into_inner());
                    if evs.len() >= cap {
                        r.dropped.fetch_add(1, Ordering::Relaxed);
                    } else {
                        evs.push(TraceEvent { tid: r.tid, ..ev });
                    }
                });
            }
        }
    }

    /// Clear every ring and drop counter (buffers keep their allocation).
    pub fn reset() {
        let reg = registry().lock().unwrap_or_else(|e| e.into_inner());
        for ring in reg.iter() {
            ring.events
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .clear();
            ring.dropped.store(0, Ordering::Relaxed);
        }
    }

    /// Fold every thread's ring into a [`Trace`]. Rings that recorded
    /// nothing are skipped; events are sorted by (thread, start time).
    pub fn snapshot() -> Trace {
        let reg = registry().lock().unwrap_or_else(|e| e.into_inner());
        let mut events = Vec::new();
        let mut threads = Vec::new();
        let mut dropped = 0u64;
        for ring in reg.iter() {
            let evs = ring.events.lock().unwrap_or_else(|e| e.into_inner());
            let d = ring.dropped.load(Ordering::Relaxed);
            dropped += d;
            if evs.is_empty() && d == 0 {
                continue;
            }
            threads.push((ring.tid, ring.label.clone()));
            events.extend_from_slice(&evs);
        }
        events.sort_by_key(|e| (e.tid, e.t0_ns, std::cmp::Reverse(e.end_ns())));
        threads.sort_by_key(|&(tid, _)| tid);
        Trace {
            events,
            threads,
            dropped,
            capacity: capacity(),
        }
    }
}

// ---------------------------------------------------------------------------
// Recording — no-op implementation (feature off)
// ---------------------------------------------------------------------------

#[cfg(not(feature = "enabled"))]
mod imp {
    use super::{SpanArgs, SpanKind, Trace, DEFAULT_CAPACITY};

    #[inline(always)]
    pub fn enabled() -> bool {
        false
    }

    #[inline(always)]
    pub fn set_enabled(_on: bool) {}

    #[inline(always)]
    pub fn capacity() -> usize {
        DEFAULT_CAPACITY
    }

    #[inline(always)]
    pub fn set_capacity(_cap: usize) {}

    pub struct Span;

    impl Span {
        #[inline(always)]
        pub fn stop(self) {}

        #[inline(always)]
        pub fn cancel(&mut self) {}
    }

    #[inline(always)]
    pub fn span(_kind: SpanKind, _args: SpanArgs) -> Span {
        Span
    }

    #[inline(always)]
    pub fn reset() {}

    #[inline(always)]
    pub fn snapshot() -> Trace {
        Trace::default()
    }
}

pub use imp::{capacity, enabled, reset, set_capacity, set_enabled, snapshot, span, Span};

// ---------------------------------------------------------------------------
// Aggregated trace + Chrome trace-event export (always compiled)
// ---------------------------------------------------------------------------

/// Aggregated view of every thread's event ring, produced by [`snapshot`].
#[derive(Clone, Debug, Default)]
pub struct Trace {
    /// All recorded spans, sorted by (tid, start).
    pub events: Vec<TraceEvent>,
    /// `(tid, thread label)` for every thread that recorded events.
    pub threads: Vec<(u32, String)>,
    /// Spans discarded because a ring was full.
    pub dropped: u64,
    /// Per-thread capacity that was in effect at snapshot time.
    pub capacity: usize,
}

impl Trace {
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of spans of one kind.
    pub fn count(&self, kind: SpanKind) -> usize {
        self.events.iter().filter(|e| e.kind == kind).count()
    }

    /// Iterate over spans of one kind.
    pub fn events_of(&self, kind: SpanKind) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.kind == kind)
    }

    /// Chrome trace-event JSON (the "JSON Array Format" with complete `X`
    /// events plus thread-name metadata), loadable in Perfetto or
    /// `chrome://tracing`. Timestamps are microseconds with nanosecond
    /// resolution kept in the fraction.
    pub fn to_chrome_json(&self, meta: &RunMeta) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"displayTimeUnit\": \"ms\",");
        s.push_str("  \"otherData\": {");
        let _ = write!(
            s,
            "\"name\": \"{}\", \"schedule\": \"{}\", \"nt\": {}, \"dropped\": {}, \"capacity\": {}",
            escape(&meta.name),
            escape(&meta.schedule),
            meta.nt,
            self.dropped,
            self.capacity
        );
        s.push_str("},\n");
        s.push_str("  \"traceEvents\": [\n");
        let mut first = true;
        for (tid, label) in &self.threads {
            if !first {
                s.push_str(",\n");
            }
            first = false;
            let _ = write!(
                s,
                "    {{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": {}, \
                 \"args\": {{\"name\": \"{}\"}}}}",
                tid,
                escape(label)
            );
        }
        for ev in &self.events {
            if !first {
                s.push_str(",\n");
            }
            first = false;
            let _ = write!(
                s,
                "    {{\"name\": \"{}\", \"cat\": \"tempest\", \"ph\": \"X\", \"pid\": 1, \
                 \"tid\": {}, \"ts\": {}.{:03}, \"dur\": {}.{:03}, \"args\": {{",
                ev.kind.name(),
                ev.tid,
                ev.t0_ns / 1_000,
                ev.t0_ns % 1_000,
                ev.dur_ns / 1_000,
                ev.dur_ns % 1_000,
            );
            let mut first_arg = true;
            for (key, v) in [
                ("diagonal", ev.args.diagonal),
                ("tx", ev.args.tx),
                ("ty", ev.args.ty),
                ("t0", ev.args.t0),
                ("t1", ev.args.t1),
                ("vt", ev.args.vt),
            ] {
                if v < 0 {
                    continue;
                }
                if !first_arg {
                    s.push_str(", ");
                }
                first_arg = false;
                let _ = write!(s, "\"{key}\": {v}");
            }
            s.push_str("}}");
        }
        s.push_str("\n  ]\n}\n");
        s
    }

    /// Write the Chrome trace to `<dir>/<name>__<schedule>.trace.json`
    /// with sanitized labels, creating directories as needed.
    pub fn write_chrome_json_in(&self, dir: &Path, meta: &RunMeta) -> std::io::Result<PathBuf> {
        if self.dropped > 0 {
            // Once per process, not per export: a sweep exporting dozens of
            // truncated traces should flag the lossage without spamming.
            static DROP_WARNING: std::sync::Once = std::sync::Once::new();
            DROP_WARNING.call_once(|| {
                eprintln!(
                    "tempest-obs: trace ring overflowed ({} spans dropped; capacity {}) — \
                     exported traces are lower bounds; raise TEMPEST_TRACE_CAP to keep more",
                    self.dropped, self.capacity
                );
            });
        }
        std::fs::create_dir_all(dir)?;
        let stem = if meta.schedule.is_empty() {
            sanitize_label(&meta.name)
        } else {
            format!(
                "{}__{}",
                sanitize_label(&meta.name),
                sanitize_label(&meta.schedule)
            )
        };
        let path = dir.join(format!("{stem}.trace.json"));
        std::fs::write(&path, self.to_chrome_json(meta))?;
        Ok(path)
    }

    /// Write the Chrome trace under the standard trace directory:
    /// `TEMPEST_TRACE_DIR` if set, else `results/trace/`.
    pub fn write_chrome_json(&self, meta: &RunMeta) -> std::io::Result<PathBuf> {
        let dir = std::env::var("TEMPEST_TRACE_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|_| PathBuf::from("results").join("trace"));
        self.write_chrome_json_in(&dir, meta)
    }
}

// ---------------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(tid: u32, kind: SpanKind, t0: u64, dur: u64, args: SpanArgs) -> TraceEvent {
        TraceEvent {
            tid,
            kind,
            t0_ns: t0,
            dur_ns: dur,
            args,
        }
    }

    fn sample_trace() -> (Trace, RunMeta) {
        let trace = Trace {
            events: vec![
                ev(0, SpanKind::Diagonal, 0, 5_000, SpanArgs::diag(0, 0, 4)),
                ev(0, SpanKind::Tile, 100, 4_000, SpanArgs::tile(0, 0, 0, 0, 4)),
                ev(1, SpanKind::Tile, 200, 3_000, SpanArgs::tile(1, 1, 0, 0, 4)),
                ev(1, SpanKind::BarrierWait, 4_000, 500, SpanArgs::none()),
            ],
            threads: vec![(0, "main".into()), (1, "tempest-par-0".into())],
            dropped: 0,
            capacity: DEFAULT_CAPACITY,
        };
        let meta = RunMeta::new("unit-test", "wavefront-diag 32x32 t4 / 8x8", 8, 64, 0.001);
        (trace, meta)
    }

    #[test]
    fn counts_and_filters() {
        let (t, _) = sample_trace();
        assert_eq!(t.count(SpanKind::Tile), 2);
        assert_eq!(t.count(SpanKind::Sweep), 0);
        assert_eq!(t.events_of(SpanKind::BarrierWait).count(), 1);
        assert!(!t.is_empty());
        assert!(Trace::default().is_empty());
    }

    #[test]
    fn chrome_json_shape() {
        let (t, meta) = sample_trace();
        let js = t.to_chrome_json(&meta);
        let v = crate::json::Value::parse(&js).expect("chrome trace must be valid JSON");
        let evs = v.get("traceEvents").unwrap().as_arr().unwrap();
        // 2 thread-name metadata records + 4 spans
        assert_eq!(evs.len(), 6);
        let meta_evs: Vec<_> = evs
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() == Some("M"))
            .collect();
        assert_eq!(meta_evs.len(), 2);
        let tile = evs
            .iter()
            .find(|e| e.get("name").unwrap().as_str() == Some("tile"))
            .unwrap();
        assert_eq!(tile.get("args").unwrap().get("diagonal").unwrap().as_i64(), Some(0));
        assert_eq!(tile.get("args").unwrap().get("tx").unwrap().as_i64(), Some(0));
        // ts is µs with ns fraction: 100ns → 0.100
        assert!((tile.get("ts").unwrap().as_f64().unwrap() - 0.1).abs() < 1e-9);
        assert!((tile.get("dur").unwrap().as_f64().unwrap() - 4.0).abs() < 1e-9);
        // barrier span has no args
        let bw = evs
            .iter()
            .find(|e| e.get("name").unwrap().as_str() == Some("barrier_wait"))
            .unwrap();
        assert_eq!(bw.get("args").unwrap().as_obj().map(<[_]>::len), Some(0));
        assert_eq!(v.get("otherData").unwrap().get("dropped").unwrap().as_u64(), Some(0));
    }

    #[test]
    fn empty_trace_exports_valid_json() {
        let js = Trace::default().to_chrome_json(&RunMeta::default());
        let v = crate::json::Value::parse(&js).unwrap();
        assert_eq!(v.get("traceEvents").unwrap().as_arr().unwrap().len(), 0);
    }

    #[test]
    fn write_sanitizes_stem() {
        let (t, meta) = sample_trace();
        let dir = std::env::temp_dir().join("tempest-obs-trace-test");
        let path = t.write_chrome_json_in(&dir, &meta).unwrap();
        assert_eq!(
            path.file_name().unwrap().to_str().unwrap(),
            "unit-test__wavefront-diag_32x32_t4_8x8.trace.json"
        );
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(crate::json::Value::parse(&body).is_ok());
        let _ = std::fs::remove_file(&path);
    }

    #[cfg(not(feature = "enabled"))]
    #[test]
    fn disabled_build_is_inert() {
        set_enabled(true);
        assert!(!enabled());
        let mut sp = span(SpanKind::Tile, SpanArgs::tile(0, 0, 0, 0, 1));
        sp.cancel();
        span(SpanKind::Stencil, SpanArgs::step(0)).stop();
        assert!(snapshot().is_empty());
    }

    /// Recording tests share global ring state, so they serialise on a lock
    /// and reset before each scenario.
    #[cfg(feature = "enabled")]
    mod recording {
        use super::super::*;
        use std::sync::Mutex;

        static LOCK: Mutex<()> = Mutex::new(());

        fn guard() -> std::sync::MutexGuard<'static, ()> {
            LOCK.lock().unwrap_or_else(|e| e.into_inner())
        }

        #[test]
        fn records_spans_with_args_and_resets() {
            let _g = guard();
            set_enabled(true);
            reset();
            {
                let _sp = span(SpanKind::Tile, SpanArgs::tile(3, 1, 2, 0, 4));
                span(SpanKind::Stencil, SpanArgs::step(2)).stop();
            }
            let t = snapshot();
            assert_eq!(t.count(SpanKind::Tile), 1);
            assert_eq!(t.count(SpanKind::Stencil), 1);
            let tile = t.events_of(SpanKind::Tile).next().unwrap();
            assert_eq!(tile.args.diagonal, 3);
            assert_eq!(tile.args.tx, 1);
            assert_eq!(tile.args.ty, 2);
            // the stencil span opened inside the tile span nests within it
            let st = t.events_of(SpanKind::Stencil).next().unwrap();
            assert!(st.t0_ns >= tile.t0_ns && st.end_ns() <= tile.end_ns());
            reset();
            assert!(snapshot().is_empty());
            set_enabled(false);
        }

        #[test]
        fn cancel_discards_the_span() {
            let _g = guard();
            set_enabled(true);
            reset();
            let mut sp = span(SpanKind::Sparse, SpanArgs::step(0));
            sp.cancel();
            drop(sp);
            assert_eq!(snapshot().count(SpanKind::Sparse), 0);
            set_enabled(false);
        }

        #[test]
        fn overflow_drops_newest_and_counts() {
            let _g = guard();
            let prior = capacity();
            set_enabled(true);
            reset();
            set_capacity(8);
            for i in 0..20usize {
                span(SpanKind::Sweep, SpanArgs::step(i)).stop();
            }
            let t = snapshot();
            let mine: Vec<_> = t.events_of(SpanKind::Sweep).collect();
            assert_eq!(mine.len(), 8, "ring holds exactly its capacity");
            // earliest events survive untouched, in order
            for (i, e) in mine.iter().enumerate() {
                assert_eq!(e.args.vt, i as i32);
            }
            assert_eq!(t.dropped, 12);
            // drops clear on reset
            set_capacity(prior);
            reset();
            assert_eq!(snapshot().dropped, 0);
            set_enabled(false);
        }

        #[test]
        fn runtime_gate_off_records_nothing() {
            let _g = guard();
            set_enabled(false);
            reset();
            span(SpanKind::Tile, SpanArgs::tile(0, 0, 0, 0, 1)).stop();
            assert!(snapshot().is_empty());
        }
    }
}
