//! Std-only live telemetry endpoint: a background sampler thread plus a
//! tiny HTTP server over `std::net::TcpListener`.
//!
//! Three routes, one purpose each:
//!
//! * `/metrics` — Prometheus text exposition (format 0.0.4): every sharded
//!   counter as `tempest_<name>_total`, every [`Gauge`] level, the
//!   heartbeat counter, per-phase time as a labelled counter, the
//!   sampler's derived `tempest_gpts_per_s` / `tempest_tiles_per_s`
//!   rates, and per-job `progress` / `eta_seconds` / `stalled` samples.
//! * `/jobs` — the registered [`crate::metrics::jobs_snapshot`] as JSON,
//!   serialised through the [`crate::json`] writer (so the document
//!   round-trips through `json::Value::parse` by construction).
//! * `/healthz` — liveness probe, plain `ok`.
//!
//! The server is deliberately minimal: blocking accept loop, one request
//! per connection, `Connection: close`. It is an in-process diagnostic
//! port for a single trusted operator, not a web framework. Both threads
//! shut down when the [`TelemetryServer`] handle drops.
//!
//! Everything here compiles with or without the `enabled` feature (the
//! types are named by examples/tests); without it — or with
//! `TEMPEST_TELEMETRY` unset — [`TelemetryServer::start_from_env`] returns
//! `None` and nothing is spawned.

use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::json::Value;
use crate::metrics::{self, Gauge, JobSnapshot, Series};
use crate::{Counter, Phase};

/// Default bind address when `TEMPEST_TELEMETRY` is set but carries no
/// `host:port` (9464 is the conventional "Prometheus exporter" range).
pub const DEFAULT_ADDR: &str = "127.0.0.1:9464";

/// Telemetry server configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address (`host:port`); port 0 picks an ephemeral port.
    pub addr: String,
    /// Sampler period for the derived-rate rings.
    pub sample_interval: Duration,
    /// Capacity of each time-series ring (600 × 250 ms ≈ a 2.5-minute
    /// window at the default interval).
    pub ring_capacity: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: DEFAULT_ADDR.to_string(),
            sample_interval: Duration::from_millis(250),
            ring_capacity: 600,
        }
    }
}

/// Rate rings filled by the sampler: each tick diffs the monotonic
/// counters against the previous tick and stores the per-second rate.
struct Rates {
    gpts: Series,
    tiles: Series,
    /// Previous tick: (when, stencil updates, tile-ish scheduling units).
    prev: Option<(Instant, u64, u64)>,
}

/// Scheduling units folded into the `tiles/s` rate: wavefront tiles and
/// slabs plus space-blocked sweeps — one unit per executor dispatch,
/// whichever schedule family is running.
fn tile_units(p: &crate::Profile) -> u64 {
    p.counter(Counter::WavefrontTiles)
        + p.counter(Counter::WavefrontSlabs)
        + p.counter(Counter::SpaceSweeps)
}

struct Shared {
    shutdown: AtomicBool,
    /// Sampler sleep: `wait_timeout` on this pair so drop interrupts the
    /// interval instead of waiting it out.
    gate: Mutex<()>,
    gate_cv: Condvar,
    rates: Mutex<Rates>,
}

impl Shared {
    fn sample(&self) {
        let now = Instant::now();
        let p = crate::snapshot();
        let updates = p.counter(Counter::StencilUpdates);
        let tiles = tile_units(&p);
        let mut r = self.rates.lock().unwrap_or_else(|e| e.into_inner());
        if let Some((t0, u0, k0)) = r.prev {
            let dt = now.duration_since(t0).as_secs_f64();
            if dt > 0.0 {
                let stamp = monotonic_ns();
                r.gpts.push(stamp, crate::fin(updates.saturating_sub(u0) as f64 / dt / 1e9));
                r.tiles.push(stamp, crate::fin(tiles.saturating_sub(k0) as f64 / dt));
            }
        }
        r.prev = Some((now, updates, tiles));
    }
}

/// Nanoseconds since a process-stable origin, for ring timestamps.
fn monotonic_ns() -> u64 {
    static ORIGIN: std::sync::OnceLock<Instant> = std::sync::OnceLock::new();
    ORIGIN.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// Handle to a running telemetry endpoint; dropping it stops the sampler
/// and HTTP threads.
pub struct TelemetryServer {
    addr: SocketAddr,
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
}

impl TelemetryServer {
    /// Bind `cfg.addr` and spawn the sampler + accept threads.
    pub fn start(cfg: &ServeConfig) -> std::io::Result<TelemetryServer> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            shutdown: AtomicBool::new(false),
            gate: Mutex::new(()),
            gate_cv: Condvar::new(),
            rates: Mutex::new(Rates {
                gpts: Series::new(cfg.ring_capacity),
                tiles: Series::new(cfg.ring_capacity),
                prev: None,
            }),
        });

        let interval = cfg.sample_interval;
        let s = Arc::clone(&shared);
        let sampler = std::thread::Builder::new()
            .name("tempest-telemetry-sampler".into())
            .spawn(move || {
                s.sample(); // establish the baseline tick immediately
                loop {
                    let guard = s.gate.lock().unwrap_or_else(|e| e.into_inner());
                    let (_g, _timeout) = s
                        .gate_cv
                        .wait_timeout(guard, interval)
                        .unwrap_or_else(|e| e.into_inner());
                    if s.shutdown.load(Ordering::Acquire) {
                        return;
                    }
                    s.sample();
                }
            })?;

        let s = Arc::clone(&shared);
        let http = std::thread::Builder::new()
            .name("tempest-telemetry-http".into())
            .spawn(move || {
                for stream in listener.incoming() {
                    if s.shutdown.load(Ordering::Acquire) {
                        return;
                    }
                    if let Ok(stream) = stream {
                        handle_connection(stream, &s);
                    }
                }
            })?;

        Ok(TelemetryServer {
            addr,
            shared,
            threads: vec![sampler, http],
        })
    }

    /// Start if — and only if — live telemetry is on (`TEMPEST_TELEMETRY`
    /// set or [`metrics::set_telemetry`] called). The env value doubles as
    /// the bind address when it contains a `:` (e.g.
    /// `TEMPEST_TELEMETRY=0.0.0.0:9464`); any other truthy value binds
    /// [`DEFAULT_ADDR`]. Returns `None` when telemetry is off; a bind
    /// failure is reported to stderr and also yields `None` (telemetry
    /// must never take down the computation it watches).
    pub fn start_from_env() -> Option<TelemetryServer> {
        if !metrics::telemetry_enabled() {
            return None;
        }
        let mut cfg = ServeConfig::default();
        if let Ok(v) = std::env::var("TEMPEST_TELEMETRY") {
            if v.contains(':') {
                cfg.addr = v;
            }
        }
        match TelemetryServer::start(&cfg) {
            Ok(srv) => Some(srv),
            Err(e) => {
                eprintln!("tempest-obs: telemetry endpoint bind failed on {}: {e}", cfg.addr);
                None
            }
        }
    }

    /// The bound address (resolves port 0 to the ephemeral port chosen).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Render the `/metrics` document this server would serve right now
    /// (exposed so in-process checks can validate without a socket).
    pub fn render_metrics(&self) -> String {
        render_metrics(&self.shared)
    }
}

impl Drop for TelemetryServer {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.gate_cv.notify_all();
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

// ---------------------------------------------------------------------------
// HTTP plumbing
// ---------------------------------------------------------------------------

fn handle_connection(mut stream: TcpStream, shared: &Shared) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
    // Read the request head (we never need a body).
    let mut head = Vec::new();
    let mut buf = [0u8; 1024];
    loop {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                head.extend_from_slice(&buf[..n]);
                if head.windows(4).any(|w| w == b"\r\n\r\n") || head.len() > 8192 {
                    break;
                }
            }
            Err(_) => return,
        }
    }
    let request_line = match std::str::from_utf8(&head) {
        Ok(s) => s.lines().next().unwrap_or("").to_string(),
        Err(_) => return,
    };
    let mut parts = request_line.split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));

    let (status, content_type, body) = if method != "GET" {
        ("405 Method Not Allowed", "text/plain", "method not allowed\n".to_string())
    } else {
        match path {
            "/metrics" => (
                "200 OK",
                "text/plain; version=0.0.4",
                render_metrics(shared),
            ),
            "/jobs" => ("200 OK", "application/json", render_jobs()),
            "/healthz" => ("200 OK", "text/plain", "ok\n".to_string()),
            _ => ("404 Not Found", "text/plain", "not found\n".to_string()),
        }
    };
    let _ = write!(
        stream,
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = stream.flush();
}

/// Minimal one-shot HTTP GET against the telemetry endpoint — the client
/// half used by tests, CI, and the example's self-scrape. Returns
/// `(status code, body)`.
pub fn http_get(addr: SocketAddr, path: &str) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    write!(stream, "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n")?;
    stream.flush()?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let status = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "bad status line"))?;
    let body = match response.find("\r\n\r\n") {
        Some(i) => response[i + 4..].to_string(),
        None => String::new(),
    };
    Ok((status, body))
}

// ---------------------------------------------------------------------------
// /metrics — Prometheus text exposition (0.0.4)
// ---------------------------------------------------------------------------

fn render_metrics(shared: &Shared) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let p = crate::snapshot();

    for c in Counter::ALL {
        let name = format!("tempest_{}_total", c.name());
        let _ = writeln!(out, "# HELP {name} Monotonic {} events.", c.name());
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {}", p.counter(c));
    }

    let _ = writeln!(
        out,
        "# HELP tempest_heartbeats_total Forward-progress units (batch items and shot boundaries)."
    );
    let _ = writeln!(out, "# TYPE tempest_heartbeats_total counter");
    let _ = writeln!(out, "tempest_heartbeats_total {}", metrics::heartbeats());

    let _ = writeln!(out, "# HELP tempest_phase_seconds_total Thread-summed phase time.");
    let _ = writeln!(out, "# TYPE tempest_phase_seconds_total counter");
    for ph in Phase::ALL {
        let _ = writeln!(
            out,
            "tempest_phase_seconds_total{{phase=\"{}\"}} {}",
            ph.name(),
            crate::fin(p.timer_ns(ph) as f64 / 1e9)
        );
    }

    for g in Gauge::ALL {
        let name = format!("tempest_{}", g.name());
        let _ = writeln!(out, "# HELP {name} Instantaneous {} level.", g.name());
        let _ = writeln!(out, "# TYPE {name} gauge");
        let _ = writeln!(out, "{name} {}", metrics::gauge(g));
    }

    let (gpts, tiles) = {
        let r = shared.rates.lock().unwrap_or_else(|e| e.into_inner());
        (
            r.gpts.latest().map(|(_, v)| v).unwrap_or(0.0),
            r.tiles.latest().map(|(_, v)| v).unwrap_or(0.0),
        )
    };
    let _ = writeln!(out, "# HELP tempest_gpts_per_s Sampled stencil-update rate (GPts/s).");
    let _ = writeln!(out, "# TYPE tempest_gpts_per_s gauge");
    let _ = writeln!(out, "tempest_gpts_per_s {}", crate::fin(gpts));
    let _ = writeln!(out, "# HELP tempest_tiles_per_s Sampled scheduling-unit completion rate.");
    let _ = writeln!(out, "# TYPE tempest_tiles_per_s gauge");
    let _ = writeln!(out, "tempest_tiles_per_s {}", crate::fin(tiles));

    let jobs = metrics::jobs_snapshot();
    let _ = writeln!(out, "# HELP tempest_job_progress Per-job completed virtual-step fraction.");
    let _ = writeln!(out, "# TYPE tempest_job_progress gauge");
    for j in &jobs {
        let _ = writeln!(out, "tempest_job_progress{{job=\"{}\"}} {}", j.id, crate::fin(j.progress));
    }
    let _ = writeln!(out, "# HELP tempest_job_eta_seconds Per-job estimated seconds to completion.");
    let _ = writeln!(out, "# TYPE tempest_job_eta_seconds gauge");
    for j in &jobs {
        if let Some(eta) = j.eta_s {
            let _ = writeln!(out, "tempest_job_eta_seconds{{job=\"{}\"}} {}", j.id, crate::fin(eta));
        }
    }
    let _ = writeln!(out, "# HELP tempest_job_stalled Per-job watchdog flag (1 = heartbeat silent).");
    let _ = writeln!(out, "# TYPE tempest_job_stalled gauge");
    for j in &jobs {
        let _ = writeln!(out, "tempest_job_stalled{{job=\"{}\"}} {}", j.id, u8::from(j.stalled));
    }
    out
}

/// Check a `/metrics` document against the subset of the Prometheus text
/// exposition format (0.0.4) this crate emits: every sample line is
/// `name[{labels}] value` with a finite value, every sample name was
/// declared by a preceding `# TYPE`, `_total` names are counters, and
/// counter samples are non-negative. Used by tests, CI, and the example's
/// self-scrape.
pub fn validate_exposition(text: &str) -> Result<(), String> {
    let mut types: Vec<(String, String)> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let n = lineno + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let mut w = comment.split_whitespace();
            match w.next() {
                Some("HELP") => {
                    if w.next().is_none() {
                        return Err(format!("line {n}: HELP without a metric name"));
                    }
                }
                Some("TYPE") => {
                    let name = w.next().ok_or(format!("line {n}: TYPE without a name"))?;
                    let ty = w.next().ok_or(format!("line {n}: TYPE without a type"))?;
                    if !matches!(ty, "counter" | "gauge" | "histogram" | "summary" | "untyped") {
                        return Err(format!("line {n}: unknown type {ty:?}"));
                    }
                    if name.ends_with("_total") && ty != "counter" {
                        return Err(format!("line {n}: {name} must be a counter, is {ty}"));
                    }
                    types.push((name.to_string(), ty.to_string()));
                }
                _ => return Err(format!("line {n}: comment is neither HELP nor TYPE")),
            }
            continue;
        }
        // Sample line: name[{labels}] value
        let (name_part, value_part) = match line.find([' ', '\t']) {
            Some(i) => {
                // If the name has a label set, the split must come after it
                // (label values may themselves contain spaces).
                match line.find('{') {
                    Some(open) if open < i || line[..i].contains('{') => {
                        let close = line
                            .find('}')
                            .ok_or(format!("line {n}: unterminated label set"))?;
                        if close < open {
                            return Err(format!("line {n}: mismatched braces"));
                        }
                        (&line[..close + 1], line[close + 1..].trim())
                    }
                    _ => (&line[..i], line[i..].trim()),
                }
            }
            None => return Err(format!("line {n}: sample without a value")),
        };
        let bare = name_part.split('{').next().unwrap_or("");
        if bare.is_empty()
            || !bare
                .chars()
                .enumerate()
                .all(|(i, c)| c == '_' || c == ':' || c.is_ascii_alphabetic() || (i > 0 && c.is_ascii_digit()))
        {
            return Err(format!("line {n}: invalid metric name {bare:?}"));
        }
        if let Some(rest) = name_part.strip_prefix(bare) {
            if !(rest.is_empty() || (rest.starts_with('{') && rest.ends_with('}'))) {
                return Err(format!("line {n}: malformed label set {rest:?}"));
            }
        }
        let value: f64 = value_part
            .split_whitespace()
            .next()
            .unwrap_or("")
            .parse()
            .map_err(|_| format!("line {n}: unparseable value {value_part:?}"))?;
        if !value.is_finite() {
            return Err(format!("line {n}: non-finite value for {bare}"));
        }
        let ty = types
            .iter()
            .find(|(tn, _)| tn == bare)
            .map(|(_, t)| t.as_str())
            .ok_or(format!("line {n}: sample {bare} has no preceding # TYPE"))?;
        if ty == "counter" && value < 0.0 {
            return Err(format!("line {n}: negative counter {bare}"));
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// /jobs — JSON through the obs::json writer
// ---------------------------------------------------------------------------

fn job_value(j: &JobSnapshot) -> Value {
    Value::Obj(vec![
        ("id".into(), Value::Num(j.id as f64)),
        ("state".into(), Value::Str(j.state.clone())),
        ("priority".into(), Value::Num(j.priority as f64)),
        ("shots_done".into(), Value::Num(j.shots_done as f64)),
        ("shots_total".into(), Value::Num(j.shots_total as f64)),
        ("vsteps_done".into(), Value::Num(j.vsteps_done as f64)),
        ("vsteps_total".into(), Value::Num(j.vsteps_total as f64)),
        ("progress".into(), Value::Num(j.progress)),
        (
            "eta_s".into(),
            j.eta_s.map(Value::Num).unwrap_or(Value::Null),
        ),
        ("stalled".into(), Value::Bool(j.stalled)),
        ("stall_events".into(), Value::Num(j.stall_events as f64)),
    ])
}

/// The `/jobs` document: job snapshots plus the gauge levels, built as a
/// [`Value`] tree and serialised by [`Value::render`].
pub fn render_jobs() -> String {
    let jobs = metrics::jobs_snapshot();
    let gauges = Gauge::ALL
        .iter()
        .map(|&g| (g.name().to_string(), Value::Num(metrics::gauge(g) as f64)))
        .collect();
    let doc = Value::Obj(vec![
        ("heartbeats".into(), Value::Num(metrics::heartbeats() as f64)),
        ("gauges".into(), Value::Obj(gauges)),
        ("jobs".into(), Value::Arr(jobs.iter().map(job_value).collect())),
    ]);
    let mut s = doc.render();
    s.push('\n');
    s
}

// ---------------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;

    fn ephemeral() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            sample_interval: Duration::from_millis(25),
            ring_capacity: 16,
        }
    }

    #[test]
    fn serves_all_three_routes_and_shuts_down() {
        let srv = TelemetryServer::start(&ephemeral()).expect("bind ephemeral");
        let addr = srv.local_addr();

        let (status, body) = http_get(addr, "/healthz").unwrap();
        assert_eq!((status, body.as_str()), (200, "ok\n"));

        let (status, body) = http_get(addr, "/metrics").unwrap();
        assert_eq!(status, 200);
        validate_exposition(&body).expect("exposition valid");
        assert!(body.contains("tempest_stencil_updates_total"));
        assert!(body.contains("tempest_stalled_jobs"));
        assert!(body.contains("tempest_gpts_per_s"));

        let (status, body) = http_get(addr, "/jobs").unwrap();
        assert_eq!(status, 200);
        let v = Value::parse(&body).expect("jobs is JSON");
        assert!(v.get("jobs").unwrap().as_arr().is_some());
        assert!(v.get("gauges").unwrap().get("queue_depth").is_some());

        let (status, _) = http_get(addr, "/nope").unwrap();
        assert_eq!(status, 404);

        drop(srv);
        // The port is released once the accept thread exits.
        assert!(TcpStream::connect(addr).is_err() || TcpListener::bind(addr).is_ok());
    }

    #[test]
    fn render_metrics_is_valid_without_a_socket() {
        let srv = TelemetryServer::start(&ephemeral()).unwrap();
        let text = srv.render_metrics();
        validate_exposition(&text).unwrap();
        for g in Gauge::ALL {
            assert!(text.contains(&format!("tempest_{}", g.name())), "missing {}", g.name());
        }
    }

    #[test]
    fn jobs_json_roundtrips_through_parser() {
        let text = render_jobs();
        let v = Value::parse(&text).expect("parses");
        // render ∘ parse is the identity on the parsed tree.
        assert_eq!(Value::parse(&v.render()).unwrap(), v);
        assert!(v.get("heartbeats").unwrap().as_u64().is_some());
    }

    #[test]
    fn validator_accepts_labelled_samples() {
        let doc = "# HELP m_total help text\n# TYPE m_total counter\nm_total 3\n\
                   # TYPE g gauge\ng{job=\"1\",k=\"v v\"} -2.5\n";
        validate_exposition(doc).unwrap();
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        // sample without a preceding TYPE
        assert!(validate_exposition("m 1\n").is_err());
        // _total typed as gauge
        assert!(validate_exposition("# TYPE m_total gauge\nm_total 1\n").is_err());
        // negative counter
        assert!(validate_exposition("# TYPE c counter\nc -1\n").is_err());
        // bad value token
        assert!(validate_exposition("# TYPE g gauge\ng abc\n").is_err());
        // bad metric name
        assert!(validate_exposition("# TYPE 9bad gauge\n9bad 1\n").is_err());
        // stray comment
        assert!(validate_exposition("# NOTE whatever\n").is_err());
        // missing value
        assert!(validate_exposition("# TYPE g gauge\ng\n").is_err());
    }

    #[test]
    fn sampler_fills_rings() {
        let srv = TelemetryServer::start(&ephemeral()).unwrap();
        std::thread::sleep(Duration::from_millis(120));
        let r = srv.shared.rates.lock().unwrap();
        // Baseline tick plus several interval ticks → ring has samples
        // (values are 0.0 rates when no counters move; presence is the point).
        assert!(!r.gpts.is_empty());
        assert!(!r.tiles.is_empty());
    }
}
