//! Live telemetry primitives: lock-free gauges, a tile-completion
//! heartbeat, fixed-capacity time-series rings, and a job-snapshot
//! provider registry.
//!
//! Where the sibling counters in the crate root are *post-mortem* (folded
//! once by [`crate::snapshot`] after a run), everything here is meant to be
//! read **while the run is in flight** — by the sampler thread and HTTP
//! endpoint in [`crate::serve`] and by the survey stall watchdog. The same
//! two gates apply:
//!
//! 1. **Compile-time** — without the `enabled` cargo feature every recording
//!    entry point is an `#[inline(always)]` empty function.
//! 2. **Run-time** — with the feature compiled in, recording is still off
//!    unless `TEMPEST_TELEMETRY` is set (or [`set_telemetry`] was called).
//!    Turning telemetry on also turns the profiling counters on
//!    ([`crate::set_enabled`]): the sampler derives its rates from those
//!    counters, so live telemetry without them would export zeros.
//!
//! Gauges are a single global array of relaxed `AtomicI64`s — unlike the
//! sharded counters there is no per-thread state to fold, because gauges
//! are *levels* (queue depth, running jobs, active workers), not
//! accumulating event counts, and their writers are the low-frequency
//! control plane (queue transitions, worker park/unpark), not the stencil
//! hot loop.
//!
//! The heartbeat is the liveness signal the watchdog consumes: every
//! executed parallel batch item and every shot start/completion bumps a
//! monotonic count and stamps a timestamp. The *count* is deterministic for
//! a given workload (it mirrors `ParTasks` + `ShotStarted` +
//! `ShotCompleted` exactly — see `tests/telemetry.rs`); the *age* is the
//! wall-clock side channel: a running job whose heartbeat goes silent is
//! stalled, not slow.

// ---------------------------------------------------------------------------
// Gauge taxonomy
// ---------------------------------------------------------------------------

/// Instantaneous levels exported at `/metrics`. Semantics:
///
/// * `QueueDepth` — jobs waiting in the survey service's pending queue.
/// * `RunningJobs` — jobs currently executing (the service runs one at a
///   time today, so this is 0 or 1; the gauge does not hard-code that).
/// * `CompletedJobs` / `FailedJobs` / `CancelledJobs` — jobs that reached
///   each terminal state since service start (levels, not sharded
///   counters: the queue recomputes them from its own state under its
///   lock, so they are exact, not sampled).
/// * `StalledJobs` — running jobs whose heartbeat is currently silent past
///   the watchdog threshold. Falls back to 0 when the heartbeat resumes.
/// * `PoolWorkers` — worker threads owned by the shared tile pool.
/// * `ActiveWorkers` — pool workers currently inside a claimed job (not
///   parked on the publication board).
/// * `CacheHitRatePct` — `TileCache` lifetime hit rate in whole percent
///   (hits × 100 / lookups); 0 until the first lookup.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(usize)]
pub enum Gauge {
    QueueDepth = 0,
    RunningJobs,
    CompletedJobs,
    FailedJobs,
    CancelledJobs,
    StalledJobs,
    PoolWorkers,
    ActiveWorkers,
    CacheHitRatePct,
}

impl Gauge {
    pub const COUNT: usize = 9;
    pub const ALL: [Gauge; Self::COUNT] = [
        Gauge::QueueDepth,
        Gauge::RunningJobs,
        Gauge::CompletedJobs,
        Gauge::FailedJobs,
        Gauge::CancelledJobs,
        Gauge::StalledJobs,
        Gauge::PoolWorkers,
        Gauge::ActiveWorkers,
        Gauge::CacheHitRatePct,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Gauge::QueueDepth => "queue_depth",
            Gauge::RunningJobs => "running_jobs",
            Gauge::CompletedJobs => "completed_jobs",
            Gauge::FailedJobs => "failed_jobs",
            Gauge::CancelledJobs => "cancelled_jobs",
            Gauge::StalledJobs => "stalled_jobs",
            Gauge::PoolWorkers => "pool_workers",
            Gauge::ActiveWorkers => "active_workers",
            Gauge::CacheHitRatePct => "cache_hit_rate_pct",
        }
    }
}

// ---------------------------------------------------------------------------
// Job snapshots (always compiled — serve/tests name this type)
// ---------------------------------------------------------------------------

/// One job's live state as exported at `/jobs`. Produced by the provider a
/// service registers with [`set_jobs_provider`]; consumed by the HTTP
/// endpoint and the example's poll loop.
#[derive(Clone, Debug, PartialEq)]
pub struct JobSnapshot {
    pub id: u64,
    /// Job state name (`Queued`, `Running`, `Completed`, …).
    pub state: String,
    pub priority: i32,
    pub shots_done: usize,
    pub shots_total: usize,
    /// Completed virtual timesteps (`shots_done × nt`) — the unit progress
    /// and ETA are derived from.
    pub vsteps_done: u64,
    pub vsteps_total: u64,
    /// Fraction of virtual steps completed, in `[0, 1]`.
    pub progress: f64,
    /// Estimated seconds to completion; `None` until the job has run long
    /// enough to extrapolate (or once it is terminal).
    pub eta_s: Option<f64>,
    /// True while the watchdog considers this job's heartbeat silent.
    pub stalled: bool,
    /// How many distinct silence episodes the watchdog flagged.
    pub stall_events: u32,
}

// ---------------------------------------------------------------------------
// Fixed-capacity time-series ring (always compiled)
// ---------------------------------------------------------------------------

/// A bounded `(t_ns, value)` ring: pushing past capacity overwrites the
/// oldest sample, so a long-lived service holds the most recent window at a
/// fixed memory cost. Single-writer by design (the sampler thread owns each
/// ring behind the server's mutex); this is plain data, not a lock-free
/// structure.
#[derive(Clone, Debug)]
pub struct Series {
    buf: Vec<(u64, f64)>,
    cap: usize,
    /// Next write position (wraps at `cap`).
    head: usize,
    len: usize,
}

impl Series {
    /// `cap` is clamped to at least 1 so `push` always lands somewhere.
    pub fn new(cap: usize) -> Self {
        let cap = cap.max(1);
        Series {
            buf: Vec::with_capacity(cap),
            cap,
            head: 0,
            len: 0,
        }
    }

    pub fn push(&mut self, t_ns: u64, value: f64) {
        if self.buf.len() < self.cap {
            self.buf.push((t_ns, value));
        } else {
            self.buf[self.head] = (t_ns, value);
        }
        self.head = (self.head + 1) % self.cap;
        self.len = (self.len + 1).min(self.cap);
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Most recent sample.
    pub fn latest(&self) -> Option<(u64, f64)> {
        if self.len == 0 {
            None
        } else {
            Some(self.buf[(self.head + self.cap - 1) % self.cap])
        }
    }

    /// Samples oldest→newest.
    pub fn iter(&self) -> impl Iterator<Item = (u64, f64)> + '_ {
        let start = if self.len < self.cap { 0 } else { self.head };
        (0..self.len).map(move |i| self.buf[(start + i) % self.cap])
    }
}

// ---------------------------------------------------------------------------
// Recording API — real implementation (feature = "enabled")
// ---------------------------------------------------------------------------

#[cfg(feature = "enabled")]
mod imp {
    use super::{Gauge, JobSnapshot};
    use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
    use std::sync::{Mutex, Once, OnceLock};
    use std::time::{Duration, Instant};

    static TELEMETRY: AtomicBool = AtomicBool::new(false);
    static ENV_INIT: Once = Once::new();

    static GAUGES: OnceLock<[AtomicI64; Gauge::COUNT]> = OnceLock::new();
    static HEARTBEATS: AtomicU64 = AtomicU64::new(0);
    /// Nanoseconds since [`epoch`] of the latest heartbeat; 0 = never.
    static LAST_BEAT_NS: AtomicU64 = AtomicU64::new(0);
    static EPOCH: OnceLock<Instant> = OnceLock::new();

    type Provider = Box<dyn Fn() -> Vec<JobSnapshot> + Send + Sync>;
    static PROVIDER: OnceLock<Mutex<Option<Provider>>> = OnceLock::new();

    fn gauges() -> &'static [AtomicI64; Gauge::COUNT] {
        GAUGES.get_or_init(|| std::array::from_fn(|_| AtomicI64::new(0)))
    }

    fn provider() -> &'static Mutex<Option<Provider>> {
        PROVIDER.get_or_init(|| Mutex::new(None))
    }

    /// Process-stable time origin for heartbeat stamps. An `Instant` rather
    /// than wall clock: ages must be immune to clock steps.
    fn epoch() -> Instant {
        *EPOCH.get_or_init(Instant::now)
    }

    fn now_ns() -> u64 {
        // +1 so a beat in the very first nanosecond is distinguishable from
        // "never" (0).
        epoch().elapsed().as_nanos() as u64 + 1
    }

    /// Is live telemetry on? First call resolves `TEMPEST_TELEMETRY` (any
    /// value other than empty or `0` enables — including a `host:port`
    /// bind address); after that it is one relaxed load. Enabling also
    /// enables the profiling counters, which the sampler reads.
    #[inline]
    pub fn telemetry_enabled() -> bool {
        ENV_INIT.call_once(|| {
            let on = std::env::var("TEMPEST_TELEMETRY")
                .map(|v| !v.is_empty() && v != "0")
                .unwrap_or(false);
            if on {
                TELEMETRY.store(true, Ordering::Relaxed);
                crate::set_enabled(true);
            }
        });
        TELEMETRY.load(Ordering::Relaxed)
    }

    /// Programmatic override of the `TEMPEST_TELEMETRY` gate. Turning
    /// telemetry on also turns profiling counters on (the reverse is not
    /// true: turning telemetry off leaves profiling as-is).
    pub fn set_telemetry(on: bool) {
        let _ = telemetry_enabled(); // settle env init so it cannot overwrite us
        TELEMETRY.store(on, Ordering::Relaxed);
        if on {
            crate::set_enabled(true);
        }
    }

    /// Add `delta` (may be negative) to gauge `g`.
    #[inline]
    pub fn gauge_add(g: Gauge, delta: i64) {
        if !telemetry_enabled() {
            return;
        }
        gauges()[g as usize].fetch_add(delta, Ordering::Relaxed);
    }

    /// Set gauge `g` to an absolute level.
    #[inline]
    pub fn gauge_set(g: Gauge, value: i64) {
        if !telemetry_enabled() {
            return;
        }
        gauges()[g as usize].store(value, Ordering::Relaxed);
    }

    /// Current level of gauge `g`.
    #[inline]
    pub fn gauge(g: Gauge) -> i64 {
        gauges()[g as usize].load(Ordering::Relaxed)
    }

    /// Record `n` units of forward progress (batch items, shots) and stamp
    /// the liveness clock the watchdog reads.
    #[inline]
    pub fn heartbeat(n: u64) {
        if !telemetry_enabled() {
            return;
        }
        HEARTBEATS.fetch_add(n, Ordering::Relaxed);
        LAST_BEAT_NS.store(now_ns(), Ordering::Relaxed);
    }

    /// Total heartbeat units since start/reset.
    pub fn heartbeats() -> u64 {
        HEARTBEATS.load(Ordering::Relaxed)
    }

    /// Time since the most recent heartbeat; `None` if none was ever
    /// recorded (a watchdog must not flag a job that has not begun work).
    pub fn heartbeat_age() -> Option<Duration> {
        let last = LAST_BEAT_NS.load(Ordering::Relaxed);
        if last == 0 {
            None
        } else {
            Some(Duration::from_nanos(now_ns().saturating_sub(last)))
        }
    }

    /// Zero every gauge and the heartbeat state (test isolation; mirrors
    /// [`crate::reset`] for the counter shards).
    pub fn reset_metrics() {
        for g in gauges() {
            g.store(0, Ordering::Relaxed);
        }
        HEARTBEATS.store(0, Ordering::Relaxed);
        LAST_BEAT_NS.store(0, Ordering::Relaxed);
    }

    /// Register the closure `/jobs` snapshots come from. One provider at a
    /// time — a new registration replaces the old (latest service wins).
    pub fn set_jobs_provider<F>(f: F)
    where
        F: Fn() -> Vec<JobSnapshot> + Send + Sync + 'static,
    {
        *provider().lock().unwrap_or_else(|e| e.into_inner()) = Some(Box::new(f));
    }

    /// Drop the registered provider (a stopping service deregisters so the
    /// endpoint never polls freed queue state).
    pub fn clear_jobs_provider() {
        *provider().lock().unwrap_or_else(|e| e.into_inner()) = None;
    }

    /// Current job snapshots; empty when no provider is registered.
    pub fn jobs_snapshot() -> Vec<JobSnapshot> {
        let guard = provider().lock().unwrap_or_else(|e| e.into_inner());
        guard.as_ref().map(|f| f()).unwrap_or_default()
    }
}

// ---------------------------------------------------------------------------
// Recording API — no-op implementation (feature off)
// ---------------------------------------------------------------------------

#[cfg(not(feature = "enabled"))]
mod imp {
    use super::{Gauge, JobSnapshot};
    use std::time::Duration;

    #[inline(always)]
    pub fn telemetry_enabled() -> bool {
        false
    }

    #[inline(always)]
    pub fn set_telemetry(_on: bool) {}

    #[inline(always)]
    pub fn gauge_add(_g: Gauge, _delta: i64) {}

    #[inline(always)]
    pub fn gauge_set(_g: Gauge, _value: i64) {}

    #[inline(always)]
    pub fn gauge(_g: Gauge) -> i64 {
        0
    }

    #[inline(always)]
    pub fn heartbeat(_n: u64) {}

    #[inline(always)]
    pub fn heartbeats() -> u64 {
        0
    }

    #[inline(always)]
    pub fn heartbeat_age() -> Option<Duration> {
        None
    }

    #[inline(always)]
    pub fn reset_metrics() {}

    #[inline(always)]
    pub fn set_jobs_provider<F>(_f: F)
    where
        F: Fn() -> Vec<JobSnapshot> + Send + Sync + 'static,
    {
    }

    #[inline(always)]
    pub fn clear_jobs_provider() {}

    #[inline(always)]
    pub fn jobs_snapshot() -> Vec<JobSnapshot> {
        Vec::new()
    }
}

pub use imp::{
    clear_jobs_provider, gauge, gauge_add, gauge_set, heartbeat, heartbeat_age, heartbeats,
    jobs_snapshot, reset_metrics, set_jobs_provider, set_telemetry, telemetry_enabled,
};

// ---------------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_fills_then_wraps() {
        let mut s = Series::new(3);
        assert!(s.is_empty());
        assert_eq!(s.latest(), None);
        s.push(1, 10.0);
        s.push(2, 20.0);
        assert_eq!(s.len(), 2);
        assert_eq!(s.latest(), Some((2, 20.0)));
        s.push(3, 30.0);
        s.push(4, 40.0); // overwrites (1, 10.0)
        assert_eq!(s.len(), 3);
        assert_eq!(s.capacity(), 3);
        assert_eq!(s.latest(), Some((4, 40.0)));
        let got: Vec<_> = s.iter().collect();
        assert_eq!(got, vec![(2, 20.0), (3, 30.0), (4, 40.0)]);
    }

    #[test]
    fn series_zero_capacity_is_clamped() {
        let mut s = Series::new(0);
        assert_eq!(s.capacity(), 1);
        s.push(1, 1.0);
        s.push(2, 2.0);
        assert_eq!(s.len(), 1);
        assert_eq!(s.latest(), Some((2, 2.0)));
    }

    #[test]
    fn gauge_names_are_unique() {
        for (i, a) in Gauge::ALL.iter().enumerate() {
            for b in &Gauge::ALL[i + 1..] {
                assert_ne!(a.name(), b.name());
            }
        }
        assert_eq!(Gauge::ALL.len(), Gauge::COUNT);
    }

    #[cfg(not(feature = "enabled"))]
    #[test]
    fn disabled_build_is_inert() {
        set_telemetry(true);
        assert!(!telemetry_enabled());
        gauge_add(Gauge::QueueDepth, 5);
        heartbeat(3);
        assert_eq!(gauge(Gauge::QueueDepth), 0);
        assert_eq!(heartbeats(), 0);
        assert_eq!(heartbeat_age(), None);
        set_jobs_provider(Vec::new);
        assert!(jobs_snapshot().is_empty());
    }

    // The enabled-build tests share process-global state; serialise them.
    #[cfg(feature = "enabled")]
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[cfg(feature = "enabled")]
    #[test]
    fn enabled_build_records_and_resets() {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_telemetry(true);
        reset_metrics();
        gauge_add(Gauge::QueueDepth, 3);
        gauge_add(Gauge::QueueDepth, -1);
        gauge_set(Gauge::PoolWorkers, 7);
        heartbeat(2);
        heartbeat(1);
        assert_eq!(gauge(Gauge::QueueDepth), 2);
        assert_eq!(gauge(Gauge::PoolWorkers), 7);
        assert_eq!(heartbeats(), 3);
        let age = heartbeat_age().expect("beat recorded");
        assert!(age < std::time::Duration::from_secs(5));
        reset_metrics();
        assert_eq!(gauge(Gauge::QueueDepth), 0);
        assert_eq!(heartbeats(), 0);
        assert_eq!(heartbeat_age(), None);
        set_telemetry(false);
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn runtime_gate_blocks_recording() {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_telemetry(false);
        reset_metrics();
        gauge_add(Gauge::RunningJobs, 1);
        heartbeat(5);
        assert_eq!(gauge(Gauge::RunningJobs), 0);
        assert_eq!(heartbeats(), 0);
        assert_eq!(heartbeat_age(), None);
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn jobs_provider_registration_and_replacement() {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let snap = JobSnapshot {
            id: 9,
            state: "Running".into(),
            priority: 1,
            shots_done: 2,
            shots_total: 8,
            vsteps_done: 32,
            vsteps_total: 128,
            progress: 0.25,
            eta_s: Some(1.5),
            stalled: false,
            stall_events: 0,
        };
        let s2 = snap.clone();
        set_jobs_provider(move || vec![s2.clone()]);
        assert_eq!(jobs_snapshot(), vec![snap]);
        set_jobs_provider(Vec::new);
        assert!(jobs_snapshot().is_empty());
        clear_jobs_provider();
        assert!(jobs_snapshot().is_empty());
    }
}
