//! Diamond (MWD) temporal blocking — Malas et al., *Multicore-optimized
//! wavefront diamond blocking* (arXiv:1410.3060), on the dataflow substrate.
//!
//! Where the wave-front schedule ([`crate::wavefront`]) skews parallelogram
//! tiles in both x and y, the diamond schedule tiles the `(vt, a)` plane —
//! `a` one chosen space axis ([`DiamondAxis`]) — into *diamonds* and runs a
//! skewed wave-front along the remaining cross axis. A diamond first expands
//! and then contracts around its centre, so consecutive steps of one tile
//! re-read the values the tile itself just wrote: maximal in-cache reuse per
//! synchronisation point, the property MWD trades against the skewed slab's
//! one-sided drift.
//!
//! Geometry (all in virtual steps; `T = tile_t`, `s = slope ≥ radius`):
//!
//! * Diamond rows `row = 0, 1, …` each own the virtual steps
//!   `τ = vt − b ∈ [1, 2T)` above their bottom vertex `b = (row − 1)·T`
//!   (row 0 holds the clipped bottom half-diamonds of the cold start, the
//!   last row the clipped top halves).
//! * Within a row, diamond centres sit at `A = k·s·T` for `k ≥ 0` with
//!   `k ≡ row − 1 (mod 2)`; the slab of a diamond at `τ` spans
//!   `[A − hw, A + hw)` with half-width `hw = s·min(τ, 2T − τ)`.
//!   Adjacent rows alternate centre parity, so at every `vt` the two
//!   covering rows' slabs abut exactly: each `(vt, a)` point belongs to
//!   exactly one diamond. The diamond base width is `2·s·T` —
//!   legal iff `width ≥ 2·radius·tile_t`, i.e. `s ≥ radius`.
//! * The cross axis is cut into `tile_c` windows that recede by
//!   `cross_skew ≥ radius` per step (anchored at `τ = 1`), exactly like a
//!   wave-front: `[ct·tile_c − (τ − 1)·cross_skew, +tile_c)`.
//!
//! Dependencies: with `s ≥ radius`, a diamond's read halo at `vt` never
//! reaches a *different* same-row diamond's slab at `vt − 1` (their widest
//! consecutive-step slabs leave a gap of at least `s − radius`), and with
//! `cross_skew ≥ radius` same-diamond cross windows only read equal-or-lower
//! `ct`. Hence every edge of [`diamond_tile_graph`] points backward in the
//! lexicographic `(row, k, ct)` enumeration order — the graph is acyclic and
//! [`execute_diamond`] can hand it to the same dependency-counted
//! `tempest_par::run_dataflow` executor the wavefront dataflow schedule
//! uses. `s < radius` creates mutual same-row reads (a cycle), which
//! [`crate::legality::check_diamond_dependencies`] detects and rejects.

use tempest_grid::{Range3, Shape};
use tempest_obs as obs;
use tempest_par::Policy;

use crate::wavefront::{dilate_xy, xy_overlap, Slab};

/// Which space axis carries the diamonds; the other axis runs the skewed
/// cross wave-front (`z` stays whole for SIMD, as everywhere).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DiamondAxis {
    /// Diamonds in `(vt, x)`, cross wave-front along y.
    #[default]
    X,
    /// Diamonds in `(vt, y)`, cross wave-front along x.
    Y,
}

impl DiamondAxis {
    /// Lower-case axis letter for labels.
    pub fn name(self) -> &'static str {
        match self {
            DiamondAxis::X => "x",
            DiamondAxis::Y => "y",
        }
    }
}

/// Parameters of the diamond schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiamondSpec {
    /// Temporal half-height `T` of a diamond, in virtual steps: a full
    /// diamond spans `2T − 1` interior steps and new rows start every `T`.
    pub tile_t: usize,
    /// Diamond slope `s` in grid points per virtual step (≥ max dependency
    /// radius). The diamond base width is `2·s·tile_t`.
    pub slope: usize,
    /// Cross-axis window extent.
    pub tile_c: usize,
    /// Cross-axis recession per virtual step (≥ max dependency radius; may
    /// be zero only for radius-0 pointwise updates).
    pub cross_skew: usize,
    /// Intra-slab block extent along x.
    pub block_x: usize,
    /// Intra-slab block extent along y.
    pub block_y: usize,
    /// The diamond axis.
    pub axis: DiamondAxis,
}

impl DiamondSpec {
    /// Create a spec; all extents must be non-zero (cross_skew may be zero
    /// only for radius-0 pointwise updates).
    pub fn new(
        tile_t: usize,
        slope: usize,
        tile_c: usize,
        cross_skew: usize,
        block_x: usize,
        block_y: usize,
        axis: DiamondAxis,
    ) -> Self {
        assert!(
            tile_t > 0 && slope > 0 && tile_c > 0 && block_x > 0 && block_y > 0,
            "tile/block extents must be non-zero"
        );
        DiamondSpec {
            tile_t,
            slope,
            tile_c,
            cross_skew,
            block_x,
            block_y,
            axis,
        }
    }

    /// The diamond base width `2·slope·tile_t` — the widest slab, reached at
    /// `τ = tile_t`. Legality requires `width ≥ 2·radius·tile_t`.
    pub fn width(&self) -> usize {
        2 * self.slope * self.tile_t
    }

    /// Grid extents as (diamond axis, cross axis).
    fn extents(&self, shape: Shape) -> (usize, usize) {
        match self.axis {
            DiamondAxis::X => (shape.nx, shape.ny),
            DiamondAxis::Y => (shape.ny, shape.nx),
        }
    }
}

/// One diamond tile: its row, centre index `k` along the diamond axis,
/// cross-window index `ct`, and the (grid-clamped) virtual-step range
/// `[t0, t1)` it advances.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiamondTile {
    /// Diamond row (bottom vertex at `(row − 1)·tile_t`).
    pub row: usize,
    /// Centre index along the diamond axis (centre at `k·slope·tile_t`;
    /// `k ≡ row − 1 (mod 2)`).
    pub k: usize,
    /// Cross-axis window index.
    pub ct: usize,
    /// First virtual step with a (possibly empty) slab (inclusive).
    pub t0: usize,
    /// Last virtual step (exclusive).
    pub t1: usize,
}

/// The slab of `tile` at virtual step `vt`: the diamond cross-section at
/// `τ = vt − bottom` intersected with the receded cross window, clamped to
/// the grid. `None` when the clamp leaves nothing.
pub fn diamond_slab(
    shape: Shape,
    spec: &DiamondSpec,
    tile: &DiamondTile,
    vt: usize,
) -> Option<Slab> {
    debug_assert!((tile.t0..tile.t1).contains(&vt));
    let t = spec.tile_t as isize;
    let bottom = (tile.row as isize - 1) * t;
    let tau = vt as isize - bottom;
    debug_assert!(tau >= 1 && tau < 2 * t, "vt {vt} outside diamond row {}", tile.row);
    let (na, nc) = spec.extents(shape);
    let hw = spec.slope as isize * tau.min(2 * t - tau);
    let centre = (tile.k * spec.slope * spec.tile_t) as isize;
    let a0 = (centre - hw).max(0) as usize;
    let a1 = (((centre + hw).max(0)) as usize).min(na);
    let off = (tau - 1) * spec.cross_skew as isize;
    let cs = (tile.ct * spec.tile_c) as isize - off;
    let c0 = cs.max(0) as usize;
    let c1 = (((cs + spec.tile_c as isize).max(0)) as usize).min(nc);
    (a0 < a1 && c0 < c1).then(|| {
        let range = match spec.axis {
            DiamondAxis::X => Range3::new((a0, a1), (c0, c1), (0, shape.nz)),
            DiamondAxis::Y => Range3::new((c0, c1), (a0, a1), (0, shape.nz)),
        };
        Slab { vt, range }
    })
}

/// True when the tile contributes at least one non-empty slab. Boundary
/// diamonds (centres past the grid edge, late cross windows) can be fully
/// clipped; running them would be pure overhead.
pub fn diamond_tile_has_work(shape: Shape, spec: &DiamondSpec, tile: &DiamondTile) -> bool {
    (tile.t0..tile.t1).any(|vt| diamond_slab(shape, spec, tile, vt).is_some())
}

/// Visit every diamond tile with work in lexicographic `(row, k, ct)` order
/// — a valid topological order of [`diamond_tile_graph`] whenever
/// `slope ≥ radius` and `cross_skew ≥ radius` (see module docs).
pub fn for_each_diamond_tile<F>(shape: Shape, nvt: usize, spec: &DiamondSpec, mut f: F)
where
    F: FnMut(&DiamondTile),
{
    if nvt == 0 {
        return;
    }
    let t = spec.tile_t as isize;
    let (na, nc) = spec.extents(shape);
    let half = spec.slope * spec.tile_t; // centre spacing s·T
    // Rows with a non-empty step range: bottom + 1 < nvt.
    let last_row = ((nvt as isize - 2).div_euclid(t) + 1).max(0) as usize;
    for row in 0..=last_row {
        let bottom = (row as isize - 1) * t;
        let t0 = (bottom + 1).max(0) as usize;
        let t1 = (((bottom + 2 * t).max(0)) as usize).min(nvt);
        if t0 >= t1 {
            continue;
        }
        // Cross windows recede with τ, so the row's last step needs the most.
        let tau_hi = (t1 - 1) as isize - bottom;
        let ntc = (nc + (tau_hi as usize - 1) * spec.cross_skew).div_ceil(spec.tile_c);
        // Centres alternate parity between rows; k·s·T − s·T < na bounds the
        // rightmost diamond that can ever reach the grid.
        let k_hi = na.div_ceil(half);
        let mut k = (row + 1) % 2;
        while k <= k_hi {
            for ct in 0..ntc {
                let tile = DiamondTile { row, k, ct, t0, t1 };
                if diamond_tile_has_work(shape, spec, &tile) {
                    f(&tile);
                }
            }
            k += 2;
        }
    }
}

/// Collect the full slab sequence in enumeration order (checker and test
/// helper — this serialisation is one valid topological order of the graph).
pub fn diamond_slabs(shape: Shape, nvt: usize, spec: &DiamondSpec) -> Vec<Slab> {
    let mut out = Vec::new();
    for_each_diamond_tile(shape, nvt, spec, |tile| {
        for vt in tile.t0..tile.t1 {
            if let Some(slab) = diamond_slab(shape, spec, tile, vt) {
                out.push(slab);
            }
        }
    });
    out
}

/// Build the dependency graph of the diamond schedule.
///
/// Nodes are every tile with work in [`for_each_diamond_tile`] order;
/// `preds[i]` lists the nodes tile `i` truly depends on. The rule is the
/// same stencil flow dependence as [`crate::wavefront::tile_graph`]: tile B
/// precedes tile A iff for some step `va ≥ 1` of A, B's slab at `va − 1`
/// intersects the `radius`-dilated footprint of A's slab at `va`. Candidate
/// writers are found by bucketing slabs per virtual step, so the rule needs
/// no diamond-specific case analysis — boundary half-diamonds and clipped
/// cross windows are handled by the clamped slabs themselves.
/// Anti-dependencies are transitively implied by the flow edges, which
/// [`crate::legality::check_diamond_dependencies`] machine-checks per spec.
pub fn diamond_tile_graph(
    shape: Shape,
    nvt: usize,
    spec: &DiamondSpec,
    radius: usize,
) -> (Vec<DiamondTile>, Vec<Vec<u32>>) {
    let mut tiles = Vec::new();
    for_each_diamond_tile(shape, nvt, spec, |t| tiles.push(*t));
    // Bucket tiles by the virtual steps where they have a non-empty slab.
    let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); nvt];
    for (i, tile) in tiles.iter().enumerate() {
        for (vt, bucket) in buckets.iter_mut().enumerate().take(tile.t1).skip(tile.t0) {
            if diamond_slab(shape, spec, tile, vt).is_some() {
                bucket.push(i as u32);
            }
        }
    }
    let mut preds: Vec<Vec<u32>> = vec![Vec::new(); tiles.len()];
    for (ia, a) in tiles.iter().enumerate() {
        for va in a.t0.max(1)..a.t1 {
            let Some(sa) = diamond_slab(shape, spec, a, va) else {
                continue;
            };
            let halo = dilate_xy(&sa.range, radius, shape);
            for &ib in &buckets[va - 1] {
                if ib as usize == ia {
                    continue;
                }
                let sb = diamond_slab(shape, spec, &tiles[ib as usize], va - 1)
                    .expect("bucketed tiles have a slab at their bucket step");
                if xy_overlap(&sb.range, &halo) {
                    preds[ia].push(ib);
                }
            }
        }
        preds[ia].sort_unstable();
        preds[ia].dedup();
    }
    (tiles, preds)
}

/// Execute `nvt` virtual steps under the diamond schedule.
///
/// Builds [`diamond_tile_graph`] and hands it to
/// `tempest_par::run_dataflow` — the same dependency-counted, work-stealing
/// substrate as [`crate::wavefront::execute_dataflow`], with one join per
/// sweep as the only global synchronisation. Inside a tile, `vt` ascends
/// sequentially and each slab is cut into `(block_x, block_y)` blocks, so
/// every z-pencil is still computed whole at each step: the wavefield stays
/// bitwise identical to every other legal schedule.
///
/// `radius` must be the stencil's true dependency radius (and
/// `spec.slope ≥ radius`, `spec.cross_skew ≥ radius`).
pub fn execute_diamond<S>(
    shape: Shape,
    nvt: usize,
    spec: &DiamondSpec,
    radius: usize,
    policy: Policy,
    step: S,
) where
    S: Fn(usize, &Range3) + Sync + Send,
{
    let (tiles, preds) = diamond_tile_graph(shape, nvt, spec, radius);
    let graph = tempest_par::DepGraph::from_preds(&preds);
    // One caller-side phase/span for the whole sweep, mirroring the
    // dataflow executor so barrier-wait shares compare fairly.
    let sw = obs::start(obs::Phase::Diamond);
    let _dsp = obs::trace::span(
        obs::trace::SpanKind::Diamond,
        obs::trace::SpanArgs {
            t0: 0,
            t1: nvt as i32,
            ..Default::default()
        },
    );
    tempest_par::run_dataflow(policy, &graph, |i| {
        let tile = &tiles[i];
        let _sp = obs::trace::span(
            obs::trace::SpanKind::Tile,
            obs::trace::SpanArgs::tile(tile.row, tile.k, tile.ct, tile.t0, tile.t1),
        );
        for vt in tile.t0..tile.t1 {
            if let Some(slab) = diamond_slab(shape, spec, tile, vt) {
                for b in slab.range.split_xy(spec.block_x, spec.block_y) {
                    step(vt, &b);
                }
            }
        }
        obs::add(obs::Counter::WavefrontTiles, 1);
    });
    sw.stop();
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempest_grid::Array3;

    fn coverage_exact(shape: Shape, nvt: usize, spec: &DiamondSpec) {
        let mut counts = Array3::<u32>::zeros(nvt.max(1), shape.nx, shape.ny);
        for s in diamond_slabs(shape, nvt, spec) {
            for x in s.range.x0..s.range.x1 {
                for y in s.range.y0..s.range.y1 {
                    counts.set(s.vt, x, y, counts.get(s.vt, x, y) + 1);
                }
            }
        }
        for vt in 0..nvt {
            for x in 0..shape.nx {
                for y in 0..shape.ny {
                    assert_eq!(
                        counts.get(vt, x, y),
                        1,
                        "(vt={vt}, x={x}, y={y}) covered {} times with {spec:?}",
                        counts.get(vt, x, y)
                    );
                }
            }
        }
    }

    #[test]
    fn covers_each_space_time_point_exactly_once() {
        let shape = Shape::new(23, 17, 4);
        for spec in [
            DiamondSpec::new(4, 2, 8, 2, 4, 4, DiamondAxis::X),
            DiamondSpec::new(3, 3, 7, 3, 2, 2, DiamondAxis::X),
            DiamondSpec::new(4, 2, 8, 2, 4, 4, DiamondAxis::Y),
            DiamondSpec::new(2, 1, 5, 1, 3, 5, DiamondAxis::Y),
            DiamondSpec::new(6, 6, 32, 6, 8, 8, DiamondAxis::X), // wider than grid
        ] {
            coverage_exact(shape, 11, &spec);
        }
    }

    #[test]
    fn sweep_covers_each_point_exactly_tile_t_times_per_time_window() {
        // Satellite property: across a sweep, every grid point is stepped
        // exactly once per virtual step — so each consecutive tile_t-step
        // window covers it exactly tile_t times (no gap or overlap anywhere
        // in space-time, boundary half-diamonds included).
        let shape = Shape::new(25, 19, 2);
        for spec in [
            DiamondSpec::new(3, 2, 8, 2, 4, 4, DiamondAxis::X),
            DiamondSpec::new(2, 3, 6, 1, 4, 4, DiamondAxis::Y),
        ] {
            let nvt = 4 * spec.tile_t;
            let mut counts = Array3::<u32>::zeros(nvt, shape.nx, shape.ny);
            for s in diamond_slabs(shape, nvt, &spec) {
                for x in s.range.x0..s.range.x1 {
                    for y in s.range.y0..s.range.y1 {
                        counts.set(s.vt, x, y, counts.get(s.vt, x, y) + 1);
                    }
                }
            }
            for x in 0..shape.nx {
                for y in 0..shape.ny {
                    for w in 0..4 {
                        let in_window: u32 = (w * spec.tile_t..(w + 1) * spec.tile_t)
                            .map(|vt| counts.get(vt, x, y))
                            .sum();
                        assert_eq!(
                            in_window,
                            spec.tile_t as u32,
                            "({x},{y}) window {w} with {spec:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn tile_t_one_degenerates_to_strip_blocking() {
        // T = 1: every diamond is a width-2s strip at a single step, with
        // centres alternating parity between consecutive steps.
        let shape = Shape::new(12, 12, 3);
        let spec = DiamondSpec::new(1, 2, 12, 0, 4, 4, DiamondAxis::X);
        let mut per_vt = vec![0usize; 5];
        for s in diamond_slabs(shape, 5, &spec) {
            per_vt[s.vt] += s.range.len();
            assert!(s.range.x1 - s.range.x0 <= 2 * spec.slope);
        }
        for v in per_vt {
            assert_eq!(v, shape.len());
        }
    }

    #[test]
    fn width_is_base_width() {
        assert_eq!(DiamondSpec::new(8, 4, 64, 2, 8, 8, DiamondAxis::X).width(), 64);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn rejects_zero_slope() {
        let _ = DiamondSpec::new(8, 0, 64, 2, 8, 8, DiamondAxis::X);
    }

    #[test]
    fn enumeration_is_unique_and_clipped_tiles_are_skipped() {
        let shape = Shape::new(23, 17, 4);
        let spec = DiamondSpec::new(3, 3, 7, 3, 2, 2, DiamondAxis::X);
        let mut tiles = Vec::new();
        for_each_diamond_tile(shape, 11, &spec, |t| tiles.push(*t));
        assert!(tiles.iter().all(|t| diamond_tile_has_work(shape, &spec, t)));
        let mut uniq = tiles.clone();
        uniq.sort_by_key(|t| (t.row, t.k, t.ct));
        uniq.dedup();
        assert_eq!(uniq.len(), tiles.len());
        // Lexicographic enumeration order.
        assert_eq!(uniq, tiles);
        // Parity alternates between rows.
        assert!(tiles.iter().all(|t| t.k % 2 == (t.row + 1) % 2));
        // The first and last rows hold clipped half-diamonds.
        assert!(tiles.iter().any(|t| t.row == 0));
        assert!(tiles.iter().all(|t| t.t1 <= 11 && t.t0 < t.t1));
    }

    #[test]
    fn graph_edges_point_backward_in_enumeration_order() {
        let shape = Shape::new(23, 17, 4);
        for (spec, radius) in [
            (DiamondSpec::new(4, 2, 8, 2, 4, 4, DiamondAxis::X), 2),
            (DiamondSpec::new(3, 3, 7, 3, 2, 2, DiamondAxis::Y), 3),
            (DiamondSpec::new(1, 3, 8, 3, 4, 4, DiamondAxis::X), 3), // tile_t = 1
        ] {
            let (tiles, preds) = diamond_tile_graph(shape, 11, &spec, radius);
            let mut expect = Vec::new();
            for_each_diamond_tile(shape, 11, &spec, |t| expect.push(*t));
            assert_eq!(tiles, expect);
            for (ia, ps) in preds.iter().enumerate() {
                for &ib in ps {
                    // Lexicographic (row, k, ct) order is a topological
                    // order: every edge points backward.
                    assert!((ib as usize) < ia, "edge {ib} -> {ia} not backward");
                    let (a, b) = (&tiles[ia], &tiles[ib as usize]);
                    if a.row == b.row {
                        // Same-row flow deps stay within the same diamond
                        // (lower cross windows) under slope ≥ radius.
                        assert_eq!(a.k, b.k, "same-row dep crossed diamonds");
                        assert!(b.ct <= a.ct);
                    } else {
                        assert!(b.row < a.row);
                    }
                }
            }
            // Every tile beyond the first row depends on something.
            for (ia, t) in tiles.iter().enumerate() {
                if t.t0 > 0 {
                    assert!(!preds[ia].is_empty(), "row {} tile has no preds", t.row);
                }
            }
        }
    }

    #[test]
    fn execute_diamond_blocks_partition_domain() {
        let shape = Shape::new(20, 14, 3);
        let spec = DiamondSpec::new(3, 2, 8, 2, 3, 4, DiamondAxis::X);
        let nvt = 7;
        for policy in [Policy::Sequential, Policy::Parallel, Policy::Capped { threads: 2 }] {
            let total = std::sync::atomic::AtomicUsize::new(0);
            execute_diamond(shape, nvt, &spec, 2, policy, |_vt, b| {
                total.fetch_add(b.len(), std::sync::atomic::Ordering::Relaxed);
            });
            assert_eq!(
                total.load(std::sync::atomic::Ordering::Relaxed),
                nvt * shape.len()
            );
        }
    }

    #[test]
    fn diamond_never_steps_a_point_before_its_halo() {
        // Dynamic check of the flow-dependence rule under the parallel
        // executor: when a block advances to step vt, every point in its
        // radius-dilated halo must have completed vt − 1.
        let shape = Shape::new(23, 17, 2);
        let spec = DiamondSpec::new(4, 2, 8, 2, 4, 4, DiamondAxis::X);
        let radius = 2usize;
        let nvt = 11;
        let progress = std::sync::Mutex::new(vec![vec![-1i64; shape.ny]; shape.nx]);
        execute_diamond(shape, nvt, &spec, radius, Policy::Parallel, |vt, b| {
            let mut g = progress.lock().unwrap();
            let want = vt as i64 - 1;
            for x in b.x0.saturating_sub(radius)..(b.x1 + radius).min(shape.nx) {
                for y in b.y0.saturating_sub(radius)..(b.y1 + radius).min(shape.ny) {
                    assert!(g[x][y] >= want, "halo ({x},{y}) at {} < {want}", g[x][y]);
                }
            }
            for x in b.x0..b.x1 {
                for y in b.y0..b.y1 {
                    assert_eq!(g[x][y], want, "write point ({x},{y})");
                    g[x][y] = vt as i64;
                }
            }
        });
        let g = progress.lock().unwrap();
        for col in g.iter() {
            for &v in col {
                assert_eq!(v, nvt as i64 - 1);
            }
        }
    }
}
