//! # tempest-tiling
//!
//! Loop-schedule engine: how the space-time iteration domain of an explicit
//! stencil propagator is traversed.
//!
//! The paper contrasts two schedules (§I.A, Fig. 4):
//!
//! * **Spatial blocking** ([`spaceblock`]): each timestep sweeps the whole
//!   grid, decomposed into cache-sized `(block_x, block_y)` × full-`z`
//!   blocks that may run in parallel. Sparse operators can run between
//!   timesteps — no dependency hazards (Fig. 4a). This is the
//!   highly-optimised baseline the paper compares against.
//!
//! * **Wave-front temporal blocking** ([`wavefront`], §II.B): the space-time
//!   domain splits into parallelogram tiles of `tile_t` timesteps skewed by
//!   the dependency radius per step; inside a tile, slabs advance through
//!   time while their working set is cache-resident. Applying off-grid
//!   sparse operators naively under this schedule is *incorrect* (Fig. 4b) —
//!   the precomputation scheme in `tempest-sparse` is what makes it legal.
//!
//! Both schedules drive an abstract *step function* `step(vt, region)`:
//! "compute virtual timestep `vt` for `region`". Multi-phase propagators
//! (elastic velocity–stress updates two field groups per timestep, the
//! second reading same-timestep values of the first — Fig. 8b) map each
//! phase to its own virtual step, which automatically widens the skew.
//!
//! The wave-front schedule has three executors: slab-ordered
//! ([`wavefront::execute`]) parallelises the blocks of one slab between
//! barriers; diagonal-parallel ([`wavefront::execute_diagonal`]) runs
//! whole same-anti-diagonal space-time tiles concurrently with one barrier
//! per diagonal — a coarser grain with ~`tile_t×` fewer synchronisation
//! points; and dataflow ([`wavefront::execute_dataflow`]) drops the
//! per-diagonal barriers too, running the exact tile dependency graph
//! ([`wavefront::tile_graph`]) under dependency counters and per-worker
//! stealing deques with a single join per sweep. All three produce
//! bitwise-identical wavefields.
//!
//! A fourth temporally blocked schedule, [`diamond`] (MWD, Malas et al.
//! arXiv:1410.3060), tiles time × one chosen space axis into diamonds and
//! runs a skewed wave-front along the other axis, reusing the dataflow
//! executor's dependency-counted substrate via its own graph builder
//! ([`diamond::diamond_tile_graph`]). It too is bitwise identical to the
//! schedules above.
//!
//! [`incremental`] layers differential recomputation over the dataflow
//! substrate: a schedule-agnostic [`TilePlan`] snapshot of any tile graph, a
//! dirty-cone pass ([`dirty_cone`]) that marks the causal cone of a
//! [`RunDelta`] between two runs, and a bounded LRU [`TileCache`] of
//! per-tile outputs so [`incremental::execute_incremental`] restores clean
//! tiles bit-for-bit and recomputes only the cone.
//!
//! [`legality`] provides a dependency checker that validates any schedule
//! against the stencil's radius and the circular time-buffer depth
//! (including the tile-disjointness proof obligation of the diagonal
//! executor, [`legality::check_diagonal_independence`], and the
//! predecessor-set soundness proofs of the dataflow and diamond executors,
//! [`legality::check_dataflow_dependencies`] and
//! [`legality::check_diamond_dependencies`]), and
//! [`autotune()`](autotune()) sweeps tile/block shapes (§IV.C, Table I).

pub mod autotune;
pub mod diamond;
pub mod incremental;
pub mod legality;
pub mod spaceblock;
pub mod wavefront;

pub use autotune::{
    autotune, autotune_measured, spaceblock_candidates, with_dataflow_variants,
    with_diagonal_variants, with_diamond_variants, Candidate, MeasuredResult, Measurement,
    TuneResult,
};
pub use diamond::{DiamondAxis, DiamondSpec, DiamondTile};
pub use incremental::{
    cache_mb_from, dirty_cone, dirty_cone_oracle, execute_incremental, CacheStats, DirtyRect,
    IncrementalOutcome, RunDelta, SlabPayload, SourceSig, TileCache, TilePayload, TilePlan,
    DEFAULT_CACHE_MB,
};
pub use spaceblock::SpaceBlockSpec;
pub use wavefront::{Slab, Tile, WavefrontSpec};
