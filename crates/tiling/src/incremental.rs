//! Incremental recomputation over the tile dependency graph.
//!
//! The dataflow executors ([`crate::wavefront::execute_dataflow`],
//! [`crate::diamond::execute_diamond`]) already materialize the *exact*
//! space-time tile dependency graph of a sweep. This module exploits it,
//! differential-dataflow style ("only act where changes occur, do no work
//! elsewhere"): when the sparse off-the-grid inputs of a solve change
//! between two runs — a moved source, an edited wavelet, a different
//! receiver set — only the tiles inside the change's causal cone need new
//! work. Everything else is restored bit-for-bit from a bounded per-tile
//! result cache.
//!
//! Three pieces compose:
//!
//! * [`TilePlan`] — a schedule-agnostic snapshot of one sweep: per-node slab
//!   lists (ascending `vt`) plus the predecessor/successor edges of the tile
//!   graph. Built from the wavefront graph ([`TilePlan::wavefront`]), the
//!   diamond graph ([`TilePlan::diamond`]), or the space-blocked schedule
//!   mapped onto its `tile_t = 1` wavefront degeneration
//!   ([`TilePlan::spaceblocked`]).
//! * [`dirty_cone`] — given a [`RunDelta`] (the changed grid rectangles),
//!   seeds every tile whose written footprint intersects a changed cell and
//!   propagates dirtiness forward over the successor edges. A tile outside
//!   the cone has bitwise-unchanged inputs *and* injections, so its output
//!   is bitwise-unchanged — the invariant the property tests pin against a
//!   brute-force transitive-closure oracle.
//! * [`TileCache`] — a bounded, LRU-evicting store of per-tile outputs,
//!   content-addressed by a session key (model + config + schedule
//!   geometry), the tile id, and a digest of the sparse points intersecting
//!   the tile's footprint. `TEMPEST_CACHE_MB` bounds the payload bytes
//!   (`0` disables caching entirely).
//!
//! [`execute_incremental`] then drives the same `tempest_par::run_dataflow`
//! substrate as the plain executors, but each node either *restores* its
//! cached output (a pencil-granularity ring write, no stencil work) or
//! *computes* it exactly as the plain executor would — same slabs, same
//! `(block_x, block_y)` cuts, same step order — so a cold incremental run
//! is bitwise-identical to the plain dataflow run, and a warm run is
//! bitwise-identical to a cold one while touching only the cone.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use tempest_grid::{Range3, Shape};
use tempest_obs as obs;
use tempest_par::Policy;

use crate::diamond::{diamond_slab, diamond_tile_graph, DiamondSpec};
use crate::wavefront::{tile_graph, tile_slab, Slab, WavefrontSpec};

/// Default cache budget (MiB) when `TEMPEST_CACHE_MB` is unset —
/// deliberately conservative for shared hosts.
pub const DEFAULT_CACHE_MB: usize = 64;

// ---------------------------------------------------------------------------
// Deltas
// ---------------------------------------------------------------------------

/// A dirty rectangle in the (x, y) plane (z is never tiled, so a change at
/// any depth dirties the whole pencil column). Half-open on both axes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DirtyRect {
    /// First dirty x (inclusive).
    pub x0: usize,
    /// Last dirty x (exclusive).
    pub x1: usize,
    /// First dirty y (inclusive).
    pub y0: usize,
    /// Last dirty y (exclusive).
    pub y1: usize,
}

impl DirtyRect {
    /// Whether the rectangle intersects `r`'s xy footprint.
    pub fn overlaps(&self, r: &Range3) -> bool {
        self.x0 < r.x1 && r.x0 < self.x1 && self.y0 < r.y1 && r.y0 < self.y1
    }

    /// Whether the rectangle is empty.
    pub fn is_empty(&self) -> bool {
        self.x0 >= self.x1 || self.y0 >= self.y1
    }
}

/// What changed between two runs of the same session: the union of grid
/// rectangles whose injections changed (moved/added/removed/re-weighted
/// sources), plus whether the receiver set changed. Receivers are read-only
/// gathers — they never dirty a stencil tile, because restored tiles replay
/// their gathers against the *current* receiver bundle.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunDelta {
    /// Changed (x, y) rectangles; sources fire at every timestep, so each
    /// rect seeds every time row.
    pub rects: Vec<DirtyRect>,
    /// The receiver set differs from the cached run.
    pub receivers_changed: bool,
}

impl RunDelta {
    /// True when nothing at all changed.
    pub fn is_clean(&self) -> bool {
        self.rects.iter().all(DirtyRect::is_empty) && !self.receivers_changed
    }
}

/// One sparse point's contribution to delta detection: a digest of
/// everything that shapes its injections (position, interpolation stencil,
/// wavelet) plus the xy bounding box of its non-zero footprint cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SourceSig {
    /// Digest of position bits + stencil cells/weights + wavelet samples.
    pub digest: u64,
    /// xy bounding box of the footprint's non-zero cells.
    pub rect: DirtyRect,
}

// ---------------------------------------------------------------------------
// TilePlan
// ---------------------------------------------------------------------------

/// A schedule-agnostic snapshot of one sweep's tile structure: per-node
/// slabs in ascending `vt` plus the exact dependency edges. All incremental
/// machinery (cone marking, caching, execution) works on this one shape, so
/// it composes with every schedule that can produce a tile graph.
#[derive(Debug, Clone)]
pub struct TilePlan {
    /// Per-node slabs, ascending `vt` — exactly the slabs the plain
    /// executor would run for that node.
    pub slabs: Vec<Vec<Slab>>,
    /// `preds[i]` — nodes whose outputs node `i` reads (sorted, deduped).
    pub preds: Vec<Vec<u32>>,
    /// `succs[i]` — nodes reading node `i`'s output (the cone edges).
    pub succs: Vec<Vec<u32>>,
    /// Intra-slab block extent along x.
    pub block_x: usize,
    /// Intra-slab block extent along y.
    pub block_y: usize,
    /// Virtual steps of the sweep.
    pub nvt: usize,
    /// Digest of the schedule geometry (kind, spec, shape, nvt, radius) —
    /// folded into cache session keys so plans with different tilings never
    /// share entries.
    pub geometry: u64,
}

fn succs_of(preds: &[Vec<u32>]) -> Vec<Vec<u32>> {
    let mut succs: Vec<Vec<u32>> = vec![Vec::new(); preds.len()];
    for (ia, ps) in preds.iter().enumerate() {
        for &ib in ps {
            succs[ib as usize].push(ia as u32);
        }
    }
    succs
}

fn hash_u64(parts: &[u64]) -> u64 {
    let mut h = DefaultHasher::new();
    parts.hash(&mut h);
    h.finish()
}

impl TilePlan {
    /// Plan of a wavefront-dataflow sweep: nodes and edges from
    /// [`tile_graph`], slabs from [`tile_slab`].
    pub fn wavefront(shape: Shape, nvt: usize, spec: &WavefrontSpec, radius: usize) -> Self {
        let (tiles, preds) = tile_graph(shape, nvt, spec, radius);
        let slabs = tiles
            .iter()
            .map(|t| {
                (t.t0..t.t1)
                    .filter_map(|vt| tile_slab(shape, spec, t, vt))
                    .collect()
            })
            .collect();
        let geometry = hash_u64(&[
            1,
            shape.nx as u64,
            shape.ny as u64,
            shape.nz as u64,
            nvt as u64,
            radius as u64,
            spec.tile_x as u64,
            spec.tile_y as u64,
            spec.tile_t as u64,
            spec.skew as u64,
            spec.block_x as u64,
            spec.block_y as u64,
        ]);
        let succs = succs_of(&preds);
        TilePlan {
            slabs,
            succs,
            preds,
            block_x: spec.block_x,
            block_y: spec.block_y,
            nvt,
            geometry,
        }
    }

    /// Plan of a diamond sweep: nodes and edges from
    /// [`diamond_tile_graph`], slabs from [`diamond_slab`].
    pub fn diamond(shape: Shape, nvt: usize, spec: &DiamondSpec, radius: usize) -> Self {
        let (tiles, preds) = diamond_tile_graph(shape, nvt, spec, radius);
        let slabs = tiles
            .iter()
            .map(|t| {
                (t.t0..t.t1)
                    .filter_map(|vt| diamond_slab(shape, spec, t, vt))
                    .collect()
            })
            .collect();
        let geometry = hash_u64(&[
            2,
            shape.nx as u64,
            shape.ny as u64,
            shape.nz as u64,
            nvt as u64,
            radius as u64,
            spec.tile_t as u64,
            spec.slope as u64,
            spec.tile_c as u64,
            spec.cross_skew as u64,
            spec.block_x as u64,
            spec.block_y as u64,
            spec.axis as u64,
        ]);
        let succs = succs_of(&preds);
        TilePlan {
            slabs,
            succs,
            preds,
            block_x: spec.block_x,
            block_y: spec.block_y,
            nvt,
            geometry,
        }
    }

    /// Plan of the space-blocked schedule, mapped onto its exact `tile_t=1`
    /// wavefront degeneration: one node per `(vt, block)`, with skew-free
    /// slabs (at tile height 1 no skew ever applies) and the same block
    /// decomposition as `spaceblock::execute`. The per-slab step calls are
    /// identical to the plain schedule's, so the wavefield is bitwise
    /// identical — only the inter-step barrier is replaced by the exact
    /// dependency edges.
    pub fn spaceblocked(
        shape: Shape,
        nvt: usize,
        block_x: usize,
        block_y: usize,
        radius: usize,
    ) -> Self {
        let spec = WavefrontSpec::new(block_x, block_y, 1, radius.max(1), block_x, block_y);
        let mut plan = Self::wavefront(shape, nvt, &spec, radius);
        // Distinguish the mapping from a genuine tile_t=1 wavefront run.
        plan.geometry = hash_u64(&[3, plan.geometry]);
        plan
    }

    /// Number of tile nodes.
    pub fn len(&self) -> usize {
        self.slabs.len()
    }

    /// Whether the plan has no nodes (`nvt == 0`).
    pub fn is_empty(&self) -> bool {
        self.slabs.is_empty()
    }
}

// ---------------------------------------------------------------------------
// Dirty cone
// ---------------------------------------------------------------------------

/// Mark every node inside the causal cone of `rects`: seeds are the nodes
/// whose *written* footprint (any slab, any `vt` — sparse sources fire at
/// every step) intersects a changed rectangle, and dirtiness propagates
/// forward over the successor edges. Because the edges are the exact
/// radius-dilated flow dependences, a node outside the cone neither contains
/// a changed injection nor (transitively) reads a value produced by one —
/// its output is bitwise-unchanged.
pub fn dirty_cone(plan: &TilePlan, rects: &[DirtyRect]) -> Vec<bool> {
    let mut dirty = vec![false; plan.len()];
    let mut queue: Vec<u32> = Vec::new();
    for (i, slabs) in plan.slabs.iter().enumerate() {
        if slabs
            .iter()
            .any(|s| rects.iter().any(|r| r.overlaps(&s.range)))
        {
            dirty[i] = true;
            queue.push(i as u32);
        }
    }
    while let Some(i) = queue.pop() {
        for &s in &plan.succs[i as usize] {
            if !dirty[s as usize] {
                dirty[s as usize] = true;
                queue.push(s);
            }
        }
    }
    dirty
}

/// Brute-force oracle for [`dirty_cone`]: same seed rule, then an O(n²)
/// fixpoint over the *predecessor* lists ("dirty if any predecessor is
/// dirty") instead of a forward traversal — an independently-derived
/// transitive closure the property tests compare against.
pub fn dirty_cone_oracle(plan: &TilePlan, rects: &[DirtyRect]) -> Vec<bool> {
    let mut dirty: Vec<bool> = plan
        .slabs
        .iter()
        .map(|slabs| {
            slabs
                .iter()
                .any(|s| rects.iter().any(|r| r.overlaps(&s.range)))
        })
        .collect();
    loop {
        let mut changed = false;
        for i in 0..dirty.len() {
            if !dirty[i] && plan.preds[i].iter().any(|&p| dirty[p as usize]) {
                dirty[i] = true;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    dirty
}

// ---------------------------------------------------------------------------
// TileCache
// ---------------------------------------------------------------------------

/// One tile's cached output: the interior pencils it wrote, per slab.
#[derive(Debug, Clone)]
pub struct TilePayload {
    /// Per-slab written data, same order as the plan's slab list.
    pub slabs: Vec<SlabPayload>,
}

/// The values one slab wrote: `data` holds the `(x, y)` pencils of
/// `slab.range` in x-major, then y, then z order.
#[derive(Debug, Clone)]
pub struct SlabPayload {
    /// The slab this payload reproduces.
    pub slab: Slab,
    /// `range.len()` f32 values, x-major / y / z.
    pub data: Vec<f32>,
}

impl SlabPayload {
    /// The z-pencil at interior `(x, y)` (must lie inside the slab range).
    pub fn pencil(&self, x: usize, y: usize) -> &[f32] {
        let r = &self.slab.range;
        let nz = r.z1 - r.z0;
        let base = ((x - r.x0) * (r.y1 - r.y0) + (y - r.y0)) * nz;
        &self.data[base..base + nz]
    }
}

impl TilePayload {
    /// Total payload bytes (the unit [`TileCache`] budgets).
    pub fn bytes(&self) -> usize {
        self.slabs
            .iter()
            .map(|s| s.data.len() * std::mem::size_of::<f32>())
            .sum()
    }
}

struct Entry {
    payload: Arc<TilePayload>,
    /// Digest of the sparse sources intersecting this tile's footprint at
    /// insert time — a consistency check on lookups (clean-cone tiles
    /// necessarily have an unchanged local digest).
    mask: u64,
    bytes: usize,
    last_used: u64,
}

struct Session {
    /// Set by `finish_run`; a session that was begun but never finished
    /// (crash, panic, cancellation) is discarded by the next `begin_run`,
    /// so a torn run can never seed a warm rerun.
    completed: bool,
    sources: Vec<SourceSig>,
    receivers: u64,
    entries: HashMap<u32, Entry>,
}

struct CacheInner {
    sessions: HashMap<u64, Session>,
    /// Autotune memo: probe key → tuned `(block_x, block_y)`.
    tune: HashMap<u64, (usize, usize)>,
    bytes: usize,
}

/// Aggregate cache statistics (monotonic over the cache's lifetime).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Successful tile-payload lookups.
    pub hits: u64,
    /// Failed lookups (absent, evicted, or mask mismatch).
    pub misses: u64,
    /// Entries evicted to stay under the byte budget.
    pub evictions: u64,
    /// Current payload bytes held.
    pub bytes: usize,
    /// Current entry count across all sessions.
    pub entries: usize,
    /// Runs begun against this cache (the epoch counter).
    pub epoch: u64,
}

impl CacheStats {
    /// Hit rate in percent (0 when nothing was looked up).
    pub fn hit_rate_pct(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            100.0 * self.hits as f64 / total as f64
        }
    }
}

/// A bounded, shared, LRU-evicting store of per-tile outputs.
///
/// Keys are three-level: a *session* (u64 digest of model + config +
/// schedule geometry + shot identity), a *tile id* (node index in the
/// session's [`TilePlan`] — stable because the plan is a pure function of
/// the session's geometry), and a *mask* digest of the sparse points
/// intersecting the tile's footprint. The byte budget comes from
/// `TEMPEST_CACHE_MB` ([`TileCache::from_env`]); `0` disables the cache
/// ([`TileCache::enabled`] returns false and the engines fall back to the
/// plain, pre-cache execution path bit-for-bit).
///
/// Epoch bumps (`begin_run`) and all map mutation happen under one mutex;
/// the atomics (`epoch`, `tick`, hit/miss tallies) are monotonic telemetry
/// with `Relaxed` ordering — cross-thread visibility of payloads is carried
/// by the mutex and by the dataflow executor's spawn/join edges, never by
/// the counters (DESIGN.md §16).
pub struct TileCache {
    cap_bytes: usize,
    epoch: AtomicU64,
    tick: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    inner: Mutex<CacheInner>,
}

impl std::fmt::Debug for TileCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        f.debug_struct("TileCache")
            .field("cap_bytes", &self.cap_bytes)
            .field("bytes", &s.bytes)
            .field("entries", &s.entries)
            .field("hits", &s.hits)
            .field("misses", &s.misses)
            .field("evictions", &s.evictions)
            .finish()
    }
}

/// Resolve a raw `TEMPEST_CACHE_MB` value to a MiB budget: unset/empty or
/// unparsable falls back to the conservative default, an explicit `0`
/// disables the cache.
pub fn cache_mb_from(raw: Option<&str>) -> usize {
    match raw {
        Some(v) if !v.trim().is_empty() => v.trim().parse().unwrap_or(DEFAULT_CACHE_MB),
        _ => DEFAULT_CACHE_MB,
    }
}

impl TileCache {
    /// A cache bounded to `mb` MiB of payload (0 = disabled).
    pub fn with_capacity_mb(mb: usize) -> Self {
        TileCache {
            cap_bytes: mb.saturating_mul(1024 * 1024),
            epoch: AtomicU64::new(0),
            tick: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            inner: Mutex::new(CacheInner {
                sessions: HashMap::new(),
                tune: HashMap::new(),
                bytes: 0,
            }),
        }
    }

    /// A cache sized from `TEMPEST_CACHE_MB` (default
    /// [`DEFAULT_CACHE_MB`]; `0` disables).
    pub fn from_env() -> Self {
        Self::with_capacity_mb(cache_mb_from(
            std::env::var("TEMPEST_CACHE_MB").ok().as_deref(),
        ))
    }

    /// Whether caching is on (a zero budget disables every path).
    pub fn enabled(&self) -> bool {
        self.cap_bytes > 0
    }

    /// The configured payload budget in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.cap_bytes
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, CacheInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Begin a run of `session`. Returns `Some(delta)` — what changed since
    /// the cached run — when the session holds a *completed* prior run, or
    /// `None` when the run must be cold (first sight of the session, or the
    /// prior run never finished). Either way the session is marked
    /// in-progress until [`finish_run`](Self::finish_run), so an aborted
    /// run poisons itself, never a future rerun.
    pub fn begin_run(
        &self,
        session: u64,
        sources: &[SourceSig],
        receivers: u64,
    ) -> Option<RunDelta> {
        self.epoch.fetch_add(1, Ordering::Relaxed);
        if !self.enabled() {
            return None;
        }
        let mut inner = self.lock();
        match inner.sessions.get_mut(&session) {
            Some(s) if s.completed => {
                s.completed = false;
                let mut rects = Vec::new();
                for i in 0..s.sources.len().max(sources.len()) {
                    let old = s.sources.get(i);
                    let new = sources.get(i);
                    if old.map(|o| o.digest) == new.map(|n| n.digest) {
                        continue;
                    }
                    rects.extend(old.map(|o| o.rect));
                    rects.extend(new.map(|n| n.rect));
                }
                let receivers_changed = s.receivers != receivers;
                Some(RunDelta {
                    rects,
                    receivers_changed,
                })
            }
            _ => {
                // Unknown session or a torn previous run: start cold.
                let freed: usize = inner
                    .sessions
                    .remove(&session)
                    .map(|s| s.entries.values().map(|e| e.bytes).sum())
                    .unwrap_or(0);
                inner.bytes -= freed;
                inner.sessions.insert(
                    session,
                    Session {
                        completed: false,
                        sources: sources.to_vec(),
                        receivers,
                        entries: HashMap::new(),
                    },
                );
                None
            }
        }
    }

    /// Mark `session`'s run complete and record the layout the cached
    /// entries now correspond to. Only after this does the session become
    /// eligible for warm reruns.
    pub fn finish_run(&self, session: u64, sources: Vec<SourceSig>, receivers: u64) {
        if !self.enabled() {
            return;
        }
        let mut inner = self.lock();
        if let Some(s) = inner.sessions.get_mut(&session) {
            s.sources = sources;
            s.receivers = receivers;
            s.completed = true;
        }
    }

    /// Fetch a tile payload; `mask` must match the digest recorded at
    /// insert. Updates the hit/miss tallies and the exported hit-rate
    /// gauge.
    pub fn lookup(&self, session: u64, node: u32, mask: u64) -> Option<Arc<TilePayload>> {
        if !self.enabled() {
            return None;
        }
        let tick = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
        let mut inner = self.lock();
        let found = inner
            .sessions
            .get_mut(&session)
            .and_then(|s| s.entries.get_mut(&node))
            .filter(|e| e.mask == mask)
            .map(|e| {
                e.last_used = tick;
                Arc::clone(&e.payload)
            });
        drop(inner);
        if found.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        let hits = self.hits.load(Ordering::Relaxed);
        let total = hits + self.misses.load(Ordering::Relaxed);
        obs::metrics::gauge_set(
            obs::metrics::Gauge::CacheHitRatePct,
            (hits * 100 / total.max(1)) as i64,
        );
        found
    }

    /// Store a tile payload, evicting least-recently-used entries (across
    /// all sessions) until the byte budget holds. A payload larger than the
    /// whole budget is dropped outright.
    pub fn insert(&self, session: u64, node: u32, mask: u64, payload: TilePayload) {
        if !self.enabled() {
            return;
        }
        let bytes = payload.bytes();
        if bytes > self.cap_bytes {
            return;
        }
        let tick = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
        let mut inner = self.lock();
        let Some(s) = inner.sessions.get_mut(&session) else {
            return; // no begin_run for this session — refuse silently
        };
        if let Some(old) = s.entries.insert(
            node,
            Entry {
                payload: Arc::new(payload),
                mask,
                bytes,
                last_used: tick,
            },
        ) {
            inner.bytes -= old.bytes;
        }
        inner.bytes += bytes;
        while inner.bytes > self.cap_bytes {
            // Global LRU scan; victim cannot be the entry just touched at
            // `tick` unless it is the only one left.
            let victim = inner
                .sessions
                .iter()
                .flat_map(|(&sk, s)| s.entries.iter().map(move |(&n, e)| (e.last_used, sk, n)))
                .min()
                .map(|(_, sk, n)| (sk, n));
            let Some((sk, n)) = victim else { break };
            let freed = inner
                .sessions
                .get_mut(&sk)
                .and_then(|s| s.entries.remove(&n))
                .map_or(0, |e| e.bytes);
            inner.bytes -= freed;
            self.evictions.fetch_add(1, Ordering::Relaxed);
            obs::add(obs::Counter::CacheEvictions, 1);
        }
    }

    /// Autotune memo lookup: the tuned `(block_x, block_y)` for `key`.
    pub fn tune_lookup(&self, key: u64) -> Option<(usize, usize)> {
        if !self.enabled() {
            return None;
        }
        self.lock().tune.get(&key).copied()
    }

    /// Record a tuned `(block_x, block_y)` for `key`.
    pub fn tune_store(&self, key: u64, blocks: (usize, usize)) {
        if !self.enabled() {
            return;
        }
        self.lock().tune.insert(key, blocks);
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> CacheStats {
        let inner = self.lock();
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            bytes: inner.bytes,
            entries: inner.sessions.values().map(|s| s.entries.len()).sum(),
            epoch: self.epoch.load(Ordering::Relaxed),
        }
    }
}

// ---------------------------------------------------------------------------
// Incremental executor
// ---------------------------------------------------------------------------

/// Tallies of one incremental sweep. `reused + recomputed == total` always
/// — the exact-count oracle the tests (and the obs counters
/// `TilesReused` / `TilesRecomputed`) pin.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IncrementalOutcome {
    /// Tile nodes enumerated by the plan.
    pub total: usize,
    /// Nodes restored from cache.
    pub reused: usize,
    /// Nodes recomputed (dirty cone + cache misses).
    pub recomputed: usize,
}

/// Run one sweep over `plan` on the dataflow substrate, restoring the nodes
/// with `restore_ok[i] == true` and computing the rest.
///
/// * `step(vt, region)` — compute `region` at virtual step `vt` (identical
///   contract to the plain executors; called with the same slab/block
///   decomposition in the same per-node order).
/// * `restore(i)` — write node `i`'s cached output into the wavefield (and
///   replay its read-only side effects, e.g. receiver gathers). Runs at the
///   node's position in the dependency order, so downstream readers observe
///   restored values exactly as they would computed ones.
/// * `after_compute(i)` — capture node `i`'s freshly-written output (cache
///   insert). Runs before the node's successors are released.
///
/// Every node — restored or computed — executes as a dataflow task, so
/// scheduling counters (`ParTasks`, heartbeats) stay deterministic across
/// the two paths.
pub fn execute_incremental<S, R, C>(
    plan: &TilePlan,
    policy: Policy,
    restore_ok: &[bool],
    step: S,
    restore: R,
    after_compute: C,
) -> IncrementalOutcome
where
    S: Fn(usize, &Range3) + Sync + Send,
    R: Fn(usize) + Sync + Send,
    C: Fn(usize) + Sync + Send,
{
    assert_eq!(restore_ok.len(), plan.len(), "restore mask/plan mismatch");
    let graph = tempest_par::DepGraph::from_preds(&plan.preds);
    let reused = AtomicUsize::new(0);
    let recomputed = AtomicUsize::new(0);
    let sw = obs::start(obs::Phase::Dataflow);
    let _dsp = obs::trace::span(
        obs::trace::SpanKind::Dataflow,
        obs::trace::SpanArgs {
            t0: 0,
            t1: plan.nvt as i32,
            ..Default::default()
        },
    );
    tempest_par::run_dataflow(policy, &graph, |i| {
        let slabs = &plan.slabs[i];
        let (t0, t1) = slabs
            .first()
            .zip(slabs.last())
            .map_or((0, 0), |(a, b)| (a.vt as i32, b.vt as i32 + 1));
        if restore_ok[i] {
            let _sp = obs::trace::span(
                obs::trace::SpanKind::CacheRestore,
                obs::trace::SpanArgs {
                    t0,
                    t1,
                    ..Default::default()
                },
            );
            restore(i);
            obs::add(obs::Counter::TilesReused, 1);
            reused.fetch_add(1, Ordering::Relaxed);
        } else {
            let _sp = obs::trace::span(
                obs::trace::SpanKind::Tile,
                obs::trace::SpanArgs {
                    t0,
                    t1,
                    ..Default::default()
                },
            );
            for slab in slabs {
                for b in slab.range.split_xy(plan.block_x, plan.block_y) {
                    step(slab.vt, &b);
                }
            }
            after_compute(i);
            obs::add(obs::Counter::WavefrontTiles, 1);
            obs::add(obs::Counter::TilesRecomputed, 1);
            recomputed.fetch_add(1, Ordering::Relaxed);
        }
    });
    sw.stop();
    IncrementalOutcome {
        total: plan.len(),
        reused: reused.into_inner(),
        recomputed: recomputed.into_inner(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wf_plan() -> TilePlan {
        TilePlan::wavefront(
            Shape::new(23, 17, 4),
            11,
            &WavefrontSpec::new(8, 8, 4, 2, 4, 4),
            2,
        )
    }

    fn payload_of(bytes: usize) -> TilePayload {
        TilePayload {
            slabs: vec![SlabPayload {
                slab: Slab {
                    vt: 0,
                    range: Range3::new((0, 1), (0, 1), (0, bytes / 4)),
                },
                data: vec![0.0; bytes / 4],
            }],
        }
    }

    fn sig(digest: u64, x0: usize, y0: usize) -> SourceSig {
        SourceSig {
            digest,
            rect: DirtyRect {
                x0,
                x1: x0 + 2,
                y0,
                y1: y0 + 2,
            },
        }
    }

    #[test]
    fn plan_edges_are_consistent() {
        let plan = wf_plan();
        assert!(!plan.is_empty());
        for (i, ps) in plan.preds.iter().enumerate() {
            for &p in ps {
                assert!(
                    plan.succs[p as usize].contains(&(i as u32)),
                    "succ list of {p} misses {i}"
                );
            }
        }
        let nedges: usize = plan.preds.iter().map(Vec::len).sum();
        assert_eq!(nedges, plan.succs.iter().map(Vec::len).sum::<usize>());
    }

    #[test]
    fn spaceblocked_plan_has_one_node_per_step_and_block() {
        let shape = Shape::new(16, 16, 3);
        let plan = TilePlan::spaceblocked(shape, 4, 8, 8, 2);
        assert_eq!(plan.len(), 4 * 4); // 4 steps × 2×2 blocks
        for slabs in &plan.slabs {
            assert_eq!(slabs.len(), 1);
        }
        // Skew-free: every slab is exactly one (8, 8) block.
        for slabs in &plan.slabs {
            let r = &slabs[0].range;
            assert_eq!((r.x1 - r.x0, r.y1 - r.y0), (8, 8));
        }
    }

    #[test]
    fn cone_equals_oracle_on_sample_rects() {
        let plan = wf_plan();
        for rect in [
            DirtyRect { x0: 0, x1: 2, y0: 0, y1: 2 },
            DirtyRect { x0: 21, x1: 23, y0: 15, y1: 17 },
            DirtyRect { x0: 10, x1: 12, y0: 5, y1: 7 },
        ] {
            assert_eq!(dirty_cone(&plan, &[rect]), dirty_cone_oracle(&plan, &[rect]));
        }
    }

    #[test]
    fn empty_delta_dirties_nothing_full_rect_everything() {
        let plan = wf_plan();
        assert!(dirty_cone(&plan, &[]).iter().all(|&d| !d));
        let all = DirtyRect { x0: 0, x1: 23, y0: 0, y1: 17 };
        assert!(dirty_cone(&plan, &[all]).iter().all(|&d| d));
    }

    #[test]
    fn cache_mb_parsing() {
        assert_eq!(cache_mb_from(None), DEFAULT_CACHE_MB);
        assert_eq!(cache_mb_from(Some("")), DEFAULT_CACHE_MB);
        assert_eq!(cache_mb_from(Some("garbage")), DEFAULT_CACHE_MB);
        assert_eq!(cache_mb_from(Some("0")), 0);
        assert_eq!(cache_mb_from(Some("128")), 128);
        assert_eq!(cache_mb_from(Some(" 16 ")), 16);
    }

    #[test]
    fn disabled_cache_is_inert() {
        let c = TileCache::with_capacity_mb(0);
        assert!(!c.enabled());
        assert_eq!(c.begin_run(1, &[sig(1, 0, 0)], 0), None);
        c.insert(1, 0, 0, payload_of(64));
        assert!(c.lookup(1, 0, 0).is_none());
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.evictions, s.entries), (0, 0, 0, 0));
    }

    #[test]
    fn roundtrip_and_delta_diffing() {
        let c = TileCache::with_capacity_mb(4);
        // First run: cold.
        assert_eq!(c.begin_run(7, &[sig(10, 0, 0)], 99), None);
        c.insert(7, 3, 42, payload_of(64));
        c.finish_run(7, vec![sig(10, 0, 0)], 99);
        // Rerun with a moved source: delta holds old + new rects.
        let d = c.begin_run(7, &[sig(11, 5, 5)], 99).expect("warm rerun");
        assert_eq!(
            d.rects,
            vec![
                DirtyRect { x0: 0, x1: 2, y0: 0, y1: 2 },
                DirtyRect { x0: 5, x1: 7, y0: 5, y1: 7 },
            ]
        );
        assert!(!d.receivers_changed);
        assert!(c.lookup(7, 3, 42).is_some());
        assert!(c.lookup(7, 3, 41).is_none(), "mask mismatch must miss");
        c.finish_run(7, vec![sig(11, 5, 5)], 99);
        // Receiver-only change.
        let d = c.begin_run(7, &[sig(11, 5, 5)], 100).expect("warm rerun");
        assert!(d.rects.is_empty());
        assert!(d.receivers_changed);
        // Added source.
        c.finish_run(7, vec![sig(11, 5, 5)], 100);
        let d = c
            .begin_run(7, &[sig(11, 5, 5), sig(12, 9, 9)], 100)
            .expect("warm rerun");
        assert_eq!(d.rects, vec![DirtyRect { x0: 9, x1: 11, y0: 9, y1: 11 }]);
    }

    #[test]
    fn aborted_run_forces_cold_restart() {
        let c = TileCache::with_capacity_mb(4);
        assert_eq!(c.begin_run(5, &[sig(1, 0, 0)], 0), None);
        c.insert(5, 0, 0, payload_of(64));
        // No finish_run: the next begin must be cold and drop the entry.
        assert_eq!(c.begin_run(5, &[sig(1, 0, 0)], 0), None);
        assert!(c.lookup(5, 0, 0).is_none());
    }

    #[test]
    fn lru_eviction_respects_budget_and_counts() {
        let c = TileCache::with_capacity_mb(1); // 1 MiB
        assert_eq!(c.begin_run(1, &[], 0), None);
        let quarter = 256 * 1024;
        for node in 0..4u32 {
            c.insert(1, node, 0, payload_of(quarter));
        }
        assert_eq!(c.stats().bytes, 4 * quarter);
        // Touch node 0 so node 1 is the LRU victim.
        assert!(c.lookup(1, 0, 0).is_some());
        c.insert(1, 4, 0, payload_of(quarter));
        let s = c.stats();
        assert!(s.bytes <= c.capacity_bytes(), "{} > cap", s.bytes);
        assert_eq!(s.evictions, 1);
        assert!(c.lookup(1, 1, 0).is_none(), "LRU entry should be gone");
        assert!(c.lookup(1, 0, 0).is_some(), "recently-used entry survives");
        // An over-budget payload is refused outright.
        c.insert(1, 9, 0, payload_of(2 * 1024 * 1024));
        assert!(c.lookup(1, 9, 0).is_none());
    }

    #[test]
    fn tune_memo_roundtrip() {
        let c = TileCache::with_capacity_mb(1);
        assert_eq!(c.tune_lookup(3), None);
        c.tune_store(3, (16, 8));
        assert_eq!(c.tune_lookup(3), Some((16, 8)));
        let off = TileCache::with_capacity_mb(0);
        off.tune_store(3, (16, 8));
        assert_eq!(off.tune_lookup(3), None);
    }

    #[test]
    fn execute_incremental_counts_are_exact() {
        let plan = wf_plan();
        let n = plan.len();
        let restore_ok: Vec<bool> = (0..n).map(|i| i % 3 == 0).collect();
        let expected_reused = restore_ok.iter().filter(|&&b| b).count();
        let stepped = AtomicUsize::new(0);
        let restored = AtomicUsize::new(0);
        let captured = AtomicUsize::new(0);
        let out = execute_incremental(
            &plan,
            Policy::Sequential,
            &restore_ok,
            |_vt, b| {
                stepped.fetch_add(b.len(), Ordering::Relaxed);
            },
            |_i| {
                restored.fetch_add(1, Ordering::Relaxed);
            },
            |_i| {
                captured.fetch_add(1, Ordering::Relaxed);
            },
        );
        assert_eq!(out.total, n);
        assert_eq!(out.reused + out.recomputed, out.total);
        assert_eq!(out.reused, expected_reused);
        assert_eq!(restored.into_inner(), expected_reused);
        assert_eq!(captured.into_inner(), n - expected_reused);
        assert!(stepped.into_inner() > 0);
    }

    #[test]
    fn cold_execute_covers_every_point_like_plain_dataflow() {
        let shape = Shape::new(20, 14, 3);
        let plan = TilePlan::wavefront(shape, 7, &WavefrontSpec::new(8, 8, 3, 2, 3, 4), 2);
        for policy in [Policy::Sequential, Policy::Capped { threads: 2 }] {
            let total = AtomicUsize::new(0);
            let out = execute_incremental(
                &plan,
                policy,
                &vec![false; plan.len()],
                |_vt, b| {
                    total.fetch_add(b.len(), Ordering::Relaxed);
                },
                |_| {},
                |_| {},
            );
            assert_eq!(out.reused, 0);
            assert_eq!(total.into_inner(), 7 * shape.len());
        }
    }

    #[test]
    fn slab_payload_pencil_indexing() {
        let range = Range3::new((2, 5), (1, 4), (0, 4));
        let mut data = vec![0.0f32; range.len()];
        for (i, v) in data.iter_mut().enumerate() {
            *v = i as f32;
        }
        let p = SlabPayload {
            slab: Slab { vt: 0, range },
            data,
        };
        assert_eq!(p.pencil(2, 1)[0], 0.0);
        assert_eq!(p.pencil(2, 2)[0], 4.0);
        assert_eq!(p.pencil(3, 1)[0], 12.0);
        assert_eq!(p.pencil(4, 3)[3], 35.0);
    }
}
