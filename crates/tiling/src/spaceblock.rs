//! Rectangular spatial blocking (paper Fig. 4a) — the baseline schedule.
//!
//! Every timestep sweeps the full grid as a set of `(block_x, block_y)` ×
//! full-`z` blocks; blocks of one timestep are independent and run in
//! parallel. An `after_step` hook runs between timesteps — this is where the
//! classic (Listing 1) sparse source injection and receiver interpolation
//! live, which is exactly why this schedule tolerates them: "sparse
//! operators fit within space blocking as their effect is imposed after all
//! points have been updated".

use tempest_grid::{Range3, Shape};
use tempest_obs as obs;
use tempest_par::Policy;

/// Block shape of the spatially blocked schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpaceBlockSpec {
    /// Block extent along x.
    pub block_x: usize,
    /// Block extent along y.
    pub block_y: usize,
}

impl SpaceBlockSpec {
    /// Create a block spec; extents must be non-zero.
    pub fn new(block_x: usize, block_y: usize) -> Self {
        assert!(block_x > 0 && block_y > 0, "block extents must be non-zero");
        SpaceBlockSpec { block_x, block_y }
    }

    /// The blocks of one full-grid sweep.
    pub fn blocks(&self, shape: Shape) -> Vec<Range3> {
        shape.full_range().split_xy(self.block_x, self.block_y)
    }
}

/// Execute `nvt` virtual timesteps under spatial blocking.
///
/// For each `vt` in `0..nvt`: run `step(vt, block)` over all blocks (in
/// parallel under `policy`), then `after_step(vt)` on the calling thread.
pub fn execute<S, A>(
    shape: Shape,
    nvt: usize,
    spec: SpaceBlockSpec,
    policy: Policy,
    step: S,
    mut after_step: A,
) where
    S: Fn(usize, &Range3) + Sync + Send,
    A: FnMut(usize),
{
    let blocks = spec.blocks(shape);
    for vt in 0..nvt {
        let sw = obs::start(obs::Phase::Sweep);
        let _sp = obs::trace::span(obs::trace::SpanKind::Sweep, obs::trace::SpanArgs::step(vt));
        tempest_par::for_each(policy, &blocks, |b| step(vt, b));
        after_step(vt);
        obs::add(obs::Counter::SpaceSweeps, 1);
        sw.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    #[test]
    fn blocks_partition_grid() {
        let s = Shape::new(10, 7, 5);
        let spec = SpaceBlockSpec::new(4, 3);
        let blocks = spec.blocks(s);
        let covered: usize = blocks.iter().map(|b| b.len()).sum();
        assert_eq!(covered, s.len());
        for b in &blocks {
            assert_eq!((b.z0, b.z1), (0, 5), "z stays whole");
        }
    }

    #[test]
    fn execute_visits_each_point_once_per_step() {
        let s = Shape::new(8, 8, 4);
        let spec = SpaceBlockSpec::new(3, 5);
        let count = AtomicUsize::new(0);
        let after = Mutex::new(Vec::new());
        execute(
            s,
            3,
            spec,
            Policy::Sequential,
            |_vt, b| {
                count.fetch_add(b.len(), Ordering::Relaxed);
            },
            |vt| after.lock().unwrap().push(vt),
        );
        assert_eq!(count.load(Ordering::Relaxed), 3 * s.len());
        assert_eq!(*after.lock().unwrap(), vec![0, 1, 2]);
    }

    #[test]
    fn after_step_runs_after_all_blocks_of_that_step() {
        // Track a per-step block count; after_step must observe the full
        // count of its own step.
        let s = Shape::new(16, 16, 2);
        let spec = SpaceBlockSpec::new(4, 4);
        let nblocks = spec.blocks(s).len();
        let in_step = AtomicUsize::new(0);
        let mut seen = Vec::new();
        {
            let seen_ref = &mut seen;
            execute(
                s,
                2,
                spec,
                Policy::Parallel,
                |_vt, _b| {
                    in_step.fetch_add(1, Ordering::SeqCst);
                },
                |_vt| {
                    seen_ref.push(in_step.swap(0, Ordering::SeqCst));
                },
            );
        }
        assert_eq!(seen, vec![nblocks, nblocks]);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn rejects_zero_blocks() {
        let _ = SpaceBlockSpec::new(0, 4);
    }
}
