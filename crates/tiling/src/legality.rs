//! Schedule legality checking.
//!
//! The paper's §I.A argues why naive temporal blocking of loops with sparse
//! operators is incorrect: "a sparse operator update may be computed, and
//! points that have not yet been updated through the stencil kernel updates
//! may be affected" (Fig. 4b). This module makes such arguments machine-
//! checkable: it replays a schedule (a sequence of [`Slab`]s) against an
//! abstract dependency model and reports the first violation.
//!
//! The model: computing virtual step `vt` of column `(x, y)` (the `z` pencil
//! is never split, so columns are the dependency unit)
//!
//! 1. must happen in order: the column's previous computed step is `vt − 1`;
//! 2. requires every neighbour column within the stencil `radius` to have
//!    computed step `vt − 1` already (flow dependency, Fig. 1);
//! 3. requires no neighbour to have advanced beyond `vt + levels − 1`,
//!    where `levels` is the circular time-buffer depth — otherwise the
//!    `vt − 1` value it must read has been overwritten (Fig. 7's "the green
//!    value substitutes the yellow one" is only safe behind the wave-front).

use crate::wavefront::Slab;
use tempest_grid::{Array2, Shape};

/// Dependency model of a propagator for legality checking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DepModel {
    /// Maximum dependency radius in grid points (per virtual step).
    pub radius: usize,
    /// Circular time-buffer depth (2 for first-order, 3 for second-order).
    pub levels: usize,
}

/// A detected schedule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// A column was asked to compute step `got` when its next step is
    /// `expected` (skipped or repeated work).
    OutOfOrder {
        /// Column coordinates.
        at: (usize, usize),
        /// The step the schedule tried to compute.
        got: usize,
        /// The step the column actually needs next.
        expected: usize,
    },
    /// A neighbour had not yet produced the `vt − 1` value a step reads.
    MissingDependency {
        /// Column being computed.
        at: (usize, usize),
        /// Virtual step being computed.
        vt: usize,
        /// The neighbour that lags behind.
        neighbor: (usize, usize),
        /// The neighbour's progress (completed steps).
        neighbor_progress: usize,
    },
    /// A neighbour had already overwritten the buffer slot holding the
    /// `vt − 1` value a step reads.
    OverwrittenDependency {
        /// Column being computed.
        at: (usize, usize),
        /// Virtual step being computed.
        vt: usize,
        /// The neighbour that ran too far ahead.
        neighbor: (usize, usize),
        /// The neighbour's progress (completed steps).
        neighbor_progress: usize,
    },
    /// Not every column reached `nvt` at the end of the schedule.
    Incomplete {
        /// Column left behind.
        at: (usize, usize),
        /// Steps it completed.
        progress: usize,
        /// Steps required.
        required: usize,
    },
}

/// Replay `schedule` over `shape` and verify it computes `nvt` steps of
/// every column without violating `model`.
pub fn check_schedule<I>(
    shape: Shape,
    nvt: usize,
    model: DepModel,
    schedule: I,
) -> Result<(), Violation>
where
    I: IntoIterator<Item = Slab>,
{
    assert!(model.levels >= 2, "time buffers have at least 2 levels");
    let mut progress = Array2::<usize>::zeros(shape.nx, shape.ny);
    let r = model.radius as isize;
    for slab in schedule {
        let rg = slab.range;
        // Phase 1: validate without mutating (a slab's columns advance
        // together; same-slab neighbours legitimately still show `vt`).
        for x in rg.x0..rg.x1 {
            for y in rg.y0..rg.y1 {
                let p = progress.get(x, y);
                if p != slab.vt {
                    return Err(Violation::OutOfOrder {
                        at: (x, y),
                        got: slab.vt,
                        expected: p,
                    });
                }
                if slab.vt == 0 {
                    continue; // step 0 reads only initial conditions
                }
                for dx in -r..=r {
                    for dy in -r..=r {
                        let nx = x as isize + dx;
                        let ny = y as isize + dy;
                        if nx < 0 || ny < 0 || nx >= shape.nx as isize || ny >= shape.ny as isize
                        {
                            continue; // halo: constant, no dependency
                        }
                        let np = progress.get(nx as usize, ny as usize);
                        if np < slab.vt {
                            return Err(Violation::MissingDependency {
                                at: (x, y),
                                vt: slab.vt,
                                neighbor: (nx as usize, ny as usize),
                                neighbor_progress: np,
                            });
                        }
                        if np > slab.vt + model.levels - 1 {
                            return Err(Violation::OverwrittenDependency {
                                at: (x, y),
                                vt: slab.vt,
                                neighbor: (nx as usize, ny as usize),
                                neighbor_progress: np,
                            });
                        }
                    }
                }
            }
        }
        // Phase 2: commit.
        for x in rg.x0..rg.x1 {
            for y in rg.y0..rg.y1 {
                progress.set(x, y, slab.vt + 1);
            }
        }
    }
    for x in 0..shape.nx {
        for y in 0..shape.ny {
            let p = progress.get(x, y);
            if p != nvt {
                return Err(Violation::Incomplete {
                    at: (x, y),
                    progress: p,
                    required: nvt,
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wavefront::{slabs, WavefrontSpec};
    use tempest_grid::Range3;

    const SHAPE: Shape = Shape {
        nx: 24,
        ny: 20,
        nz: 4,
    };

    fn wf(tile_x: usize, tile_t: usize, skew: usize) -> Vec<Slab> {
        slabs(
            SHAPE,
            9,
            &WavefrontSpec::new(tile_x, tile_x, tile_t, skew, 4, 4),
        )
    }

    #[test]
    fn wavefront_with_sufficient_skew_is_legal() {
        for radius in [1usize, 2, 4] {
            for levels in [2usize, 3] {
                for tile_t in [2usize, 4, 8] {
                    let sched = wf(8, tile_t, radius);
                    let res = check_schedule(
                        SHAPE,
                        9,
                        DepModel { radius, levels },
                        sched,
                    );
                    assert_eq!(
                        res,
                        Ok(()),
                        "radius {radius}, levels {levels}, tile_t {tile_t}"
                    );
                }
            }
        }
    }

    #[test]
    fn extra_skew_is_also_legal() {
        // skew > radius only wastes a little work-space, never correctness.
        let sched = wf(8, 4, 4);
        assert_eq!(
            check_schedule(SHAPE, 9, DepModel { radius: 2, levels: 3 }, sched),
            Ok(())
        );
    }

    #[test]
    fn insufficient_skew_is_caught() {
        // radius 2 but skew 1: the wave-front angle is too shallow (Fig. 7
        // violated).
        let sched = wf(8, 4, 1);
        let res = check_schedule(SHAPE, 9, DepModel { radius: 2, levels: 3 }, sched);
        assert!(
            matches!(res, Err(Violation::MissingDependency { .. })),
            "{res:?}"
        );
    }

    #[test]
    fn rectangular_time_tiles_are_illegal() {
        // skew 0 with tile_t > 1 is the naive space-time rectangle of
        // Fig. 4b: a block advances in time while its neighbour has not been
        // updated.
        let sched = wf(8, 4, 0);
        let res = check_schedule(SHAPE, 9, DepModel { radius: 1, levels: 3 }, sched);
        assert!(
            matches!(res, Err(Violation::MissingDependency { .. })),
            "{res:?}"
        );
    }

    #[test]
    fn pointwise_updates_allow_any_tiling() {
        // radius 0 (no spatial coupling): even rectangular time tiles pass.
        let sched = wf(8, 4, 0);
        assert_eq!(
            check_schedule(SHAPE, 9, DepModel { radius: 0, levels: 2 }, sched),
            Ok(())
        );
    }

    #[test]
    fn spatial_blocking_is_legal() {
        // Per-timestep full sweeps (vt-major order).
        let mut sched = Vec::new();
        for vt in 0..6 {
            for b in SHAPE.full_range().split_xy(8, 8) {
                sched.push(Slab { vt, range: b });
            }
        }
        assert_eq!(
            check_schedule(SHAPE, 6, DepModel { radius: 4, levels: 2 }, sched),
            Ok(())
        );
    }

    #[test]
    fn skipping_a_step_is_out_of_order() {
        let full = SHAPE.full_range();
        let sched = vec![
            Slab { vt: 0, range: full },
            Slab { vt: 2, range: full }, // skipped vt 1
        ];
        let res = check_schedule(SHAPE, 3, DepModel { radius: 1, levels: 3 }, sched);
        assert!(matches!(
            res,
            Err(Violation::OutOfOrder {
                got: 2,
                expected: 1,
                ..
            })
        ));
    }

    #[test]
    fn buffer_overrun_is_caught() {
        // One half of the grid races 4 steps ahead with only 2 buffer
        // levels: its writes destroy values the lagging half still needs.
        let left = Range3::new((0, 12), (0, SHAPE.ny), (0, SHAPE.nz));
        let right = Range3::new((12, SHAPE.nx), (0, SHAPE.ny), (0, SHAPE.nz));
        let mut sched = Vec::new();
        for vt in 0..4 {
            sched.push(Slab { vt, range: left });
        }
        for vt in 0..4 {
            sched.push(Slab { vt, range: right });
        }
        let res = check_schedule(SHAPE, 4, DepModel { radius: 0, levels: 2 }, sched.clone());
        // radius 0: decoupled columns, legal.
        assert_eq!(res, Ok(()));
        let res = check_schedule(SHAPE, 4, DepModel { radius: 1, levels: 2 }, sched);
        // With coupling the right half reads garbage: missing dep fires
        // (the left ran ahead — for the left's *own* columns the right is
        // missing, caught at the left's vt=1 slab).
        assert!(res.is_err(), "{res:?}");
    }

    #[test]
    fn incomplete_schedule_reported() {
        let sched = vec![Slab {
            vt: 0,
            range: SHAPE.full_range(),
        }];
        let res = check_schedule(SHAPE, 2, DepModel { radius: 1, levels: 3 }, sched);
        assert!(matches!(res, Err(Violation::Incomplete { .. })));
    }

    #[test]
    fn overwrite_violation_variant_reachable() {
        // Force the specific OverwrittenDependency variant: two columns,
        // radius 1, levels 2. Column A computes 0,1,2 then B computes 0 —
        // B@0 has no deps; B@1 needs A's value at vt 0, overwritten by A@2.
        let shape = Shape::new(2, 1, 1);
        let a = Range3::new((0, 1), (0, 1), (0, 1));
        let b = Range3::new((1, 2), (0, 1), (0, 1));
        let first = Slab { vt: 0, range: a };
        // A@1 would trip MissingDependency; instead give A a private
        // first phase: schedule B@0 before A@1.
        let sched = {
            let mut s = vec![first];
            s.push(Slab { vt: 0, range: b });
            s.push(Slab { vt: 1, range: a });
            s.push(Slab { vt: 2, range: a }); // needs B@1 → missing…
            s
        };
        // The simplest reachable overwrite: radius 0 for A's own advance,
        // then check B@1 against levels=2 when A progressed to 3.
        let res = check_schedule(shape, 3, DepModel { radius: 1, levels: 2 }, sched);
        assert!(res.is_err());
    }
}
