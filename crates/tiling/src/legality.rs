//! Schedule legality checking.
//!
//! The paper's §I.A argues why naive temporal blocking of loops with sparse
//! operators is incorrect: "a sparse operator update may be computed, and
//! points that have not yet been updated through the stencil kernel updates
//! may be affected" (Fig. 4b). This module makes such arguments machine-
//! checkable: it replays a schedule (a sequence of [`Slab`]s) against an
//! abstract dependency model and reports the first violation.
//!
//! The model: computing virtual step `vt` of column `(x, y)` (the `z` pencil
//! is never split, so columns are the dependency unit)
//!
//! 1. must happen in order: the column's previous computed step is `vt − 1`;
//! 2. requires every neighbour column within the stencil `radius` to have
//!    computed step `vt − 1` already (flow dependency, Fig. 1);
//! 3. requires no neighbour to have advanced beyond `vt + levels − 1`,
//!    where `levels` is the circular time-buffer depth — otherwise the
//!    `vt − 1` value it must read has been overwritten (Fig. 7's "the green
//!    value substitutes the yellow one" is only safe behind the wave-front).

use crate::diamond::{diamond_slab, diamond_tile_graph, DiamondSpec, DiamondTile};
use crate::wavefront::{diagonals, tile_graph, tile_slab, Slab, Tile, WavefrontSpec};
use tempest_grid::{Array2, Shape};

/// Dependency model of a propagator for legality checking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DepModel {
    /// Maximum dependency radius in grid points (per virtual step).
    pub radius: usize,
    /// Circular time-buffer depth (2 for first-order, 3 for second-order).
    pub levels: usize,
}

/// A detected schedule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// A column was asked to compute step `got` when its next step is
    /// `expected` (skipped or repeated work).
    OutOfOrder {
        /// Column coordinates.
        at: (usize, usize),
        /// The step the schedule tried to compute.
        got: usize,
        /// The step the column actually needs next.
        expected: usize,
    },
    /// A neighbour had not yet produced the `vt − 1` value a step reads.
    MissingDependency {
        /// Column being computed.
        at: (usize, usize),
        /// Virtual step being computed.
        vt: usize,
        /// The neighbour that lags behind.
        neighbor: (usize, usize),
        /// The neighbour's progress (completed steps).
        neighbor_progress: usize,
    },
    /// A neighbour had already overwritten the buffer slot holding the
    /// `vt − 1` value a step reads.
    OverwrittenDependency {
        /// Column being computed.
        at: (usize, usize),
        /// Virtual step being computed.
        vt: usize,
        /// The neighbour that ran too far ahead.
        neighbor: (usize, usize),
        /// The neighbour's progress (completed steps).
        neighbor_progress: usize,
    },
    /// Not every column reached `nvt` at the end of the schedule.
    Incomplete {
        /// Column left behind.
        at: (usize, usize),
        /// Steps it completed.
        progress: usize,
        /// Steps required.
        required: usize,
    },
}

/// Replay `schedule` over `shape` and verify it computes `nvt` steps of
/// every column without violating `model`.
pub fn check_schedule<I>(
    shape: Shape,
    nvt: usize,
    model: DepModel,
    schedule: I,
) -> Result<(), Violation>
where
    I: IntoIterator<Item = Slab>,
{
    assert!(model.levels >= 2, "time buffers have at least 2 levels");
    let mut progress = Array2::<usize>::zeros(shape.nx, shape.ny);
    let r = model.radius as isize;
    for slab in schedule {
        let rg = slab.range;
        // Phase 1: validate without mutating (a slab's columns advance
        // together; same-slab neighbours legitimately still show `vt`).
        for x in rg.x0..rg.x1 {
            for y in rg.y0..rg.y1 {
                let p = progress.get(x, y);
                if p != slab.vt {
                    return Err(Violation::OutOfOrder {
                        at: (x, y),
                        got: slab.vt,
                        expected: p,
                    });
                }
                if slab.vt == 0 {
                    continue; // step 0 reads only initial conditions
                }
                for dx in -r..=r {
                    for dy in -r..=r {
                        let nx = x as isize + dx;
                        let ny = y as isize + dy;
                        if nx < 0 || ny < 0 || nx >= shape.nx as isize || ny >= shape.ny as isize
                        {
                            continue; // halo: constant, no dependency
                        }
                        let np = progress.get(nx as usize, ny as usize);
                        if np < slab.vt {
                            return Err(Violation::MissingDependency {
                                at: (x, y),
                                vt: slab.vt,
                                neighbor: (nx as usize, ny as usize),
                                neighbor_progress: np,
                            });
                        }
                        if np > slab.vt + model.levels - 1 {
                            return Err(Violation::OverwrittenDependency {
                                at: (x, y),
                                vt: slab.vt,
                                neighbor: (nx as usize, ny as usize),
                                neighbor_progress: np,
                            });
                        }
                    }
                }
            }
        }
        // Phase 2: commit.
        for x in rg.x0..rg.x1 {
            for y in rg.y0..rg.y1 {
                progress.set(x, y, slab.vt + 1);
            }
        }
    }
    for x in 0..shape.nx {
        for y in 0..shape.ny {
            let p = progress.get(x, y);
            if p != nvt {
                return Err(Violation::Incomplete {
                    at: (x, y),
                    progress: p,
                    required: nvt,
                });
            }
        }
    }
    Ok(())
}

/// A dependency conflict between two tiles scheduled concurrently on the
/// same anti-diagonal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiagonalConflict {
    /// The reading/writing tile.
    pub tile_a: Tile,
    /// Its virtual step.
    pub vt_a: usize,
    /// The concurrently writing tile.
    pub tile_b: Tile,
    /// Its virtual step.
    pub vt_b: usize,
    /// `true` when the conflict is a same-ring-slot write/write overlap,
    /// `false` when tile B writes a slot tile A concurrently reads.
    pub write_write: bool,
}

/// Do the x/y footprints of two slabs overlap? (`z` is always full.)
fn xy_overlap(a: &Slab, b: &Slab) -> bool {
    a.range.x0 < b.range.x1
        && b.range.x0 < a.range.x1
        && a.range.y0 < b.range.y1
        && b.range.y0 < a.range.y1
}

/// A slab grown by the stencil radius in x and y, clamped to the grid —
/// the footprint its step *reads* at the previous virtual step.
fn dilate(shape: Shape, r: usize, s: &Slab) -> Slab {
    Slab {
        vt: s.vt,
        range: tempest_grid::Range3::new(
            (s.range.x0.saturating_sub(r), (s.range.x1 + r).min(shape.nx)),
            (s.range.y0.saturating_sub(r), (s.range.y1 + r).min(shape.ny)),
            (s.range.z0, s.range.z1),
        ),
    }
}

/// May tiles `a` and `b` run concurrently with *no ordering between them*?
///
/// The slot-aware pairwise test shared by [`check_diagonal_independence`]
/// and [`check_dataflow_dependencies`]. Concurrency means tile A executing
/// step `va` may coincide with tile B at any step `vb`. Writing step `v`
/// targets ring slot `v mod levels` and reading step `v` touches every
/// *other* slot, so for each `(va, vb)` pair:
///
/// * `va ≡ vb (mod levels)` — only a write/write overlap on the shared slot
///   could race, so the two write footprints must be spatially disjoint;
/// * otherwise — B writes a slot among A's reads, so B's write footprint
///   must miss A's read footprint (its slab dilated by `radius`).
///
/// Checks actual clamped footprints (certifying boundary tiles); clamping
/// only shrinks regions and can never create an overlap the unclamped
/// geometry excludes.
fn tile_pair_conflict(
    shape: Shape,
    model: DepModel,
    spec: &WavefrontSpec,
    a: &Tile,
    b: &Tile,
) -> Option<DiagonalConflict> {
    let slabs_of = |t: &Tile| -> Vec<Slab> {
        (t.t0..t.t1)
            .filter_map(|vt| tile_slab(shape, spec, t, vt))
            .collect()
    };
    let (sa, sb) = (slabs_of(a), slabs_of(b));
    for (a, b, sa, sb) in [(a, b, &sa, &sb), (b, a, &sb, &sa)] {
        if let Some((vt_a, vt_b, write_write)) = slab_lists_conflict(shape, model, sa, sb) {
            return Some(DiagonalConflict {
                tile_a: *a,
                vt_a,
                tile_b: *b,
                vt_b,
                write_write,
            });
        }
    }
    None
}

/// The slot-aware conflict test over two tiles' slab sequences, one
/// direction: does some slab of A (reading) collide with some slab of B
/// (writing)? Callers check both orderings. Shared by the wavefront and
/// diamond pairwise tests.
fn slab_lists_conflict(
    shape: Shape,
    model: DepModel,
    a_slabs: &[Slab],
    b_slabs: &[Slab],
) -> Option<(usize, usize, bool)> {
    for sa in a_slabs {
        let ra = dilate(shape, model.radius, sa);
        for sb in b_slabs {
            let write_write = sa.vt % model.levels == sb.vt % model.levels;
            let conflict = if write_write {
                xy_overlap(sa, sb)
            } else {
                xy_overlap(&ra, sb)
            };
            if conflict {
                return Some((sa.vt, sb.vt, write_write));
            }
        }
    }
    None
}

/// Verify that every pair of same-diagonal tiles under `spec` is
/// dependency-disjoint — the soundness condition of
/// [`crate::wavefront::execute_diagonal`].
///
/// Tiles on one anti-diagonal run concurrently with no ordering between
/// them, so tile A executing step `va` may coincide with tile B executing
/// any step `vb` of the same time tile. Writing step `v` targets ring slot
/// `v mod levels`, and reading step `v` touches every *other* slot (the
/// `levels − 1` preceding values). Hence for each pair and each `(va, vb)`:
///
/// * `va ≡ vb (mod levels)` — B writes the one slot A does not read; only a
///   write/write overlap on the same slot could race, so the two write
///   footprints must be spatially disjoint.
/// * otherwise — B's written slot is among A's read slots, so B's write
///   footprint must be disjoint from A's read footprint (its slab dilated
///   by `radius` in x and y, clamped to the grid).
///
/// Geometrically both hold whenever `skew ≥ radius`: same-diagonal tiles
/// recede in opposite senses along the diagonal, so their footprints can
/// only touch at equal step offsets — where the slot arithmetic separates
/// them. This function checks the actual clamped footprints, so it also
/// certifies boundary tiles. Domain clamping only shrinks regions and can
/// never create an overlap that the unclamped geometry excludes.
pub fn check_diagonal_independence(
    shape: Shape,
    nvt: usize,
    model: DepModel,
    spec: &WavefrontSpec,
) -> Result<(), DiagonalConflict> {
    assert!(model.levels >= 2, "time buffers have at least 2 levels");
    let mut t0 = 0usize;
    while t0 < nvt {
        let t1 = (t0 + spec.tile_t).min(nvt);
        for group in diagonals(shape, spec, t0, t1) {
            for (i, a) in group.iter().enumerate() {
                for b in &group[i + 1..] {
                    if let Some(c) = tile_pair_conflict(shape, model, spec, a, b) {
                        return Err(c);
                    }
                }
            }
        }
        t0 = t1;
    }
    Ok(())
}

/// A violation of the dataflow schedule's soundness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataflowViolation {
    /// The dependency graph is cyclic — this tile can never become ready.
    /// Only reachable for `skew < radius`, where same-row neighbours read
    /// each other's previous step in both directions.
    Cycle {
        /// A tile left with unsatisfiable predecessors.
        tile: Tile,
    },
    /// A topological serialisation of the graph fails the replay oracle —
    /// the predecessor sets miss a flow dependency.
    Replay(Violation),
    /// Two tiles the graph leaves unordered (neither is an ancestor of the
    /// other, so they may run concurrently) have conflicting footprints.
    Unordered(DiagonalConflict),
}

/// Validate the predecessor sets [`tile_graph`] builds for `spec` against
/// the replay oracle — the soundness condition of
/// [`crate::wavefront::execute_dataflow`].
///
/// Three facts together certify *every* execution order the dataflow
/// executor can produce:
///
/// 1. the graph is acyclic (Kahn's algorithm consumes every node);
/// 2. one topological serialisation replays cleanly through
///    [`check_schedule`] — so that particular order is legal;
/// 3. every *unordered* pair of tiles passes the slot-aware pairwise
///    conflict test — so adjacent tiles in any legal order commute, and
///    every other topological order replays identically.
///
/// Point 3 is also where ring-buffer anti-dependencies are discharged: the
/// graph carries only flow edges (overwrite hazards are transitively
/// implied by chains of them), and this check machine-verifies that claim
/// for the given `model.levels` rather than trusting the argument.
pub fn check_dataflow_dependencies(
    shape: Shape,
    nvt: usize,
    model: DepModel,
    spec: &WavefrontSpec,
) -> Result<(), DataflowViolation> {
    assert!(model.levels >= 2, "time buffers have at least 2 levels");
    let (tiles, preds) = tile_graph(shape, nvt, spec, model.radius);
    let order = match kahn_order(&preds) {
        Ok(o) => o,
        Err(stuck) => return Err(DataflowViolation::Cycle { tile: tiles[stuck] }),
    };
    let mut sched = Vec::new();
    for &i in &order {
        let t = &tiles[i as usize];
        for vt in t.t0..t.t1 {
            if let Some(s) = tile_slab(shape, spec, t, vt) {
                sched.push(s);
            }
        }
    }
    check_schedule(shape, nvt, model, sched).map_err(DataflowViolation::Replay)?;
    for (i, j) in unordered_pairs(&order, &preds) {
        if let Some(c) = tile_pair_conflict(shape, model, spec, &tiles[i], &tiles[j]) {
            return Err(DataflowViolation::Unordered(c));
        }
    }
    Ok(())
}

/// Kahn's algorithm over predecessor lists: a topological order, or on a
/// cycle the index of a node left with unsatisfiable predecessors.
fn kahn_order(preds: &[Vec<u32>]) -> Result<Vec<u32>, usize> {
    let n = preds.len();
    let mut indeg: Vec<usize> = preds.iter().map(Vec::len).collect();
    let mut succs: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (i, ps) in preds.iter().enumerate() {
        for &p in ps {
            succs[p as usize].push(i as u32);
        }
    }
    let mut order = Vec::with_capacity(n);
    let mut queue: std::collections::VecDeque<u32> =
        (0..n as u32).filter(|&i| indeg[i as usize] == 0).collect();
    while let Some(i) = queue.pop_front() {
        order.push(i);
        for &s in &succs[i as usize] {
            indeg[s as usize] -= 1;
            if indeg[s as usize] == 0 {
                queue.push_back(s);
            }
        }
    }
    if order.len() != n {
        return Err((0..n).find(|&i| indeg[i] > 0).expect("cycle has a stuck node"));
    }
    Ok(order)
}

/// The node pairs the graph leaves unordered — neither is an ancestor of
/// the other, so the executor may run them concurrently. Computed via
/// ancestor-closure bitsets built in topological order.
fn unordered_pairs(order: &[u32], preds: &[Vec<u32>]) -> Vec<(usize, usize)> {
    let n = preds.len();
    let words = n.div_ceil(64);
    let mut anc = vec![0u64; n * words];
    for &i in order {
        let i = i as usize;
        for &p in &preds[i] {
            let p = p as usize;
            for w in 0..words {
                let v = anc[p * words + w];
                anc[i * words + w] |= v;
            }
            anc[i * words + p / 64] |= 1u64 << (p % 64);
        }
    }
    let is_anc = |x: usize, of: usize| (anc[of * words + x / 64] >> (x % 64)) & 1 == 1;
    let mut out = Vec::new();
    for i in 0..n {
        for j in i + 1..n {
            if !is_anc(i, j) && !is_anc(j, i) {
                out.push((i, j));
            }
        }
    }
    out
}

/// A dependency conflict between two diamond tiles the graph leaves
/// unordered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiamondConflict {
    /// The reading/writing tile.
    pub tile_a: DiamondTile,
    /// Its virtual step.
    pub vt_a: usize,
    /// The concurrently writing tile.
    pub tile_b: DiamondTile,
    /// Its virtual step.
    pub vt_b: usize,
    /// `true` for a same-ring-slot write/write overlap, `false` when tile B
    /// writes a slot tile A concurrently reads.
    pub write_write: bool,
}

/// A violation of the diamond schedule's soundness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiamondViolation {
    /// The dependency graph is cyclic — this tile can never become ready.
    /// Reachable for `slope < radius` (adjacent same-row diamonds read each
    /// other's previous step in both directions) or `cross_skew < radius`
    /// (likewise for adjacent cross windows) — i.e. for diamond base widths
    /// below `2·radius·tile_t`.
    Cycle {
        /// A tile left with unsatisfiable predecessors.
        tile: DiamondTile,
    },
    /// A topological serialisation of the graph fails the replay oracle —
    /// the predecessor sets miss a flow dependency.
    Replay(Violation),
    /// Two tiles the graph leaves unordered have conflicting footprints.
    Unordered(DiamondConflict),
}

/// Validate the predecessor sets [`diamond_tile_graph`] builds for `spec`
/// against the replay oracle — the soundness condition of
/// [`crate::diamond::execute_diamond`], mirroring
/// [`check_dataflow_dependencies`]:
///
/// 1. the graph is acyclic (Kahn's algorithm consumes every node);
/// 2. one topological serialisation replays cleanly through
///    [`check_schedule`];
/// 3. every unordered pair of tiles passes the slot-aware pairwise conflict
///    test, so every other topological order replays identically.
///
/// As for the dataflow checker, point 3 discharges the ring-buffer
/// anti-dependencies the flow-only graph leaves implicit. Specs with
/// `slope < radius` (diamond width below `2·radius·tile_t`) or
/// `cross_skew < radius` fail with [`DiamondViolation::Cycle`].
pub fn check_diamond_dependencies(
    shape: Shape,
    nvt: usize,
    model: DepModel,
    spec: &DiamondSpec,
) -> Result<(), DiamondViolation> {
    assert!(model.levels >= 2, "time buffers have at least 2 levels");
    let (tiles, preds) = diamond_tile_graph(shape, nvt, spec, model.radius);
    let order = match kahn_order(&preds) {
        Ok(o) => o,
        Err(stuck) => return Err(DiamondViolation::Cycle { tile: tiles[stuck] }),
    };
    let mut sched = Vec::new();
    for &i in &order {
        let t = &tiles[i as usize];
        for vt in t.t0..t.t1 {
            if let Some(s) = diamond_slab(shape, spec, t, vt) {
                sched.push(s);
            }
        }
    }
    check_schedule(shape, nvt, model, sched).map_err(DiamondViolation::Replay)?;
    let slabs_of = |t: &DiamondTile| -> Vec<Slab> {
        (t.t0..t.t1)
            .filter_map(|vt| diamond_slab(shape, spec, t, vt))
            .collect()
    };
    let all_slabs: Vec<Vec<Slab>> = tiles.iter().map(slabs_of).collect();
    for (i, j) in unordered_pairs(&order, &preds) {
        for (a, b) in [(i, j), (j, i)] {
            if let Some((vt_a, vt_b, write_write)) =
                slab_lists_conflict(shape, model, &all_slabs[a], &all_slabs[b])
            {
                return Err(DiamondViolation::Unordered(DiamondConflict {
                    tile_a: tiles[a],
                    vt_a,
                    tile_b: tiles[b],
                    vt_b,
                    write_write,
                }));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wavefront::{diagonal_slabs, slabs};
    use tempest_grid::Range3;

    const SHAPE: Shape = Shape {
        nx: 24,
        ny: 20,
        nz: 4,
    };

    fn wf(tile_x: usize, tile_t: usize, skew: usize) -> Vec<Slab> {
        slabs(
            SHAPE,
            9,
            &WavefrontSpec::new(tile_x, tile_x, tile_t, skew, 4, 4),
        )
    }

    #[test]
    fn wavefront_with_sufficient_skew_is_legal() {
        for radius in [1usize, 2, 4] {
            for levels in [2usize, 3] {
                for tile_t in [2usize, 4, 8] {
                    let sched = wf(8, tile_t, radius);
                    let res = check_schedule(
                        SHAPE,
                        9,
                        DepModel { radius, levels },
                        sched,
                    );
                    assert_eq!(
                        res,
                        Ok(()),
                        "radius {radius}, levels {levels}, tile_t {tile_t}"
                    );
                }
            }
        }
    }

    #[test]
    fn extra_skew_is_also_legal() {
        // skew > radius only wastes a little work-space, never correctness.
        let sched = wf(8, 4, 4);
        assert_eq!(
            check_schedule(SHAPE, 9, DepModel { radius: 2, levels: 3 }, sched),
            Ok(())
        );
    }

    #[test]
    fn insufficient_skew_is_caught() {
        // radius 2 but skew 1: the wave-front angle is too shallow (Fig. 7
        // violated).
        let sched = wf(8, 4, 1);
        let res = check_schedule(SHAPE, 9, DepModel { radius: 2, levels: 3 }, sched);
        assert!(
            matches!(res, Err(Violation::MissingDependency { .. })),
            "{res:?}"
        );
    }

    #[test]
    fn rectangular_time_tiles_are_illegal() {
        // skew 0 with tile_t > 1 is the naive space-time rectangle of
        // Fig. 4b: a block advances in time while its neighbour has not been
        // updated.
        let sched = wf(8, 4, 0);
        let res = check_schedule(SHAPE, 9, DepModel { radius: 1, levels: 3 }, sched);
        assert!(
            matches!(res, Err(Violation::MissingDependency { .. })),
            "{res:?}"
        );
    }

    #[test]
    fn pointwise_updates_allow_any_tiling() {
        // radius 0 (no spatial coupling): even rectangular time tiles pass.
        let sched = wf(8, 4, 0);
        assert_eq!(
            check_schedule(SHAPE, 9, DepModel { radius: 0, levels: 2 }, sched),
            Ok(())
        );
    }

    #[test]
    fn spatial_blocking_is_legal() {
        // Per-timestep full sweeps (vt-major order).
        let mut sched = Vec::new();
        for vt in 0..6 {
            for b in SHAPE.full_range().split_xy(8, 8) {
                sched.push(Slab { vt, range: b });
            }
        }
        assert_eq!(
            check_schedule(SHAPE, 6, DepModel { radius: 4, levels: 2 }, sched),
            Ok(())
        );
    }

    #[test]
    fn skipping_a_step_is_out_of_order() {
        let full = SHAPE.full_range();
        let sched = vec![
            Slab { vt: 0, range: full },
            Slab { vt: 2, range: full }, // skipped vt 1
        ];
        let res = check_schedule(SHAPE, 3, DepModel { radius: 1, levels: 3 }, sched);
        assert!(matches!(
            res,
            Err(Violation::OutOfOrder {
                got: 2,
                expected: 1,
                ..
            })
        ));
    }

    #[test]
    fn buffer_overrun_is_caught() {
        // One half of the grid races 4 steps ahead with only 2 buffer
        // levels: its writes destroy values the lagging half still needs.
        let left = Range3::new((0, 12), (0, SHAPE.ny), (0, SHAPE.nz));
        let right = Range3::new((12, SHAPE.nx), (0, SHAPE.ny), (0, SHAPE.nz));
        let mut sched = Vec::new();
        for vt in 0..4 {
            sched.push(Slab { vt, range: left });
        }
        for vt in 0..4 {
            sched.push(Slab { vt, range: right });
        }
        let res = check_schedule(SHAPE, 4, DepModel { radius: 0, levels: 2 }, sched.clone());
        // radius 0: decoupled columns, legal.
        assert_eq!(res, Ok(()));
        let res = check_schedule(SHAPE, 4, DepModel { radius: 1, levels: 2 }, sched);
        // With coupling the right half reads garbage: missing dep fires
        // (the left ran ahead — for the left's *own* columns the right is
        // missing, caught at the left's vt=1 slab).
        assert!(res.is_err(), "{res:?}");
    }

    #[test]
    fn diagonal_serialisation_passes_replay_checker() {
        // The canonical diagonal-major serialisation is a valid schedule by
        // the independent replay-based checker.
        for (radius, levels, tile_t) in [(1usize, 3usize, 4usize), (2, 3, 4), (2, 2, 2), (4, 3, 8)]
        {
            let spec = WavefrontSpec::new(8, 8, tile_t, radius, 4, 4);
            let sched = diagonal_slabs(SHAPE, 9, &spec);
            assert_eq!(
                check_schedule(SHAPE, 9, DepModel { radius, levels }, sched),
                Ok(()),
                "radius {radius} levels {levels} tile_t {tile_t}"
            );
        }
    }

    #[test]
    fn diagonal_independence_holds_for_legal_skew() {
        for radius in [0usize, 1, 2, 4] {
            for levels in [2usize, 3] {
                for tile_t in [1usize, 2, 4, 8] {
                    let spec = WavefrontSpec::new(8, 8, tile_t, radius.max(1), 4, 4);
                    assert_eq!(
                        check_diagonal_independence(SHAPE, 9, DepModel { radius, levels }, &spec),
                        Ok(()),
                        "radius {radius} levels {levels} tile_t {tile_t}"
                    );
                }
            }
        }
    }

    #[test]
    fn diagonal_independence_rejects_shallow_skew() {
        // skew < radius: a tile one step ahead has not receded past its
        // diagonal neighbour's read halo.
        let spec = WavefrontSpec::new(8, 8, 4, 1, 4, 4);
        let model = DepModel {
            radius: 2,
            levels: 3,
        };
        let res = check_diagonal_independence(SHAPE, 9, model, &spec);
        let c = res.expect_err("shallow skew must conflict");
        assert_eq!(c.tile_a.diagonal(), c.tile_b.diagonal());
        assert!(!c.write_write);
        assert_ne!(c.vt_a, c.vt_b, "conflicts only arise between step offsets");
    }

    #[test]
    fn diagonal_independence_randomised_specs() {
        // Property test: any spec with skew ≥ radius is diagonal-safe, and
        // every random interleaving of same-diagonal tile streams replays
        // cleanly through check_schedule. With skew < radius (and real
        // coupling plus tile_t ≥ 2) a conflict must be reported.
        let mut rng = tempest_grid::Rng64::new(0xD1A6);
        for case in 0..40 {
            let radius = rng.range_usize(0, 4);
            let levels = rng.range_usize(2, 4);
            let tile = rng.range_usize(2, 12);
            let tile_t = rng.range_usize(1, 6);
            let skew = radius + rng.range_usize(0, 3);
            let nvt = rng.range_usize(1, 9);
            let shape = Shape::new(rng.range_usize(8, 28), rng.range_usize(8, 28), 2);
            let spec = WavefrontSpec::new(tile, tile, tile_t, skew, 4, 4);
            let model = DepModel { radius, levels };
            assert_eq!(
                check_diagonal_independence(shape, nvt, model, &spec),
                Ok(()),
                "case {case}: {spec:?} radius {radius} levels {levels}"
            );
            // Random interleaving of the concurrent tiles on each diagonal.
            let mut sched = Vec::new();
            let mut t0 = 0usize;
            while t0 < nvt {
                let t1 = (t0 + spec.tile_t).min(nvt);
                for group in crate::wavefront::diagonals(shape, &spec, t0, t1) {
                    let mut pos: Vec<usize> = vec![t0; group.len()];
                    let mut remaining: usize = group.len() * (t1 - t0);
                    while remaining > 0 {
                        let k = rng.range_usize(0, group.len());
                        if pos[k] == t1 {
                            continue;
                        }
                        if let Some(s) = tile_slab(shape, &spec, &group[k], pos[k]) {
                            sched.push(s);
                        }
                        pos[k] += 1;
                        remaining -= 1;
                    }
                }
                t0 = t1;
            }
            assert_eq!(
                check_schedule(shape, nvt, model, sched),
                Ok(()),
                "case {case}: interleaved diagonal serialisation"
            );
        }
        // Illegal side: skew strictly below radius.
        for case in 0..20 {
            let radius = rng.range_usize(1, 5);
            let skew = rng.range_usize(0, radius);
            let tile_t = rng.range_usize(2, 6);
            let tile = rng.range_usize(2, 10);
            let spec = WavefrontSpec::new(tile, tile, tile_t, skew, 4, 4);
            let model = DepModel { radius, levels: 3 };
            let shape = Shape::new(24, 24, 2);
            assert!(
                check_diagonal_independence(shape, 8, model, &spec).is_err(),
                "case {case}: skew {skew} < radius {radius} must conflict ({spec:?})"
            );
        }
    }

    #[test]
    fn dataflow_dependencies_legal_for_sufficient_skew() {
        for radius in [0usize, 1, 2, 4] {
            for levels in [2usize, 3] {
                for tile_t in [1usize, 2, 4, 8] {
                    let spec = WavefrontSpec::new(8, 8, tile_t, radius.max(1), 4, 4);
                    assert_eq!(
                        check_dataflow_dependencies(SHAPE, 9, DepModel { radius, levels }, &spec),
                        Ok(()),
                        "radius {radius} levels {levels} tile_t {tile_t}"
                    );
                }
            }
        }
    }

    #[test]
    fn dataflow_dependencies_reject_shallow_skew() {
        // skew < radius makes same-row neighbours read each other's previous
        // step in both directions: a dependency cycle.
        let spec = WavefrontSpec::new(8, 8, 4, 1, 4, 4);
        let model = DepModel {
            radius: 2,
            levels: 3,
        };
        let res = check_dataflow_dependencies(SHAPE, 9, model, &spec);
        assert!(
            matches!(res, Err(DataflowViolation::Cycle { .. })),
            "{res:?}"
        );
    }

    /// Brute-force predecessor sets by definition: B precedes A iff for some
    /// step `va ≥ 1` of A, B's slab at `va - 1` intersects the dilated
    /// footprint of A's slab at `va`.
    fn brute_force_preds(
        shape: Shape,
        spec: &WavefrontSpec,
        radius: usize,
        tiles: &[Tile],
    ) -> Vec<Vec<u32>> {
        let mut preds = vec![Vec::new(); tiles.len()];
        for (ia, a) in tiles.iter().enumerate() {
            for (ib, b) in tiles.iter().enumerate() {
                if ia == ib {
                    continue;
                }
                'pair: for va in a.t0.max(1)..a.t1 {
                    let vb = va - 1;
                    if !(b.t0..b.t1).contains(&vb) {
                        continue;
                    }
                    let (Some(sa), Some(sb)) = (
                        tile_slab(shape, spec, a, va),
                        tile_slab(shape, spec, b, vb),
                    ) else {
                        continue;
                    };
                    if xy_overlap(&dilate(shape, radius, &sa), &sb) {
                        preds[ia].push(ib as u32);
                        break 'pair;
                    }
                }
            }
        }
        preds
    }

    #[test]
    fn tile_graph_preds_are_exactly_the_halo_writers() {
        // Property test (satellite): every tile's predecessor set equals the
        // brute-force "slabs overlapping its read halo one step earlier"
        // set, across randomised specs — boundary tiles, clipped rows and
        // tile_t = 1 included — and the whole graph passes the replay-backed
        // dataflow validator.
        let mut rng = tempest_grid::Rng64::new(0xDF10);
        for case in 0..40 {
            let radius = rng.range_usize(0, 4);
            let levels = rng.range_usize(2, 4);
            let tile = rng.range_usize(2, 12);
            let tile_t = rng.range_usize(1, 6);
            let skew = radius + rng.range_usize(0, 3);
            let nvt = rng.range_usize(1, 9);
            let shape = Shape::new(rng.range_usize(8, 28), rng.range_usize(8, 28), 2);
            let spec = WavefrontSpec::new(tile, tile, tile_t, skew, 4, 4);
            let (tiles, preds) = tile_graph(shape, nvt, &spec, radius);
            let expect = brute_force_preds(shape, &spec, radius, &tiles);
            assert_eq!(
                preds, expect,
                "case {case}: {spec:?} radius {radius} nvt {nvt} shape {shape:?}"
            );
            assert_eq!(
                check_dataflow_dependencies(shape, nvt, DepModel { radius, levels }, &spec),
                Ok(()),
                "case {case}: {spec:?} radius {radius} levels {levels}"
            );
        }
    }

    #[test]
    fn tile_graph_tile_t_one_links_consecutive_steps() {
        // tile_t = 1 degenerates to space blocking: each row is one step,
        // and a tile's preds are its own cell plus radius-neighbours in the
        // previous row.
        let spec = WavefrontSpec::new(8, 8, 1, 1, 4, 4);
        let (tiles, preds) = tile_graph(SHAPE, 3, &spec, 1);
        for (ia, a) in tiles.iter().enumerate() {
            if a.t0 == 0 {
                assert!(preds[ia].is_empty());
            } else {
                // Own predecessor cell is always among the preds.
                assert!(preds[ia]
                    .iter()
                    .map(|&ib| &tiles[ib as usize])
                    .any(|b| b.xt == a.xt && b.yt == a.yt && b.t1 == a.t0));
            }
        }
    }

    /// Brute-force diamond predecessor sets by definition: B precedes A iff
    /// for some step `va ≥ 1` of A, B's slab at `va − 1` intersects the
    /// dilated footprint of A's slab at `va`.
    fn brute_force_diamond_preds(
        shape: Shape,
        spec: &DiamondSpec,
        radius: usize,
        tiles: &[DiamondTile],
    ) -> Vec<Vec<u32>> {
        let mut preds = vec![Vec::new(); tiles.len()];
        for (ia, a) in tiles.iter().enumerate() {
            for (ib, b) in tiles.iter().enumerate() {
                if ia == ib {
                    continue;
                }
                'pair: for va in a.t0.max(1)..a.t1 {
                    let vb = va - 1;
                    if !(b.t0..b.t1).contains(&vb) {
                        continue;
                    }
                    let (Some(sa), Some(sb)) = (
                        diamond_slab(shape, spec, a, va),
                        diamond_slab(shape, spec, b, vb),
                    ) else {
                        continue;
                    };
                    if xy_overlap(&dilate(shape, radius, &sa), &sb) {
                        preds[ia].push(ib as u32);
                        break 'pair;
                    }
                }
            }
        }
        preds
    }

    #[test]
    fn diamond_dependencies_legal_for_sufficient_slope() {
        use crate::diamond::DiamondAxis;
        for radius in [0usize, 1, 2, 4] {
            for levels in [2usize, 3] {
                for tile_t in [1usize, 2, 3] {
                    let spec = DiamondSpec::new(
                        tile_t,
                        radius.max(1),
                        8,
                        radius,
                        4,
                        4,
                        DiamondAxis::X,
                    );
                    assert_eq!(
                        check_diamond_dependencies(SHAPE, 9, DepModel { radius, levels }, &spec),
                        Ok(()),
                        "radius {radius} levels {levels} tile_t {tile_t}"
                    );
                }
            }
        }
    }

    #[test]
    fn diamond_graph_preds_are_exactly_the_halo_writers() {
        // Property test (satellite): every diamond tile's predecessor set
        // equals the brute-force "slabs overlapping its read halo one step
        // earlier" set across randomised specs — boundary half-diamonds,
        // clipped cross windows and tile_t = 1 included — and the whole
        // graph passes the replay-backed validator.
        use crate::diamond::{diamond_tile_graph, DiamondAxis};
        let mut rng = tempest_grid::Rng64::new(0xD1AD);
        for case in 0..40 {
            let radius = rng.range_usize(0, 4);
            let levels = rng.range_usize(2, 4);
            let tile_t = rng.range_usize(1, 5);
            let slope = radius.max(1) + rng.range_usize(0, 3);
            let tile_c = rng.range_usize(2, 12);
            let cross_skew = radius + rng.range_usize(0, 3);
            let nvt = rng.range_usize(1, 9);
            let axis = if rng.range_usize(0, 2) == 0 {
                DiamondAxis::X
            } else {
                DiamondAxis::Y
            };
            let shape = Shape::new(rng.range_usize(8, 28), rng.range_usize(8, 28), 2);
            let spec = DiamondSpec::new(tile_t, slope, tile_c, cross_skew, 4, 4, axis);
            let (tiles, preds) = diamond_tile_graph(shape, nvt, &spec, radius);
            let expect = brute_force_diamond_preds(shape, &spec, radius, &tiles);
            assert_eq!(
                preds, expect,
                "case {case}: {spec:?} radius {radius} nvt {nvt} shape {shape:?}"
            );
            assert_eq!(
                check_diamond_dependencies(shape, nvt, DepModel { radius, levels }, &spec),
                Ok(()),
                "case {case}: {spec:?} radius {radius} levels {levels} nvt {nvt}"
            );
        }
    }

    #[test]
    fn diamond_dependencies_reject_shallow_slope() {
        // slope < radius — a diamond base width below 2·radius·tile_t —
        // makes adjacent same-row diamonds read each other's previous step
        // in both directions: a dependency cycle.
        use crate::diamond::DiamondAxis;
        let spec = DiamondSpec::new(2, 1, 8, 2, 4, 4, DiamondAxis::X);
        let model = DepModel {
            radius: 2,
            levels: 3,
        };
        assert!(spec.width() < 2 * model.radius * spec.tile_t);
        let res = check_diamond_dependencies(SHAPE, 4, model, &spec);
        assert!(matches!(res, Err(DiamondViolation::Cycle { .. })), "{res:?}");
    }

    #[test]
    fn diamond_dependencies_reject_shallow_slope_randomised() {
        use crate::diamond::DiamondAxis;
        let mut rng = tempest_grid::Rng64::new(0xD1AE);
        for case in 0..20 {
            let radius = rng.range_usize(2, 5);
            let slope = rng.range_usize(1, radius);
            let tile_t = rng.range_usize(2, 5);
            let spec = DiamondSpec::new(tile_t, slope, 8, radius, 4, 4, DiamondAxis::X);
            assert!(spec.width() < 2 * radius * tile_t);
            let shape = Shape::new(32, 24, 2);
            let res = check_diamond_dependencies(
                shape,
                2 * tile_t,
                DepModel { radius, levels: 3 },
                &spec,
            );
            assert!(
                res.is_err(),
                "case {case}: width {} < {} must be rejected ({spec:?})",
                spec.width(),
                2 * radius * tile_t
            );
        }
    }

    #[test]
    fn diamond_dependencies_reject_shallow_cross_skew() {
        // A legal diamond width but cross_skew < radius: adjacent cross
        // windows read each other's previous step in both directions.
        use crate::diamond::DiamondAxis;
        let spec = DiamondSpec::new(2, 2, 4, 0, 4, 4, DiamondAxis::X);
        let model = DepModel {
            radius: 2,
            levels: 3,
        };
        let res = check_diamond_dependencies(SHAPE, 4, model, &spec);
        assert!(matches!(res, Err(DiamondViolation::Cycle { .. })), "{res:?}");
    }

    #[test]
    fn incomplete_schedule_reported() {
        let sched = vec![Slab {
            vt: 0,
            range: SHAPE.full_range(),
        }];
        let res = check_schedule(SHAPE, 2, DepModel { radius: 1, levels: 3 }, sched);
        assert!(matches!(res, Err(Violation::Incomplete { .. })));
    }

    #[test]
    fn overwrite_violation_variant_reachable() {
        // Force the specific OverwrittenDependency variant: two columns,
        // radius 1, levels 2. Column A computes 0,1,2 then B computes 0 —
        // B@0 has no deps; B@1 needs A's value at vt 0, overwritten by A@2.
        let shape = Shape::new(2, 1, 1);
        let a = Range3::new((0, 1), (0, 1), (0, 1));
        let b = Range3::new((1, 2), (0, 1), (0, 1));
        let first = Slab { vt: 0, range: a };
        // A@1 would trip MissingDependency; instead give A a private
        // first phase: schedule B@0 before A@1.
        let sched = {
            let mut s = vec![first];
            s.push(Slab { vt: 0, range: b });
            s.push(Slab { vt: 1, range: a });
            s.push(Slab { vt: 2, range: a }); // needs B@1 → missing…
            s
        };
        // The simplest reachable overwrite: radius 0 for A's own advance,
        // then check B@1 against levels=2 when A progressed to 3.
        let res = check_schedule(shape, 3, DepModel { radius: 1, levels: 2 }, sched);
        assert!(res.is_err());
    }
}
