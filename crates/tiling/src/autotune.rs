//! Auto-tuning of tile and block shapes (paper §IV.C).
//!
//! "The parameter space for temporal blocking schemes is extensive … we
//! swept over the whole parameter space to find the global performance
//! maxima." This module provides the sweep: a candidate generator covering
//! the shapes the paper reports in Table I (tiles 32–256, blocks 4–16) plus
//! temporal heights, and a driver that times a user-supplied runner on each
//! candidate and returns the ranking.

use std::time::Duration;

use crate::diamond::DiamondAxis;
use tempest_stencil::Backend;

/// One tunable schedule configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Candidate {
    /// Spatial tile extent along x. For diamond candidates this doubles as
    /// the diamond base width (the diamond axis extent).
    pub tile_x: usize,
    /// Spatial tile extent along y. For diamond candidates this doubles as
    /// the cross-axis window extent.
    pub tile_y: usize,
    /// Temporal tile height in *timesteps* (the runner converts to virtual
    /// steps for multi-phase propagators).
    pub tile_t: usize,
    /// Intra-slab block extent along x.
    pub block_x: usize,
    /// Intra-slab block extent along y.
    pub block_y: usize,
    /// Use the diagonal-parallel tile executor instead of slab-ordered
    /// execution (same tile geometry, coarser parallel grain).
    pub diagonal: bool,
    /// Use the dependency-driven (dataflow) tile executor: same tile
    /// geometry, whole-sweep work stealing with a single join instead of
    /// per-diagonal barriers. Mutually exclusive with `diagonal`.
    pub dataflow: bool,
    /// Use the diamond (MWD) schedule on the chosen axis. Mutually
    /// exclusive with `diagonal` and `dataflow`.
    pub diamond: Option<DiamondAxis>,
    /// Pin the row-update kernel backend for this candidate; `None` leaves
    /// the runner's default (usually the runtime-detected best) in place.
    pub kernel: Option<Backend>,
}

impl Candidate {
    /// The same tile geometry with the diagonal-parallel executor.
    pub fn with_diagonal(mut self) -> Self {
        self.diagonal = true;
        self.dataflow = false;
        self.diamond = None;
        self
    }

    /// The same tile geometry with the dataflow executor.
    pub fn with_dataflow(mut self) -> Self {
        self.dataflow = true;
        self.diagonal = false;
        self.diamond = None;
        self
    }

    /// The same geometry with the diamond schedule on `axis` (`tile_x` read
    /// as the diamond width, `tile_y` as the cross window).
    pub fn with_diamond(mut self, axis: DiamondAxis) -> Self {
        self.diamond = Some(axis);
        self.diagonal = false;
        self.dataflow = false;
        self
    }

    /// The same schedule pinned to a specific kernel backend.
    pub fn with_kernel(mut self, backend: Backend) -> Self {
        self.kernel = Some(backend);
        self
    }
}

impl std::fmt::Display for Candidate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "tile {}x{} t{} / block {}x{}{}{}",
            self.tile_x,
            self.tile_y,
            self.tile_t,
            self.block_x,
            self.block_y,
            if self.diagonal { " / diag" } else { "" },
            if self.dataflow { " / dflow" } else { "" }
        )?;
        if let Some(axis) = self.diamond {
            write!(f, " / dmnd-{}", axis.name())?;
        }
        if let Some(backend) = self.kernel {
            write!(f, " / k-{}", backend.name())?;
        }
        Ok(())
    }
}

/// Duplicate each candidate with an executor variant produced by `make`:
/// the shared generator behind [`with_diagonal_variants`] and
/// [`with_dataflow_variants`], keeping base and variant adjacent so sweep
/// output reads pairwise.
fn with_variants(cands: &[Candidate], make: impl Fn(Candidate) -> Candidate) -> Vec<Candidate> {
    let mut out = Vec::with_capacity(cands.len() * 2);
    for &c in cands {
        out.push(c);
        out.push(make(c));
    }
    out
}

/// Duplicate each candidate with the diagonal-parallel executor enabled, so
/// a sweep compares both execution modes over the same tile geometries.
pub fn with_diagonal_variants(cands: &[Candidate]) -> Vec<Candidate> {
    with_variants(cands, Candidate::with_diagonal)
}

/// Duplicate each candidate with the dataflow executor enabled, so a sweep
/// compares barrier-free execution over the same tile geometries. Input
/// candidates already using another tile executor keep their geometry but
/// the variant still switches to dataflow (the flags are exclusive).
pub fn with_dataflow_variants(cands: &[Candidate]) -> Vec<Candidate> {
    with_variants(cands, Candidate::with_dataflow)
}

/// Extend the sweep along the kernel-backend axis: every candidate gains
/// one variant per *available* backend (unavailable ones — e.g. AVX2 on a
/// host without it — are skipped, not failed). Bases keep `kernel: None`
/// so the runner's default stays in the ranking as its own row.
pub fn with_kernel_variants(cands: &[Candidate]) -> Vec<Candidate> {
    let mut out = Vec::with_capacity(cands.len() * (1 + Backend::ALL.len()));
    for &c in cands {
        out.push(c);
        for b in Backend::ALL {
            if b.available() {
                out.push(c.with_kernel(b));
            }
        }
    }
    out
}

/// Extend the sweep with diamond-schedule variants: every candidate whose
/// `tile_x` is a legal diamond width for the given stencil — divisible by
/// `2·tile_t·phases` with a slope quotient ≥ `radius` (the
/// `width ≥ 2·radius·tile_t` legality bound) — gains one variant per axis
/// choice. Bases are kept, so the measured tie-breaking of
/// [`autotune_measured`] decides between skewed and diamond tiling on equal
/// geometry.
pub fn with_diamond_variants(cands: &[Candidate], radius: usize, phases: usize) -> Vec<Candidate> {
    let mut out = cands.to_vec();
    for &c in cands {
        let tv = (c.tile_t * phases).max(1);
        if c.tile_x % (2 * tv) == 0 && c.tile_x / (2 * tv) >= radius.max(1) {
            out.push(c.with_diamond(DiamondAxis::X));
            out.push(c.with_diamond(DiamondAxis::Y));
        }
    }
    out
}

/// One candidate measurement: wall-clock plus (when the observability layer
/// recorded the run) the measured barrier-wait share of total timed work.
#[derive(Debug, Clone, Copy)]
pub struct Measurement {
    /// Wall-clock time of the candidate run.
    pub time: Duration,
    /// Barrier-wait share ∈ [0, 1] from `tempest_obs::Profile`, `None` when
    /// profiling was off (the sweep then degrades to time-only ranking).
    pub barrier_share: Option<f64>,
}

impl Measurement {
    /// Time-only measurement (no telemetry available).
    pub fn time_only(time: Duration) -> Self {
        Measurement {
            time,
            barrier_share: None,
        }
    }
}

/// Outcome of a telemetry-aware tuning sweep.
#[derive(Debug, Clone)]
pub struct MeasuredResult {
    /// The winning candidate after time ranking + barrier tie-breaking.
    pub best: Candidate,
    /// Its measurement.
    pub best_measurement: Measurement,
    /// Every `(candidate, measurement)` pair, in sweep order.
    pub all: Vec<(Candidate, Measurement)>,
}

/// Outcome of a tuning sweep.
#[derive(Debug, Clone)]
pub struct TuneResult {
    /// The fastest candidate.
    pub best: Candidate,
    /// Its measured time.
    pub best_time: Duration,
    /// Every `(candidate, time)` pair measured, in sweep order.
    pub all: Vec<(Candidate, Duration)>,
}

/// The default sweep grid, pruned to the problem size.
///
/// Tiles ∈ {8, 16, 32, 64, 128, 256} (square, clipped to the grid),
/// temporal heights ∈ `tile_ts`, blocks ∈ {4, 8, 16} — a superset of the
/// ranges from which every Table I optimum is drawn. The small-tile end
/// matters on machines whose effective cache for temporal reuse is an L2 of
/// a few MB rather than a large LLC.
pub fn default_candidates(nx: usize, ny: usize, tile_ts: &[usize]) -> Vec<Candidate> {
    let mut out = Vec::new();
    let tiles = [8usize, 16, 32, 64, 128, 256];
    let blocks = [4usize, 8, 16];
    for &tx in &tiles {
        if tx > nx.max(32) {
            continue;
        }
        for &tt in tile_ts {
            for &bx in &blocks {
                if bx > tx {
                    continue;
                }
                out.push(Candidate {
                    tile_x: tx,
                    tile_y: tx.min(ny.max(32)),
                    tile_t: tt,
                    block_x: bx,
                    block_y: bx,
                    ..Candidate::default()
                });
            }
        }
    }
    out
}

/// A small sweep for quick runs (harness `--fast` mode and tests).
pub fn quick_candidates(nx: usize, ny: usize, tile_ts: &[usize]) -> Vec<Candidate> {
    let mut out = Vec::new();
    for &tx in &[8usize, 16, 64] {
        if tx > nx.max(32) {
            continue;
        }
        for &tt in tile_ts {
            out.push(Candidate {
                tile_x: tx,
                tile_y: tx.min(ny.max(32)),
                tile_t: tt,
                block_x: 8,
                block_y: 8,
                ..Candidate::default()
            });
        }
    }
    out
}

/// Candidates for per-shot *space-blocked* solves — the schedule family the
/// survey engine tunes once per batch and reuses for every shot sharing the
/// model (checkpointed RTM pins shots to `Schedule::SpaceBlocked`, so only
/// the block shape is free). Tile fields are left at the whole-grid default;
/// `tile_t` stays 1.
pub fn spaceblock_candidates(nx: usize, ny: usize) -> Vec<Candidate> {
    let mut out = Vec::new();
    for &b in &[4usize, 8, 16, 32] {
        if b > nx.max(8) || b > ny.max(8) {
            continue;
        }
        out.push(Candidate {
            block_x: b,
            block_y: b,
            ..Candidate::default()
        });
    }
    out
}

/// Time every candidate with `runner` and return the ranking.
///
/// # Panics
/// If `candidates` is empty.
pub fn autotune<F>(candidates: &[Candidate], mut runner: F) -> TuneResult
where
    F: FnMut(&Candidate) -> Duration,
{
    assert!(!candidates.is_empty(), "no candidates to tune over");
    let mut all = Vec::with_capacity(candidates.len());
    for &c in candidates {
        let t = runner(&c);
        all.push((c, t));
    }
    let (best, best_time) = all
        .iter()
        .min_by_key(|(_, t)| *t)
        .map(|&(c, t)| (c, t))
        .unwrap();
    TuneResult {
        best,
        best_time,
        all,
    }
}

/// Telemetry-aware sweep: rank by wall-clock, then break near-ties on
/// measured barrier-wait share.
///
/// All candidates within `tie_margin` (relative, e.g. `0.03` = 3%) of the
/// fastest time form the tie set; among them the one with the lowest
/// barrier-wait share wins — synchronisation cost predicts how a schedule
/// scales beyond the sweep's thread count, so between a slab and a diagonal
/// candidate that time the same, prefer the one that waited less. Candidates
/// without telemetry (`barrier_share: None`) sort after those with it inside
/// the tie set. With profiling off everywhere this reduces to plain
/// time-only `autotune` ranking.
///
/// # Panics
/// If `candidates` is empty.
pub fn autotune_measured<F>(
    candidates: &[Candidate],
    mut runner: F,
    tie_margin: f64,
) -> MeasuredResult
where
    F: FnMut(&Candidate) -> Measurement,
{
    assert!(!candidates.is_empty(), "no candidates to tune over");
    let mut all = Vec::with_capacity(candidates.len());
    for &c in candidates {
        let m = runner(&c);
        all.push((c, m));
    }
    let fastest = all.iter().map(|(_, m)| m.time).min().unwrap();
    let cutoff = fastest.as_secs_f64() * (1.0 + tie_margin.max(0.0));
    let (best, best_measurement) = all
        .iter()
        .filter(|(_, m)| m.time.as_secs_f64() <= cutoff)
        .min_by(|(_, a), (_, b)| {
            let ka = (a.barrier_share.is_none(), a.barrier_share.unwrap_or(f64::MAX));
            let kb = (b.barrier_share.is_none(), b.barrier_share.unwrap_or(f64::MAX));
            ka.partial_cmp(&kb)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.time.cmp(&b.time))
        })
        .map(|&(c, m)| (c, m))
        .unwrap();
    MeasuredResult {
        best,
        best_measurement,
        all,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn autotune_picks_minimum() {
        let cands = default_candidates(256, 256, &[8, 16]);
        assert!(!cands.is_empty());
        // Synthetic cost: prefer tile 64 / block 8 / tt 16.
        let res = autotune(&cands, |c| {
            let cost = (c.tile_x as i64 - 64).unsigned_abs()
                + (c.block_x as i64 - 8).unsigned_abs() * 10
                + (c.tile_t as i64 - 16).unsigned_abs();
            Duration::from_nanos(1000 + cost)
        });
        assert_eq!(res.best.tile_x, 64);
        assert_eq!(res.best.block_x, 8);
        assert_eq!(res.best.tile_t, 16);
        assert_eq!(res.all.len(), cands.len());
    }

    #[test]
    fn candidates_pruned_to_grid() {
        let cands = default_candidates(64, 64, &[8]);
        assert!(cands.iter().all(|c| c.tile_x <= 64));
        assert!(cands.iter().all(|c| c.block_x <= c.tile_x));
    }

    #[test]
    fn quick_sweep_is_small() {
        let q = quick_candidates(256, 256, &[8, 16]);
        assert!(q.len() <= 9);
        assert!(!q.is_empty());
    }

    #[test]
    fn display_formats() {
        let c = Candidate {
            tile_x: 64,
            tile_y: 64,
            tile_t: 8,
            block_x: 8,
            block_y: 8,
            ..Candidate::default()
        };
        assert_eq!(format!("{c}"), "tile 64x64 t8 / block 8x8");
        assert_eq!(format!("{}", c.with_diagonal()), "tile 64x64 t8 / block 8x8 / diag");
        assert_eq!(format!("{}", c.with_dataflow()), "tile 64x64 t8 / block 8x8 / dflow");
        assert_eq!(
            format!("{}", c.with_diamond(DiamondAxis::Y)),
            "tile 64x64 t8 / block 8x8 / dmnd-y"
        );
        // The executor flags are exclusive: switching one clears the others.
        assert!(!c.with_diagonal().with_dataflow().diagonal);
        assert!(!c.with_dataflow().with_diagonal().dataflow);
        assert!(c.with_diamond(DiamondAxis::X).with_dataflow().diamond.is_none());
        assert!(!c.with_dataflow().with_diamond(DiamondAxis::X).dataflow);
    }

    #[test]
    fn diagonal_variants_double_the_sweep() {
        let base = quick_candidates(64, 64, &[4, 8]);
        let both = with_diagonal_variants(&base);
        assert_eq!(both.len(), 2 * base.len());
        assert_eq!(both.iter().filter(|c| c.diagonal).count(), base.len());
        // Geometry is preserved; only the executor flag differs.
        for pair in both.chunks(2) {
            let (a, b) = (pair[0], pair[1]);
            assert!(!a.diagonal && b.diagonal);
            assert_eq!(a.with_diagonal(), b);
        }
    }

    #[test]
    fn dataflow_variants_double_the_sweep() {
        let base = quick_candidates(64, 64, &[4, 8]);
        let both = with_dataflow_variants(&base);
        assert_eq!(both.len(), 2 * base.len());
        assert_eq!(both.iter().filter(|c| c.dataflow).count(), base.len());
        for pair in both.chunks(2) {
            let (a, b) = (pair[0], pair[1]);
            assert!(!a.dataflow && b.dataflow && !b.diagonal);
            assert_eq!(a.with_dataflow(), b);
        }
    }

    #[test]
    fn diamond_variants_extend_only_legal_widths() {
        // Base width must be divisible by 2·tile_t·phases with slope ≥
        // radius; illegal geometries keep only their base candidate.
        let base = quick_candidates(64, 64, &[4, 8]); // tiles 8, 16, 64
        let out = with_diamond_variants(&base, 2, 1);
        // Legal at radius 2: tile 64 t4 (slope 8), tile 64 t8 (slope 4),
        // tile 16 t4 (slope 2). Illegal: tile 16 t8 and tile 8 t4 (slope 1),
        // tile 8 t8 (width not divisible by 2·tile_t).
        let diamonds: Vec<_> = out.iter().filter(|c| c.diamond.is_some()).collect();
        assert_eq!(out.len(), base.len() + diamonds.len());
        assert!(!diamonds.is_empty());
        for c in &diamonds {
            let slope = c.tile_x / (2 * c.tile_t);
            assert_eq!(c.tile_x % (2 * c.tile_t), 0);
            assert!(slope >= 2, "{c}");
            assert!(!c.diagonal && !c.dataflow);
        }
        // Both axes appear for each legal geometry.
        assert_eq!(
            diamonds.iter().filter(|c| c.diamond == Some(DiamondAxis::X)).count(),
            diamonds.iter().filter(|c| c.diamond == Some(DiamondAxis::Y)).count()
        );
        // Multi-phase propagators tighten the bound: with phases = 2 the
        // same base set loses the slope-2 geometries.
        let out2 = with_diamond_variants(&base, 2, 2);
        assert!(out2.iter().filter(|c| c.diamond.is_some()).count() < diamonds.len());
    }

    #[test]
    #[should_panic(expected = "no candidates")]
    fn empty_candidates_rejected() {
        let _ = autotune(&[], |_| Duration::ZERO);
    }

    #[test]
    fn measured_breaks_ties_on_barrier_share() {
        let slab = quick_candidates(64, 64, &[4])[0];
        let diag = slab.with_diagonal();
        // Diagonal is 1% slower but waits far less at barriers: within a 3%
        // margin the lower barrier share must win.
        let res = autotune_measured(
            &[slab, diag],
            |c| Measurement {
                time: Duration::from_micros(if c.diagonal { 1010 } else { 1000 }),
                barrier_share: Some(if c.diagonal { 0.05 } else { 0.40 }),
            },
            0.03,
        );
        assert!(res.best.diagonal);
        assert_eq!(res.all.len(), 2);

        // Outside the margin, raw time wins regardless of barrier share.
        let res = autotune_measured(
            &[slab, diag],
            |c| Measurement {
                time: Duration::from_micros(if c.diagonal { 1200 } else { 1000 }),
                barrier_share: Some(if c.diagonal { 0.05 } else { 0.40 }),
            },
            0.03,
        );
        assert!(!res.best.diagonal);
    }

    #[test]
    fn measured_without_telemetry_matches_time_only() {
        let cands = quick_candidates(64, 64, &[4, 8]);
        let cost = |c: &Candidate| {
            Duration::from_nanos(1000 + (c.tile_x as u64).abs_diff(16) + c.tile_t as u64)
        };
        let plain = autotune(&cands, |c| cost(c));
        let measured = autotune_measured(&cands, |c| Measurement::time_only(cost(c)), 0.0);
        assert_eq!(plain.best, measured.best);
        assert_eq!(plain.best_time, measured.best_measurement.time);
    }

    #[test]
    fn measured_prefers_telemetry_inside_tie_set() {
        let cands = quick_candidates(64, 64, &[4]);
        let a = cands[0];
        let b = a.with_diagonal();
        // Equal times; only one candidate has telemetry — it wins the tie.
        let res = autotune_measured(
            &[a, b],
            |c| Measurement {
                time: Duration::from_micros(1000),
                barrier_share: c.diagonal.then_some(0.2),
            },
            0.03,
        );
        assert!(res.best.diagonal);
        assert_eq!(res.best_measurement.barrier_share, Some(0.2));
    }
}
