//! Wave-front temporal blocking (paper §II.B, Figs. 7–8).
//!
//! The space-time iteration domain `(vt, x, y)` (the contiguous `z` axis is
//! never tiled — it stays whole for SIMD, Listing 4) is split into
//! parallelogram tiles:
//!
//! * `(tile_x, tile_y)` spatial tile extents (Table I's `tile_x, tile_y`),
//! * `tile_t` *virtual* timesteps of temporal height,
//! * a skew of `skew` points per virtual step — the wave-front angle. It
//!   must be at least the stencil's dependency radius ("the stencil radius
//!   affects the wavefront angle; the angle gets steeper with a higher
//!   stencil radius", Fig. 7). Multi-phase (staggered) propagators express
//!   each intra-timestep phase as its own virtual step, which widens the
//!   effective angle exactly as Fig. 8b prescribes.
//!
//! Execution order: time tiles are outermost and sequential; inside a time
//! tile, spatial tiles run in lexicographic `(xt, yt)` order; inside a tile,
//! virtual time ascends and each slab (the tile cross-section at one `vt`,
//! shifted left by `skew·Δt`) is decomposed into `(block_x, block_y)` blocks
//! that may run in parallel. Legality for any `skew ≥ radius` and circular
//! buffers of ≥ 2 levels is established by the checker in
//! [`crate::legality`] and by bitwise-equivalence tests against the
//! spatially blocked schedule in `tempest-core`.
//!
//! [`execute_diagonal`] coarsens the parallel grain from intra-slab blocks
//! to whole space-time tiles: within a time tile, spatial tiles on the same
//! anti-diagonal `d = xt + yt` have pairwise-disjoint dependency footprints
//! whenever `skew ≥ radius` (each tile recedes by `skew` per step, so a tile
//! running ahead of a diagonal neighbour has already moved out of its read
//! halo — [`crate::legality::check_diagonal_independence`] proves this per
//! spec). Diagonals run in ascending order with a barrier between them and
//! every tile of one diagonal runs concurrently, its `vt` range sequential
//! inside. One barrier per diagonal instead of one per slab cuts the number
//! of synchronisation points by roughly `tile_t×` while keeping the
//! wavefield bitwise identical (each pencil is still computed whole, in the
//! same z-order, with the same fused sparse work at the same `vt`).
//!
//! [`execute_dataflow`] removes the per-diagonal barriers as well: the
//! space-time tiles of the *whole sweep* become nodes of a dependency graph
//! ([`tile_graph`]) whose edges are the exact stencil flow dependencies
//! (tile B precedes tile A iff some slab of B at step `va - 1` intersects
//! the `radius`-dilated footprint of A's slab at step `va`), and
//! `tempest_par::run_dataflow` drives it with dependency counters and
//! per-worker deques — the only global synchronisation left is one join at
//! the end of the sweep. Anti-dependencies (ring-buffer overwrites) are
//! transitively implied by the flow edges, which
//! [`crate::legality::check_dataflow_dependencies`] verifies per spec.

use std::collections::HashMap;

use tempest_grid::{Range3, Shape};
use tempest_obs as obs;
use tempest_par::Policy;

/// Parameters of the wave-front temporally blocked schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WavefrontSpec {
    /// Spatial tile extent along x.
    pub tile_x: usize,
    /// Spatial tile extent along y.
    pub tile_y: usize,
    /// Temporal tile height, in virtual steps.
    pub tile_t: usize,
    /// Wave-front skew per virtual step (≥ max dependency radius).
    pub skew: usize,
    /// Intra-slab block extent along x.
    pub block_x: usize,
    /// Intra-slab block extent along y.
    pub block_y: usize,
}

impl WavefrontSpec {
    /// Create a spec; all extents must be non-zero (skew may be zero only
    /// for radius-0 pointwise updates).
    pub fn new(
        tile_x: usize,
        tile_y: usize,
        tile_t: usize,
        skew: usize,
        block_x: usize,
        block_y: usize,
    ) -> Self {
        assert!(
            tile_x > 0 && tile_y > 0 && tile_t > 0 && block_x > 0 && block_y > 0,
            "tile/block extents must be non-zero"
        );
        WavefrontSpec {
            tile_x,
            tile_y,
            tile_t,
            skew,
            block_x,
            block_y,
        }
    }

    /// Pure time-skewing (Wonnacott-style): a single spatial tile covering
    /// the whole skewed domain, so only the wave-front angle reorders the
    /// iteration space. Useful as an ablation against proper tiling.
    pub fn skewed_only(shape: Shape, tile_t: usize, skew: usize, block_x: usize, block_y: usize) -> Self {
        let tile_x = shape.nx + (tile_t.saturating_sub(1)) * skew;
        let tile_y = shape.ny + (tile_t.saturating_sub(1)) * skew;
        WavefrontSpec::new(tile_x.max(1), tile_y.max(1), tile_t, skew, block_x, block_y)
    }

    /// Number of spatial tiles along x needed to cover the skewed domain.
    pub fn tiles_x(&self, nx: usize) -> usize {
        (nx + (self.tile_t - 1) * self.skew).div_ceil(self.tile_x)
    }

    /// Number of spatial tiles along y needed to cover the skewed domain.
    pub fn tiles_y(&self, ny: usize) -> usize {
        (ny + (self.tile_t - 1) * self.skew).div_ceil(self.tile_y)
    }
}

/// One wave-front slab: the cross-section of a space-time tile at a single
/// virtual step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Slab {
    /// Virtual timestep this slab advances.
    pub vt: usize,
    /// The grid region (full z).
    pub range: Range3,
}

/// One space-time parallelogram tile: spatial tile indices plus the time
/// tile's virtual-step range `[t0, t1)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tile {
    /// Spatial tile index along x.
    pub xt: usize,
    /// Spatial tile index along y.
    pub yt: usize,
    /// First virtual step of the owning time tile (inclusive).
    pub t0: usize,
    /// Last virtual step of the owning time tile (exclusive).
    pub t1: usize,
}

impl Tile {
    /// The anti-diagonal index `xt + yt` — tiles sharing it are
    /// dependency-disjoint under `skew ≥ radius` (see module docs).
    pub fn diagonal(&self) -> usize {
        self.xt + self.yt
    }
}

/// The slab of `tile` at virtual step `vt` — its spatial cross-section
/// shifted back by `skew` per step and clamped to the grid. `None` when the
/// clamp leaves nothing (boundary tiles at late steps).
pub fn tile_slab(shape: Shape, spec: &WavefrontSpec, tile: &Tile, vt: usize) -> Option<Slab> {
    debug_assert!((tile.t0..tile.t1).contains(&vt));
    let off = ((vt - tile.t0) * spec.skew) as isize;
    let xs = (tile.xt * spec.tile_x) as isize - off;
    let ys = (tile.yt * spec.tile_y) as isize - off;
    let x0 = xs.max(0) as usize;
    let x1 = ((xs + spec.tile_x as isize).max(0) as usize).min(shape.nx);
    let y0 = ys.max(0) as usize;
    let y1 = ((ys + spec.tile_y as isize).max(0) as usize).min(shape.ny);
    (x0 < x1 && y0 < y1).then(|| Slab {
        vt,
        range: Range3::new((x0, x1), (y0, y1), (0, shape.nz)),
    })
}

/// True when the tile contributes at least one non-empty slab. Boundary
/// tiles exist only to cover the *skewed* index space, so near domain edges
/// a tile can be fully clipped at every step of its row — especially in the
/// last time row, whose smaller height accumulates less skew. Running such
/// a tile is pure overhead (a zero-work span in traces).
pub fn tile_has_work(shape: Shape, spec: &WavefrontSpec, tile: &Tile) -> bool {
    (tile.t0..tile.t1).any(|vt| tile_slab(shape, spec, tile, vt).is_some())
}

/// Spatial tile counts needed for one time row of height `h` virtual steps.
/// A row shorter than `tile_t` (the clipped last row) accumulates only
/// `(h - 1) * skew` of shift, so the global [`WavefrontSpec::tiles_x`]
/// bound over-covers it: every tile with `xt * tile_x ≥ nx + (h - 1) * skew`
/// starts past the grid at every step of the row and can be dropped before
/// enumeration (likewise along y).
fn row_tiles(shape: Shape, spec: &WavefrontSpec, h: usize) -> (usize, usize) {
    let ntx = (shape.nx + (h - 1) * spec.skew).div_ceil(spec.tile_x);
    let nty = (shape.ny + (h - 1) * spec.skew).div_ceil(spec.tile_y);
    (ntx, nty)
}

/// Visit every space-time tile with work in the sequential execution order:
/// time tiles outermost, spatial tiles in lexicographic `(xt, yt)` order.
/// Fully-clipped boundary tiles (see [`tile_has_work`]) are skipped.
pub fn for_each_tile<F>(shape: Shape, nvt: usize, spec: &WavefrontSpec, mut f: F)
where
    F: FnMut(&Tile),
{
    let mut t0 = 0usize;
    while t0 < nvt {
        let t1 = (t0 + spec.tile_t).min(nvt);
        let (ntx, nty) = row_tiles(shape, spec, t1 - t0);
        for xt in 0..ntx {
            for yt in 0..nty {
                let tile = Tile { xt, yt, t0, t1 };
                if tile_has_work(shape, spec, &tile) {
                    f(&tile);
                }
            }
        }
        t0 = t1;
    }
}

/// Visit every slab in the exact sequential execution order.
pub fn for_each_slab<F>(shape: Shape, nvt: usize, spec: &WavefrontSpec, mut f: F)
where
    F: FnMut(Slab),
{
    for_each_tile(shape, nvt, spec, |tile| {
        for vt in tile.t0..tile.t1 {
            if let Some(slab) = tile_slab(shape, spec, tile, vt) {
                f(slab);
            }
        }
    });
}

/// Collect the full slab sequence (checker and test helper).
pub fn slabs(shape: Shape, nvt: usize, spec: &WavefrontSpec) -> Vec<Slab> {
    let mut out = Vec::new();
    for_each_slab(shape, nvt, spec, |s| out.push(s));
    out
}

/// Execute `nvt` virtual steps under wave-front temporal blocking.
///
/// `step(vt, region)` must compute virtual step `vt` for `region`; blocks
/// within one slab are independent and run under `policy`.
pub fn execute<S>(shape: Shape, nvt: usize, spec: &WavefrontSpec, policy: Policy, step: S)
where
    S: Fn(usize, &Range3) + Sync + Send,
{
    // Same slab order as `for_each_slab`, unrolled one level so each slab's
    // trace span can carry its tile coordinates.
    for_each_tile(shape, nvt, spec, |tile| {
        for vt in tile.t0..tile.t1 {
            if let Some(slab) = tile_slab(shape, spec, tile, vt) {
                let sw = obs::start(obs::Phase::Slab);
                let _sp = obs::trace::span(
                    obs::trace::SpanKind::Slab,
                    obs::trace::SpanArgs::slab(tile.diagonal(), tile.xt, tile.yt, vt),
                );
                let blocks = slab.range.split_xy(spec.block_x, spec.block_y);
                tempest_par::for_each(policy, &blocks, |b| step(slab.vt, b));
                obs::add(obs::Counter::WavefrontSlabs, 1);
                sw.stop();
            }
        }
    });
}

/// Sequential wave-front execution with a mutable step closure.
///
/// Same schedule as [`execute`], single-threaded — for stateful consumers
/// like the DSL interpreter that drive the schedule with `&mut self`.
pub fn execute_seq<S>(shape: Shape, nvt: usize, spec: &WavefrontSpec, mut step: S)
where
    S: FnMut(usize, &Range3),
{
    for_each_slab(shape, nvt, spec, |slab| {
        for b in slab.range.split_xy(spec.block_x, spec.block_y) {
            step(slab.vt, &b);
        }
    });
}

/// The tiles with work of one time tile `[t0, t1)`, grouped by ascending
/// anti-diagonal: `result[d]` holds every non-empty tile with `xt + yt == d`.
/// Fully-clipped tiles are dropped, and so are trailing diagonals left empty
/// by the clipping — the executor never pays a barrier (or emits a span) for
/// zero work near the domain edge.
pub fn diagonals(shape: Shape, spec: &WavefrontSpec, t0: usize, t1: usize) -> Vec<Vec<Tile>> {
    let (ntx, nty) = row_tiles(shape, spec, t1 - t0);
    let mut out = vec![Vec::new(); ntx + nty - 1];
    for xt in 0..ntx {
        for yt in 0..nty {
            let tile = Tile { xt, yt, t0, t1 };
            if tile_has_work(shape, spec, &tile) {
                out[xt + yt].push(tile);
            }
        }
    }
    while out.last().is_some_and(Vec::is_empty) {
        out.pop();
    }
    out
}

/// Execute `nvt` virtual steps with diagonal-parallel wave-front blocking.
///
/// Time tiles run sequentially; within one, anti-diagonals run in ascending
/// order with a barrier between them, and all tiles on a diagonal run
/// concurrently under `policy` (each tile's `vt` range sequential inside,
/// its slabs still cut into `(block_x, block_y)` cache blocks). Parallelism
/// per synchronisation point is whole tiles instead of one slab's blocks —
/// legal because same-diagonal tiles are dependency-disjoint for
/// `skew ≥ radius` and ring depth ≥ 2 (see module docs and
/// [`crate::legality::check_diagonal_independence`]).
pub fn execute_diagonal<S>(shape: Shape, nvt: usize, spec: &WavefrontSpec, policy: Policy, step: S)
where
    S: Fn(usize, &Range3) + Sync + Send,
{
    let mut t0 = 0usize;
    while t0 < nvt {
        let t1 = (t0 + spec.tile_t).min(nvt);
        for (d, tiles) in diagonals(shape, spec, t0, t1).into_iter().enumerate() {
            if tiles.is_empty() {
                continue;
            }
            let sw = obs::start(obs::Phase::Diagonal);
            let _dsp = obs::trace::span(
                obs::trace::SpanKind::Diagonal,
                obs::trace::SpanArgs::diag(d, t0, t1),
            );
            // `for_each` blocks until every tile completes: the barrier
            // between diagonals. The per-tile span runs on whichever worker
            // claimed the tile, so the trace shows the real thread placement.
            tempest_par::for_each(policy, &tiles, |tile| {
                let _sp = obs::trace::span(
                    obs::trace::SpanKind::Tile,
                    obs::trace::SpanArgs::tile(tile.diagonal(), tile.xt, tile.yt, tile.t0, tile.t1),
                );
                for vt in tile.t0..tile.t1 {
                    if let Some(slab) = tile_slab(shape, spec, tile, vt) {
                        for b in slab.range.split_xy(spec.block_x, spec.block_y) {
                            step(vt, &b);
                        }
                    }
                }
            });
            obs::add(obs::Counter::WavefrontDiagonals, 1);
            obs::add(obs::Counter::WavefrontTiles, tiles.len() as u64);
            sw.stop();
        }
        t0 = t1;
    }
}

/// The slab sequence of one serialisation of the diagonal schedule:
/// diagonal-major, same-diagonal tiles in lexicographic order, each tile's
/// `vt` range in full before the next tile. Feeding this (or any
/// same-diagonal permutation of it) to [`crate::legality::check_schedule`]
/// certifies the parallel schedule, since the checker's constraints are
/// order-insensitive within a set of dependency-disjoint tiles.
pub fn diagonal_slabs(shape: Shape, nvt: usize, spec: &WavefrontSpec) -> Vec<Slab> {
    let mut out = Vec::new();
    let mut t0 = 0usize;
    while t0 < nvt {
        let t1 = (t0 + spec.tile_t).min(nvt);
        for tiles in diagonals(shape, spec, t0, t1) {
            for tile in &tiles {
                for vt in tile.t0..tile.t1 {
                    if let Some(slab) = tile_slab(shape, spec, tile, vt) {
                        out.push(slab);
                    }
                }
            }
        }
        t0 = t1;
    }
    out
}

/// xy-plane overlap of two ranges (z is never tiled).
pub(crate) fn xy_overlap(a: &Range3, b: &Range3) -> bool {
    a.x0 < b.x1 && b.x0 < a.x1 && a.y0 < b.y1 && b.y0 < a.y1
}

/// `r` grown by the stencil radius in x and y, clamped to the grid: the
/// footprint a slab *reads* at the previous virtual step.
pub(crate) fn dilate_xy(r: &Range3, radius: usize, shape: Shape) -> Range3 {
    Range3::new(
        (r.x0.saturating_sub(radius), (r.x1 + radius).min(shape.nx)),
        (r.y0.saturating_sub(radius), (r.y1 + radius).min(shape.ny)),
        (0, shape.nz),
    )
}

/// Candidate spatial tile indices along one axis whose *unclamped* slab
/// interval `[xt·tile - off, xt·tile - off + tile)` intersects `[lo, hi)`.
/// Clamping only shrinks a slab, so this is a superset of the true overlap
/// set; callers verify each candidate against the clamped slab.
fn candidate_tiles(lo: usize, hi: usize, tile: usize, off: usize, ntiles: usize) -> std::ops::Range<usize> {
    let (tile_i, off_i) = (tile as isize, off as isize);
    // xt·tile - off < hi  ⇔  xt ≤ floor((hi + off - 1) / tile)
    let max_incl = (hi as isize + off_i - 1).div_euclid(tile_i);
    // xt·tile - off + tile > lo  ⇔  xt ≥ floor((lo + off - tile) / tile) + 1
    let min = (lo as isize + off_i - tile_i).div_euclid(tile_i) + 1;
    let start = min.max(0) as usize;
    let end = ((max_incl + 1).max(0) as usize).min(ntiles);
    start..end.max(start)
}

/// Build the dependency graph of the dataflow schedule.
///
/// Nodes are every tile with work across *all* time rows of the sweep, in
/// [`for_each_tile`] order; `preds[i]` lists the nodes tile `i` truly
/// depends on. The dependency rule is the stencil's flow dependence: tile B
/// precedes tile A iff for some virtual step `va` of A (with `va ≥ 1`),
/// B's slab at `va - 1` intersects the `radius`-dilated footprint of A's
/// slab at `va` — i.e. B writes values A reads. Within a time row that
/// yields the ≤ 3 upper-left neighbours (for `skew ≥ radius` a tile's read
/// halo never reaches a *larger* `(xt, yt)` — the same geometry that makes
/// anti-diagonals independent); across consecutive rows it links each tile
/// to the previous-row tiles under its first slab. Anti-dependencies
/// (ring-buffer overwrites) need no edges of their own: they are implied
/// transitively by chains of flow edges, which
/// [`crate::legality::check_dataflow_dependencies`] machine-checks per
/// spec. Requires `skew ≥ radius`, like every wavefront schedule here —
/// smaller skews make opposing same-row reads (a dependency cycle).
pub fn tile_graph(
    shape: Shape,
    nvt: usize,
    spec: &WavefrontSpec,
    radius: usize,
) -> (Vec<Tile>, Vec<Vec<u32>>) {
    let mut tiles = Vec::new();
    for_each_tile(shape, nvt, spec, |t| tiles.push(*t));
    // Per-row index: row start t0 -> ((xt, yt) -> node id).
    let mut rows: Vec<(usize, usize)> = Vec::new();
    let mut row_maps: Vec<HashMap<(usize, usize), u32>> = Vec::new();
    for (i, t) in tiles.iter().enumerate() {
        if rows.last().map(|r| r.0) != Some(t.t0) {
            rows.push((t.t0, t.t1));
            row_maps.push(HashMap::new());
        }
        row_maps.last_mut().unwrap().insert((t.xt, t.yt), i as u32);
    }
    let row_of = |t0: usize| rows.iter().position(|r| r.0 == t0).unwrap();

    let mut preds: Vec<Vec<u32>> = vec![Vec::new(); tiles.len()];
    for (ia, a) in tiles.iter().enumerate() {
        let arow = row_of(a.t0);
        for va in a.t0.max(1)..a.t1 {
            let Some(sa) = tile_slab(shape, spec, a, va) else {
                continue;
            };
            let halo = dilate_xy(&sa.range, radius, shape);
            // The writers of step va - 1 live in A's own row, except at A's
            // first step where they live in the previous row.
            let wrow = if va > a.t0 { arow } else { arow - 1 };
            let (wt0, wt1) = rows[wrow];
            let vb = va - 1;
            debug_assert!((wt0..wt1).contains(&vb));
            let off = (vb - wt0) * spec.skew;
            let (ntx, nty) = row_tiles(shape, spec, wt1 - wt0);
            for xt in candidate_tiles(halo.x0, halo.x1, spec.tile_x, off, ntx) {
                for yt in candidate_tiles(halo.y0, halo.y1, spec.tile_y, off, nty) {
                    let Some(&ib) = row_maps[wrow].get(&(xt, yt)) else {
                        continue;
                    };
                    if ib as usize == ia {
                        continue;
                    }
                    let b = &tiles[ib as usize];
                    if tile_slab(shape, spec, b, vb)
                        .is_some_and(|sb| xy_overlap(&sb.range, &halo))
                    {
                        preds[ia].push(ib);
                    }
                }
            }
        }
        preds[ia].sort_unstable();
        preds[ia].dedup();
    }
    (tiles, preds)
}

/// Execute `nvt` virtual steps with dependency-driven (dataflow) wave-front
/// blocking.
///
/// Where [`execute_diagonal`] still raises one barrier per anti-diagonal,
/// this executor builds the exact tile dependency graph of the whole sweep
/// ([`tile_graph`]) and hands it to `tempest_par::run_dataflow`: each tile
/// carries an atomic counter of unfinished predecessors, finishing a tile
/// decrements its successors and pushes freshly-ready tiles onto per-worker
/// stealing deques, and the only global synchronisation is one join at the
/// end. Inside a tile nothing changes — `vt` ascends sequentially and each
/// slab is cut into `(block_x, block_y)` cache blocks — so the wavefield
/// stays bitwise identical to every other wavefront schedule.
///
/// `radius` must be the stencil's true dependency radius (and `spec.skew ≥
/// radius`), as it defines the read halo the graph edges are built from.
pub fn execute_dataflow<S>(
    shape: Shape,
    nvt: usize,
    spec: &WavefrontSpec,
    radius: usize,
    policy: Policy,
    step: S,
) where
    S: Fn(usize, &Range3) + Sync + Send,
{
    let (tiles, preds) = tile_graph(shape, nvt, spec, radius);
    let graph = tempest_par::DepGraph::from_preds(&preds);
    // One caller-side phase/span for the whole sweep — the analogue of the
    // sum of a run's `Diagonal` phases, so barrier-wait *shares* compare
    // fairly across the two executors.
    let sw = obs::start(obs::Phase::Dataflow);
    let _dsp = obs::trace::span(
        obs::trace::SpanKind::Dataflow,
        obs::trace::SpanArgs {
            t0: 0,
            t1: nvt as i32,
            ..Default::default()
        },
    );
    tempest_par::run_dataflow(policy, &graph, |i| {
        let tile = &tiles[i];
        let _sp = obs::trace::span(
            obs::trace::SpanKind::Tile,
            obs::trace::SpanArgs::tile(tile.diagonal(), tile.xt, tile.yt, tile.t0, tile.t1),
        );
        for vt in tile.t0..tile.t1 {
            if let Some(slab) = tile_slab(shape, spec, tile, vt) {
                for b in slab.range.split_xy(spec.block_x, spec.block_y) {
                    step(vt, &b);
                }
            }
        }
        obs::add(obs::Counter::WavefrontTiles, 1);
    });
    sw.stop();
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempest_grid::Array3;

    fn coverage_exact(shape: Shape, nvt: usize, spec: &WavefrontSpec) {
        // counts[vt][x][y] over a flattened Array3 (vt, x, y)
        let mut counts = Array3::<u32>::zeros(nvt.max(1), shape.nx, shape.ny);
        for_each_slab(shape, nvt, spec, |s| {
            for x in s.range.x0..s.range.x1 {
                for y in s.range.y0..s.range.y1 {
                    let v = counts.get(s.vt, x, y) + 1;
                    counts.set(s.vt, x, y, v);
                }
            }
        });
        for vt in 0..nvt {
            for x in 0..shape.nx {
                for y in 0..shape.ny {
                    assert_eq!(
                        counts.get(vt, x, y),
                        1,
                        "(vt={vt}, x={x}, y={y}) covered {} times with {spec:?}",
                        counts.get(vt, x, y)
                    );
                }
            }
        }
    }

    #[test]
    fn covers_each_space_time_point_exactly_once() {
        let shape = Shape::new(23, 17, 4);
        for spec in [
            WavefrontSpec::new(8, 8, 4, 2, 4, 4),
            WavefrontSpec::new(8, 8, 4, 2, 3, 5),
            WavefrontSpec::new(16, 8, 8, 1, 8, 8),
            WavefrontSpec::new(5, 7, 3, 4, 2, 2),
            WavefrontSpec::new(32, 32, 6, 6, 8, 8), // tiles larger than grid
        ] {
            coverage_exact(shape, 11, &spec);
        }
    }

    #[test]
    fn tile_t_one_degenerates_to_space_blocking() {
        let shape = Shape::new(12, 12, 3);
        let spec = WavefrontSpec::new(4, 4, 1, 3, 4, 4);
        let mut per_vt = vec![0usize; 5];
        for_each_slab(shape, 5, &spec, |s| {
            per_vt[s.vt] += s.range.len();
            // No skew can apply with tile height 1.
            assert_eq!(s.range.x1 - s.range.x0, 4);
        });
        for v in per_vt {
            assert_eq!(v, shape.len());
        }
    }

    #[test]
    fn virtual_time_never_decreases_within_a_tile_and_tiles_ordered() {
        let shape = Shape::new(16, 16, 2);
        let spec = WavefrontSpec::new(8, 8, 4, 2, 4, 4);
        let s = slabs(shape, 8, &spec);
        // Time tiles are contiguous in the sequence: all vt<4 slabs appear
        // before any vt>=4 slab.
        let first_second_tile = s.iter().position(|sl| sl.vt >= 4).unwrap();
        assert!(s[first_second_tile..].iter().all(|sl| sl.vt >= 4));
        assert!(s[..first_second_tile].iter().all(|sl| sl.vt < 4));
    }

    #[test]
    fn slabs_shift_left_with_virtual_time() {
        let shape = Shape::new(64, 64, 2);
        let spec = WavefrontSpec::new(16, 16, 4, 3, 8, 8);
        let s = slabs(shape, 4, &spec);
        // Find an interior tile's slabs (xt=1, yt=1): x starts 16,13,10,7.
        let xs: Vec<usize> = s
            .iter()
            .filter(|sl| sl.range.y0 > 0 && sl.range.x0 > 0 && sl.range.x1 - sl.range.x0 == 16)
            .take(4)
            .map(|sl| sl.range.x0)
            .collect();
        assert!(
            xs.windows(2).all(|w| w[1] + 3 == w[0] || w[1] >= w[0]),
            "interior slabs shift left by skew: {xs:?}"
        );
    }

    #[test]
    fn execute_blocks_partition_slabs() {
        let shape = Shape::new(20, 14, 3);
        let spec = WavefrontSpec::new(8, 8, 3, 2, 3, 4);
        let nvt = 7;
        // Sum of block volumes must equal nvt * grid size.
        let total = std::sync::atomic::AtomicUsize::new(0);
        execute(shape, nvt, &spec, Policy::Sequential, |_vt, b| {
            total.fetch_add(b.len(), std::sync::atomic::Ordering::Relaxed);
        });
        assert_eq!(
            total.load(std::sync::atomic::Ordering::Relaxed),
            nvt * shape.len()
        );
    }

    #[test]
    fn skewed_only_uses_one_spatial_tile() {
        let shape = Shape::new(20, 16, 4);
        let spec = WavefrontSpec::skewed_only(shape, 4, 2, 8, 8);
        assert_eq!(spec.tiles_x(shape.nx), 1);
        assert_eq!(spec.tiles_y(shape.ny), 1);
        coverage_exact(shape, 8, &spec);
    }

    #[test]
    fn tiles_x_covers_skewed_extent() {
        let spec = WavefrontSpec::new(16, 16, 8, 4, 8, 8);
        // Needs to cover nx + 7*4 = nx+28 points worth of start offsets.
        assert_eq!(spec.tiles_x(64), (64 + 28usize).div_ceil(16));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn rejects_zero_tile() {
        let _ = WavefrontSpec::new(0, 8, 4, 2, 4, 4);
    }

    #[test]
    fn tiles_enumerate_all_slabs() {
        // for_each_slab is now derived from for_each_tile + tile_slab;
        // check the tile enumeration visits each (time tile, xt, yt) once.
        let shape = Shape::new(23, 17, 4);
        let spec = WavefrontSpec::new(8, 8, 4, 2, 4, 4);
        let nvt = 11;
        let mut tiles = Vec::new();
        for_each_tile(shape, nvt, &spec, |t| tiles.push(*t));
        let ntx = spec.tiles_x(shape.nx);
        let nty = spec.tiles_y(shape.ny);
        let time_tiles = nvt.div_ceil(spec.tile_t);
        assert_eq!(tiles.len(), ntx * nty * time_tiles);
        let mut uniq = tiles.clone();
        uniq.sort_by_key(|t| (t.t0, t.xt, t.yt));
        uniq.dedup();
        assert_eq!(uniq.len(), tiles.len());
        // Last time tile is clipped to nvt.
        assert!(tiles.iter().all(|t| t.t1 <= nvt && t.t0 < t.t1));
    }

    #[test]
    fn diagonal_slabs_cover_exactly_once() {
        let shape = Shape::new(23, 17, 4);
        for spec in [
            WavefrontSpec::new(8, 8, 4, 2, 4, 4),
            WavefrontSpec::new(5, 7, 3, 4, 2, 2),
            WavefrontSpec::new(32, 32, 6, 6, 8, 8),
            WavefrontSpec::new(8, 8, 1, 3, 4, 4), // tile_t = 1 degenerate
        ] {
            let nvt = 11;
            let mut counts = Array3::<u32>::zeros(nvt, shape.nx, shape.ny);
            for s in diagonal_slabs(shape, nvt, &spec) {
                for x in s.range.x0..s.range.x1 {
                    for y in s.range.y0..s.range.y1 {
                        counts.set(s.vt, x, y, counts.get(s.vt, x, y) + 1);
                    }
                }
            }
            for vt in 0..nvt {
                for x in 0..shape.nx {
                    for y in 0..shape.ny {
                        assert_eq!(counts.get(vt, x, y), 1, "({vt},{x},{y}) with {spec:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn diagonals_group_by_antidiagonal() {
        let shape = Shape::new(40, 24, 2);
        let spec = WavefrontSpec::new(8, 8, 4, 2, 4, 4);
        let groups = diagonals(shape, &spec, 0, 4);
        let ntx = spec.tiles_x(shape.nx);
        let nty = spec.tiles_y(shape.ny);
        assert_eq!(groups.len(), ntx + nty - 1);
        let total: usize = groups.iter().map(|g| g.len()).sum();
        assert_eq!(total, ntx * nty);
        for (d, g) in groups.iter().enumerate() {
            assert!(!g.is_empty());
            for t in g {
                assert_eq!(t.diagonal(), d);
                assert_eq!((t.t0, t.t1), (0, 4));
            }
        }
    }

    #[test]
    fn execute_diagonal_blocks_partition_domain() {
        let shape = Shape::new(20, 14, 3);
        let spec = WavefrontSpec::new(8, 8, 3, 2, 3, 4);
        let nvt = 7;
        let total = std::sync::atomic::AtomicUsize::new(0);
        execute_diagonal(shape, nvt, &spec, Policy::Parallel, |_vt, b| {
            total.fetch_add(b.len(), std::sync::atomic::Ordering::Relaxed);
        });
        assert_eq!(
            total.load(std::sync::atomic::Ordering::Relaxed),
            nvt * shape.len()
        );
    }

    #[test]
    fn execute_diagonal_sequential_order_is_diagonal_slabs() {
        let shape = Shape::new(20, 14, 3);
        let spec = WavefrontSpec::new(8, 8, 3, 2, 8, 8);
        let nvt = 5;
        let seen = std::sync::Mutex::new(Vec::new());
        execute_diagonal(shape, nvt, &spec, Policy::Sequential, |vt, b| {
            seen.lock().unwrap().push(Slab { vt, range: *b });
        });
        // With blocks at least as large as tiles, each slab is one block:
        // the emission order must equal the canonical serialisation.
        let expect = diagonal_slabs(shape, nvt, &spec);
        assert_eq!(*seen.lock().unwrap(), expect);
    }

    #[test]
    fn fully_clipped_tiles_are_skipped() {
        // tile_x = 5 with skew = 4 on a 23-wide grid: the global bound needs
        // 7 tiles along x, but the clipped last time row [9, 11) shifts by at
        // most one skew, so tile xt = 6 (starting at x = 30) never reaches
        // the grid there.
        let shape = Shape::new(23, 17, 4);
        let spec = WavefrontSpec::new(5, 7, 3, 4, 2, 2);
        let nvt = 11;
        let mut emitted = Vec::new();
        for_each_tile(shape, nvt, &spec, |t| emitted.push(*t));
        assert!(emitted.iter().all(|t| tile_has_work(shape, &spec, t)));
        // Brute-force over the global (unfiltered) bounds: the emitted set
        // must be exactly the tiles with work.
        let ntx = spec.tiles_x(shape.nx);
        let nty = spec.tiles_y(shape.ny);
        let mut expect = Vec::new();
        let mut skipped = 0usize;
        let mut t0 = 0usize;
        while t0 < nvt {
            let t1 = (t0 + spec.tile_t).min(nvt);
            for xt in 0..ntx {
                for yt in 0..nty {
                    let tile = Tile { xt, yt, t0, t1 };
                    if tile_has_work(shape, &spec, &tile) {
                        expect.push(tile);
                    } else {
                        skipped += 1;
                    }
                }
            }
            t0 = t1;
        }
        assert_eq!(emitted, expect);
        assert!(skipped > 0, "spec was chosen to produce clipped tiles");
        // Skipping empty tiles must not change the covered slabs.
        coverage_exact(shape, nvt, &spec);
    }

    #[test]
    fn clipped_row_drops_trailing_diagonals_up_front() {
        let shape = Shape::new(23, 17, 4);
        let spec = WavefrontSpec::new(5, 7, 3, 4, 2, 2);
        let full = diagonals(shape, &spec, 0, 3);
        // Height-2 last row: fewer tiles fit the smaller skewed extent, so
        // whole trailing anti-diagonals disappear.
        let clipped = diagonals(shape, &spec, 9, 11);
        assert!(clipped.len() < full.len(), "{} vs {}", clipped.len(), full.len());
        assert!(!clipped.is_empty() && !clipped.last().unwrap().is_empty());
        for (d, g) in clipped.iter().enumerate() {
            for t in g {
                assert_eq!(t.diagonal(), d);
                assert!(tile_has_work(shape, &spec, t));
            }
        }
    }

    #[test]
    fn tile_graph_edges_point_backward_in_sequential_order() {
        let shape = Shape::new(23, 17, 4);
        for (spec, radius) in [
            (WavefrontSpec::new(8, 8, 4, 2, 4, 4), 2),
            (WavefrontSpec::new(5, 7, 3, 4, 2, 2), 3),
            (WavefrontSpec::new(8, 8, 1, 3, 4, 4), 3), // tile_t = 1
        ] {
            let (tiles, preds) = tile_graph(shape, 11, &spec, radius);
            let mut expect = Vec::new();
            for_each_tile(shape, 11, &spec, |t| expect.push(*t));
            assert_eq!(tiles, expect);
            for (ia, ps) in preds.iter().enumerate() {
                for &ib in ps {
                    // Sequential (lexicographic) order is one valid
                    // topological order, so every edge points backward —
                    // the graph is acyclic by construction.
                    assert!((ib as usize) < ia, "edge {ib} -> {ia} not backward");
                    let (a, b) = (&tiles[ia], &tiles[ib as usize]);
                    if a.t0 == b.t0 {
                        // Intra-row flow deps come only from upper-left
                        // neighbours under skew >= radius.
                        assert!(b.xt <= a.xt && b.yt <= a.yt);
                    }
                }
            }
            // Every tile beyond the first row depends on something.
            let first_t0 = tiles[0].t0;
            for (ia, t) in tiles.iter().enumerate() {
                if t.t0 != first_t0 {
                    assert!(!preds[ia].is_empty(), "row t0={} tile has no preds", t.t0);
                }
            }
        }
    }

    #[test]
    fn execute_dataflow_blocks_partition_domain() {
        let shape = Shape::new(20, 14, 3);
        let spec = WavefrontSpec::new(8, 8, 3, 2, 3, 4);
        let nvt = 7;
        for policy in [Policy::Sequential, Policy::Parallel, Policy::Capped { threads: 2 }] {
            let total = std::sync::atomic::AtomicUsize::new(0);
            execute_dataflow(shape, nvt, &spec, 2, policy, |_vt, b| {
                total.fetch_add(b.len(), std::sync::atomic::Ordering::Relaxed);
            });
            assert_eq!(
                total.load(std::sync::atomic::Ordering::Relaxed),
                nvt * shape.len()
            );
        }
    }

    #[test]
    fn dataflow_never_steps_a_point_before_its_halo() {
        // Dynamic check of the flow-dependence rule: when a block advances
        // to step vt, every point in its radius-dilated halo must have
        // completed vt - 1 (and the block's own points exactly vt - 1).
        let shape = Shape::new(23, 17, 2);
        let spec = WavefrontSpec::new(8, 8, 4, 2, 4, 4);
        let radius = 2usize;
        let nvt = 11;
        let progress = std::sync::Mutex::new(vec![vec![-1i64; shape.ny]; shape.nx]);
        execute_dataflow(shape, nvt, &spec, radius, Policy::Parallel, |vt, b| {
            let mut g = progress.lock().unwrap();
            let want = vt as i64 - 1;
            for x in b.x0.saturating_sub(radius)..(b.x1 + radius).min(shape.nx) {
                for y in b.y0.saturating_sub(radius)..(b.y1 + radius).min(shape.ny) {
                    assert!(g[x][y] >= want, "halo ({x},{y}) at {} < {want}", g[x][y]);
                }
            }
            for x in b.x0..b.x1 {
                for y in b.y0..b.y1 {
                    assert_eq!(g[x][y], want, "write point ({x},{y})");
                    g[x][y] = vt as i64;
                }
            }
        });
        let g = progress.lock().unwrap();
        for col in g.iter() {
            for &v in col {
                assert_eq!(v, nvt as i64 - 1);
            }
        }
    }

    #[test]
    fn skewed_only_has_single_diagonal() {
        // One spatial tile ⇒ one diagonal ⇒ the diagonal executor degrades
        // to plain per-tile execution.
        let shape = Shape::new(20, 16, 4);
        let spec = WavefrontSpec::skewed_only(shape, 4, 2, 8, 8);
        let groups = diagonals(shape, &spec, 0, 4);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].len(), 1);
    }
}
