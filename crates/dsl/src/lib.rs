//! # tempest-dsl
//!
//! A miniature Devito: an embedded domain-specific language for defining
//! finite-difference PDE solvers symbolically and lowering them to
//! executable stencil updates.
//!
//! The paper implements its scheme "directly on top of the Devito DSL,
//! harnessing the power of automated code generation". This crate plays that
//! role for the workspace: the paper's acoustic example (its Listing 1 of
//! §III-A) writes here as
//!
//! ```
//! use tempest_dsl::*;
//! use tempest_grid::{Domain, Shape};
//!
//! let domain = Domain::uniform(Shape::cube(16), 10.0);
//! let mut ctx = Context::new(domain);
//! let u = ctx.time_function("u", 2, 4);   // time order 2, space order 4
//! let m = ctx.parameter("m");
//! let damp = ctx.parameter("damp");
//!
//! // eq = m * u.dt2 + damp * u.dt - u.laplace
//! let eq = m.x() * u.dt2() + damp.x() * u.dt() - u.laplace();
//! // update = Eq(u.forward, solve(eq, u.forward))
//! let update = solve(&ctx, &eq, u).unwrap();
//! assert_eq!(update.field(), u.id());
//! ```
//!
//! Pipeline: symbolic [`expr::Expr`] → time-derivative expansion → linear
//! [`solve()`](solve()) for the forward update → spatial lowering ([`lower()`](lower())) that
//! expands `laplace` / derivative nodes into explicit FD stencil sums with
//! Fornberg weights → an interpretable [`lower::LowExpr`] executed by
//! [`operator::DslOperator`] with classic off-grid source injection and
//! receiver interpolation from `tempest-sparse`.
//!
//! The DSL path is cross-validated against the hand-optimised propagators in
//! `tempest-core` (see `tests/`), exactly as Devito's generated code is the
//! reference the paper's manual WTB transformation must reproduce. It also
//! renders the lowered loop nest as pseudocode ([`operator::DslOperator::pseudocode`])
//! in the style of the paper's Listings 1–5.

pub mod expr;
pub mod field;
pub mod lower;
pub mod operator;
pub mod solve;

pub use expr::Expr;
pub use field::{Context, FieldHandle, ParamHandle};
pub use lower::lower;
pub use operator::DslOperator;
pub use solve::{solve, Update};
