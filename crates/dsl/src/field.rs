//! Symbolic field declarations (Devito's `TimeFunction` / `Function`).

use crate::expr::Expr;
use tempest_grid::Domain;

/// Identifier of a declared field within a [`Context`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FieldId(pub usize);

/// What kind of storage a field declaration denotes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FieldKind {
    /// A wavefield with a time dimension (Devito `TimeFunction`).
    TimeFunction {
        /// Temporal derivative order the update uses (1 or 2).
        time_order: usize,
    },
    /// A time-invariant parameter volume (Devito `Function`), e.g. `m`,
    /// `damp`, Thomsen parameters.
    Parameter,
}

/// One declared field.
#[derive(Debug, Clone)]
pub struct FieldDecl {
    /// Identifier.
    pub id: FieldId,
    /// Human-readable name (used by pseudocode rendering).
    pub name: String,
    /// Kind (time function or parameter).
    pub kind: FieldKind,
    /// FD space order for derivatives of this field.
    pub space_order: usize,
}

/// The declaration context: grid plus field table (Devito's `Grid` and
/// symbol registry).
#[derive(Debug, Clone)]
pub struct Context {
    domain: Domain,
    decls: Vec<FieldDecl>,
    /// Timestep symbol value, filled by the operator at run time; lowering
    /// needs it for `dt`-powers.
    dt: f64,
}

impl Context {
    /// New context over a physical domain.
    pub fn new(domain: Domain) -> Self {
        Context {
            domain,
            decls: Vec::new(),
            dt: 1.0,
        }
    }

    /// The physical domain.
    pub fn domain(&self) -> &Domain {
        &self.domain
    }

    /// Set the timestep used when expanding time derivatives.
    pub fn set_dt(&mut self, dt: f64) {
        assert!(dt > 0.0, "dt must be positive");
        self.dt = dt;
    }

    /// The current timestep symbol value.
    pub fn dt(&self) -> f64 {
        self.dt
    }

    /// Declare a wavefield with the given time and space orders.
    pub fn time_function(&mut self, name: &str, time_order: usize, space_order: usize) -> FieldHandle {
        assert!(time_order == 1 || time_order == 2, "time order must be 1 or 2");
        assert!(space_order >= 2 && space_order.is_multiple_of(2));
        let id = FieldId(self.decls.len());
        self.decls.push(FieldDecl {
            id,
            name: name.to_string(),
            kind: FieldKind::TimeFunction { time_order },
            space_order,
        });
        FieldHandle { id, space_order }
    }

    /// Declare a time-invariant parameter volume.
    pub fn parameter(&mut self, name: &str) -> ParamHandle {
        let id = FieldId(self.decls.len());
        self.decls.push(FieldDecl {
            id,
            name: name.to_string(),
            kind: FieldKind::Parameter,
            space_order: 0,
        });
        ParamHandle { id }
    }

    /// Declaration of a field.
    pub fn decl(&self, id: FieldId) -> &FieldDecl {
        &self.decls[id.0]
    }

    /// All declarations.
    pub fn decls(&self) -> &[FieldDecl] {
        &self.decls
    }
}

/// Handle to a declared wavefield; builds symbolic expressions.
#[derive(Debug, Clone, Copy)]
pub struct FieldHandle {
    id: FieldId,
    space_order: usize,
}

impl FieldHandle {
    /// The field's id.
    pub fn id(&self) -> FieldId {
        self.id
    }

    /// The field's space order.
    pub fn space_order(&self) -> usize {
        self.space_order
    }

    /// Access at the current timestep, no spatial offset (`u`).
    pub fn x(&self) -> Expr {
        Expr::access(self.id, 0, [0, 0, 0])
    }

    /// Access at `t + 1` (`u.forward`).
    pub fn forward(&self) -> Expr {
        Expr::access(self.id, 1, [0, 0, 0])
    }

    /// Access at `t − 1` (`u.backward`).
    pub fn backward(&self) -> Expr {
        Expr::access(self.id, -1, [0, 0, 0])
    }

    /// Second time derivative (`u.dt2`).
    pub fn dt2(&self) -> Expr {
        Expr::Dt2(self.id)
    }

    /// First time derivative (`u.dt`), centred.
    pub fn dt(&self) -> Expr {
        Expr::Dt(self.id)
    }

    /// Spatial Laplacian (`u.laplace`).
    pub fn laplace(&self) -> Expr {
        Expr::Laplace(self.id)
    }

    /// First spatial derivative along `axis` (0 = x, 1 = y, 2 = z).
    pub fn d1(&self, axis: usize) -> Expr {
        assert!(axis < 3);
        Expr::Deriv {
            field: self.id,
            axis,
            order: 1,
        }
    }

    /// Second spatial derivative along `axis`.
    pub fn d2(&self, axis: usize) -> Expr {
        assert!(axis < 3);
        Expr::Deriv {
            field: self.id,
            axis,
            order: 2,
        }
    }

    /// Staggered forward first derivative (`∂/∂axis` at `i + ½`) of the
    /// current time level.
    pub fn dxs_fwd(&self, axis: usize) -> Expr {
        self.dxs_fwd_at(axis, 0)
    }

    /// Staggered backward first derivative (`∂/∂axis` at `i − ½`).
    pub fn dxs_bwd(&self, axis: usize) -> Expr {
        self.dxs_bwd_at(axis, 0)
    }

    /// Staggered forward derivative of the level at `t + t_off` (elastic
    /// stress updates read velocities at `t_off = 1`).
    pub fn dxs_fwd_at(&self, axis: usize, t_off: i32) -> Expr {
        assert!(axis < 3);
        Expr::StagDeriv {
            field: self.id,
            t_off,
            axis,
            forward: true,
        }
    }

    /// Staggered backward derivative of the level at `t + t_off`.
    pub fn dxs_bwd_at(&self, axis: usize, t_off: i32) -> Expr {
        assert!(axis < 3);
        Expr::StagDeriv {
            field: self.id,
            t_off,
            axis,
            forward: false,
        }
    }
}

/// Handle to a parameter volume.
#[derive(Debug, Clone, Copy)]
pub struct ParamHandle {
    id: FieldId,
}

impl ParamHandle {
    /// The parameter's id.
    pub fn id(&self) -> FieldId {
        self.id
    }

    /// Point-wise access (`m(x, y, z)`).
    pub fn x(&self) -> Expr {
        Expr::Param(self.id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempest_grid::Shape;

    fn ctx() -> Context {
        Context::new(Domain::uniform(Shape::cube(8), 10.0))
    }

    #[test]
    fn declarations_register() {
        let mut c = ctx();
        let u = c.time_function("u", 2, 4);
        let m = c.parameter("m");
        assert_eq!(c.decls().len(), 2);
        assert_eq!(c.decl(u.id()).name, "u");
        assert_eq!(
            c.decl(u.id()).kind,
            FieldKind::TimeFunction { time_order: 2 }
        );
        assert_eq!(c.decl(m.id()).kind, FieldKind::Parameter);
        assert_eq!(u.space_order(), 4);
    }

    #[test]
    fn handles_build_expressions() {
        let mut c = ctx();
        let u = c.time_function("u", 2, 4);
        assert_eq!(u.forward(), Expr::access(u.id(), 1, [0, 0, 0]));
        assert_eq!(u.backward(), Expr::access(u.id(), -1, [0, 0, 0]));
        assert!(matches!(u.laplace(), Expr::Laplace(_)));
        assert!(matches!(u.d2(1), Expr::Deriv { axis: 1, order: 2, .. }));
    }

    #[test]
    fn dt_is_settable() {
        let mut c = ctx();
        c.set_dt(2.5e-3);
        assert_eq!(c.dt(), 2.5e-3);
    }

    #[test]
    #[should_panic(expected = "time order")]
    fn rejects_bad_time_order() {
        let mut c = ctx();
        let _ = c.time_function("u", 3, 4);
    }
}
