//! Symbolic expressions over declared fields.
//!
//! A small term language sufficient for the paper's three wave equations:
//! arithmetic over wavefield accesses (with time/space offsets), point-wise
//! parameters and derivative nodes (`dt`, `dt2`, spatial derivatives,
//! `laplace`). Operator overloading gives the Devito look:
//! `m.x() * u.dt2() + damp.x() * u.dt() - u.laplace()`.

use crate::field::FieldId;

/// A symbolic expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A literal constant.
    Const(f64),
    /// Wavefield access `u[t + t_off][x + dx, y + dy, z + dz]`.
    Access {
        /// Field accessed.
        field: FieldId,
        /// Temporal offset relative to the current step.
        t_off: i32,
        /// Spatial offsets.
        offs: [i32; 3],
    },
    /// Point-wise parameter access.
    Param(FieldId),
    /// Second time derivative (expanded by lowering).
    Dt2(FieldId),
    /// First (centred) time derivative.
    Dt(FieldId),
    /// Spatial Laplacian at the field's space order.
    Laplace(FieldId),
    /// Spatial derivative along one axis.
    Deriv {
        /// Field differentiated.
        field: FieldId,
        /// Axis (0 = x, 1 = y, 2 = z).
        axis: usize,
        /// Derivative order (1 or 2).
        order: usize,
    },
    /// Staggered first derivative along one axis (half-point evaluation,
    /// used by velocity–stress elastic kernels on staggered grids).
    StagDeriv {
        /// Field differentiated.
        field: FieldId,
        /// Temporal offset of the differentiated field (elastic stress
        /// updates read the *freshly computed* velocities at `t_off = 1`).
        t_off: i32,
        /// Axis (0 = x, 1 = y, 2 = z).
        axis: usize,
        /// Forward (`i + ½`) if true, backward (`i − ½`) otherwise.
        forward: bool,
    },
    /// Sum.
    Add(Box<Expr>, Box<Expr>),
    /// Difference.
    Sub(Box<Expr>, Box<Expr>),
    /// Product.
    Mul(Box<Expr>, Box<Expr>),
    /// Quotient.
    Div(Box<Expr>, Box<Expr>),
    /// Negation.
    Neg(Box<Expr>),
}

impl Expr {
    /// Build a wavefield access.
    pub fn access(field: FieldId, t_off: i32, offs: [i32; 3]) -> Expr {
        Expr::Access {
            field,
            t_off,
            offs,
        }
    }

    /// Literal constant.
    pub fn c(v: f64) -> Expr {
        Expr::Const(v)
    }

    /// Does this expression contain the exact access `field[t + t_off]` at
    /// zero spatial offset, or any derivative node that would produce it?
    pub fn contains_access(&self, field: FieldId, t_off: i32) -> bool {
        match self {
            Expr::Const(_) | Expr::Param(_) => false,
            Expr::Access {
                field: f,
                t_off: t,
                ..
            } => *f == field && *t == t_off,
            // Derivative nodes reference the field at t_off 0 only.
            Expr::Laplace(f) | Expr::Deriv { field: f, .. } => *f == field && t_off == 0,
            Expr::StagDeriv {
                field: f,
                t_off: t,
                ..
            } => *f == field && *t == t_off,
            Expr::Dt2(f) | Expr::Dt(f) => *f == field && (t_off == -1 || t_off == 0 || t_off == 1),
            Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) | Expr::Div(a, b) => {
                a.contains_access(field, t_off) || b.contains_access(field, t_off)
            }
            Expr::Neg(a) => a.contains_access(field, t_off),
        }
    }

    /// Structural size (node count) — used to sanity-bound lowering output.
    pub fn size(&self) -> usize {
        match self {
            Expr::Const(_)
            | Expr::Access { .. }
            | Expr::Param(_)
            | Expr::Dt2(_)
            | Expr::Dt(_)
            | Expr::Laplace(_)
            | Expr::Deriv { .. }
            | Expr::StagDeriv { .. } => 1,
            Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) | Expr::Div(a, b) => {
                1 + a.size() + b.size()
            }
            Expr::Neg(a) => 1 + a.size(),
        }
    }
}

impl std::ops::Add for Expr {
    type Output = Expr;
    fn add(self, rhs: Expr) -> Expr {
        Expr::Add(Box::new(self), Box::new(rhs))
    }
}

impl std::ops::Sub for Expr {
    type Output = Expr;
    fn sub(self, rhs: Expr) -> Expr {
        Expr::Sub(Box::new(self), Box::new(rhs))
    }
}

impl std::ops::Mul for Expr {
    type Output = Expr;
    fn mul(self, rhs: Expr) -> Expr {
        Expr::Mul(Box::new(self), Box::new(rhs))
    }
}

impl std::ops::Div for Expr {
    type Output = Expr;
    fn div(self, rhs: Expr) -> Expr {
        Expr::Div(Box::new(self), Box::new(rhs))
    }
}

impl std::ops::Neg for Expr {
    type Output = Expr;
    fn neg(self) -> Expr {
        Expr::Neg(Box::new(self))
    }
}

impl std::ops::Mul<Expr> for f64 {
    type Output = Expr;
    fn mul(self, rhs: Expr) -> Expr {
        Expr::Const(self) * rhs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(n: usize) -> FieldId {
        FieldId(n)
    }

    #[test]
    fn operators_build_trees() {
        let e = Expr::c(2.0) * Expr::access(f(0), 0, [0; 3]) + Expr::Param(f(1));
        assert_eq!(e.size(), 5);
        let e2 = 3.0 * Expr::access(f(0), 1, [0; 3]) - Expr::c(1.0);
        assert!(matches!(e2, Expr::Sub(_, _)));
        let e3 = -Expr::c(1.0) / Expr::Param(f(1));
        assert!(matches!(e3, Expr::Div(_, _)));
    }

    #[test]
    fn contains_access_sees_through_arithmetic() {
        let u = f(0);
        let e = Expr::Param(f(1)) * Expr::access(u, 1, [0; 3]) + Expr::c(3.0);
        assert!(e.contains_access(u, 1));
        assert!(!e.contains_access(u, 0));
        assert!(!e.contains_access(f(1), 1));
    }

    #[test]
    fn derivative_nodes_count_as_current_time() {
        let u = f(0);
        assert!(Expr::Laplace(u).contains_access(u, 0));
        assert!(!Expr::Laplace(u).contains_access(u, 1));
        // dt2 spans t−1..t+1
        assert!(Expr::Dt2(u).contains_access(u, 1));
        assert!(Expr::Dt2(u).contains_access(u, -1));
    }
}
