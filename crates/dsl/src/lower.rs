//! Spatial lowering: expand derivative nodes into explicit FD stencil sums.
//!
//! This is the "compiler" half of the mini-Devito: a solved [`crate::Update`]
//! still contains symbolic `laplace` / `Deriv` nodes; lowering replaces them
//! with [`LowExpr::Stencil`] nodes carrying explicit offset/weight lists
//! (Fornberg weights premultiplied by the grid-spacing factors) and folds
//! constants. The result is an interpretable kernel — the analogue of
//! Devito's generated C, executed by [`crate::DslOperator`].

use crate::expr::Expr;
use crate::field::{Context, FieldId, FieldKind};
use tempest_stencil::{central_coeffs, staggered_coeffs};

/// A lowered, directly interpretable expression.
#[derive(Debug, Clone, PartialEq)]
pub enum LowExpr {
    /// Literal.
    Const(f32),
    /// Wavefield access with time/space offsets.
    Access {
        /// Field accessed.
        field: FieldId,
        /// Temporal offset.
        t_off: i32,
        /// Spatial offsets.
        offs: [i32; 3],
    },
    /// Point-wise parameter access.
    Param(FieldId),
    /// An expanded stencil: `Σ_k w_k · field[t + t_off][p + off_k]`.
    Stencil {
        /// Field accessed.
        field: FieldId,
        /// Temporal offset.
        t_off: i32,
        /// `(offset, weight)` taps.
        taps: Vec<([i32; 3], f32)>,
    },
    /// Sum.
    Add(Box<LowExpr>, Box<LowExpr>),
    /// Difference.
    Sub(Box<LowExpr>, Box<LowExpr>),
    /// Product.
    Mul(Box<LowExpr>, Box<LowExpr>),
    /// Quotient.
    Div(Box<LowExpr>, Box<LowExpr>),
    /// Negation.
    Neg(Box<LowExpr>),
}

impl LowExpr {
    /// Maximum |spatial offset| referenced anywhere (halo requirement and
    /// wave-front skew of the lowered kernel).
    pub fn radius(&self) -> usize {
        match self {
            LowExpr::Const(_) | LowExpr::Param(_) => 0,
            LowExpr::Access { offs, .. } => {
                offs.iter().map(|o| o.unsigned_abs() as usize).max().unwrap()
            }
            LowExpr::Stencil { taps, .. } => taps
                .iter()
                .map(|(o, _)| o.iter().map(|v| v.unsigned_abs() as usize).max().unwrap())
                .max()
                .unwrap_or(0),
            LowExpr::Add(a, b) | LowExpr::Sub(a, b) | LowExpr::Mul(a, b) | LowExpr::Div(a, b) => {
                a.radius().max(b.radius())
            }
            LowExpr::Neg(a) => a.radius(),
        }
    }

    /// Oldest time level read (most negative `t_off`).
    pub fn min_t_off(&self) -> i32 {
        match self {
            LowExpr::Const(_) | LowExpr::Param(_) => 0,
            LowExpr::Access { t_off, .. } | LowExpr::Stencil { t_off, .. } => *t_off,
            LowExpr::Add(a, b) | LowExpr::Sub(a, b) | LowExpr::Mul(a, b) | LowExpr::Div(a, b) => {
                a.min_t_off().min(b.min_t_off())
            }
            LowExpr::Neg(a) => a.min_t_off(),
        }
    }

    /// Node count.
    pub fn size(&self) -> usize {
        match self {
            LowExpr::Const(_) | LowExpr::Access { .. } | LowExpr::Param(_) => 1,
            LowExpr::Stencil { taps, .. } => 1 + taps.len(),
            LowExpr::Add(a, b) | LowExpr::Sub(a, b) | LowExpr::Mul(a, b) | LowExpr::Div(a, b) => {
                1 + a.size() + b.size()
            }
            LowExpr::Neg(a) => 1 + a.size(),
        }
    }
}

/// Lower a symbolic expression: expand spatial derivative nodes into stencil
/// taps and fold constant arithmetic.
///
/// # Panics
/// If the expression still contains time-derivative nodes (run
/// [`crate::solve::expand_time_derivatives`] / [`crate::solve()`](crate::solve()) first).
pub fn lower(ctx: &Context, e: &Expr) -> LowExpr {
    let l = lower_inner(ctx, e);
    fold(l)
}

fn lower_inner(ctx: &Context, e: &Expr) -> LowExpr {
    match e {
        Expr::Const(v) => LowExpr::Const(*v as f32),
        Expr::Access {
            field,
            t_off,
            offs,
        } => LowExpr::Access {
            field: *field,
            t_off: *t_off,
            offs: *offs,
        },
        Expr::Param(f) => {
            debug_assert!(matches!(ctx.decl(*f).kind, FieldKind::Parameter));
            LowExpr::Param(*f)
        }
        Expr::Dt2(_) | Expr::Dt(_) => {
            panic!("time derivatives must be expanded before lowering (use solve())")
        }
        Expr::Laplace(f) => {
            let so = ctx.decl(*f).space_order;
            let h = ctx.domain().spacing();
            let w = central_coeffs(2, so);
            let r = (so / 2) as i32;
            let mut taps: Vec<([i32; 3], f32)> = Vec::new();
            let mut center = 0.0f64;
            for axis in 0..3 {
                let inv_h2 = 1.0 / (h[axis] as f64 * h[axis] as f64);
                center += w[r as usize] * inv_h2;
                for k in 1..=r {
                    let wk = (w[(r + k) as usize] * inv_h2) as f32;
                    let mut op = [0i32; 3];
                    op[axis] = k;
                    taps.push((op, wk));
                    let mut om = [0i32; 3];
                    om[axis] = -k;
                    taps.push((om, wk));
                }
            }
            taps.push(([0, 0, 0], center as f32));
            LowExpr::Stencil {
                field: *f,
                t_off: 0,
                taps,
            }
        }
        Expr::Deriv { field, axis, order } => {
            let so = ctx.decl(*field).space_order;
            let h = ctx.domain().spacing()[*axis] as f64;
            let w = central_coeffs(*order, so);
            let r = (so / 2) as i32;
            let scale = 1.0 / h.powi(*order as i32);
            let taps: Vec<([i32; 3], f32)> = (-r..=r)
                .filter_map(|k| {
                    let wk = w[(k + r) as usize] * scale;
                    // Drop numerically-zero taps (the centre weight of an
                    // antisymmetric first derivative is zero up to rounding).
                    if wk.abs() < 1e-12 * scale {
                        return None;
                    }
                    let mut o = [0i32; 3];
                    o[*axis] = k;
                    Some((o, wk as f32))
                })
                .collect();
            LowExpr::Stencil {
                field: *field,
                t_off: 0,
                taps,
            }
        }
        Expr::StagDeriv {
            field,
            t_off,
            axis,
            forward,
        } => {
            let so = ctx.decl(*field).space_order;
            let h = ctx.domain().spacing()[*axis] as f64;
            let w = staggered_coeffs(so);
            // Forward: Σ w[k]·(f[+(k+1)] − f[−k]); backward shifts by −1.
            let mut taps: Vec<([i32; 3], f32)> = Vec::with_capacity(2 * w.len());
            for (k, &wk) in w.iter().enumerate() {
                let wk = (wk / h) as f32;
                let (op, om) = if *forward {
                    (k as i32 + 1, -(k as i32))
                } else {
                    (k as i32, -(k as i32 + 1))
                };
                let mut o1 = [0i32; 3];
                o1[*axis] = op;
                taps.push((o1, wk));
                let mut o2 = [0i32; 3];
                o2[*axis] = om;
                taps.push((o2, -wk));
            }
            LowExpr::Stencil {
                field: *field,
                t_off: *t_off,
                taps,
            }
        }
        Expr::Add(a, b) => LowExpr::Add(
            Box::new(lower_inner(ctx, a)),
            Box::new(lower_inner(ctx, b)),
        ),
        Expr::Sub(a, b) => LowExpr::Sub(
            Box::new(lower_inner(ctx, a)),
            Box::new(lower_inner(ctx, b)),
        ),
        Expr::Mul(a, b) => LowExpr::Mul(
            Box::new(lower_inner(ctx, a)),
            Box::new(lower_inner(ctx, b)),
        ),
        Expr::Div(a, b) => LowExpr::Div(
            Box::new(lower_inner(ctx, a)),
            Box::new(lower_inner(ctx, b)),
        ),
        Expr::Neg(a) => LowExpr::Neg(Box::new(lower_inner(ctx, a))),
    }
}

/// Constant folding over the lowered tree.
fn fold(e: LowExpr) -> LowExpr {
    match e {
        LowExpr::Add(a, b) => match (fold(*a), fold(*b)) {
            (LowExpr::Const(x), LowExpr::Const(y)) => LowExpr::Const(x + y),
            (LowExpr::Const(0.0), other) | (other, LowExpr::Const(0.0)) => other,
            (x, y) => LowExpr::Add(Box::new(x), Box::new(y)),
        },
        LowExpr::Sub(a, b) => match (fold(*a), fold(*b)) {
            (LowExpr::Const(x), LowExpr::Const(y)) => LowExpr::Const(x - y),
            (other, LowExpr::Const(0.0)) => other,
            (x, y) => LowExpr::Sub(Box::new(x), Box::new(y)),
        },
        LowExpr::Mul(a, b) => match (fold(*a), fold(*b)) {
            (LowExpr::Const(x), LowExpr::Const(y)) => LowExpr::Const(x * y),
            (LowExpr::Const(1.0), other) | (other, LowExpr::Const(1.0)) => other,
            (x, y) => LowExpr::Mul(Box::new(x), Box::new(y)),
        },
        LowExpr::Div(a, b) => match (fold(*a), fold(*b)) {
            (LowExpr::Const(x), LowExpr::Const(y)) => LowExpr::Const(x / y),
            (other, LowExpr::Const(1.0)) => other,
            (x, y) => LowExpr::Div(Box::new(x), Box::new(y)),
        },
        LowExpr::Neg(a) => match fold(*a) {
            LowExpr::Const(x) => LowExpr::Const(-x),
            x => LowExpr::Neg(Box::new(x)),
        },
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempest_grid::{Domain, Shape};

    fn ctx() -> Context {
        Context::new(Domain::uniform(Shape::cube(8), 10.0))
    }

    #[test]
    fn laplace_lowering_tap_count_and_radius() {
        let mut c = ctx();
        let u = c.time_function("u", 2, 4);
        let l = lower(&c, &u.laplace());
        match &l {
            LowExpr::Stencil { taps, .. } => assert_eq!(taps.len(), 13),
            other => panic!("expected stencil, got {other:?}"),
        }
        assert_eq!(l.radius(), 2);
    }

    #[test]
    fn first_derivative_skips_zero_center() {
        let mut c = ctx();
        let u = c.time_function("u", 2, 8);
        let l = lower(&c, &u.d1(2));
        match &l {
            LowExpr::Stencil { taps, .. } => {
                assert_eq!(taps.len(), 8, "order-8 first derivative has 8 taps");
                assert!(taps.iter().all(|(o, _)| o[2] != 0));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn weights_include_spacing() {
        let mut c = Context::new(Domain::uniform(Shape::cube(8), 2.0));
        let u = c.time_function("u", 2, 2);
        let l = lower(&c, &u.d2(0));
        match &l {
            LowExpr::Stencil { taps, .. } => {
                let w = taps.iter().find(|(o, _)| o[0] == 1).unwrap().1;
                assert!((w - 0.25).abs() < 1e-7, "1/h² = 0.25, got {w}");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn constants_fold() {
        let c = ctx();
        let e = Expr::c(2.0) * Expr::c(3.0) + Expr::c(1.0);
        assert_eq!(lower(&c, &e), LowExpr::Const(7.0));
        let e2 = Expr::c(1.0) * Expr::Param(crate::field::FieldId(0));
        let mut c2 = ctx();
        let _ = c2.parameter("m");
        assert_eq!(lower(&c2, &e2), LowExpr::Param(crate::field::FieldId(0)));
    }

    #[test]
    fn min_t_off_tracks_backward_reads() {
        let mut c = ctx();
        c.set_dt(1e-3);
        let u = c.time_function("u", 2, 4);
        let solved = crate::solve::solve(&c, &(u.dt2() - u.laplace()), u).unwrap();
        let l = lower(&c, solved.rhs());
        assert_eq!(l.min_t_off(), -1);
        assert_eq!(l.radius(), 2);
    }

    #[test]
    #[should_panic(expected = "time derivatives")]
    fn rejects_unexpanded_time_derivatives() {
        let mut c = ctx();
        let u = c.time_function("u", 2, 4);
        let _ = lower(&c, &u.dt2());
    }
}
