//! The DSL operator: executes lowered updates with classic off-grid sparse
//! operators — the reference semantics the optimised `tempest-core`
//! propagators must reproduce, and a renderer of the paper's Listing-1 style
//! loop nests.

use crate::field::{Context, FieldHandle, FieldId, FieldKind};
use crate::lower::{lower, LowExpr};
use crate::solve::Update;
use tempest_grid::{Array2, Array3, TimeBuffer};
use tempest_sparse::interp::trilinear_all;
use tempest_sparse::{InterpStencil, SparsePoints};

/// How an injected amplitude is scaled at each affected grid point.
#[derive(Debug, Clone, Copy)]
pub enum InjectScale {
    /// Multiply by a constant (e.g. `dt` for the elastic source).
    Const(f32),
    /// Multiply by `c / param(x,y,z)` (e.g. `dt²/m` for acoustic — Devito's
    /// `src * dt**2 / m`).
    ConstOverParam(f32, FieldId),
}

struct Injection {
    field: FieldId,
    points: SparsePoints,
    stencils: Vec<InterpStencil>,
    wavelets: Array2<f32>,
    scale: InjectScale,
}

struct Interpolation {
    field: FieldId,
    points: SparsePoints,
    stencils: Vec<InterpStencil>,
    trace: Array2<f32>,
}

struct LoweredUpdate {
    field: FieldId,
    expr: LowExpr,
    time_order: usize,
}

/// An executable DSL operator (Devito `Operator`).
pub struct DslOperator {
    ctx: Context,
    updates: Vec<LoweredUpdate>,
    buffers: Vec<Option<TimeBuffer>>,
    params: Vec<Option<Array3<f32>>>,
    injections: Vec<Injection>,
    interpolations: Vec<Interpolation>,
    nt: usize,
}

impl DslOperator {
    /// Lower and assemble an operator from solved updates.
    ///
    /// `nt` is the number of timesteps `run` will execute (wavelet matrices
    /// and traces are sized to it).
    pub fn new(ctx: Context, updates: Vec<Update>, nt: usize) -> Self {
        assert!(!updates.is_empty(), "an operator needs at least one update");
        assert!(nt >= 1);
        let lowered: Vec<LoweredUpdate> = updates
            .iter()
            .map(|u| {
                let expr = lower(&ctx, u.rhs());
                let time_order = match ctx.decl(u.field()).kind {
                    FieldKind::TimeFunction { time_order } => time_order,
                    FieldKind::Parameter => panic!("cannot update a parameter field"),
                };
                LoweredUpdate {
                    field: u.field(),
                    expr,
                    time_order,
                }
            })
            .collect();
        // Allocate buffers: halo = max radius over all updates; levels from
        // each field's time order.
        let halo = lowered.iter().map(|u| u.expr.radius()).max().unwrap();
        let shape = ctx.domain().shape();
        let n_fields = ctx.decls().len();
        let mut buffers: Vec<Option<TimeBuffer>> = (0..n_fields).map(|_| None).collect();
        for u in &lowered {
            buffers[u.field.0] = Some(TimeBuffer::zeros(shape, halo, u.time_order + 1));
        }
        let params = (0..n_fields).map(|_| None).collect();
        DslOperator {
            ctx,
            updates: lowered,
            buffers,
            params,
            injections: Vec::new(),
            interpolations: Vec::new(),
            nt,
        }
    }

    /// Bind a parameter volume (must match the grid shape).
    pub fn set_parameter(&mut self, id: FieldId, data: Array3<f32>) {
        assert!(
            matches!(self.ctx.decl(id).kind, FieldKind::Parameter),
            "field {id:?} is not a parameter"
        );
        assert_eq!(data.shape(), self.ctx.domain().shape());
        self.params[id.0] = Some(data);
    }

    /// Attach an off-grid source set injecting `wavelet` into `field`
    /// (Devito `src.inject(field.forward, expr=...)`).
    pub fn add_injection(
        &mut self,
        field: FieldHandle,
        points: &SparsePoints,
        wavelet: &[f32],
        scale: InjectScale,
    ) {
        assert!(wavelet.len() >= self.nt, "wavelet shorter than nt");
        let stencils = trilinear_all(self.ctx.domain(), points);
        let mut wavelets = Array2::zeros(self.nt, points.len());
        for (t, &w) in wavelet.iter().take(self.nt).enumerate() {
            wavelets.row_mut(t).fill(w);
        }
        self.injections.push(Injection {
            field: field.id(),
            points: points.clone(),
            stencils,
            wavelets,
            scale,
        });
    }

    /// Attach an off-grid receiver set measuring `field`
    /// (Devito `rec.interpolate(field)`); returns the trace index.
    pub fn add_interpolation(&mut self, field: FieldHandle, points: &SparsePoints) -> usize {
        let stencils = trilinear_all(self.ctx.domain(), points);
        self.interpolations.push(Interpolation {
            field: field.id(),
            points: points.clone(),
            stencils,
            trace: Array2::zeros(self.nt, points.len()),
        });
        self.interpolations.len() - 1
    }

    /// Execute all `nt` timesteps (Listing-1 structure: dense updates, then
    /// source injection, then receiver interpolation, per step).
    pub fn run(&mut self) {
        self.reset_state();
        let shape = self.ctx.domain().shape();
        for k in 0..self.nt {
            // Dense updates.
            for ui in 0..self.updates.len() {
                let (field, time_order) = (self.updates[ui].field, self.updates[ui].time_order);
                let base = k + time_order - 1;
                let write = base + 1;
                // Evaluate into a scratch level copy to keep the borrow
                // checker happy without unsafe (performance is not this
                // path's job).
                let mut scratch = Array3::from_shape(shape);
                for x in 0..shape.nx {
                    for y in 0..shape.ny {
                        for z in 0..shape.nz {
                            let v = self.eval(&self.updates[ui].expr, base, x, y, z);
                            scratch.set(x, y, z, v);
                        }
                    }
                }
                let buf = self.buffers[field.0].as_mut().unwrap();
                let lvl = buf.level_mut(write);
                for x in 0..shape.nx {
                    for y in 0..shape.ny {
                        for z in 0..shape.nz {
                            lvl.set(x, y, z, scratch.get(x, y, z));
                        }
                    }
                }
            }
            // Source injection into the forward level.
            for inj in &self.injections {
                let time_order = self
                    .updates
                    .iter()
                    .find(|u| u.field == inj.field)
                    .map(|u| u.time_order)
                    .expect("injection target must have an update");
                let write = k + time_order;
                let scales: Vec<f32> = Vec::new();
                let _ = scales;
                for (s, st) in inj.stencils.iter().enumerate() {
                    let a = inj.wavelets.get(k, s);
                    for (c, w) in st.nonzero() {
                        let sc = match inj.scale {
                            InjectScale::Const(v) => v,
                            InjectScale::ConstOverParam(v, p) => {
                                v / self.params[p.0]
                                    .as_ref()
                                    .expect("unbound scale parameter")
                                    .get(c[0], c[1], c[2])
                            }
                        };
                        let buf = self.buffers[inj.field.0].as_mut().unwrap();
                        buf.level_mut(write).add(c[0], c[1], c[2], sc * (w * a));
                    }
                }
            }
            // Receiver interpolation from the forward level.
            for ii in 0..self.interpolations.len() {
                let field = self.interpolations[ii].field;
                let time_order = self
                    .updates
                    .iter()
                    .find(|u| u.field == field)
                    .map(|u| u.time_order)
                    .expect("interpolation target must have an update");
                let read = k + time_order;
                let mut row = vec![0.0f32; self.interpolations[ii].trace.dims()[1]];
                {
                    let buf = self.buffers[field.0].as_ref().unwrap();
                    let lvl = buf.level(read);
                    for (r, st) in self.interpolations[ii].stencils.iter().enumerate() {
                        let mut acc = 0.0f32;
                        for (c, w) in st.nonzero() {
                            acc += w * lvl.get(c[0], c[1], c[2]);
                        }
                        row[r] = acc;
                    }
                }
                self.interpolations[ii].trace.row_mut(k).copy_from_slice(&row);
            }
        }
    }

    /// Interior snapshot of a field at logical step `t`.
    pub fn field_copy(&self, id: FieldId, t: usize) -> Array3<f32> {
        self.buffers[id.0]
            .as_ref()
            .expect("not a time function")
            .level(t)
            .interior_copy()
    }

    /// Snapshot of the final (forward) level of a field after `run`.
    pub fn final_field(&self, id: FieldId) -> Array3<f32> {
        let time_order = self
            .updates
            .iter()
            .find(|u| u.field == id)
            .map(|u| u.time_order)
            .expect("field has no update");
        self.field_copy(id, self.nt - 1 + time_order)
    }

    /// Recorded trace of interpolation `idx`.
    pub fn trace(&self, idx: usize) -> &Array2<f32> {
        &self.interpolations[idx].trace
    }

    fn eval(&self, e: &LowExpr, base: usize, x: usize, y: usize, z: usize) -> f32 {
        eval_expr(e, &self.buffers, &self.params, base, x, y, z)
    }

    /// Zero all wavefield buffers and traces (run-to-run reset).
    pub fn reset_state(&mut self) {
        for b in self.buffers.iter_mut().flatten() {
            b.clear();
        }
        for it in &mut self.interpolations {
            it.trace.fill(0.0);
        }
    }

    /// Execute all timesteps under **automated wave-front temporal
    /// blocking** — the paper's stated future work ("The next step is the
    /// full automation and integration in the Devito DSL", §V-B).
    ///
    /// Everything the schedule needs is derived from the symbolic
    /// specification:
    /// * the skew comes from the lowered kernels' maximum stencil radius;
    /// * each update becomes one virtual step per timestep (multi-field
    ///   systems with intra-step dependencies get the Fig. 8b widened
    ///   angle automatically);
    /// * off-grid injections are precomputed into grid-aligned `SM`/`SID`/
    ///   `src_dcmp` structures (§II.A) and fused into the blocked loop;
    /// * receiver interpolation is fused through the mirror structures.
    ///
    /// Produces the same results as the classic [`DslOperator::run`]
    /// (bitwise on the wavefields for single-source problems).
    pub fn run_wavefront(&mut self, tile_x: usize, tile_y: usize, tile_t: usize) {
        use tempest_sparse::{ReceiverPrecompute, SourcePrecompute};
        use tempest_tiling::wavefront::{self, WavefrontSpec};

        self.reset_state();
        let phases = self.updates.len();
        let skew = self
            .updates
            .iter()
            .map(|u| u.expr.radius())
            .max()
            .unwrap()
            .max(1);
        let shape = self.ctx.domain().shape();
        let spec = WavefrontSpec::new(
            tile_x,
            tile_y,
            (tile_t * phases).max(1),
            skew,
            tile_x,
            tile_y,
        );
        // Precompute the grid-aligned sparse structures (Listings 2–3).
        let inj_pre: Vec<SourcePrecompute> = self
            .injections
            .iter()
            .map(|inj| SourcePrecompute::build(self.ctx.domain(), &inj.points, &inj.wavelets))
            .collect();
        let rec_pre: Vec<ReceiverPrecompute> = self
            .interpolations
            .iter()
            .map(|it| ReceiverPrecompute::build(self.ctx.domain(), &it.points))
            .collect();

        let nvt = self.nt * phases;
        // Split borrows so the schedule closure can mutate buffers/traces
        // while reading updates/params.
        let DslOperator {
            updates,
            buffers,
            params,
            injections,
            interpolations,
            ..
        } = self;
        let mut scratch: Vec<f32> = Vec::new();
        wavefront::execute_seq(shape, nvt, &spec, |vt, region| {
            let k = vt / phases;
            let ui = vt % phases;
            let u = &updates[ui];
            let base = k + u.time_order - 1;
            let write = base + 1;
            // 1. dense update for this region (evaluate, then write).
            scratch.clear();
            for (x, y, z) in region.iter() {
                scratch.push(eval_expr(&u.expr, buffers, params, base, x, y, z));
            }
            {
                let lvl = buffers[u.field.0].as_mut().unwrap().level_mut(write);
                for ((x, y, z), v) in region.iter().zip(&scratch) {
                    lvl.set(x, y, z, *v);
                }
            }
            // 2. fused precomputed injection (Listing 4) for this field.
            for (inj, pre) in injections.iter().zip(&inj_pre) {
                if inj.field != u.field {
                    continue;
                }
                let lvl = buffers[u.field.0].as_mut().unwrap().level_mut(write);
                match inj.scale {
                    InjectScale::Const(v) => {
                        pre.apply_to_field(lvl, k, region, |_, _, _| v);
                    }
                    InjectScale::ConstOverParam(v, p) => {
                        let pa = params[p.0].as_ref().expect("unbound scale parameter");
                        pre.apply_to_field(lvl, k, region, |x, y, z| v / pa.get(x, y, z));
                    }
                }
            }
            // 3. fused receiver gather (the mirror structures).
            for (ii, pre) in rec_pre.iter().enumerate() {
                if interpolations[ii].field != u.field {
                    continue;
                }
                let lvl = buffers[u.field.0].as_ref().unwrap().level(write);
                pre.gather_region(lvl, region, interpolations[ii].trace.row_mut(k));
            }
        });
    }

    /// Render the operator's loop nest as pseudocode in the style of the
    /// paper's Listing 1.
    pub fn pseudocode(&self) -> String {
        let mut out = String::new();
        out.push_str("for t = 1 to nt do\n");
        out.push_str("  for x = 1 to nx do\n");
        out.push_str("    for y = 1 to ny do\n");
        out.push_str("      for z = 1 to nz do\n");
        for u in &self.updates {
            out.push_str(&format!(
                "        {}[t+1, x, y, z] = {};\n",
                self.ctx.decl(u.field).name,
                self.render(&u.expr)
            ));
        }
        for inj in &self.injections {
            out.push_str("  foreach s in sources do\n");
            out.push_str("    for i = 1 to np do\n");
            out.push_str("      xs, ys, zs = map(s, i);\n");
            out.push_str(&format!(
                "      {}[t+1, xs, ys, zs] += f(src(t, s));\n",
                self.ctx.decl(inj.field).name
            ));
        }
        for it in &self.interpolations {
            out.push_str("  foreach r in receivers do\n");
            out.push_str(&format!(
                "    rec[t, r] = interpolate({}, r);\n",
                self.ctx.decl(it.field).name
            ));
        }
        out
    }

    fn render(&self, e: &LowExpr) -> String {
        match e {
            LowExpr::Const(v) => format!("{v}"),
            LowExpr::Param(p) => format!("{}[x, y, z]", self.ctx.decl(*p).name),
            LowExpr::Access { field, t_off, offs } => format!(
                "{}[t{:+}, x{:+}, y{:+}, z{:+}]",
                self.ctx.decl(*field).name,
                t_off,
                offs[0],
                offs[1],
                offs[2]
            ),
            LowExpr::Stencil { field, taps, .. } => format!(
                "stencil<{}pt>({})",
                taps.len(),
                self.ctx.decl(*field).name
            ),
            LowExpr::Add(a, b) => format!("({} + {})", self.render(a), self.render(b)),
            LowExpr::Sub(a, b) => format!("({} - {})", self.render(a), self.render(b)),
            LowExpr::Mul(a, b) => format!("({} * {})", self.render(a), self.render(b)),
            LowExpr::Div(a, b) => format!("({} / {})", self.render(a), self.render(b)),
            LowExpr::Neg(a) => format!("(-{})", self.render(a)),
        }
    }
}

/// Evaluate a lowered expression at one grid point (free function so the
/// wave-front driver can split borrows between read and write state).
fn eval_expr(
    e: &LowExpr,
    buffers: &[Option<TimeBuffer>],
    params: &[Option<Array3<f32>>],
    base: usize,
    x: usize,
    y: usize,
    z: usize,
) -> f32 {
    match e {
        LowExpr::Const(v) => *v,
        LowExpr::Param(p) => params[p.0]
            .as_ref()
            .expect("unbound parameter")
            .get(x, y, z),
        LowExpr::Access { field, t_off, offs } => {
            read_off(buffers, *field, base, *t_off, x, y, z, *offs)
        }
        LowExpr::Stencil { field, t_off, taps } => {
            let mut acc = 0.0f32;
            for &(o, w) in taps {
                acc += w * read_off(buffers, *field, base, *t_off, x, y, z, o);
            }
            acc
        }
        LowExpr::Add(a, b) => {
            eval_expr(a, buffers, params, base, x, y, z)
                + eval_expr(b, buffers, params, base, x, y, z)
        }
        LowExpr::Sub(a, b) => {
            eval_expr(a, buffers, params, base, x, y, z)
                - eval_expr(b, buffers, params, base, x, y, z)
        }
        LowExpr::Mul(a, b) => {
            eval_expr(a, buffers, params, base, x, y, z)
                * eval_expr(b, buffers, params, base, x, y, z)
        }
        LowExpr::Div(a, b) => {
            eval_expr(a, buffers, params, base, x, y, z)
                / eval_expr(b, buffers, params, base, x, y, z)
        }
        LowExpr::Neg(a) => -eval_expr(a, buffers, params, base, x, y, z),
    }
}

/// Raw (halo-padded) wavefield read; offsets may reach into the zero halo.
#[inline]
#[allow(clippy::too_many_arguments)]
fn read_off(
    buffers: &[Option<TimeBuffer>],
    field: FieldId,
    base: usize,
    t_off: i32,
    x: usize,
    y: usize,
    z: usize,
    offs: [i32; 3],
) -> f32 {
    let buf = buffers[field.0].as_ref().expect("not a time function");
    let t = (base as i64 + t_off as i64) as usize;
    let lvl = buf.level(t);
    let raw = lvl.raw();
    let h = lvl.halo() as i64;
    let [_, ny, nz] = raw.dims();
    let ix = x as i64 + h + offs[0] as i64;
    let iy = y as i64 + h + offs[1] as i64;
    let iz = z as i64 + h + offs[2] as i64;
    raw.as_slice()[((ix * ny as i64 + iy) * nz as i64 + iz) as usize]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solve::solve;
    use tempest_grid::{Domain, Shape};

    /// Build the paper's §III-A acoustic operator at a tiny size.
    fn acoustic_op(n: usize, nt: usize, so: usize) -> (DslOperator, FieldHandle, usize) {
        let domain = Domain::uniform(Shape::cube(n), 10.0);
        let mut ctx = Context::new(domain);
        ctx.set_dt(0.001);
        let u = ctx.time_function("u", 2, so);
        let m = ctx.parameter("m");
        let eq = m.x() * u.dt2() - u.laplace();
        let upd = solve(&ctx, &eq, u).unwrap();
        let m_id = m.id();
        let mut op = DslOperator::new(ctx, vec![upd], nt);
        let s = Shape::cube(n);
        op.set_parameter(m_id, Array3::full(s.nx, s.ny, s.nz, 1.0 / (2000.0f32 * 2000.0)));
        let dom = Domain::uniform(s, 10.0);
        let src = SparsePoints::single_center(&dom, 0.4);
        let wl = tempest_sparse::ricker(30.0, 0.001, nt);
        op.add_injection(u, &src, &wl, InjectScale::ConstOverParam(1e-6, m_id));
        let rec = SparsePoints::receiver_line(&dom, 3, 0.3);
        let ridx = op.add_interpolation(u, &rec);
        (op, u, ridx)
    }

    #[test]
    fn runs_and_excites_wavefield() {
        let (mut op, u, ridx) = acoustic_op(12, 8, 4);
        op.run();
        let f = op.final_field(u.id());
        assert!(f.max_abs() > 0.0, "source must excite the field");
        assert!(f.max_abs().is_finite());
        let tr = op.trace(ridx);
        assert_eq!(tr.dims(), [8, 3]);
    }

    #[test]
    fn pseudocode_has_listing1_structure() {
        let (op, _, _) = acoustic_op(8, 4, 4);
        let pc = op.pseudocode();
        assert!(pc.contains("for t = 1 to nt do"));
        assert!(pc.contains("for z = 1 to nz do"));
        assert!(pc.contains("u[t+1, x, y, z]"));
        assert!(pc.contains("foreach s in sources do"));
        assert!(pc.contains("foreach r in receivers do"));
    }

    #[test]
    fn laplacian_of_quadratic_via_dsl() {
        // Pure spatial check: u[t] = x² ⇒ one undamped step of
        // u⁺ = 2u − u⁻ + dt²/m·Δu changes the centre by dt²/m · 2/h²·h²·…
        // Instead verify directly: eval of the lowered laplace on a
        // quadratic equals the analytic 2·(1/h²-units) value.
        let domain = Domain::uniform(Shape::cube(9), 1.0);
        let mut ctx = Context::new(domain);
        ctx.set_dt(1.0);
        let u = ctx.time_function("u", 2, 4);
        let upd = Update::explicit(u.id(), u.laplace());
        let mut op = DslOperator::new(ctx, vec![upd], 1);
        // Fill level base=1 (t_off 0 for k=0, time_order 2) with x²+2y²+3z².
        {
            let buf = op.buffers[u.id().0].as_mut().unwrap();
            let lvl = buf.level_mut(1);
            for (x, y, z) in Shape::cube(9).iter() {
                lvl.set(
                    x,
                    y,
                    z,
                    (x * x) as f32 + 2.0 * (y * y) as f32 + 3.0 * (z * z) as f32,
                );
            }
        }
        let v = op.eval(&op.updates[0].expr, 1, 4, 4, 4);
        assert!((v - 12.0).abs() < 1e-3, "Δ(x²+2y²+3z²) = 12, got {v}");
    }

    #[test]
    fn injection_scale_const_over_param() {
        let (mut op, u, _) = acoustic_op(12, 2, 4);
        op.run();
        // After the first step the wavefield support is exactly the 8-point
        // injection footprint.
        let f = op.field_copy(u.id(), 2);
        assert!(f.count_nonzero() >= 1);
        assert!(f.count_nonzero() <= 8);
    }

    #[test]
    fn automated_wavefront_matches_classic_run() {
        // The paper's future work, validated: temporal blocking derived
        // entirely from the symbolic spec reproduces the classic schedule
        // bitwise (single source).
        let (mut op, u, ridx) = acoustic_op(14, 10, 4);
        op.run();
        let classic_field = op.final_field(u.id());
        let classic_trace = op.trace(ridx).clone();
        assert!(classic_field.max_abs() > 0.0);

        for (tx, ty, tt) in [(6usize, 6usize, 3usize), (14, 14, 10), (4, 8, 2)] {
            op.run_wavefront(tx, ty, tt);
            let f = op.final_field(u.id());
            assert!(
                classic_field.bit_equal(&f),
                "tile ({tx},{ty},{tt}): max diff {}",
                classic_field.max_abs_diff(&f)
            );
            let tr = op.trace(ridx);
            let scale = classic_trace
                .as_slice()
                .iter()
                .fold(0.0f32, |m, &v| m.max(v.abs()))
                .max(1e-30);
            for i in 0..tr.len() {
                assert!(
                    (tr.as_slice()[i] - classic_trace.as_slice()[i]).abs() <= 1e-4 * scale,
                    "trace idx {i}"
                );
            }
        }
    }

    #[test]
    fn reset_state_makes_runs_reproducible() {
        let (mut op, u, _) = acoustic_op(10, 6, 4);
        op.run();
        let f1 = op.final_field(u.id());
        op.run();
        let f2 = op.final_field(u.id());
        assert!(f1.bit_equal(&f2));
    }

    #[test]
    #[should_panic(expected = "unbound parameter")]
    fn unbound_parameter_caught() {
        let domain = Domain::uniform(Shape::cube(8), 10.0);
        let mut ctx = Context::new(domain);
        ctx.set_dt(0.001);
        let u = ctx.time_function("u", 2, 4);
        let m = ctx.parameter("m");
        let eq = m.x() * u.dt2() - u.laplace();
        let upd = solve(&ctx, &eq, u).unwrap();
        let mut op = DslOperator::new(ctx, vec![upd], 2);
        op.run();
    }

    #[test]
    #[should_panic(expected = "not a parameter")]
    fn set_parameter_checks_kind() {
        let (mut op, u, _) = acoustic_op(8, 2, 4);
        op.set_parameter(u.id(), Array3::zeros(8, 8, 8));
    }
}
