//! Symbolic `solve` for the forward update (Devito's
//! `Eq(u.forward, solve(eq, u.forward))`).
//!
//! Given a PDE residual `expr == 0` that is *linear* in `u[t+1]`, expand the
//! time derivatives and rearrange:
//! `expr = A·u[t+1] + B  ⇒  u.forward = −B / A`.

use crate::expr::Expr;
use crate::field::{Context, FieldHandle, FieldId};

/// A solved forward-update assignment: `field[t+1] = rhs`.
#[derive(Debug, Clone, PartialEq)]
pub struct Update {
    field: FieldId,
    rhs: Expr,
}

impl Update {
    /// Construct directly from an explicit right-hand side (when no solve is
    /// needed, e.g. first-order systems written in update form).
    pub fn explicit(field: FieldId, rhs: Expr) -> Self {
        Update { field, rhs }
    }

    /// The updated field.
    pub fn field(&self) -> FieldId {
        self.field
    }

    /// The right-hand side expression.
    pub fn rhs(&self) -> &Expr {
        &self.rhs
    }
}

/// Errors from [`solve`].
#[derive(Debug, Clone, PartialEq)]
pub enum SolveError {
    /// The residual is not linear in the target forward access.
    NonLinear,
    /// The residual does not involve the target at all.
    TargetAbsent,
}

/// Expand `Dt` / `Dt2` time-derivative nodes of `target` into explicit
/// accesses, using the context's `dt`.
///
/// `u.dt2 → (u[t+1] − 2u[t] + u[t−1]) / dt²`,
/// `u.dt → (u[t+1] − u[t−1]) / (2·dt)` (centred, as Devito uses for the
/// damping term of a 2nd-order-in-time equation).
pub fn expand_time_derivatives(ctx: &Context, e: &Expr) -> Expr {
    let dt = ctx.dt();
    match e {
        Expr::Dt2(f) => {
            let up = Expr::access(*f, 1, [0; 3]);
            let u0 = Expr::access(*f, 0, [0; 3]);
            let um = Expr::access(*f, -1, [0; 3]);
            (up - 2.0 * u0 + um) / Expr::c(dt * dt)
        }
        Expr::Dt(f) => {
            let up = Expr::access(*f, 1, [0; 3]);
            let um = Expr::access(*f, -1, [0; 3]);
            (up - um) / Expr::c(2.0 * dt)
        }
        Expr::Add(a, b) => Expr::Add(
            Box::new(expand_time_derivatives(ctx, a)),
            Box::new(expand_time_derivatives(ctx, b)),
        ),
        Expr::Sub(a, b) => Expr::Sub(
            Box::new(expand_time_derivatives(ctx, a)),
            Box::new(expand_time_derivatives(ctx, b)),
        ),
        Expr::Mul(a, b) => Expr::Mul(
            Box::new(expand_time_derivatives(ctx, a)),
            Box::new(expand_time_derivatives(ctx, b)),
        ),
        Expr::Div(a, b) => Expr::Div(
            Box::new(expand_time_derivatives(ctx, a)),
            Box::new(expand_time_derivatives(ctx, b)),
        ),
        Expr::Neg(a) => Expr::Neg(Box::new(expand_time_derivatives(ctx, a))),
        other => other.clone(),
    }
}

/// Split `e` into `(A, B)` with `e ≡ A·target + B` where `target` is the
/// forward access of `field`; errors if `e` is non-linear in it.
fn linear_split(e: &Expr, field: FieldId) -> Result<(Expr, Expr), SolveError> {
    let is_target = |x: &Expr| {
        matches!(x, Expr::Access { field: f, t_off: 1, offs: [0, 0, 0] } if *f == field)
    };
    if is_target(e) {
        return Ok((Expr::c(1.0), Expr::c(0.0)));
    }
    match e {
        Expr::Add(a, b) => {
            let (ca, ra) = linear_split(a, field)?;
            let (cb, rb) = linear_split(b, field)?;
            Ok((ca + cb, ra + rb))
        }
        Expr::Sub(a, b) => {
            let (ca, ra) = linear_split(a, field)?;
            let (cb, rb) = linear_split(b, field)?;
            Ok((ca - cb, ra - rb))
        }
        Expr::Neg(a) => {
            let (ca, ra) = linear_split(a, field)?;
            Ok((-ca, -ra))
        }
        Expr::Mul(a, b) => {
            let a_has = a.contains_access(field, 1);
            let b_has = b.contains_access(field, 1);
            match (a_has, b_has) {
                (true, true) => Err(SolveError::NonLinear),
                (true, false) => {
                    let (ca, ra) = linear_split(a, field)?;
                    Ok((ca * (**b).clone(), ra * (**b).clone()))
                }
                (false, true) => {
                    let (cb, rb) = linear_split(b, field)?;
                    Ok(((**a).clone() * cb, (**a).clone() * rb))
                }
                (false, false) => Ok((Expr::c(0.0), e.clone())),
            }
        }
        Expr::Div(a, b) => {
            if b.contains_access(field, 1) {
                return Err(SolveError::NonLinear);
            }
            let (ca, ra) = linear_split(a, field)?;
            Ok((ca / (**b).clone(), ra / (**b).clone()))
        }
        other => Ok((Expr::c(0.0), other.clone())),
    }
}

/// Does the expression constant-fold to exactly zero? (Non-constant
/// sub-expressions make the answer `false`.)
fn is_zero_const(e: &Expr) -> bool {
    fn const_eval(e: &Expr) -> Option<f64> {
        match e {
            Expr::Const(v) => Some(*v),
            Expr::Add(a, b) => Some(const_eval(a)? + const_eval(b)?),
            Expr::Sub(a, b) => Some(const_eval(a)? - const_eval(b)?),
            Expr::Mul(a, b) => Some(const_eval(a)? * const_eval(b)?),
            Expr::Div(a, b) => Some(const_eval(a)? / const_eval(b)?),
            Expr::Neg(a) => Some(-const_eval(a)?),
            _ => None,
        }
    }
    const_eval(e) == Some(0.0)
}

/// Solve `eq == 0` for `field.forward` after expanding time derivatives.
pub fn solve(ctx: &Context, eq: &Expr, field: FieldHandle) -> Result<Update, SolveError> {
    let expanded = expand_time_derivatives(ctx, eq);
    let (a, b) = linear_split(&expanded, field.id())?;
    // Reject a coefficient that constant-folds to zero (target absent).
    if is_zero_const(&a) {
        return Err(SolveError::TargetAbsent);
    }
    Ok(Update {
        field: field.id(),
        rhs: (-b) / a,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempest_grid::{Domain, Shape};

    fn ctx() -> Context {
        let mut c = Context::new(Domain::uniform(Shape::cube(8), 10.0));
        c.set_dt(0.002);
        c
    }

    #[test]
    fn dt2_expansion() {
        let mut c = ctx();
        let u = c.time_function("u", 2, 4);
        let e = expand_time_derivatives(&c, &u.dt2());
        // numerator contains u[t+1], u[t], u[t−1]
        assert!(e.contains_access(u.id(), 1));
        assert!(e.contains_access(u.id(), 0));
        assert!(e.contains_access(u.id(), -1));
    }

    #[test]
    fn solve_wave_equation_shape() {
        // m·u.dt2 + damp·u.dt − Δu  == 0, solved for u.forward.
        let mut c = ctx();
        let u = c.time_function("u", 2, 8);
        let m = c.parameter("m");
        let damp = c.parameter("damp");
        let eq = m.x() * u.dt2() + damp.x() * u.dt() - u.laplace();
        let upd = solve(&c, &eq, u).expect("linear equation must solve");
        assert_eq!(upd.field(), u.id());
        // The RHS references the past levels and the Laplacian but not the
        // forward access (that's the unknown we solved for).
        assert!(upd.rhs().contains_access(u.id(), 0));
        assert!(upd.rhs().contains_access(u.id(), -1));
    }

    #[test]
    fn nonlinear_detected() {
        let mut c = ctx();
        let u = c.time_function("u", 2, 4);
        let eq = u.forward() * u.forward() - Expr::c(1.0);
        assert_eq!(solve(&c, &eq, u), Err(SolveError::NonLinear));
    }

    #[test]
    fn target_absent_detected() {
        let mut c = ctx();
        let u = c.time_function("u", 2, 4);
        let eq = u.x() - Expr::c(1.0);
        assert_eq!(solve(&c, &eq, u), Err(SolveError::TargetAbsent));
    }

    #[test]
    fn simple_explicit_solution_is_algebraically_right() {
        // 2·u.forward − 6 == 0  ⇒  u.forward = 3 (check by numeric eval of
        // the RHS tree: (−(−6))/2 … the structure divides correctly).
        let mut c = ctx();
        let u = c.time_function("u", 2, 4);
        let eq = Expr::c(2.0) * u.forward() - Expr::c(6.0);
        let upd = solve(&c, &eq, u).unwrap();
        // Evaluate the constant tree.
        fn eval_const(e: &Expr) -> f64 {
            match e {
                Expr::Const(v) => *v,
                Expr::Add(a, b) => eval_const(a) + eval_const(b),
                Expr::Sub(a, b) => eval_const(a) - eval_const(b),
                Expr::Mul(a, b) => eval_const(a) * eval_const(b),
                Expr::Div(a, b) => eval_const(a) / eval_const(b),
                Expr::Neg(a) => -eval_const(a),
                other => panic!("non-constant node {other:?}"),
            }
        }
        assert_eq!(eval_const(upd.rhs()), 3.0);
    }
}
