//! Property-based tests of the grid data structures: each property is
//! checked over a deterministic stream of randomised cases drawn from
//! [`Rng64`] (the workspace builds hermetically, so no proptest — the seeds
//! make failures reproducible by construction).

use tempest_grid::{Array3, Domain, Field, Range3, Rng64, Shape, TimeBuffer};

const CASES: usize = 64;

/// Linear indexing is a bijection onto 0..len in canonical order.
#[test]
fn array3_indexing_bijective() {
    let mut rng = Rng64::new(0xA1);
    for _ in 0..CASES {
        let (nx, ny, nz) = (
            rng.range_usize(1, 8),
            rng.range_usize(1, 8),
            rng.range_usize(1, 8),
        );
        let a: Array3<f32> = Array3::zeros(nx, ny, nz);
        let mut seen = vec![false; a.len()];
        let mut last = None;
        for (x, y, z) in a.shape().iter() {
            let i = a.idx(x, y, z);
            assert!(!seen[i]);
            seen[i] = true;
            if let Some(l) = last {
                assert_eq!(i, l + 1, "canonical order is contiguous");
            }
            last = Some(i);
        }
        assert!(seen.iter().all(|&s| s));
    }
}

/// split_xy partitions any range exactly, for any block size.
#[test]
fn split_xy_partitions() {
    let mut rng = Rng64::new(0xA2);
    for _ in 0..CASES {
        let (x0, xw) = (rng.range_usize(0, 6), rng.range_usize(1, 12));
        let (y0, yw) = (rng.range_usize(0, 6), rng.range_usize(1, 12));
        let (bx, by) = (rng.range_usize(1, 14), rng.range_usize(1, 14));
        let r = Range3::new((x0, x0 + xw), (y0, y0 + yw), (0, 3));
        let blocks = r.split_xy(bx, by);
        let total: usize = blocks.iter().map(|b| b.len()).sum();
        assert_eq!(total, r.len());
        for p in r.iter() {
            let n = blocks.iter().filter(|b| b.contains(p.0, p.1, p.2)).count();
            assert_eq!(n, 1);
        }
    }
}

/// Range intersection is commutative and contained in both operands.
#[test]
fn intersect_properties() {
    let mut rng = Rng64::new(0xA3);
    for _ in 0..CASES {
        let (a0, aw) = (rng.range_usize(0, 10), rng.range_usize(0, 10));
        let (b0, bw) = (rng.range_usize(0, 10), rng.range_usize(0, 10));
        let a = Range3::new((a0, a0 + aw), (0, 5), (0, 5));
        let b = Range3::new((b0, b0 + bw), (1, 4), (0, 5));
        let ab = a.intersect(&b);
        let ba = b.intersect(&a);
        assert_eq!(ab.len(), ba.len());
        for p in ab.iter() {
            assert!(a.contains(p.0, p.1, p.2));
            assert!(b.contains(p.0, p.1, p.2));
        }
    }
}

/// Field halo mapping: interior writes land at interior reads and never
/// clobber other interior points.
#[test]
fn field_interior_isolated() {
    let mut rng = Rng64::new(0xA4);
    for _ in 0..CASES {
        let h = rng.range_usize(0, 4);
        let (x, y, z) = (
            rng.range_usize(0, 5),
            rng.range_usize(0, 5),
            rng.range_usize(0, 5),
        );
        let s = Shape::new(5, 5, 5);
        let mut f = Field::zeros(s, h);
        f.set(x, y, z, 7.0);
        for (px, py, pz) in s.iter() {
            let expect = if (px, py, pz) == (x, y, z) { 7.0 } else { 0.0 };
            assert_eq!(f.get(px, py, pz), expect);
        }
        assert_eq!(f.interior_copy().count_nonzero(), 1);
    }
}

/// Time buffer slots: `read_write` never aliases and wraps correctly.
#[test]
fn timebuffer_slot_arithmetic() {
    let mut rng = Rng64::new(0xA5);
    for _ in 0..CASES {
        let levels = rng.range_usize(2, 5);
        let t = rng.range_usize(0, 40);
        let b = TimeBuffer::zeros(Shape::cube(2), 0, levels);
        assert_eq!(b.slot(t), t % levels);
        assert_eq!(b.slot(t + levels), b.slot(t));
    }
}

/// Domain coordinate mapping round-trips through frac_index.
#[test]
fn domain_roundtrip() {
    let mut rng = Rng64::new(0xA6);
    for _ in 0..CASES {
        let (x, y, z) = (
            rng.range_usize(0, 11),
            rng.range_usize(0, 11),
            rng.range_usize(0, 11),
        );
        let n = rng.range_usize(2, 12).max(x.max(y).max(z) + 1);
        let h = rng.range_f32(1.0, 50.0);
        let d = Domain::uniform(Shape::cube(n), h);
        let c = d.coord_of(x, y, z);
        let f = d.frac_index(c);
        assert!((f[0] - x as f32).abs() < 1e-3);
        assert!((f[1] - y as f32).abs() < 1e-3);
        assert!((f[2] - z as f32).abs() < 1e-3);
        // Strict containment check only away from the upper face, where
        // f32 rounding of coord/spacing may land an ulp past n−1.
        if x < n - 1 && y < n - 1 && z < n - 1 {
            assert!(d.contains_point(c));
        }
    }
}
