//! Property-based tests of the grid data structures.

use proptest::prelude::*;
use tempest_grid::{Array3, Domain, Field, Range3, Shape, TimeBuffer};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Linear indexing is a bijection onto 0..len in canonical order.
    #[test]
    fn array3_indexing_bijective(nx in 1usize..8, ny in 1usize..8, nz in 1usize..8) {
        let a: Array3<f32> = Array3::zeros(nx, ny, nz);
        let mut seen = vec![false; a.len()];
        let mut last = None;
        for (x, y, z) in a.shape().iter() {
            let i = a.idx(x, y, z);
            prop_assert!(!seen[i]);
            seen[i] = true;
            if let Some(l) = last {
                prop_assert_eq!(i, l + 1, "canonical order is contiguous");
            }
            last = Some(i);
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    /// split_xy partitions any range exactly, for any block size.
    #[test]
    fn split_xy_partitions(
        x0 in 0usize..6, xw in 1usize..12,
        y0 in 0usize..6, yw in 1usize..12,
        bx in 1usize..14, by in 1usize..14,
    ) {
        let r = Range3::new((x0, x0 + xw), (y0, y0 + yw), (0, 3));
        let blocks = r.split_xy(bx, by);
        let total: usize = blocks.iter().map(|b| b.len()).sum();
        prop_assert_eq!(total, r.len());
        for p in r.iter() {
            let n = blocks.iter().filter(|b| b.contains(p.0, p.1, p.2)).count();
            prop_assert_eq!(n, 1);
        }
    }

    /// Range intersection is commutative and contained in both operands.
    #[test]
    fn intersect_properties(
        a0 in 0usize..10, aw in 0usize..10,
        b0 in 0usize..10, bw in 0usize..10,
    ) {
        let a = Range3::new((a0, a0 + aw), (0, 5), (0, 5));
        let b = Range3::new((b0, b0 + bw), (1, 4), (0, 5));
        let ab = a.intersect(&b);
        let ba = b.intersect(&a);
        prop_assert_eq!(ab.len(), ba.len());
        for p in ab.iter() {
            prop_assert!(a.contains(p.0, p.1, p.2));
            prop_assert!(b.contains(p.0, p.1, p.2));
        }
    }

    /// Field halo mapping: interior writes land at interior reads and never
    /// clobber other interior points.
    #[test]
    fn field_interior_isolated(h in 0usize..4, x in 0usize..5, y in 0usize..5, z in 0usize..5) {
        let s = Shape::new(5, 5, 5);
        let mut f = Field::zeros(s, h);
        f.set(x, y, z, 7.0);
        for (px, py, pz) in s.iter() {
            let expect = if (px, py, pz) == (x, y, z) { 7.0 } else { 0.0 };
            prop_assert_eq!(f.get(px, py, pz), expect);
        }
        prop_assert_eq!(f.interior_copy().count_nonzero(), 1);
    }

    /// Time buffer slots: `read_write` never aliases and wraps correctly.
    #[test]
    fn timebuffer_slot_arithmetic(levels in 2usize..5, t in 0usize..40) {
        let b = TimeBuffer::zeros(Shape::cube(2), 0, levels);
        prop_assert_eq!(b.slot(t), t % levels);
        prop_assert_eq!(b.slot(t + levels), b.slot(t));
    }

    /// Domain coordinate mapping round-trips through frac_index.
    #[test]
    fn domain_roundtrip(n in 2usize..12, h in 1.0f32..50.0, x in 0usize..11, y in 0usize..11, z in 0usize..11) {
        let n = n.max(x.max(y).max(z) + 1);
        let d = Domain::uniform(Shape::cube(n), h);
        let c = d.coord_of(x, y, z);
        let f = d.frac_index(c);
        prop_assert!((f[0] - x as f32).abs() < 1e-3);
        prop_assert!((f[1] - y as f32).abs() < 1e-3);
        prop_assert!((f[2] - z as f32).abs() < 1e-3);
        // Strict containment check only away from the upper face, where
        // f32 rounding of coord/spacing may land an ulp past n−1.
        if x < n - 1 && y < n - 1 && z < n - 1 {
            prop_assert!(d.contains_point(c));
        }
    }
}
