//! # tempest-grid
//!
//! Dense grid data structures for finite-difference wave propagation.
//!
//! This crate is the data layer underneath the `tempest` workspace (the role
//! Devito's `Grid` / `Function` / `TimeFunction` objects play in the paper
//! *"Temporal blocking of finite-difference stencil operators with sparse
//! 'off-the-grid' sources"*, IPDPS 2021). It provides:
//!
//! * [`Array3`] / [`Array2`] — flat, cache-friendly dense arrays with the
//!   innermost (`z`) axis contiguous, so stencil kernels vectorise over
//!   contiguous pencils.
//! * [`Field`] — an [`Array3`] with a halo region of configurable width, the
//!   storage for one time level of a wavefield.
//! * [`TimeBuffer`] — a circular buffer of [`Field`]s over the time dimension
//!   (2 levels for first-order-in-time systems, 3 for second-order), with a
//!   safe simultaneous read/write borrow API for stencil updates.
//! * [`Domain`] — physical-coordinate ↔ grid-index mapping (grid spacing,
//!   origin), used to locate *off-the-grid* source/receiver positions.
//! * [`model`] — material parameter volumes (velocity, density, Thomsen
//!   parameters) with homogeneous / layered / randomly perturbed builders.
//! * [`boundary`] — absorbing boundary (sponge) damping profiles.
//!
//! All arrays store `f32` wavefields by default (single precision, matching
//! the paper's §IV.B setup) but the containers are generic.

pub mod array;
pub mod boundary;
pub mod domain;
pub mod field;
pub mod model;
pub mod rng;
pub mod shape;
pub mod timebuffer;

pub use array::{Array2, Array3};
pub use boundary::DampingMask;
pub use domain::Domain;
pub use field::Field;
pub use model::{ElasticModel, Model, TtiModel};
pub use rng::Rng64;
pub use shape::{Range3, Shape};
pub use timebuffer::TimeBuffer;
