//! A wavefield time level: a dense array padded with a halo.
//!
//! Stencil kernels of radius `r` read `r` points beyond the block being
//! updated (paper Fig. 2). Rather than special-casing physical boundaries in
//! the hot loop, every field is allocated with a halo of width `≥ r` on all
//! sides, initialised to zero (homogeneous Dirichlet far-field, the setting
//! the paper's absorbing layers assume).

use crate::array::Array3;
use crate::shape::{Range3, Shape};

/// One time level of a wavefield: interior of [`Shape`] `shape` surrounded by
/// a halo of `halo` points on every side of every axis.
///
/// *Interior* coordinates `(x, y, z) ∈ [0, n)` map to *raw* storage
/// coordinates `(x + halo, y + halo, z + halo)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Field {
    shape: Shape,
    halo: usize,
    data: Array3<f32>,
}

impl Field {
    /// Allocate a zeroed field.
    pub fn zeros(shape: Shape, halo: usize) -> Self {
        Field {
            shape,
            halo,
            data: Array3::from_shape(shape.padded(halo)),
        }
    }

    /// Interior shape (excluding halo).
    #[inline]
    pub fn shape(&self) -> Shape {
        self.shape
    }

    /// Halo width.
    #[inline]
    pub fn halo(&self) -> usize {
        self.halo
    }

    /// The padded backing array (interior + halo).
    #[inline]
    pub fn raw(&self) -> &Array3<f32> {
        &self.data
    }

    /// The padded backing array, mutably.
    #[inline]
    pub fn raw_mut(&mut self) -> &mut Array3<f32> {
        &mut self.data
    }

    /// Read an interior element.
    #[inline]
    pub fn get(&self, x: usize, y: usize, z: usize) -> f32 {
        debug_assert!(self.shape.contains(x, y, z));
        self.data
            .get(x + self.halo, y + self.halo, z + self.halo)
    }

    /// Write an interior element.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, z: usize, v: f32) {
        debug_assert!(self.shape.contains(x, y, z));
        let h = self.halo;
        self.data.set(x + h, y + h, z + h, v);
    }

    /// Add to an interior element (the scatter primitive of source injection).
    #[inline]
    pub fn add(&mut self, x: usize, y: usize, z: usize, v: f32) {
        debug_assert!(self.shape.contains(x, y, z));
        let h = self.halo;
        let i = self.data.idx(x + h, y + h, z + h);
        self.data.as_mut_slice()[i] += v;
    }

    /// Linear index into the raw array for interior point `(x, y, z)`.
    #[inline]
    pub fn raw_idx(&self, x: usize, y: usize, z: usize) -> usize {
        self.data
            .idx(x + self.halo, y + self.halo, z + self.halo)
    }

    /// The contiguous interior-z pencil at interior `(x, y)` (length `nz`).
    #[inline]
    pub fn interior_pencil(&self, x: usize, y: usize) -> &[f32] {
        let start = self.raw_idx(x, y, 0);
        &self.data.as_slice()[start..start + self.shape.nz]
    }

    /// Zero all elements (interior and halo).
    pub fn clear(&mut self) {
        self.data.fill(0.0);
    }

    /// Copy interior values into a fresh unpadded array (for comparisons).
    pub fn interior_copy(&self) -> Array3<f32> {
        let mut out = Array3::from_shape(self.shape);
        for x in 0..self.shape.nx {
            for y in 0..self.shape.ny {
                let src = self.interior_pencil(x, y);
                out.pencil_mut(x, y).copy_from_slice(src);
            }
        }
        out
    }

    /// Maximum absolute interior value.
    pub fn interior_max_abs(&self) -> f32 {
        let mut m = 0.0f32;
        for x in 0..self.shape.nx {
            for y in 0..self.shape.ny {
                for &v in self.interior_pencil(x, y) {
                    m = m.max(v.abs());
                }
            }
        }
        m
    }

    /// Interior L2 norm.
    pub fn interior_norm_l2(&self) -> f64 {
        let mut s = 0.0f64;
        for x in 0..self.shape.nx {
            for y in 0..self.shape.ny {
                for &v in self.interior_pencil(x, y) {
                    s += (v as f64) * (v as f64);
                }
            }
        }
        s.sqrt()
    }

    /// The full interior as a [`Range3`].
    pub fn interior_range(&self) -> Range3 {
        self.shape.full_range()
    }

    /// Indices of interior points whose value is non-zero.
    ///
    /// This is the *probe* read-back of the paper's precomputation step 1
    /// (Listing 2): after injecting into an empty grid, the non-zero support
    /// identifies the grid points affected by off-the-grid sources.
    pub fn nonzero_interior(&self) -> Vec<(usize, usize, usize)> {
        let mut out = Vec::new();
        for x in 0..self.shape.nx {
            for y in 0..self.shape.ny {
                for (z, &v) in self.interior_pencil(x, y).iter().enumerate() {
                    if v != 0.0 {
                        out.push((x, y, z));
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn halo_offsets_map_correctly() {
        let mut f = Field::zeros(Shape::new(4, 4, 4), 2);
        assert_eq!(f.raw().dims(), [8, 8, 8]);
        f.set(0, 0, 0, 1.0);
        assert_eq!(f.raw().get(2, 2, 2), 1.0);
        f.set(3, 3, 3, 2.0);
        assert_eq!(f.raw().get(5, 5, 5), 2.0);
        assert_eq!(f.get(3, 3, 3), 2.0);
    }

    #[test]
    fn add_accumulates() {
        let mut f = Field::zeros(Shape::cube(3), 1);
        f.add(1, 1, 1, 0.5);
        f.add(1, 1, 1, 0.25);
        assert_eq!(f.get(1, 1, 1), 0.75);
    }

    #[test]
    fn interior_pencil_excludes_halo() {
        let mut f = Field::zeros(Shape::new(2, 2, 3), 1);
        // Poison the halo; the interior pencil must not see it.
        f.raw_mut().fill(9.0);
        for (x, y, z) in Shape::new(2, 2, 3).iter() {
            f.set(x, y, z, 0.0);
        }
        f.set(1, 0, 2, 5.0);
        assert_eq!(f.interior_pencil(1, 0), &[0.0, 0.0, 5.0]);
    }

    #[test]
    fn interior_copy_roundtrip() {
        let mut f = Field::zeros(Shape::new(3, 2, 2), 2);
        f.set(2, 1, 0, -3.0);
        let c = f.interior_copy();
        assert_eq!(c.get(2, 1, 0), -3.0);
        assert_eq!(c.count_nonzero(), 1);
    }

    #[test]
    fn nonzero_interior_finds_support() {
        let mut f = Field::zeros(Shape::cube(4), 1);
        assert!(f.nonzero_interior().is_empty());
        f.set(0, 1, 2, 1e-30);
        f.set(3, 3, 3, -1.0);
        let nz = f.nonzero_interior();
        assert_eq!(nz, vec![(0, 1, 2), (3, 3, 3)]);
    }

    #[test]
    fn norms_on_interior_only() {
        let mut f = Field::zeros(Shape::cube(2), 1);
        // Halo values must not contribute.
        f.raw_mut().set(0, 0, 0, 100.0);
        f.set(0, 0, 0, 3.0);
        f.set(1, 1, 1, 4.0);
        assert_eq!(f.interior_max_abs(), 4.0);
        assert!((f.interior_norm_l2() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn clear_zeroes_everything() {
        let mut f = Field::zeros(Shape::cube(2), 1);
        f.set(0, 0, 0, 1.0);
        f.raw_mut().set(0, 0, 0, 2.0);
        f.clear();
        assert_eq!(f.raw().max_abs(), 0.0);
    }
}
